// Sensor archival: the paper's batch-archival scenario (§3). A fleet of
// machines streams correlated telemetry; each day's batch is compressed
// with per-column error thresholds tuned to each sensor's noise floor, and
// the archives are verified against the bound before the raw data would be
// discarded.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"deepsqueeze"
)

const (
	machines    = 40
	rowsPerDay  = 8000
	days        = 3
	numColStart = 1 // schema index of the first numeric column
)

func sensorSchema() *deepsqueeze.Schema {
	return deepsqueeze.NewSchema(
		deepsqueeze.Column{Name: "machine", Type: deepsqueeze.Categorical},
		deepsqueeze.Column{Name: "cpu", Type: deepsqueeze.Numeric},
		deepsqueeze.Column{Name: "mem", Type: deepsqueeze.Numeric},
		deepsqueeze.Column{Name: "net", Type: deepsqueeze.Numeric},
		deepsqueeze.Column{Name: "temp", Type: deepsqueeze.Numeric},
		deepsqueeze.Column{Name: "fan", Type: deepsqueeze.Numeric},
	)
}

// generateDay produces one day of telemetry. Machines occupy load regimes,
// so the five metrics co-vary strongly.
func generateDay(rng *rand.Rand, day int) *deepsqueeze.Table {
	t := deepsqueeze.NewTable(sensorSchema(), rowsPerDay)
	for i := 0; i < rowsPerDay; i++ {
		m := rng.Intn(machines)
		regime := float64((m+day)%4) / 3.0
		load := regime*0.8 + rng.Float64()*0.2
		t.AppendRow(
			[]string{fmt.Sprintf("m%02d", m)},
			[]float64{
				load * 100,
				20 + load*70,
				load * load * 950,
				35 + load*40 + rng.NormFloat64()*0.5,
				1200 + load*3000,
			},
		)
	}
	return t
}

func main() {
	// Per-column thresholds: coarse for throughput-style metrics, tight
	// for temperature (which operators alert on).
	thresholds := []float64{0, 0.05, 0.05, 0.1, 0.01, 0.1}

	opts := deepsqueeze.DefaultOptions()
	opts.CodeSize = 2
	opts.NumExperts = 4 // one specialist per load regime
	opts.Train.Epochs = 15

	var totalRaw, totalCompressed int64
	rng := rand.New(rand.NewSource(7))
	for day := 0; day < days; day++ {
		batch := generateDay(rng, day)
		res, err := deepsqueeze.Compress(batch, thresholds, opts)
		if err != nil {
			log.Fatalf("day %d: %v", day, err)
		}
		raw := batch.CSVSize()
		totalRaw += raw
		totalCompressed += res.Breakdown.Total

		// Verify before discarding raw data: decompress and audit the
		// per-column bounds.
		back, err := deepsqueeze.Decompress(res.Archive)
		if err != nil {
			log.Fatalf("day %d: decompress: %v", day, err)
		}
		stats := batch.Stats()
		for c := numColStart; c < batch.Schema.NumColumns(); c++ {
			bound := thresholds[c] * (stats[c].Max - stats[c].Min)
			for r := 0; r < batch.NumRows(); r++ {
				if d := math.Abs(back.Num[c][r] - batch.Num[c][r]); d > bound+1e-9 {
					log.Fatalf("day %d: column %s row %d exceeds bound: %v > %v",
						day, batch.Schema.Columns[c].Name, r, d, bound)
				}
			}
		}
		fmt.Printf("day %d: %7d → %6d bytes (%.2f%%), experts used: %v\n",
			day, raw, res.Breakdown.Total, 100*res.Ratio(raw), res.ExpertUse)
	}
	fmt.Printf("archive total: %d → %d bytes (%.2f%%), all error bounds verified\n",
		totalRaw, totalCompressed, 100*float64(totalCompressed)/float64(totalRaw))
}
