// Clickstream archival: a Criteo-style ad log with skewed categorical
// features, a near-unique session id (exercising the high-cardinality
// fallback), and heavy-tailed count features. Demonstrates automatic
// hyperparameter tuning (paper Fig. 5) before compressing.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"deepsqueeze"
)

func clickSchema() *deepsqueeze.Schema {
	return deepsqueeze.NewSchema(
		deepsqueeze.Column{Name: "session_id", Type: deepsqueeze.Categorical},
		deepsqueeze.Column{Name: "campaign", Type: deepsqueeze.Categorical},
		deepsqueeze.Column{Name: "device", Type: deepsqueeze.Categorical},
		deepsqueeze.Column{Name: "country", Type: deepsqueeze.Categorical},
		deepsqueeze.Column{Name: "clicks", Type: deepsqueeze.Numeric},
		deepsqueeze.Column{Name: "impressions", Type: deepsqueeze.Numeric},
		deepsqueeze.Column{Name: "spend", Type: deepsqueeze.Numeric},
	)
}

func generate(rows int, seed int64) *deepsqueeze.Table {
	rng := rand.New(rand.NewSource(seed))
	t := deepsqueeze.NewTable(clickSchema(), rows)
	devices := []string{"mobile", "desktop", "tablet"}
	countries := []string{"us", "de", "jp", "br", "in", "fr", "uk", "ca"}
	for i := 0; i < rows; i++ {
		// User segments drive correlated behaviour across all columns.
		segment := rng.Intn(6)
		campaign := fmt.Sprintf("cmp-%03d", segment*40+int(math.Abs(rng.NormFloat64())*12)%40)
		device := devices[segment%len(devices)]
		country := countries[(segment*3)%len(countries)]
		if rng.Float64() < 0.1 {
			country = countries[rng.Intn(len(countries))]
		}
		activity := math.Exp(rng.NormFloat64()) * float64(segment+1)
		impressions := math.Floor(activity * 20)
		clicks := math.Floor(impressions * 0.03 * (1 + rng.NormFloat64()*0.1))
		if clicks < 0 {
			clicks = 0
		}
		t.AppendRow(
			[]string{fmt.Sprintf("s-%08x", rng.Int63()), campaign, device, country},
			[]float64{clicks, impressions, activity * 1.7},
		)
	}
	return t
}

func main() {
	table := generate(20000, 99)
	// Count features tolerate 5% error; spend must be tighter.
	thresholds := []float64{0, 0, 0, 0, 0.05, 0.05, 0.01}

	// Let the tuner pick code size and expert count (paper Fig. 5):
	// Bayesian optimization over the grid, growing training samples until
	// the cross-validation gap drops under eps.
	topts := deepsqueeze.DefaultTuneOptions()
	topts.Samples = []int{2000, 5000}
	topts.Codes = []int{1, 2, 4}
	topts.Experts = []int{1, 2, 4}
	topts.Budget = 6
	topts.Base.Train.Epochs = 10
	tuned, err := deepsqueeze.Tune(table, thresholds, topts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned over %d trials: code size %d, %d experts, %d-row training sample (converged=%v)\n",
		len(tuned.Trials), tuned.Best.CodeSize, tuned.Best.NumExperts,
		tuned.SampleUsed, tuned.Converged)

	res, err := deepsqueeze.Compress(table, thresholds, tuned.Best)
	if err != nil {
		log.Fatal(err)
	}
	raw := table.CSVSize()
	fmt.Printf("compressed %d rows: %d → %d bytes (%.2f%%)\n",
		table.NumRows(), raw, res.Breakdown.Total, 100*res.Ratio(raw))
	fmt.Printf("  header %d | decoder %d | codes %d | failures %d | mapping %d\n",
		res.Breakdown.Header, res.Breakdown.Decoder, res.Breakdown.Codes,
		res.Breakdown.Failures, res.Breakdown.Mapping)

	back, err := deepsqueeze.Decompress(res.Archive)
	if err != nil {
		log.Fatal(err)
	}
	// The near-unique session ids went through the fallback path and must
	// round-trip exactly.
	for r := 0; r < table.NumRows(); r++ {
		if back.Str[0][r] != table.Str[0][r] {
			log.Fatalf("session id mismatch at row %d", r)
		}
	}
	fmt.Println("verified: all session ids (fallback path) round-tripped exactly")
}
