// Purely categorical semantic compression: a census-style table where every
// column is categorical and strongly dependent on a latent demographic
// cluster. DeepSqueeze runs fully lossless here (the paper permits
// lossiness only on numeric columns) and is compared against gzip on the
// same data.
package main

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"log"
	"math/rand"

	"deepsqueeze"
)

func main() {
	const cols = 24
	const rows = 15000
	colDefs := make([]deepsqueeze.Column, cols)
	for i := range colDefs {
		colDefs[i] = deepsqueeze.Column{Name: fmt.Sprintf("attr%02d", i), Type: deepsqueeze.Categorical}
	}
	schema := deepsqueeze.NewSchema(colDefs...)
	table := deepsqueeze.NewTable(schema, rows)

	rng := rand.New(rand.NewSource(3))
	const personas = 12
	card := make([]int, cols)
	pref := make([][personas]int, cols)
	for j := 0; j < cols; j++ {
		card[j] = 2 + rng.Intn(8)
		for p := 0; p < personas; p++ {
			pref[j][p] = rng.Intn(card[j])
		}
	}
	row := make([]string, cols)
	for r := 0; r < rows; r++ {
		p := rng.Intn(personas)
		for j := 0; j < cols; j++ {
			v := pref[j][p]
			if rng.Float64() < 0.06 {
				v = rng.Intn(card[j])
			}
			row[j] = fmt.Sprintf("v%d", v)
		}
		table.AppendRow(row, nil)
	}

	// All-zero thresholds: categorical compression is always lossless.
	thresholds := deepsqueeze.UniformThresholds(table, 0)

	opts := deepsqueeze.DefaultOptions()
	opts.CodeSize = 2
	opts.NumExperts = 2
	opts.Train.Epochs = 20
	res, err := deepsqueeze.Compress(table, thresholds, opts)
	if err != nil {
		log.Fatal(err)
	}

	raw := table.CSVSize()
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if err := table.WriteCSV(zw); err != nil {
		log.Fatal(err)
	}
	zw.Close()

	fmt.Printf("raw CSV:     %8d bytes\n", raw)
	fmt.Printf("gzip:        %8d bytes (%.2f%%)\n", gz.Len(), 100*float64(gz.Len())/float64(raw))
	fmt.Printf("deepsqueeze: %8d bytes (%.2f%%)\n", res.Breakdown.Total, 100*res.Ratio(raw))

	back, err := deepsqueeze.Decompress(res.Archive)
	if err != nil {
		log.Fatal(err)
	}
	if err := table.EqualWithin(back, nil); err != nil {
		log.Fatalf("lossless contract violated: %v", err)
	}
	fmt.Println("verified: every categorical value round-tripped exactly")
}
