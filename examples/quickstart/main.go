// Quickstart: build a small mixed-type table, compress it with DeepSqueeze,
// decompress, and verify the error-bound contract.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"deepsqueeze"
)

func main() {
	// A tiny telemetry table: one categorical column and two numeric
	// columns that both depend on a hidden "load" factor — exactly the
	// cross-column structure DeepSqueeze exploits.
	schema := deepsqueeze.NewSchema(
		deepsqueeze.Column{Name: "status", Type: deepsqueeze.Categorical},
		deepsqueeze.Column{Name: "cpu_pct", Type: deepsqueeze.Numeric},
		deepsqueeze.Column{Name: "temp_c", Type: deepsqueeze.Numeric},
	)
	table := deepsqueeze.NewTable(schema, 5000)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		load := rng.Float64()
		status := "ok"
		if load > 0.9 {
			status = "hot"
		}
		table.AppendRow(
			[]string{status},
			[]float64{load * 100, 30 + load*50 + rng.NormFloat64()},
		)
	}

	// Allow 5% relative error on numeric columns; categoricals are always
	// lossless.
	thresholds := deepsqueeze.UniformThresholds(table, 0.05)

	opts := deepsqueeze.DefaultOptions()
	opts.Train.Epochs = 15
	res, err := deepsqueeze.Compress(table, thresholds, opts)
	if err != nil {
		log.Fatal(err)
	}
	raw := table.CSVSize()
	fmt.Printf("raw CSV:    %8d bytes\n", raw)
	fmt.Printf("compressed: %8d bytes (%.2f%% of raw)\n", res.Breakdown.Total, 100*res.Ratio(raw))
	fmt.Printf("  decoder %d | codes %d (%d-bit) | failures %d\n",
		res.Breakdown.Decoder, res.Breakdown.Codes, res.CodeBits, res.Breakdown.Failures)

	back, err := deepsqueeze.Decompress(res.Archive)
	if err != nil {
		log.Fatal(err)
	}

	// Audit the guarantee: categorical exact, numeric within 5% of range.
	stats := table.Stats()
	maxErr := make([]float64, 3)
	for r := 0; r < table.NumRows(); r++ {
		if back.Str[0][r] != table.Str[0][r] {
			log.Fatalf("row %d: categorical mismatch", r)
		}
		for _, c := range []int{1, 2} {
			if d := math.Abs(back.Num[c][r] - table.Num[c][r]); d > maxErr[c] {
				maxErr[c] = d
			}
		}
	}
	for _, c := range []int{1, 2} {
		bound := 0.05 * (stats[c].Max - stats[c].Min)
		fmt.Printf("%s: max abs error %.3f (bound %.3f)\n",
			schema.Columns[c].Name, maxErr[c], bound)
		// A value sitting exactly on a bucket edge can exceed the bound by
		// a few ulps of floating-point rounding; allow that.
		if maxErr[c] > bound*(1+1e-9) {
			log.Fatal("error bound violated")
		}
	}
	fmt.Println("round trip verified: categoricals exact, numerics within bounds")
}
