// Streaming archival: the paper's second usage scenario (§3). A fleet of
// vehicles sends message batches; the model is trained once on an initial
// batch and every later batch compresses into a small archive that
// references the shared model instead of embedding it. When the data
// distribution drifts, failure streams grow — the retraining signal.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"deepsqueeze"
)

func vehicleSchema() *deepsqueeze.Schema {
	return deepsqueeze.NewSchema(
		deepsqueeze.Column{Name: "gear", Type: deepsqueeze.Categorical},
		deepsqueeze.Column{Name: "braking", Type: deepsqueeze.Categorical},
		deepsqueeze.Column{Name: "speed_kmh", Type: deepsqueeze.Numeric},
		deepsqueeze.Column{Name: "rpm", Type: deepsqueeze.Numeric},
		deepsqueeze.Column{Name: "engine_temp", Type: deepsqueeze.Numeric},
	)
}

// batch simulates one upload window; drift skews the speed distribution
// (e.g. the fleet moves from city to highway driving).
func batch(rows int, seed int64, drift float64) *deepsqueeze.Table {
	t := deepsqueeze.NewTable(vehicleSchema(), rows)
	rng := rand.New(rand.NewSource(seed))
	gears := []string{"1", "2", "3", "4", "5", "6"}
	for i := 0; i < rows; i++ {
		v := rng.Float64()*(1-drift) + drift // latent "speed factor"
		gear := gears[int(v*5.999)]
		braking := "0"
		if rng.Float64() < 0.1*(1-v) {
			braking = "1"
		}
		t.AppendRow(
			[]string{gear, braking},
			[]float64{
				v * 180,
				800 + v*4500 + rng.NormFloat64()*50,
				80 + v*15 + rng.NormFloat64(),
			},
		)
	}
	return t
}

func main() {
	thresholds := []float64{0, 0, 0.05, 0.05, 0.01}
	opts := deepsqueeze.DefaultOptions()
	opts.CodeSize = 2
	opts.Train.Epochs = 15

	train := batch(5000, 1, 0)
	stream, trainRes, err := deepsqueeze.NewStream(train, thresholds, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model archive (initial batch, self-contained): %d bytes\n", trainRes.Breakdown.Total)

	// Compress a week of upload windows; the last two drift.
	var totalRaw, totalBatch int64
	for day := int64(1); day <= 7; day++ {
		drift := 0.0
		if day >= 6 {
			drift = 0.5
		}
		b := batch(2000, 100+day, drift)
		res, err := stream.CompressBatch(b)
		if err != nil {
			log.Fatalf("day %d: %v", day, err)
		}
		back, err := deepsqueeze.DecompressBatch(stream.ModelArchive(), res.Archive)
		if err != nil {
			log.Fatalf("day %d: %v", day, err)
		}
		if err := deepsqueeze.VerifyBounds(b, back, thresholds); err != nil {
			log.Fatalf("day %d: bound violated: %v", day, err)
		}
		raw := b.CSVSize()
		totalRaw += raw
		totalBatch += res.Breakdown.Total
		note := ""
		if drift > 0 {
			note = "  ← drifted distribution: no retraining, bound still holds"
		}
		fmt.Printf("day %d: %7d → %6d bytes (%.2f%%), failures %5d bytes%s\n",
			day, raw, res.Breakdown.Total, 100*res.Ratio(raw), res.Breakdown.Failures, note)
	}
	fmt.Printf("week total: %d → %d bytes (%.2f%%) + one %d-byte model archive\n",
		totalRaw, totalBatch, 100*float64(totalBatch)/float64(totalRaw), trainRes.Breakdown.Total)
}
