package resbit

import (
	"testing"
	"testing/quick"
)

func TestForEdgeCases(t *testing.T) {
	cases := []struct {
		card       int
		base, digs int
	}{
		{1, 1, 1},             // degenerate single-value alphabet
		{2, 2, 1},             // binary fits one digit
		{MaxBase, MaxBase, 1}, // exactly one full digit
		{MaxBase + 1, 16, 2},  // covering base 9 floors up to MinBase
		{4096, 16, 3},         // 16^3 beats two 64-wide heads
		{4097, 17, 3},         // one past a power: 17^3=4913 >= 4097
		{64 * 64 * 64, 23, 4}, // 23^4=279841: cheaper heads than {64,3}
		{65536, 16, 4},        // FallbackMaxDistinct default: 16^4 exactly
		{1_000_000, 16, 5},    // 16^5 = 1048576
		{400, 20, 2},          // 20^2 covers exactly; 2 digits beat 3
		{1000, 32, 2},         // {32,2} and {16,3} tie on cost; fewer digits win
		{289, 17, 2},          // exact square of an odd base
		{290, 18, 2},          // just past it
	}
	for _, c := range cases {
		l := For(c.card)
		if l.Base != c.base || l.Digits != c.digs {
			t.Errorf("For(%d) = {B:%d k:%d}, want {B:%d k:%d}", c.card, l.Base, l.Digits, c.base, c.digs)
		}
		if l.Max() < c.card {
			t.Errorf("For(%d): Max() = %d does not cover the alphabet", c.card, l.Max())
		}
		if !l.Valid() {
			t.Errorf("For(%d) = %+v not Valid", c.card, l)
		}
	}
}

// TestForCoversAndIsMinimal sweeps cardinalities and checks the layout
// covers the alphabet, keeps multi-digit bases inside [MinBase, MaxBase],
// uses the smallest admissible base for its digit count, and that no other
// admissible layout has strictly lower head cost Digits*(Base+MinBase).
func TestForCoversAndIsMinimal(t *testing.T) {
	for card := 1; card <= 300_000; card = card*7/6 + 1 {
		l := For(card)
		if !l.Valid() {
			t.Fatalf("For(%d) = %+v not Valid", card, l)
		}
		if l.Max() < card {
			t.Fatalf("For(%d): Max() = %d < card", card, l.Max())
		}
		if l.Digits == 1 {
			if card > MaxBase {
				t.Fatalf("For(%d) single digit exceeds MaxBase", card)
			}
			if l.Base != card {
				t.Fatalf("For(%d) single digit base %d, want exact", card, l.Base)
			}
			continue
		}
		if l.Base < MinBase || l.Base > MaxBase {
			t.Fatalf("For(%d) base %d outside [%d,%d]", card, l.Base, MinBase, MaxBase)
		}
		if l.Base > MinBase && pow(l.Base-1, l.Digits) >= card {
			t.Fatalf("For(%d) base %d not minimal: %d also covers", card, l.Base, l.Base-1)
		}
		cost := l.Digits * (l.Base + MinBase)
		for digits := 2; digits <= 8; digits++ {
			base := coveringBase(card, digits)
			if base > MaxBase {
				continue
			}
			if base < MinBase {
				base = MinBase
			}
			if c := digits * (base + MinBase); c < cost {
				t.Fatalf("For(%d) = %+v costs %d, but {B:%d k:%d} costs %d", card, l, cost, base, digits, c)
			}
		}
	}
}

// TestQuickRoundTrip drives Encode→Decode and per-digit extraction over
// random (cardinality, rank) pairs via testing/quick.
func TestQuickRoundTrip(t *testing.T) {
	f := func(cardSeed uint32, rankSeed uint32) bool {
		card := int(cardSeed%1_000_000) + 1
		l := For(card)
		rank := int(rankSeed) % card
		digits := l.Encode(rank, nil)
		if len(digits) != l.Digits {
			return false
		}
		for i, d := range digits {
			if d != l.Digit(rank, i) {
				return false
			}
		}
		back, err := l.Decode(digits)
		return err == nil && back == rank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadDigits(t *testing.T) {
	l := For(1000) // {Base:32, Digits:2}
	if _, err := l.Decode([]int{0}); err == nil {
		t.Error("short digit slice accepted")
	}
	if _, err := l.Decode([]int{0, l.Base}); err == nil {
		t.Error("digit == Base accepted")
	}
	if _, err := l.Decode([]int{-1, 0}); err == nil {
		t.Error("negative digit accepted")
	}
	if r, err := l.Decode([]int{3, 5}); err != nil || r != 3+5*l.Base {
		t.Errorf("Decode([3 5]) = %d, %v; want %d", r, err, 3+5*l.Base)
	}
}

func TestEncodePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode of out-of-range rank did not panic")
		}
	}()
	l := For(100)
	l.Encode(l.Max(), nil)
}

func TestCardinalityOne(t *testing.T) {
	l := For(1)
	digits := l.Encode(0, nil)
	if len(digits) != 1 || digits[0] != 0 {
		t.Fatalf("Encode(0) = %v", digits)
	}
	if r, err := l.Decode(digits); err != nil || r != 0 {
		t.Fatalf("Decode = %d, %v", r, err)
	}
	if l.Max() != 1 {
		t.Fatalf("Max() = %d, want 1", l.Max())
	}
}
