// Package resbit factors a dictionary rank over a large alphabet into a
// fixed number of small base-B "residual digits" (ResBit, Fuchi et al.).
// A cardinality-C column becomes Digits stacked digits, each over an
// alphabet of Base values, so the shared softmax decoder predicts each
// digit with a head of width Base instead of one head of width C — a
// width explosion avoided at the cost of a few extra output heads.
//
// The layout is a plain positional numeral system: rank r maps to digits
// d_0..d_{k-1} (least significant first) with r = Σ d_i · Base^i. Digits
// recompose to the exact rank, so round-trips are lossless and a
// recomposed rank keeps ordinary dictionary semantics (zone-map
// ZoneIntRange/ZoneBitmap pruning over ranks stays sound).
package resbit

import "fmt"

// MaxBase bounds the per-digit alphabet. 64 keeps each digit head small
// relative to MaxModelCardinality while covering 64^2 = 4096 with two
// digits and 64^3 = 262144 with three.
const MaxBase = 64

// MinBase floors the per-digit alphabet for multi-digit layouts. Below 16
// the heads are individually cheap but the digit count — and with it the
// per-digit fixed overhead — grows faster than the heads shrink.
const MinBase = 16

// Layout fixes the digit factorization for one column's alphabet.
type Layout struct {
	// Base is the per-digit alphabet size, in [1, MaxBase].
	Base int
	// Digits is the number of stacked digits.
	Digits int
}

// For chooses the layout for an alphabet of card values. Each digit costs
// a softmax head of Base output units plus a fixed share of overhead —
// its input wiring and one failure stream per row group — worth roughly
// one MinBase-wide head, so For minimizes Digits*(Base+MinBase) over the
// covering layouts with Base in [MinBase, MaxBase] (ties prefer fewer
// digits). Alphabets at or under MaxBase stay a single exact digit. card
// must be >= 1.
func For(card int) Layout {
	if card < 1 {
		panic(fmt.Sprintf("resbit: cardinality %d < 1", card))
	}
	if card <= MaxBase {
		return Layout{Base: card, Digits: 1}
	}
	var best Layout
	bestCost := 1 << 62
	for digits := 2; digits <= 8; digits++ {
		base := coveringBase(card, digits)
		if base > MaxBase {
			continue // needs more digits to fit under MaxBase
		}
		if base < MinBase {
			base = MinBase
		}
		if cost := digits * (base + MinBase); cost < bestCost {
			best, bestCost = Layout{Base: base, Digits: digits}, cost
		}
		if base == MinBase {
			break // further digits only add overhead
		}
	}
	return best
}

// coveringBase returns the smallest base with base^digits >= card.
func coveringBase(card, digits int) int {
	lo, hi := 2, MaxBase+1
	for lo < hi {
		mid := (lo + hi) / 2
		if pow(mid, digits) >= card {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// pow computes b^e with saturation well above any int32 cardinality.
func pow(b, e int) int {
	const cap = 1 << 40
	p := 1
	for i := 0; i < e; i++ {
		p *= b
		if p >= cap {
			return cap
		}
	}
	return p
}

// Max returns the exclusive upper bound of representable ranks,
// Base^Digits.
func (l Layout) Max() int { return pow(l.Base, l.Digits) }

// Valid reports whether the layout is internally consistent.
func (l Layout) Valid() bool {
	return l.Base >= 1 && l.Base <= MaxBase && l.Digits >= 1 && l.Digits <= 8
}

// Digit extracts digit d (0 = least significant) of rank.
func (l Layout) Digit(rank, d int) int {
	for i := 0; i < d; i++ {
		rank /= l.Base
	}
	return rank % l.Base
}

// Encode appends rank's Digits digits (least significant first) to dst
// and returns the extended slice. rank must lie in [0, Max()).
func (l Layout) Encode(rank int, dst []int) []int {
	if rank < 0 || rank >= l.Max() {
		panic(fmt.Sprintf("resbit: rank %d outside [0,%d)", rank, l.Max()))
	}
	for i := 0; i < l.Digits; i++ {
		dst = append(dst, rank%l.Base)
		rank /= l.Base
	}
	return dst
}

// Decode recomposes Digits digits (least significant first) into a rank.
// Digits outside [0, Base) or a wrong digit count return an error rather
// than a wrapped-around rank, so corrupt streams surface instead of
// aliasing to a different value.
func (l Layout) Decode(digits []int) (int, error) {
	if len(digits) != l.Digits {
		return 0, fmt.Errorf("resbit: %d digits for a %d-digit layout", len(digits), l.Digits)
	}
	rank, mult := 0, 1
	for _, d := range digits {
		if d < 0 || d >= l.Base {
			return 0, fmt.Errorf("resbit: digit %d outside [0,%d)", d, l.Base)
		}
		rank += d * mult
		mult *= l.Base
	}
	return rank, nil
}
