package mat

import "fmt"

// The float32 Into-kernels mirror the float64 family in mul.go: identical
// loop orders, identical 4-wide register blocking, identical deterministic
// accumulation order. Property tests in mat32_test.go pin each kernel to its
// float64 twin under the tolerance model documented in DESIGN.md §15, and the
// matching loop structure is what makes that tolerance tight: both widths add
// the same products in the same order, so divergence is pure rounding, never
// reassociation.
//
// Accumulation happens in float32 (not widened to float64 per element) on
// purpose — keeping the arithmetic width equal to the storage width is what
// lets the compiler keep four lanes in registers, and the inner dimensions
// here (code size 1-4 up to hidden widths of a few hundred) are far too small
// for float32 error growth (~k·ulp for a k-term dot product) to approach the
// failure thresholds the archive format quantizes against.

// MulInto32 computes c = a*b into the caller-owned c, which must be a.Rows ×
// b.Cols and must not alias a or b. Serial and allocation-free; returns c.
func MulInto32(a, b, c *Matrix32) *Matrix32 {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulInto32 dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto32 output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols))
	}
	c.Zero()
	mulAddRange32(a, b, c, 0, a.Rows)
	return c
}

// mulAddRange32 accumulates rows [lo, hi) of a*b into c; float32 twin of
// mulAddRange (ikj order, middle loop unrolled four-wide over k).
func mulAddRange32(a, b, c *Matrix32, lo, hi int) {
	n := b.Cols
	kc := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		crow := c.Row(i)[:n]
		k := 0
		for ; k+4 <= kc; k += 4 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			b0 := b.Data[k*n : k*n+n]
			b1 := b.Data[(k+1)*n : (k+1)*n+n]
			b2 := b.Data[(k+2)*n : (k+2)*n+n]
			b3 := b.Data[(k+3)*n : (k+3)*n+n]
			for j, bv := range b0 {
				crow[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < kc; k++ {
			av := arow[k]
			brow := b.Data[k*n : k*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MulTInto32 computes c = a*bᵀ into the caller-owned c, which must be a.Rows ×
// b.Rows and must not alias a or b. Serial and allocation-free; returns c.
func MulTInto32(a, b, c *Matrix32) *Matrix32 {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTInto32 dimension mismatch %dx%d * (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulTInto32 output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Rows))
	}
	mulTRange32(a, b, c, 0, a.Rows)
	return c
}

// mulTRange32 writes rows [lo, hi) of a*bᵀ into c. Unlike the other three
// kernels this one does not mirror its float64 twin's accumulation order: it
// is the decode hot path (every Dense32 inference is an x·Wᵀ), so each output
// row goes through mulTRow32 — the packed-SSE dot kernel on amd64, the
// portable 4-lane loop elsewhere — under the fixed lane contract documented
// in dot32_ref.go. The contract is part of the archive format: float32-plan
// failure streams are computed against it, so it can never change.
func mulTRange32(a, b, c *Matrix32, lo, hi int) {
	kc := a.Cols
	for i := lo; i < hi; i++ {
		mulTRow32(a.Row(i)[:kc], b, c.Row(i)[:b.Rows])
	}
}

// TMulInto32 computes c = aᵀ*b into the caller-owned c, which must be a.Cols ×
// b.Cols and must not alias a or b. Serial and allocation-free; returns c.
func TMulInto32(a, b, c *Matrix32) *Matrix32 {
	c.Zero()
	return TMulAddInto32(a, b, c)
}

// TMulAddInto32 accumulates aᵀ*b into the caller-owned c — the float32
// backward pass's `GradW += gradᵀ·x`. Serial and allocation-free; returns c.
func TMulAddInto32(a, b, c *Matrix32) *Matrix32 {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: TMulAddInto32 dimension mismatch (%dx%d)ᵀ * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: TMulAddInto32 output %dx%d, want %dx%d", c.Rows, c.Cols, a.Cols, b.Cols))
	}
	tMulAddRange32(a, b, c, 0, a.Cols)
	return c
}

// tMulAddRange32 accumulates output rows [lo, hi) of aᵀ*b into c; float32
// twin of tMulAddRange (k loop unrolled four-wide, strided loads from a's
// column i).
func tMulAddRange32(a, b, c *Matrix32, lo, hi int) {
	n := b.Cols
	m := a.Cols
	for i := lo; i < hi; i++ {
		crow := c.Row(i)[:n]
		k := 0
		for ; k+4 <= a.Rows; k += 4 {
			a0 := a.Data[k*m+i]
			a1 := a.Data[(k+1)*m+i]
			a2 := a.Data[(k+2)*m+i]
			a3 := a.Data[(k+3)*m+i]
			b0 := b.Data[k*n : k*n+n]
			b1 := b.Data[(k+1)*n : (k+1)*n+n]
			b2 := b.Data[(k+2)*n : (k+2)*n+n]
			b3 := b.Data[(k+3)*n : (k+3)*n+n]
			for j, bv := range b0 {
				crow[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < a.Rows; k++ {
			av := a.Data[k*m+i]
			brow := b.Data[k*n : k*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}
