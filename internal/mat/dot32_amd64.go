//go:build amd64

package mat

// mulTRowSSE is the packed-SSE implementation of the fixed 4-lane dot
// contract (see dot32_ref.go): dst[o] = dot(a[0:k], b[o*k:(o+1)*k]) for o in
// [0, rows). SSE is baseline on amd64, so no feature detection is needed,
// and the lane/reduction order matches mulTRowRef bit for bit.
//
//go:noescape
func mulTRowSSE(a *float32, k int, b *float32, rows int, dst *float32)

// mulTRow32 dispatches one output row of MulTInto32 to the SSE kernel.
func mulTRow32(arow []float32, b *Matrix32, crow []float32) {
	if len(crow) == 0 {
		return
	}
	if len(arow) == 0 {
		for j := range crow {
			crow[j] = 0
		}
		return
	}
	mulTRowSSE(&arow[0], len(arow), &b.Data[0], b.Rows, &crow[0])
}
