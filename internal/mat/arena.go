package mat

// Arena is a grow-only scratch allocator for the matrices a forward/backward
// pass produces. The first pass through a network allocates headers and
// backing slices; Reset rewinds the arena so the next pass re-serves the same
// memory in the same order, making steady-state training allocation-free.
//
// Ownership rules (see DESIGN.md §12): an arena belongs to exactly one
// goroutine — the data-parallel trainer gives each minibatch shard its own —
// and every matrix served by Get is invalidated by the next Reset. Callers
// must copy anything that outlives the pass into memory they own.
type Arena struct {
	mats []*Matrix
	next int
}

// Get serves a zeroed rows×cols matrix from the arena, growing it on first
// use. A nil arena falls back to New, so code written against an arena also
// runs without one.
//
// Get zeroes recycled memory before returning it: arena-served matrices are
// used as accumulators and as sparse one-hot buffers where only set positions
// are written, exactly like freshly allocated ones.
func (a *Arena) Get(rows, cols int) *Matrix {
	if a == nil {
		return New(rows, cols)
	}
	if a.next < len(a.mats) {
		m := a.mats[a.next]
		if cap(m.Data) >= rows*cols {
			a.next++
			m.Rows, m.Cols = rows, cols
			m.Data = m.Data[:rows*cols]
			m.Zero()
			return m
		}
		// Shape drift (e.g. a smaller final batch followed by a full one):
		// replace the slot with a large-enough matrix and keep going.
		m = New(rows, cols)
		a.mats[a.next] = m
		a.next++
		return m
	}
	m := New(rows, cols)
	a.mats = append(a.mats, m)
	a.next++
	return m
}

// Reset rewinds the arena: every matrix previously served by Get becomes
// reusable (and invalid to its former holder). A nil arena is a no-op.
func (a *Arena) Reset() {
	if a != nil {
		a.next = 0
	}
}
