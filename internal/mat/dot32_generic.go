//go:build !amd64

package mat

// mulTRow32 falls back to the portable statement of the 4-lane dot contract
// on non-amd64 platforms; archives decode identically either way.
func mulTRow32(arow []float32, b *Matrix32, crow []float32) {
	mulTRowRef(arow, b, crow)
}
