package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New(2,3) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	row := m.Row(1)
	if row[2] != 7.5 {
		t.Fatalf("Row(1)[2] = %v, want 7.5", row[2])
	}
	row[0] = 3 // Row aliases the backing store
	if m.At(1, 0) != 3 {
		t.Fatal("Row must alias the matrix data")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) should panic")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, d)
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 {
		t.Fatalf("FromSlice layout wrong: %+v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length should panic")
		}
	}()
	FromSlice(3, 3, d)
}

func TestCloneIndependence(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	want := FromSlice(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if !Equal(tr, want, 0) {
		t.Fatalf("T() = %+v, want %+v", tr, want)
	}
}

func TestAddSubHadamard(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := Add(a, b); !Equal(got, FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatalf("Add = %+v", got)
	}
	if got := Sub(b, a); !Equal(got, FromSlice(2, 2, []float64{4, 4, 4, 4}), 0) {
		t.Fatalf("Sub = %+v", got)
	}
	if got := Hadamard(a, b); !Equal(got, FromSlice(2, 2, []float64{5, 12, 21, 32}), 0) {
		t.Fatalf("Hadamard = %+v", got)
	}
	c := a.Clone()
	AddInPlace(c, b)
	if !Equal(c, FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatalf("AddInPlace = %+v", c)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	a, b := New(2, 2), New(3, 2)
	for name, f := range map[string]func(){
		"Add":      func() { Add(a, b) },
		"Sub":      func() { Sub(a, b) },
		"Hadamard": func() { Hadamard(a, b) },
		"Mul":      func() { Mul(a, b) },
		"TMul":     func() { TMul(New(2, 2), New(3, 2)) },
		"MulT":     func() { MulT(New(2, 2), New(2, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched dims should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("Mul = %+v, want %+v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandUniform(rng, 5, 5, -1, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if got := Mul(a, id); !Equal(got, a, 1e-12) {
		t.Fatal("A*I != A")
	}
	if got := Mul(id, a); !Equal(got, a, 1e-12) {
		t.Fatal("I*A != A")
	}
}

func TestMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Large enough to cross mulParallelThreshold.
	a := RandUniform(rng, 64, 48, -1, 1)
	b := RandUniform(rng, 48, 64, -1, 1)
	got := Mul(a, b)
	want := New(64, 64)
	mulAddRange(a, b, want, 0, 64)
	if !Equal(got, want, 0) {
		t.Fatal("parallel Mul disagrees with serial kernel")
	}
}

func TestMulTParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := RandUniform(rng, 64, 48, -1, 1)
	b := RandUniform(rng, 64, 48, -1, 1)
	got := MulT(a, b)
	want := New(64, 64)
	mulTRange(a, b, want, 0, 64)
	if !Equal(got, want, 0) {
		t.Fatal("parallel MulT disagrees with serial kernel")
	}
}

func TestTMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := RandUniform(rng, 48, 64, -1, 1)
	b := RandUniform(rng, 48, 64, -1, 1)
	got := TMul(a, b)
	want := New(64, 64)
	tMulAddRange(a, b, want, 0, 64)
	if !Equal(got, want, 0) {
		t.Fatal("parallel TMul disagrees with serial kernel")
	}
}

// Property: every *Into kernel writes exactly what its allocating
// counterpart returns, on random shapes (including shapes around the 4-wide
// unroll boundaries and degenerate 1-row/1-col cases).
func TestIntoKernelsMatchAllocating(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, p := 1+rng.Intn(9), 1+rng.Intn(9), 1+rng.Intn(9)
		a := RandUniform(rng, n, m, -2, 2)
		b := RandUniform(rng, m, p, -2, 2)
		bt := b.T() // p×m
		at := a.T() // m×n
		if !Equal(MulInto(a, b, New(n, p)), Mul(a, b), 0) {
			return false
		}
		if !Equal(MulTInto(a, bt, New(n, p)), MulT(a, bt), 0) {
			return false
		}
		if !Equal(TMulInto(at, b, New(n, p)), TMul(at, b), 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: TMulAddInto on a prefilled accumulator equals accumulate-then-add
// up to FP association.
func TestTMulAddIntoAccumulates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, p := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := RandUniform(rng, n, m, -2, 2)
		b := RandUniform(rng, n, p, -2, 2)
		c := RandUniform(rng, m, p, -2, 2)
		want := Add(c, TMul(a, b))
		got := c.Clone()
		TMulAddInto(a, b, got)
		return Equal(got, want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The Into kernels must allocate nothing: they are what makes a steady-state
// training pass allocation-free.
func TestIntoKernelsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := RandUniform(rng, 33, 17, -1, 1)
	b := RandUniform(rng, 17, 9, -1, 1)
	bt := b.T()
	at := a.T()
	c := New(33, 9)
	for name, fn := range map[string]func(){
		"MulInto":     func() { MulInto(a, b, c) },
		"MulTInto":    func() { MulTInto(a, bt, c) },
		"TMulInto":    func() { TMulInto(at, b, c) },
		"TMulAddInto": func() { TMulAddInto(at, b, c) },
	} {
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Errorf("%s allocates %.0f objects per call, want 0", name, allocs)
		}
	}
}

func TestSliceRows(t *testing.T) {
	m := FromSlice(4, 2, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	v := m.SliceRows(1, 3)
	if v.Rows != 2 || v.Cols != 2 || v.At(0, 0) != 3 || v.At(1, 1) != 6 {
		t.Fatalf("SliceRows view wrong: %+v", v)
	}
	v.Set(0, 0, 42)
	if m.At(1, 0) != 42 {
		t.Fatal("SliceRows must alias the parent")
	}
	if e := m.SliceRows(2, 2); e.Rows != 0 {
		t.Fatal("empty SliceRows should have 0 rows")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range SliceRows should panic")
		}
	}()
	m.SliceRows(3, 5)
}

func TestArenaReuseAndZeroing(t *testing.T) {
	ar := &Arena{}
	m1 := ar.Get(3, 4)
	m1.Fill(7)
	d1 := &m1.Data[0]
	ar.Reset()
	m2 := ar.Get(3, 4)
	if &m2.Data[0] != d1 {
		t.Fatal("Arena must reuse backing memory after Reset")
	}
	if m2.MaxAbs() != 0 {
		t.Fatal("Arena.Get must return zeroed memory")
	}
	// Shape drift within capacity reuses; beyond capacity reallocates.
	ar.Reset()
	small := ar.Get(2, 2)
	if &small.Data[0] != d1 {
		t.Fatal("smaller shape should reuse the slot's capacity")
	}
	ar.Reset()
	big := ar.Get(5, 5)
	if big.Rows != 5 || big.Cols != 5 || big.MaxAbs() != 0 {
		t.Fatalf("grown slot wrong: %dx%d", big.Rows, big.Cols)
	}
	// A nil arena falls back to fresh allocation.
	var nilAr *Arena
	if m := nilAr.Get(2, 3); m.Rows != 2 || m.Cols != 3 {
		t.Fatal("nil Arena.Get must allocate")
	}
	nilAr.Reset() // must not panic
}

func TestArenaSteadyStateAllocFree(t *testing.T) {
	ar := &Arena{}
	warm := func() {
		ar.Reset()
		ar.Get(8, 8)
		ar.Get(3, 5)
		ar.Get(1, 16)
	}
	warm()
	if allocs := testing.AllocsPerRun(10, warm); allocs != 0 {
		t.Errorf("warm arena pass allocates %.0f objects, want 0", allocs)
	}
}

func TestMulTAndTMulAgainstExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandUniform(rng, 7, 4, -1, 1)
	b := RandUniform(rng, 9, 4, -1, 1)
	if got, want := MulT(a, b), Mul(a, b.T()); !Equal(got, want, 1e-12) {
		t.Fatal("MulT(a,b) != a*bᵀ")
	}
	c := RandUniform(rng, 7, 5, -1, 1)
	if got, want := TMul(a, c), Mul(a.T(), c); !Equal(got, want, 1e-12) {
		t.Fatal("TMul(a,c) != aᵀ*c")
	}
}

func TestScaleApplyZeroFill(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, -2, 3})
	m.Scale(2)
	if !Equal(m, FromSlice(1, 3, []float64{2, -4, 6}), 0) {
		t.Fatalf("Scale = %+v", m)
	}
	m.Apply(math.Abs)
	if !Equal(m, FromSlice(1, 3, []float64{2, 4, 6}), 0) {
		t.Fatalf("Apply = %+v", m)
	}
	if got := m.MaxAbs(); got != 6 {
		t.Fatalf("MaxAbs = %v", got)
	}
	m.Fill(1.5)
	if m.At(0, 1) != 1.5 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(New(1, 2), New(2, 1), 1) {
		t.Fatal("Equal must reject shape mismatch")
	}
}

// Property: matrix multiplication distributes over addition,
// A*(B+C) == A*B + A*C.
func TestMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, p := 2+rng.Intn(6), 2+rng.Intn(6), 2+rng.Intn(6)
		a := RandUniform(rng, n, m, -2, 2)
		b := RandUniform(rng, m, p, -2, 2)
		c := RandUniform(rng, m, p, -2, 2)
		left := Mul(a, Add(b, c))
		right := Add(Mul(a, b), Mul(a, c))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ.
func TestMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, p := 2+rng.Intn(5), 2+rng.Intn(5), 2+rng.Intn(5)
		a := RandUniform(rng, n, m, -2, 2)
		b := RandUniform(rng, m, p, -2, 2)
		return Equal(Mul(a, b).T(), Mul(b.T(), a.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGlorotHeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := GlorotUniform(rng, 10, 20)
	limit := math.Sqrt(6.0 / 30.0)
	if g.MaxAbs() > limit {
		t.Fatalf("Glorot value %v outside limit %v", g.MaxAbs(), limit)
	}
	h := HeUniform(rng, 10, 20)
	if h.MaxAbs() > math.Sqrt(6.0/20.0) {
		t.Fatal("He value outside limit")
	}
}

func BenchmarkMul64x64(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := RandUniform(rng, 64, 64, -1, 1)
	y := RandUniform(rng, 64, 64, -1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMul256x256(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := RandUniform(rng, 256, 256, -1, 1)
	y := RandUniform(rng, 256, 256, -1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulInto256x256(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := RandUniform(rng, 256, 256, -1, 1)
	y := RandUniform(rng, 256, 256, -1, 1)
	c := New(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulInto(x, y, c)
	}
}

func BenchmarkMulTInto256x64(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := RandUniform(rng, 256, 256, -1, 1)
	y := RandUniform(rng, 64, 256, -1, 1)
	c := New(256, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulTInto(x, y, c)
	}
}

func BenchmarkTMulAddInto64x256(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := RandUniform(rng, 256, 64, -1, 1)
	y := RandUniform(rng, 256, 256, -1, 1)
	c := New(64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TMulAddInto(x, y, c)
	}
}

// mulRangeZeroSkip is the seed repo's Mul kernel, kept here as the baseline
// that justified dropping the per-element zero-skip branch: on dense
// activation matrices (the training workload — sigmoid/tanh outputs are
// never exactly zero) the branch always falls through yet still costs its
// test, and it blocks the 4-wide unrolling the blocked kernel uses. Compare
// BenchmarkZeroSkipKernelDense with BenchmarkBlockedKernelDense.
func mulRangeZeroSkip(a, b, c *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

func BenchmarkZeroSkipKernelDense(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := RandUniform(rng, 256, 128, -1, 1)
	y := RandUniform(rng, 128, 128, -1, 1)
	c := New(256, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Zero()
		mulRangeZeroSkip(x, y, c, 0, 256)
	}
}

func BenchmarkBlockedKernelDense(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := RandUniform(rng, 256, 128, -1, 1)
	y := RandUniform(rng, 128, 128, -1, 1)
	c := New(256, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Zero()
		mulAddRange(x, y, c, 0, 256)
	}
}
