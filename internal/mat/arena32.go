package mat

// Arena32 is the float32 twin of Arena: a grow-only scratch allocator whose
// Reset rewinds rather than frees, making steady-state float32 inference
// allocation-free. Same ownership rules as Arena — one goroutine per arena,
// every served matrix is invalidated by the next Reset.
type Arena32 struct {
	mats []*Matrix32
	next int
}

// Get serves a zeroed rows×cols matrix from the arena, growing it on first
// use. A nil arena falls back to New32, so code written against an arena also
// runs without one. Recycled memory is zeroed before reuse, exactly like
// Arena.Get.
func (a *Arena32) Get(rows, cols int) *Matrix32 {
	if a == nil {
		return New32(rows, cols)
	}
	if a.next < len(a.mats) {
		m := a.mats[a.next]
		if cap(m.Data) >= rows*cols {
			a.next++
			m.Rows, m.Cols = rows, cols
			m.Data = m.Data[:rows*cols]
			m.Zero()
			return m
		}
		// Shape drift (e.g. a smaller final batch followed by a full one):
		// replace the slot with a large-enough matrix and keep going.
		m = New32(rows, cols)
		a.mats[a.next] = m
		a.next++
		return m
	}
	m := New32(rows, cols)
	a.mats = append(a.mats, m)
	a.next++
	return m
}

// Reset rewinds the arena: every matrix previously served by Get becomes
// reusable (and invalid to its former holder). A nil arena is a no-op.
func (a *Arena32) Reset() {
	if a != nil {
		a.next = 0
	}
}
