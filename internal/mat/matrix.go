// Package mat provides dense float64 matrices and vectors sized for the
// small multilayer perceptrons DeepSqueeze trains. It is deliberately
// minimal: row-major storage, explicit dimensions, and the handful of
// operations backpropagation needs. Operations that combine matrices check
// dimensions and panic on mismatch, since a mismatch is always a programming
// error in the caller rather than a data-dependent condition.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zero-valued matrix with the given dimensions.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major) in a Matrix without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SliceRows returns a view of rows [lo, hi) sharing m's backing array (rows
// are contiguous in row-major storage, so no copy is needed). Mutations
// through the view are visible in m. The view is returned by value so that
// slicing allocates nothing; take its address to pass it as a *Matrix.
func (m *Matrix) SliceRows(lo, hi int) Matrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("mat: SliceRows [%d, %d) of %d rows", lo, hi, m.Rows))
	}
	return Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

func checkSame(a, b *Matrix, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Add returns a+b element-wise.
func Add(a, b *Matrix) *Matrix {
	checkSame(a, b, "Add")
	c := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		c.Data[i] = v + b.Data[i]
	}
	return c
}

// AddInPlace adds b into a element-wise.
func AddInPlace(a, b *Matrix) {
	checkSame(a, b, "AddInPlace")
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Sub returns a-b element-wise.
func Sub(a, b *Matrix) *Matrix {
	checkSame(a, b, "Sub")
	c := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		c.Data[i] = v - b.Data[i]
	}
	return c
}

// Hadamard returns the element-wise product of a and b.
func Hadamard(a, b *Matrix) *Matrix {
	checkSame(a, b, "Hadamard")
	c := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		c.Data[i] = v * b.Data[i]
	}
	return c
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Apply replaces each element x of m with f(x) in place.
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// MaxAbs returns the largest absolute element value in m, or 0 for an empty
// matrix.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether a and b have identical shape and every pair of
// elements differs by at most tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
