package mat

// The float32 kernel family fixes its dot-product accumulation order so that
// archives under the float32 plan decode identically on every platform
// (DESIGN.md §15): products accumulate into four interleaved partial sums
// (lane j holds terms j, j+4, j+8, …), the k%4 remainder folds into lane 0,
// and the lanes reduce pairwise as (s0+s2) + (s1+s3). mulTRowRef is the
// portable statement of that contract; the amd64 SSE kernel implements the
// same order with packed instructions and is pinned bit-identical to this
// function by TestMulTRow32MatchesPortableSpec.

// mulTRowRef computes crow[o] = dot(arow, b.Row(o)) for every o under the
// fixed 4-lane accumulation order.
func mulTRowRef(arow []float32, b *Matrix32, crow []float32) {
	k := len(arow)
	for o := range crow {
		brow := b.Row(o)
		var s0, s1, s2, s3 float32
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			s0 += arow[kk] * brow[kk]
			s1 += arow[kk+1] * brow[kk+1]
			s2 += arow[kk+2] * brow[kk+2]
			s3 += arow[kk+3] * brow[kk+3]
		}
		for ; kk < k; kk++ {
			s0 += arow[kk] * brow[kk]
		}
		crow[o] = (s0 + s2) + (s1 + s3)
	}
}
