package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// rand32 returns a float32-valued matrix pair: the float32 matrix and its
// exact float64 image, so both kernel families see bit-identical operand
// values.
func rand32(rng *rand.Rand, rows, cols int, lo, hi float64) (*Matrix32, *Matrix) {
	m64 := RandUniform(rng, rows, cols, lo, hi)
	m32 := To32(m64, nil)
	return m32, To64(m32, nil)
}

// randInt32 returns a small-integer-valued matrix pair. Integer operands with
// bounded inner dimension keep every product and partial sum exactly
// representable at both widths, so the kernels must agree bit-for-bit.
func randInt32(rng *rand.Rand, rows, cols int) (*Matrix32, *Matrix) {
	m64 := New(rows, cols)
	for i := range m64.Data {
		m64.Data[i] = float64(rng.Intn(17) - 8)
	}
	return To32(m64, nil), m64
}

// tol32 is the documented per-element tolerance for a k-term float32 kernel
// against its float64 twin (DESIGN.md §15): the classic forward error bound
// γ_k·Σ|aᵢ||bᵢ| with unit roundoff 2⁻²⁴, widened by a 4× safety factor.
// sumAbs is Σ|aᵢ||bᵢ| for the element under test.
func tol32(k int, sumAbs float64) float64 {
	return 4*float64(k)*math.Exp2(-24)*sumAbs + 1e-30
}

// absMat returns |m| element-wise.
func absMat(m *Matrix) *Matrix {
	out := m.Clone()
	out.Apply(math.Abs)
	return out
}

// checkWithin asserts every element of got32 is within the k-term tolerance
// of ref64, where bound64 carries the per-element Σ|aᵢ||bᵢ|.
func checkWithin(t *testing.T, name string, got32 *Matrix32, ref64, bound64 *Matrix, k int) {
	t.Helper()
	for i, v := range got32.Data {
		diff := math.Abs(float64(v) - ref64.Data[i])
		if diff > tol32(k, bound64.Data[i]) {
			t.Fatalf("%s element %d: f32 %v vs f64 %v (diff %g, tol %g)",
				name, i, v, ref64.Data[i], diff, tol32(k, bound64.Data[i]))
		}
	}
}

// Property: on float32-valued real operands, every f32 kernel matches its
// float64 twin within the documented k-term error bound. Shapes straddle the
// 4-wide unroll boundaries and include degenerate 1-row/1-col cases.
func TestKernels32MatchFloat64WithinTolerance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, p := 1+rng.Intn(9), 1+rng.Intn(9), 1+rng.Intn(9)
		a32, a64 := rand32(rng, n, m, -2, 2)
		b32, b64 := rand32(rng, m, p, -2, 2)
		aAbs, bAbs := absMat(a64), absMat(b64)

		checkWithin(t, "MulInto32",
			MulInto32(a32, b32, New32(n, p)), Mul(a64, b64), Mul(aAbs, bAbs), m)

		bt32, bt64 := To32(b64.T(), nil), b64.T()
		checkWithin(t, "MulTInto32",
			MulTInto32(a32, bt32, New32(n, p)), MulT(a64, bt64), MulT(aAbs, absMat(bt64)), m)

		at32, at64 := To32(a64.T(), nil), a64.T()
		checkWithin(t, "TMulInto32",
			TMulInto32(at32, b32, New32(n, p)), TMul(at64, b64), TMul(absMat(at64), bAbs), m)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: on small-integer-valued operands with bounded inner dimension,
// every product and partial sum is exactly representable at both widths, so
// the f32 kernels must agree with the float64 twins bit-for-bit (ULP
// distance zero), at every accumulation order.
func TestKernels32ExactOnSmallIntegers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, p := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a32, a64 := randInt32(rng, n, m)
		b32, b64 := randInt32(rng, m, p)
		if d := MaxULPDiff32(MulInto32(a32, b32, New32(n, p)), To32(Mul(a64, b64), nil)); d != 0 {
			t.Fatalf("MulInto32 off by %d ULPs on integer operands", d)
		}
		bt32 := To32(b64.T(), nil)
		if d := MaxULPDiff32(MulTInto32(a32, bt32, New32(n, p)), To32(MulT(a64, b64.T()), nil)); d != 0 {
			t.Fatalf("MulTInto32 off by %d ULPs on integer operands", d)
		}
		at32 := To32(a64.T(), nil)
		if d := MaxULPDiff32(TMulInto32(at32, b32, New32(n, p)), To32(TMul(a64.T(), b64), nil)); d != 0 {
			t.Fatalf("TMulInto32 off by %d ULPs on integer operands", d)
		}
		c32, c64 := randInt32(rng, m, p)
		TMulAddInto32(a32, To32(Mul(a64, b64), nil), c32) // a is n×m: aᵀ·(a·b) accumulates into m×p
		TMulAddInto(a64, Mul(a64, b64), c64)
		if d := MaxULPDiff32(c32, To32(c64, nil)); d != 0 {
			t.Fatalf("TMulAddInto32 off by %d ULPs on integer operands", d)
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the platform mulTRow32 kernel (packed SSE on amd64) is
// bit-identical to the portable statement of the 4-lane dot contract in
// dot32_ref.go, across shapes straddling every unroll boundary. This is the
// cross-platform determinism guarantee for float32-plan archives: the
// contract, not the instruction set, defines the failure stream.
func TestMulTRow32MatchesPortableSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k, rows := rng.Intn(19), rng.Intn(19)
		a32, _ := rand32(rng, 1, k, -3, 3)
		b32, _ := rand32(rng, rows, k, -3, 3)
		got := make([]float32, rows)
		want := make([]float32, rows)
		mulTRow32(a32.Row(0), b32, got)
		mulTRowRef(a32.Row(0), b32, want)
		for o := range got {
			if math.Float32bits(got[o]) != math.Float32bits(want[o]) {
				t.Fatalf("k=%d rows=%d row %d: kernel %v, portable spec %v", k, rows, o, got[o], want[o])
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TMulAddInto32 accumulates rather than overwrites.
func TestTMulAddInto32Accumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a32, a64 := rand32(rng, 7, 5, -1, 1)
	b32, b64 := rand32(rng, 7, 3, -1, 1)
	c32, c64 := rand32(rng, 5, 3, -1, 1)
	TMulAddInto32(a32, b32, c32)
	TMulAddInto(a64, b64, c64)
	bound := Add(TMul(absMat(a64), absMat(b64)), absMat(c64))
	checkWithin(t, "TMulAddInto32", c32, c64, bound, 7+1)
}

// The f32 Into kernels must allocate nothing, exactly like the float64
// family: they are what keeps steady-state f32 decode allocation-free.
func TestIntoKernels32AllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a, _ := rand32(rng, 33, 17, -1, 1)
	b, b64 := rand32(rng, 17, 9, -1, 1)
	bt := To32(b64.T(), nil)
	at64 := To64(a, nil)
	at := To32(at64.T(), nil)
	c := New32(33, 9)
	for name, fn := range map[string]func(){
		"MulInto32":     func() { MulInto32(a, b, c) },
		"MulTInto32":    func() { MulTInto32(a, bt, c) },
		"TMulInto32":    func() { TMulInto32(at, b, c) },
		"TMulAddInto32": func() { TMulAddInto32(at, b, c) },
	} {
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Errorf("%s allocates %.0f objects per call, want 0", name, allocs)
		}
	}
}

func TestMatrix32Accessors(t *testing.T) {
	m := New32(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.Row(1)[2] != 5 {
		t.Fatal("Set/At/Row disagree")
	}
	v := m.SliceRows(1, 2)
	if v.Rows != 1 || v.Cols != 3 || v.At(0, 2) != 5 {
		t.Fatal("SliceRows view wrong")
	}
	v.Set(0, 0, 7)
	if m.At(1, 0) != 7 {
		t.Fatal("SliceRows must alias the parent")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone must not alias")
	}
	m.Fill(2)
	m.Apply(func(x float32) float32 { return -x })
	if m.MaxAbs() != 2 || m.At(0, 0) != -2 {
		t.Fatal("Fill/Apply/MaxAbs wrong")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero left values")
	}
}

func TestConversionShims(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m64 := RandUniform(rng, 4, 6, -3, 3)
	m32 := To32(m64, nil)
	back := To64(m32, nil)
	for i, v := range m64.Data {
		if float64(float32(v)) != back.Data[i] {
			t.Fatalf("round trip element %d: %v → %v", i, v, back.Data[i])
		}
	}
	// Widening a float32-valued matrix then narrowing is the identity.
	if d := MaxULPDiff32(To32(back, nil), m32); d != 0 {
		t.Fatalf("narrow∘widen moved values by %d ULPs", d)
	}
	dst := New32(4, 6)
	if To32(m64, dst) != dst {
		t.Fatal("To32 must reuse dst")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("To32 shape mismatch must panic")
		}
	}()
	To32(m64, New32(3, 3))
}

func TestAddInPlace32(t *testing.T) {
	a := FromSlice32(1, 3, []float32{1, 2, 3})
	b := FromSlice32(1, 3, []float32{10, 20, 30})
	AddInPlace32(a, b)
	if a.Data[0] != 11 || a.Data[2] != 33 {
		t.Fatalf("AddInPlace32 got %v", a.Data)
	}
}

func TestUlpDiff32(t *testing.T) {
	cases := []struct {
		x, y float32
		want uint32
	}{
		{1, 1, 0},
		{0, float32(math.Copysign(0, -1)), 0},
		{1, math.Nextafter32(1, 2), 1},
		{-1, math.Nextafter32(-1, -2), 1},
		{float32(math.NaN()), 1, 1 << 31},
		{float32(math.Inf(1)), 1, 1 << 31},
		// -min_denorm → -0 → +0 → +min_denorm: the ordered-bits mapping
		// keeps the signed zeros distinct, so the straddle is three steps.
		{-math.SmallestNonzeroFloat32, math.SmallestNonzeroFloat32, 3},
	}
	for _, c := range cases {
		if got := ulpDiff32(c.x, c.y); got != c.want {
			t.Errorf("ulpDiff32(%v, %v) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
	a := FromSlice32(1, 2, []float32{1, 2})
	b := FromSlice32(2, 1, []float32{1, 2})
	if MaxULPDiff32(a, b) != math.MaxUint32 {
		t.Error("shape mismatch must report MaxUint32")
	}
}

func TestArena32ReuseAndZeroing(t *testing.T) {
	ar := &Arena32{}
	m1 := ar.Get(3, 4)
	m1.Fill(7)
	ar.Reset()
	m2 := ar.Get(3, 4)
	if &m1.Data[0] != &m2.Data[0] {
		t.Fatal("Reset must recycle the same backing array")
	}
	if m2.MaxAbs() != 0 {
		t.Fatal("recycled memory must be zeroed")
	}
	// Shape drift: a bigger request replaces the slot.
	ar.Reset()
	m3 := ar.Get(8, 8)
	if m3.Rows != 8 || m3.Cols != 8 || m3.MaxAbs() != 0 {
		t.Fatal("shape drift must serve a fresh zeroed matrix")
	}
	// A nil arena falls back to allocation.
	var nilAr *Arena32
	if m := nilAr.Get(2, 2); m.Rows != 2 {
		t.Fatal("nil arena must allocate")
	}
	nilAr.Reset() // must not panic
}

func TestArena32SteadyStateAllocFree(t *testing.T) {
	ar := &Arena32{}
	warm := func() {
		ar.Reset()
		ar.Get(16, 8)
		ar.Get(8, 4)
	}
	warm()
	if allocs := testing.AllocsPerRun(10, warm); allocs != 0 {
		t.Fatalf("warm arena allocates %.0f objects per cycle, want 0", allocs)
	}
}

func BenchmarkMulInto32_256x256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, _ := rand32(rng, 256, 256, -1, 1)
	y, _ := rand32(rng, 256, 256, -1, 1)
	c := New32(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulInto32(x, y, c)
	}
}

func BenchmarkMulTInto32_256x64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, _ := rand32(rng, 256, 64, -1, 1)
	w, _ := rand32(rng, 32, 64, -1, 1)
	c := New32(256, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulTInto32(x, w, c)
	}
}

func BenchmarkTMulAddInto32_64x256(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g, _ := rand32(rng, 256, 64, -1, 1)
	x, _ := rand32(rng, 256, 32, -1, 1)
	c := New32(64, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TMulAddInto32(g, x, c)
	}
}
