package mat

import (
	"math"
	"math/rand"
)

// RandUniform fills a new rows×cols matrix with values drawn uniformly from
// [lo, hi) using rng.
func RandUniform(rng *rand.Rand, rows, cols int, lo, hi float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return m
}

// GlorotUniform fills a new fanOut×fanIn weight matrix using Glorot/Xavier
// uniform initialization, the standard choice for the sigmoid/softmax output
// stacks DeepSqueeze's decoders use.
func GlorotUniform(rng *rand.Rand, fanOut, fanIn int) *Matrix {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(rng, fanOut, fanIn, -limit, limit)
}

// HeUniform fills a new fanOut×fanIn weight matrix using He uniform
// initialization, suited to the ReLU hidden layers.
func HeUniform(rng *rand.Rand, fanOut, fanIn int) *Matrix {
	limit := math.Sqrt(6.0 / float64(fanIn))
	return RandUniform(rng, fanOut, fanIn, -limit, limit)
}
