// SSE float32 dot kernel behind MulTInto32. Semantics are the fixed 4-lane
// accumulation contract in dot32_ref.go: packed lanes hold the interleaved
// partial sums, the k%4 remainder folds into lane 0, and lanes reduce as
// (s0+s2) + (s1+s3). SSE1/SSE2 only — baseline for GOARCH=amd64.

#include "textflag.h"

// func mulTRowSSE(a *float32, k int, b *float32, rows int, dst *float32)
TEXT ·mulTRowSSE(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ k+8(FP), CX
	MOVQ b+16(FP), BX
	MOVQ rows+24(FP), R12
	MOVQ dst+32(FP), DI
	MOVQ CX, R13
	SHLQ $2, R13 // b row stride in bytes

loop4: // four b rows at a time
	CMPQ R12, $4
	JL   loop1
	MOVQ SI, AX
	MOVQ BX, R8
	LEAQ (BX)(R13*1), R9
	LEAQ (R9)(R13*1), R10
	LEAQ (R10)(R13*1), R11
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   tail4

vec4: // packed: four k-lanes for each of the four rows
	MOVUPS (AX), X4
	MOVUPS (R8), X5
	MULPS  X4, X5
	ADDPS  X5, X0
	MOVUPS (R9), X6
	MULPS  X4, X6
	ADDPS  X6, X1
	MOVUPS (R10), X7
	MULPS  X4, X7
	ADDPS  X7, X2
	MOVUPS (R11), X8
	MULPS  X4, X8
	ADDPS  X8, X3
	ADDQ   $16, AX
	ADDQ   $16, R8
	ADDQ   $16, R9
	ADDQ   $16, R10
	ADDQ   $16, R11
	DECQ   DX
	JNZ    vec4

tail4: // k%4 remainder folds into lane 0
	MOVQ CX, DX
	ANDQ $3, DX
	JZ   red4

tl4:
	MOVSS (AX), X4
	MOVSS (R8), X5
	MULSS X4, X5
	ADDSS X5, X0
	MOVSS (R9), X6
	MULSS X4, X6
	ADDSS X6, X1
	MOVSS (R10), X7
	MULSS X4, X7
	ADDSS X7, X2
	MOVSS (R11), X8
	MULSS X4, X8
	ADDSS X8, X3
	ADDQ  $4, AX
	ADDQ  $4, R8
	ADDQ  $4, R9
	ADDQ  $4, R10
	ADDQ  $4, R11
	DECQ  DX
	JNZ   tl4

red4: // (s0+s2) + (s1+s3) per accumulator
	PSHUFD $0xEE, X0, X4
	ADDPS  X4, X0
	PSHUFD $0x55, X0, X4
	ADDSS  X4, X0
	MOVSS  X0, (DI)
	PSHUFD $0xEE, X1, X4
	ADDPS  X4, X1
	PSHUFD $0x55, X1, X4
	ADDSS  X4, X1
	MOVSS  X1, 4(DI)
	PSHUFD $0xEE, X2, X4
	ADDPS  X4, X2
	PSHUFD $0x55, X2, X4
	ADDSS  X4, X2
	MOVSS  X2, 8(DI)
	PSHUFD $0xEE, X3, X4
	ADDPS  X4, X3
	PSHUFD $0x55, X3, X4
	ADDSS  X4, X3
	MOVSS  X3, 12(DI)
	ADDQ   $16, DI
	MOVQ   R11, BX // R11 advanced exactly one stride past row o+3
	SUBQ   $4, R12
	JMP    loop4

loop1: // remaining rows one at a time, same lane contract
	TESTQ R12, R12
	JZ    done
	MOVQ  SI, AX
	MOVQ  BX, R8
	XORPS X0, X0
	MOVQ  CX, DX
	SHRQ  $2, DX
	JZ    tail1

vec1:
	MOVUPS (AX), X4
	MOVUPS (R8), X5
	MULPS  X4, X5
	ADDPS  X5, X0
	ADDQ   $16, AX
	ADDQ   $16, R8
	DECQ   DX
	JNZ    vec1

tail1:
	MOVQ CX, DX
	ANDQ $3, DX
	JZ   red1

tl1:
	MOVSS (AX), X4
	MOVSS (R8), X5
	MULSS X4, X5
	ADDSS X5, X0
	ADDQ  $4, AX
	ADDQ  $4, R8
	DECQ  DX
	JNZ   tl1

red1:
	PSHUFD $0xEE, X0, X4
	ADDPS  X4, X0
	PSHUFD $0x55, X0, X4
	ADDSS  X4, X0
	MOVSS  X0, (DI)
	ADDQ   $4, DI
	MOVQ   R8, BX
	DECQ   R12
	JMP    loop1

done:
	RET
