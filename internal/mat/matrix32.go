package mat

import (
	"fmt"
	"math"
)

// Matrix32 is the float32 twin of Matrix: a dense row-major matrix sized for
// the same small MLPs, at half the operand width. The float32 kernel family
// exists for the inference hot path — decode-time matmuls are memory-bandwidth
// bound, so halving element size roughly doubles the rows that fit per cache
// line — while training keeps float64 masters. The two families deliberately
// share nothing at the type level: a precision mix-up should fail to compile,
// not silently widen.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// New32 returns a zero-valued float32 matrix with the given dimensions.
func New32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice32 wraps data (row-major) in a Matrix32 without copying.
func FromSlice32(rows, cols int, data []float32) *Matrix32 {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SliceRows returns a view of rows [lo, hi) sharing m's backing array. Same
// contract as Matrix.SliceRows: returned by value so slicing allocates
// nothing; take its address to pass it as a *Matrix32.
func (m *Matrix32) SliceRows(lo, hi int) Matrix32 {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("mat: SliceRows [%d, %d) of %d rows", lo, hi, m.Rows))
	}
	return Matrix32{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// Clone returns a deep copy of m.
func (m *Matrix32) Clone() *Matrix32 {
	c := New32(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element of m to zero.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix32) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Apply replaces each element x of m with f(x) in place.
func (m *Matrix32) Apply(f func(float32) float32) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// MaxAbs returns the largest absolute element value in m, or 0 for an empty
// matrix.
func (m *Matrix32) MaxAbs() float32 {
	max := float32(0)
	for _, v := range m.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > max {
			max = a
		}
	}
	return max
}

// Equal32 reports whether a and b have identical shape and every pair of
// elements differs by at most tol.
func Equal32(a, b *Matrix32, tol float32) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		d := v - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// To32 narrows a float64 matrix into dst (allocated when nil), rounding each
// element to the nearest float32. Weights serialized through the archive
// format are already float32-valued, so narrowing a deserialized decoder is
// exact. Returns dst.
func To32(src *Matrix, dst *Matrix32) *Matrix32 {
	if dst == nil {
		dst = New32(src.Rows, src.Cols)
	}
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mat: To32 output %dx%d, want %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		dst.Data[i] = float32(v)
	}
	return dst
}

// To64 widens a float32 matrix into dst (allocated when nil). Widening is
// always exact. Returns dst.
func To64(src *Matrix32, dst *Matrix) *Matrix {
	if dst == nil {
		dst = New(src.Rows, src.Cols)
	}
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mat: To64 output %dx%d, want %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		dst.Data[i] = float64(v)
	}
	return dst
}

// AddInPlace32 adds b into a element-wise. Shapes must match.
func AddInPlace32(a, b *Matrix32) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: AddInPlace32 shape mismatch %dx%d += %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// MaxULPDiff32 returns the largest distance, in float32 units-in-last-place,
// between corresponding elements of a and b — the metric the property tests
// use to bound kernel divergence. Infinities and NaNs count as 1<<31 apart
// unless bit-identical; +0 and -0 are 0 apart.
func MaxULPDiff32(a, b *Matrix32) uint32 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.MaxUint32
	}
	var max uint32
	for i, v := range a.Data {
		if d := ulpDiff32(v, b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// ulpDiff32 measures how many representable float32 values separate x and y.
func ulpDiff32(x, y float32) uint32 {
	if x == y {
		return 0 // covers +0 vs -0
	}
	bx, by := math.Float32bits(x), math.Float32bits(y)
	if bx == by {
		return 0
	}
	if math.IsNaN(float64(x)) || math.IsNaN(float64(y)) ||
		math.IsInf(float64(x), 0) || math.IsInf(float64(y), 0) {
		return 1 << 31
	}
	// Map the sign-magnitude bit patterns onto a monotone number line.
	ox, oy := orderedBits32(bx), orderedBits32(by)
	if ox > oy {
		return ox - oy
	}
	return oy - ox
}

func orderedBits32(b uint32) uint32 {
	if b&(1<<31) != 0 {
		return ^b // negative floats: reverse order below the zero point
	}
	return b | 1<<31
}
