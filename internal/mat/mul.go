package mat

import (
	"fmt"

	"deepsqueeze/internal/pipeline"
)

// mulParallelThreshold is the minimum number of scalar multiplications at
// which the allocating products fan work out across goroutines. Below it the
// scheduling overhead dominates the arithmetic.
const mulParallelThreshold = 1 << 16

// pool is the package-level bounded worker pool shared by every parallel
// product in the process. Reusing one pool keeps the total number of matmul
// helper goroutines bounded by the CPU count no matter how many callers
// multiply concurrently, instead of each call spawning its own fan-out; its
// caller-runs discipline means nested or contended calls degrade to serial
// execution in the caller.
var pool = pipeline.NewPool(0)

// parallelRows splits [0, rows) across the pool when the product is large
// enough to pay for it. Each output row is produced by exactly one goroutine
// running the serial kernel in a fixed iteration order, so results are
// bit-identical at every parallelism level.
func parallelRows(rows, work int, fn func(lo, hi int)) {
	if work < mulParallelThreshold || rows < 2 || pool.Size() < 2 {
		fn(0, rows)
		return
	}
	workers := pool.Size()
	if workers > rows {
		workers = rows
	}
	chunk := (rows + workers - 1) / workers
	n := (rows + chunk - 1) / chunk
	pool.Do(n, 0, func(i int) {
		lo := i * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		fn(lo, hi)
	})
}

// Mul returns the matrix product a*b. Large products are split across rows
// over the shared pool; see MulInto for the serial, allocation-free variant.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Cols)
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		mulAddRange(a, b, c, lo, hi)
	})
	return c
}

// MulInto computes c = a*b into the caller-owned c, which must be a.Rows ×
// b.Cols and must not alias a or b. It runs on the calling goroutine only —
// the training loop parallelizes across minibatch shards, not inside
// kernels — and performs no allocation. Returns c.
func MulInto(a, b, c *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulInto dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols))
	}
	c.Zero()
	mulAddRange(a, b, c, 0, a.Rows)
	return c
}

// mulAddRange accumulates rows [lo, hi) of a*b into c (an ikj loop order:
// the inner loop walks the output row and four b rows sequentially). The
// middle loop is unrolled four-wide over k so each pass over the output row
// folds four rank-1 updates into one load/store of crow[j], which both cuts
// memory traffic 4x and removes the per-k zero-skip branch the old kernel
// carried (measured on dense inputs the skip cost ~8% in mispredictions and
// saved nothing; see DESIGN.md §12).
func mulAddRange(a, b, c *Matrix, lo, hi int) {
	n := b.Cols
	kc := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		crow := c.Row(i)[:n]
		k := 0
		for ; k+4 <= kc; k += 4 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			b0 := b.Data[k*n : k*n+n]
			b1 := b.Data[(k+1)*n : (k+1)*n+n]
			b2 := b.Data[(k+2)*n : (k+2)*n+n]
			b3 := b.Data[(k+3)*n : (k+3)*n+n]
			for j, bv := range b0 {
				crow[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < kc; k++ {
			av := arow[k]
			brow := b.Data[k*n : k*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MulT returns a * bᵀ without materializing the transpose. Large products
// are split across rows of a over the shared pool.
func MulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulT dimension mismatch %dx%d * (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Rows)
	parallelRows(a.Rows, a.Rows*a.Cols*b.Rows, func(lo, hi int) {
		mulTRange(a, b, c, lo, hi)
	})
	return c
}

// MulTInto computes c = a*bᵀ into the caller-owned c, which must be a.Rows ×
// b.Rows and must not alias a or b. Serial and allocation-free; returns c.
func MulTInto(a, b, c *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTInto dimension mismatch %dx%d * (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulTInto output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Rows))
	}
	mulTRange(a, b, c, 0, a.Rows)
	return c
}

// mulTRange writes rows [lo, hi) of a*bᵀ into c. Each output element is an
// inner product of two contiguous rows; the j loop is unrolled four-wide so
// one pass over arow feeds four independent accumulators (register blocking:
// the four dot products hide each other's FMA latency and arow is loaded
// once per group instead of once per output).
func mulTRange(a, b, c *Matrix, lo, hi int) {
	kc := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)[:kc]
		crow := c.Row(i)
		j := 0
		for ; j+4 <= b.Rows; j += 4 {
			b0 := b.Data[j*kc : j*kc+kc]
			b1 := b.Data[(j+1)*kc : (j+1)*kc+kc]
			b2 := b.Data[(j+2)*kc : (j+2)*kc+kc]
			b3 := b.Data[(j+3)*kc : (j+3)*kc+kc]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			crow[j], crow[j+1], crow[j+2], crow[j+3] = s0, s1, s2, s3
		}
		for ; j < b.Rows; j++ {
			brow := b.Data[j*kc : j*kc+kc]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			crow[j] = s
		}
	}
}

// TMul returns aᵀ * b without materializing the transpose. Large products
// are split across output rows (columns of a) over the shared pool.
func TMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: TMul dimension mismatch (%dx%d)ᵀ * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Cols, b.Cols)
	parallelRows(a.Cols, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		tMulAddRange(a, b, c, lo, hi)
	})
	return c
}

// TMulInto computes c = aᵀ*b into the caller-owned c, which must be a.Cols ×
// b.Cols and must not alias a or b. Serial and allocation-free; returns c.
func TMulInto(a, b, c *Matrix) *Matrix {
	c.Zero()
	return TMulAddInto(a, b, c)
}

// TMulAddInto accumulates aᵀ*b into the caller-owned c — the backward pass's
// `GradW += gradᵀ·x` without an intermediate product matrix. Serial and
// allocation-free; returns c.
func TMulAddInto(a, b, c *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: TMulAddInto dimension mismatch (%dx%d)ᵀ * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: TMulAddInto output %dx%d, want %dx%d", c.Rows, c.Cols, a.Cols, b.Cols))
	}
	tMulAddRange(a, b, c, 0, a.Cols)
	return c
}

// tMulAddRange accumulates output rows [lo, hi) of aᵀ*b into c. Output row i
// is Σ_k a[k][i]·b[k]; the k loop is unrolled four-wide so one pass over the
// output row folds four b rows at the cost of four strided loads from a's
// column i. The old kernel's per-k zero-skip branch is gone for the same
// reason as in mulAddRange.
func tMulAddRange(a, b, c *Matrix, lo, hi int) {
	n := b.Cols
	m := a.Cols
	for i := lo; i < hi; i++ {
		crow := c.Row(i)[:n]
		k := 0
		for ; k+4 <= a.Rows; k += 4 {
			a0 := a.Data[k*m+i]
			a1 := a.Data[(k+1)*m+i]
			a2 := a.Data[(k+2)*m+i]
			a3 := a.Data[(k+3)*m+i]
			b0 := b.Data[k*n : k*n+n]
			b1 := b.Data[(k+1)*n : (k+1)*n+n]
			b2 := b.Data[(k+2)*n : (k+2)*n+n]
			b3 := b.Data[(k+3)*n : (k+3)*n+n]
			for j, bv := range b0 {
				crow[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < a.Rows; k++ {
			av := a.Data[k*m+i]
			brow := b.Data[k*n : k*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}
