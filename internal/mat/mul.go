package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// mulParallelThreshold is the minimum number of scalar multiplications at
// which Mul fans work out across goroutines. Below it the goroutine overhead
// dominates the arithmetic.
const mulParallelThreshold = 1 << 16

// Mul returns the matrix product a*b.
//
// The kernel iterates k in the middle loop so the inner loop walks both the
// output row and the b row sequentially (an ikj loop order), which keeps the
// accesses cache-friendly without explicit blocking at the sizes DeepSqueeze
// uses. Large products are split across rows onto all CPUs.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	if work < mulParallelThreshold || a.Rows < 2 {
		mulRange(a, b, c, 0, a.Rows)
		return c
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(a, b, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return c
}

func mulRange(a, b, c *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MulT returns a * bᵀ without materializing the transpose.
func MulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulT dimension mismatch %dx%d * (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float64
			for k, av := range arow {
				sum += av * brow[k]
			}
			crow[j] = sum
		}
	}
	return c
}

// TMul returns aᵀ * b without materializing the transpose.
func TMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: TMul dimension mismatch (%dx%d)ᵀ * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.Row(i)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}
