package rangecoder

import "fmt"

// AdaptiveModel maintains per-symbol frequencies over a fixed alphabet with
// a Fenwick (binary indexed) tree for O(log n) cumulative queries, updates,
// and symbol lookup. Every symbol starts with frequency 1 so the decoder can
// always make progress; Update bumps the observed symbol and rescales when
// the total approaches the coder's limit.
//
// Encoder and decoder must perform identical Update calls in the same order,
// which keeps their models in lockstep.
type AdaptiveModel struct {
	n     int
	tree  []uint32 // 1-based Fenwick tree over frequencies
	total uint32
	inc   uint32
}

// NewAdaptiveModel returns a model over an alphabet of n symbols, all with
// initial frequency 1. inc controls adaptation speed; 32 is a good default
// for the column alphabets Squish sees.
func NewAdaptiveModel(n int, inc uint32) *AdaptiveModel {
	if n <= 0 {
		panic(fmt.Sprintf("rangecoder: alphabet size %d", n))
	}
	if inc == 0 {
		inc = 1
	}
	m := &AdaptiveModel{n: n, tree: make([]uint32, n+1), inc: inc}
	for s := 0; s < n; s++ {
		m.add(s, 1)
	}
	m.total = uint32(n)
	if m.total > MaxTotal {
		panic(fmt.Sprintf("rangecoder: alphabet %d exceeds MaxTotal", n))
	}
	return m
}

// N returns the alphabet size.
func (m *AdaptiveModel) N() int { return m.n }

// Total returns the current cumulative frequency total.
func (m *AdaptiveModel) Total() uint32 { return m.total }

func (m *AdaptiveModel) add(sym int, delta uint32) {
	for i := sym + 1; i <= m.n; i += i & (-i) {
		m.tree[i] += delta
	}
}

// cum returns the cumulative frequency of symbols < sym.
func (m *AdaptiveModel) cum(sym int) uint32 {
	var s uint32
	for i := sym; i > 0; i -= i & (-i) {
		s += m.tree[i]
	}
	return s
}

// Freq returns (cumFreq, freq) for sym.
func (m *AdaptiveModel) Freq(sym int) (uint32, uint32) {
	if sym < 0 || sym >= m.n {
		panic(fmt.Sprintf("rangecoder: symbol %d outside alphabet %d", sym, m.n))
	}
	c := m.cum(sym)
	return c, m.cum(sym+1) - c
}

// FindSymbol locates the symbol whose cumulative range contains target and
// returns (sym, cumFreq, freq). It descends the Fenwick tree in O(log n).
func (m *AdaptiveModel) FindSymbol(target uint32) (int, uint32, uint32) {
	idx := 0
	var cum uint32
	// Highest power of two ≤ n.
	mask := 1
	for mask<<1 <= m.n {
		mask <<= 1
	}
	for ; mask > 0; mask >>= 1 {
		next := idx + mask
		if next <= m.n && cum+m.tree[next] <= target {
			idx = next
			cum += m.tree[next]
		}
	}
	// idx symbols have cumulative frequency ≤ target, so idx is the symbol.
	if idx >= m.n {
		idx = m.n - 1
		cum -= 0 // target was clamped by the decoder; keep last symbol
		cum = m.cum(idx)
	}
	return idx, cum, m.cum(idx+1) - cum
}

// Update increases sym's frequency, rescaling all frequencies (halving,
// floored at 1) when the total would exceed the coder limit. Near the limit
// a rescale may not free a full increment — the frequency-1 floor makes the
// halved total at least n — so the bump is clamped to what fits (possibly
// nothing, saturating the model). The clamp depends only on model state, so
// encoder and decoder stay in lockstep, and total never exceeds MaxTotal
// for any alphabet NewAdaptiveModel accepts.
func (m *AdaptiveModel) Update(sym int) {
	if sym < 0 || sym >= m.n {
		panic(fmt.Sprintf("rangecoder: symbol %d outside alphabet %d", sym, m.n))
	}
	if m.total+m.inc > MaxTotal {
		m.rescale()
	}
	inc := m.inc
	if m.total+inc > MaxTotal {
		inc = MaxTotal - m.total
	}
	if inc > 0 {
		m.add(sym, inc)
		m.total += inc
	}
}

func (m *AdaptiveModel) rescale() {
	freqs := make([]uint32, m.n)
	for s := 0; s < m.n; s++ {
		_, f := m.Freq(s)
		freqs[s] = (f + 1) / 2
	}
	for i := range m.tree {
		m.tree[i] = 0
	}
	m.total = 0
	for s, f := range freqs {
		m.add(s, f)
		m.total += f
	}
}

// EncodeSymbol encodes sym with the model's current statistics, then adapts.
func (m *AdaptiveModel) EncodeSymbol(e *Encoder, sym int) {
	c, f := m.Freq(sym)
	e.Encode(c, f, m.total)
	m.Update(sym)
}

// DecodeSymbol decodes one symbol and adapts, mirroring EncodeSymbol.
func (m *AdaptiveModel) DecodeSymbol(d *Decoder) int {
	target := d.DecodeFreq(m.total)
	sym, c, f := m.FindSymbol(target)
	d.Update(c, f, m.total)
	m.Update(sym)
	return sym
}
