package rangecoder

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// encodeDecode round-trips symbols through fresh adaptive models.
func encodeDecode(t *testing.T, alphabet int, symbols []int) {
	t.Helper()
	enc := NewEncoder()
	em := NewAdaptiveModel(alphabet, 32)
	for _, s := range symbols {
		em.EncodeSymbol(enc, s)
	}
	buf := enc.Bytes()
	dec := NewDecoder(buf)
	dm := NewAdaptiveModel(alphabet, 32)
	for i, want := range symbols {
		if got := dm.DecodeSymbol(dec); got != want {
			t.Fatalf("symbol %d: got %d want %d", i, got, want)
		}
	}
	if dec.Overrun() {
		t.Fatal("decoder overran its input")
	}
}

func TestRoundTripBasic(t *testing.T) {
	encodeDecode(t, 4, []int{0, 1, 2, 3, 0, 0, 0, 1, 2, 3, 3, 3})
	encodeDecode(t, 1, []int{0, 0, 0, 0})
	encodeDecode(t, 256, []int{255, 0, 128, 7})
	encodeDecode(t, 2, nil)
}

func TestRoundTripLongSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	symbols := make([]int, 50000)
	for i := range symbols {
		if rng.Float64() < 0.9 {
			symbols[i] = 0
		} else {
			symbols[i] = 1 + rng.Intn(15)
		}
	}
	encodeDecode(t, 16, symbols)
}

func TestCompressionApproachesEntropy(t *testing.T) {
	// Bernoulli(0.05) over {0,1}: H ≈ 0.286 bits/symbol.
	rng := rand.New(rand.NewSource(2))
	n := 100000
	symbols := make([]int, n)
	ones := 0
	for i := range symbols {
		if rng.Float64() < 0.05 {
			symbols[i] = 1
			ones++
		}
	}
	enc := NewEncoder()
	m := NewAdaptiveModel(2, 32)
	for _, s := range symbols {
		m.EncodeSymbol(enc, s)
	}
	buf := enc.Bytes()
	p := float64(ones) / float64(n)
	entropy := -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	bitsPer := float64(len(buf)*8) / float64(n)
	if bitsPer > entropy*1.15+0.02 {
		t.Fatalf("adaptive coder %.3f bits/symbol vs entropy %.3f", bitsPer, entropy)
	}
}

func TestRoundTripManyRescales(t *testing.T) {
	// Enough updates to force repeated rescaling (total capped at 1<<16).
	rng := rand.New(rand.NewSource(3))
	symbols := make([]int, 200000)
	for i := range symbols {
		symbols[i] = rng.Intn(7)
	}
	encodeDecode(t, 7, symbols)
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := 1 + rng.Intn(300)
		n := rng.Intn(2000)
		symbols := make([]int, n)
		// Mix uniform and skewed regimes.
		skew := rng.Float64()
		for i := range symbols {
			if rng.Float64() < skew {
				symbols[i] = 0
			} else {
				symbols[i] = rng.Intn(alphabet)
			}
		}
		enc := NewEncoder()
		em := NewAdaptiveModel(alphabet, 1+uint32(rng.Intn(64)))
		for _, s := range symbols {
			em.EncodeSymbol(enc, s)
		}
		dec := NewDecoder(enc.Bytes())
		dm := NewAdaptiveModel(alphabet, em.inc)
		for _, want := range symbols {
			if dm.DecodeSymbol(dec) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestModelInvariants(t *testing.T) {
	m := NewAdaptiveModel(10, 32)
	rng := rand.New(rand.NewSource(4))
	for step := 0; step < 10000; step++ {
		s := rng.Intn(10)
		m.Update(s)
		if m.Total() > MaxTotal {
			t.Fatalf("total %d exceeds MaxTotal after step %d", m.Total(), step)
		}
	}
	// Cumulative frequencies must be consistent and every freq ≥ 1.
	var cum uint32
	for s := 0; s < 10; s++ {
		c, f := m.Freq(s)
		if c != cum {
			t.Fatalf("symbol %d cum = %d, want %d", s, c, cum)
		}
		if f == 0 {
			t.Fatalf("symbol %d has zero frequency", s)
		}
		cum += f
	}
	if cum != m.Total() {
		t.Fatalf("sum of freqs %d != total %d", cum, m.Total())
	}
}

func TestFindSymbolMatchesFreq(t *testing.T) {
	m := NewAdaptiveModel(37, 17)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		m.Update(rng.Intn(37))
	}
	for target := uint32(0); target < m.Total(); target += 13 {
		sym, c, f := m.FindSymbol(target)
		wc, wf := m.Freq(sym)
		if c != wc || f != wf {
			t.Fatalf("FindSymbol(%d) = (%d,%d,%d), Freq gives (%d,%d)", target, sym, c, f, wc, wf)
		}
		if target < c || target >= c+f {
			t.Fatalf("target %d outside [%d,%d) for symbol %d", target, c, c+f, sym)
		}
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	checkPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	checkPanic("zero alphabet", func() { NewAdaptiveModel(0, 1) })
	checkPanic("symbol out of range", func() { NewAdaptiveModel(3, 1).Update(3) })
	checkPanic("encode zero freq", func() { NewEncoder().Encode(0, 0, 10) })
	checkPanic("encode after flush", func() {
		e := NewEncoder()
		e.Bytes()
		e.Encode(0, 1, 2)
	})
}

func BenchmarkAdaptiveEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	symbols := make([]int, 1<<14)
	for i := range symbols {
		symbols[i] = rng.Intn(64)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := NewEncoder()
		m := NewAdaptiveModel(64, 32)
		for _, s := range symbols {
			m.EncodeSymbol(enc, s)
		}
		enc.Bytes()
	}
}
