// Package rangecoder implements a carryless byte-oriented range coder
// (Subbotin style) together with adaptive frequency models. It is the
// entropy-coding backend of our Squish baseline, which couples a Bayesian
// network over columns with arithmetic coding — the range coder is the
// practical arithmetic-coder variant.
//
// Cumulative frequency totals must stay below 1<<16; AdaptiveModel enforces
// this by periodic rescaling.
package rangecoder

import (
	"errors"
	"fmt"
)

const (
	top = 1 << 24
	bot = 1 << 16
)

// MaxTotal is the largest cumulative frequency total a model may present to
// the coder.
const MaxTotal = bot - 1

// ErrCorrupt is returned when a decoder reads past its input.
var ErrCorrupt = errors.New("rangecoder: corrupt or truncated input")

// Encoder encodes symbols given (cumFreq, freq, totFreq) triples.
type Encoder struct {
	low  uint32
	rng  uint32
	out  []byte
	done bool
}

// NewEncoder returns a ready encoder.
func NewEncoder() *Encoder {
	return &Encoder{rng: 0xFFFFFFFF}
}

// Encode narrows the current interval to the symbol whose cumulative range
// is [cumFreq, cumFreq+freq) out of totFreq. freq must be non-zero and
// cumFreq+freq ≤ totFreq ≤ MaxTotal.
func (e *Encoder) Encode(cumFreq, freq, totFreq uint32) {
	if e.done {
		panic("rangecoder: Encode after Bytes")
	}
	if freq == 0 || cumFreq+freq > totFreq || totFreq > MaxTotal {
		panic(fmt.Sprintf("rangecoder: invalid triple cum=%d freq=%d tot=%d", cumFreq, freq, totFreq))
	}
	r := e.rng / totFreq
	e.low += cumFreq * r
	e.rng = freq * r
	for {
		if (e.low ^ (e.low + e.rng)) >= top {
			if e.rng >= bot {
				break
			}
			e.rng = -e.low & (bot - 1)
		}
		e.out = append(e.out, byte(e.low>>24))
		e.low <<= 8
		e.rng <<= 8
	}
}

// Bytes flushes the coder state and returns the encoded buffer. The encoder
// cannot be used afterwards.
func (e *Encoder) Bytes() []byte {
	if !e.done {
		for i := 0; i < 4; i++ {
			e.out = append(e.out, byte(e.low>>24))
			e.low <<= 8
		}
		e.done = true
	}
	return e.out
}

// Decoder mirrors Encoder over a byte buffer.
type Decoder struct {
	low  uint32
	rng  uint32
	code uint32
	buf  []byte
	pos  int
}

// NewDecoder returns a decoder over buf (not copied).
func NewDecoder(buf []byte) *Decoder {
	d := &Decoder{rng: 0xFFFFFFFF, buf: buf}
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

// next returns the next input byte, or zero padding past the end. The
// trailing-zero convention matches the encoder's 4-byte flush; genuinely
// corrupt streams are caught by the callers' symbol-count bookkeeping.
func (d *Decoder) next() byte {
	if d.pos < len(d.buf) {
		b := d.buf[d.pos]
		d.pos++
		return b
	}
	d.pos++
	return 0
}

// DecodeFreq returns the scaled cumulative frequency of the next symbol; the
// caller locates the symbol whose [cumFreq, cumFreq+freq) contains it and
// then calls Update with that triple.
func (d *Decoder) DecodeFreq(totFreq uint32) uint32 {
	if totFreq == 0 || totFreq > MaxTotal {
		panic(fmt.Sprintf("rangecoder: invalid totFreq %d", totFreq))
	}
	r := d.rng / totFreq
	f := (d.code - d.low) / r
	if f >= totFreq {
		f = totFreq - 1
	}
	return f
}

// Update consumes the symbol identified after DecodeFreq.
func (d *Decoder) Update(cumFreq, freq, totFreq uint32) {
	r := d.rng / totFreq
	d.low += cumFreq * r
	d.rng = freq * r
	for {
		if (d.low ^ (d.low + d.rng)) >= top {
			if d.rng >= bot {
				break
			}
			d.rng = -d.low & (bot - 1)
		}
		d.code = d.code<<8 | uint32(d.next())
		d.low <<= 8
		d.rng <<= 8
	}
}

// Overrun reports whether the decoder has consumed more bytes than the
// buffer held (beyond the encoder's implicit zero padding). Useful as a
// cheap corruption check after decoding a known symbol count.
func (d *Decoder) Overrun() bool { return d.pos > len(d.buf)+4 }
