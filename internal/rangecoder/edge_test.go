package rangecoder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// A one-symbol alphabet is the degenerate skew: every symbol has the whole
// probability mass, so the coded body carries (almost) no information. The
// round trip must still hold, including through rescales.
func TestRoundTripAlphabetOne(t *testing.T) {
	for _, n := range []int{1, 5, 5000} {
		symbols := make([]int, n)
		encodeDecode(t, 1, symbols)
	}
	// The coded body should stay near the coder's 4-byte flush regardless of
	// stream length: log2(1) = 0 bits per symbol.
	enc := NewEncoder()
	m := NewAdaptiveModel(1, 32)
	for i := 0; i < 100000; i++ {
		m.EncodeSymbol(enc, 0)
	}
	if got := len(enc.Bytes()); got > 8 {
		t.Fatalf("alphabet-1 stream of 100000 symbols coded to %d bytes", got)
	}
}

// An empty stream must round-trip for any alphabet: Bytes flushes the
// coder's initial state and the decoder simply never reads a symbol.
func TestRoundTripEmptyStream(t *testing.T) {
	for _, alphabet := range []int{1, 2, 7, 256, 65535} {
		encodeDecode(t, alphabet, nil)
	}
}

// Near MaxTotal a rescale cannot shrink the total below the alphabet size
// (every frequency is floored at 1), so for alphabets close to the limit the
// post-rescale total plus a full increment can overflow the coder's budget.
// Update must clamp — total never exceeds MaxTotal — and the clamp must be a
// pure function of model state so encoder and decoder stay in lockstep.
func TestRescaleAtMaxTotalBoundary(t *testing.T) {
	for _, alphabet := range []int{int(MaxTotal), int(MaxTotal) - 1, int(MaxTotal) - 33, 1 << 15} {
		m := NewAdaptiveModel(alphabet, 32)
		rng := rand.New(rand.NewSource(int64(alphabet)))
		// Saturated alphabets rescale on every Update (O(n log n) each), so
		// keep the iteration count modest.
		iters := 300
		if alphabet <= 1<<15 {
			iters = 4000
		}
		for i := 0; i < iters; i++ {
			m.Update(rng.Intn(alphabet))
			if m.Total() > MaxTotal {
				t.Fatalf("alphabet %d: total %d exceeds MaxTotal after %d updates", alphabet, m.Total(), i+1)
			}
		}
	}
	// And the full encode/decode loop survives a saturating model: at
	// alphabet == MaxTotal every update clamps to zero immediately.
	symbols := make([]int, 100)
	rng := rand.New(rand.NewSource(7))
	for i := range symbols {
		symbols[i] = rng.Intn(int(MaxTotal))
	}
	encodeDecode(t, int(MaxTotal), symbols)
}

// Model lockstep is the adaptive codec's correctness contract: after coding
// any stream, the decoder's model must be bit-identical to the encoder's —
// same total, same per-symbol frequencies — or the next symbol would
// diverge. testing/quick drives random alphabets and streams through both
// sides and compares the full frequency tables.
func TestQuickModelLockstep(t *testing.T) {
	property := func(alphaSeed uint16, streamSeed int64, length uint8) bool {
		alphabet := int(alphaSeed)%2048 + 1
		rng := rand.New(rand.NewSource(streamSeed))
		symbols := make([]int, int(length))
		for i := range symbols {
			// Skew toward low symbols, like failure ranks.
			s := int(rng.ExpFloat64() * float64(alphabet) / 8)
			if s >= alphabet {
				s = alphabet - 1
			}
			symbols[i] = s
		}
		enc := NewEncoder()
		em := NewAdaptiveModel(alphabet, 32)
		for _, s := range symbols {
			em.EncodeSymbol(enc, s)
		}
		dec := NewDecoder(enc.Bytes())
		dm := NewAdaptiveModel(alphabet, 32)
		for _, want := range symbols {
			if dm.DecodeSymbol(dec) != want {
				return false
			}
		}
		if dec.Overrun() || em.Total() != dm.Total() {
			return false
		}
		for s := 0; s < alphabet; s++ {
			ec, ef := em.Freq(s)
			dc, df := dm.Freq(s)
			if ec != dc || ef != df {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
