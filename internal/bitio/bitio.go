// Package bitio provides bit-granular writers and readers over byte
// buffers. The columnar codecs (bit-packing, Huffman, run-length bitmaps)
// and the range coder all sit on top of it.
//
// Bits are written most-significant-bit first within each byte, which makes
// the output independent of machine endianness and keeps canonical Huffman
// codes directly comparable as integers.
package bitio

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a read requests more bits than remain.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of input")

// ErrBitCount is returned when a bit count outside [0, 64] is requested.
// Decode paths must surface this as data corruption rather than panic: bit
// widths often come straight from untrusted archive bytes.
var ErrBitCount = errors.New("bitio: bit count out of range")

// Writer accumulates bits into an in-memory byte buffer. Invalid writes
// (bit counts over 64) set a sticky error reported by Err; they never
// panic. Callers must check Err before trusting Bytes.
type Writer struct {
	buf  []byte
	cur  byte
	nCur uint // number of bits currently held in cur (0..7)
	err  error
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBit appends a single bit (any non-zero b writes 1).
func (w *Writer) WriteBit(b int) {
	w.cur <<= 1
	if b != 0 {
		w.cur |= 1
	}
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64]; larger counts write nothing and set the writer's sticky
// ErrBitCount error.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		if w.err == nil {
			w.err = fmt.Errorf("%w: WriteBits n=%d > 64", ErrBitCount, n)
		}
		return
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(int((v >> uint(i)) & 1))
	}
}

// Err returns the first invalid-write error, or nil. A writer with a
// non-nil Err has dropped at least one WriteBits call; its output must be
// discarded.
func (w *Writer) Err() error { return w.err }

// Len returns the number of whole and partial bits written so far.
func (w *Writer) Len() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes flushes any partial byte (zero-padded on the right) and returns the
// accumulated buffer. The writer remains usable; subsequent writes continue
// from the flushed state, so call Bytes only once when encoding is done.
func (w *Writer) Bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// Reader consumes bits from a byte slice, most-significant-bit first.
type Reader struct {
	buf []byte
	pos int  // index of next byte
	cur byte // remaining bits of the current byte, left-aligned
	n   uint // number of valid bits in cur
}

// NewReader returns a reader over buf. The reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBit reads one bit.
func (r *Reader) ReadBit() (int, error) {
	if r.n == 0 {
		if r.pos >= len(r.buf) {
			return 0, ErrUnexpectedEOF
		}
		r.cur = r.buf[r.pos]
		r.pos++
		r.n = 8
	}
	bit := int(r.cur >> 7)
	r.cur <<= 1
	r.n--
	return bit, nil
}

// ReadBits reads n bits into the low bits of the result. n must be in
// [0, 64]; larger counts return ErrBitCount (never panic — n is typically
// decoded from untrusted input).
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, fmt.Errorf("%w: ReadBits n=%d > 64", ErrBitCount, n)
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return (len(r.buf)-r.pos)*8 + int(r.n) }
