package bitio

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleBitsRoundTrip(t *testing.T) {
	w := NewWriter()
	bits := []int{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1} // 11 bits: crosses a byte
	for _, b := range bits {
		w.WriteBit(b)
	}
	if got := w.Len(); got != len(bits) {
		t.Fatalf("Len = %d, want %d", got, len(bits))
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsMSBFirst(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0b11111, 5)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0b10111111 {
		t.Fatalf("Bytes = %08b, want 10111111", got)
	}
}

func TestZeroWidthWrite(t *testing.T) {
	w := NewWriter()
	w.WriteBits(123, 0)
	if w.Len() != 0 {
		t.Fatal("zero-width write must emit nothing")
	}
	r := NewReader(w.Bytes())
	v, err := r.ReadBits(0)
	if err != nil || v != 0 {
		t.Fatalf("zero-width read = %d, %v", v, err)
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("first byte: %v", err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("expected ErrUnexpectedEOF, got %v", err)
	}
}

func TestWriteBitsOverwideSetsStickyError(t *testing.T) {
	w := NewWriter()
	w.WriteBits(1, 3)
	w.WriteBits(0, 65)
	if err := w.Err(); !errors.Is(err, ErrBitCount) {
		t.Fatalf("Err = %v, want ErrBitCount", err)
	}
	// The invalid write is dropped; earlier valid bits are untouched.
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (overwide write must emit nothing)", w.Len())
	}
	// Sticky: the first error survives later writes, valid or not.
	first := w.Err()
	w.WriteBits(0, 70)
	w.WriteBits(1, 1)
	if w.Err() != first {
		t.Fatalf("Err changed from %v to %v", first, w.Err())
	}
}

func TestWriterErrNilOnValidWrites(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 64)
	if err := w.Err(); err != nil {
		t.Fatalf("Err = %v, want nil", err)
	}
}

func TestReadBitsOverwideReturnsError(t *testing.T) {
	r := NewReader([]byte{0xAB, 0xCD, 0xEF})
	if _, err := r.ReadBits(65); !errors.Is(err, ErrBitCount) {
		t.Fatalf("ReadBits(65) err = %v, want ErrBitCount", err)
	}
	// The failed read must not consume input.
	got, err := r.ReadBits(8)
	if err != nil || got != 0xAB {
		t.Fatalf("ReadBits(8) after failed read = %x, %v; want ab", got, err)
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0})
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 11 {
		t.Fatalf("Remaining after 5 = %d", r.Remaining())
	}
}

func TestFull64BitValue(t *testing.T) {
	w := NewWriter()
	const v = 0xDEADBEEFCAFEBABE
	w.WriteBits(v, 64)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(64)
	if err != nil || got != v {
		t.Fatalf("ReadBits(64) = %x, %v", got, err)
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		type item struct {
			v uint64
			w uint
		}
		items := make([]item, n)
		w := NewWriter()
		for i := range items {
			width := uint(1 + rng.Intn(64))
			v := rng.Uint64()
			if width < 64 {
				v &= (1 << width) - 1
			}
			items[i] = item{v, width}
			w.WriteBits(v, width)
		}
		r := NewReader(w.Bytes())
		for _, it := range items {
			got, err := r.ReadBits(it.w)
			if err != nil || got != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
