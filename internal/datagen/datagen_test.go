package datagen

import (
	"math"
	"math/rand"
	"testing"

	"deepsqueeze/internal/dataset"
)

func TestAllGeneratorsMatchPaperSchema(t *testing.T) {
	for _, g := range All() {
		tb := g.Gen(rand.New(rand.NewSource(1)), 200)
		if tb.NumRows() != 200 {
			t.Errorf("%s: rows = %d", g.Name, tb.NumRows())
		}
		var cat, num int
		for _, c := range tb.Schema.Columns {
			if c.Type == dataset.Categorical {
				cat++
			} else {
				num++
			}
		}
		if cat != g.CatCols || num != g.NumCols {
			t.Errorf("%s: %d cat / %d num columns, Table 1 says %d / %d",
				g.Name, cat, num, g.CatCols, g.NumCols)
		}
	}
}

func TestByName(t *testing.T) {
	if g, ok := ByName("monitor"); !ok || g.Name != "monitor" {
		t.Fatal("ByName(monitor) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, g := range All() {
		a := g.Gen(rand.New(rand.NewSource(7)), 100)
		b := g.Gen(rand.New(rand.NewSource(7)), 100)
		if err := a.EqualWithin(b, nil); err != nil {
			t.Errorf("%s not deterministic: %v", g.Name, err)
		}
	}
}

func TestThresholds(t *testing.T) {
	g, _ := ByName("forest")
	tb := g.Gen(rand.New(rand.NewSource(2)), 50)
	thr := Thresholds(tb, 0.1)
	for i, c := range tb.Schema.Columns {
		want := 0.0
		if c.Type == dataset.Numeric {
			want = 0.1
		}
		if thr[i] != want {
			t.Fatalf("threshold[%d] = %v, want %v", i, thr[i], want)
		}
	}
}

func TestForestInvariants(t *testing.T) {
	tb := Forest(rand.New(rand.NewSource(3)), 500)
	// One-hot groups: exactly one wilderness and one soil flag set per row.
	wStart, sStart := 10, 14
	for r := 0; r < tb.NumRows(); r++ {
		var w, s int
		for i := 0; i < 4; i++ {
			if tb.Str[wStart+i][r] == "1" {
				w++
			}
		}
		for i := 0; i < 40; i++ {
			if tb.Str[sStart+i][r] == "1" {
				s++
			}
		}
		if w != 1 || s != 1 {
			t.Fatalf("row %d: %d wilderness flags, %d soil flags", r, w, s)
		}
	}
	// Hillshade must be in sensor range.
	for _, col := range []int{6, 7, 8} {
		for _, v := range tb.Num[col] {
			if v < 0 || v > 255 {
				t.Fatalf("hillshade %v outside [0,255]", v)
			}
		}
	}
}

func TestCensusIsLowEntropy(t *testing.T) {
	// Persona structure should make rows repeat far more than independent
	// columns would: the joint entropy must be far below the independent
	// bound. Cheap proxy: count distinct full rows.
	tb := Census(rand.New(rand.NewSource(4)), 2000)
	seen := map[string]struct{}{}
	for r := 0; r < tb.NumRows(); r++ {
		key := ""
		for c := 0; c < 10; c++ { // first 10 attrs suffice
			key += tb.Str[c][r] + "|"
		}
		seen[key] = struct{}{}
	}
	// 24 personas × noise: distinct prefixes should be ≪ 2000.
	if len(seen) > 1200 {
		t.Fatalf("census rows look independent: %d distinct 10-col prefixes of 2000", len(seen))
	}
}

func TestMonitorCorrelations(t *testing.T) {
	tb := Monitor(rand.New(rand.NewSource(5)), 3000)
	// cpu_user (col 2) and temp_cpu (col 12) must be strongly correlated.
	r := pearson(tb.Num[2], tb.Num[12])
	if r < 0.9 {
		t.Fatalf("cpu/temp correlation %v, want > 0.9", r)
	}
	// Timestamps must be monotone increasing.
	ts := tb.Num[0]
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatal("timestamps not increasing")
		}
	}
}

func TestCriteoSkewAndCardinality(t *testing.T) {
	tb := Criteo(rand.New(rand.NewSource(6)), 3000)
	stats := tb.Stats()
	// The last hashed-id column (schema index 13+26) must be near-unique to
	// exercise the fallback path; the Zipf-reused id columns must be
	// high-cardinality but compressible.
	if stats[39].Distinct < tb.NumRows()/2 {
		t.Fatalf("column 39 distinct = %d, want near-unique", stats[39].Distinct)
	}
	for _, c := range []int{37, 38} {
		if stats[c].Distinct < 100 || stats[c].Distinct > tb.NumRows()*9/10 {
			t.Fatalf("column %d distinct = %d, want skewed-high-cardinality", c, stats[c].Distinct)
		}
	}
	// Early categorical columns must be low-cardinality.
	if stats[13].Distinct > 100 {
		t.Fatalf("cat00 distinct = %d", stats[13].Distinct)
	}
	// Numeric count features are non-negative.
	for c := 0; c < 13; c++ {
		for _, v := range tb.Num[c] {
			if v < 0 {
				t.Fatalf("negative count feature %v", v)
			}
		}
	}
}

func TestCorelBoundedFeatures(t *testing.T) {
	tb := Corel(rand.New(rand.NewSource(7)), 1000)
	for c := range tb.Num {
		for _, v := range tb.Num[c] {
			if v < 0 || v > 1.6 {
				t.Fatalf("feature outside [0,1.6]: %v", v)
			}
		}
	}
	// Latent structure: at least one strongly correlated feature pair.
	best := 0.0
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			if r := math.Abs(pearson(tb.Num[a], tb.Num[b])); r > best {
				best = r
			}
		}
	}
	if best < 0.3 {
		t.Fatalf("no correlated feature pair found (max |r| = %v)", best)
	}
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
