// Package datagen synthesizes the five evaluation datasets of the paper's
// Table 1. The real files (UCI Corel/Covtype/Census, MGBench Monitor,
// Criteo conversion logs — up to 277 GB) are not redistributable or
// practical here, so each generator reproduces the published schema (column
// counts and types) and plants the *kind* of inter-column structure the
// paper attributes to the dataset: shared latent factors, functional
// dependencies, one-hot sparsity, regime clusters, and heavy skew. Semantic
// compressors win exactly when such structure exists, so the comparative
// shape of the results carries over even though absolute ratios differ.
//
// All generators are deterministic given the caller's rand.Rand.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"deepsqueeze/internal/dataset"
)

// Generator describes one synthetic dataset.
type Generator struct {
	Name string
	// PaperRows and PaperRawMB record the original dataset's published
	// scale (Table 1) for documentation output.
	PaperRows  int
	PaperRawMB float64
	// DefaultRows is the scaled-down row count used by the benchmark
	// harness (override with the harness scale flag).
	DefaultRows int
	// CatCols and NumCols mirror Table 1's column counts.
	CatCols, NumCols int
	// Gen materializes rows tuples.
	Gen func(rng *rand.Rand, rows int) *dataset.Table
}

// All returns the five paper datasets in Table 1 order, plus the clickstream
// extension fixture (not in Table 1) that exercises the residual-digit path.
func All() []Generator {
	return []Generator{
		{Name: "corel", PaperRows: 68_000, PaperRawMB: 20, DefaultRows: 20_000, CatCols: 0, NumCols: 32, Gen: Corel},
		{Name: "forest", PaperRows: 581_000, PaperRawMB: 76, DefaultRows: 20_000, CatCols: 45, NumCols: 10, Gen: Forest},
		{Name: "census", PaperRows: 2_500_000, PaperRawMB: 339, DefaultRows: 20_000, CatCols: 68, NumCols: 0, Gen: Census},
		{Name: "monitor", PaperRows: 23_400_000, PaperRawMB: 3300, DefaultRows: 30_000, CatCols: 0, NumCols: 17, Gen: Monitor},
		{Name: "criteo", PaperRows: 946_000_000, PaperRawMB: 277_000, DefaultRows: 30_000, CatCols: 27, NumCols: 13, Gen: Criteo},
		{Name: "clickstream", DefaultRows: 30_000, CatCols: 5, NumCols: 3, Gen: Clickstream},
	}
}

// ByName looks up a generator.
func ByName(name string) (Generator, bool) {
	for _, g := range All() {
		if g.Name == name {
			return g, true
		}
	}
	return Generator{}, false
}

// Thresholds builds a per-column threshold slice: err for numeric columns,
// 0 for categorical, matching the paper's evaluation protocol.
func Thresholds(t *dataset.Table, err float64) []float64 {
	out := make([]float64, t.Schema.NumColumns())
	for i, c := range t.Schema.Columns {
		if c.Type == dataset.Numeric {
			out[i] = err
		}
	}
	return out
}

// Corel mirrors the UCI Corel image features set: 32 numeric columns that
// are color-histogram-style features. Each image is described by several
// independent latent factors (scene type, lighting, color balance, ...),
// and every feature is a nonlinear function of a *pair* of factors. Any two
// features share at most one factor, so pairwise models (Squish's
// few-parent Bayesian network) see only weak structure, while the full
// latent vector — and with it every feature — is recoverable from the whole
// row, the many-column regime the paper attributes to image features.
func Corel(rng *rand.Rand, rows int) *dataset.Table {
	const nFeat = 32
	cols := make([]dataset.Column, nFeat)
	for i := range cols {
		cols[i] = dataset.Column{Name: fmt.Sprintf("f%02d", i), Type: dataset.Numeric}
	}
	t := dataset.NewTable(dataset.NewSchema(cols...), rows)
	const nFactors = 5
	fa := make([]int, nFeat)
	fb := make([]int, nFeat)
	w1 := make([]float64, nFeat)
	w2 := make([]float64, nFeat)
	ph := make([]float64, nFeat)
	off := make([]float64, nFeat)
	for j := 0; j < nFeat; j++ {
		fa[j] = rng.Intn(nFactors)
		fb[j] = (fa[j] + 1 + rng.Intn(nFactors-1)) % nFactors
		w1[j] = 2 + rng.Float64()*3
		w2[j] = rng.NormFloat64()
		ph[j] = rng.Float64() * math.Pi
		off[j] = 0.3 + rng.Float64()*0.5
	}
	factors := make([]float64, nFactors)
	num := make([]float64, nFeat)
	for r := 0; r < rows; r++ {
		for f := range factors {
			factors[f] = rng.Float64()
		}
		for j := 0; j < nFeat; j++ {
			v := off[j] +
				0.25*math.Sin(w1[j]*factors[fa[j]]+ph[j]) +
				0.20*factors[fb[j]]*w2[j] +
				0.008*rng.NormFloat64()
			// Histogram bins are non-negative and bounded.
			num[j] = math.Max(0, math.Min(1.6, v))
		}
		t.AppendRow(nil, num)
	}
	return t
}

// Forest mirrors UCI Covtype: 10 numeric terrain attributes plus 44 one-hot
// binary columns (4 wilderness areas, 40 soil types) and the cover-type
// label — high dimensionality with high sparsity and hard functional
// dependencies (one-hot groups sum to one; hillshade is a deterministic
// function of aspect and slope; soil type depends on elevation zone).
func Forest(rng *rand.Rand, rows int) *dataset.Table {
	numNames := []string{
		"elevation", "aspect", "slope",
		"horiz_dist_hydro", "vert_dist_hydro", "horiz_dist_road",
		"hillshade_9am", "hillshade_noon", "hillshade_3pm",
		"horiz_dist_fire",
	}
	var cols []dataset.Column
	for _, n := range numNames {
		cols = append(cols, dataset.Column{Name: n, Type: dataset.Numeric})
	}
	for i := 0; i < 4; i++ {
		cols = append(cols, dataset.Column{Name: fmt.Sprintf("wilderness_%d", i), Type: dataset.Categorical})
	}
	for i := 0; i < 40; i++ {
		cols = append(cols, dataset.Column{Name: fmt.Sprintf("soil_%02d", i), Type: dataset.Categorical})
	}
	cols = append(cols, dataset.Column{Name: "cover_type", Type: dataset.Categorical})
	t := dataset.NewTable(dataset.NewSchema(cols...), rows)
	covers := []string{"spruce", "lodgepole", "ponderosa", "willow", "aspen", "douglas", "krummholz"}
	num := make([]float64, len(numNames))
	cat := make([]string, 45)
	for r := 0; r < rows; r++ {
		elev := 1800 + rng.Float64()*1800 // meters
		aspect := rng.Float64() * 360
		slope := math.Abs(rng.NormFloat64() * 12)
		if slope > 50 {
			slope = 50
		}
		// Hillshade: deterministic illumination model + sensor noise.
		hs := func(sunAz, sunAlt float64) float64 {
			rad := math.Pi / 180
			v := 255 * (math.Cos(sunAlt*rad)*math.Sin(slope*rad)*math.Cos((sunAz-aspect)*rad) +
				math.Sin(sunAlt*rad)*math.Cos(slope*rad))
			return math.Max(0, math.Min(255, v+rng.NormFloat64()*2))
		}
		num[0] = elev
		num[1] = aspect
		num[2] = slope
		num[3] = math.Abs(rng.NormFloat64() * 250)
		num[4] = num[3]*0.2 + rng.NormFloat64()*20 // vert distance tracks horiz
		num[5] = math.Abs(rng.NormFloat64() * 1500)
		num[6] = hs(135, 45)
		num[7] = hs(180, 60)
		num[8] = hs(225, 45)
		num[9] = math.Abs(rng.NormFloat64() * 1300)
		// Wilderness: elevation-band dependent one-hot.
		wz := int(elev-1800) / 500
		if wz > 3 {
			wz = 3
		}
		if rng.Float64() < 0.1 {
			wz = rng.Intn(4)
		}
		for i := 0; i < 4; i++ {
			cat[i] = "0"
		}
		cat[wz] = "1"
		// Soil type: 10 per elevation zone, skewed within the zone.
		sz := int(elev-1800) / 450
		if sz > 3 {
			sz = 3
		}
		soil := sz*10 + int(math.Abs(rng.NormFloat64())*3)%10
		for i := 0; i < 40; i++ {
			cat[4+i] = "0"
		}
		cat[4+soil] = "1"
		// Cover type depends on elevation and soil.
		ci := (int(elev/300) + soil) % len(covers)
		if rng.Float64() < 0.05 {
			ci = rng.Intn(len(covers))
		}
		cat[44] = covers[ci]
		t.AppendRow(cat, num)
	}
	return t
}

// Census mirrors the prequantized US Census 1990 extract: 68 categorical
// columns with strong cross-column dependencies. Each row is drawn from a
// handful of independent latent demographic factors (age band, income band,
// household type, ...), and every attribute is a noisy function of a *pair*
// of factors. Any two columns share at most one factor, so pairwise mutual
// information is weak — a few-parent Bayesian network (Squish) captures
// little — while the joint structure is fully recoverable from the whole
// row, which is precisely the regime the paper attributes to this dataset
// ("complex relationships across many columns").
func Census(rng *rand.Rand, rows int) *dataset.Table {
	const nCols = 68
	cols := make([]dataset.Column, nCols)
	for i := range cols {
		cols[i] = dataset.Column{Name: fmt.Sprintf("attr%02d", i), Type: dataset.Categorical}
	}
	t := dataset.NewTable(dataset.NewSchema(cols...), rows)
	const nFactors = 6
	const factorCard = 4
	card := make([]int, nCols)
	fa := make([]int, nCols) // first factor feeding column j
	fb := make([]int, nCols) // second factor
	table := make([][]int, nCols)
	for j := 0; j < nCols; j++ {
		card[j] = 2 + rng.Intn(11)
		fa[j] = rng.Intn(nFactors)
		fb[j] = (fa[j] + 1 + rng.Intn(nFactors-1)) % nFactors
		// Lookup table: (factor pair value) → attribute value.
		table[j] = make([]int, factorCard*factorCard)
		for k := range table[j] {
			table[j][k] = rng.Intn(card[j])
		}
	}
	factors := make([]int, nFactors)
	cat := make([]string, nCols)
	for r := 0; r < rows; r++ {
		for f := range factors {
			// Skewed factor marginals, like real demographic bands.
			factors[f] = zipf(rng, factorCard)
		}
		for j := 0; j < nCols; j++ {
			v := table[j][factors[fa[j]]*factorCard+factors[fb[j]]]
			if rng.Float64() < 0.06 {
				v = rng.Intn(card[j])
			}
			cat[j] = fmt.Sprintf("%d", v)
		}
		t.AppendRow(cat, nil)
	}
	return t
}

// Monitor mirrors MGBench's server-monitoring logs: 17 numeric columns of
// machine telemetry. Machines cycle through load regimes; within a regime
// CPU, memory, network, and temperature metrics co-vary tightly. This is
// the dataset the paper uses for the mixture-of-experts and sample-size
// microbenchmarks (Figs. 8 and 10).
func Monitor(rng *rand.Rand, rows int) *dataset.Table {
	names := []string{
		"timestamp", "machine_id", "cpu_user", "cpu_sys", "cpu_iowait",
		"mem_used", "mem_cache", "swap_used", "net_rx", "net_tx",
		"disk_read", "disk_write", "temp_cpu", "temp_board", "fan_rpm",
		"load1", "load5",
	}
	cols := make([]dataset.Column, len(names))
	for i, n := range names {
		cols[i] = dataset.Column{Name: n, Type: dataset.Numeric}
	}
	t := dataset.NewTable(dataset.NewSchema(cols...), rows)
	// Load is multi-dimensional: CPU, memory, network, and storage regimes
	// vary independently per machine and window (a web tier can be
	// network-saturated while CPU-idle). Each metric mixes *two* of the
	// four load dimensions, so no single pair of columns reveals the full
	// machine state — the joint structure an autoencoder captures and a
	// few-parent Bayesian network cannot.
	const machines = 50
	num := make([]float64, len(names))
	ts := 1.6e9
	levels := []float64{0.05, 0.35, 0.80, 0.97}
	for r := 0; r < rows; r++ {
		ts += 1 + rng.Float64()*0.01
		m := rng.Intn(machines)
		window := int(ts / 600)
		cpu := clamp01(levels[(m*3+window)%4] + rng.NormFloat64()*0.02)
		mem := clamp01(levels[(m*5+window*2)%4] + rng.NormFloat64()*0.02)
		net := clamp01(levels[(m*7+window*3)%4] + rng.NormFloat64()*0.02)
		disk := clamp01(levels[(m*11+window)%4] + rng.NormFloat64()*0.02)
		num[0] = ts
		num[1] = float64(m)
		// No metric exposes a single load dimension directly: every column
		// mixes two dimensions, so no pair of columns determines a third
		// and a few-parent Bayesian network keeps residual entropy, while
		// the full row (17 equations over 4 unknowns) pins the state down.
		num[2] = cpu*60 + mem*20                   // cpu_user ← cpu × mem
		num[3] = cpu*10 + net*8                    // cpu_sys ← cpu × net
		num[4] = disk*15 + cpu*5                   // cpu_iowait ← disk × cpu
		num[5] = mem*48e3 + net*16e3               // mem_used ← mem × net
		num[6] = (1 - mem) * 24e3 * (1 - disk*0.5) // mem_cache ← mem × disk
		num[7] = math.Max(0, mem+cpu-1.5) * 8e3    // swap ← mem × cpu
		num[8] = net*0.8e6 + disk*0.2e6            // net_rx ← net × disk
		num[9] = net*0.5e6 + cpu*0.2e6             // net_tx ← net × cpu
		num[10] = disk*400 + mem*100               // disk_read ← disk × mem
		num[11] = disk*250 + cpu*cpu*100           // disk_write ← disk × cpu²
		num[12] = 35 + cpu*40 + disk*8 + rng.NormFloat64()
		num[13] = 28 + mem*10 + net*8 + rng.NormFloat64()
		num[14] = 1200 + cpu*2500 + net*800 + rng.NormFloat64()*40
		num[15] = cpu*6 + disk*disk*2 + rng.NormFloat64()*0.05
		num[16] = net*5 + mem*2 + rng.NormFloat64()*0.03
		t.AppendRow(nil, num)
	}
	return t
}

// Criteo mirrors the Criteo conversion logs: 13 numeric count features with
// heavy skew and 27 categorical features, several of them high-cardinality
// hashed ids (which exercise the fallback path). User segments drive
// correlated behaviour across many features.
func Criteo(rng *rand.Rand, rows int) *dataset.Table {
	var cols []dataset.Column
	for i := 0; i < 13; i++ {
		cols = append(cols, dataset.Column{Name: fmt.Sprintf("int%02d", i), Type: dataset.Numeric})
	}
	for i := 0; i < 27; i++ {
		cols = append(cols, dataset.Column{Name: fmt.Sprintf("cat%02d", i), Type: dataset.Categorical})
	}
	t := dataset.NewTable(dataset.NewSchema(cols...), rows)
	const segments = 16
	// Per-categorical-column vocabulary size: mostly small, a few huge.
	vocab := make([]int, 27)
	for j := range vocab {
		switch {
		case j < 18:
			vocab[j] = 4 + rng.Intn(60)
		case j < 24:
			vocab[j] = 500 + rng.Intn(1500)
		case j < 26:
			vocab[j] = 1 << 16 // hashed ids, Zipf-reused (cookies, campaigns)
		default:
			vocab[j] = 1 << 22 // unique-ish hashed id → fallback path
		}
	}
	segPref := make([][segments]int, 27)
	for j := range segPref {
		for s := 0; s < segments; s++ {
			segPref[j][s] = rng.Intn(vocab[j])
		}
	}
	num := make([]float64, 13)
	cat := make([]string, 27)
	for r := 0; r < rows; r++ {
		s := rng.Intn(segments)
		activity := math.Exp(rng.NormFloat64()) * float64(1+s)
		for j := 0; j < 13; j++ {
			// Skewed count features driven by one activity level.
			num[j] = math.Floor(activity * math.Exp(rng.NormFloat64()*0.3) * float64(j+1))
		}
		for j := 0; j < 27; j++ {
			var v int
			switch {
			case j >= 26:
				v = rng.Intn(vocab[j]) // near-unique hashed id
			case j >= 24:
				v = zipf(rng, vocab[j]) // skewed id reuse
			case rng.Float64() < 0.85:
				v = segPref[j][s] // segment-driven
			default:
				v = zipf(rng, vocab[j])
			}
			cat[j] = fmt.Sprintf("%x", v)
		}
		t.AppendRow(cat, num)
	}
	return t
}

// Clickstream synthesizes a web clickstream log — the workload the
// residual-digit path (KindCatResidual) is for. The user-ID and URL columns
// draw Zipf-reused ids out of large spaces (2¹⁷ users, 2¹⁶ pages), so tens
// of thousands of distinct values appear at realistic row counts while every
// value still repeats: far too many for an ordinary softmax alphabet, yet
// nowhere near unique. Users carry sticky attributes (country, device) and
// pages sit under a handful of referrer domains, giving the autoencoder
// cross-column structure to squeeze.
func Clickstream(rng *rand.Rand, rows int) *dataset.Table {
	cols := []dataset.Column{
		{Name: "user_id", Type: dataset.Categorical},
		{Name: "url", Type: dataset.Categorical},
		{Name: "referrer", Type: dataset.Categorical},
		{Name: "device", Type: dataset.Categorical},
		{Name: "country", Type: dataset.Categorical},
		{Name: "dwell_ms", Type: dataset.Numeric},
		{Name: "bytes_sent", Type: dataset.Numeric},
		{Name: "click_depth", Type: dataset.Numeric},
	}
	t := dataset.NewTable(dataset.NewSchema(cols...), rows)
	const userSpace = 1 << 17
	const pageSpace = 1 << 16
	referrers := []string{"search", "social", "mail", "direct", "ads", "feed"}
	devices := []string{"mobile", "desktop", "tablet", "tv"}
	countries := []string{"us", "de", "jp", "br", "in", "fr", "uk", "cn"}
	cat := make([]string, 5)
	num := make([]float64, 3)
	for r := 0; r < rows; r++ {
		u := zipfHead(rng, userSpace)
		p := zipfHead(rng, pageSpace)
		// Sticky per-user attributes and per-page referrer mix: a hash of the
		// id, occasionally perturbed, so columns correlate without being
		// functionally determined.
		dev := (u * 2654435761) % len(devices)
		ctry := (u * 40503) % len(countries)
		ref := (p * 2654435761) % len(referrers)
		if rng.Float64() < 0.08 {
			ref = rng.Intn(len(referrers))
		}
		depth := 1 + float64(zipf(rng, 20))
		pop := 1.0 / float64(p+1)
		cat[0] = fmt.Sprintf("user-%08x-%04x", u, (u*40503)&0xffff)
		cat[1] = fmt.Sprintf("/content/%06x/v%02x", p, (p*2654435761)&0xff)
		cat[2] = referrers[ref]
		cat[3] = devices[dev]
		cat[4] = countries[ctry]
		num[0] = math.Floor(200 + 4000*pop + 300*depth + math.Abs(rng.NormFloat64())*250)
		num[1] = math.Floor(2e3 + 5e4*pop + math.Abs(rng.NormFloat64())*1e3)
		num[2] = depth
		t.AppendRow(cat, num)
	}
	return t
}

// zipf draws a Zipf-ish value in [0, n) with exponent ~1.
func zipf(rng *rand.Rand, n int) int {
	v := int(math.Exp(rng.Float64()*math.Log(float64(n)))) - 1
	if v < 0 {
		v = 0
	}
	if v >= n {
		v = n - 1
	}
	return v
}

// zipfHead draws from a head-heavier Zipf-like distribution in [0, n): the
// log-uniform exponent is a product of two uniforms, concentrating mass on
// the popular ids the way real traffic does — most rows hit a core of hot
// users and pages while the long tail keeps the distinct count in the
// thousands.
func zipfHead(rng *rand.Rand, n int) int {
	v := int(math.Exp(rng.Float64()*rng.Float64()*math.Log(float64(n)))) - 1
	if v < 0 {
		v = 0
	}
	if v >= n {
		v = n - 1
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
