package colenc

import (
	"encoding/binary"
	"errors"
	"testing"

	"deepsqueeze/internal/huffman"
)

// TestMaxCountRejectsHugeDeclaredCounts covers the decode paths whose
// declared count is not bounded by the buffer length: a huge count must be
// rejected by the Max variants before any allocation happens.
func TestMaxCountRejectsHugeDeclaredCounts(t *testing.T) {
	const huge = uint64(1) << 60

	// FOR, width 0: all-equal values pack into zero bits, so the packed
	// section is empty no matter the count.
	forBuf := binary.AppendUvarint(nil, huge)
	forBuf = binary.AppendUvarint(forBuf, Zigzag(7))
	forBuf = append(forBuf, 0) // width 0
	if _, err := DecodeFORMax(forBuf, 1024); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeFORMax(width=0, n=2^60) = %v, want ErrCorrupt", err)
	}

	// RLE: one run pair legally covers the whole declared count.
	rleBuf := binary.AppendUvarint(nil, huge)
	rleBuf = binary.AppendUvarint(rleBuf, Zigzag(5))
	rleBuf = binary.AppendUvarint(rleBuf, huge)
	if _, err := DecodeRLEMax(rleBuf, 1024); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeRLEMax(n=2^60) = %v, want ErrCorrupt", err)
	}

	// Bitmap: count drives the output allocation directly.
	bmBuf := binary.AppendUvarint(nil, huge)
	bmBuf = binary.AppendUvarint(bmBuf, (huge+blockBits-1)/blockBits)
	if _, err := DecodeBitmapMax(bmBuf, 1024); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeBitmapMax(n=2^60) = %v, want ErrCorrupt", err)
	}

	// The dispatcher threads the bound through to each encoding.
	if _, err := DecodeBestMax(append([]byte{byte(EncRLE)}, rleBuf...), 1024); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeBestMax(rle, n=2^60) = %v, want ErrCorrupt", err)
	}
}

// TestBitmapBlockFramingBound: even without an external bound, a declared
// block count the buffer cannot physically hold is rejected before the
// output allocation.
func TestBitmapBlockFramingBound(t *testing.T) {
	const n = uint64(1) << 40
	buf := binary.AppendUvarint(nil, n)
	buf = binary.AppendUvarint(buf, (n+blockBits-1)/blockBits)
	if _, err := DecodeBitmap(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeBitmap(%d blocks, empty body) = %v, want ErrCorrupt", n/blockBits, err)
	}
}

// TestFORWidthOverflowGuard: a count chosen so n*width wraps around uint64
// must not slip past the packed-section length check.
func TestFORWidthOverflowGuard(t *testing.T) {
	n := (uint64(1)<<61 + 1) // n*8 bits overflows; (n*64+7)/8 wraps small
	buf := binary.AppendUvarint(nil, n)
	buf = binary.AppendUvarint(buf, Zigzag(0))
	buf = append(buf, 64) // width 64
	buf = append(buf, 1)  // 1-byte "packed section"
	if _, err := DecodeFOR(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeFOR(overflowing n*width) = %v, want ErrCorrupt", err)
	}
}

// TestMaxCountAcceptsExactBound: max equal to the true count round-trips.
func TestMaxCountAcceptsExactBound(t *testing.T) {
	values := []int64{3, 3, 3, 3, 3, 9, 9, 1}
	got, err := DecodeBestMax(EncodeBest(values), len(values))
	if err != nil {
		t.Fatalf("DecodeBestMax at exact bound: %v", err)
	}
	if len(got) != len(values) {
		t.Fatalf("decoded %d values, want %d", len(got), len(values))
	}
	for i, v := range values {
		if got[i] != v {
			t.Fatalf("value %d = %d, want %d", i, got[i], v)
		}
	}
}

// TestHuffmanCountBitstreamBound: huffman's declared count is bounded by the
// bitstream length (≥1 bit per value) with no external max needed.
func TestHuffmanCountBitstreamBound(t *testing.T) {
	buf := binary.AppendUvarint(nil, uint64(1)<<50) // count
	buf = binary.AppendUvarint(buf, 1)              // alphabet size
	buf = binary.AppendUvarint(buf, 0)              // symbol 0
	buf = append(buf, 1)                            // code length 1
	buf = append(buf, 0xFF)                         // 8 bits of stream
	if _, err := huffman.Decode(buf); !errors.Is(err, huffman.ErrCorrupt) {
		t.Fatalf("huffman.Decode(n=2^50, 1-byte stream) = %v, want ErrCorrupt", err)
	}
}
