package colenc

// EncodeDelta stores the first value verbatim and every subsequent value as
// a zigzag-varint difference from its predecessor. Sorted or slowly-varying
// sequences (tuple indexes grouped by expert, truncated codes) compress to a
// byte or two per value.
func EncodeDelta(values []int64) []byte {
	deltas := make([]int64, len(values))
	prev := int64(0)
	for i, v := range values {
		deltas[i] = v - prev
		prev = v
	}
	return EncodeVarints(deltas)
}

// DecodeDelta inverts EncodeDelta.
func DecodeDelta(buf []byte) ([]int64, error) {
	deltas, err := DecodeVarints(buf)
	if err != nil {
		return nil, err
	}
	prev := int64(0)
	for i, d := range deltas {
		prev += d
		deltas[i] = prev
	}
	return deltas, nil
}
