package colenc

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestZigzag(t *testing.T) {
	cases := map[int64]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4, math.MaxInt64: math.MaxUint64 - 1, math.MinInt64: math.MaxUint64}
	for v, want := range cases {
		if got := Zigzag(v); got != want {
			t.Errorf("Zigzag(%d) = %d, want %d", v, got, want)
		}
		if back := Unzigzag(Zigzag(v)); back != v {
			t.Errorf("Unzigzag(Zigzag(%d)) = %d", v, back)
		}
	}
}

func roundTripAll(t *testing.T, values []int64) {
	t.Helper()
	type codec struct {
		name string
		enc  func([]int64) []byte
		dec  func([]byte) ([]int64, error)
	}
	codecs := []codec{
		{"varint", EncodeVarints, DecodeVarints},
		{"delta", EncodeDelta, DecodeDelta},
		{"rle", EncodeRLE, DecodeRLE},
		{"for", EncodeFOR, DecodeFOR},
		{"best", EncodeBest, DecodeBest},
	}
	for _, c := range codecs {
		buf := c.enc(values)
		got, err := c.dec(buf)
		if err != nil {
			t.Fatalf("%s: decode error: %v (values %v)", c.name, err, values)
		}
		if len(got) == 0 && len(values) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, values) {
			t.Fatalf("%s: round trip mismatch: got %v want %v", c.name, got, values)
		}
	}
}

func TestRoundTripFixedCases(t *testing.T) {
	cases := [][]int64{
		{},
		{0},
		{42},
		{-7, -7, -7, -7},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{0, 0, 0, 1, 0, 0, 0, 0, 2, 0},
		{math.MaxInt64, math.MinInt64, 0, -1, 1},
		{100, 100, 100, 200, 200, 300},
	}
	for _, c := range cases {
		roundTripAll(t, c)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		values := make([]int64, n)
		switch rng.Intn(4) {
		case 0: // small alphabet
			for i := range values {
				values[i] = int64(rng.Intn(5)) - 2
			}
		case 1: // sorted
			cur := int64(0)
			for i := range values {
				cur += int64(rng.Intn(10))
				values[i] = cur
			}
		case 2: // wild
			for i := range values {
				values[i] = int64(rng.Uint64())
			}
		case 3: // runs
			i := 0
			for i < n {
				v := int64(rng.Intn(3))
				run := 1 + rng.Intn(20)
				for k := 0; k < run && i < n; k++ {
					values[i] = v
					i++
				}
			}
		}
		got, err := DecodeBest(EncodeBest(values))
		if err != nil {
			return false
		}
		if n == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRLEPicksRuns(t *testing.T) {
	values := make([]int64, 10000) // all zero: one run
	buf := EncodeBest(values)
	if len(buf) > 16 {
		t.Fatalf("10000 zeros encoded to %d bytes; expected a handful", len(buf))
	}
	// Constant data is degenerate for both RLE and width-0 FOR; either may win.
	if enc := Encoding(buf[0]); enc != EncRLE && enc != EncFOR {
		t.Fatalf("encoding = %v, want rle or for", enc)
	}
	// Long runs over a wide value range: RLE must beat FOR here.
	runs := make([]int64, 10000)
	for i := range runs {
		runs[i] = int64(i/1000) * 1_000_003
	}
	if buf := EncodeBest(runs); Encoding(buf[0]) != EncRLE {
		t.Fatalf("run-structured data picked %v, want rle", Encoding(buf[0]))
	}
}

func TestDeltaPicksSorted(t *testing.T) {
	values := make([]int64, 5000)
	for i := range values {
		values[i] = int64(1000000 + i)
	}
	buf := EncodeBest(values)
	// Delta, FOR, or Huffman-of-deltas could win; verify it is far smaller
	// than plain varints and that delta specifically is compact.
	if plain := EncodeVarints(values); len(buf) > len(plain)/2 {
		t.Fatalf("sorted sequence: best %d bytes vs plain %d", len(buf), len(plain))
	}
	if d := EncodeDelta(values); len(d) > 2*5000 {
		t.Fatalf("delta of consecutive ints = %d bytes", len(d))
	}
}

func TestFORPicksSmallRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	values := make([]int64, 4096)
	for i := range values {
		values[i] = 1_000_000_000 + int64(rng.Intn(16)) // 4-bit range, huge offset
	}
	buf := EncodeFOR(values)
	// ~4 bits/value plus header.
	if len(buf) > 4096/2+32 {
		t.Fatalf("FOR on 4-bit range = %d bytes", len(buf))
	}
}

func TestDecodeCorruptInputs(t *testing.T) {
	good := EncodeBest([]int64{1, 2, 3, 4, 5})
	cases := [][]byte{
		nil,
		{},
		{99},                  // unknown tag
		good[:len(good)-1],    // truncated
		append(good, 0, 0, 0), // trailing garbage
	}
	for i, c := range cases {
		if _, err := DecodeBest(c); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
	// Count larger than buffer.
	if _, err := DecodeUvarints([]byte{0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Error("oversized count accepted")
	}
	// RLE run overflowing declared count.
	if _, err := DecodeRLE(append(append([]byte{2}, 0), 10)); err == nil {
		t.Error("RLE run overflow accepted")
	}
}

func TestEncodingString(t *testing.T) {
	for enc, want := range map[Encoding]string{
		EncVarint: "varint", EncDelta: "delta", EncRLE: "rle",
		EncFOR: "for", EncHuffman: "huffman", EncBitmap: "bitmap",
		Encoding(42): "encoding(42)",
	} {
		if got := enc.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", enc, got, want)
		}
	}
}

func BenchmarkEncodeBestRuns(b *testing.B) {
	values := make([]int64, 1<<14)
	for i := range values {
		values[i] = int64(i / 512)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeBest(values)
	}
}
