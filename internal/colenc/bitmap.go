package colenc

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Roaring-style bitmap encoding for 0/1 streams (the paper's §6.3.1 cites
// Roaring for the XOR-materialized binary failure columns). The value
// stream is treated as a set of positions holding 1, chunked into 2^16
// blocks; each block picks the cheapest of three container layouts:
//
//	array  — sorted uint16 positions (sparse blocks)
//	bitmap — 8 KiB raw bitset (dense, irregular blocks)
//	runs   — (start, length) pairs (long runs, the XOR-failure common case)
//
// Layout: count varint | #blocks varint | per block: key varint, kind byte,
// payload. EncodeBest considers this encoding for two-valued streams.
const (
	containerArray byte = iota
	containerBitmap
	containerRuns
)

const blockBits = 1 << 16

// EncodeBitmap encodes a 0/1 stream. Values outside {0,1} are rejected by
// returning nil (the caller falls back to other encodings).
func EncodeBitmap(values []int64) []byte {
	out := binary.AppendUvarint(nil, uint64(len(values)))
	nBlocks := (len(values) + blockBits - 1) / blockBits
	out = binary.AppendUvarint(out, uint64(nBlocks))
	for b := 0; b < nBlocks; b++ {
		lo := b * blockBits
		hi := lo + blockBits
		if hi > len(values) {
			hi = len(values)
		}
		block := values[lo:hi]
		var ones []uint16
		for i, v := range block {
			switch v {
			case 0:
			case 1:
				ones = append(ones, uint16(i))
			default:
				return nil
			}
		}
		out = binary.AppendUvarint(out, uint64(b))
		out = appendContainer(out, block, ones)
	}
	return out
}

// appendContainer picks the cheapest container for one block.
func appendContainer(dst []byte, block []int64, ones []uint16) []byte {
	// Candidate sizes.
	arraySize := 2 * len(ones)
	bitmapSize := (len(block) + 7) / 8
	runs := runPairs(ones)
	runsSize := 4 * len(runs)
	switch {
	case runsSize <= arraySize && runsSize <= bitmapSize:
		dst = append(dst, containerRuns)
		dst = binary.AppendUvarint(dst, uint64(len(runs)))
		for _, r := range runs {
			dst = binary.LittleEndian.AppendUint16(dst, r[0])
			dst = binary.LittleEndian.AppendUint16(dst, r[1])
		}
	case arraySize <= bitmapSize:
		dst = append(dst, containerArray)
		dst = binary.AppendUvarint(dst, uint64(len(ones)))
		for _, p := range ones {
			dst = binary.LittleEndian.AppendUint16(dst, p)
		}
	default:
		dst = append(dst, containerBitmap)
		dst = binary.AppendUvarint(dst, uint64(len(block)))
		var cur byte
		for i, v := range block {
			if v != 0 {
				cur |= 1 << uint(i%8)
			}
			if i%8 == 7 || i == len(block)-1 {
				dst = append(dst, cur)
				cur = 0
			}
		}
	}
	return dst
}

// runPairs converts sorted one-positions into (start, length-1) pairs.
func runPairs(ones []uint16) [][2]uint16 {
	var runs [][2]uint16
	for i := 0; i < len(ones); {
		j := i + 1
		for j < len(ones) && ones[j] == ones[j-1]+1 {
			j++
		}
		runs = append(runs, [2]uint16{ones[i], uint16(j - i - 1)})
		i = j
	}
	return runs
}

// DecodeBitmap inverts EncodeBitmap with no expected-count bound.
func DecodeBitmap(buf []byte) ([]int64, error) { return DecodeBitmapMax(buf, -1) }

// DecodeBitmapMax inverts EncodeBitmap, rejecting counts above max (max < 0
// disables the bound). Before allocating the output it also requires the
// buffer to be at least large enough to hold every declared block's minimal
// framing, so a short corrupt buffer cannot command a huge allocation.
func DecodeBitmapMax(buf []byte, max int) ([]int64, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bitmap count", ErrCorrupt)
	}
	if err := checkCount(n, max); err != nil {
		return nil, err
	}
	pos := sz
	nBlocks, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bitmap block count", ErrCorrupt)
	}
	pos += sz
	if want := (n + blockBits - 1) / blockBits; nBlocks != want && !(n == 0 && nBlocks == 0) {
		return nil, fmt.Errorf("%w: %d blocks for %d values", ErrCorrupt, nBlocks, n)
	}
	// Every block needs at least a key varint, a kind byte, and one payload
	// byte (a container count varint): 3 bytes of framing minimum.
	if nBlocks > uint64(len(buf)-pos)/3 {
		return nil, fmt.Errorf("%w: %d blocks exceed buffer", ErrCorrupt, nBlocks)
	}
	out := make([]int64, n)
	for b := uint64(0); b < nBlocks; b++ {
		key, sz := binary.Uvarint(buf[pos:])
		if sz <= 0 || key != b {
			return nil, fmt.Errorf("%w: bitmap block key", ErrCorrupt)
		}
		pos += sz
		if pos >= len(buf) {
			return nil, fmt.Errorf("%w: missing container kind", ErrCorrupt)
		}
		kind := buf[pos]
		pos++
		base := int(b) * blockBits
		blockLen := blockBits
		if base+blockLen > int(n) {
			blockLen = int(n) - base
		}
		switch kind {
		case containerArray:
			cnt, sz := binary.Uvarint(buf[pos:])
			if sz <= 0 || len(buf)-pos-sz < int(cnt)*2 {
				return nil, fmt.Errorf("%w: array container", ErrCorrupt)
			}
			pos += sz
			for i := uint64(0); i < cnt; i++ {
				p := int(binary.LittleEndian.Uint16(buf[pos:]))
				pos += 2
				if p >= blockLen {
					return nil, fmt.Errorf("%w: array position %d in %d-block", ErrCorrupt, p, blockLen)
				}
				out[base+p] = 1
			}
		case containerBitmap:
			l, sz := binary.Uvarint(buf[pos:])
			if sz <= 0 || int(l) != blockLen {
				return nil, fmt.Errorf("%w: bitmap container length", ErrCorrupt)
			}
			pos += sz
			nb := (blockLen + 7) / 8
			if len(buf)-pos < nb {
				return nil, fmt.Errorf("%w: bitmap container", ErrCorrupt)
			}
			for i := 0; i < blockLen; i++ {
				if buf[pos+i/8]&(1<<uint(i%8)) != 0 {
					out[base+i] = 1
				}
			}
			pos += nb
		case containerRuns:
			cnt, sz := binary.Uvarint(buf[pos:])
			if sz <= 0 || len(buf)-pos-sz < int(cnt)*4 {
				return nil, fmt.Errorf("%w: run container", ErrCorrupt)
			}
			pos += sz
			for i := uint64(0); i < cnt; i++ {
				start := int(binary.LittleEndian.Uint16(buf[pos:]))
				length := int(binary.LittleEndian.Uint16(buf[pos+2:])) + 1
				pos += 4
				if start+length > blockLen {
					return nil, fmt.Errorf("%w: run [%d,%d) in %d-block", ErrCorrupt, start, start+length, blockLen)
				}
				for k := 0; k < length; k++ {
					out[base+start+k] = 1
				}
			}
		default:
			return nil, fmt.Errorf("%w: container kind %d", ErrCorrupt, kind)
		}
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bitmap bytes", ErrCorrupt, len(buf)-pos)
	}
	return out, nil
}

// isBinaryStream reports whether all values are 0 or 1.
func isBinaryStream(values []int64) bool {
	for _, v := range values {
		if v != 0 && v != 1 {
			return false
		}
	}
	return true
}

// popcount is exposed for tests.
func popcount(b []byte) int {
	n := 0
	for _, x := range b {
		n += bits.OnesCount8(x)
	}
	return n
}
