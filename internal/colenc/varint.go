// Package colenc implements the lightweight columnar encodings DeepSqueeze
// materializes failures and codes with: varint, zigzag, delta, run-length,
// frame-of-reference bit-packing, and a generic "pick the smallest"
// selector. Every encoding is self-describing: the value count is embedded,
// and decoding validates the buffer before trusting it.
package colenc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is returned when an encoded buffer fails validation.
var ErrCorrupt = errors.New("colenc: corrupt buffer")

// Zigzag maps signed integers to unsigned so small magnitudes (of either
// sign) become small values: 0→0, -1→1, 1→2, -2→3, ...
func Zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendUvarint appends v to dst in LEB128 form.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// EncodeUvarints encodes values as a count-prefixed sequence of LEB128
// varints.
func EncodeUvarints(values []uint64) []byte {
	out := binary.AppendUvarint(nil, uint64(len(values)))
	for _, v := range values {
		out = binary.AppendUvarint(out, v)
	}
	return out
}

// DecodeUvarints decodes a buffer produced by EncodeUvarints.
func DecodeUvarints(buf []byte) ([]uint64, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing count", ErrCorrupt)
	}
	buf = buf[sz:]
	if n > uint64(len(buf))+1 { // each value takes ≥1 byte
		return nil, fmt.Errorf("%w: count %d exceeds buffer", ErrCorrupt, n)
	}
	out := make([]uint64, n)
	for i := range out {
		v, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, fmt.Errorf("%w: truncated varint at %d", ErrCorrupt, i)
		}
		out[i] = v
		buf = buf[sz:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf))
	}
	return out, nil
}

// EncodeVarints encodes signed values with zigzag + LEB128.
func EncodeVarints(values []int64) []byte {
	out := binary.AppendUvarint(nil, uint64(len(values)))
	for _, v := range values {
		out = binary.AppendUvarint(out, Zigzag(v))
	}
	return out
}

// DecodeVarints decodes a buffer produced by EncodeVarints.
func DecodeVarints(buf []byte) ([]int64, error) {
	u, err := DecodeUvarints(buf)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(u))
	for i, v := range u {
		out[i] = Unzigzag(v)
	}
	return out, nil
}
