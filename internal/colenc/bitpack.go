package colenc

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"deepsqueeze/internal/bitio"
)

// EncodeFOR applies frame-of-reference bit-packing: the minimum value is
// stored once and every value is packed as (v - min) in the fewest bits that
// hold the range. This is the workhorse for quantized bucket indexes and
// integerized codes, whose ranges are small but whose values do not repeat
// enough for RLE.
//
// Layout: count varint | min zigzag-varint | width byte | packed bits.
func EncodeFOR(values []int64) []byte {
	out := binary.AppendUvarint(nil, uint64(len(values)))
	if len(values) == 0 {
		return out
	}
	min, max := values[0], values[0]
	for _, v := range values[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	out = binary.AppendUvarint(out, Zigzag(min))
	span := uint64(max - min)
	width := uint(bits.Len64(span)) // 0 when all values equal
	out = append(out, byte(width))
	w := bitio.NewWriter()
	for _, v := range values {
		w.WriteBits(uint64(v-min), width)
	}
	return append(out, w.Bytes()...)
}

// DecodeFOR inverts EncodeFOR with no expected-count bound.
func DecodeFOR(buf []byte) ([]int64, error) { return DecodeFORMax(buf, -1) }

// DecodeFORMax inverts EncodeFOR, rejecting counts above max (max < 0
// disables the bound). The bound matters most at width 0 — all-equal values
// pack into zero bits, so the buffer length puts no ceiling on the declared
// count and a corrupt count would otherwise drive an arbitrary allocation.
func DecodeFORMax(buf []byte, max int) ([]int64, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing count", ErrCorrupt)
	}
	if err := checkCount(n, max); err != nil {
		return nil, err
	}
	buf = buf[sz:]
	if n == 0 {
		if len(buf) != 0 {
			return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
		}
		return []int64{}, nil
	}
	minz, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing min", ErrCorrupt)
	}
	buf = buf[sz:]
	if len(buf) == 0 {
		return nil, fmt.Errorf("%w: missing width", ErrCorrupt)
	}
	width := uint(buf[0])
	if width > 64 {
		return nil, fmt.Errorf("%w: width %d", ErrCorrupt, width)
	}
	buf = buf[1:]
	if width > 0 && n > uint64(len(buf))*8/uint64(width) {
		// Also guards the n*width product below against overflow.
		return nil, fmt.Errorf("%w: count %d exceeds packed section", ErrCorrupt, n)
	}
	need := (n*uint64(width) + 7) / 8
	if uint64(len(buf)) != need {
		return nil, fmt.Errorf("%w: packed section %d bytes, want %d", ErrCorrupt, len(buf), need)
	}
	min := Unzigzag(minz)
	r := bitio.NewReader(buf)
	out := make([]int64, n)
	for i := range out {
		v, err := r.ReadBits(width)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		out[i] = min + int64(v)
	}
	return out, nil
}
