package colenc

import (
	"fmt"

	"deepsqueeze/internal/huffman"
)

// Encoding identifies one of the self-describing integer encodings.
type Encoding byte

// The available encodings. Values are part of the on-disk format; do not
// renumber.
const (
	EncVarint Encoding = iota
	EncDelta
	EncRLE
	EncFOR
	EncHuffman
	EncBitmap
)

// String returns the canonical lowercase name of the encoding.
func (e Encoding) String() string {
	switch e {
	case EncVarint:
		return "varint"
	case EncDelta:
		return "delta"
	case EncRLE:
		return "rle"
	case EncFOR:
		return "for"
	case EncHuffman:
		return "huffman"
	case EncBitmap:
		return "bitmap"
	default:
		return fmt.Sprintf("encoding(%d)", byte(e))
	}
}

// huffmanMaxAlphabet bounds the distinct-value count at which EncodeBest
// still tries Huffman; beyond it the symbol table dwarfs any gain.
const huffmanMaxAlphabet = 1 << 16

// EncodeBest encodes values with every applicable encoding and returns the
// smallest result, prefixed by a one-byte encoding tag. This mirrors the
// per-column encoding selection a columnar format like Parquet performs.
func EncodeBest(values []int64) []byte {
	best := EncodeVarints(values)
	bestEnc := EncVarint
	try := func(enc Encoding, buf []byte) {
		if len(buf) < len(best) {
			best, bestEnc = buf, enc
		}
	}
	try(EncDelta, EncodeDelta(values))
	try(EncRLE, EncodeRLE(values))
	try(EncFOR, EncodeFOR(values))
	if distinctUpTo(values, huffmanMaxAlphabet+1) <= huffmanMaxAlphabet {
		try(EncHuffman, huffman.Encode(values))
	}
	if isBinaryStream(values) {
		if bm := EncodeBitmap(values); bm != nil {
			try(EncBitmap, bm)
		}
	}
	out := make([]byte, 0, len(best)+1)
	out = append(out, byte(bestEnc))
	return append(out, best...)
}

// DecodeBest inverts EncodeBest with no expected-count bound. Prefer
// DecodeBestMax when the caller knows how many values the stream should
// hold: several encodings (RLE runs, zero-width FOR) can declare counts far
// beyond what their buffer size implies, and only an external bound stops a
// corrupt buffer from forcing a huge allocation.
func DecodeBest(buf []byte) ([]int64, error) {
	return DecodeBestMax(buf, -1)
}

// DecodeBestMax inverts EncodeBest, rejecting streams that declare more than
// max values before allocating for them. max < 0 disables the bound.
func DecodeBestMax(buf []byte, max int) ([]int64, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("%w: empty buffer", ErrCorrupt)
	}
	enc, body := Encoding(buf[0]), buf[1:]
	switch enc {
	case EncVarint:
		return DecodeVarints(body)
	case EncDelta:
		return DecodeDelta(body)
	case EncRLE:
		return DecodeRLEMax(body, max)
	case EncFOR:
		return DecodeFORMax(body, max)
	case EncHuffman:
		return huffman.Decode(body)
	case EncBitmap:
		return DecodeBitmapMax(body, max)
	default:
		return nil, fmt.Errorf("%w: unknown encoding tag %d", ErrCorrupt, buf[0])
	}
}

// checkCount validates a declared value count against an optional external
// bound, shared by the Max decode variants.
func checkCount(n uint64, max int) error {
	if max >= 0 && n > uint64(max) {
		return fmt.Errorf("%w: count %d exceeds expected maximum %d", ErrCorrupt, n, max)
	}
	return nil
}

// distinctUpTo counts distinct values, stopping early once limit is reached.
func distinctUpTo(values []int64, limit int) int {
	seen := make(map[int64]struct{}, 64)
	for _, v := range values {
		seen[v] = struct{}{}
		if len(seen) >= limit {
			break
		}
	}
	return len(seen)
}
