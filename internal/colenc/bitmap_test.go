package colenc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func bitmapRoundTrip(t *testing.T, values []int64) []byte {
	t.Helper()
	buf := EncodeBitmap(values)
	if buf == nil {
		t.Fatal("EncodeBitmap rejected a binary stream")
	}
	got, err := DecodeBitmap(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(values) == 0 {
		if len(got) != 0 {
			t.Fatal("empty round trip")
		}
		return buf
	}
	if !reflect.DeepEqual(got, values) {
		t.Fatal("round trip mismatch")
	}
	return buf
}

func TestBitmapRoundTripBasic(t *testing.T) {
	cases := [][]int64{
		{},
		{0},
		{1},
		{0, 1, 0, 1, 1, 0},
		make([]int64, 1000),
	}
	all1 := make([]int64, 1000)
	for i := range all1 {
		all1[i] = 1
	}
	cases = append(cases, all1)
	for _, c := range cases {
		bitmapRoundTrip(t, c)
	}
}

func TestBitmapCrossesBlockBoundary(t *testing.T) {
	values := make([]int64, blockBits*2+100)
	for i := range values {
		if i%3 == 0 {
			values[i] = 1
		}
	}
	bitmapRoundTrip(t, values)
}

func TestBitmapRejectsNonBinary(t *testing.T) {
	if EncodeBitmap([]int64{0, 1, 2}) != nil {
		t.Fatal("non-binary stream accepted")
	}
	if EncodeBitmap([]int64{-1}) != nil {
		t.Fatal("negative value accepted")
	}
}

func TestBitmapContainerSelection(t *testing.T) {
	// Sparse: array container should make it tiny.
	sparse := make([]int64, blockBits)
	sparse[5] = 1
	sparse[77] = 1
	if buf := bitmapRoundTrip(t, sparse); len(buf) > 32 {
		t.Fatalf("sparse block encoded to %d bytes", len(buf))
	}
	// Long runs: run container should make it tiny.
	runs := make([]int64, blockBits)
	for i := 1000; i < 30000; i++ {
		runs[i] = 1
	}
	if buf := bitmapRoundTrip(t, runs); len(buf) > 32 {
		t.Fatalf("run block encoded to %d bytes", len(buf))
	}
	// Irregular dense: bitmap container, ~1 bit per value.
	rng := rand.New(rand.NewSource(1))
	dense := make([]int64, blockBits)
	for i := range dense {
		dense[i] = int64(rng.Intn(2))
	}
	if buf := bitmapRoundTrip(t, dense); len(buf) > blockBits/8+64 {
		t.Fatalf("dense block encoded to %d bytes", len(buf))
	}
}

func TestBitmapInEncodeBest(t *testing.T) {
	// A sparse binary failure stream: bitmap should win over RLE/Huffman.
	values := make([]int64, 100000)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		values[rng.Intn(len(values))] = 1
	}
	buf := EncodeBest(values)
	got, err := DecodeBest(buf)
	if err != nil || !reflect.DeepEqual(got, values) {
		t.Fatalf("EncodeBest round trip failed: %v", err)
	}
	if len(buf) > 300 {
		t.Fatalf("sparse binary stream encoded to %d bytes", len(buf))
	}
}

func TestBitmapDecodeCorrupt(t *testing.T) {
	good := EncodeBitmap([]int64{0, 1, 1, 0, 1})
	for _, cut := range []int{0, 1, 2, len(good) - 1} {
		if _, err := DecodeBitmap(good[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeBitmap(append(good, 9)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Wrong block count.
	bad := append([]byte{}, good...)
	bad[1] = 7
	if _, err := DecodeBitmap(bad); err == nil {
		t.Error("wrong block count accepted")
	}
}

func TestQuickBitmapRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3 * blockBits)
		values := make([]int64, n)
		p := rng.Float64()
		for i := range values {
			if rng.Float64() < p {
				values[i] = 1
			}
		}
		buf := EncodeBitmap(values)
		if buf == nil {
			return false
		}
		got, err := DecodeBitmap(buf)
		if err != nil {
			return false
		}
		if n == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPopcount(t *testing.T) {
	if got := popcount([]byte{0xFF, 0x01, 0x00}); got != 9 {
		t.Fatalf("popcount = %d", got)
	}
}
