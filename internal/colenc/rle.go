package colenc

import (
	"encoding/binary"
	"fmt"
)

// EncodeRLE encodes values as (value, run-length) varint pairs prefixed by
// the total value count. Long runs — the XOR'd binary failure streams and
// expert labels DeepSqueeze produces — collapse to a few bytes.
func EncodeRLE(values []int64) []byte {
	out := binary.AppendUvarint(nil, uint64(len(values)))
	i := 0
	for i < len(values) {
		j := i + 1
		for j < len(values) && values[j] == values[i] {
			j++
		}
		out = binary.AppendUvarint(out, Zigzag(values[i]))
		out = binary.AppendUvarint(out, uint64(j-i))
		i = j
	}
	return out
}

// DecodeRLE inverts EncodeRLE with no expected-count bound.
func DecodeRLE(buf []byte) ([]int64, error) { return DecodeRLEMax(buf, -1) }

// DecodeRLEMax inverts EncodeRLE, rejecting counts above max (max < 0
// disables the bound). A single run pair a few bytes long can legally cover
// the whole declared count, so without an external bound a corrupt count
// drives an arbitrarily large output allocation.
func DecodeRLEMax(buf []byte, max int) ([]int64, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing count", ErrCorrupt)
	}
	if err := checkCount(n, max); err != nil {
		return nil, err
	}
	buf = buf[sz:]
	const maxPrealloc = 1 << 24
	cap := n
	if cap > maxPrealloc {
		cap = maxPrealloc
	}
	out := make([]int64, 0, cap)
	for uint64(len(out)) < n {
		vz, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, fmt.Errorf("%w: truncated run value", ErrCorrupt)
		}
		buf = buf[sz:]
		run, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, fmt.Errorf("%w: truncated run length", ErrCorrupt)
		}
		buf = buf[sz:]
		if run == 0 || uint64(len(out))+run > n {
			return nil, fmt.Errorf("%w: run length %d overflows count %d", ErrCorrupt, run, n)
		}
		v := Unzigzag(vz)
		for k := uint64(0); k < run; k++ {
			out = append(out, v)
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf))
	}
	return out, nil
}
