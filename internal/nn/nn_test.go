package nn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"deepsqueeze/internal/mat"
	"deepsqueeze/internal/pipeline"
)

// captureOpt records gradients without touching weights, so TrainBatch can
// be used as a pure loss-and-gradient oracle.
type captureOpt struct {
	gradW map[*Dense]*mat.Matrix
	gradB map[*Dense][]float64
}

func newCaptureOpt() *captureOpt {
	return &captureOpt{gradW: map[*Dense]*mat.Matrix{}, gradB: map[*Dense][]float64{}}
}

func (o *captureOpt) Step(layers []*Dense) {
	for _, l := range layers {
		o.gradW[l] = l.GradW.Clone()
		o.gradB[l] = append([]float64(nil), l.GradB...)
		l.ZeroGrad()
	}
}

func TestActivations(t *testing.T) {
	m := mat.FromSlice(1, 4, []float64{-2, -0.5, 0.5, 2})
	relu := m.Clone()
	ReLU.apply(relu)
	if relu.At(0, 0) != 0 || relu.At(0, 3) != 2 {
		t.Fatalf("ReLU = %v", relu.Data)
	}
	sig := m.Clone()
	Sigmoid.apply(sig)
	for i, v := range sig.Data {
		want := 1 / (1 + math.Exp(-m.Data[i]))
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("Sigmoid[%d] = %v, want %v", i, v, want)
		}
	}
	th := m.Clone()
	Tanh.apply(th)
	if math.Abs(th.At(0, 3)-math.Tanh(2)) > 1e-12 {
		t.Fatal("Tanh wrong")
	}
	id := m.Clone()
	Identity.apply(id)
	if !mat.Equal(id, m, 0) {
		t.Fatal("Identity changed values")
	}
}

func TestSoftmax(t *testing.T) {
	m := mat.FromSlice(2, 4, []float64{1, 2, 3, 99, 0, 0, 0, 99})
	Softmax(m, 3) // last column must be untouched
	for r := 0; r < 2; r++ {
		row := m.Row(r)
		sum := row[0] + row[1] + row[2]
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
		if row[3] != 99 {
			t.Fatalf("softmax touched column outside width: %v", row[3])
		}
	}
	if !(m.At(0, 2) > m.At(0, 1) && m.At(0, 1) > m.At(0, 0)) {
		t.Fatal("softmax not monotone")
	}
	if math.Abs(m.At(1, 0)-1.0/3) > 1e-12 {
		t.Fatal("uniform softmax not uniform")
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	m := mat.FromSlice(1, 2, []float64{1000, 1001})
	Softmax(m, 2)
	if math.IsNaN(m.At(0, 0)) || math.IsNaN(m.At(0, 1)) {
		t.Fatal("softmax overflowed on large logits")
	}
}

func TestDenseForwardKnownValues(t *testing.T) {
	d := &Dense{In: 2, Out: 1, Act: Identity,
		W: mat.FromSlice(1, 2, []float64{2, 3}), B: []float64{1},
		GradW: mat.New(1, 2), GradB: make([]float64, 1)}
	out := d.Forward(mat.FromSlice(1, 2, []float64{4, 5}))
	if out.At(0, 0) != 2*4+3*5+1 {
		t.Fatalf("forward = %v", out.At(0, 0))
	}
	// Infer must match Forward and not disturb caches.
	if got := d.Infer(mat.FromSlice(1, 2, []float64{4, 5})); got.At(0, 0) != out.At(0, 0) {
		t.Fatal("Infer differs from Forward")
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 2, 2, Identity)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Backward(mat.New(1, 2))
}

func testSpecs() []ColSpec {
	return []ColSpec{
		{Kind: OutNumeric},
		{Kind: OutBinary},
		{Kind: OutCategorical, Card: 3},
		{Kind: OutNumeric},
		{Kind: OutCategorical, Card: 5},
	}
}

func randomBatch(rng *rand.Rand, specs []ColSpec, rows int) (*mat.Matrix, *Targets) {
	x := mat.New(rows, len(specs))
	var numCols, binCols, catCols int
	for _, s := range specs {
		switch s.Kind {
		case OutNumeric:
			numCols++
		case OutBinary:
			binCols++
		case OutCategorical:
			catCols++
		}
	}
	tg := &Targets{Num: mat.New(rows, numCols), Bin: mat.New(rows, binCols), Cat: make([][]int, catCols)}
	for j := range tg.Cat {
		tg.Cat[j] = make([]int, rows)
	}
	for r := 0; r < rows; r++ {
		ni, bi, ci := 0, 0, 0
		for c, s := range specs {
			switch s.Kind {
			case OutNumeric:
				v := rng.Float64()
				x.Set(r, c, v)
				tg.Num.Set(r, ni, v)
				ni++
			case OutBinary:
				v := float64(rng.Intn(2))
				x.Set(r, c, v)
				tg.Bin.Set(r, bi, v)
				bi++
			case OutCategorical:
				cls := rng.Intn(s.Card)
				x.Set(r, c, float64(cls)/float64(s.Card-1))
				tg.Cat[ci][r] = cls
				ci++
			}
		}
	}
	return x, tg
}

// TestGradientCheck verifies analytic backprop against central finite
// differences for every layer of the mixed-head autoencoder. This is the
// load-bearing correctness test for the whole nn package.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ae, err := NewAutoencoder(rng, testSpecs(), Config{CodeSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	x, tg := randomBatch(rng, testSpecs(), 5)
	// Mask one categorical target to exercise the rare-value path.
	tg.Cat[1][2] = -1

	cap := newCaptureOpt()
	ae.TrainBatch(x, tg, cap)

	lossAt := func() float64 {
		c := newCaptureOpt()
		return ae.TrainBatch(x, tg, c)
	}
	const eps = 1e-6
	checked := 0
	for li, l := range ae.AllLayers() {
		g := cap.gradW[l]
		if g == nil {
			t.Fatalf("layer %d missing captured grads", li)
		}
		// Probe a handful of weights per layer plus one bias.
		probe := []int{0, len(l.W.Data) / 2, len(l.W.Data) - 1}
		for _, pi := range probe {
			orig := l.W.Data[pi]
			l.W.Data[pi] = orig + eps
			lp := lossAt()
			l.W.Data[pi] = orig - eps
			lm := lossAt()
			l.W.Data[pi] = orig
			num := (lp - lm) / (2 * eps)
			ana := g.Data[pi]
			if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)+math.Abs(ana)) {
				t.Errorf("layer %d weight %d: analytic %.8f vs numeric %.8f", li, pi, ana, num)
			}
			checked++
		}
		bi := l.Out / 2
		orig := l.B[bi]
		l.B[bi] = orig + eps
		lp := lossAt()
		l.B[bi] = orig - eps
		lm := lossAt()
		l.B[bi] = orig
		num := (lp - lm) / (2 * eps)
		ana := cap.gradB[l][bi]
		if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)+math.Abs(ana)) {
			t.Errorf("layer %d bias %d: analytic %.8f vs numeric %.8f", li, bi, ana, num)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d gradient probes ran", checked)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specs := testSpecs()
	ae, err := NewAutoencoder(rng, specs, Config{CodeSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Structured data: all columns derive from one latent factor, so a
	// 3-dim code can capture them.
	rows := 512
	x := mat.New(rows, len(specs))
	tg := &Targets{Num: mat.New(rows, 2), Bin: mat.New(rows, 1), Cat: [][]int{make([]int, rows), make([]int, rows)}}
	for r := 0; r < rows; r++ {
		z := rng.Float64()
		x.Set(r, 0, z)
		tg.Num.Set(r, 0, z)
		bin := 0.0
		if z > 0.5 {
			bin = 1
		}
		x.Set(r, 1, bin)
		tg.Bin.Set(r, 0, bin)
		c3 := int(z * 2.999)
		x.Set(r, 2, float64(c3)/2)
		tg.Cat[0][r] = c3
		x.Set(r, 3, 1-z)
		tg.Num.Set(r, 1, 1-z)
		c5 := int(z * 4.999)
		x.Set(r, 4, float64(c5)/4)
		tg.Cat[1][r] = c5
	}
	opt := NewAdam(0.01)
	first := ae.TrainBatch(x, tg, opt)
	var last float64
	for i := 0; i < 120; i++ {
		last = ae.TrainBatch(x, tg, opt)
	}
	if last > first*0.5 {
		t.Fatalf("loss did not halve: first %.4f last %.4f", first, last)
	}
}

func TestPredictConsistentWithLosses(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	specs := testSpecs()
	ae, _ := NewAutoencoder(rng, specs, Config{CodeSize: 2})
	x, tg := randomBatch(rng, specs, 9)
	p := ae.Predict(ae.Encode(x))
	if p.Num.Cols != 2 || p.Bin.Cols != 1 || len(p.Cat) != 2 {
		t.Fatalf("prediction shapes: num %d bin %d cat %d", p.Num.Cols, p.Bin.Cols, len(p.Cat))
	}
	for j, pc := range p.Cat {
		for r := 0; r < pc.Rows; r++ {
			var sum float64
			for _, v := range pc.Row(r) {
				if v < 0 {
					t.Fatalf("negative probability in cat %d", j)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("cat %d row %d probs sum to %v", j, r, sum)
			}
		}
	}
	losses := ae.Losses(x, tg)
	if len(losses) != 9 {
		t.Fatalf("losses len %d", len(losses))
	}
	for _, l := range losses {
		if l <= 0 || math.IsNaN(l) {
			t.Fatalf("bad per-tuple loss %v", l)
		}
	}
}

func TestSingleLayerLinearConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ae, err := NewAutoencoder(rng, testSpecs(), Config{CodeSize: 2, SingleLayerLinear: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ae.Encoder) != 1 || len(ae.Hidden) != 1 {
		t.Fatalf("baseline model has %d enc / %d dec layers", len(ae.Encoder), len(ae.Hidden))
	}
	if ae.Hidden[0].Act != Identity {
		t.Fatal("baseline decoder layer must be linear")
	}
	x, tg := randomBatch(rng, testSpecs(), 8)
	opt := NewAdam(0.01)
	if l := ae.TrainBatch(x, tg, opt); math.IsNaN(l) {
		t.Fatal("NaN loss")
	}
}

func TestDecoderSerializationExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	specs := testSpecs()
	ae, _ := NewAutoencoder(rng, specs, Config{CodeSize: 2})
	x, tg := randomBatch(rng, specs, 32)
	opt := NewAdam(0.01)
	for i := 0; i < 10; i++ {
		ae.TrainBatch(x, tg, opt)
	}
	// The contract: quantize to float32, serialize, decode — predictions
	// must be bit-identical to the quantized in-memory model.
	ae.Decoder.Quantize32()
	codes := ae.Encode(x)
	want := ae.Decoder.Predict(codes)
	buf := ae.Decoder.AppendBinary(nil)
	dec, used, err := DecodeDecoder(buf)
	if err != nil || used != len(buf) {
		t.Fatalf("DecodeDecoder: %v, used %d/%d", err, used, len(buf))
	}
	got := dec.Predict(codes)
	if !mat.Equal(got.Num, want.Num, 0) || !mat.Equal(got.Bin, want.Bin, 0) {
		t.Fatal("numeric predictions differ after serialization round trip")
	}
	for j := range want.Cat {
		if !mat.Equal(got.Cat[j], want.Cat[j], 0) {
			t.Fatalf("categorical predictions %d differ after round trip", j)
		}
	}
}

func TestDecodeDecoderRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ae, _ := NewAutoencoder(rng, testSpecs(), Config{CodeSize: 2})
	buf := ae.Decoder.AppendBinary(nil)
	for _, cut := range []int{0, 1, 3, len(buf) / 2, len(buf) - 1} {
		if _, _, err := DecodeDecoder(buf[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestEncoderSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ae, _ := NewAutoencoder(rng, testSpecs(), Config{CodeSize: 2})
	for _, l := range ae.Encoder {
		l.Quantize32()
	}
	buf := ae.AppendEncoder(nil)
	layers, used, err := DecodeEncoder(buf)
	if err != nil || used != len(buf) {
		t.Fatalf("DecodeEncoder: %v", err)
	}
	x, _ := randomBatch(rng, testSpecs(), 4)
	want := ae.Encode(x)
	h := x
	for _, l := range layers {
		h = l.Infer(h)
	}
	if !mat.Equal(h, want, 0) {
		t.Fatal("decoded encoder computes different codes")
	}
}

func TestMoEAssignAndTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	specs := []ColSpec{{Kind: OutNumeric}, {Kind: OutNumeric}}
	moe, err := NewMoE(rng, specs, Config{CodeSize: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two linear regimes (y = x and y = 1-x): a 2-expert mixture should
	// beat a shared fit.
	rows := 600
	x := mat.New(rows, 2)
	tg := &Targets{Num: mat.New(rows, 2), Bin: mat.New(rows, 0), Cat: nil}
	for r := 0; r < rows; r++ {
		z := rng.Float64()
		x.Set(r, 0, z)
		tg.Num.Set(r, 0, z)
		var y float64
		if r%2 == 0 {
			y = z
		} else {
			y = 1 - z
		}
		x.Set(r, 1, y)
		tg.Num.Set(r, 1, y)
	}
	hist := moe.Train(rng, x, tg, TrainOptions{Epochs: 40, BatchSize: 64, LR: 0.02})
	if len(hist) == 0 {
		t.Fatal("no training history")
	}
	if hist[len(hist)-1] > hist[0]*0.5 {
		t.Fatalf("MoE loss did not halve: %v → %v", hist[0], hist[len(hist)-1])
	}
	assign := moe.Assign(x, tg)
	if len(assign) != rows {
		t.Fatalf("assign len %d", len(assign))
	}
	counts := map[int]int{}
	for _, a := range assign {
		counts[a]++
	}
	// Both experts should end up used on this bimodal data.
	if len(counts) != 2 {
		t.Logf("expert usage: %v (single-expert collapse is possible but unexpected)", counts)
	}
	gate := moe.GateAssign(x)
	agree := 0
	for i := range gate {
		if gate[i] == assign[i] {
			agree++
		}
	}
	if agree < rows/2 {
		t.Errorf("gate agrees with loss-argmin on only %d/%d tuples", agree, rows)
	}
}

func TestMoESingleExpert(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	specs := []ColSpec{{Kind: OutNumeric}}
	moe, err := NewMoE(rng, specs, Config{CodeSize: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if moe.Gate != nil {
		t.Fatal("single-expert MoE must not build a gate")
	}
	x := mat.New(4, 1)
	tg := &Targets{Num: mat.New(4, 1)}
	if a := moe.Assign(x, tg); len(a) != 4 || a[0] != 0 {
		t.Fatalf("Assign = %v", a)
	}
	moe.Train(rng, x, tg, TrainOptions{Epochs: 2})
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	if _, err := NewAutoencoder(rng, nil, Config{CodeSize: 1}); err == nil {
		t.Error("empty specs accepted")
	}
	if _, err := NewAutoencoder(rng, testSpecs(), Config{CodeSize: 0}); err == nil {
		t.Error("zero code size accepted")
	}
	if _, err := NewAutoencoder(rng, []ColSpec{{Kind: OutCategorical, Card: 0}}, Config{CodeSize: 1}); err == nil {
		t.Error("zero cardinality accepted")
	}
	if _, err := NewMoE(rng, testSpecs(), Config{CodeSize: 1}, 0); err == nil {
		t.Error("zero experts accepted")
	}
}

func TestOptimizersConverge(t *testing.T) {
	// Fit y = 0.5 with a single sigmoid unit under each optimizer.
	for name, mk := range map[string]func() Optimizer{
		"sgd":          func() Optimizer { return NewSGD(0.5, 0) },
		"sgd-momentum": func() Optimizer { return NewSGD(0.2, 0.9) },
		"adam":         func() Optimizer { return NewAdam(0.05) },
	} {
		rng := rand.New(rand.NewSource(16))
		ae, _ := NewAutoencoder(rng, []ColSpec{{Kind: OutNumeric}}, Config{CodeSize: 1})
		x := mat.New(8, 1)
		tg := &Targets{Num: mat.New(8, 1)}
		for r := 0; r < 8; r++ {
			x.Set(r, 0, 0.5)
			tg.Num.Set(r, 0, 0.5)
		}
		opt := mk()
		var last float64
		for i := 0; i < 300; i++ {
			last = ae.TrainBatch(x, tg, opt)
		}
		if last > 0.01 {
			t.Errorf("%s: loss %.5f after 300 steps", name, last)
		}
	}
}

func TestClipGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	l := NewDense(rng, 4, 4, Identity)
	l.GradW.Fill(10)
	for i := range l.GradB {
		l.GradB[i] = 10
	}
	pre := ClipGrads([]*Dense{l}, 1)
	if pre < 10 {
		t.Fatalf("pre-clip norm %v", pre)
	}
	var sq float64
	for _, g := range l.GradW.Data {
		sq += g * g
	}
	for _, g := range l.GradB {
		sq += g * g
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-9 {
		t.Fatalf("post-clip norm %v", math.Sqrt(sq))
	}
}

// flattenParams returns every weight and bias of the model, in layer order.
func flattenParams(ae *Autoencoder) []float64 {
	var w []float64
	for _, l := range ae.AllLayers() {
		w = append(w, l.W.Data...)
		w = append(w, l.B...)
	}
	return w
}

// bitsEqual reports whether two float slices are bit-identical (NaN-safe,
// distinguishes ±0 — the strictest possible comparison).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestTrainBatchWorkersDeterministic pins the tentpole invariant: the loss
// history and every trained weight are bit-identical at Workers = 1, 4, and
// NumCPU, because the shard partition and gradient-reduction order depend
// only on the batch's row count.
func TestTrainBatchWorkersDeterministic(t *testing.T) {
	train := func(workers int) ([]float64, []float64) {
		rng := rand.New(rand.NewSource(99))
		ae, err := NewAutoencoder(rng, testSpecs(), Config{CodeSize: 3})
		if err != nil {
			t.Fatal(err)
		}
		x, tg := randomBatch(rand.New(rand.NewSource(100)), testSpecs(), 300)
		opt := NewAdam(0.01)
		pool := pipeline.NewPool(workers)
		var losses []float64
		for i := 0; i < 25; i++ {
			losses = append(losses, ae.TrainBatchWorkers(x, tg, opt, workers, pool))
		}
		return losses, flattenParams(ae)
	}
	baseLosses, baseW := train(1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		losses, w := train(workers)
		if !bitsEqual(losses, baseLosses) {
			t.Errorf("loss history at Workers=%d differs from Workers=1", workers)
		}
		if !bitsEqual(w, baseW) {
			t.Errorf("trained weights at Workers=%d differ from Workers=1", workers)
		}
	}
}

// TestMoETrainWorkersDeterministic extends the invariant through the full
// MoE training loop (gate, assignment, per-expert batches).
func TestMoETrainWorkersDeterministic(t *testing.T) {
	train := func(workers int) ([]float64, []float64) {
		rng := rand.New(rand.NewSource(101))
		moe, err := NewMoE(rng, testSpecs(), Config{CodeSize: 2}, 2)
		if err != nil {
			t.Fatal(err)
		}
		x, tg := randomBatch(rand.New(rand.NewSource(102)), testSpecs(), 400)
		hist := moe.Train(rng, x, tg, TrainOptions{Epochs: 4, BatchSize: 128, Workers: workers})
		var w []float64
		for _, e := range moe.Experts {
			w = append(w, flattenParams(e)...)
		}
		for _, l := range moe.Gate {
			w = append(w, l.W.Data...)
			w = append(w, l.B...)
		}
		return hist, w
	}
	baseHist, baseW := train(1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		hist, w := train(workers)
		if !bitsEqual(hist, baseHist) {
			t.Errorf("MoE loss history at Workers=%d differs from Workers=1", workers)
		}
		if !bitsEqual(w, baseW) {
			t.Errorf("MoE weights at Workers=%d differ from Workers=1", workers)
		}
	}
}

// TestTrainBatchMatchesAccumulatedShards checks the data-parallel step is the
// exact fixed-partition computation it claims: loss equals the invB-scaled
// shard losses reduced by the documented tree, and a second model trained
// identically stays bit-identical (regression guard for hidden global state).
func TestTrainBatchRepeatable(t *testing.T) {
	run := func() []float64 {
		rng := rand.New(rand.NewSource(103))
		ae, _ := NewAutoencoder(rng, testSpecs(), Config{CodeSize: 2})
		x, tg := randomBatch(rand.New(rand.NewSource(104)), testSpecs(), 100)
		opt := NewAdam(0.01)
		for i := 0; i < 10; i++ {
			ae.TrainBatch(x, tg, opt)
		}
		return flattenParams(ae)
	}
	if !bitsEqual(run(), run()) {
		t.Fatal("two identical training runs diverged")
	}
}

func BenchmarkTrainBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	specs := testSpecs()
	ae, _ := NewAutoencoder(rng, specs, Config{CodeSize: 4})
	x, tg := randomBatch(rng, specs, 256)
	opt := NewAdam(0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ae.TrainBatch(x, tg, opt)
	}
}

func BenchmarkTrainBatchWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	specs := testSpecs()
	ae, _ := NewAutoencoder(rng, specs, Config{CodeSize: 4})
	x, tg := randomBatch(rng, specs, 256)
	opt := NewAdam(0.01)
	workers := runtime.NumCPU()
	pool := pipeline.NewPool(workers)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ae.TrainBatchWorkers(x, tg, opt, workers, pool)
	}
}

// BenchmarkTrainEpoch measures a full epoch over 4096 rows in 256-row
// minibatches — the shape of the compressor's dominant training stage.
func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	specs := testSpecs()
	ae, _ := NewAutoencoder(rng, specs, Config{CodeSize: 4})
	const rows, batch = 4096, 256
	x, tg := randomBatch(rng, specs, rows)
	opt := NewAdam(0.01)
	workers := runtime.NumCPU()
	pool := pipeline.NewPool(workers)
	bx := make([]mat.Matrix, 0, rows/batch)
	bnum := make([]mat.Matrix, 0, rows/batch)
	bbin := make([]mat.Matrix, 0, rows/batch)
	btg := make([]Targets, 0, rows/batch)
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		bx = append(bx, x.SliceRows(lo, hi))
		bnum = append(bnum, tg.Num.SliceRows(lo, hi))
		bbin = append(bbin, tg.Bin.SliceRows(lo, hi))
		cat := make([][]int, len(tg.Cat))
		for j, col := range tg.Cat {
			cat[j] = col[lo:hi]
		}
		k := len(bnum) - 1
		btg = append(btg, Targets{Num: &bnum[k], Bin: &bbin[k], Cat: cat})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for k := range bx {
			ae.TrainBatchWorkers(&bx[k], &btg[k], opt, workers, pool)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	specs := testSpecs()
	ae, _ := NewAutoencoder(rng, specs, Config{CodeSize: 4})
	x, _ := randomBatch(rng, specs, 256)
	codes := ae.Encode(x)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ae.Decoder.Predict(codes)
	}
}
