package nn

import (
	"fmt"
	"math"
	"math/rand"

	"deepsqueeze/internal/mat"
)

// OutputKind classifies how the autoencoder predicts one column.
type OutputKind byte

const (
	// OutNumeric regresses a [0,1] value with MSE (quantized numeric and
	// value-dictionary columns).
	OutNumeric OutputKind = iota
	// OutBinary predicts a single probability with binary cross-entropy
	// (paper §5.3).
	OutBinary
	// OutCategorical predicts a distribution over Card values through the
	// shared parameter-sharing output layer with softmax cross-entropy.
	OutCategorical
)

// ColSpec describes one model column.
type ColSpec struct {
	Kind OutputKind
	Card int // OutCategorical: softmax width (≥1); others ignored
}

// Predictions holds the decoder outputs for a batch.
type Predictions struct {
	// Num holds sigmoid outputs in [0,1] for OutNumeric columns, batch
	// rows × numeric column position.
	Num *mat.Matrix
	// Bin holds probabilities for OutBinary columns.
	Bin *mat.Matrix
	// Cat holds one batch×Card softmax matrix per OutCategorical column.
	Cat []*mat.Matrix
}

// Targets holds training targets in the same layout as Predictions. Cat
// entries of -1 mark rare values masked out of the loss (paper §4.1).
type Targets struct {
	Num *mat.Matrix
	Bin *mat.Matrix
	Cat [][]int
}

// Decoder is the half of the autoencoder that survives into the archive:
// hidden stack from codes, a sigmoid head for numeric and binary columns,
// and the auxiliary + shared output layers for categorical columns
// (paper Fig. 3).
type Decoder struct {
	Specs    []ColSpec
	CodeSize int
	Hidden   []*Dense // code → hidden (ReLU)
	HeadNum  *Dense   // hidden → #numeric+#binary, Identity (sigmoid applied manually)
	Aux      *Dense   // hidden → #categorical, Tanh
	// SharedHidden and Shared form the parameter-shared categorical output
	// stack: the auxiliary activations plus the signal node pass through a
	// small shared hidden layer and then the shared output layer sized by
	// the largest column cardinality. The hidden layer gives the stack the
	// capacity to decode (auxiliary value, signal) pairs into per-column
	// distributions; a purely linear shared layer cannot separate columns.
	SharedHidden *Dense // #categorical+1 → sharedWidth, ReLU
	Shared       *Dense // sharedWidth → maxCard, Identity (softmax applied per column)

	numPos, binPos, catPos []int // spec index → head position, -1 if other kind
	numCols, binCols       int
	catCols, maxCard       int
	cardOf                 []int // categorical position → cardinality
	catAll                 []int // all categorical positions, ascending
}

// indexSpecs fills the position maps from Specs.
func (d *Decoder) indexSpecs() error {
	n := len(d.Specs)
	d.numPos = make([]int, n)
	d.binPos = make([]int, n)
	d.catPos = make([]int, n)
	d.numCols, d.binCols, d.catCols, d.maxCard = 0, 0, 0, 0
	for i, s := range d.Specs {
		d.numPos[i], d.binPos[i], d.catPos[i] = -1, -1, -1
		switch s.Kind {
		case OutNumeric:
			d.numPos[i] = d.numCols
			d.numCols++
		case OutBinary:
			d.binPos[i] = d.binCols
			d.binCols++
		case OutCategorical:
			if s.Card < 1 {
				return fmt.Errorf("nn: categorical spec %d has card %d", i, s.Card)
			}
			d.catPos[i] = d.catCols
			d.catCols++
			if s.Card > d.maxCard {
				d.maxCard = s.Card
			}
		default:
			return fmt.Errorf("nn: unknown output kind %d", s.Kind)
		}
	}
	d.cardOf = make([]int, d.catCols)
	d.catAll = make([]int, d.catCols)
	for i, s := range d.Specs {
		if j := d.catPos[i]; j >= 0 {
			d.cardOf[j] = s.Card
		}
	}
	for j := range d.catAll {
		d.catAll[j] = j
	}
	return nil
}

// NumPos returns the numeric-head position of spec i, or -1.
func (d *Decoder) NumPos(i int) int { return d.numPos[i] }

// BinPos returns the binary-head position of spec i, or -1.
func (d *Decoder) BinPos(i int) int { return d.binPos[i] }

// CatPos returns the categorical position of spec i, or -1.
func (d *Decoder) CatPos(i int) int { return d.catPos[i] }

// sharedWidth returns the input width of the shared stack: the auxiliary
// activations plus the signal block.
//
// The paper's Fig. 3 describes a single signal node carrying the column
// index. A scalar signal forces the shared stack to multiplex every
// column's decoding through one input dimension, which trains very poorly
// once tables have tens of categorical columns (gradient interference —
// measured directly in this package's diagnostics). We therefore widen the
// signal to a one-hot block, one node per categorical column: the stack is
// still fully parameter-shared and still sized by the largest cardinality
// rather than the sum of cardinalities (the paper's goal), but each column
// can now learn its own interpretation of the auxiliary values.
func (d *Decoder) sharedWidth() int { return 2 * d.catCols }

// hiddenInfer runs the decoder hidden stack without caching.
func (d *Decoder) hiddenInfer(codes *mat.Matrix) *mat.Matrix {
	h := codes
	for _, l := range d.Hidden {
		h = l.Infer(h)
	}
	return h
}

// Predict decodes a batch of codes into per-column predictions without
// touching training caches. This is the exact computation decompression
// replays.
func (d *Decoder) Predict(codes *mat.Matrix) *Predictions {
	return d.PredictCols(codes, nil)
}

// PredictCols is Predict restricted to a subset of spec columns: want is
// indexed by spec position, and nil selects everything. The numeric/binary
// head is one matmul for all such columns, so it runs whenever at least one
// of them is wanted and is skipped entirely otherwise. The shared
// categorical stack — the dominant per-column inference cost — is evaluated
// only for wanted categorical columns; Cat entries of skipped columns stay
// nil. Per-row outputs are identical to a full Predict because every layer
// computes row-independently.
func (d *Decoder) PredictCols(codes *mat.Matrix, want []bool) *Predictions {
	if codes.Cols != d.CodeSize {
		panic(fmt.Sprintf("nn: predict with %d-wide codes, want %d", codes.Cols, d.CodeSize))
	}
	wantNumBin := want == nil
	var wantJ []int // categorical positions to evaluate, ascending
	if want == nil {
		for j := 0; j < d.catCols; j++ {
			wantJ = append(wantJ, j)
		}
	} else {
		for i, s := range d.Specs {
			if i >= len(want) || !want[i] {
				continue
			}
			switch s.Kind {
			case OutNumeric, OutBinary:
				wantNumBin = true
			case OutCategorical:
				wantJ = append(wantJ, d.catPos[i])
			}
		}
	}
	h := d.hiddenInfer(codes)
	p := &Predictions{}
	if wantNumBin && d.numCols+d.binCols > 0 {
		z := d.HeadNum.Infer(h)
		z.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
		p.Num = mat.New(codes.Rows, d.numCols)
		p.Bin = mat.New(codes.Rows, d.binCols)
		splitHead(z, p.Num, p.Bin, d.numCols)
	} else {
		p.Num = mat.New(codes.Rows, 0)
		p.Bin = mat.New(codes.Rows, 0)
	}
	p.Cat = make([]*mat.Matrix, d.catCols)
	if len(wantJ) > 0 {
		aux := d.Aux.Infer(h)
		// Evaluate the shared stack for several columns per matmul by
		// stacking their inputs vertically; slabs bound peak memory.
		b := codes.Rows
		grp := 1
		if b > 0 {
			grp = (1 << 15) / b
		}
		if grp < 1 {
			grp = 1
		}
		for g0 := 0; g0 < len(wantJ); g0 += grp {
			g1 := g0 + grp
			if g1 > len(wantJ) {
				g1 = len(wantJ)
			}
			js := wantJ[g0:g1]
			z := d.stackedSharedInput(nil, aux, js)
			logits := d.Shared.Infer(d.SharedHidden.Infer(z))
			for k, j := range js {
				card := d.cardOf[j]
				probs := mat.New(b, card)
				for r := 0; r < b; r++ {
					row := logits.Row(k*b + r)
					copy(probs.Row(r), row[:card])
				}
				Softmax(probs, card)
				p.Cat[j] = probs
			}
		}
	}
	return p
}

// stackedSharedInput assembles the shared-stack inputs for the listed
// categorical columns stacked vertically: row k*B + r carries row r's
// auxiliary activations with column js[k]'s one-hot signal. Scratch comes
// from ar (nil allocates fresh); either way the unset signal positions are
// zero.
func (d *Decoder) stackedSharedInput(ar *mat.Arena, aux *mat.Matrix, js []int) *mat.Matrix {
	b := aux.Rows
	z := ar.Get(len(js)*b, d.sharedWidth())
	for k, j := range js {
		for r := 0; r < b; r++ {
			row := z.Row(k*b + r)
			copy(row, aux.Row(r))
			row[d.catCols+j] = 1
		}
	}
	return z
}

// splitHead copies the combined numeric+binary head output into its parts:
// columns [0,numCols) are numeric, the rest binary.
func splitHead(z, num, bin *mat.Matrix, numCols int) {
	for r := 0; r < z.Rows; r++ {
		row := z.Row(r)
		copy(num.Row(r), row[:numCols])
		copy(bin.Row(r), row[numCols:])
	}
}

// Layers returns every parameterized layer of the decoder.
func (d *Decoder) Layers() []*Dense {
	out := append([]*Dense{}, d.Hidden...)
	if d.HeadNum != nil {
		out = append(out, d.HeadNum)
	}
	if d.Aux != nil {
		out = append(out, d.Aux)
	}
	if d.SharedHidden != nil {
		out = append(out, d.SharedHidden)
	}
	if d.Shared != nil {
		out = append(out, d.Shared)
	}
	return out
}

// Quantize32 rounds all decoder parameters to float32 precision.
func (d *Decoder) Quantize32() {
	for _, l := range d.Layers() {
		l.Quantize32()
	}
}

// ParamCount returns the number of scalar parameters in the decoder.
func (d *Decoder) ParamCount() int {
	n := 0
	for _, l := range d.Layers() {
		n += l.ParamCount()
	}
	return n
}

// Autoencoder is the full model: encoder stack producing codes plus the
// decoder above (paper Fig. 2).
type Autoencoder struct {
	Decoder
	Encoder []*Dense // input → hidden (ReLU) → code (Sigmoid)

	tr *trainer // lazily built shard trainer (train.go); nil until first TrainBatch
}

// Config controls autoencoder construction.
type Config struct {
	CodeSize   int
	HiddenMult int // hidden width = HiddenMult × #columns (paper uses 2)
	// SingleLayerLinear builds the paper's Fig. 7 baseline: one linear
	// encoder layer straight to the code and one linear decoder layer, no
	// hidden nonlinearity.
	SingleLayerLinear bool
}

// NewAutoencoder builds a model for the given column specs.
func NewAutoencoder(rng *rand.Rand, specs []ColSpec, cfg Config) (*Autoencoder, error) {
	n := len(specs)
	if n == 0 {
		return nil, fmt.Errorf("nn: no model columns")
	}
	if cfg.CodeSize < 1 {
		return nil, fmt.Errorf("nn: code size %d", cfg.CodeSize)
	}
	if cfg.HiddenMult < 1 {
		cfg.HiddenMult = 2
	}
	hidden := cfg.HiddenMult * n
	a := &Autoencoder{}
	a.Specs = append([]ColSpec{}, specs...)
	a.CodeSize = cfg.CodeSize
	if err := a.indexSpecs(); err != nil {
		return nil, err
	}
	if cfg.SingleLayerLinear {
		a.Encoder = []*Dense{NewDense(rng, n, cfg.CodeSize, Sigmoid)}
		a.Hidden = []*Dense{NewDense(rng, cfg.CodeSize, hidden, Identity)}
	} else {
		a.Encoder = []*Dense{
			NewDense(rng, n, hidden, ReLU),
			NewDense(rng, hidden, cfg.CodeSize, Sigmoid),
		}
		a.Hidden = []*Dense{NewDense(rng, cfg.CodeSize, hidden, ReLU)}
	}
	if a.numCols+a.binCols > 0 {
		a.HeadNum = NewDense(rng, hidden, a.numCols+a.binCols, Identity)
	}
	if a.catCols > 0 {
		a.Aux = NewDense(rng, hidden, a.catCols, Tanh)
		// Width scales with both the shared alphabet and the number of
		// columns multiplexed through the stack (the signal node selects
		// among catCols different decodings), capped: past ~128 units the
		// extra capacity stops paying for its compute and its contribution
		// to decoder size.
		sw := 2 * a.maxCard
		if 2*a.catCols > sw {
			sw = 2 * a.catCols
		}
		if sw < 16 {
			sw = 16
		}
		if sw > 128 {
			sw = 128
		}
		a.SharedHidden = NewDense(rng, a.sharedWidth(), sw, ReLU)
		a.Shared = NewDense(rng, sw, a.maxCard, Identity)
	}
	return a, nil
}

// AllLayers returns every parameterized layer (encoder + decoder).
func (a *Autoencoder) AllLayers() []*Dense {
	return append(append([]*Dense{}, a.Encoder...), a.Decoder.Layers()...)
}

// Encode maps inputs (batch × #columns) to codes without caching.
func (a *Autoencoder) Encode(x *mat.Matrix) *mat.Matrix {
	h := x
	for _, l := range a.Encoder {
		h = l.Infer(h)
	}
	return h
}

// TrainBatch runs one forward/backward pass on a batch and applies the
// optimizer. Returns the batch's mean loss (summed over columns). The batch
// is processed through the deterministic shard partition (see train.go), so
// the result is bit-identical to TrainBatchWorkers at any worker count.
func (a *Autoencoder) TrainBatch(x *mat.Matrix, tg *Targets, opt Optimizer) float64 {
	return a.trainer().train(x, tg, opt, 1, nil, false)
}

// accumBatch runs one forward/backward pass over x, adding this batch's
// gradient contribution into the layer accumulators without clipping or
// applying the optimizer. Every loss and gradient term is scaled by invB,
// the reciprocal of the full minibatch size — x may be one shard of a larger
// batch. Scratch matrices come from ar (nil allocates fresh); after warmup
// an arena-backed pass allocates nothing. Returns the invB-scaled loss sum.
func (a *Autoencoder) accumBatch(ar *mat.Arena, x *mat.Matrix, tg *Targets, invB float64) float64 {
	if x.Rows == 0 {
		return 0
	}
	// Forward with caching.
	h := x
	for _, l := range a.Encoder {
		h = l.forward(ar, h)
	}
	for _, l := range a.Hidden {
		h = l.forward(ar, h)
	}

	var loss float64
	dH := ar.Get(h.Rows, h.Cols)

	if a.HeadNum != nil {
		z := a.HeadNum.forward(ar, h)
		y := ar.Get(z.Rows, z.Cols)
		copy(y.Data, z.Data)
		y.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
		// Gradient w.r.t. pre-activation z (HeadNum uses Identity).
		gz := ar.Get(z.Rows, z.Cols)
		for r := 0; r < z.Rows; r++ {
			yr, gr := y.Row(r), gz.Row(r)
			for c := 0; c < a.numCols; c++ {
				t := tg.Num.At(r, c)
				diff := yr[c] - t
				loss += diff * diff * invB
				gr[c] = 2 * diff * yr[c] * (1 - yr[c]) * invB
			}
			for c := 0; c < a.binCols; c++ {
				t := tg.Bin.At(r, c)
				p := yr[a.numCols+c]
				loss += bce(p, t) * invB
				gr[a.numCols+c] = (p - t) * invB
			}
		}
		mat.AddInPlace(dH, a.HeadNum.backward(ar, gz))
	}

	if a.Aux != nil {
		aux := a.Aux.forward(ar, h)
		dAux := ar.Get(aux.Rows, aux.Cols)
		// All categorical columns go through the shared stack in one
		// vertically-stacked forward/backward pass: rows j*B..(j+1)*B-1
		// carry column j's evaluation.
		rows := x.Rows
		z := a.stackedSharedInput(ar, aux, a.catAll)
		logits := a.Shared.forward(ar, a.SharedHidden.forward(ar, z))
		gl := ar.Get(logits.Rows, logits.Cols)
		for j := 0; j < a.catCols; j++ {
			card := a.cardOf[j]
			probs := ar.Get(rows, card)
			for r := 0; r < rows; r++ {
				copy(probs.Row(r), logits.Row(j*rows + r)[:card])
			}
			Softmax(probs, card)
			for r := 0; r < rows; r++ {
				cls := tg.Cat[j][r]
				if cls < 0 || cls >= card {
					continue // rare value masked out of training
				}
				pr, gr := probs.Row(r), gl.Row(j*rows+r)
				loss += -math.Log(math.Max(pr[cls], 1e-12)) * invB
				for c := 0; c < card; c++ {
					gr[c] = pr[c] * invB
				}
				gr[cls] -= invB
			}
		}
		dz := a.SharedHidden.backward(ar, a.Shared.backward(ar, gl))
		for j := 0; j < a.catCols; j++ {
			for r := 0; r < rows; r++ {
				dr, da := dz.Row(j*rows+r), dAux.Row(r)
				for c := 0; c < a.catCols; c++ {
					da[c] += dr[c]
				}
				// The signal node is an input, not a parameter: its
				// gradient is discarded.
			}
		}
		mat.AddInPlace(dH, a.Aux.backward(ar, dAux))
	}

	// Backprop through decoder hidden stack, then encoder.
	g := dH
	for i := len(a.Hidden) - 1; i >= 0; i-- {
		g = a.Hidden[i].backward(ar, g)
	}
	for i := len(a.Encoder) - 1; i >= 0; i-- {
		g = a.Encoder[i].backward(ar, g)
	}
	return loss
}

// Losses computes each tuple's reconstruction loss (summed over columns)
// without training. Used by the mixture-of-experts assignment.
func (a *Autoencoder) Losses(x *mat.Matrix, tg *Targets) []float64 {
	out := make([]float64, x.Rows)
	if x.Rows == 0 {
		return out
	}
	p := a.Predict(a.Encode(x))
	for r := 0; r < x.Rows; r++ {
		var l float64
		for c := 0; c < a.numCols; c++ {
			diff := p.Num.At(r, c) - tg.Num.At(r, c)
			l += diff * diff
		}
		for c := 0; c < a.binCols; c++ {
			l += bce(p.Bin.At(r, c), tg.Bin.At(r, c))
		}
		for j := 0; j < a.catCols; j++ {
			cls := tg.Cat[j][r]
			if cls < 0 || cls >= p.Cat[j].Cols {
				continue
			}
			l += -math.Log(math.Max(p.Cat[j].At(r, cls), 1e-12))
		}
		out[r] = l
	}
	return out
}

// bce is binary cross-entropy with clamped probabilities.
func bce(p, t float64) float64 {
	p = math.Min(math.Max(p, 1e-12), 1-1e-12)
	return -(t*math.Log(p) + (1-t)*math.Log(1-p))
}
