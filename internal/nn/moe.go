package nn

import (
	"fmt"
	"math"
	"math/rand"

	"deepsqueeze/internal/mat"
	"deepsqueeze/internal/pipeline"
)

// MoE is a sparsely-gated mixture of experts (paper §5.2): several small
// autoencoders specialize on disjoint subsets of the tuples, with a learned
// gate that routes tuples to experts during training. Assignments are
// hard (each tuple trains exactly one expert), matching the paper's
// description of the gate masking all but the chosen expert.
type MoE struct {
	Experts []*Autoencoder
	Gate    []*Dense // input → hidden (ReLU) → #experts logits; nil when 1 expert
}

// NewMoE builds numExperts independently-initialized autoencoders plus a
// gate network.
func NewMoE(rng *rand.Rand, specs []ColSpec, cfg Config, numExperts int) (*MoE, error) {
	if numExperts < 1 {
		return nil, fmt.Errorf("nn: %d experts", numExperts)
	}
	m := &MoE{Experts: make([]*Autoencoder, numExperts)}
	for i := range m.Experts {
		ae, err := NewAutoencoder(rng, specs, cfg)
		if err != nil {
			return nil, err
		}
		m.Experts[i] = ae
	}
	if numExperts > 1 {
		n := len(specs)
		gh := 2 * numExperts
		if gh < 4 {
			gh = 4
		}
		m.Gate = []*Dense{
			NewDense(rng, n, gh, ReLU),
			NewDense(rng, gh, numExperts, Identity),
		}
	}
	return m, nil
}

// gateLogits runs the gate without caching.
func (m *MoE) gateLogits(x *mat.Matrix) *mat.Matrix {
	h := x
	for _, l := range m.Gate {
		h = l.Infer(h)
	}
	return h
}

// GateAssign returns the gate's argmax expert per tuple — the routing a
// streaming client applies with only the encoder halves on hand.
func (m *MoE) GateAssign(x *mat.Matrix) []int {
	out := make([]int, x.Rows)
	if len(m.Experts) == 1 {
		return out
	}
	logits := m.gateLogits(x)
	for r := 0; r < x.Rows; r++ {
		row := logits.Row(r)
		best := 0
		for e, v := range row {
			if v > row[best] {
				best = e
			}
		}
		out[r] = best
	}
	return out
}

// Assign returns the loss-minimizing expert per tuple, which is what the
// compressor materializes (the stored mapping makes the gate unnecessary at
// decompression time).
func (m *MoE) Assign(x *mat.Matrix, tg *Targets) []int {
	out := make([]int, x.Rows)
	if len(m.Experts) == 1 {
		return out
	}
	best := make([]float64, x.Rows)
	for i := range best {
		best[i] = math.Inf(1)
	}
	for e, exp := range m.Experts {
		losses := exp.Losses(x, tg)
		for r, l := range losses {
			if l < best[r] {
				best[r] = l
				out[r] = e
			}
		}
	}
	return out
}

// TrainOptions controls MoE training.
type TrainOptions struct {
	Epochs      int     // maximum epochs (default 30)
	BatchSize   int     // default 256
	LR          float64 // Adam learning rate (default 0.01)
	ConvergeEps float64 // stop when relative loss improvement < this for 2 epochs (default 0.002)
	Progress    func(epoch int, loss float64)
	// Stop, when non-nil, is polled between batches; training returns early
	// (with the history so far) once it reports true. The compression
	// pipeline wires this to its context so cancellation interrupts the
	// dominant training stage promptly rather than at the next epoch.
	Stop func() bool
	// Workers caps how many minibatch shards train concurrently on model
	// replicas (data-parallel SGD, see train.go). <= 1 trains serially.
	// Loss histories and trained weights are bit-identical at every value,
	// so Workers is purely a throughput knob.
	Workers int
	// Pool supplies the bounded worker pool shards run on, letting training
	// share one pool with the rest of a compression run. Nil with Workers > 1
	// gets a private pool of that size.
	Pool *pipeline.Pool
	// Float32 runs each shard's forward/backward pass through the float32
	// kernel family (train32.go): float64 parameters stay the masters, so
	// optimizer state and the Workers bit-identity contract are unchanged,
	// but the linear algebra rounds at float32. Expert assignment and the
	// gate stay float64 either way.
	Float32 bool
}

func (o *TrainOptions) defaults() {
	if o.Epochs <= 0 {
		o.Epochs = 30
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.LR <= 0 {
		o.LR = 0.01
	}
	if o.ConvergeEps <= 0 {
		o.ConvergeEps = 0.002
	}
	if o.Workers > 1 && o.Pool == nil {
		o.Pool = pipeline.NewPool(o.Workers)
	}
}

// Train fits the mixture end-to-end (paper §5.3): per batch, every expert
// scores every tuple, each tuple trains its best expert (score = expert
// loss minus the gate's log-probability, i.e. the MAP assignment), and the
// gate is trained with cross-entropy toward the chosen assignment. Returns
// the per-epoch mean loss history.
func (m *MoE) Train(rng *rand.Rand, x *mat.Matrix, tg *Targets, opts TrainOptions) []float64 {
	opts.defaults()
	n := x.Rows
	if n == 0 {
		return nil
	}
	optims := make([]*Adam, len(m.Experts))
	for i := range optims {
		optims[i] = NewAdam(opts.LR)
	}
	var gateOpt *Adam
	if m.Gate != nil {
		gateOpt = NewAdam(opts.LR)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var history []float64
	flat := 0
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var tuples int
		for lo := 0; lo < n; lo += opts.BatchSize {
			if opts.Stop != nil && opts.Stop() {
				return history
			}
			hi := lo + opts.BatchSize
			if hi > n {
				hi = n
			}
			idx := order[lo:hi]
			bx := extractRows(x, idx)
			btg := extractTargets(tg, idx)
			epochLoss += m.trainBatch(bx, btg, optims, gateOpt, &opts) * float64(len(idx))
			tuples += len(idx)
		}
		epochLoss /= float64(tuples)
		history = append(history, epochLoss)
		if opts.Progress != nil {
			opts.Progress(epoch, epochLoss)
		}
		if epoch > 0 {
			prev := history[epoch-1]
			if prev-epochLoss < opts.ConvergeEps*math.Abs(prev) {
				flat++
				if flat >= 2 {
					break
				}
			} else {
				flat = 0
			}
		}
	}
	return history
}

// trainBatch trains one batch and returns its mean loss.
func (m *MoE) trainBatch(bx *mat.Matrix, btg *Targets, optims []*Adam, gateOpt *Adam, opts *TrainOptions) float64 {
	if len(m.Experts) == 1 {
		return m.Experts[0].trainer().train(bx, btg, optims[0], opts.Workers, opts.Pool, opts.Float32)
	}
	// Score every tuple under every expert; MAP assignment folds in the
	// gate's current belief so routing and gating co-adapt.
	logits := m.gateLogits(bx)
	logProbs := logits.Clone()
	Softmax(logProbs, logProbs.Cols)
	logProbs.Apply(func(p float64) float64 { return math.Log(math.Max(p, 1e-12)) })
	assign := make([]int, bx.Rows)
	bestScore := make([]float64, bx.Rows)
	for i := range bestScore {
		bestScore[i] = math.Inf(1)
	}
	for e, exp := range m.Experts {
		losses := exp.Losses(bx, btg)
		for r, l := range losses {
			score := l - logProbs.At(r, e)
			if score < bestScore[r] {
				bestScore[r] = score
				assign[r] = e
			}
		}
	}
	// Train each expert on its assigned tuples.
	var total float64
	for e, exp := range m.Experts {
		var idx []int
		for r, a := range assign {
			if a == e {
				idx = append(idx, r)
			}
		}
		if len(idx) == 0 {
			continue
		}
		sub := extractRows(bx, idx)
		stg := extractTargets(btg, idx)
		total += exp.trainer().train(sub, stg, optims[e], opts.Workers, opts.Pool, opts.Float32) * float64(len(idx))
	}
	total /= float64(bx.Rows)
	// Train the gate toward the assignment with softmax cross-entropy.
	h := bx
	for _, l := range m.Gate {
		h = l.Forward(h)
	}
	probs := h.Clone()
	Softmax(probs, probs.Cols)
	grad := mat.New(h.Rows, h.Cols)
	b := float64(h.Rows)
	for r := 0; r < h.Rows; r++ {
		pr, gr := probs.Row(r), grad.Row(r)
		for c := range gr {
			gr[c] = pr[c] / b
		}
		gr[assign[r]] -= 1 / b
	}
	g := grad
	for i := len(m.Gate) - 1; i >= 0; i-- {
		g = m.Gate[i].Backward(g)
	}
	ClipGrads(m.Gate, 5)
	gateOpt.Step(m.Gate)
	return total
}

// Quantize32 rounds every expert decoder and the gate to float32 precision.
func (m *MoE) Quantize32() {
	for _, e := range m.Experts {
		e.Decoder.Quantize32()
		for _, l := range e.Encoder {
			l.Quantize32()
		}
	}
	for _, l := range m.Gate {
		l.Quantize32()
	}
}

// extractRows copies the given rows of x into a new matrix.
func extractRows(x *mat.Matrix, idx []int) *mat.Matrix {
	out := mat.New(len(idx), x.Cols)
	for i, r := range idx {
		copy(out.Row(i), x.Row(r))
	}
	return out
}

// extractTargets copies the given rows of every target component.
func extractTargets(tg *Targets, idx []int) *Targets {
	out := &Targets{}
	if tg.Num != nil {
		out.Num = extractRows(tg.Num, idx)
	}
	if tg.Bin != nil {
		out.Bin = extractRows(tg.Bin, idx)
	}
	out.Cat = make([][]int, len(tg.Cat))
	for j, col := range tg.Cat {
		sub := make([]int, len(idx))
		for i, r := range idx {
			sub[i] = col[r]
		}
		out.Cat[j] = sub
	}
	return out
}
