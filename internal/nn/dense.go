package nn

import (
	"fmt"
	"math/rand"

	"deepsqueeze/internal/mat"
)

// Dense is a fully connected layer Y = act(X·Wᵀ + b) over row-major batches
// (rows are tuples). Weights are stored out×in so each output node's weights
// are contiguous.
type Dense struct {
	In, Out int
	Act     Activation
	W       *mat.Matrix // Out×In
	B       []float64   // Out

	// Gradient accumulators, filled by Backward and consumed by optimizers.
	GradW *mat.Matrix
	GradB []float64

	// Cached forward-pass state for backprop.
	lastIn  *mat.Matrix
	lastOut *mat.Matrix
}

// NewDense constructs a layer with activation-appropriate initialization.
func NewDense(rng *rand.Rand, in, out int, act Activation) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: dense dims %d→%d", in, out))
	}
	var w *mat.Matrix
	if act == ReLU {
		w = mat.HeUniform(rng, out, in)
	} else {
		w = mat.GlorotUniform(rng, out, in)
	}
	return &Dense{
		In: in, Out: out, Act: act,
		W: w, B: make([]float64, out),
		GradW: mat.New(out, in), GradB: make([]float64, out),
	}
}

// Forward computes the layer output for a batch x (rows×In) and caches the
// values Backward needs.
func (d *Dense) Forward(x *mat.Matrix) *mat.Matrix { return d.forward(nil, x) }

// forward is Forward drawing its output from ar (nil ar allocates fresh).
func (d *Dense) forward(ar *mat.Arena, x *mat.Matrix) *mat.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense forward input %d cols, want %d", x.Cols, d.In))
	}
	out := ar.Get(x.Rows, d.Out)
	mat.MulTInto(x, d.W, out)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += d.B[j]
		}
	}
	d.Act.apply(out)
	d.lastIn, d.lastOut = x, out
	return out
}

// Infer computes the layer output without caching backprop state, for
// inference paths that must not disturb training caches.
func (d *Dense) Infer(x *mat.Matrix) *mat.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense infer input %d cols, want %d", x.Cols, d.In))
	}
	out := mat.MulT(x, d.W)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += d.B[j]
		}
	}
	d.Act.apply(out)
	return out
}

// Backward takes ∂L/∂out (same shape as the last Forward output), adds this
// batch's weight gradients into GradW/GradB, and returns ∂L/∂in. The caller
// may mutate grad.
func (d *Dense) Backward(grad *mat.Matrix) *mat.Matrix { return d.backward(nil, grad) }

// backward is Backward drawing ∂L/∂in from ar (nil ar allocates fresh). The
// weight gradient accumulates straight into GradW without an intermediate
// product matrix.
func (d *Dense) backward(ar *mat.Arena, grad *mat.Matrix) *mat.Matrix {
	if d.lastIn == nil {
		panic("nn: Backward before Forward")
	}
	if grad.Rows != d.lastOut.Rows || grad.Cols != d.Out {
		panic(fmt.Sprintf("nn: dense backward grad %dx%d, want %dx%d", grad.Rows, grad.Cols, d.lastOut.Rows, d.Out))
	}
	d.Act.backprop(grad, d.lastOut)
	// dW += gradᵀ · x ; db += column sums of grad ; dX = grad · W
	mat.TMulAddInto(grad, d.lastIn, d.GradW)
	for i := 0; i < grad.Rows; i++ {
		row := grad.Row(i)
		for j, v := range row {
			d.GradB[j] += v
		}
	}
	dx := ar.Get(grad.Rows, d.In)
	return mat.MulInto(grad, d.W, dx)
}

// ZeroGrad clears the gradient accumulators.
func (d *Dense) ZeroGrad() {
	d.GradW.Zero()
	for i := range d.GradB {
		d.GradB[i] = 0
	}
}

// ParamCount returns the number of scalar parameters.
func (d *Dense) ParamCount() int { return d.In*d.Out + d.Out }

// Quantize32 rounds every parameter to float32 precision in place. The
// compressor calls this before materialization so that the predictions used
// to compute failures are exactly reproducible from the serialized
// (float32) decoder.
func (d *Dense) Quantize32() {
	for i, v := range d.W.Data {
		d.W.Data[i] = float64(float32(v))
	}
	for i, v := range d.B {
		d.B[i] = float64(float32(v))
	}
}

// Clone returns a deep copy of the layer's parameters (gradients and caches
// are fresh).
func (d *Dense) Clone() *Dense {
	c := &Dense{
		In: d.In, Out: d.Out, Act: d.Act,
		W: d.W.Clone(), B: append([]float64(nil), d.B...),
		GradW: mat.New(d.Out, d.In), GradB: make([]float64, d.Out),
	}
	return c
}

// replica returns a layer sharing d's parameters (W and B alias d's memory)
// with private gradient accumulators and forward caches. Data-parallel
// training runs each minibatch shard through a replica: reads of the shared
// weights are concurrent-safe because the optimizer only steps between
// batches, while gradients accumulate privately and are reduced afterwards.
func (d *Dense) replica() *Dense {
	return &Dense{
		In: d.In, Out: d.Out, Act: d.Act,
		W: d.W, B: d.B,
		GradW: mat.New(d.Out, d.In), GradB: make([]float64, d.Out),
	}
}
