package nn

import (
	"math"

	"deepsqueeze/internal/mat"
)

// Mixed-precision training (TrainOptions.Float32, DESIGN.md §15).
//
// The float64 parameters stay the masters: the optimizer state, gradient
// clipping, and the binary-tree reduction in train.go are untouched. What
// changes is the per-shard forward/backward pass: each shard runs accumBatch
// arithmetic through float32 kernels against a shared float32 copy of the
// weights, narrowed once per batch (the masters are read-only while shards
// run, so one copy serves every shard), and folds its float32 gradient
// accumulators into its replica's float64 accumulators before the reduction.
// Element-wise loss terms and transcendentals stay float64, widened per
// element, exactly like the float32 decode path. Because the shard partition,
// the per-shard fold, and the reduction order all remain pure functions of
// the row count, Float32 training keeps the Workers bit-identity contract —
// just under float32 rounding of the linear algebra.

// ae32 is one shard's float32 training view of an autoencoder: layers alias
// the trainer's shared narrowed weights and own private float32 gradients and
// forward caches. Field order mirrors Autoencoder; layers matches the
// AllLayers order so gradients fold positionally.
type ae32 struct {
	src          *Autoencoder
	encoder      []*Dense32
	hidden       []*Dense32
	headNum      *Dense32
	aux          *Dense32
	sharedHidden *Dense32
	shared       *Dense32
	layers       []*Dense32
}

// newAE32 builds a shard view over the trainer's shared weight set, which
// must be parallel to src.AllLayers().
func newAE32(src *Autoencoder, sharedW []*Dense32) *ae32 {
	a := &ae32{src: src}
	i := 0
	next := func() *Dense32 {
		s := sharedW[i]
		i++
		l := &Dense32{
			In: s.In, Out: s.Out, Act: s.Act,
			W: s.W, B: s.B, // shared, refreshed per batch by the trainer
			GradW: mat.New32(s.Out, s.In), GradB: make([]float32, s.Out),
		}
		a.layers = append(a.layers, l)
		return l
	}
	for range src.Encoder {
		a.encoder = append(a.encoder, next())
	}
	for range src.Hidden {
		a.hidden = append(a.hidden, next())
	}
	if src.HeadNum != nil {
		a.headNum = next()
	}
	if src.Aux != nil {
		a.aux = next()
	}
	if src.SharedHidden != nil {
		a.sharedHidden = next()
	}
	if src.Shared != nil {
		a.shared = next()
	}
	return a
}

// forward32 is the training forward pass: like infer but caching the values
// backward32 needs.
func (d *Dense32) forward32(ar *mat.Arena32, x *mat.Matrix32) *mat.Matrix32 {
	out := ar.Get(x.Rows, d.Out)
	mat.MulTInto32(x, d.W, out)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += d.B[j]
		}
	}
	d.Act.apply32(out)
	d.lastIn, d.lastOut = x, out
	return out
}

// backward32 takes ∂L/∂out, adds this batch's gradients into GradW/GradB,
// and returns ∂L/∂in; float32 twin of Dense.backward.
func (d *Dense32) backward32(ar *mat.Arena32, grad *mat.Matrix32) *mat.Matrix32 {
	d.Act.backprop32(grad, d.lastOut)
	mat.TMulAddInto32(grad, d.lastIn, d.GradW)
	for i := 0; i < grad.Rows; i++ {
		row := grad.Row(i)
		for j, v := range row {
			d.GradB[j] += v
		}
	}
	dx := ar.Get(grad.Rows, d.In)
	return mat.MulInto32(grad, d.W, dx)
}

// accumBatch is the float32 twin of Autoencoder.accumBatch: one shard's
// forward/backward pass with float32 linear algebra, float64 element-wise
// loss math, gradients accumulated into the shard's private float32
// accumulators. ar supplies float64 scratch (softmax probabilities), ar32
// everything else. Returns the invB-scaled loss sum.
func (a *ae32) accumBatch(ar *mat.Arena, ar32 *mat.Arena32, x *mat.Matrix, tg *Targets, invB float64) float64 {
	if x.Rows == 0 {
		return 0
	}
	src := a.src
	x32 := ar32.Get(x.Rows, x.Cols)
	for i, v := range x.Data {
		x32.Data[i] = float32(v)
	}
	h := x32
	for _, l := range a.encoder {
		h = l.forward32(ar32, h)
	}
	for _, l := range a.hidden {
		h = l.forward32(ar32, h)
	}

	var loss float64
	dH := ar32.Get(h.Rows, h.Cols)

	if a.headNum != nil {
		z := a.headNum.forward32(ar32, h)
		gz := ar32.Get(z.Rows, z.Cols)
		for r := 0; r < z.Rows; r++ {
			zr, gr := z.Row(r), gz.Row(r)
			for c := 0; c < src.numCols; c++ {
				y := 1 / (1 + math.Exp(-float64(zr[c])))
				t := tg.Num.At(r, c)
				diff := y - t
				loss += diff * diff * invB
				gr[c] = float32(2 * diff * y * (1 - y) * invB)
			}
			for c := 0; c < src.binCols; c++ {
				p := 1 / (1 + math.Exp(-float64(zr[src.numCols+c])))
				t := tg.Bin.At(r, c)
				loss += bce(p, t) * invB
				gr[src.numCols+c] = float32((p - t) * invB)
			}
		}
		mat.AddInPlace32(dH, a.headNum.backward32(ar32, gz))
	}

	if a.aux != nil {
		aux := a.aux.forward32(ar32, h)
		dAux := ar32.Get(aux.Rows, aux.Cols)
		rows := x.Rows
		z := ar32.Get(len(src.catAll)*rows, src.sharedWidth())
		for k, j := range src.catAll {
			for r := 0; r < rows; r++ {
				row := z.Row(k*rows + r)
				copy(row, aux.Row(r))
				row[src.catCols+j] = 1
			}
		}
		logits := a.shared.forward32(ar32, a.sharedHidden.forward32(ar32, z))
		gl := ar32.Get(logits.Rows, logits.Cols)
		for j := 0; j < src.catCols; j++ {
			card := src.cardOf[j]
			probs := ar.Get(rows, card)
			for r := 0; r < rows; r++ {
				lr := logits.Row(j*rows + r)
				pr := probs.Row(r)
				for c := 0; c < card; c++ {
					pr[c] = float64(lr[c])
				}
			}
			Softmax(probs, card)
			for r := 0; r < rows; r++ {
				cls := tg.Cat[j][r]
				if cls < 0 || cls >= card {
					continue // rare value masked out of training
				}
				pr, gr := probs.Row(r), gl.Row(j*rows+r)
				loss += -math.Log(math.Max(pr[cls], 1e-12)) * invB
				for c := 0; c < card; c++ {
					gr[c] = float32(pr[c] * invB)
				}
				gr[cls] = float32((pr[cls] - 1) * invB)
			}
		}
		dz := a.sharedHidden.backward32(ar32, a.shared.backward32(ar32, gl))
		for j := 0; j < src.catCols; j++ {
			for r := 0; r < rows; r++ {
				dr, da := dz.Row(j*rows+r), dAux.Row(r)
				for c := 0; c < src.catCols; c++ {
					da[c] += dr[c]
				}
				// Signal-node gradient discarded, as in the float64 pass.
			}
		}
		mat.AddInPlace32(dH, a.aux.backward32(ar32, dAux))
	}

	g := dH
	for i := len(a.hidden) - 1; i >= 0; i-- {
		g = a.hidden[i].backward32(ar32, g)
	}
	for i := len(a.encoder) - 1; i >= 0; i-- {
		g = a.encoder[i].backward32(ar32, g)
	}
	return loss
}

// foldInto widens the shard's float32 gradient accumulators into the given
// float64 layers (the shard's replica, positionally parallel) and zeroes the
// float32 side, restoring the all-grads-zero invariant between batches.
func (a *ae32) foldInto(layers []*Dense) {
	for li, l32 := range a.layers {
		l := layers[li]
		for i, v := range l32.GradW.Data {
			l.GradW.Data[i] += float64(v)
		}
		l32.GradW.Zero()
		for i, v := range l32.GradB {
			l.GradB[i] += float64(v)
			l32.GradB[i] = 0
		}
	}
}

// ensure32 builds the shared narrowed weight set and each shard's float32
// view, lazily like ensure.
func (t *trainer) ensure32(ns int) {
	if t.shared32 == nil {
		t.shared32 = make([]*Dense32, len(t.layers))
		for i, l := range t.layers {
			t.shared32[i] = &Dense32{
				In: l.In, Out: l.Out, Act: l.Act,
				W: mat.New32(l.Out, l.In), B: make([]float32, l.Out),
			}
		}
	}
	for _, s := range t.shards[:ns] {
		if s.rep32 == nil {
			s.rep32 = newAE32(t.model, t.shared32)
			s.ar32 = &mat.Arena32{}
		}
	}
}

// refresh32 narrows the float64 master weights into the shared float32 set.
// Called once per batch, before the shard fan-out: the masters only move when
// the optimizer steps, which happens strictly between batches.
func (t *trainer) refresh32() {
	for i, l := range t.layers {
		s := t.shared32[i]
		mat.To32(l.W, s.W)
		for j, v := range l.B {
			s.B[j] = float32(v)
		}
	}
}
