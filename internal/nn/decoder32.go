package nn

import (
	"fmt"
	"math"

	"deepsqueeze/internal/mat"
)

// Float32 decode path (DESIGN.md §15).
//
// Decoder32 is a float32 view of a Decoder: every matmul — the decode hot
// path's entire memory-bandwidth bill — runs through the float32 kernel
// family in internal/mat, while the final per-element activations (sigmoid,
// softmax) widen the float32 logits to float64 and evaluate the math-library
// transcendental exactly as the float64 path does. The outputs are therefore
// ordinary float64 Predictions: consumers (failure computation, decode
// application) are width-agnostic, and the only divergence from the float64
// path is rounding of the linear algebra, never a different approximation.
//
// Decoder parameters are float32-valued on both sides of the archive boundary
// (Quantize32 before materialization, float32 serialization), so narrowing a
// decoder's weights is exact — a Decoder32 computes with the same parameter
// values as its source, at half the operand width.

// Dense32 is a float32 view of a Dense layer. Inference-only instances carry
// just weights; the f32 training path (train32.go) adds private gradient
// accumulators and forward caches.
type Dense32 struct {
	In, Out int
	Act     Activation
	W       *mat.Matrix32 // Out×In, narrowed from the source layer
	B       []float32

	// Training-only state; nil on inference instances.
	GradW   *mat.Matrix32
	GradB   []float32
	lastIn  *mat.Matrix32
	lastOut *mat.Matrix32
}

// newDense32 narrows a layer's parameters into a fresh inference-only
// Dense32. Narrowing is exact for float32-valued parameters (see Quantize32).
func newDense32(d *Dense) *Dense32 {
	b := make([]float32, len(d.B))
	for i, v := range d.B {
		b[i] = float32(v)
	}
	return &Dense32{In: d.In, Out: d.Out, Act: d.Act, W: mat.To32(d.W, nil), B: b}
}

// infer computes act(x·Wᵀ + b) into ar scratch without touching training
// caches. Allocation-free once the arena is warm.
func (d *Dense32) infer(ar *mat.Arena32, x *mat.Matrix32) *mat.Matrix32 {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense32 infer input %d cols, want %d", x.Cols, d.In))
	}
	out := ar.Get(x.Rows, d.Out)
	mat.MulTInto32(x, d.W, out)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += d.B[j]
		}
	}
	d.Act.apply32(out)
	return out
}

// Decoder32 is the float32 inference view of a Decoder. It shares the source
// decoder's column indexes (read-only) and owns narrowed copies of its
// parameters. Safe for concurrent use: per-call scratch lives in the arenas a
// Predictor closure owns, never on the Decoder32.
type Decoder32 struct {
	src     *Decoder
	Hidden  []*Dense32
	HeadNum *Dense32
	Aux     *Dense32

	SharedHidden *Dense32
	Shared       *Dense32
}

// Float32 builds the decoder's float32 inference view.
func (d *Decoder) Float32() *Decoder32 {
	d32 := &Decoder32{src: d}
	for _, l := range d.Hidden {
		d32.Hidden = append(d32.Hidden, newDense32(l))
	}
	if d.HeadNum != nil {
		d32.HeadNum = newDense32(d.HeadNum)
	}
	if d.Aux != nil {
		d32.Aux = newDense32(d.Aux)
	}
	if d.SharedHidden != nil {
		d32.SharedHidden = newDense32(d.SharedHidden)
	}
	if d.Shared != nil {
		d32.Shared = newDense32(d.Shared)
	}
	return d32
}

// Decoders32 narrows a slice of decoders, preserving order. Nil entries stay
// nil.
func Decoders32(ds []*Decoder) []*Decoder32 {
	out := make([]*Decoder32, len(ds))
	for i, d := range ds {
		if d != nil {
			out[i] = d.Float32()
		}
	}
	return out
}

// Source returns the float64 decoder this view was narrowed from.
func (d *Decoder32) Source() *Decoder { return d.src }

// Predictor returns a reusable prediction function equivalent to the source
// decoder's PredictCols with the given want mask: matmuls in float32,
// activations widened to float64, outputs ordinary Predictions. The closure
// owns its scratch (a float32 arena for intermediates, a float64 arena for
// outputs, one reused Predictions), so calling it repeatedly with same-shaped
// batches allocates nothing after warmup — one Predictor per goroutine, and
// each call invalidates the previous call's Predictions.
func (d *Decoder32) Predictor(want []bool) func(codes *mat.Matrix) *Predictions {
	src := d.src
	wantNumBin := want == nil
	var wantJ []int // categorical positions to evaluate, ascending
	if want == nil {
		for j := 0; j < src.catCols; j++ {
			wantJ = append(wantJ, j)
		}
	} else {
		for i, s := range src.Specs {
			if i >= len(want) || !want[i] {
				continue
			}
			switch s.Kind {
			case OutNumeric, OutBinary:
				wantNumBin = true
			case OutCategorical:
				wantJ = append(wantJ, src.catPos[i])
			}
		}
	}
	ar := &mat.Arena32{}
	outAr := &mat.Arena{}
	p := &Predictions{Cat: make([]*mat.Matrix, src.catCols)}
	return func(codes *mat.Matrix) *Predictions {
		if codes.Cols != src.CodeSize {
			panic(fmt.Sprintf("nn: predict with %d-wide codes, want %d", codes.Cols, src.CodeSize))
		}
		ar.Reset()
		outAr.Reset()
		for j := range p.Cat {
			p.Cat[j] = nil
		}
		b := codes.Rows
		x := ar.Get(b, codes.Cols)
		for i, v := range codes.Data {
			x.Data[i] = float32(v)
		}
		h := x
		for _, l := range d.Hidden {
			h = l.infer(ar, h)
		}
		if wantNumBin && src.numCols+src.binCols > 0 {
			z := d.HeadNum.infer(ar, h) // Identity activation: raw logits
			p.Num = outAr.Get(b, src.numCols)
			p.Bin = outAr.Get(b, src.binCols)
			for r := 0; r < b; r++ {
				row := z.Row(r)
				nr, br := p.Num.Row(r), p.Bin.Row(r)
				for c := 0; c < src.numCols; c++ {
					nr[c] = 1 / (1 + math.Exp(-float64(row[c])))
				}
				for c := 0; c < src.binCols; c++ {
					br[c] = 1 / (1 + math.Exp(-float64(row[src.numCols+c])))
				}
			}
		} else {
			p.Num = outAr.Get(b, 0)
			p.Bin = outAr.Get(b, 0)
		}
		if len(wantJ) > 0 {
			aux := d.Aux.infer(ar, h)
			// Same vertical stacking and slab bound as the float64 path, so
			// both widths see identical batch shapes.
			grp := 1
			if b > 0 {
				grp = (1 << 15) / b
			}
			if grp < 1 {
				grp = 1
			}
			for g0 := 0; g0 < len(wantJ); g0 += grp {
				g1 := g0 + grp
				if g1 > len(wantJ) {
					g1 = len(wantJ)
				}
				js := wantJ[g0:g1]
				z := d.stackedSharedInput(ar, aux, js)
				logits := d.Shared.infer(ar, d.SharedHidden.infer(ar, z))
				for k, j := range js {
					card := src.cardOf[j]
					probs := outAr.Get(b, card)
					for r := 0; r < b; r++ {
						row := logits.Row(k*b + r)
						pr := probs.Row(r)
						for c := 0; c < card; c++ {
							pr[c] = float64(row[c])
						}
					}
					Softmax(probs, card)
					p.Cat[j] = probs
				}
			}
		}
		return p
	}
}

// PredictCols is the one-shot form of Predictor, for tests and callers that
// do not care about scratch reuse.
func (d *Decoder32) PredictCols(codes *mat.Matrix, want []bool) *Predictions {
	return d.Predictor(want)(codes)
}

// Predict decodes a batch of codes into predictions for every column.
func (d *Decoder32) Predict(codes *mat.Matrix) *Predictions {
	return d.PredictCols(codes, nil)
}

// stackedSharedInput is the float32 twin of Decoder.stackedSharedInput: the
// shared-stack inputs for the listed categorical columns stacked vertically,
// with each slab row carrying the auxiliary activations plus a one-hot column
// signal. Arena Get zeroes recycled memory, so unset signal positions are 0.
func (d *Decoder32) stackedSharedInput(ar *mat.Arena32, aux *mat.Matrix32, js []int) *mat.Matrix32 {
	src := d.src
	b := aux.Rows
	z := ar.Get(len(js)*b, src.sharedWidth())
	for k, j := range js {
		for r := 0; r < b; r++ {
			row := z.Row(k*b + r)
			copy(row, aux.Row(r))
			row[src.catCols+j] = 1
		}
	}
	return z
}
