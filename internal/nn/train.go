package nn

import (
	"deepsqueeze/internal/mat"
	"deepsqueeze/internal/pipeline"
)

// Deterministic data-parallel training (DESIGN.md §12).
//
// Every minibatch is split into a fixed shard partition that depends only on
// the batch's row count — never on the worker count — and each shard runs a
// full forward/backward pass on its own model replica (shared weights,
// private gradients, private scratch arena). Gradients and losses are then
// combined by a fixed binary-tree reduction and the optimizer steps once.
// Because both the partition and the reduction order are functions of the
// row count alone, the floating-point summation order is identical whether
// the shards ran on one goroutine or sixteen: loss curves and archives are
// bit-identical at every TrainOptions.Workers value.

const (
	// maxShards caps the partition width; it bounds replica memory and is
	// comfortably past the core counts this CPU trainer targets.
	maxShards = 16
	// minShardRows keeps shards from degenerating below the width where the
	// blocked kernels amortize their setup.
	minShardRows = 8
)

// numShards returns the partition width for a batch of the given row count.
// It is a pure function of rows so the training math never depends on the
// machine or the worker count.
func numShards(rows int) int {
	ns := (rows + minShardRows - 1) / minShardRows
	if ns > maxShards {
		ns = maxShards
	}
	if ns < 1 {
		ns = 1
	}
	return ns
}

// shardState is one shard's private training state, reused across batches.
// The matrix and target headers are persistent so re-viewing a new batch's
// rows allocates nothing.
type shardState struct {
	rep      *Autoencoder // shard 0: the primary model itself
	layers   []*Dense     // rep.AllLayers(), cached
	ar       *mat.Arena
	rep32    *ae32        // float32 training view (train32.go); nil until first f32 batch
	ar32     *mat.Arena32 // float32 scratch for rep32
	x        mat.Matrix   // row view into the current batch
	num, bin mat.Matrix   // row views into the current targets
	cat      [][]int      // per-column row subslices, outer slice reused
	tg       Targets
	loss     float64
}

// trainer owns an autoencoder's shard replicas. It is built lazily and
// cached on the model, so repeated TrainBatch calls reuse replicas, arenas,
// and layer slices.
type trainer struct {
	model    *Autoencoder
	layers   []*Dense   // model.AllLayers(), cached for clip + step
	shared32 []*Dense32 // per-batch narrowed weights for f32 shards (train32.go)
	shards   []*shardState
}

// trainer returns the model's cached shard trainer, building it on first use.
func (a *Autoencoder) trainer() *trainer {
	if a.tr == nil {
		a.tr = &trainer{model: a, layers: a.AllLayers()}
	}
	return a.tr
}

// TrainBatchWorkers is TrainBatch with up to workers shards running
// concurrently on pool (nil pool or workers <= 1 trains serially). The
// returned loss — and every weight after the optimizer step — is
// bit-identical for any (workers, pool) pair, including the serial
// TrainBatch path, because the shard partition and reduction order depend
// only on x.Rows.
func (a *Autoencoder) TrainBatchWorkers(x *mat.Matrix, tg *Targets, opt Optimizer, workers int, pool *pipeline.Pool) float64 {
	return a.trainer().train(x, tg, opt, workers, pool, false)
}

// replica returns a model sharing a's parameters — every Dense W and B
// aliases the primary's memory — with private gradient accumulators and
// forward caches (see Dense.replica). Optimizer steps on the primary are
// instantly visible to every replica; replicas are never stepped themselves.
func (a *Autoencoder) replica() *Autoencoder {
	r := &Autoencoder{}
	r.Decoder = a.Decoder // shares specs and position indexes (read-only)
	r.Encoder = replicaLayers(a.Encoder)
	r.Hidden = replicaLayers(a.Hidden)
	if a.HeadNum != nil {
		r.HeadNum = a.HeadNum.replica()
	}
	if a.Aux != nil {
		r.Aux = a.Aux.replica()
	}
	if a.SharedHidden != nil {
		r.SharedHidden = a.SharedHidden.replica()
	}
	if a.Shared != nil {
		r.Shared = a.Shared.replica()
	}
	return r
}

func replicaLayers(ls []*Dense) []*Dense {
	out := make([]*Dense, len(ls))
	for i, l := range ls {
		out[i] = l.replica()
	}
	return out
}

// ensure grows the shard list to ns entries. Shard 0 wraps the primary model
// itself so the reduced gradients land in the layer pointers the optimizer
// (and any state keyed on them) already knows.
func (t *trainer) ensure(ns int) {
	for len(t.shards) < ns {
		s := &shardState{ar: &mat.Arena{}}
		if len(t.shards) == 0 {
			s.rep = t.model
			s.layers = t.layers
		} else {
			s.rep = t.model.replica()
			s.layers = s.rep.AllLayers()
		}
		t.shards = append(t.shards, s)
	}
}

// view points the shard's persistent headers at rows [lo, hi) of the batch.
func (s *shardState) view(x *mat.Matrix, tg *Targets, lo, hi int) {
	s.x = x.SliceRows(lo, hi)
	s.tg.Num, s.tg.Bin = nil, nil
	if tg.Num != nil {
		s.num = tg.Num.SliceRows(lo, hi)
		s.tg.Num = &s.num
	}
	if tg.Bin != nil {
		s.bin = tg.Bin.SliceRows(lo, hi)
		s.tg.Bin = &s.bin
	}
	if cap(s.cat) < len(tg.Cat) {
		s.cat = make([][]int, len(tg.Cat))
	}
	s.cat = s.cat[:len(tg.Cat)]
	for j, col := range tg.Cat {
		s.cat[j] = col[lo:hi]
	}
	s.tg.Cat = s.cat
}

// train runs one data-parallel training step: shard, accumulate, reduce,
// clip, apply the optimizer once. Returns the batch's mean loss. With f32
// set, each shard's forward/backward runs through the float32 path
// (train32.go); partition, reduction, and optimizer are identical either way.
func (t *trainer) train(x *mat.Matrix, tg *Targets, opt Optimizer, workers int, pool *pipeline.Pool, f32 bool) float64 {
	rows := x.Rows
	if rows == 0 {
		return 0
	}
	ns := numShards(rows)
	t.ensure(ns)
	if f32 {
		t.ensure32(ns)
		t.refresh32()
	}
	shardRows := (rows + ns - 1) / ns
	invB := 1 / float64(rows)
	run := func(i int) {
		s := t.shards[i]
		lo := i * shardRows
		hi := lo + shardRows
		if hi > rows {
			hi = rows
		}
		if hi <= lo {
			s.loss = 0 // empty tail shard: grads are already zero
			return
		}
		s.ar.Reset()
		s.view(x, tg, lo, hi)
		if f32 {
			s.ar32.Reset()
			s.loss = s.rep32.accumBatch(s.ar, s.ar32, &s.x, &s.tg, invB)
			s.rep32.foldInto(s.layers)
			return
		}
		s.loss = s.rep.accumBatch(s.ar, &s.x, &s.tg, invB)
	}
	if workers > 1 && pool != nil && ns > 1 {
		pool.Do(ns, workers, run)
	} else {
		for i := 0; i < ns; i++ {
			run(i)
		}
	}
	// Fixed binary-tree reduction into shard 0 (the primary model). The
	// tree's shape depends only on ns, so the summation order — and thus
	// the reduced floats — never varies with the worker count. Replica
	// accumulators are zeroed as they are folded, restoring the invariant
	// that all gradients are zero between batches (the optimizer's Step
	// zeroes the primary's).
	for stride := 1; stride < ns; stride *= 2 {
		for i := 0; i+stride < ns; i += 2 * stride {
			dst, src := t.shards[i], t.shards[i+stride]
			for li, dl := range dst.layers {
				sl := src.layers[li]
				mat.AddInPlace(dl.GradW, sl.GradW)
				for k, v := range sl.GradB {
					dl.GradB[k] += v
				}
				sl.ZeroGrad()
			}
			dst.loss += src.loss
		}
	}
	loss := t.shards[0].loss
	ClipGrads(t.layers, 5)
	opt.Step(t.layers)
	return loss
}
