// Package nn is a from-scratch neural-network substrate sized for
// DeepSqueeze's models: dense layers, the activations and losses the paper
// uses, SGD/Adam optimizers, full backpropagation, a mixed-type autoencoder
// with a parameter-sharing categorical output head (paper §5.1), and a
// sparsely-gated mixture of experts (paper §5.2). Everything is float64 and
// deterministic given a seed, which the materialization contract relies on.
package nn

import (
	"fmt"
	"math"

	"deepsqueeze/internal/mat"
)

// Activation selects a layer's nonlinearity. Values are part of the model
// serialization format; do not renumber.
type Activation byte

const (
	// Identity applies no nonlinearity.
	Identity Activation = iota
	// ReLU is max(0, x), used in hidden layers.
	ReLU
	// Sigmoid is 1/(1+e^-x), used for code layers (bounded codes), binary
	// outputs, and numeric regression outputs in [0,1].
	Sigmoid
	// Tanh is used for the categorical auxiliary layer.
	Tanh
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("activation(%d)", byte(a))
	}
}

// apply computes the activation element-wise in place.
func (a Activation) apply(m *mat.Matrix) {
	switch a {
	case Identity:
	case ReLU:
		for i, v := range m.Data {
			if v < 0 {
				m.Data[i] = 0
			}
		}
	case Sigmoid:
		for i, v := range m.Data {
			m.Data[i] = 1 / (1 + math.Exp(-v))
		}
	case Tanh:
		for i, v := range m.Data {
			m.Data[i] = math.Tanh(v)
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// backprop scales grad in place by the activation derivative, expressed in
// terms of the activation *output* out (all four supported activations admit
// this form).
func (a Activation) backprop(grad, out *mat.Matrix) {
	switch a {
	case Identity:
	case ReLU:
		for i, o := range out.Data {
			if o <= 0 {
				grad.Data[i] = 0
			}
		}
	case Sigmoid:
		for i, o := range out.Data {
			grad.Data[i] *= o * (1 - o)
		}
	case Tanh:
		for i, o := range out.Data {
			grad.Data[i] *= 1 - o*o
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// apply32 computes the activation element-wise in place on a float32 matrix.
// Transcendentals (Sigmoid, Tanh) widen each element to float64, evaluate the
// math-library function, and narrow the result: the extra conversion is cheap
// next to the matmuls, and it keeps f32 activations a pure rounding of the f64
// path rather than a different approximation (DESIGN.md §15 tolerance model).
func (a Activation) apply32(m *mat.Matrix32) {
	switch a {
	case Identity:
	case ReLU:
		for i, v := range m.Data {
			if v < 0 {
				m.Data[i] = 0
			}
		}
	case Sigmoid:
		for i, v := range m.Data {
			m.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	case Tanh:
		for i, v := range m.Data {
			m.Data[i] = float32(math.Tanh(float64(v)))
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// backprop32 scales grad in place by the activation derivative, in terms of
// the activation output out; float32 twin of backprop.
func (a Activation) backprop32(grad, out *mat.Matrix32) {
	switch a {
	case Identity:
	case ReLU:
		for i, o := range out.Data {
			if o <= 0 {
				grad.Data[i] = 0
			}
		}
	case Sigmoid:
		for i, o := range out.Data {
			grad.Data[i] *= o * (1 - o)
		}
	case Tanh:
		for i, o := range out.Data {
			grad.Data[i] *= 1 - o*o
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// Softmax replaces each row of m with its softmax over the first width
// columns, leaving any remaining columns untouched. Numerically stabilized
// by max subtraction.
func Softmax(m *mat.Matrix, width int) {
	if width <= 0 || width > m.Cols {
		panic(fmt.Sprintf("nn: softmax width %d over %d columns", width, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)[:width]
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
}
