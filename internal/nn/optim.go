package nn

import (
	"math"

	"deepsqueeze/internal/mat"
)

var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adam)(nil)
)

// Optimizer applies accumulated gradients to a set of layers.
type Optimizer interface {
	// Step updates every layer's parameters from its gradient accumulators
	// and clears the accumulators.
	Step(layers []*Dense)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velW map[*Dense]*mat.Matrix
	velB map[*Dense][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum,
		velW: make(map[*Dense]*mat.Matrix), velB: make(map[*Dense][]float64)}
}

// Step implements Optimizer.
func (o *SGD) Step(layers []*Dense) {
	for _, l := range layers {
		if o.Momentum == 0 {
			for i, g := range l.GradW.Data {
				l.W.Data[i] -= o.LR * g
			}
			for i, g := range l.GradB {
				l.B[i] -= o.LR * g
			}
		} else {
			vw, ok := o.velW[l]
			if !ok {
				vw = mat.New(l.Out, l.In)
				o.velW[l] = vw
				o.velB[l] = make([]float64, l.Out)
			}
			vb := o.velB[l]
			for i, g := range l.GradW.Data {
				vw.Data[i] = o.Momentum*vw.Data[i] - o.LR*g
				l.W.Data[i] += vw.Data[i]
			}
			for i, g := range l.GradB {
				vb[i] = o.Momentum*vb[i] - o.LR*g
				l.B[i] += vb[i]
			}
		}
		l.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba), the default for DeepSqueeze's
// training loop.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t  int
	mW map[*Dense]*mat.Matrix
	vW map[*Dense]*mat.Matrix
	mB map[*Dense][]float64
	vB map[*Dense][]float64
}

// NewAdam returns an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		mW: make(map[*Dense]*mat.Matrix), vW: make(map[*Dense]*mat.Matrix),
		mB: make(map[*Dense][]float64), vB: make(map[*Dense][]float64),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(layers []*Dense) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, l := range layers {
		mw, ok := o.mW[l]
		if !ok {
			mw = mat.New(l.Out, l.In)
			o.mW[l] = mw
			o.vW[l] = mat.New(l.Out, l.In)
			o.mB[l] = make([]float64, l.Out)
			o.vB[l] = make([]float64, l.Out)
		}
		vw, mb, vb := o.vW[l], o.mB[l], o.vB[l]
		for i, g := range l.GradW.Data {
			mw.Data[i] = o.Beta1*mw.Data[i] + (1-o.Beta1)*g
			vw.Data[i] = o.Beta2*vw.Data[i] + (1-o.Beta2)*g*g
			l.W.Data[i] -= o.LR * (mw.Data[i] / c1) / (math.Sqrt(vw.Data[i]/c2) + o.Eps)
		}
		for i, g := range l.GradB {
			mb[i] = o.Beta1*mb[i] + (1-o.Beta1)*g
			vb[i] = o.Beta2*vb[i] + (1-o.Beta2)*g*g
			l.B[i] -= o.LR * (mb[i] / c1) / (math.Sqrt(vb[i]/c2) + o.Eps)
		}
		l.ZeroGrad()
	}
}

// ClipGrads scales every layer's gradient accumulators so their global L2
// norm is at most maxNorm. Returns the pre-clip norm.
func ClipGrads(layers []*Dense, maxNorm float64) float64 {
	var sq float64
	for _, l := range layers {
		for _, g := range l.GradW.Data {
			sq += g * g
		}
		for _, g := range l.GradB {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		s := maxNorm / norm
		for _, l := range layers {
			l.GradW.Scale(s)
			for i := range l.GradB {
				l.GradB[i] *= s
			}
		}
	}
	return norm
}
