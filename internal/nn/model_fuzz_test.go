package nn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deepsqueeze/internal/mat"
)

// TestQuickDecoderSerializationFuzz round-trips randomly shaped decoders
// and rejects random truncations.
func TestQuickDecoderSerializationFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSpecs := 1 + rng.Intn(6)
		specs := make([]ColSpec, nSpecs)
		for i := range specs {
			switch rng.Intn(3) {
			case 0:
				specs[i] = ColSpec{Kind: OutNumeric}
			case 1:
				specs[i] = ColSpec{Kind: OutBinary}
			default:
				specs[i] = ColSpec{Kind: OutCategorical, Card: 1 + rng.Intn(9)}
			}
		}
		ae, err := NewAutoencoder(rng, specs, Config{CodeSize: 1 + rng.Intn(4)})
		if err != nil {
			return false
		}
		ae.Decoder.Quantize32()
		buf := ae.Decoder.AppendBinary(nil)
		dec, used, err := DecodeDecoder(buf)
		if err != nil || used != len(buf) {
			return false
		}
		// Shape equality.
		if dec.CodeSize != ae.CodeSize || len(dec.Specs) != len(specs) {
			return false
		}
		// Random truncation must fail.
		cut := rng.Intn(len(buf))
		if _, _, err := DecodeDecoder(buf[:cut]); err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMaskedTargetsDoNotTrain verifies that rows with masked (-1)
// categorical targets contribute no gradient for that column.
func TestMaskedTargetsDoNotTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	specs := []ColSpec{{Kind: OutCategorical, Card: 4}}
	ae, err := NewAutoencoder(rng, specs, Config{CodeSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := mat.New(4, 1)
	tg := &Targets{Num: mat.New(4, 0), Bin: mat.New(4, 0), Cat: [][]int{{-1, -1, -1, -1}}}
	cap := newCaptureOpt()
	loss := ae.TrainBatch(x, tg, cap)
	if loss != 0 {
		t.Fatalf("all-masked batch produced loss %v", loss)
	}
	for _, l := range ae.AllLayers() {
		if g := cap.gradW[l]; g != nil && g.MaxAbs() != 0 {
			t.Fatal("all-masked batch produced gradients")
		}
	}
}

// TestGateSerializationNotNeeded documents that only the decoders (not the
// gate) are needed to reconstruct predictions — the archive stores the
// expert mapping explicitly.
func TestGateSerializationNotNeeded(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	specs := []ColSpec{{Kind: OutNumeric}, {Kind: OutNumeric}}
	moe, err := NewMoE(rng, specs, Config{CodeSize: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	moe.Quantize32()
	x := mat.RandUniform(rng, 8, 2, 0, 1)
	for e, exp := range moe.Experts {
		buf := exp.Decoder.AppendBinary(nil)
		dec, _, err := DecodeDecoder(buf)
		if err != nil {
			t.Fatalf("expert %d: %v", e, err)
		}
		codes := exp.Encode(x)
		want := exp.Decoder.Predict(codes)
		got := dec.Predict(codes)
		if !mat.Equal(want.Num, got.Num, 0) {
			t.Fatalf("expert %d predictions differ after serialization", e)
		}
	}
}
