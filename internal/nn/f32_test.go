package nn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"deepsqueeze/internal/mat"
	"deepsqueeze/internal/pipeline"
)

// predTol is the absolute tolerance the float32 decode path is held to
// against the float64 decoder on small trained models (DESIGN.md §15).
// Outputs are probabilities in (0,1); activation widening keeps the
// divergence to linear-algebra rounding, orders of magnitude below this.
const predTol = 1e-4

func maxAbsDiff(a, b *mat.Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// trainedDecoder builds a briefly trained, float32-quantized decoder — the
// state archives carry — plus random codes to decode.
func trainedDecoder(t *testing.T, seed int64, rows int) (*Decoder, *mat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ae, err := NewAutoencoder(rng, testSpecs(), Config{CodeSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	x, tg := randomBatch(rng, testSpecs(), 128)
	opt := NewAdam(0.01)
	for i := 0; i < 5; i++ {
		ae.TrainBatch(x, tg, opt)
	}
	ae.Decoder.Quantize32()
	codes := mat.RandUniform(rng, rows, 3, -2, 2)
	return &ae.Decoder, codes
}

// The float32 decoder must match the float64 decoder within the documented
// tolerance on every head, for the full prediction and under column masks.
func TestDecoder32MatchesFloat64(t *testing.T) {
	dec, codes := trainedDecoder(t, 71, 200)
	d32 := dec.Float32()
	if d32.Source() != dec {
		t.Fatal("Source must return the wrapped decoder")
	}
	masks := [][]bool{
		nil, // full predict
		{true, true, true, true, true},
		{true, false, false, false, true}, // numeric head + second categorical
		{false, false, true, false, false},
	}
	for mi, want := range masks {
		p64 := dec.PredictCols(codes, want)
		p32 := d32.PredictCols(codes, want)
		if d := maxAbsDiff(p64.Num, p32.Num); d > predTol {
			t.Errorf("mask %d: Num diverges by %g", mi, d)
		}
		if d := maxAbsDiff(p64.Bin, p32.Bin); d > predTol {
			t.Errorf("mask %d: Bin diverges by %g", mi, d)
		}
		for j := range p64.Cat {
			if (p64.Cat[j] == nil) != (p32.Cat[j] == nil) {
				t.Fatalf("mask %d: cat %d evaluated on one path only", mi, j)
			}
			if p64.Cat[j] == nil {
				continue
			}
			if d := maxAbsDiff(p64.Cat[j], p32.Cat[j]); d > predTol {
				t.Errorf("mask %d: Cat[%d] diverges by %g", mi, j, d)
			}
			// Softmax outputs must still be distributions.
			for r := 0; r < p32.Cat[j].Rows; r++ {
				sum := 0.0
				for _, v := range p32.Cat[j].Row(r) {
					sum += v
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("mask %d: Cat[%d] row %d sums to %v", mi, j, r, sum)
				}
			}
		}
	}
	// Predict is PredictCols with a nil mask.
	pa, pb := d32.Predict(codes), d32.PredictCols(codes, nil)
	if maxAbsDiff(pa.Num, pb.Num) != 0 {
		t.Error("Predict and PredictCols(nil) disagree")
	}
}

// The float32 decode path is deterministic: the same codes always produce
// bit-identical predictions, including across independently built Decoder32s
// (narrowing float32-valued weights is exact, so there is nothing to vary).
func TestDecoder32Deterministic(t *testing.T) {
	dec, codes := trainedDecoder(t, 73, 150)
	p1 := dec.Float32().Predict(codes)
	p2 := dec.Float32().Predict(codes)
	if !bitsEqual(p1.Num.Data, p2.Num.Data) || !bitsEqual(p1.Bin.Data, p2.Bin.Data) {
		t.Fatal("float32 numeric/binary predictions not bit-identical")
	}
	for j := range p1.Cat {
		if !bitsEqual(p1.Cat[j].Data, p2.Cat[j].Data) {
			t.Fatalf("float32 Cat[%d] predictions not bit-identical", j)
		}
	}
}

// A Predictor closure must be allocation-free once warm: it owns its arenas
// and reuses one Predictions value, which is what keeps the decode inner
// loop off the allocator.
func TestPredictor32SteadyStateAllocFree(t *testing.T) {
	dec, codes := trainedDecoder(t, 79, 64)
	pred := dec.Float32().Predictor(nil)
	pred(codes)
	pred(codes)
	if allocs := testing.AllocsPerRun(10, func() { pred(codes) }); allocs != 0 {
		t.Errorf("warm Predictor allocates %.0f objects per call, want 0", allocs)
	}
}

// Float32 training carries the same worker-count invariant as float64: loss
// history and trained weights are bit-identical at Workers = 1, 4, NumCPU,
// because gradients are widened per shard before the fixed reduction tree.
func TestFloat32TrainWorkersDeterministic(t *testing.T) {
	train := func(workers int) ([]float64, []float64) {
		rng := rand.New(rand.NewSource(107))
		ae, err := NewAutoencoder(rng, testSpecs(), Config{CodeSize: 3})
		if err != nil {
			t.Fatal(err)
		}
		x, tg := randomBatch(rand.New(rand.NewSource(108)), testSpecs(), 300)
		opt := NewAdam(0.01)
		pool := pipeline.NewPool(workers)
		var losses []float64
		for i := 0; i < 25; i++ {
			losses = append(losses, ae.trainer().train(x, tg, opt, workers, pool, true))
		}
		return losses, flattenParams(ae)
	}
	baseLosses, baseW := train(1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		losses, w := train(workers)
		if !bitsEqual(losses, baseLosses) {
			t.Errorf("f32 loss history at Workers=%d differs from Workers=1", workers)
		}
		if !bitsEqual(w, baseW) {
			t.Errorf("f32 trained weights at Workers=%d differ from Workers=1", workers)
		}
	}
}

// Float32 training must actually learn, and stay in the same neighborhood as
// the float64 run: masters are float64 and only the matmuls run narrow.
func TestFloat32TrainReducesLoss(t *testing.T) {
	run := func(f32 bool) []float64 {
		rng := rand.New(rand.NewSource(109))
		moe, err := NewMoE(rng, testSpecs(), Config{CodeSize: 2}, 1)
		if err != nil {
			t.Fatal(err)
		}
		x, tg := randomBatch(rand.New(rand.NewSource(110)), testSpecs(), 256)
		return moe.Train(rng, x, tg, TrainOptions{Epochs: 8, BatchSize: 64, Float32: f32})
	}
	hist := run(true)
	if last, first := hist[len(hist)-1], hist[0]; last >= first {
		t.Fatalf("float32 training did not reduce loss: %v → %v", first, last)
	}
	hist64 := run(false)
	l32, l64 := hist[len(hist)-1], hist64[len(hist64)-1]
	if math.Abs(l32-l64) > 0.1*math.Abs(l64)+1e-3 {
		t.Errorf("float32 final loss %v far from float64 %v", l32, l64)
	}
}

// Repeated identical float32 runs must be bit-identical (no hidden state in
// the shared32 weight refresh or the per-shard f32 replicas).
func TestFloat32TrainRepeatable(t *testing.T) {
	run := func() []float64 {
		rng := rand.New(rand.NewSource(111))
		ae, _ := NewAutoencoder(rng, testSpecs(), Config{CodeSize: 2})
		x, tg := randomBatch(rand.New(rand.NewSource(112)), testSpecs(), 100)
		opt := NewAdam(0.01)
		for i := 0; i < 10; i++ {
			ae.trainer().train(x, tg, opt, 4, nil, true)
		}
		return flattenParams(ae)
	}
	if !bitsEqual(run(), run()) {
		t.Fatal("two identical float32 training runs diverged")
	}
}
