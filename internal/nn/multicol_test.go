package nn

import (
	"math/rand"
	"testing"

	"deepsqueeze/internal/mat"
)

// TestManyCategoricalColumnsLearnable is the regression test for the
// parameter-shared categorical head: with tens of categorical columns
// multiplexed through the shared stack, training must still reach the
// noise ceiling. A scalar signal node (the paper's literal Fig. 3) fails
// this test at ~0.73 accuracy; the one-hot signal block reaches ~0.93.
func TestManyCategoricalColumnsLearnable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const cols, personas, rows = 16, 10, 3000
	card := make([]int, cols)
	pref := make([][]int, cols)
	specs := make([]ColSpec, cols)
	for j := 0; j < cols; j++ {
		card[j] = 3 + rng.Intn(8)
		pref[j] = make([]int, personas)
		for p := range pref[j] {
			pref[j][p] = rng.Intn(card[j])
		}
		specs[j] = ColSpec{Kind: OutCategorical, Card: card[j]}
	}
	x := mat.New(rows, cols)
	tg := &Targets{Num: mat.New(rows, 0), Bin: mat.New(rows, 0), Cat: make([][]int, cols)}
	for j := range tg.Cat {
		tg.Cat[j] = make([]int, rows)
	}
	for r := 0; r < rows; r++ {
		p := rng.Intn(personas)
		for j := 0; j < cols; j++ {
			v := pref[j][p]
			if rng.Float64() < 0.08 {
				v = rng.Intn(card[j])
			}
			x.Set(r, j, float64(v)/float64(card[j]-1))
			tg.Cat[j][r] = v
		}
	}
	ae, err := NewAutoencoder(rng, specs, Config{CodeSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	moe := &MoE{Experts: []*Autoencoder{ae}}
	hist := moe.Train(rng, x, tg, TrainOptions{Epochs: 40, BatchSize: 256, LR: 0.01, ConvergeEps: 1e-9})
	t.Logf("loss: %.3f -> %.3f (%d epochs)", hist[0], hist[len(hist)-1], len(hist))
	// accuracy: fraction of argmax predictions correct
	p := ae.Predict(ae.Encode(x))
	correct, total := 0, 0
	for j := 0; j < cols; j++ {
		probs := p.Cat[j]
		for r := 0; r < rows; r++ {
			best := 0
			row := probs.Row(r)
			for c, v := range row {
				if v > row[best] {
					best = c
				}
			}
			if best == tg.Cat[j][r] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	t.Logf("argmax accuracy: %.3f (noise ceiling ~0.93)", acc)
	if acc < 0.85 {
		t.Fatalf("shared categorical head failed to learn: accuracy %.3f < 0.85", acc)
	}
	if hist[len(hist)-1] > hist[0]*0.5 {
		t.Fatalf("loss did not halve: %.3f -> %.3f", hist[0], hist[len(hist)-1])
	}
}
