package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"deepsqueeze/internal/mat"
)

// ErrCorrupt is returned when serialized model bytes fail validation.
var ErrCorrupt = errors.New("nn: corrupt model")

// maxLayerDim bounds deserialized layer dimensions as a sanity check.
const maxLayerDim = 1 << 22

// appendDense serializes a layer: dims, activation, then float32 weights and
// biases. Float32 is the precision contract: Quantize32 must have been
// called (or the truncation is accepted) because decompression will see
// exactly these float32 values.
func appendDense(dst []byte, d *Dense) []byte {
	dst = binary.AppendUvarint(dst, uint64(d.In))
	dst = binary.AppendUvarint(dst, uint64(d.Out))
	dst = append(dst, byte(d.Act))
	for _, v := range d.W.Data {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
	}
	for _, v := range d.B {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
	}
	return dst
}

// decodeDense parses a layer and returns bytes consumed.
func decodeDense(buf []byte) (*Dense, int, error) {
	in, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("%w: missing layer dims", ErrCorrupt)
	}
	pos := sz
	out, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("%w: missing layer dims", ErrCorrupt)
	}
	pos += sz
	if in == 0 || out == 0 || in > maxLayerDim || out > maxLayerDim {
		return nil, 0, fmt.Errorf("%w: layer dims %d→%d", ErrCorrupt, in, out)
	}
	if pos >= len(buf) {
		return nil, 0, fmt.Errorf("%w: missing activation", ErrCorrupt)
	}
	act := Activation(buf[pos])
	if act > Tanh {
		return nil, 0, fmt.Errorf("%w: activation %d", ErrCorrupt, act)
	}
	pos++
	nw, nb := int(in*out), int(out)
	need := 4 * (nw + nb)
	if len(buf)-pos < need {
		return nil, 0, fmt.Errorf("%w: layer wants %d weight bytes, have %d", ErrCorrupt, need, len(buf)-pos)
	}
	d := &Dense{
		In: int(in), Out: int(out), Act: act,
		W: mat.New(int(out), int(in)), B: make([]float64, out),
		GradW: mat.New(int(out), int(in)), GradB: make([]float64, out),
	}
	for i := 0; i < nw; i++ {
		d.W.Data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[pos:])))
		pos += 4
	}
	for i := 0; i < nb; i++ {
		d.B[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[pos:])))
		pos += 4
	}
	return d, pos, nil
}

// AppendBinary serializes the decoder (specs, code size, and all layers).
// Call Quantize32 first if the serialized form must reproduce in-memory
// predictions exactly.
func (d *Decoder) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(d.Specs)))
	for _, s := range d.Specs {
		dst = append(dst, byte(s.Kind))
		dst = binary.AppendUvarint(dst, uint64(s.Card))
	}
	dst = binary.AppendUvarint(dst, uint64(d.CodeSize))
	dst = binary.AppendUvarint(dst, uint64(len(d.Hidden)))
	for _, l := range d.Hidden {
		dst = appendDense(dst, l)
	}
	flags := byte(0)
	if d.HeadNum != nil {
		flags |= 1
	}
	if d.Aux != nil {
		flags |= 2
	}
	dst = append(dst, flags)
	if d.HeadNum != nil {
		dst = appendDense(dst, d.HeadNum)
	}
	if d.Aux != nil {
		dst = appendDense(dst, d.Aux)
		dst = appendDense(dst, d.SharedHidden)
		dst = appendDense(dst, d.Shared)
	}
	return dst
}

// DecodeDecoder parses a decoder serialized by AppendBinary and returns
// bytes consumed.
func DecodeDecoder(buf []byte) (*Decoder, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > maxLayerDim {
		return nil, 0, fmt.Errorf("%w: spec count", ErrCorrupt)
	}
	pos := sz
	d := &Decoder{Specs: make([]ColSpec, n)}
	for i := range d.Specs {
		if pos >= len(buf) {
			return nil, 0, fmt.Errorf("%w: truncated specs", ErrCorrupt)
		}
		d.Specs[i].Kind = OutputKind(buf[pos])
		if d.Specs[i].Kind > OutCategorical {
			return nil, 0, fmt.Errorf("%w: output kind %d", ErrCorrupt, d.Specs[i].Kind)
		}
		pos++
		card, sz := binary.Uvarint(buf[pos:])
		if sz <= 0 || card > maxLayerDim {
			return nil, 0, fmt.Errorf("%w: spec card", ErrCorrupt)
		}
		d.Specs[i].Card = int(card)
		pos += sz
	}
	cs, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 || cs == 0 || cs > maxLayerDim {
		return nil, 0, fmt.Errorf("%w: code size", ErrCorrupt)
	}
	d.CodeSize = int(cs)
	pos += sz
	nh, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 || nh > 64 {
		return nil, 0, fmt.Errorf("%w: hidden layer count", ErrCorrupt)
	}
	pos += sz
	d.Hidden = make([]*Dense, nh)
	for i := range d.Hidden {
		l, used, err := decodeDense(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		d.Hidden[i] = l
		pos += used
	}
	if pos >= len(buf) {
		return nil, 0, fmt.Errorf("%w: missing head flags", ErrCorrupt)
	}
	flags := buf[pos]
	pos++
	if flags&1 != 0 {
		l, used, err := decodeDense(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		d.HeadNum = l
		pos += used
	}
	if flags&2 != 0 {
		l, used, err := decodeDense(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		d.Aux = l
		pos += used
		l, used, err = decodeDense(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		d.SharedHidden = l
		pos += used
		l, used, err = decodeDense(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		d.Shared = l
		pos += used
	}
	if err := d.indexSpecs(); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := d.validateShapes(); err != nil {
		return nil, 0, err
	}
	return d, pos, nil
}

// validateShapes cross-checks layer dimensions against the specs.
func (d *Decoder) validateShapes() error {
	if len(d.Hidden) == 0 {
		return fmt.Errorf("%w: no hidden layers", ErrCorrupt)
	}
	if d.Hidden[0].In != d.CodeSize {
		return fmt.Errorf("%w: hidden input %d != code size %d", ErrCorrupt, d.Hidden[0].In, d.CodeSize)
	}
	last := d.Hidden[len(d.Hidden)-1].Out
	if d.numCols+d.binCols > 0 {
		if d.HeadNum == nil || d.HeadNum.In != last || d.HeadNum.Out != d.numCols+d.binCols {
			return fmt.Errorf("%w: numeric head shape", ErrCorrupt)
		}
	} else if d.HeadNum != nil {
		return fmt.Errorf("%w: unexpected numeric head", ErrCorrupt)
	}
	if d.catCols > 0 {
		if d.Aux == nil || d.SharedHidden == nil || d.Shared == nil ||
			d.Aux.In != last || d.Aux.Out != d.catCols ||
			d.SharedHidden.In != d.sharedWidth() ||
			d.Shared.In != d.SharedHidden.Out || d.Shared.Out != d.maxCard {
			return fmt.Errorf("%w: categorical head shape", ErrCorrupt)
		}
	} else if d.Aux != nil {
		return fmt.Errorf("%w: unexpected categorical head", ErrCorrupt)
	}
	return nil
}

// AppendEncoder serializes the encoder stack (for the paper's streaming
// scenario, where clients hold only the encoder half).
func (a *Autoencoder) AppendEncoder(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(a.Encoder)))
	for _, l := range a.Encoder {
		dst = appendDense(dst, l)
	}
	return dst
}

// DecodeEncoder parses an encoder stack serialized by AppendEncoder.
func DecodeEncoder(buf []byte) ([]*Dense, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n == 0 || n > 64 {
		return nil, 0, fmt.Errorf("%w: encoder layer count", ErrCorrupt)
	}
	pos := sz
	layers := make([]*Dense, n)
	for i := range layers {
		l, used, err := decodeDense(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		layers[i] = l
		pos += used
	}
	return layers, pos, nil
}
