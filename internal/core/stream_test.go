package core

import (
	"fmt"
	"math/rand"
	"testing"

	"deepsqueeze/internal/dataset"
)

// streamBatch generates a telemetry-like batch; drift shifts the latent
// distribution to simulate a changing fleet.
func streamBatch(rows int, seed int64, drift float64) *dataset.Table {
	schema := dataset.NewSchema(
		dataset.Column{Name: "status", Type: dataset.Categorical},
		dataset.Column{Name: "bin", Type: dataset.Categorical},
		dataset.Column{Name: "load", Type: dataset.Numeric},
		dataset.Column{Name: "temp", Type: dataset.Numeric},
	)
	t := dataset.NewTable(schema, rows)
	rng := rand.New(rand.NewSource(seed))
	states := []string{"idle", "busy", "hot", "crit"}
	for i := 0; i < rows; i++ {
		z := rng.Float64()
		zd := z*(1-drift) + drift
		bin := "0"
		if zd > 0.5 {
			bin = "1"
		}
		t.AppendRow(
			[]string{states[int(zd*3.999)], bin},
			[]float64{zd * 100, 30 + zd*50},
		)
	}
	return t
}

func streamOpts() Options {
	o := DefaultOptions()
	o.CodeSize = 2
	o.Train.Epochs = 10
	return o
}

func TestStreamRoundTrip(t *testing.T) {
	train := streamBatch(1000, 1, 0)
	thr := []float64{0, 0, 0.05, 0.05}
	s, trainRes, err := NewStream(train, thr, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	if trainRes.Breakdown.Total == 0 {
		t.Fatal("empty model archive")
	}
	for b := int64(2); b <= 4; b++ {
		batch := streamBatch(500, b, 0)
		res, err := s.CompressBatch(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		got, err := DecompressBatch(s.ModelArchive(), res.Archive)
		if err != nil {
			t.Fatalf("batch %d decompress: %v", b, err)
		}
		stats := batch.Stats()
		tol := []float64{0, 0, 0.05 * (stats[2].Max - stats[2].Min), 0.05 * (stats[3].Max - stats[3].Min)}
		if err := batch.EqualWithin(got, tol); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
}

func TestStreamBatchSmallerThanSelfContained(t *testing.T) {
	train := streamBatch(2000, 5, 0)
	thr := []float64{0, 0, 0.05, 0.05}
	s, _, err := NewStream(train, thr, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	batch := streamBatch(1000, 6, 0)
	bres, err := s.CompressBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Compress(batch, thr, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The batch archive skips the decoders and training; it must be
	// smaller than the self-contained archive of the same data.
	if bres.Breakdown.Total >= full.Breakdown.Total {
		t.Fatalf("batch archive %d ≥ self-contained %d", bres.Breakdown.Total, full.Breakdown.Total)
	}
	if bres.Breakdown.Decoder > 64 {
		t.Fatalf("batch archive embeds %d decoder bytes; want just a hash", bres.Breakdown.Decoder)
	}
}

func TestStreamUnseenValuesRoundTrip(t *testing.T) {
	train := streamBatch(800, 7, 0)
	thr := []float64{0, 0, 0.05, 0.05}
	s, _, err := NewStream(train, thr, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Batch with categorical values never seen in training and numeric
	// values outside the training range.
	batch := streamBatch(400, 8, 0)
	for i := 0; i < 40; i++ {
		batch.Str[0][i] = fmt.Sprintf("novel-%d", i%7)
		batch.Num[2][i] = 500 + float64(i) // far outside training range
	}
	res, err := s.CompressBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBatch(s.ModelArchive(), res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	stats := batch.Stats()
	tol := []float64{0, 0, 0.05 * (stats[2].Max - stats[2].Min), 0.05 * (stats[3].Max - stats[3].Min)}
	if err := batch.EqualWithin(got, tol); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDriftStillBounded(t *testing.T) {
	train := streamBatch(1000, 9, 0)
	thr := []float64{0, 0, 0.1, 0.1}
	s, _, err := NewStream(train, thr, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Heavy drift: the model mispredicts more (bigger failures) but the
	// error bound must still hold.
	batch := streamBatch(600, 10, 0.6)
	res, err := s.CompressBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBatch(s.ModelArchive(), res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	stats := batch.Stats()
	tol := []float64{0, 0, 0.1 * (stats[2].Max - stats[2].Min), 0.1 * (stats[3].Max - stats[3].Min)}
	if err := batch.EqualWithin(got, tol); err != nil {
		t.Fatal(err)
	}
}

func TestStreamValidation(t *testing.T) {
	train := streamBatch(500, 11, 0)
	thr := []float64{0, 0, 0.05, 0.05}
	s, res, err := NewStream(train, thr, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Wrong schema.
	other := dataset.NewTable(dataset.NewSchema(
		dataset.Column{Name: "x", Type: dataset.Numeric},
	), 1)
	other.AppendRow(nil, []float64{1})
	if _, err := s.CompressBatch(other); err == nil {
		t.Error("schema mismatch accepted")
	}
	// Binary column growing a third value must demand a retrain.
	bad := streamBatch(300, 12, 0)
	bad.Str[1][0] = "2"
	if _, err := s.CompressBatch(bad); err == nil {
		t.Error("binary column with 3 values accepted")
	}
	// Batch archives must be rejected by plain Decompress.
	batch := streamBatch(200, 13, 0)
	bres, err := s.CompressBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(bres.Archive); err == nil {
		t.Error("plain Decompress accepted a batch archive")
	}
	// And must be rejected against the wrong model archive.
	otherTrain := streamBatch(500, 14, 0.5)
	s2, _, err := NewStream(otherTrain, thr, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressBatch(s2.ModelArchive(), bres.Archive); err == nil {
		t.Error("batch decompressed against the wrong model archive")
	}
	// A batch archive cannot serve as a model archive.
	if _, err := DecompressBatch(bres.Archive, bres.Archive); err == nil {
		t.Error("batch archive accepted as model archive")
	}
	_ = res
}

func TestStreamModelArchiveIsSelfContained(t *testing.T) {
	train := streamBatch(600, 15, 0)
	thr := []float64{0, 0, 0.05, 0.05}
	s, res, err := NewStream(train, thr, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(s.ModelArchive())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != train.NumRows() {
		t.Fatalf("model archive decodes to %d rows", got.NumRows())
	}
	_ = res
}
