package core

import (
	"math"
	"sort"

	"deepsqueeze/internal/colfile"
	"deepsqueeze/internal/mat"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/preprocess"
)

// quantizeCodes rounds each code dimension to bits of precision, returning
// the integer codes (per dimension, in row order of c) and the reconstructed
// float codes the decoder will actually see. Codes live in [0,1] (sigmoid
// code layer), so the grid is uniform with 2^bits−1 steps.
func quantizeCodes(c *mat.Matrix, bits int) ([][]int64, *mat.Matrix) {
	scale := float64(uint64(1)<<uint(bits) - 1)
	dims := make([][]int64, c.Cols)
	for d := range dims {
		dims[d] = make([]int64, c.Rows)
	}
	rec := mat.New(c.Rows, c.Cols)
	for r := 0; r < c.Rows; r++ {
		row := c.Row(r)
		rrow := rec.Row(r)
		for d, v := range row {
			q := math.Round(v * scale)
			if q < 0 {
				q = 0
			}
			if q > scale {
				q = scale
			}
			dims[d][r] = int64(q)
			rrow[d] = q / scale
		}
	}
	return dims, rec
}

// reconstructCodes maps integer codes back to [0,1] floats — the
// decompression-side twin of quantizeCodes.
func reconstructCodes(dims [][]int64, bits int) *mat.Matrix {
	scale := float64(uint64(1)<<uint(bits) - 1)
	rows := 0
	if len(dims) > 0 {
		rows = len(dims[0])
	}
	rec := mat.New(rows, len(dims))
	for d, col := range dims {
		for r, v := range col {
			rec.Set(r, d, float64(v)/scale)
		}
	}
	return rec
}

// rankOf returns the rank of class `actual` when classes are ordered by
// descending probability with ascending-index tie-break (paper §6.3.1).
func rankOf(probs []float64, actual int) int {
	pa := probs[actual]
	rank := 0
	for j, p := range probs {
		if p > pa || (p == pa && j < actual) {
			rank++
		}
	}
	return rank
}

// codeAtRank returns the class at the given rank under the same ordering.
// Ranks concentrate near 0, so iterative argmax-with-exclusion beats a full
// sort in the common case. excluded is scratch space of at least len(probs).
func codeAtRank(probs []float64, rank int, excluded []bool) int {
	for i := range excluded[:len(probs)] {
		excluded[i] = false
	}
	best := -1
	for k := 0; k <= rank; k++ {
		best = -1
		for j, p := range probs {
			if excluded[j] {
				continue
			}
			if best < 0 || p > probs[best] {
				best = j
			}
		}
		excluded[best] = true
	}
	return best
}

// forEachExpertBatch routes stored positions to their assigned expert's
// decoder in batches and invokes fn with the predictions. perm maps stored
// position → original row; assign is indexed by original row. Iteration is
// expert-major with ascending stored positions inside each expert, which
// both compression and decompression follow identically.
func forEachExpertBatch(decoders []*nn.Decoder, assign []int, recCodes *mat.Matrix, perm []int,
	fn func(expert int, chunk []int, p *nn.Predictions)) {
	const batch = 2048
	n := len(perm)
	for e := range decoders {
		var positions []int
		for s := 0; s < n; s++ {
			if assign[perm[s]] == e {
				positions = append(positions, s)
			}
		}
		for lo := 0; lo < len(positions); lo += batch {
			hi := lo + batch
			if hi > len(positions) {
				hi = len(positions)
			}
			chunk := positions[lo:hi]
			codes := mat.New(len(chunk), recCodes.Cols)
			for i, s := range chunk {
				copy(codes.Row(i), recCodes.Row(s))
			}
			fn(e, chunk, decoders[e].Predict(codes))
		}
	}
}

// failureSet holds per-column correction streams in *stored* order.
type failureSet struct {
	// ints: model (non-trivial, discrete) columns → failure integers,
	// indexed by stored position.
	ints map[int][]int64
	// exceptions: categorical columns → escaped actual codes, ordered by
	// stored position of the escaping tuple.
	exceptions map[int][]int64
	// contMask / contVals: continuous columns → 0/1 misprediction flags
	// (indexed by stored position) and the raw original values of
	// mispredicted tuples (ordered by stored position).
	contMask map[int][]int64
	contVals map[int][]float64
}

type posVal struct {
	pos int
	val int64
}

type posFloat struct {
	pos int
	val float64
}

// computeFailures runs every tuple through its expert's decoder using the
// reconstructed codes and derives the per-column failure streams.
func computeFailures(md *modelData, origNum map[int][]float64, decoders []*nn.Decoder,
	assign []int, recCodes *mat.Matrix, perm []int) *failureSet {
	fs := &failureSet{
		ints:       make(map[int][]int64),
		exceptions: make(map[int][]int64),
		contMask:   make(map[int][]int64),
		contVals:   make(map[int][]float64),
	}
	n := len(perm)
	for _, col := range md.specCols {
		if md.plan.Cols[col].Kind == preprocess.KindNumContinuous {
			fs.contMask[col] = make([]int64, n)
		} else {
			fs.ints[col] = make([]int64, n)
		}
	}
	excepts := make(map[int][]posVal)
	contws := make(map[int][]posFloat)
	forEachExpertBatch(decoders, assign, recCodes, perm, func(e int, chunk []int, p *nn.Predictions) {
		dec := decoders[e]
		for si, spec := range md.specs {
			col := md.specCols[si]
			cp := &md.plan.Cols[col]
			switch spec.Kind {
			case nn.OutNumeric:
				np := dec.NumPos(si)
				if cp.Kind == preprocess.KindNumContinuous {
					vals := md.contVals[col]
					mask := fs.contMask[col]
					for i, s := range chunk {
						orig := perm[s]
						pred := p.Num.At(i, np)
						if math.Abs(pred-vals[orig]) <= cp.Threshold {
							mask[s] = 0
						} else {
							mask[s] = 1
							contws[col] = append(contws[col], posFloat{s, origNum[col][orig]})
						}
					}
					continue
				}
				lv := levels(cp)
				out := fs.ints[col]
				cc := md.codes[col]
				for i, s := range chunk {
					predIdx := nearestLevel(cp, p.Num.At(i, np), lv)
					out[s] = int64(cc[perm[s]] - predIdx)
				}
			case nn.OutBinary:
				bp := dec.BinPos(si)
				out := fs.ints[col]
				cc := md.codes[col]
				for i, s := range chunk {
					predBit := 0
					if p.Bin.At(i, bp) >= 0.5 {
						predBit = 1
					}
					out[s] = int64(predBit ^ cc[perm[s]])
				}
			case nn.OutCategorical:
				j := dec.CatPos(si)
				out := fs.ints[col]
				cc := md.codes[col]
				probs := p.Cat[j]
				for i, s := range chunk {
					actual := cc[perm[s]]
					if actual >= spec.Card {
						out[s] = int64(spec.Card) // escape
						excepts[col] = append(excepts[col], posVal{s, int64(actual)})
						continue
					}
					out[s] = int64(rankOf(probs.Row(i), actual))
				}
			}
		}
	})
	// Exceptions and continuous corrections are consumed by stored position
	// during decompression; sort them accordingly.
	for col, pv := range excepts {
		sort.Slice(pv, func(i, j int) bool { return pv[i].pos < pv[j].pos })
		vals := make([]int64, len(pv))
		for i, e := range pv {
			vals[i] = e.val
		}
		fs.exceptions[col] = vals
	}
	for col, pv := range contws {
		sort.Slice(pv, func(i, j int) bool { return pv[i].pos < pv[j].pos })
		vals := make([]float64, len(pv))
		for i, e := range pv {
			vals[i] = e.val
		}
		fs.contVals[col] = vals
	}
	return fs
}

// nearestLevel maps a regression output in [0,1] to the nearest discrete
// level of the column (bucket index or value rank).
func nearestLevel(cp *preprocess.ColPlan, pred float64, lv int) int {
	if cp.Kind == preprocess.KindNumQuant {
		return cp.Quant.Bucket(pred)
	}
	idx := int(math.Round(pred * float64(lv-1)))
	if idx < 0 {
		idx = 0
	}
	if idx >= lv {
		idx = lv - 1
	}
	return idx
}

// packedSize totals the packed byte size of all failure streams plus the
// given packed code dimensions — the objective of the truncation search.
func packedSize(fs *failureSet, codeDims [][]int64) int64 {
	var total int64
	for _, dim := range codeDims {
		total += int64(len(colfile.PackInts(dim)))
	}
	for _, s := range fs.ints {
		total += int64(len(colfile.PackInts(s)))
	}
	for _, s := range fs.exceptions {
		total += int64(len(colfile.PackInts(s)))
	}
	for _, s := range fs.contMask {
		total += int64(len(colfile.PackInts(s)))
	}
	for _, s := range fs.contVals {
		total += int64(len(colfile.PackFloats(s)))
	}
	return total
}
