package core

import (
	"math"
	"sort"

	"deepsqueeze/internal/codec"
	"deepsqueeze/internal/colfile"
	"deepsqueeze/internal/mat"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/pipeline"
	"deepsqueeze/internal/preprocess"
)

// quantizeCodes rounds each code dimension to bits of precision, returning
// the integer codes (per dimension, in row order of c) and the reconstructed
// float codes the decoder will actually see. Codes live in [0,1] (sigmoid
// code layer), so the grid is uniform with 2^bits−1 steps.
func quantizeCodes(c *mat.Matrix, bits int) ([][]int64, *mat.Matrix) {
	scale := float64(uint64(1)<<uint(bits) - 1)
	dims := make([][]int64, c.Cols)
	for d := range dims {
		dims[d] = make([]int64, c.Rows)
	}
	rec := mat.New(c.Rows, c.Cols)
	for r := 0; r < c.Rows; r++ {
		row := c.Row(r)
		rrow := rec.Row(r)
		for d, v := range row {
			q := math.Round(v * scale)
			if q < 0 {
				q = 0
			}
			if q > scale {
				q = scale
			}
			dims[d][r] = int64(q)
			rrow[d] = q / scale
		}
	}
	return dims, rec
}

// reconstructCodes maps integer codes back to [0,1] floats — the
// decompression-side twin of quantizeCodes.
func reconstructCodes(dims [][]int64, bits int) *mat.Matrix {
	scale := float64(uint64(1)<<uint(bits) - 1)
	rows := 0
	if len(dims) > 0 {
		rows = len(dims[0])
	}
	rec := mat.New(rows, len(dims))
	for d, col := range dims {
		for r, v := range col {
			rec.Set(r, d, float64(v)/scale)
		}
	}
	return rec
}

// rankOf returns the rank of class `actual` when classes are ordered by
// descending probability with ascending-index tie-break (paper §6.3.1).
func rankOf(probs []float64, actual int) int {
	pa := probs[actual]
	rank := 0
	for j, p := range probs {
		if p > pa || (p == pa && j < actual) {
			rank++
		}
	}
	return rank
}

// codeAtRank returns the class at the given rank under the same ordering.
// Ranks concentrate near 0, so iterative argmax-with-exclusion beats a full
// sort in the common case. excluded is scratch space of at least len(probs).
func codeAtRank(probs []float64, rank int, excluded []bool) int {
	for i := range excluded[:len(probs)] {
		excluded[i] = false
	}
	best := -1
	for k := 0; k <= rank; k++ {
		best = -1
		for j, p := range probs {
			if excluded[j] {
				continue
			}
			if best < 0 || p > probs[best] {
				best = j
			}
		}
		excluded[best] = true
	}
	return best
}

// decodeBatchRows is the chunk size per decoder matmul.
const decodeBatchRows = 2048

// expertPositions groups the stored positions by assigned expert in one pass.
// perm maps stored position → original row; assign is indexed by original
// row. Positions come out ascending within each expert.
func expertPositions(assign []int, perm []int, numExperts int) [][]int {
	return expertPositionsRange(assign, perm, numExperts, 0, len(perm))
}

// expertPositionsRange is expertPositions restricted to stored positions
// whose original row falls in [lo, hi) — how a row-ranged decompression
// avoids running decoder inference for rows it will not materialize.
func expertPositionsRange(assign []int, perm []int, numExperts, lo, hi int) [][]int {
	posBy := make([][]int, numExperts)
	for s, orig := range perm {
		if orig < lo || orig >= hi {
			continue
		}
		posBy[assign[orig]] = append(posBy[assign[orig]], s)
	}
	return posBy
}

// expertBatches feeds one expert's stored positions through a prediction
// function in decodeBatchRows-sized chunks, reusing a single scratch matrix.
// Iteration is expert-major with ascending stored positions inside each
// expert, which both compression and decompression follow identically; the
// chunking depends only on the position list, so predictions are independent
// of parallelism at either precision.
func expertBatches(predict func(codes *mat.Matrix) *nn.Predictions, recCodes *mat.Matrix, positions []int,
	fn func(chunk []int, p *nn.Predictions)) {
	if len(positions) == 0 {
		return
	}
	scratch := make([]float64, min(decodeBatchRows, len(positions))*recCodes.Cols)
	for lo := 0; lo < len(positions); lo += decodeBatchRows {
		chunk := positions[lo:min(lo+decodeBatchRows, len(positions))]
		codes := mat.FromSlice(len(chunk), recCodes.Cols, scratch[:len(chunk)*recCodes.Cols])
		for i, s := range chunk {
			copy(codes.Row(i), recCodes.Row(s))
		}
		fn(chunk, predict(codes))
	}
}

// predictorFor picks the prediction function expertBatches drives: the
// float64 decoder's PredictCols, or — when dec32 is non-nil, i.e. the archive
// plan carries flagFloat32 — the float32 view's reusable Predictor. The
// returned closure owns per-call scratch, so each goroutine needs its own.
func predictorFor(dec *nn.Decoder, dec32 *nn.Decoder32, want []bool) func(*mat.Matrix) *nn.Predictions {
	if dec32 != nil {
		return dec32.Predictor(want)
	}
	return func(codes *mat.Matrix) *nn.Predictions { return dec.PredictCols(codes, want) }
}

// failureSet holds per-column correction streams in *stored* order.
type failureSet struct {
	// ints: model (non-trivial, discrete) columns → failure integers,
	// indexed by stored position.
	ints map[int][]int64
	// resInts: residual columns → per-digit failure ranks, each indexed by
	// stored position. Digits never escape (every digit lies in [0, Base)),
	// so residual columns have no exception stream.
	resInts map[int][][]int64
	// exceptions: categorical columns → escaped actual codes, ordered by
	// stored position of the escaping tuple.
	exceptions map[int][]int64
	// contMask / contVals: continuous columns → 0/1 misprediction flags
	// (indexed by stored position) and the raw original values of
	// mispredicted tuples (ordered by stored position).
	contMask map[int][]int64
	contVals map[int][]float64
}

type posVal struct {
	pos int
	val int64
}

type posFloat struct {
	pos int
	val float64
}

// computeFailures runs every tuple through its expert's decoder using the
// reconstructed codes and derives the per-column failure streams. Experts are
// processed concurrently over the run's pool: the dense streams are written
// into disjoint stored-position slots (the column maps are fully keyed before
// the fan-out, so workers only read the maps), and the sparse exception /
// continuous-correction streams are collected per expert and merged by stored
// position afterwards — the result is identical at every parallelism level.
// decs32, when non-nil, routes inference through the float32 decoder views
// (positionally parallel to decoders) so the stored corrections match what a
// float32 decode will predict; nil keeps the float64 path.
func computeFailures(run *pipeline.Run, md *modelData, origNum map[int][]float64, decoders []*nn.Decoder,
	decs32 []*nn.Decoder32, assign []int, recCodes *mat.Matrix, perm []int) (*failureSet, error) {
	fs := &failureSet{
		ints:       make(map[int][]int64),
		resInts:    make(map[int][][]int64),
		exceptions: make(map[int][]int64),
		contMask:   make(map[int][]int64),
		contVals:   make(map[int][]float64),
	}
	n := len(perm)
	for si, col := range md.specCols {
		cp := &md.plan.Cols[col]
		switch cp.Kind {
		case preprocess.KindNumContinuous:
			fs.contMask[col] = make([]int64, n)
		case preprocess.KindCatResidual:
			if fs.resInts[col] == nil {
				fs.resInts[col] = make([][]int64, cp.ResDigits)
			}
			fs.resInts[col][md.specDigit[si]] = make([]int64, n)
		default:
			fs.ints[col] = make([]int64, n)
		}
	}
	posBy := expertPositions(assign, perm, len(decoders))
	perExcepts := make([]map[int][]posVal, len(decoders))
	perContws := make([]map[int][]posFloat, len(decoders))
	err := run.ForEach(len(decoders), func(e int) error {
		excepts := make(map[int][]posVal)
		contws := make(map[int][]posFloat)
		dec := decoders[e]
		var d32 *nn.Decoder32
		if decs32 != nil {
			d32 = decs32[e]
		}
		expertBatches(predictorFor(dec, d32, nil), recCodes, posBy[e], func(chunk []int, p *nn.Predictions) {
			for si, spec := range md.specs {
				col := md.specCols[si]
				cp := &md.plan.Cols[col]
				switch spec.Kind {
				case nn.OutNumeric:
					np := dec.NumPos(si)
					if cp.Kind == preprocess.KindNumContinuous {
						vals := md.contVals[col]
						mask := fs.contMask[col]
						for i, s := range chunk {
							orig := perm[s]
							pred := p.Num.At(i, np)
							if math.Abs(pred-vals[orig]) <= cp.Threshold {
								mask[s] = 0
							} else {
								mask[s] = 1
								contws[col] = append(contws[col], posFloat{s, origNum[col][orig]})
							}
						}
						continue
					}
					lv := levels(cp)
					out := fs.ints[col]
					cc := md.codes[col]
					for i, s := range chunk {
						predIdx := nearestLevel(cp, p.Num.At(i, np), lv)
						out[s] = int64(cc[perm[s]] - predIdx)
					}
				case nn.OutBinary:
					bp := dec.BinPos(si)
					out := fs.ints[col]
					cc := md.codes[col]
					for i, s := range chunk {
						predBit := 0
						if p.Bin.At(i, bp) >= 0.5 {
							predBit = 1
						}
						out[s] = int64(predBit ^ cc[perm[s]])
					}
				case nn.OutCategorical:
					j := dec.CatPos(si)
					cc := md.codes[col]
					probs := p.Cat[j]
					if cp.Kind == preprocess.KindCatResidual {
						// One digit of the rank: always in-alphabet, so
						// the failure is a plain rank with no escape.
						l := cp.ResLayout()
						d := md.specDigit[si]
						out := fs.resInts[col][d]
						for i, s := range chunk {
							out[s] = int64(rankOf(probs.Row(i), l.Digit(cc[perm[s]], d)))
						}
						continue
					}
					out := fs.ints[col]
					for i, s := range chunk {
						actual := cc[perm[s]]
						if actual >= spec.Card {
							out[s] = int64(spec.Card) // escape
							excepts[col] = append(excepts[col], posVal{s, int64(actual)})
							continue
						}
						out[s] = int64(rankOf(probs.Row(i), actual))
					}
				}
			}
		})
		perExcepts[e] = excepts
		perContws[e] = contws
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Exceptions and continuous corrections are consumed by stored position
	// during decompression; merge the per-expert collections and sort them
	// accordingly (stored positions are unique, so the order is total).
	excepts := make(map[int][]posVal)
	contws := make(map[int][]posFloat)
	for e := range decoders {
		for col, pv := range perExcepts[e] {
			excepts[col] = append(excepts[col], pv...)
		}
		for col, pv := range perContws[e] {
			contws[col] = append(contws[col], pv...)
		}
	}
	for col, pv := range excepts {
		sort.Slice(pv, func(i, j int) bool { return pv[i].pos < pv[j].pos })
		vals := make([]int64, len(pv))
		for i, e := range pv {
			vals[i] = e.val
		}
		fs.exceptions[col] = vals
	}
	for col, pv := range contws {
		sort.Slice(pv, func(i, j int) bool { return pv[i].pos < pv[j].pos })
		vals := make([]float64, len(pv))
		for i, e := range pv {
			vals[i] = e.val
		}
		fs.contVals[col] = vals
	}
	return fs, nil
}

// nearestLevel maps a regression output in [0,1] to the nearest discrete
// level of the column (bucket index or value rank).
func nearestLevel(cp *preprocess.ColPlan, pred float64, lv int) int {
	if cp.Kind == preprocess.KindNumQuant {
		return cp.Quant.Bucket(pred)
	}
	idx := int(math.Round(pred * float64(lv-1)))
	if idx < 0 {
		idx = 0
	}
	if idx >= lv {
		idx = lv - 1
	}
	return idx
}

// packedSize totals the packed byte size of all failure streams plus the
// given packed code dimensions — the objective of the truncation search.
// Every stream packs independently, so the streams are flattened into a
// work list and packed concurrently over the run's pool; the sum is
// commutative, so map iteration order does not affect the result.
func packedSize(run *pipeline.Run, fs *failureSet, codeDims [][]int64, mask codec.Mask) (int64, error) {
	var ints [][]int64
	var floats [][]float64
	ints = append(ints, codeDims...)
	for _, s := range fs.ints {
		ints = append(ints, s)
	}
	for _, ds := range fs.resInts {
		ints = append(ints, ds...)
	}
	for _, s := range fs.exceptions {
		ints = append(ints, s)
	}
	for _, s := range fs.contMask {
		ints = append(ints, s)
	}
	for _, s := range fs.contVals {
		floats = append(floats, s)
	}
	sizes := make([]int64, len(ints)+len(floats))
	err := run.ForEach(len(sizes), func(i int) error {
		if i < len(ints) {
			sizes[i] = int64(len(colfile.PackIntsMask(ints[i], mask)))
		} else {
			sizes[i] = int64(len(colfile.PackFloats(floats[i-len(ints)])))
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, s := range sizes {
		total += s
	}
	return total, nil
}
