package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/preprocess"
)

// ZoneKind classifies one zone-map entry's representation.
type ZoneKind byte

const (
	// ZoneNone carries no statistics: the group can never be pruned on this
	// column. Used for fallback categoricals (their dictionary is not
	// archived) and whenever the writer cannot produce a sound bound.
	ZoneNone ZoneKind = 0
	// ZoneIntRange bounds the column's values in the *encoded* domain of the
	// header plan: dictionary codes for categoricals, bucket indexes for
	// quantized numerics, value ranks for dictionary numerics. Only emitted
	// when the group encodes through the header plan, so a reader holding
	// just the header can translate the bounds back to values.
	ZoneIntRange ZoneKind = 1
	// ZoneBitmap records exactly which header-dictionary codes occur in the
	// group, one bit per code plus a final overflow bit for values outside
	// the header dictionary (streaming re-fit groups can contain them).
	ZoneBitmap ZoneKind = 2
	// ZoneFloatRange bounds the column's *decoded* values directly. For
	// lossy columns the bounds are widened by the column's error tolerance,
	// so every value the decoder can emit for the group lies inside.
	ZoneFloatRange ZoneKind = 3
)

// ZoneMap is one row group × column statistics entry.
type ZoneMap struct {
	Kind     ZoneKind
	Min, Max int64   // ZoneIntRange: inclusive encoded-domain bounds
	FMin     float64 // ZoneFloatRange: inclusive decoded-domain bounds
	FMax     float64
	Bits     []byte // ZoneBitmap: presence bits, LSB-first
	NBits    int    // ZoneBitmap: bit count = header dict size + 1 (overflow)
}

// Bit reports whether presence bit i is set. Out-of-range bits read as unset.
func (z *ZoneMap) Bit(i int) bool {
	if i < 0 || i >= z.NBits {
		return false
	}
	return z.Bits[i>>3]&(1<<(uint(i)&7)) != 0
}

// zoneBitmapMaxCard bounds the dictionary size for which a presence bitmap is
// worth its bytes; larger alphabets fall back to a code range.
const zoneBitmapMaxCard = 1024

// minMaxAt returns the min and max of col at the given row indexes. ok is
// false for an empty index set or any NaN (no sound bound exists then).
func minMaxAt(col []float64, rows []int) (mn, mx float64, ok bool) {
	if len(rows) == 0 {
		return 0, 0, false
	}
	mn, mx = col[rows[0]], col[rows[0]]
	for _, r := range rows[1:] {
		v := col[r]
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if math.IsNaN(mn) || math.IsNaN(mx) {
		return 0, 0, false
	}
	return mn, mx, true
}

// catZone builds a categorical column's zone over the *header* dictionary:
// a presence bitmap (with an overflow bit for values outside the header
// dictionary) for small alphabets, a code range otherwise. The decoded
// values of categorical columns round-trip exactly, so presence of the
// original values is presence of the decoded ones.
func catZone(vals []string, rows []int, dict *preprocess.Dictionary) ZoneMap {
	n := dict.Len()
	if n <= zoneBitmapMaxCard {
		z := ZoneMap{Kind: ZoneBitmap, NBits: n + 1}
		z.Bits = make([]byte, (z.NBits+7)/8)
		for _, r := range rows {
			c, ok := dict.Code(vals[r])
			if !ok {
				c = n // overflow: value unseen by the header dictionary
			}
			z.Bits[c>>3] |= 1 << (uint(c) & 7)
		}
		return z
	}
	z := ZoneMap{Kind: ZoneIntRange, Min: math.MaxInt64, Max: -1}
	for _, r := range rows {
		c, ok := dict.Code(vals[r])
		if !ok {
			return ZoneMap{} // unbounded without a bitmap's overflow bit
		}
		if int64(c) < z.Min {
			z.Min = int64(c)
		}
		if int64(c) > z.Max {
			z.Max = int64(c)
		}
	}
	return z
}

// quantDecode is the decoder's reconstruction of a quantized value: scale,
// bucket, midpoint, unscale. Monotone nondecreasing in v, which is what
// makes a [decode(min), decode(max)] interval a sound bound for the group.
func quantDecode(cp *preprocess.ColPlan, v float64) float64 {
	return cp.Scaler.Unscale(cp.Quant.Midpoint(cp.Quant.Bucket(cp.Scaler.Scale(v))))
}

// computeGroupZones derives one row group's per-column zone maps. perm lists
// the group's rows as indexes into t (the global table for the in-memory
// writer, the group-local chunk for the streaming writer — the same
// addressing buildSegment uses). headerPlan is the archive-wide plan the
// query planner will hold; groupPlan is the plan the group actually encodes
// through. When they differ (streaming re-fit groups), encoded-domain bounds
// would be meaningless to the reader, so only decoded-domain zones are
// emitted.
func computeGroupZones(t *dataset.Table, perm []int, headerPlan, groupPlan *preprocess.Plan) []ZoneMap {
	zones := make([]ZoneMap, len(headerPlan.Cols))
	if len(perm) == 0 {
		return zones
	}
	sameEnc := headerPlan == groupPlan
	for col := range headerPlan.Cols {
		hp := &headerPlan.Cols[col]
		gp := &groupPlan.Cols[col]
		switch hp.Kind {
		case preprocess.KindCatModel, preprocess.KindBinary, preprocess.KindCatResidual:
			// Residual columns zone over the same dictionary codes as other
			// categoricals: the digit factoring is invisible to zone maps.
			zones[col] = catZone(t.Str[col], perm, hp.Dict)
		case preprocess.KindNumQuant:
			mn, mx, ok := minMaxAt(t.Num[col], perm)
			if !ok {
				continue
			}
			if sameEnc {
				zones[col] = ZoneMap{
					Kind: ZoneIntRange,
					Min:  int64(hp.Quant.Bucket(hp.Scaler.Scale(mn))),
					Max:  int64(hp.Quant.Bucket(hp.Scaler.Scale(mx))),
				}
				continue
			}
			// Re-fit group: bound the decoded values through the group's
			// own quantizer (monotone, so the endpoints bound everything).
			zones[col] = ZoneMap{Kind: ZoneFloatRange, FMin: quantDecode(gp, mn), FMax: quantDecode(gp, mx)}
		case preprocess.KindNumDict:
			mn, mx, ok := minMaxAt(t.Num[col], perm)
			if !ok {
				continue
			}
			if sameEnc {
				lo, okLo := hp.VDict.Rank(mn)
				hi, okHi := hp.VDict.Rank(mx)
				if okLo && okHi {
					zones[col] = ZoneMap{Kind: ZoneIntRange, Min: int64(lo), Max: int64(hi)}
					continue
				}
			}
			// Dictionary numerics decode losslessly: the raw range bounds
			// the decoded values no matter which dictionary the group used.
			zones[col] = ZoneMap{Kind: ZoneFloatRange, FMin: mn, FMax: mx}
		case preprocess.KindNumContinuous:
			mn, mx, ok := minMaxAt(t.Num[col], perm)
			if !ok {
				continue
			}
			// Accepted predictions decode to Unscale(pred) with
			// |pred - Scale(v)| <= Threshold, i.e. within Threshold·Range of
			// the original; mispredictions are stored exactly. The pad
			// absorbs float rounding in the scale/unscale round trip.
			tol := gp.Threshold * gp.Scaler.Range()
			pad := 1e-9 * (math.Abs(gp.Scaler.Min) + math.Abs(gp.Scaler.Max) + 1)
			zones[col] = ZoneMap{Kind: ZoneFloatRange, FMin: mn - tol - pad, FMax: mx + tol + pad}
		case preprocess.KindFallbackNum:
			mn, mx, ok := minMaxAt(t.Num[col], perm)
			if !ok {
				continue
			}
			zones[col] = ZoneMap{Kind: ZoneFloatRange, FMin: mn, FMax: mx}
		default: // KindFallbackCat: dictionary not archived, nothing to bound
		}
	}
	return zones
}

// appendZoneStatsPayload serializes the stats chunk payload: group count,
// column count, then one tagged entry per group × column.
func appendZoneStatsPayload(dst []byte, zones [][]ZoneMap) []byte {
	ncols := 0
	if len(zones) > 0 {
		ncols = len(zones[0])
	}
	dst = binary.AppendUvarint(dst, uint64(len(zones)))
	dst = binary.AppendUvarint(dst, uint64(ncols))
	for _, gz := range zones {
		for _, z := range gz {
			dst = append(dst, byte(z.Kind))
			switch z.Kind {
			case ZoneIntRange:
				dst = binary.AppendUvarint(dst, uint64(z.Min))
				dst = binary.AppendUvarint(dst, uint64(z.Max))
			case ZoneBitmap:
				dst = binary.AppendUvarint(dst, uint64(z.NBits))
				dst = append(dst, z.Bits...)
			case ZoneFloatRange:
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(z.FMin))
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(z.FMax))
			}
		}
	}
	return dst
}

// zoneIntLimit returns the exclusive upper bound a ZoneIntRange entry may
// carry for a column, or -1 when the kind admits no encoded-domain range.
func zoneIntLimit(cp *preprocess.ColPlan) int64 {
	switch cp.Kind {
	case preprocess.KindCatModel, preprocess.KindBinary, preprocess.KindCatResidual:
		return int64(cp.Dict.Len())
	case preprocess.KindNumQuant:
		return int64(cp.Quant.NumBucket)
	case preprocess.KindNumDict:
		return int64(cp.VDict.Len())
	default:
		return -1
	}
}

// zoneFloatAllowed reports whether a column kind may carry a decoded-domain
// float range.
func zoneFloatAllowed(k preprocess.ColKind) bool {
	switch k {
	case preprocess.KindNumQuant, preprocess.KindNumDict,
		preprocess.KindNumContinuous, preprocess.KindFallbackNum:
		return true
	}
	return false
}

// parseZoneStats decodes and validates a stats chunk payload against the
// header plan. Every entry must be structurally legal for its column's kind —
// an archive the writer produced always passes; arbitrary bytes fail with
// ErrCorrupt.
func parseZoneStats(payload []byte, plan *preprocess.Plan, ngroups int) ([][]ZoneMap, error) {
	r := &sectionReader{buf: payload}
	ng, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nc, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if ng != uint64(ngroups) || nc != uint64(len(plan.Cols)) {
		return nil, fmt.Errorf("%w: stats shape %d×%d, want %d×%d", ErrCorrupt, ng, nc, ngroups, len(plan.Cols))
	}
	zones := make([][]ZoneMap, ngroups)
	for g := range zones {
		gz := make([]ZoneMap, len(plan.Cols))
		for col := range gz {
			cp := &plan.Cols[col]
			kind, err := r.byte()
			if err != nil {
				return nil, err
			}
			z := &gz[col]
			z.Kind = ZoneKind(kind)
			switch z.Kind {
			case ZoneNone:
			case ZoneIntRange:
				lo, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				hi, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				limit := zoneIntLimit(cp)
				if limit < 0 || lo > hi || hi >= uint64(limit) {
					return nil, fmt.Errorf("%w: column %d int zone [%d,%d]", ErrCorrupt, col, lo, hi)
				}
				z.Min, z.Max = int64(lo), int64(hi)
			case ZoneBitmap:
				if cp.Kind != preprocess.KindCatModel && cp.Kind != preprocess.KindBinary &&
					cp.Kind != preprocess.KindCatResidual {
					return nil, fmt.Errorf("%w: column %d kind %v with bitmap zone", ErrCorrupt, col, cp.Kind)
				}
				nb, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if nb != uint64(cp.Dict.Len()+1) {
					return nil, fmt.Errorf("%w: column %d bitmap of %d bits, want %d", ErrCorrupt, col, nb, cp.Dict.Len()+1)
				}
				z.NBits = int(nb)
				nbytes := (z.NBits + 7) / 8
				if len(r.buf)-r.pos < nbytes {
					return nil, fmt.Errorf("%w: truncated bitmap zone", ErrCorrupt)
				}
				z.Bits = r.buf[r.pos : r.pos+nbytes]
				r.pos += nbytes
				if tail := z.NBits & 7; tail != 0 && z.Bits[nbytes-1]>>uint(tail) != 0 {
					return nil, fmt.Errorf("%w: column %d bitmap has bits past %d", ErrCorrupt, col, z.NBits)
				}
			case ZoneFloatRange:
				if !zoneFloatAllowed(cp.Kind) {
					return nil, fmt.Errorf("%w: column %d kind %v with float zone", ErrCorrupt, col, cp.Kind)
				}
				if len(r.buf)-r.pos < 16 {
					return nil, fmt.Errorf("%w: truncated float zone", ErrCorrupt)
				}
				z.FMin = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
				z.FMax = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos+8:]))
				r.pos += 16
				if math.IsNaN(z.FMin) || math.IsNaN(z.FMax) || z.FMin > z.FMax {
					return nil, fmt.Errorf("%w: column %d float zone [%v,%v]", ErrCorrupt, col, z.FMin, z.FMax)
				}
			default:
				return nil, fmt.Errorf("%w: zone kind %d", ErrCorrupt, kind)
			}
		}
		zones[g] = gz
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return zones, nil
}
