package core

import (
	"bytes"
	"runtime"
	"testing"
	"testing/quick"

	"deepsqueeze/internal/dataset"
)

// f32Opts is quickOpts with the per-archive float32-decode plan flag set.
func f32Opts() Options {
	o := quickOpts()
	o.Float32Decode = true
	return o
}

// tableCSV renders a table for byte-identity comparisons.
func tableCSV(t *testing.T, tb *dataset.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A float32-plan archive must round-trip within the same per-column error
// bounds as the float64 plan: corrections are computed against the same
// float32 inference decode replays, so precision never leaks into accuracy.
func TestFloat32RoundTrip(t *testing.T) {
	tb := latentTable(1200, 81)
	thr := []float64{0, 0, 0.05, 0.05, 0}
	for _, experts := range []int{1, 2} {
		opts := f32Opts()
		opts.NumExperts = experts
		res, got := roundTrip(t, tb, thr, opts)
		if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
			t.Fatalf("experts %d: %v", experts, err)
		}
		// The plan flag must be recorded and surfaced on every metadata path.
		info, err := Inspect(res.Archive)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Float32Decode {
			t.Fatalf("experts %d: Inspect does not report the float32 plan", experts)
		}
		if !info.Summary().Float32Decode {
			t.Fatalf("experts %d: Summary does not report the float32 plan", experts)
		}
		a, err := Open(res.Archive)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Float32() {
			t.Fatalf("experts %d: handle does not report the float32 plan", experts)
		}
		// And the default plan must stay off.
		res64, err := Compress(tb, thr, quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		if info64, err := Inspect(res64.Archive); err != nil || info64.Float32Decode {
			t.Fatalf("experts %d: float64 plan flagged as float32 (err %v)", experts, err)
		}
	}
}

// Float32 decode must be bit-identical across parallelism levels and across
// group-mask subsets: chunking is constant, so the float32 inference stream
// every row sees is independent of how work is scheduled.
func TestFloat32DecodeDeterminism(t *testing.T) {
	opts := f32Opts()
	opts.NumExperts = 2
	opts.RowGroupSize = 200
	tb := latentTable(900, 83)
	res, err := Compress(tb, []float64{0, 0, 0.1, 0.1, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	full := decodeOpts(t, res.Archive, DecompressOptions{})
	fullCSV := tableCSV(t, full)
	for _, p := range []int{1, 4, runtime.NumCPU()} {
		got := decodeOpts(t, res.Archive, DecompressOptions{Parallelism: p})
		if !bytes.Equal(fullCSV, tableCSV(t, got)) {
			t.Fatalf("parallelism %d decoded a different table", p)
		}
	}
	// Single-group masks, concatenated in group order, must reproduce the
	// full decode exactly — each at more than one parallelism level.
	idx, err := ReadIndex(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Groups) < 2 {
		t.Fatalf("want a multi-group archive, got %d groups", len(idx.Groups))
	}
	stitched := dataset.NewTable(full.Schema, 0)
	for g := range idx.Groups {
		mask := make([]bool, len(idx.Groups))
		mask[g] = true
		part := decodeOpts(t, res.Archive, DecompressOptions{GroupMask: mask})
		if !bytes.Equal(tableCSV(t, part),
			tableCSV(t, decodeOpts(t, res.Archive, DecompressOptions{GroupMask: mask, Parallelism: 4}))) {
			t.Fatalf("group %d mask decode differs across parallelism", g)
		}
		appendRows(stitched, part, 0, part.NumRows())
	}
	if !bytes.Equal(fullCSV, tableCSV(t, stitched)) {
		t.Fatal("stitched single-group decodes differ from the full decode")
	}
}

// Property: under the float32 plan, every continuous column still honors its
// Threshold×Range bound on randomized schemas and data — the satellite
// error-bound guarantee for the narrow kernels.
func TestQuickFloat32ErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		tb, thresholds, opts := genRandomTable(seed)
		opts.Float32Decode = true
		cols := tb.Schema.Columns
		res, err := Compress(tb, thresholds, opts)
		if err != nil {
			t.Logf("seed %d: compress: %v", seed, err)
			return false
		}
		got, err := Decompress(res.Archive)
		if err != nil {
			t.Logf("seed %d: decompress: %v", seed, err)
			return false
		}
		stats := tb.Stats()
		tol := make([]float64, len(cols))
		for i := range tol {
			if cols[i].Type == dataset.Numeric {
				tol[i] = thresholds[i] * (stats[i].Max - stats[i].Min) * (1 + 1e-9)
			}
		}
		if err := tb.EqualWithin(got, tol); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// The streaming writer inherits the float32 plan from its pilot compression
// and the streaming reader replays it, so both halves of the bounded-memory
// path stay on the per-archive precision contract.
func TestFloat32Streaming(t *testing.T) {
	tb := latentTable(700, 85)
	thr := []float64{0, 0, 0.05, 0.05, 0}
	opts := f32Opts()
	opts.RowGroupSize = 250
	archive, stats := writeStream(t, tb, 170, opts)
	if stats.Rows != 700 {
		t.Fatalf("stats %+v", stats)
	}
	info, err := Inspect(archive)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Float32Decode {
		t.Fatal("streamed archive lost the float32 plan flag")
	}
	tol := tolerances(tb, thr)
	got, err := Decompress(archive)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.EqualWithin(got, tol); err != nil {
		t.Fatalf("in-memory decode: %v", err)
	}
	if err := tb.EqualWithin(readStream(t, archive), tol); err != nil {
		t.Fatalf("streaming decode: %v", err)
	}
}
