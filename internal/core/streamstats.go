package core

import (
	"fmt"

	"deepsqueeze/internal/codec"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/preprocess"
)

// StreamStat aggregates one logical stream's chunks across every row group:
// which codecs the best-of selector chose, the framed (compressed) bytes,
// and the stored-form bytes the frames decode to — the denominator that
// makes per-column ratio wins attributable. Streams are keyed by schema
// column plus stream kind; the code dimensions and the expert mapping have
// no column and report with an empty Column.
type StreamStat struct {
	// Column is the schema column name; empty for the code and mapping
	// streams, which span all model columns.
	Column string
	// Stream names the stream kind: "codes", "mapping", "failures",
	// "exceptions", "mask", "values", "fallback", or "trivial".
	Stream string
	// Chunks counts archive chunks aggregated into this stat.
	Chunks int
	// Codecs histograms the per-chunk codec choice (frame-tag name → count).
	Codecs map[string]int
	// FrameBytes is the total framed size as stored in the archive.
	FrameBytes int64
	// RawBytes is the total stored-form size: what the stream would occupy
	// with compression disabled (the codec layer's tag-0 form). The
	// FrameBytes/RawBytes ratio is each codec's win on this stream.
	RawBytes int64
}

// streamAcc accumulates per-(column, stream) stats in first-seen order.
type streamAcc struct {
	order []string
	stats map[string]*StreamStat
}

func newStreamAcc() *streamAcc {
	return &streamAcc{stats: make(map[string]*StreamStat)}
}

func (a *streamAcc) at(column, stream string) *StreamStat {
	key := column + "\x00" + stream
	st, ok := a.stats[key]
	if !ok {
		st = &StreamStat{Column: column, Stream: stream, Codecs: make(map[string]int)}
		a.stats[key] = st
		a.order = append(a.order, key)
	}
	return st
}

// addInts classifies one integer-stream frame into the (column, stream) stat.
func (a *streamAcc) addInts(column, stream string, frame []byte, max int) error {
	fi, err := codec.InspectInts(frame, max)
	if err != nil {
		return err
	}
	st := a.at(column, stream)
	st.Chunks++
	st.Codecs[fi.Codec]++
	st.FrameBytes += fi.FrameBytes
	st.RawBytes += fi.RawBytes
	return nil
}

// addBytes classifies one byte-stream frame (string/float chunk layouts).
func (a *streamAcc) addBytes(column, stream string, frame []byte) error {
	fi, err := codec.InspectBytes(frame)
	if err != nil {
		return err
	}
	st := a.at(column, stream)
	st.Chunks++
	st.Codecs[fi.Codec]++
	st.FrameBytes += fi.FrameBytes
	st.RawBytes += fi.RawBytes
	return nil
}

// addMapping classifies one mapping chunk. The labels form is a single
// integer frame; the grouped form is per-expert uvarint counts with nested
// index frames when row order is kept (no frames at all otherwise — those
// counts are their own raw form and contribute no codec tally).
func (a *streamAcc) addMapping(m *archiveMeta, mb []byte, count int) error {
	st := a.at("", "mapping")
	st.Chunks++
	st.FrameBytes += int64(len(mb))
	if m.flags&flagGrouped == 0 {
		fi, err := codec.InspectInts(mb, count)
		if err != nil {
			return err
		}
		st.Codecs[fi.Codec]++
		st.RawBytes += fi.RawBytes
		return nil
	}
	keepOrder := m.flags&flagRowOrder != 0
	r := &sectionReader{buf: mb}
	var frameBytes int64
	for e := 0; e < m.numExperts; e++ {
		cnt, err := r.uvarint()
		if err != nil {
			return fmt.Errorf("%w: truncated mapping", ErrCorrupt)
		}
		if cnt > uint64(count) {
			return fmt.Errorf("%w: mapping counts exceed rows", ErrCorrupt)
		}
		if !keepOrder {
			continue
		}
		frame, err := r.chunk()
		if err != nil {
			return err
		}
		fi, err := codec.InspectInts(frame, int(cnt))
		if err != nil {
			return err
		}
		st.Codecs[fi.Codec]++
		st.RawBytes += fi.RawBytes
		frameBytes += fi.FrameBytes
	}
	if err := r.done(); err != nil {
		return err
	}
	// The uvarint scaffolding around the nested frames is uncompressed:
	// count it identically on both sides of the ratio.
	st.RawBytes += int64(len(mb)) - frameBytes
	return nil
}

// collectGroupStreams walks one group body's chunk sequence — the same
// order scanGroupBody consumes — classifying every chunk. r must be
// positioned at the first code-dimension chunk; count is the group's rows.
func (m *archiveMeta) collectGroupStreams(r *sectionReader, count int, acc *streamAcc) error {
	lo := m.layout
	if m.hasModel {
		for i := 0; i < m.codeSize; i++ {
			c, err := r.chunk()
			if err != nil {
				return err
			}
			if err := acc.addInts("", "codes", c, count); err != nil {
				return err
			}
		}
	}
	if m.numExperts > 1 {
		c, err := r.chunk()
		if err != nil {
			return err
		}
		if err := acc.addMapping(m, c, count); err != nil {
			return err
		}
	}
	for col := range m.plan.Cols {
		cp := &m.plan.Cols[col]
		name := m.plan.Schema.Columns[col].Name
		switch {
		case cp.Kind == preprocess.KindCatResidual:
			// One rank-of-prediction failure stream per residual digit; the
			// digits share the column's "failures" stat.
			for d := 0; d < cp.ResDigits; d++ {
				c, err := r.chunk()
				if err != nil {
					return err
				}
				if err := acc.addInts(name, "failures", c, count); err != nil {
					return err
				}
			}
		case lo.specOfCol[col] >= 0 && cp.Kind == preprocess.KindNumContinuous:
			c, err := r.chunk()
			if err != nil {
				return err
			}
			if err := acc.addInts(name, "mask", c, count); err != nil {
				return err
			}
			if c, err = r.chunk(); err != nil {
				return err
			}
			if err := acc.addBytes(name, "values", c); err != nil {
				return err
			}
		case lo.specOfCol[col] >= 0:
			c, err := r.chunk()
			if err != nil {
				return err
			}
			if err := acc.addInts(name, "failures", c, count); err != nil {
				return err
			}
			if lo.specs[lo.specOfCol[col]].Kind == nn.OutCategorical {
				if c, err = r.chunk(); err != nil {
					return err
				}
				if err := acc.addInts(name, "exceptions", c, count); err != nil {
					return err
				}
			}
		case cp.Kind == preprocess.KindFallbackCat, cp.Kind == preprocess.KindFallbackNum:
			c, err := r.chunk()
			if err != nil {
				return err
			}
			if err := acc.addBytes(name, "fallback", c); err != nil {
				return err
			}
		default:
			c, err := r.chunk()
			if err != nil {
				return err
			}
			if err := acc.addInts(name, "trivial", c, count); err != nil {
				return err
			}
		}
	}
	return nil
}

// streamStats walks every row group's chunks and aggregates per-stream codec
// and size statistics. Unlike info(), this reads (and, for compressed
// frames, decodes) the segment payloads, so it costs a full scan — cheap
// next to a decompression, but not free.
func (m *archiveMeta) streamStats() ([]StreamStat, error) {
	acc := newStreamAcc()
	if m.version == archiveVersionV1 {
		r := &sectionReader{buf: m.body, pos: m.bodyPos}
		if err := m.collectGroupStreams(r, m.rows, acc); err != nil {
			return nil, corrupt(err)
		}
	} else {
		for _, g := range m.footer.groups {
			r := &sectionReader{buf: m.body, pos: int(g.off)}
			kind, err := r.byte()
			if err != nil {
				return nil, corrupt(err)
			}
			if kind != kindSegment {
				return nil, fmt.Errorf("%w: chunk kind %d, want segment", ErrCorrupt, kind)
			}
			framed, err := r.chunk()
			if err != nil {
				return nil, corrupt(err)
			}
			body, err := segmentBody(framed)
			if err != nil {
				return nil, corrupt(err)
			}
			nr := &sectionReader{buf: body}
			sh, err := nr.chunk()
			if err != nil {
				return nil, corrupt(err)
			}
			shr := &sectionReader{buf: sh}
			for range 2 { // row span: start, count
				if _, err := shr.uvarint(); err != nil {
					return nil, corrupt(err)
				}
			}
			marker, err := shr.byte()
			if err != nil {
				return nil, corrupt(err)
			}
			switch marker {
			case 0:
			case 1: // group plan override: opaque to stream accounting
				if _, err := nr.chunk(); err != nil {
					return nil, corrupt(err)
				}
			default:
				return nil, fmt.Errorf("%w: segment plan marker %d", ErrCorrupt, marker)
			}
			if err := m.collectGroupStreams(nr, g.count, acc); err != nil {
				return nil, corrupt(err)
			}
			if err := nr.done(); err != nil {
				return nil, corrupt(err)
			}
		}
	}
	// First-seen order is walk order: codes, mapping, then plan-order
	// columns — stable across groups because every group repeats the same
	// chunk sequence.
	out := make([]StreamStat, 0, len(acc.order))
	for _, key := range acc.order {
		out = append(out, *acc.stats[key])
	}
	return out, nil
}

// InspectStreams parses an archive and reports per-stream codec choices and
// compressed-vs-raw sizes, aggregated across row groups. It decodes
// compressed frames to recover their stored-form sizes but never runs the
// model, so it is far cheaper than a decompression.
func InspectStreams(archive []byte) ([]StreamStat, error) {
	m, err := parseArchiveMeta(archive)
	if err != nil {
		return nil, err
	}
	return m.streamStats()
}

// StreamStats is InspectStreams against an open handle.
func (a *Archive) StreamStats() ([]StreamStat, error) {
	return a.meta.streamStats()
}
