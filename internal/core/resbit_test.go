package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/preprocess"
)

// clickTable builds the residual-path fixture: a Zipf-skewed user-ID column
// with `users` distinct values (every ID occurs at least once, so the
// dictionary size is exact), a small categorical, and a lossy numeric. With
// users > MaxModelCardinality and users/rows under the near-unique ratio,
// ResidualCats routes the user column through residual digits.
func clickTable(rows, users int, seed int64) *dataset.Table {
	return clickTableFrom(rows, users, 0, seed)
}

// clickTableFrom is clickTable with user IDs shifted by base, so a batch can
// contain IDs the training table never saw without growing the alphabet.
func clickTableFrom(rows, users, base int, seed int64) *dataset.Table {
	schema := dataset.NewSchema(
		dataset.Column{Name: "user", Type: dataset.Categorical},
		dataset.Column{Name: "country", Type: dataset.Categorical},
		dataset.Column{Name: "dwell", Type: dataset.Numeric},
	)
	t := dataset.NewTable(schema, rows)
	rng := rand.New(rand.NewSource(seed))
	zf := rand.NewZipf(rng, 1.2, 1, uint64(users-1))
	countries := []string{"us", "de", "jp"}
	for i := 0; i < rows; i++ {
		u := i % users // first pass covers every ID exactly once
		if i >= users {
			u = int(zf.Uint64())
		}
		t.AppendRow(
			[]string{fmt.Sprintf("user-%05d", base+u), countries[u%3]},
			[]float64{float64(u%7)*3 + rng.Float64()},
		)
	}
	return t
}

// residualOpts is quickOpts with the residual-digit path enabled.
func residualOpts() Options {
	o := quickOpts()
	o.Train.Epochs = 3
	o.Preproc.ResidualCats = true
	return o
}

// TestResidualPlanSelection checks the fit rule, the archived layout, and the
// header flag: a high-cardinality column becomes residual digits whose layout
// covers the dictionary, and the archive advertises flagResidual.
func TestResidualPlanSelection(t *testing.T) {
	tb := clickTable(2000, 500, 71)
	res, err := Compress(tb, []float64{0, 0, 0.05}, residualOpts())
	if err != nil {
		t.Fatal(err)
	}
	m, err := parseArchiveMeta(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if m.flags&flagResidual == 0 {
		t.Fatal("archive does not carry flagResidual")
	}
	cp := &m.plan.Cols[0]
	if cp.Kind != preprocess.KindCatResidual {
		t.Fatalf("user column kind %v, want residual", cp.Kind)
	}
	if cp.Dict.Len() != 500 {
		t.Fatalf("dictionary of %d values, want 500", cp.Dict.Len())
	}
	l := cp.ResLayout()
	if !l.Valid() || l.Max() < cp.Dict.Len() {
		t.Fatalf("layout %+v does not cover %d values", l, cp.Dict.Len())
	}
	if l.Digits < 2 {
		t.Fatalf("expected a multi-digit layout for 500 values, got %+v", l)
	}
	// The small categorical must stay on the ordinary model path.
	if got := m.plan.Cols[1].Kind; got != preprocess.KindCatModel {
		t.Fatalf("country column kind %v, want categorical", got)
	}
}

// TestRoundTripResidual checks exactly lossless reconstruction of the
// residual column across multiple row groups, plus projection onto the
// residual column alone (its multi-chunk layout must skip cleanly).
func TestRoundTripResidual(t *testing.T) {
	tb := clickTable(2400, 600, 72)
	thr := []float64{0, 0, 0.05}
	opts := residualOpts()
	opts.RowGroupSize = 700
	res, err := Compress(tb, thr, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
		t.Fatal(err)
	}
	pres, err := DecompressContext(t.Context(), res.Archive,
		DecompressOptions{Columns: []string{"user"}})
	if err != nil {
		t.Fatal(err)
	}
	for r := range tb.Str[0] {
		if pres.Table.Str[0][r] != tb.Str[0][r] {
			t.Fatalf("projected row %d: %q != %q", r, pres.Table.Str[0][r], tb.Str[0][r])
		}
	}
}

// TestResidualDeterminism requires byte-identical archives at Parallelism
// 1, 4, and NumCPU — the whole-pipeline determinism contract.
func TestResidualDeterminism(t *testing.T) {
	tb := clickTable(1500, 400, 73)
	thr := []float64{0, 0, 0.05}
	var first []byte
	for _, p := range []int{1, 4, runtime.NumCPU()} {
		opts := residualOpts()
		opts.Parallelism = p
		opts.RowGroupSize = 500
		res, err := Compress(tb, thr, opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if first == nil {
			first = res.Archive
		} else if !bytes.Equal(first, res.Archive) {
			t.Fatalf("archive at parallelism %d differs from parallelism 1", p)
		}
		dec, err := DecompressContext(t.Context(), res.Archive, DecompressOptions{Parallelism: p})
		if err != nil {
			t.Fatalf("decompress at parallelism %d: %v", p, err)
		}
		if err := tb.EqualWithin(dec.Table, tolerances(tb, thr)); err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
	}
}

// TestResidualZoneMapSoundness checks value-by-value that every decoded value
// of every group — residual column included — is admitted by its zone map.
func TestResidualZoneMapSoundness(t *testing.T) {
	tb := clickTable(1200, 300, 74)
	opts := residualOpts()
	opts.RowGroupSize = 250
	res, err := Compress(tb, []float64{0, 0, 0.05}, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkZoneSoundness(t, res.Archive)
}

// TestResidualCorruptStreams mutates every region of a residual archive (with
// a refreshed outer CRC so mutations reach the parser) and requires decode to
// either succeed or fail with ErrCorrupt — never panic, never misclassify.
func TestResidualCorruptStreams(t *testing.T) {
	tb := clickTable(900, 300, 75)
	opts := residualOpts()
	opts.RowGroupSize = 300
	res, err := Compress(tb, []float64{0, 0, 0.05}, opts)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), res.Archive...)
	for pos := 0; pos < len(mut); pos += 7 {
		orig := mut[pos]
		mut[pos] ^= 0x55
		archive := refreshCRC(mut)
		if _, err := Decompress(archive); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mutation at %d: unclassified error %v", pos, err)
		}
		mut[pos] = orig
	}
}

// TestResidualStreamBatches runs the streaming scenario over the residual
// path: batches with unseen values re-fit their dictionary and round-trip as
// long as the alphabet fits the trained digit capacity; a batch whose
// alphabet outgrows Base^Digits is rejected as a retrain signal.
func TestResidualStreamBatches(t *testing.T) {
	train := clickTable(1500, 400, 76)
	thr := []float64{0, 0, 0.05}
	s, _, err := NewStream(train, thr, residualOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The streaming entry points size the digit layout with 2x headroom over
	// the pilot alphabet — residual digits have no escape path, so the
	// trained capacity must absorb alphabets later batches grow. A batch with
	// 500 distinct IDs, shifted so 120 of them were never seen in training,
	// re-fits its dictionary and still fits the digits.
	batch := clickTableFrom(1500, 500, 20, 77)
	bres, err := s.CompressBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBatch(s.ModelArchive(), bres.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.EqualWithin(got, tolerances(batch, thr)); err != nil {
		t.Fatal(err)
	}
	// A batch whose alphabet outgrows Base^Digits must be rejected.
	m, err := parseArchiveMeta(s.ModelArchive())
	if err != nil {
		t.Fatal(err)
	}
	capacity := m.plan.Cols[0].ResLayout().Max()
	over := clickTable(3*(capacity+1), capacity+1, 78)
	if _, err := s.CompressBatch(over); err == nil {
		t.Fatalf("batch with %d distinct values accepted beyond capacity %d", capacity+1, capacity)
	}
}

// TestResidualWriterAlphabetGrowth streams a table whose second row group
// carries a larger alphabet than the pilot group the plan is trained on. The
// 2x layout headroom NewArchiveWriter applies must absorb the growth (pilot
// 300 IDs -> capacity >= 600, later group re-fits 450 IDs), while an explicit
// exact-fit headroom of 1 must reject the same stream as a retrain signal.
func TestResidualWriterAlphabetGrowth(t *testing.T) {
	part1 := clickTable(1000, 300, 80)
	part2 := clickTableFrom(2000, 450, 0, 81)
	tb := dataset.NewTable(part1.Schema, 0)
	appendRows(tb, part1, 0, part1.NumRows())
	appendRows(tb, part2, 0, part2.NumRows())
	thr := []float64{0, 0, 0.05}

	stream := func(headroom float64) ([]byte, error) {
		opts := residualOpts()
		opts.RowGroupSize = 1000
		opts.Preproc.ResidualHeadroom = headroom
		var buf bytes.Buffer
		aw, err := NewArchiveWriter(&buf, tb.Schema, thr, opts)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < tb.NumRows(); lo += 1000 {
			hi := lo + 1000
			if hi > tb.NumRows() {
				hi = tb.NumRows()
			}
			chunk := dataset.NewTable(tb.Schema, hi-lo)
			appendRows(chunk, tb, lo, hi)
			if err := aw.Write(chunk); err != nil {
				return nil, err
			}
		}
		if err := aw.Close(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	archive, err := stream(0) // 0 = streaming default of 2x
	if err != nil {
		t.Fatalf("streaming with default headroom: %v", err)
	}
	m, err := parseArchiveMeta(archive)
	if err != nil {
		t.Fatal(err)
	}
	if m.plan.Cols[0].Kind != preprocess.KindCatResidual {
		t.Fatalf("user column kind %v, want residual (pilot misclassified)", m.plan.Cols[0].Kind)
	}
	got, err := Decompress(archive)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
		t.Fatal(err)
	}

	if _, err := stream(1); err == nil || !strings.Contains(err.Error(), "retrain") {
		t.Fatalf("exact-fit stream: got %v, want a retrain-needed rejection", err)
	}
}
