package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"deepsqueeze/internal/dataset"
)

// compressLatent compresses a latentTable archive once for the projection
// and row-range tests below.
func compressLatent(t *testing.T, rows int, seed int64, opts Options) ([]byte, *dataset.Table) {
	t.Helper()
	tb := latentTable(rows, seed)
	res, err := Compress(tb, []float64{0, 0, 0.1, 0.1, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Archive, tb
}

// decodeOpts decompresses with options, failing the test on error.
func decodeOpts(t *testing.T, archive []byte, opts DecompressOptions) *dataset.Table {
	t.Helper()
	res, err := DecompressContext(context.Background(), archive, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Table
}

// columnEqual compares one column of got against the full decode's column,
// over the full-decode rows [lo, lo+got.NumRows()).
func columnEqual(full, got *dataset.Table, fullCol, gotCol, lo int) error {
	typ := full.Schema.Columns[fullCol].Type
	for i := 0; i < got.NumRows(); i++ {
		if typ == dataset.Categorical {
			if full.Str[fullCol][lo+i] != got.Str[gotCol][i] {
				return fmt.Errorf("col %d row %d: %q != %q", fullCol, i, got.Str[gotCol][i], full.Str[fullCol][lo+i])
			}
		} else if full.Num[fullCol][lo+i] != got.Num[gotCol][i] {
			return fmt.Errorf("col %d row %d: %v != %v", fullCol, i, got.Num[gotCol][i], full.Num[fullCol][lo+i])
		}
	}
	return nil
}

func TestDecompressColumnProjection(t *testing.T) {
	archive, tb := compressLatent(t, 800, 31, quickOpts())
	full := decodeOpts(t, archive, DecompressOptions{})

	// Every single-column projection, plus a two-column and an
	// out-of-request-order selection.
	var sets [][]string
	for _, c := range tb.Schema.Columns {
		sets = append(sets, []string{c.Name})
	}
	sets = append(sets, []string{"cat", "grade"}, []string{"m2", "bin"})
	for _, names := range sets {
		got := decodeOpts(t, archive, DecompressOptions{Columns: names})
		if got.NumRows() != full.NumRows() {
			t.Fatalf("cols %v: %d rows, want %d", names, got.NumRows(), full.NumRows())
		}
		if got.Schema.NumColumns() != len(names) {
			t.Fatalf("cols %v: schema has %d columns", names, got.Schema.NumColumns())
		}
		// Output schema lists selected columns in archive order.
		want := map[string]bool{}
		for _, n := range names {
			want[n] = true
		}
		gi := 0
		for fi, c := range full.Schema.Columns {
			if !want[c.Name] {
				continue
			}
			if got.Schema.Columns[gi].Name != c.Name || got.Schema.Columns[gi].Type != c.Type {
				t.Fatalf("cols %v: schema[%d] = %+v, want %+v", names, gi, got.Schema.Columns[gi], c)
			}
			if err := columnEqual(full, got, fi, gi, 0); err != nil {
				t.Fatalf("cols %v: %v", names, err)
			}
			gi++
		}
	}
}

func TestDecompressProjectionFallbackColumns(t *testing.T) {
	// Fallback-heavy table: projections must work on columns that bypass the
	// model entirely, and on escape-heavy model columns.
	schema := dataset.NewSchema(
		dataset.Column{Name: "id", Type: dataset.Categorical},   // unique → fallback strings
		dataset.Column{Name: "skew", Type: dataset.Categorical}, // skewed → model + escapes
		dataset.Column{Name: "wild", Type: dataset.Numeric},     // t=0, many distinct → fallback floats
	)
	rows := 900
	tb := dataset.NewTable(schema, rows)
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < rows; i++ {
		skew := "common"
		if rng.Float64() < 0.04 {
			skew = fmt.Sprintf("rare-%d", rng.Intn(30))
		}
		tb.AppendRow([]string{fmt.Sprintf("id-%06d", i), skew}, []float64{rng.NormFloat64() * 1e6})
	}
	opts := quickOpts()
	opts.Preproc.MaxValueDictLen = 64
	res, err := Compress(tb, []float64{0, 0, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	full := decodeOpts(t, res.Archive, DecompressOptions{})
	for fi, c := range schema.Columns {
		got := decodeOpts(t, res.Archive, DecompressOptions{Columns: []string{c.Name}})
		if err := columnEqual(full, got, fi, 0, 0); err != nil {
			t.Fatalf("projection %q: %v", c.Name, err)
		}
	}
}

func TestDecompressRowRange(t *testing.T) {
	archive, _ := compressLatent(t, 700, 33, quickOpts())
	full := decodeOpts(t, archive, DecompressOptions{})
	for _, rr := range []RowRange{{0, 700}, {0, 1}, {699, 700}, {123, 456}, {350, 350}} {
		got := decodeOpts(t, archive, DecompressOptions{RowRange: rr})
		if got.NumRows() != rr.Hi-rr.Lo {
			t.Fatalf("range %v: %d rows", rr, got.NumRows())
		}
		for col := range full.Schema.Columns {
			if err := columnEqual(full, got, col, col, rr.Lo); err != nil {
				t.Fatalf("range %v: %v", rr, err)
			}
		}
	}
}

func TestDecompressRowRangeWithProjectionMoE(t *testing.T) {
	opts := quickOpts()
	opts.NumExperts = 3
	archive, _ := compressLatent(t, 800, 34, opts)
	full := decodeOpts(t, archive, DecompressOptions{})
	got := decodeOpts(t, archive, DecompressOptions{
		Columns:  []string{"bin", "m1"},
		RowRange: RowRange{Lo: 200, Hi: 500},
	})
	if got.NumRows() != 300 || got.Schema.NumColumns() != 2 {
		t.Fatalf("got %d rows × %d cols", got.NumRows(), got.Schema.NumColumns())
	}
	if err := columnEqual(full, got, 1, 0, 200); err != nil { // bin
		t.Fatal(err)
	}
	if err := columnEqual(full, got, 2, 1, 200); err != nil { // m1
		t.Fatal(err)
	}
}

func TestDecompressParallelDeterminism(t *testing.T) {
	opts := quickOpts()
	opts.NumExperts = 2
	archive, _ := compressLatent(t, 900, 35, opts)
	levels := []int{1, 2, 3, runtime.NumCPU()}
	var want []byte
	for _, p := range levels {
		got := decodeOpts(t, archive, DecompressOptions{Parallelism: p})
		var buf bytes.Buffer
		if err := got.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
		} else if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("parallelism %d decoded a different table than parallelism %d", p, levels[0])
		}
	}
}

func TestDecompressContextCancellation(t *testing.T) {
	archive, _ := compressLatent(t, 400, 36, quickOpts())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DecompressContext(ctx, archive, DecompressOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDecompressOptionErrors(t *testing.T) {
	archive, _ := compressLatent(t, 300, 37, quickOpts())
	cases := []struct {
		name string
		opts DecompressOptions
		want string
	}{
		{"unknown column", DecompressOptions{Columns: []string{"nope"}}, `unknown column "nope"`},
		{"empty selection", DecompressOptions{Columns: []string{}}, "no columns selected"},
		{"negative lo", DecompressOptions{RowRange: RowRange{Lo: -1, Hi: 5}}, "row range"},
		{"hi past end", DecompressOptions{RowRange: RowRange{Lo: 0, Hi: 301}}, "row range"},
		{"inverted", DecompressOptions{RowRange: RowRange{Lo: 20, Hi: 10}}, "row range"},
	}
	for _, c := range cases {
		_, err := DecompressContext(context.Background(), archive, c.opts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
		if errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: usage error misclassified as corruption: %v", c.name, err)
		}
	}
}

func TestDecompressMaxRows(t *testing.T) {
	archive, _ := compressLatent(t, 300, 38, quickOpts())
	_, err := DecompressContext(context.Background(), archive, DecompressOptions{MaxRows: 100})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if _, err := DecompressContext(context.Background(), archive, DecompressOptions{MaxRows: 300}); err != nil {
		t.Fatalf("MaxRows at the exact row count rejected: %v", err)
	}
}

func TestDecompressStagesReported(t *testing.T) {
	archive, _ := compressLatent(t, 500, 39, quickOpts())
	res, err := DecompressContext(context.Background(), archive, DecompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{"parse", "scan", "unpack", "resolve", "decode", "assemble"}
	if len(res.Stages) != len(wantStages) {
		t.Fatalf("got %d stages, want %d", len(res.Stages), len(wantStages))
	}
	for i, name := range wantStages {
		if res.Stages[i].Name != name {
			t.Fatalf("stage %d = %q, want %q", i, res.Stages[i].Name, name)
		}
	}
	if res.Stages[1].Bytes != 0 {
		t.Fatalf("full decode skipped %d bytes", res.Stages[1].Bytes)
	}
	// A projection must actually skip archive bytes (unselected failure
	// streams) — that is the point of being projection-aware.
	proj, err := DecompressContext(context.Background(), archive, DecompressOptions{Columns: []string{"cat"}})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Stages[1].Bytes == 0 {
		t.Fatal("projection skipped no archive bytes")
	}
}

func TestDecompressBatchContextProjection(t *testing.T) {
	train := latentTable(600, 40)
	st, model, err := NewStream(train, []float64{0, 0, 0.1, 0.1, 0}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	batchTable := latentTable(250, 41)
	bres, err := st.CompressBatch(batchTable)
	if err != nil {
		t.Fatal(err)
	}
	full, err := DecompressBatch(model.Archive, bres.Archive)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecompressBatchContext(context.Background(), model.Archive, bres.Archive,
		DecompressOptions{Columns: []string{"cat", "m2"}, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Table
	if got.Schema.NumColumns() != 2 || got.NumRows() != full.NumRows() {
		t.Fatalf("got %d rows × %d cols", got.NumRows(), got.Schema.NumColumns())
	}
	if err := columnEqual(full, got, 0, 0, 0); err != nil { // cat
		t.Fatal(err)
	}
	if err := columnEqual(full, got, 3, 1, 0); err != nil { // m2
		t.Fatal(err)
	}
	// A plain archive is not a batch, and a batch archive is not
	// self-contained: both directions must fail cleanly.
	if _, err := DecompressContext(context.Background(), bres.Archive, DecompressOptions{}); err == nil {
		t.Fatal("batch archive decompressed without its model")
	}
}
