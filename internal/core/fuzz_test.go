package core

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// refreshCRC rewrites the archive's CRC32-IEEE trailer so fuzz mutations of
// the body reach the parser instead of dying at the checksum gate. Inputs
// too short to carry a trailer pass through unchanged.
func refreshCRC(data []byte) []byte {
	if len(data) < 10 {
		return data
	}
	out := append([]byte(nil), data...)
	sum := crc32.ChecksumIEEE(out[:len(out)-4])
	binary.LittleEndian.PutUint32(out[len(out)-4:], sum)
	return out
}

// fuzzSeedArchives compresses a few tiny tables covering the format's
// branches: plain, mixture of experts, multi-group, empty — plus a frozen
// v1 golden fixture so mutations explore the legacy decode path too.
func fuzzSeedArchives(f *testing.F) [][]byte {
	f.Helper()
	opts := quickOpts()
	opts.Train.Epochs = 2
	var seeds [][]byte
	add := func(res *Result, err error) {
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, res.Archive)
	}
	add(Compress(latentTable(60, 51), []float64{0, 0, 0.1, 0.1, 0}, opts))
	moe := opts
	moe.NumExperts = 2
	add(Compress(latentTable(80, 52), []float64{0, 0, 0, 0, 0}, moe))
	add(Compress(latentTable(0, 53), []float64{0, 0, 0.1, 0.1, 0}, opts))
	grouped := opts
	grouped.RowGroupSize = 25
	add(Compress(latentTable(60, 54), []float64{0, 0, 0.1, 0.1, 0}, grouped))
	f32 := opts
	f32.Float32Decode = true
	add(Compress(latentTable(60, 55), []float64{0, 0, 0.1, 0.1, 0}, f32))
	// A skewed categorical table range-codes its failure streams, so
	// mutations reach the range-frame decoder (headers, CPT tables, coder
	// body) rather than only the stored/DEFLATE paths.
	add(Compress(skewedCatTable(120, 56), []float64{0, 0, 0.05, 0}, opts))
	// A residual-digit archive exposes the multi-chunk column layout and the
	// per-digit rank validation to mutations.
	res := opts
	res.Preproc.ResidualCats = true
	res.Preproc.MaxModelCardinality = 8 // force residual; 70 values → 2 digits
	add(Compress(clickTable(200, 70, 57), []float64{0, 0, 0.1}, res))
	v1, err := os.ReadFile(filepath.Join("testdata", "categorical.dsqz"))
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, v1)
	return seeds
}

// FuzzDecompress feeds mutated archives (with a refreshed checksum, so the
// mutation penetrates past the CRC) to the full decompression pipeline. The
// invariant: any input either decodes or fails with an ErrCorrupt-classified
// error — never a panic, and never an unclassified error. MaxRows caps
// row-proportional allocation so the fuzzer cannot claim OOMs as crashes.
func FuzzDecompress(f *testing.F) {
	for _, a := range fuzzSeedArchives(f) {
		f.Add(a)
	}
	f.Add([]byte{})
	f.Add([]byte("DSQZ\x01\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		archive := refreshCRC(data)
		// The footer/zone-map index walker shares the invariant: decode or
		// ErrCorrupt, never a panic. (The compressed seeds carry a stats
		// chunk — zone maps are on by default — so mutations reach the
		// stats parser too.)
		if _, err := ReadIndex(archive); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unclassified index error: %v", err)
		}
		res, err := DecompressContext(context.Background(), archive,
			DecompressOptions{MaxRows: 4096, Parallelism: 2})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified error: %v", err)
			}
			return
		}
		if res.Table.NumRows() > 4096 {
			t.Fatalf("decoded %d rows past the MaxRows cap", res.Table.NumRows())
		}
	})
}

// FuzzSectionReader drives the low-level chunk walker over arbitrary bytes:
// a mix of chunk reads and skips (chosen by the ops byte string) must never
// panic, never read past the buffer, and fail only with ErrCorrupt.
func FuzzSectionReader(f *testing.F) {
	for _, a := range fuzzSeedArchives(f) {
		f.Add(a, []byte{0, 1, 0, 1, 0, 1})
	}
	f.Add([]byte("DSQZ\x01\x00\x00\x00\x00\x00"), []byte{1, 1})
	f.Fuzz(func(t *testing.T, data, ops []byte) {
		archive := refreshCRC(data)
		r, _, _, err := newSectionReader(archive)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified envelope error: %v", err)
			}
			return
		}
		for _, op := range ops {
			if op%2 == 0 {
				c, err := r.chunk()
				if err != nil {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("unclassified chunk error: %v", err)
					}
					return
				}
				if len(c) > len(archive) {
					t.Fatalf("chunk of %d bytes from a %d-byte archive", len(c), len(archive))
				}
			} else {
				n, err := r.skip()
				if err != nil {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("unclassified skip error: %v", err)
					}
					return
				}
				if n < 0 || n > int64(len(archive)) {
					t.Fatalf("skip reported %d bytes", n)
				}
			}
		}
		if err := r.done(); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unclassified done error: %v", err)
		}
	})
}
