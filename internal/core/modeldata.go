package core

import (
	"fmt"

	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/mat"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/preprocess"
)

// layout classifies every schema column and derives the model column specs.
// It is a pure function of the preprocessing plan, so the decompressor
// reconstructs the identical layout from the archived plan.
type layout struct {
	specs     []nn.ColSpec
	specCols  []int // spec index → schema column
	specDigit []int // spec index → residual digit index (0 for non-residual)
	specOfCol []int // schema column → first spec index, -1 if not a model column

	trivialCols  []int // in-model columns with ModelCard ≤ 1: always predicted 0
	fallbackCols []int // stored directly through the columnar format
}

// planHasResidual reports whether any column travels as residual digits.
func planHasResidual(plan *preprocess.Plan) bool {
	for i := range plan.Cols {
		if plan.Cols[i].Kind == preprocess.KindCatResidual {
			return true
		}
	}
	return false
}

// isTrivial reports whether an in-model column needs no prediction.
func isTrivial(cp *preprocess.ColPlan) bool {
	switch cp.Kind {
	case preprocess.KindCatModel, preprocess.KindNumQuant, preprocess.KindNumDict:
		return cp.ModelCard <= 1
	default:
		return false
	}
}

// deriveLayout classifies the plan's columns.
func deriveLayout(plan *preprocess.Plan) (*layout, error) {
	lo := &layout{specOfCol: make([]int, len(plan.Cols))}
	for i := range lo.specOfCol {
		lo.specOfCol[i] = -1
	}
	for col := range plan.Cols {
		cp := &plan.Cols[col]
		switch cp.Kind {
		case preprocess.KindFallbackCat, preprocess.KindFallbackNum:
			lo.fallbackCols = append(lo.fallbackCols, col)
			continue
		case preprocess.KindNumContinuous:
			lo.specOfCol[col] = len(lo.specs)
			lo.specCols = append(lo.specCols, col)
			lo.specDigit = append(lo.specDigit, 0)
			lo.specs = append(lo.specs, nn.ColSpec{Kind: nn.OutNumeric})
			continue
		case preprocess.KindCatResidual:
			// One small softmax head per residual digit: the column spans
			// ResDigits consecutive specs, each over a base-ModelCard
			// alphabet. specOfCol points at the first digit's spec.
			lo.specOfCol[col] = len(lo.specs)
			for d := 0; d < cp.ResDigits; d++ {
				lo.specCols = append(lo.specCols, col)
				lo.specDigit = append(lo.specDigit, d)
				lo.specs = append(lo.specs, nn.ColSpec{Kind: nn.OutCategorical, Card: cp.ModelCard})
			}
			continue
		}
		if isTrivial(cp) {
			lo.trivialCols = append(lo.trivialCols, col)
			continue
		}
		lo.specOfCol[col] = len(lo.specs)
		lo.specCols = append(lo.specCols, col)
		lo.specDigit = append(lo.specDigit, 0)
		switch cp.Kind {
		case preprocess.KindCatModel:
			lo.specs = append(lo.specs, nn.ColSpec{Kind: nn.OutCategorical, Card: cp.ModelCard})
		case preprocess.KindBinary:
			lo.specs = append(lo.specs, nn.ColSpec{Kind: nn.OutBinary})
		case preprocess.KindNumQuant, preprocess.KindNumDict:
			lo.specs = append(lo.specs, nn.ColSpec{Kind: nn.OutNumeric})
		default:
			return nil, fmt.Errorf("core: unexpected column kind %v", cp.Kind)
		}
	}
	return lo, nil
}

// modelData is the compression-side bundle: the layout plus the encoded
// table, model inputs, and training targets.
type modelData struct {
	*layout
	plan *preprocess.Plan
	rows int

	codes    map[int][]int     // integer codes for every discrete in-model column (incl. trivial)
	contVals map[int][]float64 // scaled values for KindNumContinuous columns

	x       *mat.Matrix
	targets *nn.Targets
}

// buildModelData encodes the table against the plan and assembles model
// inputs and targets.
func buildModelData(t *dataset.Table, plan *preprocess.Plan) (*modelData, error) {
	lo, err := deriveLayout(plan)
	if err != nil {
		return nil, err
	}
	md := &modelData{
		layout:   lo,
		plan:     plan,
		rows:     t.NumRows(),
		codes:    make(map[int][]int),
		contVals: make(map[int][]float64),
	}
	for col := range plan.Cols {
		cp := &plan.Cols[col]
		switch cp.Kind {
		case preprocess.KindFallbackCat, preprocess.KindFallbackNum:
			// stored directly
		case preprocess.KindNumContinuous:
			md.contVals[col] = plan.ScaleColumn(t, col)
		default:
			cc, err := plan.Encode(t, col)
			if err != nil {
				return nil, err
			}
			md.codes[col] = cc
		}
	}
	md.buildTensors()
	return md, nil
}

// levels returns the number of discrete levels an OutNumeric model column
// regresses over (bucket count or value-dict size); 0 for continuous.
func levels(cp *preprocess.ColPlan) int {
	switch cp.Kind {
	case preprocess.KindNumQuant:
		return cp.Quant.NumBucket
	case preprocess.KindNumDict:
		return cp.VDict.Len()
	default:
		return 0
	}
}

// buildTensors fills x and targets for the full table.
func (md *modelData) buildTensors() {
	nSpec := len(md.specs)
	md.x = mat.New(md.rows, nSpec)
	var numCols, binCols, catCols int
	for _, s := range md.specs {
		switch s.Kind {
		case nn.OutNumeric:
			numCols++
		case nn.OutBinary:
			binCols++
		case nn.OutCategorical:
			catCols++
		}
	}
	md.targets = &nn.Targets{
		Num: mat.New(md.rows, numCols),
		Bin: mat.New(md.rows, binCols),
		Cat: make([][]int, catCols),
	}
	for j := range md.targets.Cat {
		md.targets.Cat[j] = make([]int, md.rows)
	}
	ni, bi, ci := 0, 0, 0
	for si, s := range md.specs {
		col := md.specCols[si]
		cp := &md.plan.Cols[col]
		switch s.Kind {
		case nn.OutNumeric:
			if cp.Kind == preprocess.KindNumContinuous {
				vals := md.contVals[col]
				for r := 0; r < md.rows; r++ {
					md.x.Set(r, si, vals[r])
					md.targets.Num.Set(r, ni, vals[r])
				}
			} else {
				cc := md.codes[col]
				for r := 0; r < md.rows; r++ {
					v := md.plan.InputValue(col, cc[r])
					md.x.Set(r, si, v)
					md.targets.Num.Set(r, ni, v)
				}
			}
			ni++
		case nn.OutBinary:
			cc := md.codes[col]
			for r := 0; r < md.rows; r++ {
				md.x.Set(r, si, float64(cc[r]))
				md.targets.Bin.Set(r, bi, float64(cc[r]))
			}
			bi++
		case nn.OutCategorical:
			cc := md.codes[col]
			tgt := md.targets.Cat[ci]
			if cp.Kind == preprocess.KindCatResidual {
				// This spec is one residual digit of the column's rank.
				// Digits are always in [0, Base), so no training mask.
				l := cp.ResLayout()
				d := md.specDigit[si]
				denom := float64(l.Base - 1)
				for r := 0; r < md.rows; r++ {
					dig := l.Digit(cc[r], d)
					if denom > 0 {
						md.x.Set(r, si, float64(dig)/denom)
					}
					tgt[r] = dig
				}
			} else {
				for r := 0; r < md.rows; r++ {
					md.x.Set(r, si, md.plan.InputValue(col, cc[r]))
					if cc[r] < s.Card {
						tgt[r] = cc[r]
					} else {
						tgt[r] = -1 // rare value: masked from training
					}
				}
			}
			ci++
		}
	}
}

// sampleRows returns the tensors restricted to the given row indexes.
func (md *modelData) sampleRows(idx []int) (*mat.Matrix, *nn.Targets) {
	x := mat.New(len(idx), md.x.Cols)
	for i, r := range idx {
		copy(x.Row(i), md.x.Row(r))
	}
	tg := &nn.Targets{
		Num: mat.New(len(idx), md.targets.Num.Cols),
		Bin: mat.New(len(idx), md.targets.Bin.Cols),
		Cat: make([][]int, len(md.targets.Cat)),
	}
	for i, r := range idx {
		copy(tg.Num.Row(i), md.targets.Num.Row(r))
		copy(tg.Bin.Row(i), md.targets.Bin.Row(r))
	}
	for j, col := range md.targets.Cat {
		sub := make([]int, len(idx))
		for i, r := range idx {
			sub[i] = col[r]
		}
		tg.Cat[j] = sub
	}
	return x, tg
}
