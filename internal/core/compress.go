package core

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"deepsqueeze/internal/codec"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/kmeans"
	"deepsqueeze/internal/mat"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/pipeline"
	"deepsqueeze/internal/preprocess"
)

// Compress runs the full DeepSqueeze pipeline on t. thresholds supplies the
// per-column relative error bounds (0 = lossless; ignored for categorical
// columns). The returned archive is self-contained.
func Compress(t *dataset.Table, thresholds []float64, opts Options) (*Result, error) {
	return CompressContext(context.Background(), t, thresholds, opts)
}

// CompressContext is Compress with cancellation: the pipeline checks ctx
// between stages, between parallel work items, and between training batches,
// and returns ctx.Err() promptly once the context is done.
func CompressContext(ctx context.Context, t *dataset.Table, thresholds []float64, opts Options) (*Result, error) {
	res, _, _, err := compress(ctx, nil, t, thresholds, opts)
	return res, err
}

// compress is the staged pipeline behind Compress, plus handles on the
// trained experts and model data, which the streaming path (stream.go)
// reuses across batches. pool may be nil (a fresh pool sized by
// opts.Parallelism); the tuner passes a shared pool so concurrent trials
// never oversubscribe the machine.
func compress(ctx context.Context, pool *pipeline.Pool, t *dataset.Table, thresholds []float64,
	opts Options) (*Result, []*nn.Autoencoder, *modelData, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, nil, err
	}
	if pool == nil {
		pool = pipeline.NewPool(opts.Parallelism)
	}
	run := pipeline.NewWithPool(ctx, pool)

	var md *modelData
	err := run.Stage("preprocess", func() error {
		popts := opts.Preproc
		popts.NoQuantization = popts.NoQuantization || opts.NoQuantization
		plan, err := preprocess.Fit(t, popts, thresholds)
		if err != nil {
			return err
		}
		md, err = buildModelData(t, plan)
		return err
	})
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	hasModel := len(md.specs) > 0 && md.rows > 0
	numExperts := opts.NumExperts
	if !hasModel || numExperts > md.rows {
		numExperts = 1
	}

	var experts []*nn.Autoencoder
	assign := make([]int, md.rows)
	var hist []float64
	if hasModel {
		err := run.Stage("train", func() error {
			var err error
			experts, assign, hist, err = trainModel(run, rng, md, numExperts, opts)
			if err != nil {
				return err
			}
			for _, ae := range experts {
				ae.Decoder.Quantize32()
			}
			return nil
		})
		if err != nil {
			return nil, nil, nil, err
		}
	}
	res, err := materialize(run, t, md, opts, experts, assign, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	res.TrainHistory = hist
	res.Stages = run.Stats()
	return res, experts, md, nil
}

// materialize runs the post-training half of the pipeline as stages over
// run: codes, the truncation search, failures, mapping choice, and archive
// assembly. experts must already be float32-quantized. When ext is non-nil
// the archive references an external model (streaming batch archives)
// instead of embedding the decoders.
func materialize(run *pipeline.Run, t *dataset.Table, md *modelData, opts Options,
	experts []*nn.Autoencoder, assign []int, ext *externalModelRef) (*Result, error) {
	hasModel := len(experts) > 0
	numExperts := len(experts)
	if numExperts == 0 {
		numExperts = 1
	}
	res := &Result{}
	origNum := make(map[int][]float64)
	for col := range md.contVals {
		origNum[col] = t.Num[col]
	}

	var decoders []*nn.Decoder
	var decs32 []*nn.Decoder32
	var codesF *mat.Matrix
	if hasModel {
		decoders = make([]*nn.Decoder, numExperts)
		for e, ae := range experts {
			decoders[e] = &ae.Decoder
		}
		if opts.Float32Decode {
			// The archive will carry flagFloat32, so the stored corrections
			// must be computed against the same float32 inference the decoder
			// side will replay.
			decs32 = nn.Decoders32(decoders)
		}
		err := run.Stage("encode", func() error {
			var err error
			codesF, err = encodeCodes(run, experts, assign, md.x)
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	res.ExpertUse = make([]int, numExperts)
	for _, e := range assign {
		res.ExpertUse[e]++
	}
	// The codec mask shapes every size objective below (truncation search,
	// mapping choice) as well as the final assembly, so the decisions optimize
	// the bytes the archive will actually contain.
	cmask := opts.codecMask()

	// Row groups: every archive section is segmented at these span
	// boundaries, so the stored order must keep each group's rows
	// contiguous — expert grouping happens within each span.
	spans := rowGroupSpans(md.rows, opts.rowGroupSize())

	// Stored order: grouped by expert when it pays, original otherwise.
	identity := make([]int, md.rows)
	for i := range identity {
		identity[i] = i
	}
	grouped := identity
	if numExperts > 1 {
		grouped = groupedPermSpans(assign, spans)
	}

	// Iterative code truncation (paper §6.2): evaluate byte-step widths and
	// keep the one minimizing codes+failures. Every candidate width is an
	// independent quantize→failures→size pass, so the candidates run
	// concurrently over the pool and the winner is picked deterministically
	// in candidate order afterwards.
	var bestFS *failureSet
	var bestDims [][]int64
	bestBits := 0
	if hasModel {
		cand := []int{8, 16, 24, 32}
		if opts.CodeBits != 0 {
			cand = []int{opts.CodeBits}
		}
		storedCodes := permuteRows(codesF, grouped)
		type candidate struct {
			dims [][]int64
			fs   *failureSet
			size int64
		}
		results := make([]candidate, len(cand))
		err := run.StageBytes("truncation-search", func() (int64, error) {
			err := run.ForEach(len(cand), func(i int) error {
				dims, rec := quantizeCodes(storedCodes, cand[i])
				fs, err := computeFailures(run, md, origNum, decoders, decs32, assign, rec, grouped)
				if err != nil {
					return err
				}
				size, err := packedSize(run, fs, dims, cmask)
				if err != nil {
					return err
				}
				results[i] = candidate{dims, fs, size}
				return nil
			})
			if err != nil {
				return 0, err
			}
			bestSize := int64(math.MaxInt64)
			for i, bits := range cand {
				opts.logf("truncation search: %d-bit codes → %d bytes (codes+failures)", bits, results[i].size)
				if results[i].size < bestSize {
					bestSize, bestBits, bestDims, bestFS = results[i].size, bits, results[i].dims, results[i].fs
				}
			}
			return bestSize, nil
		})
		if err != nil {
			return nil, err
		}
	}
	res.CodeBits = bestBits
	if bestFS == nil {
		// Model-less archive (all columns trivial or fallback, or empty
		// table): failure streams exist but are empty.
		bestFS = &failureSet{
			ints:       make(map[int][]int64),
			resInts:    make(map[int][][]int64),
			exceptions: make(map[int][]int64),
			contMask:   make(map[int][]int64),
			contVals:   make(map[int][]float64),
		}
		for si, col := range md.specCols {
			cp := &md.plan.Cols[col]
			switch cp.Kind {
			case preprocess.KindNumContinuous:
				bestFS.contMask[col] = []int64{}
			case preprocess.KindCatResidual:
				if bestFS.resInts[col] == nil {
					bestFS.resInts[col] = make([][]int64, cp.ResDigits)
				}
				bestFS.resInts[col][md.specDigit[si]] = []int64{}
			default:
				bestFS.ints[col] = []int64{}
			}
		}
	}

	// Expert mapping (paper §6.4): grouped storage with delta-coded indexes
	// versus per-tuple labels — pick the smaller. Without KeepRowOrder the
	// grouped form needs no indexes at all.
	perm := grouped
	groupedMapping := true
	if numExperts > 1 && hasModel && opts.KeepRowOrder {
		err := run.Stage("mapping", func() error {
			groupedCost := mappingCost(assign, grouped, spans, numExperts, true, true, cmask)
			labelsCost := mappingCost(assign, identity, spans, numExperts, false, true, cmask)
			identCodes := permuteRows(codesF, identity)
			dimsI, recI := quantizeCodes(identCodes, bestBits)
			fsI, err := computeFailures(run, md, origNum, decoders, decs32, assign, recI, identity)
			if err != nil {
				return err
			}
			sizeI, err := packedSize(run, fsI, dimsI, cmask)
			if err != nil {
				return err
			}
			sizeG, err := packedSize(run, bestFS, bestDims, cmask)
			if err != nil {
				return err
			}
			opts.logf("mapping: grouped %d+%d vs labels %d+%d bytes",
				sizeG, groupedCost, sizeI, labelsCost)
			if sizeI+labelsCost < sizeG+groupedCost {
				perm, groupedMapping = identity, false
				bestFS, bestDims = fsI, dimsI
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else if numExperts <= 1 {
		perm, groupedMapping = identity, false
	}

	codeSize := 0
	if hasModel {
		codeSize = experts[0].CodeSize
	}
	var archive []byte
	var bd Breakdown
	err := run.StageBytes("assemble", func() (int64, error) {
		var err error
		archive, bd, err = assembleArchive(run, t, md, opts, archiveState{
			decoders: decoders,
			codeDims: bestDims,
			codeBits: bestBits,
			codeSize: codeSize,
			fs:       bestFS,
			perm:     perm,
			assign:   assign,
			grouped:  groupedMapping,
			experts:  numExperts,
			spans:    spans,
			ext:      ext,
		})
		return int64(len(archive)), err
	})
	if err != nil {
		return nil, err
	}
	res.Archive = archive
	res.Breakdown = bd
	return res, nil
}

// trainModel builds and fits the model under the selected partitioning.
// Training honors the run's cancellation between batches.
func trainModel(run *pipeline.Run, rng *rand.Rand, md *modelData, numExperts int,
	opts Options) ([]*nn.Autoencoder, []int, []float64, error) {
	trainX, trainTG := md.x, md.targets
	if opts.TrainSampleRows > 0 && opts.TrainSampleRows < md.rows {
		idx := rng.Perm(md.rows)[:opts.TrainSampleRows]
		sort.Ints(idx)
		trainX, trainTG = md.sampleRows(idx)
	}
	cfg := nn.Config{CodeSize: opts.CodeSize, HiddenMult: 2, SingleLayerLinear: opts.SingleLayerLinear}

	if opts.Partition == PartitionKMeans && numExperts > 1 {
		return trainKMeans(run, rng, md, trainX, trainTG, cfg, numExperts, opts)
	}
	moe, err := nn.NewMoE(rng, md.specs, cfg, numExperts)
	if err != nil {
		return nil, nil, nil, err
	}
	topts := trainOptions(run, opts)
	if opts.Verbose != nil {
		prev := topts.Progress
		topts.Progress = func(epoch int, loss float64) {
			opts.logf("epoch %d: loss %.5f", epoch, loss)
			if prev != nil {
				prev(epoch, loss)
			}
		}
	}
	hist := moe.Train(rng, trainX, trainTG, topts)
	if err := run.Err(); err != nil {
		return nil, nil, nil, err
	}
	assign := moe.Assign(md.x, md.targets)
	return moe.Experts, assign, hist, nil
}

// trainOptions wires the run's cancellation and worker pool into the
// training loop. Training shards minibatches across the run's parallelism by
// default (Options.Train.Workers overrides); because the sharded math is
// bit-identical at every worker count, this changes throughput only, never
// archive bytes.
func trainOptions(run *pipeline.Run, opts Options) nn.TrainOptions {
	topts := opts.Train
	topts.Stop = func() bool { return run.Err() != nil }
	if topts.Workers == 0 {
		topts.Workers = run.Parallelism()
	}
	if topts.Pool == nil {
		topts.Pool = run.Pool()
	}
	return topts
}

// trainKMeans implements the Fig. 8 baseline: k-means partitions the data
// and one autoencoder is trained per cluster. Per-expert training is
// independent, so experts train concurrently over the pool, each from a
// seed pre-drawn from rng so results are identical at every parallelism
// level.
func trainKMeans(run *pipeline.Run, rng *rand.Rand, md *modelData, trainX *mat.Matrix, trainTG *nn.Targets,
	cfg nn.Config, k int, opts Options) ([]*nn.Autoencoder, []int, []float64, error) {
	km, err := kmeans.Run(rng, trainX, k, 25)
	if err != nil {
		return nil, nil, nil, err
	}
	k = km.Centroids.Rows
	// One grouped pass over the assignment, then one seed per expert drawn
	// sequentially before the fan-out.
	idxByCluster := make([][]int, k)
	for r, a := range km.Assign {
		idxByCluster[a] = append(idxByCluster[a], r)
	}
	seeds := make([]int64, k)
	for e := range seeds {
		seeds[e] = rng.Int63()
	}
	experts := make([]*nn.Autoencoder, k)
	hists := make([][]float64, k)
	err = run.ForEach(k, func(e int) error {
		erng := rand.New(rand.NewSource(seeds[e]))
		single, err := nn.NewMoE(erng, md.specs, cfg, 1)
		if err != nil {
			return err
		}
		if idx := idxByCluster[e]; len(idx) > 0 {
			sx := mat.New(len(idx), trainX.Cols)
			for i, r := range idx {
				copy(sx.Row(i), trainX.Row(r))
			}
			stg := subsetTargets(trainTG, idx)
			hists[e] = single.Train(erng, sx, stg, trainOptions(run, opts))
		}
		experts[e] = single.Experts[0]
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var hist []float64
	for _, h := range hists {
		hist = append(hist, h...)
	}
	// Full-data assignment: nearest centroid, as a clustering deployment
	// would route tuples. Chunked over rows; chunk boundaries are fixed so
	// the (disjoint) writes are parallelism-independent.
	assign := make([]int, md.rows)
	err = run.ForEachChunk(md.rows, 2048, func(lo, hi int) error {
		for r := lo; r < hi; r++ {
			row := md.x.Row(r)
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				var d float64
				for j, v := range row {
					diff := v - km.Centroids.At(c, j)
					d += diff * diff
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			assign[r] = best
		}
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return experts, assign, hist, nil
}

func subsetTargets(tg *nn.Targets, idx []int) *nn.Targets {
	out := &nn.Targets{
		Num: mat.New(len(idx), tg.Num.Cols),
		Bin: mat.New(len(idx), tg.Bin.Cols),
		Cat: make([][]int, len(tg.Cat)),
	}
	for i, r := range idx {
		copy(out.Num.Row(i), tg.Num.Row(r))
		copy(out.Bin.Row(i), tg.Bin.Row(r))
	}
	for j, col := range tg.Cat {
		sub := make([]int, len(idx))
		for i, r := range idx {
			sub[i] = col[r]
		}
		out.Cat[j] = sub
	}
	return out
}

// encodeBatchRows is the chunk size per encoder matmul.
const encodeBatchRows = 4096

// encodeCodes maps every tuple through its assigned expert's encoder.
// Experts encode concurrently over the pool into disjoint rows of the
// output; within an expert, one scratch batch matrix is reused across
// chunks, and the expert→rows index is built in a single grouped pass
// instead of rescanning assign per expert.
func encodeCodes(run *pipeline.Run, experts []*nn.Autoencoder, assign []int, x *mat.Matrix) (*mat.Matrix, error) {
	codeSize := experts[0].CodeSize
	out := mat.New(x.Rows, codeSize)
	rowsByExpert := make([][]int, len(experts))
	for r, a := range assign {
		rowsByExpert[a] = append(rowsByExpert[a], r)
	}
	err := run.ForEach(len(experts), func(e int) error {
		rows := rowsByExpert[e]
		if len(rows) == 0 {
			return nil
		}
		ae := experts[e]
		scratch := make([]float64, min(encodeBatchRows, len(rows))*x.Cols)
		for lo := 0; lo < len(rows); lo += encodeBatchRows {
			if err := run.Err(); err != nil {
				return err
			}
			chunk := rows[lo:min(lo+encodeBatchRows, len(rows))]
			sub := mat.FromSlice(len(chunk), x.Cols, scratch[:len(chunk)*x.Cols])
			for i, r := range chunk {
				copy(sub.Row(i), x.Row(r))
			}
			codes := ae.Encode(sub)
			for i, r := range chunk {
				copy(out.Row(r), codes.Row(i))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// groupedPerm returns original row indexes sorted by (expert, row) — the
// stored order for grouped mapping.
func groupedPerm(assign []int) []int {
	return groupedPermSpans(assign, []rowSpan{{0, len(assign)}})
}

// groupedPermSpans is groupedPerm restricted to row-group boundaries: rows
// are expert-sorted within each span, so every group's rows stay contiguous
// in stored order and each segment can slice the global streams cleanly.
func groupedPermSpans(assign []int, spans []rowSpan) []int {
	perm := make([]int, len(assign))
	for i := range perm {
		perm[i] = i
	}
	for _, sp := range spans {
		seg := perm[sp.start : sp.start+sp.count]
		sort.SliceStable(seg, func(a, b int) bool { return assign[seg[a]] < assign[seg[b]] })
	}
	return perm
}

// permuteRows returns m reordered so row s of the result is row perm[s].
func permuteRows(m *mat.Matrix, perm []int) *mat.Matrix {
	out := mat.New(m.Rows, m.Cols)
	for s, orig := range perm {
		copy(out.Row(s), m.Row(orig))
	}
	return out
}

// mappingCost totals the exact per-group mapping chunk sizes a stored order
// would produce — the objective of the grouped-vs-labels decision.
func mappingCost(assign, perm []int, spans []rowSpan, numExperts int, grouped, keepOrder bool, mask codec.Mask) int64 {
	var total int64
	for _, sp := range spans {
		mb := buildMappingChunk(assign, perm[sp.start:sp.start+sp.count], sp.start, numExperts, grouped, keepOrder, mask)
		total += int64(len(mb))
	}
	return total
}

// compressDecoderSection frames the serialized decoders (paper §6.1) with
// the byte codecs: a stored/DEFLATE frame, kept compressed only when it
// pays. Earlier releases gzipped this section; the raw-flate frame saves the
// gzip header and trailer and shares the codec layer's decode hardening.
func compressDecoderSection(b []byte) []byte {
	return codec.CompressBytes(b, codec.ByteOnly)
}

// inflateDecoderSection inverts compressDecoderSection, still reading the
// legacy gzip form older archives carry. gzip's 2-byte magic (0x1f 0x8b)
// cannot collide with a codec frame, whose first byte is a tag < 2.
func inflateDecoderSection(b []byte) ([]byte, error) {
	if len(b) >= 2 && b[0] == 0x1f && b[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(b))
		if err != nil {
			return nil, fmt.Errorf("%w: decoder section: %v", ErrCorrupt, err)
		}
		out, err := io.ReadAll(io.LimitReader(zr, codec.MaxInflatedBytes+1))
		if err != nil {
			return nil, fmt.Errorf("%w: decoder section: %v", ErrCorrupt, err)
		}
		if len(out) > codec.MaxInflatedBytes {
			return nil, fmt.Errorf("%w: decoder section exceeds %d bytes", ErrCorrupt, codec.MaxInflatedBytes)
		}
		return out, zr.Close()
	}
	out, err := codec.DecompressBytes(b)
	if err != nil {
		return nil, fmt.Errorf("%w: decoder section: %v", ErrCorrupt, err)
	}
	return out, nil
}
