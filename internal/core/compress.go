package core

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"deepsqueeze/internal/colfile"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/kmeans"
	"deepsqueeze/internal/mat"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/preprocess"
)

// Compress runs the full DeepSqueeze pipeline on t. thresholds supplies the
// per-column relative error bounds (0 = lossless; ignored for categorical
// columns). The returned archive is self-contained.
func Compress(t *dataset.Table, thresholds []float64, opts Options) (*Result, error) {
	res, _, _, err := compress(t, thresholds, opts)
	return res, err
}

// compress is Compress plus handles on the trained experts and model data,
// which the streaming path (stream.go) reuses across batches.
func compress(t *dataset.Table, thresholds []float64, opts Options) (*Result, []*nn.Autoencoder, *modelData, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, nil, err
	}
	popts := opts.Preproc
	popts.NoQuantization = popts.NoQuantization || opts.NoQuantization
	plan, err := preprocess.Fit(t, popts, thresholds)
	if err != nil {
		return nil, nil, nil, err
	}
	md, err := buildModelData(t, plan)
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	hasModel := len(md.specs) > 0 && md.rows > 0
	numExperts := opts.NumExperts
	if !hasModel || numExperts > md.rows {
		numExperts = 1
	}

	var experts []*nn.Autoencoder
	assign := make([]int, md.rows)
	var hist []float64
	if hasModel {
		experts, assign, hist, err = trainModel(rng, md, numExperts, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, ae := range experts {
			ae.Decoder.Quantize32()
		}
	}
	res, err := materialize(t, md, opts, experts, assign, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	res.TrainHistory = hist
	return res, experts, md, nil
}

// materialize runs the post-training half of the pipeline: codes, the
// truncation search, failures, mapping choice, and archive assembly.
// experts must already be float32-quantized. When ext is non-nil the
// archive references an external model (streaming batch archives) instead
// of embedding the decoders.
func materialize(t *dataset.Table, md *modelData, opts Options,
	experts []*nn.Autoencoder, assign []int, ext *externalModelRef) (*Result, error) {
	hasModel := len(experts) > 0
	numExperts := len(experts)
	if numExperts == 0 {
		numExperts = 1
	}
	res := &Result{}
	origNum := make(map[int][]float64)
	for col := range md.contVals {
		origNum[col] = t.Num[col]
	}

	var decoders []*nn.Decoder
	var codesF *mat.Matrix
	if hasModel {
		decoders = make([]*nn.Decoder, numExperts)
		for e, ae := range experts {
			decoders[e] = &ae.Decoder
		}
		codesF = encodeCodes(experts, assign, md.x)
	}
	res.ExpertUse = make([]int, numExperts)
	for _, e := range assign {
		res.ExpertUse[e]++
	}

	// Stored order: grouped by expert when it pays, original otherwise.
	identity := make([]int, md.rows)
	for i := range identity {
		identity[i] = i
	}
	grouped := identity
	if numExperts > 1 {
		grouped = groupedPerm(assign)
	}

	// Iterative code truncation (paper §6.2): evaluate byte-step widths and
	// keep the one minimizing codes+failures.
	var bestFS *failureSet
	var bestDims [][]int64
	bestBits := 0
	if hasModel {
		cand := []int{8, 16, 24, 32}
		if opts.CodeBits != 0 {
			cand = []int{opts.CodeBits}
		}
		storedCodes := permuteRows(codesF, grouped)
		bestSize := int64(math.MaxInt64)
		for _, bits := range cand {
			dims, rec := quantizeCodes(storedCodes, bits)
			fs := computeFailures(md, origNum, decoders, assign, rec, grouped)
			size := packedSize(fs, dims)
			opts.logf("truncation search: %d-bit codes → %d bytes (codes+failures)", bits, size)
			if size < bestSize {
				bestSize, bestBits, bestDims, bestFS = size, bits, dims, fs
			}
		}
	}
	res.CodeBits = bestBits
	if bestFS == nil {
		// Model-less archive (all columns trivial or fallback, or empty
		// table): failure streams exist but are empty.
		bestFS = &failureSet{
			ints:       make(map[int][]int64),
			exceptions: make(map[int][]int64),
			contMask:   make(map[int][]int64),
			contVals:   make(map[int][]float64),
		}
		for _, col := range md.specCols {
			if md.plan.Cols[col].Kind == preprocess.KindNumContinuous {
				bestFS.contMask[col] = []int64{}
			} else {
				bestFS.ints[col] = []int64{}
			}
		}
	}

	// Expert mapping (paper §6.4): grouped storage with delta-coded indexes
	// versus per-tuple labels — pick the smaller. Without KeepRowOrder the
	// grouped form needs no indexes at all.
	perm := grouped
	groupedMapping := true
	if numExperts > 1 && hasModel && opts.KeepRowOrder {
		groupedCost := mappingGroupedSize(assign, grouped, numExperts)
		labels := make([]int64, md.rows)
		for i, e := range assign {
			labels[i] = int64(e)
		}
		labelsCost := int64(len(colfile.PackInts(labels)))
		identCodes := permuteRows(codesF, identity)
		dimsI, recI := quantizeCodes(identCodes, bestBits)
		fsI := computeFailures(md, origNum, decoders, assign, recI, identity)
		sizeI := packedSize(fsI, dimsI)
		sizeG := packedSize(bestFS, bestDims)
		opts.logf("mapping: grouped %d+%d vs labels %d+%d bytes",
			sizeG, groupedCost, sizeI, labelsCost)
		if sizeI+labelsCost < sizeG+groupedCost {
			perm, groupedMapping = identity, false
			bestFS, bestDims = fsI, dimsI
		}
	} else if numExperts <= 1 {
		perm, groupedMapping = identity, false
	}

	codeSize := 0
	if hasModel {
		codeSize = experts[0].CodeSize
	}
	archive, bd, err := assembleArchive(t, md, opts, archiveState{
		decoders: decoders,
		codeDims: bestDims,
		codeBits: bestBits,
		codeSize: codeSize,
		fs:       bestFS,
		perm:     perm,
		assign:   assign,
		grouped:  groupedMapping,
		experts:  numExperts,
		ext:      ext,
	})
	if err != nil {
		return nil, err
	}
	res.Archive = archive
	res.Breakdown = bd
	return res, nil
}

// trainModel builds and fits the model under the selected partitioning.
func trainModel(rng *rand.Rand, md *modelData, numExperts int, opts Options) ([]*nn.Autoencoder, []int, []float64, error) {
	trainX, trainTG := md.x, md.targets
	if opts.TrainSampleRows > 0 && opts.TrainSampleRows < md.rows {
		idx := rng.Perm(md.rows)[:opts.TrainSampleRows]
		sort.Ints(idx)
		trainX, trainTG = md.sampleRows(idx)
	}
	cfg := nn.Config{CodeSize: opts.CodeSize, HiddenMult: 2, SingleLayerLinear: opts.SingleLayerLinear}

	if opts.Partition == PartitionKMeans && numExperts > 1 {
		return trainKMeans(rng, md, trainX, trainTG, cfg, numExperts, opts)
	}
	moe, err := nn.NewMoE(rng, md.specs, cfg, numExperts)
	if err != nil {
		return nil, nil, nil, err
	}
	topts := opts.Train
	if opts.Verbose != nil {
		prev := topts.Progress
		topts.Progress = func(epoch int, loss float64) {
			opts.logf("epoch %d: loss %.5f", epoch, loss)
			if prev != nil {
				prev(epoch, loss)
			}
		}
	}
	hist := moe.Train(rng, trainX, trainTG, topts)
	assign := moe.Assign(md.x, md.targets)
	return moe.Experts, assign, hist, nil
}

// trainKMeans implements the Fig. 8 baseline: k-means partitions the data
// and one autoencoder is trained per cluster.
func trainKMeans(rng *rand.Rand, md *modelData, trainX *mat.Matrix, trainTG *nn.Targets,
	cfg nn.Config, k int, opts Options) ([]*nn.Autoencoder, []int, []float64, error) {
	km, err := kmeans.Run(rng, trainX, k, 25)
	if err != nil {
		return nil, nil, nil, err
	}
	k = km.Centroids.Rows
	experts := make([]*nn.Autoencoder, k)
	var hist []float64
	for e := 0; e < k; e++ {
		var idx []int
		for r, a := range km.Assign {
			if a == e {
				idx = append(idx, r)
			}
		}
		single, err := nn.NewMoE(rng, md.specs, cfg, 1)
		if err != nil {
			return nil, nil, nil, err
		}
		if len(idx) > 0 {
			sx := mat.New(len(idx), trainX.Cols)
			for i, r := range idx {
				copy(sx.Row(i), trainX.Row(r))
			}
			stg := subsetTargets(trainTG, idx)
			h := single.Train(rng, sx, stg, opts.Train)
			hist = append(hist, h...)
		}
		experts[e] = single.Experts[0]
	}
	// Full-data assignment: nearest centroid, as a clustering deployment
	// would route tuples.
	assign := make([]int, md.rows)
	for r := 0; r < md.rows; r++ {
		row := md.x.Row(r)
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			var d float64
			for j, v := range row {
				diff := v - km.Centroids.At(c, j)
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		assign[r] = best
	}
	return experts, assign, hist, nil
}

func subsetTargets(tg *nn.Targets, idx []int) *nn.Targets {
	out := &nn.Targets{
		Num: mat.New(len(idx), tg.Num.Cols),
		Bin: mat.New(len(idx), tg.Bin.Cols),
		Cat: make([][]int, len(tg.Cat)),
	}
	for i, r := range idx {
		copy(out.Num.Row(i), tg.Num.Row(r))
		copy(out.Bin.Row(i), tg.Bin.Row(r))
	}
	for j, col := range tg.Cat {
		sub := make([]int, len(idx))
		for i, r := range idx {
			sub[i] = col[r]
		}
		out.Cat[j] = sub
	}
	return out
}

// encodeCodes maps every tuple through its assigned expert's encoder.
func encodeCodes(experts []*nn.Autoencoder, assign []int, x *mat.Matrix) *mat.Matrix {
	codeSize := experts[0].CodeSize
	out := mat.New(x.Rows, codeSize)
	const batch = 4096
	for e, ae := range experts {
		var rows []int
		for r, a := range assign {
			if a == e {
				rows = append(rows, r)
			}
		}
		for lo := 0; lo < len(rows); lo += batch {
			hi := lo + batch
			if hi > len(rows) {
				hi = len(rows)
			}
			chunk := rows[lo:hi]
			sub := mat.New(len(chunk), x.Cols)
			for i, r := range chunk {
				copy(sub.Row(i), x.Row(r))
			}
			codes := ae.Encode(sub)
			for i, r := range chunk {
				copy(out.Row(r), codes.Row(i))
			}
		}
	}
	return out
}

// groupedPerm returns original row indexes sorted by (expert, row) — the
// stored order for grouped mapping.
func groupedPerm(assign []int) []int {
	perm := make([]int, len(assign))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return assign[perm[a]] < assign[perm[b]] })
	return perm
}

// permuteRows returns m reordered so row s of the result is row perm[s].
func permuteRows(m *mat.Matrix, perm []int) *mat.Matrix {
	out := mat.New(m.Rows, m.Cols)
	for s, orig := range perm {
		copy(out.Row(s), m.Row(orig))
	}
	return out
}

// mappingGroupedSize estimates the grouped mapping's byte cost: per-expert
// counts plus delta-coded original indexes.
func mappingGroupedSize(assign, perm []int, numExperts int) int64 {
	var total int64 = int64(numExperts) // count varints, roughly
	byExpert := make([][]int64, numExperts)
	for _, orig := range perm {
		e := assign[orig]
		byExpert[e] = append(byExpert[e], int64(orig))
	}
	for _, idx := range byExpert {
		total += int64(len(colfile.PackInts(idx)))
	}
	return total
}

// deflateBytes gzips a buffer (used for the decoder section, paper §6.1).
func deflateBytes(b []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(b); err != nil {
		panic(err) // in-memory write cannot fail
	}
	if err := zw.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func inflateBytes(b []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("%w: decoder section: %v", ErrCorrupt, err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(zr); err != nil {
		return nil, fmt.Errorf("%w: decoder section: %v", ErrCorrupt, err)
	}
	return out.Bytes(), zr.Close()
}
