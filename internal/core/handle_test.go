package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"deepsqueeze/internal/dataset"
)

// csvBytes renders a table to CSV for strict byte comparison.
func csvBytes(t *testing.T, tb *dataset.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// groupedArchive compresses a latentTable into a multi-group archive with
// zone maps — the shape the serving path cares about.
func groupedArchive(t *testing.T, rows int) []byte {
	t.Helper()
	opts := quickOpts()
	opts.RowGroupSize = 64
	archive, _ := compressLatent(t, rows, 7, opts)
	return archive
}

// TestOpenMatchesByteAPI pins the tentpole contract: a request against an
// Open-ed handle returns exactly what the one-shot byte API returns, for a
// full decode, a projection, and a row range.
func TestOpenMatchesByteAPI(t *testing.T) {
	archive := groupedArchive(t, 500)
	a, err := Open(archive)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts DecompressOptions
	}{
		{"full", DecompressOptions{}},
		{"projection", DecompressOptions{Columns: []string{"m1", "cat"}}},
		{"rowrange", DecompressOptions{RowRange: RowRange{Lo: 100, Hi: 300}}},
		{"parallel", DecompressOptions{Parallelism: 4}},
	}
	for _, c := range cases {
		want, err := DecompressContext(context.Background(), archive, c.opts)
		if err != nil {
			t.Fatalf("%s: byte API: %v", c.name, err)
		}
		got, err := a.Decompress(c.opts)
		if err != nil {
			t.Fatalf("%s: handle: %v", c.name, err)
		}
		if !bytes.Equal(csvBytes(t, want.Table), csvBytes(t, got.Table)) {
			t.Fatalf("%s: handle decode differs from byte API", c.name)
		}
	}
}

// TestOpenGoldenV1 checks the handle path reads frozen version-1 archives.
func TestOpenGoldenV1(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "categorical.dsqz"))
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile(filepath.Join("testdata", "categorical.csv"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(raw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Decompress(DecompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvBytes(t, res.Table), wantCSV) {
		t.Fatal("v1 golden decode through handle differs from committed CSV")
	}
}

// TestOpenRejectsCorrupt checks that envelope damage is caught at Open time
// and classified as ErrCorrupt, not returned raw or panicked on.
func TestOpenRejectsCorrupt(t *testing.T) {
	archive := groupedArchive(t, 200)
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"garbage", []byte("not an archive at all, sorry")},
		{"truncated", archive[:len(archive)/2]},
		{"bad magic", append([]byte("XSQZ"), archive[4:]...)},
	}
	for _, c := range cases {
		if _, err := Open(c.buf); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: Open err = %v, want ErrCorrupt", c.name, err)
		}
	}
}

// TestOpenFile checks the file entry point and that its errors carry the
// offending path.
func TestOpenFile(t *testing.T) {
	archive := groupedArchive(t, 200)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.dsqz")
	if err := os.WriteFile(path, archive, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows() == 0 || a.Size() != len(archive) {
		t.Fatalf("Rows=%d Size=%d, want rows>0 size=%d", a.Rows(), a.Size(), len(archive))
	}

	if _, err := OpenFile(filepath.Join(dir, "missing.dsqz")); err == nil ||
		!strings.Contains(err.Error(), "missing.dsqz") {
		t.Fatalf("missing file: err = %v, want path in message", err)
	}
	bad := filepath.Join(dir, "bad.dsqz")
	if err := os.WriteFile(bad, archive[:40], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bad); !errors.Is(err, ErrCorrupt) ||
		!strings.Contains(err.Error(), "bad.dsqz") {
		t.Fatalf("corrupt file: err = %v, want ErrCorrupt with path", err)
	}
}

// TestHandleIndexMatchesReadIndex checks the cached Index equals the
// one-shot ReadIndex, and that repeated calls return the same parse.
func TestHandleIndexMatchesReadIndex(t *testing.T) {
	archive := groupedArchive(t, 500)
	want, err := ReadIndex(archive)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(archive)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Index()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("handle Index differs from ReadIndex")
	}
	again, err := a.Index()
	if err != nil {
		t.Fatal(err)
	}
	if got != again {
		t.Fatal("Index reparsed on second call; want the cached pointer")
	}
}

// TestHandleDecodersParsedOnce checks the decoder section is inflated
// exactly once per handle no matter how many requests need the model.
func TestHandleDecodersParsedOnce(t *testing.T) {
	archive := groupedArchive(t, 300)
	a, err := Open(archive)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := a.decoders()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Decompress(DecompressOptions{}); err != nil {
		t.Fatal(err)
	}
	d2, err := a.decoders()
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) == 0 || &d1[0] != &d2[0] {
		t.Fatal("decoder slice reparsed between requests; want one cached parse")
	}
}

// TestHandleConcurrentRequests hammers one handle from many goroutines with
// mixed request shapes under -race: all shared handle state must be
// immutable or Once-guarded, and every result must match the sequential
// baseline byte for byte.
func TestHandleConcurrentRequests(t *testing.T) {
	archive := groupedArchive(t, 500)
	a, err := Open(archive)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []DecompressOptions{
		{},
		{Columns: []string{"m2"}},
		{Columns: []string{"cat", "grade"}},
		{RowRange: RowRange{Lo: 64, Hi: 256}},
	}
	want := make([][]byte, len(shapes))
	for i, opts := range shapes {
		res, err := DecompressContext(context.Background(), archive, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = csvBytes(t, res.Table)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				shape := (w + i) % len(shapes)
				res, err := a.DecompressContext(context.Background(), shapes[shape])
				if err != nil {
					errs[w] = err
					return
				}
				var buf bytes.Buffer
				if err := res.Table.WriteCSV(&buf); err != nil {
					errs[w] = err
					return
				}
				if !bytes.Equal(buf.Bytes(), want[shape]) {
					errs[w] = errors.New("concurrent decode differs from baseline")
					return
				}
				if _, err := a.Index(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}
