package core

import (
	"fmt"

	"deepsqueeze/internal/preprocess"
)

// IndexGroup is one row group's entry in an ArchiveIndex: its row span,
// segment size, and (when the archive carries them) per-column zone maps.
type IndexGroup struct {
	Start, Count int
	SegmentBytes int64
	// Zones holds one entry per schema column; nil when the archive has no
	// zone maps. A ZoneNone entry means the column carries no usable bound
	// for this group.
	Zones []ZoneMap
}

// ArchiveIndex is the query planner's view of an archive: the stored plan
// (schema, dictionaries, quantizers — everything needed to translate
// predicate literals into the encoded domain) plus the row-group index and
// zone maps, parsed without decoding any row data.
type ArchiveIndex struct {
	Version int
	Rows    int
	Plan    *preprocess.Plan
	// External marks a streaming batch archive whose model lives elsewhere;
	// Query cannot decode those.
	External    bool
	HasZoneMaps bool
	Groups      []IndexGroup
}

// ReadIndex parses an archive's header, footer index, and zone-map stats
// chunk, validating everything it touches (including the stats payload's
// per-column structure) but reading no segment bytes. A version-1 archive
// yields a single group with no zone maps.
func ReadIndex(archive []byte) (*ArchiveIndex, error) {
	r, version, flags, err := newSectionReader(archive)
	if err != nil {
		return nil, err
	}
	hdr, err := r.chunk()
	if err != nil {
		return nil, err
	}
	h, err := decodeHeader(hdr, version)
	if err != nil {
		return nil, err
	}
	idx := &ArchiveIndex{
		Version:  int(version),
		Plan:     h.plan,
		External: flags&flagExternalModel != 0,
	}
	if version == archiveVersionV1 {
		idx.Rows = h.rows
		idx.Groups = []IndexGroup{{Start: 0, Count: h.rows, SegmentBytes: int64(len(archive))}}
		return idx, nil
	}
	ft, footOff, err := parseFooter(r.buf, r.pos)
	if err != nil {
		return nil, err
	}
	idx.Rows = ft.rows
	idx.Groups = make([]IndexGroup, len(ft.groups))
	for i, m := range ft.groups {
		idx.Groups[i] = IndexGroup{Start: m.start, Count: m.count, SegmentBytes: m.segLen}
	}
	last := ft.groups[len(ft.groups)-1]
	statOff := last.off + last.segLen
	if flags&flagZoneMaps == 0 {
		if statOff != footOff {
			return nil, fmt.Errorf("%w: %d unclaimed bytes before footer", ErrCorrupt, footOff-statOff)
		}
		return idx, nil
	}
	// The stats chunk must fill the gap between the last segment and the
	// footer exactly.
	if statOff >= footOff {
		return nil, fmt.Errorf("%w: no room for stats chunk", ErrCorrupt)
	}
	sr := &sectionReader{buf: r.buf[:footOff], pos: int(statOff)}
	kind, err := sr.byte()
	if err != nil {
		return nil, err
	}
	if kind != kindStats {
		return nil, fmt.Errorf("%w: chunk kind %d, want stats", ErrCorrupt, kind)
	}
	payload, err := sr.chunk()
	if err != nil {
		return nil, err
	}
	if err := sr.done(); err != nil {
		return nil, err
	}
	zones, err := parseZoneStats(payload, h.plan, len(ft.groups))
	if err != nil {
		return nil, err
	}
	idx.HasZoneMaps = true
	for i := range idx.Groups {
		idx.Groups[i].Zones = zones[i]
	}
	return idx, nil
}
