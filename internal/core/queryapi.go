package core

import (
	"deepsqueeze/internal/preprocess"
)

// IndexGroup is one row group's entry in an ArchiveIndex: its row span,
// segment size, and (when the archive carries them) per-column zone maps.
type IndexGroup struct {
	Start, Count int
	SegmentBytes int64
	// Zones holds one entry per schema column; nil when the archive has no
	// zone maps. A ZoneNone entry means the column carries no usable bound
	// for this group.
	Zones []ZoneMap
}

// ArchiveIndex is the query planner's view of an archive: the stored plan
// (schema, dictionaries, quantizers — everything needed to translate
// predicate literals into the encoded domain) plus the row-group index and
// zone maps, parsed without decoding any row data.
type ArchiveIndex struct {
	Version int
	Rows    int
	Plan    *preprocess.Plan
	// External marks a streaming batch archive whose model lives elsewhere;
	// Query cannot decode those.
	External    bool
	HasZoneMaps bool
	Groups      []IndexGroup
}

// ReadIndex parses an archive's header, footer index, and zone-map stats
// chunk, validating everything it touches (including the stats payload's
// per-column structure) but reading no segment bytes. A version-1 archive
// yields a single group with no zone maps. Callers planning repeated queries
// should Open the archive once and use Archive.Index instead, which caches
// this parse on the handle.
func ReadIndex(archive []byte) (*ArchiveIndex, error) {
	m, err := parseArchiveMeta(archive)
	if err != nil {
		return nil, err
	}
	return m.index()
}
