package core

import (
	"deepsqueeze/internal/dataset"
)

// GroupInfo is one row group's footer-index entry: its row span and the
// sizes of its archive sections.
type GroupInfo struct {
	RowStart     int
	RowCount     int
	SegmentBytes int64 // whole segment including framing and checksum
	CodesBytes   int64
	MappingBytes int64
	FailureBytes int64
}

// ArchiveInfo summarizes an archive without decompressing it.
type ArchiveInfo struct {
	Version    int
	Rows       int
	Schema     *dataset.Schema
	ColumnKind []string // preprocessing kind per column
	// KindCensus counts columns per preprocessing kind (keyed by the kind's
	// String form): how many columns travel through the model, as binary,
	// as residual digits, or through the colfile fallback.
	KindCensus map[string]int
	CodeSize   int
	CodeBits   int
	NumExperts int
	// Streaming reports whether this is a batch archive that needs its
	// model archive (DecompressBatch).
	Streaming bool
	// RowOrderPreserved reports whether decompression restores the
	// original tuple order.
	RowOrderPreserved bool
	TotalBytes        int
	// RowGroupSize is the nominal rows per group (format v2; 0 for v1).
	RowGroupSize int
	// HasZoneMaps reports whether the archive carries per-row-group zone
	// maps (format v2): the statistics Query uses to prune row groups.
	HasZoneMaps bool
	// Float32Decode reports whether the archive's failure streams were
	// computed against float32 decoder inference (flagFloat32): every
	// reader decodes it through the float32 kernel path.
	Float32Decode bool
	// DecoderBytes is the stored decoder section's size: the compressed
	// model weights (32 for a streaming batch archive's model hash; 0 when
	// the archive has no model columns).
	DecoderBytes int64
	// Groups is the footer's row-group index (format v2; nil for v1).
	Groups []GroupInfo
}

// Inspect parses an archive's header — and, for format v2, its footer index
// — validating the checksum, and returns its metadata. It does not run the
// decoder and is cheap even for large archives.
func Inspect(archive []byte) (*ArchiveInfo, error) {
	m, err := parseArchiveMeta(archive)
	if err != nil {
		return nil, err
	}
	return m.info(), nil
}
