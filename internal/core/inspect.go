package core

import (
	"deepsqueeze/internal/dataset"
)

// GroupInfo is one row group's footer-index entry: its row span and the
// sizes of its archive sections.
type GroupInfo struct {
	RowStart     int
	RowCount     int
	SegmentBytes int64 // whole segment including framing and checksum
	CodesBytes   int64
	MappingBytes int64
	FailureBytes int64
}

// ArchiveInfo summarizes an archive without decompressing it.
type ArchiveInfo struct {
	Version    int
	Rows       int
	Schema     *dataset.Schema
	ColumnKind []string // preprocessing kind per column
	CodeSize   int
	CodeBits   int
	NumExperts int
	// Streaming reports whether this is a batch archive that needs its
	// model archive (DecompressBatch).
	Streaming bool
	// RowOrderPreserved reports whether decompression restores the
	// original tuple order.
	RowOrderPreserved bool
	TotalBytes        int
	// RowGroupSize is the nominal rows per group (format v2; 0 for v1).
	RowGroupSize int
	// HasZoneMaps reports whether the archive carries per-row-group zone
	// maps (format v2): the statistics Query uses to prune row groups.
	HasZoneMaps bool
	// Groups is the footer's row-group index (format v2; nil for v1).
	Groups []GroupInfo
}

// Inspect parses an archive's header — and, for format v2, its footer index
// — validating the checksum, and returns its metadata. It does not run the
// decoder and is cheap even for large archives.
func Inspect(archive []byte) (*ArchiveInfo, error) {
	r, version, flags, err := newSectionReader(archive)
	if err != nil {
		return nil, err
	}
	hdr, err := r.chunk()
	if err != nil {
		return nil, err
	}
	h, err := decodeHeader(hdr, version)
	if err != nil {
		return nil, err
	}
	info := &ArchiveInfo{
		Version:           int(version),
		Rows:              h.rows,
		Schema:            h.plan.Schema,
		CodeSize:          h.codeSize,
		CodeBits:          h.codeBits,
		NumExperts:        h.numExperts,
		Streaming:         flags&flagExternalModel != 0,
		RowOrderPreserved: flags&flagRowOrder != 0,
		TotalBytes:        len(archive),
		RowGroupSize:      h.rowGroupSize,
	}
	if version != archiveVersionV1 {
		info.HasZoneMaps = flags&flagZoneMaps != 0
		ft, _, err := parseFooter(r.buf, r.pos)
		if err != nil {
			return nil, err
		}
		info.Rows = ft.rows
		info.Groups = make([]GroupInfo, len(ft.groups))
		for i, m := range ft.groups {
			info.Groups[i] = GroupInfo{
				RowStart:     m.start,
				RowCount:     m.count,
				SegmentBytes: m.segLen,
				CodesBytes:   m.codes,
				MappingBytes: m.mapping,
				FailureBytes: m.failures,
			}
		}
	}
	info.ColumnKind = make([]string, len(h.plan.Cols))
	for i := range h.plan.Cols {
		info.ColumnKind[i] = h.plan.Cols[i].Kind.String()
	}
	return info, nil
}
