package core

import (
	"encoding/binary"
	"fmt"

	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/preprocess"
)

// ArchiveInfo summarizes an archive without decompressing it.
type ArchiveInfo struct {
	Rows       int
	Schema     *dataset.Schema
	ColumnKind []string // preprocessing kind per column
	CodeSize   int
	CodeBits   int
	NumExperts int
	// Streaming reports whether this is a batch archive that needs its
	// model archive (DecompressBatch).
	Streaming bool
	// RowOrderPreserved reports whether decompression restores the
	// original tuple order.
	RowOrderPreserved bool
	TotalBytes        int
}

// Inspect parses an archive's header (validating the checksum) and returns
// its metadata. It does not run the decoder and is cheap even for large
// archives.
func Inspect(archive []byte) (*ArchiveInfo, error) {
	r, flags, err := newSectionReader(archive)
	if err != nil {
		return nil, err
	}
	hdr, err := r.chunk()
	if err != nil {
		return nil, err
	}
	rows, sz := binary.Uvarint(hdr)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing row count", ErrCorrupt)
	}
	pos := sz
	plan, used, err := preprocess.DecodePlan(hdr[pos:])
	if err != nil {
		return nil, err
	}
	pos += used
	var vals [3]uint64 // code size, code bits, experts
	for i := range vals {
		v, sz := binary.Uvarint(hdr[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		vals[i] = v
		pos += sz
	}
	if pos != len(hdr) {
		return nil, fmt.Errorf("%w: trailing header bytes", ErrCorrupt)
	}
	info := &ArchiveInfo{
		Rows:              int(rows),
		Schema:            plan.Schema,
		CodeSize:          int(vals[0]),
		CodeBits:          int(vals[1]),
		NumExperts:        int(vals[2]),
		Streaming:         flags&flagExternalModel != 0,
		RowOrderPreserved: flags&flagRowOrder != 0,
		TotalBytes:        len(archive),
	}
	info.ColumnKind = make([]string, len(plan.Cols))
	for i := range plan.Cols {
		info.ColumnKind[i] = plan.Cols[i].Kind.String()
	}
	return info, nil
}
