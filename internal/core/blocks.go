package core

import (
	"context"
	"fmt"
	"sort"

	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/pipeline"
)

// ColumnBlock is one row group × column's decoded values, in the group's
// original row order. A block is immutable once built: the serve layer's
// decoded-block cache hands the same block to any number of concurrent
// queries, so neither the producer nor any consumer may write to its slices.
// Exactly one of Str (categorical columns) or Num (numeric columns) is
// non-nil, matching the column's schema type.
type ColumnBlock struct {
	Str []string
	Num []float64

	bytes int64
}

// Len returns the block's row count.
func (b *ColumnBlock) Len() int {
	if b.Str != nil {
		return len(b.Str)
	}
	return len(b.Num)
}

// Bytes returns the block's memory footprint estimate, the unit the serve
// layer's cache budget is accounted in: slice header plus 8 bytes per float,
// or slice header plus string header and payload bytes per string. Computed
// once at construction.
func (b *ColumnBlock) Bytes() int64 { return b.bytes }

// sliceHeaderBytes is the accounting cost of one slice header; stringHeaderBytes
// of one string header. Both follow the amd64/arm64 in-memory layout.
const (
	sliceHeaderBytes  = 24
	stringHeaderBytes = 16
)

// newNumBlock copies one group's span of a decoded numeric column into a
// fresh, independently-owned block (a subslice would pin the whole decode's
// backing array and break the cache's eviction accounting).
func newNumBlock(src []float64) *ColumnBlock {
	out := make([]float64, len(src))
	copy(out, src)
	return &ColumnBlock{Num: out, bytes: sliceHeaderBytes + 8*int64(len(out))}
}

// newStrBlock copies one group's span of a decoded categorical column.
// The string payloads themselves are shared with the decode (strings are
// immutable); their bytes are still charged to the block since the block is
// what keeps them alive once the decode's table is dropped.
func newStrBlock(src []string) *ColumnBlock {
	out := make([]string, len(src))
	copy(out, src)
	n := int64(sliceHeaderBytes)
	for _, s := range out {
		n += stringHeaderBytes + int64(len(s))
	}
	return &ColumnBlock{Str: out, bytes: n}
}

// NumGroups returns the archive's row-group count (1 for a version-1
// archive), the group-index space DecodeBlocks and DecompressOptions.GroupMask
// address.
func (a *Archive) NumGroups() int {
	if a.meta.version == archiveVersionV1 {
		return 1
	}
	return len(a.meta.footer.groups)
}

// GroupRows returns row group g's row count.
func (a *Archive) GroupRows(g int) int {
	if a.meta.version == archiveVersionV1 {
		return a.meta.rows
	}
	return a.meta.footer.groups[g].count
}

// DecodeFlags returns the archive's header flag byte — the per-archive plan
// flags (row order, grouping, zone maps, Float32Decode) that determine how
// its bytes decode. Two archives with identical content but different flags
// decode differently, so block-cache keys include it.
func (a *Archive) DecodeFlags() byte { return a.meta.flags }

// DecodeBlocks decodes the selected columns of the selected row groups into
// immutable per-group, per-column blocks: the miss path of a decoded-block
// cache. groups and cols must be strictly ascending; groups are archive
// group indexes (see NumGroups), cols schema column indexes. The returned
// slice is indexed [len(groups)][len(cols)], and every block's contents are
// byte-identical to the corresponding span of a full decompression — the
// whole request runs through the same parse→scan→unpack→resolve→decode→
// assemble stages, restricted by GroupMask and column projection, so pruned
// groups' segments and unselected columns' streams are never read. pool, when
// non-nil, bounds the decode over the caller's shared worker pool.
func (a *Archive) DecodeBlocks(ctx context.Context, groups []int, cols []int, pool *pipeline.Pool) ([][]*ColumnBlock, error) {
	ngroups := a.NumGroups()
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: DecodeBlocks needs at least one group")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("core: DecodeBlocks needs at least one column")
	}
	mask := make([]bool, ngroups)
	for i, g := range groups {
		if g < 0 || g >= ngroups {
			return nil, fmt.Errorf("core: group %d outside [0,%d)", g, ngroups)
		}
		if i > 0 && g <= groups[i-1] {
			return nil, fmt.Errorf("core: groups must be strictly ascending")
		}
		mask[g] = true
	}
	schema := a.meta.plan.Schema
	names := make([]string, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(schema.Columns) {
			return nil, fmt.Errorf("core: column %d outside schema of %d columns", c, len(schema.Columns))
		}
		if i > 0 && c <= cols[i-1] {
			return nil, fmt.Errorf("core: columns must be strictly ascending")
		}
		names[i] = schema.Columns[c].Name
	}

	res, err := a.decompress(ctx, DecompressOptions{Columns: names, GroupMask: mask, Pool: pool}, nil)
	if err != nil {
		return nil, err
	}
	// The decode concatenates the selected groups' rows in archive order and
	// lists the projected columns in schema order — exactly the groups/cols
	// request order. Slice the table back apart, copying each span so every
	// block owns (and is accounted for) its own memory.
	t := res.Table
	out := make([][]*ColumnBlock, len(groups))
	off := 0
	for gi, g := range groups {
		rows := a.GroupRows(g)
		blocks := make([]*ColumnBlock, len(cols))
		for ci, c := range cols {
			if schema.Columns[c].Type == dataset.Categorical {
				blocks[ci] = newStrBlock(t.Str[ci][off : off+rows])
			} else {
				blocks[ci] = newNumBlock(t.Num[ci][off : off+rows])
			}
		}
		out[gi] = blocks
		off += rows
	}
	if off != t.NumRows() {
		return nil, fmt.Errorf("%w: decoded %d rows for %d group rows", ErrCorrupt, t.NumRows(), off)
	}
	return out, nil
}

// SortedUnique sorts s ascending and drops duplicates in place — the shape
// DecodeBlocks requires for its group and column lists.
func SortedUnique(s []int) []int {
	sort.Ints(s)
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
