package core

import (
	"deepsqueeze/internal/dataset"
)

// ColumnSummary is one schema column in an ArchiveSummary.
type ColumnSummary struct {
	Name string `json:"name"`
	Type string `json:"type"` // "cat" or "num"
	Kind string `json:"kind"` // preprocessing kind
}

// GroupSummary is one row group in an ArchiveSummary.
type GroupSummary struct {
	RowStart     int   `json:"row_start"`
	RowCount     int   `json:"row_count"`
	SegmentBytes int64 `json:"segment_bytes"`
	CodesBytes   int64 `json:"codes_bytes"`
	MappingBytes int64 `json:"mapping_bytes"`
	FailureBytes int64 `json:"failure_bytes"`
}

// StreamSummary is one logical stream's codec accounting in an
// ArchiveSummary: which codecs the best-of selector chose and the
// compressed-vs-raw byte ratio, aggregated across row groups.
type StreamSummary struct {
	Column     string         `json:"column,omitempty"` // empty: codes/mapping
	Stream     string         `json:"stream"`
	Chunks     int            `json:"chunks"`
	Codecs     map[string]int `json:"codecs,omitempty"` // codec name → chunk count
	FrameBytes int64          `json:"frame_bytes"`
	RawBytes   int64          `json:"raw_bytes"`
}

// StreamSummaries converts InspectStreams output into its machine-readable
// form, preserving stream order.
func StreamSummaries(stats []StreamStat) []StreamSummary {
	out := make([]StreamSummary, len(stats))
	for i, st := range stats {
		out[i] = StreamSummary{
			Column:     st.Column,
			Stream:     st.Stream,
			Chunks:     st.Chunks,
			Codecs:     st.Codecs,
			FrameBytes: st.FrameBytes,
			RawBytes:   st.RawBytes,
		}
	}
	return out
}

// ArchiveSummary is the machine-readable archive description shared by
// `dsqz inspect -json` and the daemon's /archives endpoint: one serializer,
// so scripts can consume either source interchangeably.
type ArchiveSummary struct {
	Path              string `json:"path,omitempty"`
	Version           int    `json:"version"`
	Bytes             int    `json:"bytes"`
	Rows              int    `json:"rows"`
	CodeSize          int    `json:"code_size"`
	CodeBits          int    `json:"code_bits"`
	Experts           int    `json:"experts"`
	Streaming         bool   `json:"streaming"`
	RowOrderPreserved bool   `json:"row_order_preserved"`
	RowGroupSize      int    `json:"row_group_size"`
	ZoneMaps          bool   `json:"zone_maps"`
	Float32Decode     bool   `json:"float32_decode"`
	DecoderBytes      int64  `json:"decoder_bytes"`
	// KindCounts is the per-preprocessing-kind column census (kind name →
	// column count): at a glance, how many columns are modeled, binary,
	// residual-digit, or fallback.
	KindCounts map[string]int  `json:"kind_counts,omitempty"`
	Columns    []ColumnSummary `json:"columns"`
	Groups     []GroupSummary  `json:"groups,omitempty"`
	// Streams is the per-stream codec accounting (InspectStreams); populated
	// by callers that paid for the stream walk, omitted otherwise.
	Streams []StreamSummary `json:"streams,omitempty"`
}

// Summary converts the info into its machine-readable form. The caller sets
// Path when the archive has one.
func (info *ArchiveInfo) Summary() *ArchiveSummary {
	s := &ArchiveSummary{
		Version:           info.Version,
		Bytes:             info.TotalBytes,
		Rows:              info.Rows,
		CodeSize:          info.CodeSize,
		CodeBits:          info.CodeBits,
		Experts:           info.NumExperts,
		Streaming:         info.Streaming,
		RowOrderPreserved: info.RowOrderPreserved,
		RowGroupSize:      info.RowGroupSize,
		ZoneMaps:          info.HasZoneMaps,
		Float32Decode:     info.Float32Decode,
		DecoderBytes:      info.DecoderBytes,
	}
	if len(info.KindCensus) > 0 {
		s.KindCounts = make(map[string]int, len(info.KindCensus))
		for k, n := range info.KindCensus {
			s.KindCounts[k] = n
		}
	}
	s.Columns = make([]ColumnSummary, len(info.Schema.Columns))
	for i, c := range info.Schema.Columns {
		typ := "num"
		if c.Type == dataset.Categorical {
			typ = "cat"
		}
		s.Columns[i] = ColumnSummary{Name: c.Name, Type: typ, Kind: info.ColumnKind[i]}
	}
	if info.Groups != nil {
		s.Groups = make([]GroupSummary, len(info.Groups))
		for i, g := range info.Groups {
			s.Groups[i] = GroupSummary{
				RowStart:     g.RowStart,
				RowCount:     g.RowCount,
				SegmentBytes: g.SegmentBytes,
				CodesBytes:   g.CodesBytes,
				MappingBytes: g.MappingBytes,
				FailureBytes: g.FailureBytes,
			}
		}
	}
	return s
}
