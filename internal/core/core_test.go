package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/mat"
)

// latentTable builds a table with strong many-column latent structure: all
// columns derive from a 1-D latent factor plus noise.
func latentTable(rows int, seed int64) *dataset.Table {
	schema := dataset.NewSchema(
		dataset.Column{Name: "cat", Type: dataset.Categorical},
		dataset.Column{Name: "bin", Type: dataset.Categorical},
		dataset.Column{Name: "m1", Type: dataset.Numeric},
		dataset.Column{Name: "m2", Type: dataset.Numeric},
		dataset.Column{Name: "grade", Type: dataset.Numeric},
	)
	t := dataset.NewTable(schema, rows)
	rng := rand.New(rand.NewSource(seed))
	cats := []string{"a", "b", "c", "d"}
	for i := 0; i < rows; i++ {
		z := rng.Float64()
		bin := "0"
		if z > 0.5 {
			bin = "1"
		}
		t.AppendRow(
			[]string{cats[int(z*3.999)], bin},
			[]float64{
				z*100 + rng.NormFloat64(),
				100 - z*100 + rng.NormFloat64(),
				math.Floor(z * 5), // 5 distinct values → value dict at t=0
			},
		)
	}
	return t
}

func quickOpts() Options {
	o := DefaultOptions()
	o.CodeSize = 2
	o.Train.Epochs = 8
	o.Train.BatchSize = 128
	return o
}

func roundTrip(t *testing.T, tb *dataset.Table, thresholds []float64, opts Options) (*Result, *dataset.Table) {
	t.Helper()
	res, err := Compress(tb, thresholds, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	return res, got
}

// tolerances computes the audit tolerances the thresholds imply.
func tolerances(tb *dataset.Table, thresholds []float64) []float64 {
	stats := tb.Stats()
	out := make([]float64, len(thresholds))
	for i, thr := range thresholds {
		if tb.Schema.Columns[i].Type == dataset.Numeric && thr > 0 {
			out[i] = thr * (stats[i].Max - stats[i].Min)
		}
	}
	return out
}

func TestRoundTripMixed(t *testing.T) {
	tb := latentTable(1500, 1)
	thr := []float64{0, 0, 0.05, 0.05, 0}
	res, got := roundTrip(t, tb, thr, quickOpts())
	if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Total != int64(len(res.Archive)) {
		t.Fatalf("Breakdown.Total %d != archive %d", res.Breakdown.Total, len(res.Archive))
	}
	sum := res.Breakdown.Header + res.Breakdown.Decoder + res.Breakdown.Codes +
		res.Breakdown.Failures + res.Breakdown.Mapping
	if sum != res.Breakdown.Total {
		t.Fatalf("breakdown parts %d != total %d", sum, res.Breakdown.Total)
	}
	if res.CodeBits == 0 {
		t.Fatal("truncation search did not pick a width")
	}
}

func TestRoundTripMultiExpert(t *testing.T) {
	tb := latentTable(1200, 2)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	opts := quickOpts()
	opts.NumExperts = 3
	res, got := roundTrip(t, tb, thr, opts)
	if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
		t.Fatal(err)
	}
	if len(res.ExpertUse) != 3 {
		t.Fatalf("ExpertUse = %v", res.ExpertUse)
	}
	total := 0
	for _, c := range res.ExpertUse {
		total += c
	}
	if total != tb.NumRows() {
		t.Fatalf("expert usage covers %d of %d rows", total, tb.NumRows())
	}
}

func TestRoundTripNoRowOrder(t *testing.T) {
	tb := latentTable(800, 3)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	opts := quickOpts()
	opts.NumExperts = 2
	opts.KeepRowOrder = false
	res, got := roundTrip(t, tb, thr, opts)
	if got.NumRows() != tb.NumRows() {
		t.Fatalf("rows %d != %d", got.NumRows(), tb.NumRows())
	}
	// Row order may differ; compare the multiset of the lossless cat column.
	count := func(tab *dataset.Table) map[string]int {
		m := map[string]int{}
		for _, v := range tab.Str[0] {
			m[v]++
		}
		return m
	}
	a, b := count(tb), count(got)
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("multiset mismatch for %q: %d vs %d", k, v, b[k])
		}
	}
	_ = res
}

func TestRoundTripKMeansPartition(t *testing.T) {
	tb := latentTable(800, 4)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	opts := quickOpts()
	opts.NumExperts = 2
	opts.Partition = PartitionKMeans
	_, got := roundTrip(t, tb, thr, opts)
	if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripNoQuantization(t *testing.T) {
	tb := latentTable(800, 5)
	thr := []float64{0, 0, 0.08, 0.08, 0}
	opts := quickOpts()
	opts.NoQuantization = true
	_, got := roundTrip(t, tb, thr, opts)
	if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripSingleLayerLinear(t *testing.T) {
	tb := latentTable(600, 6)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	opts := quickOpts()
	opts.SingleLayerLinear = true
	_, got := roundTrip(t, tb, thr, opts)
	if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripFixedCodeBits(t *testing.T) {
	tb := latentTable(500, 7)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	opts := quickOpts()
	opts.CodeBits = 16
	res, got := roundTrip(t, tb, thr, opts)
	if res.CodeBits != 16 {
		t.Fatalf("CodeBits = %d", res.CodeBits)
	}
	if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripTrainSample(t *testing.T) {
	tb := latentTable(2000, 8)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	opts := quickOpts()
	opts.TrainSampleRows = 300
	_, got := roundTrip(t, tb, thr, opts)
	if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripFallbackAndEscapes(t *testing.T) {
	schema := dataset.NewSchema(
		dataset.Column{Name: "id", Type: dataset.Categorical},   // unique → fallback
		dataset.Column{Name: "skew", Type: dataset.Categorical}, // skewed → escapes
		dataset.Column{Name: "wild", Type: dataset.Numeric},     // many distinct, t=0 → fallback numeric
	)
	rows := 1200
	tb := dataset.NewTable(schema, rows)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < rows; i++ {
		skew := "common"
		if rng.Float64() < 0.03 {
			skew = fmt.Sprintf("rare-%d", rng.Intn(40))
		}
		tb.AppendRow([]string{fmt.Sprintf("id-%06d", i), skew}, []float64{rng.NormFloat64() * 1e6})
	}
	opts := quickOpts()
	opts.Preproc.MaxValueDictLen = 64 // force numeric fallback
	_, got := roundTrip(t, tb, []float64{0, 0, 0}, opts)
	if err := tb.EqualWithin(got, nil); err != nil {
		t.Fatal(err)
	}
}

func TestErrorBoundProperty(t *testing.T) {
	// For a range of thresholds, every decompressed numeric value must land
	// within threshold × range — the paper's central guarantee.
	for _, thr := range []float64{0.005, 0.01, 0.05, 0.1} {
		tb := latentTable(600, 10)
		th := []float64{0, 0, thr, thr, 0}
		_, got := roundTrip(t, tb, th, quickOpts())
		if err := tb.EqualWithin(got, tolerances(tb, th)); err != nil {
			t.Fatalf("threshold %v: %v", thr, err)
		}
	}
}

func TestEmptyAndTinyTables(t *testing.T) {
	schema := dataset.NewSchema(
		dataset.Column{Name: "c", Type: dataset.Categorical},
		dataset.Column{Name: "n", Type: dataset.Numeric},
	)
	empty := dataset.NewTable(schema, 0)
	_, got := roundTrip(t, empty, []float64{0, 0.1}, quickOpts())
	if got.NumRows() != 0 {
		t.Fatal("empty table rows")
	}
	tiny := dataset.NewTable(schema, 3)
	tiny.AppendRow([]string{"x"}, []float64{1})
	tiny.AppendRow([]string{"x"}, []float64{1})
	tiny.AppendRow([]string{"y"}, []float64{2})
	_, got = roundTrip(t, tiny, []float64{0, 0}, quickOpts())
	if err := tiny.EqualWithin(got, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstantColumns(t *testing.T) {
	schema := dataset.NewSchema(
		dataset.Column{Name: "const_c", Type: dataset.Categorical},
		dataset.Column{Name: "const_n", Type: dataset.Numeric},
		dataset.Column{Name: "var_n", Type: dataset.Numeric},
	)
	tb := dataset.NewTable(schema, 100)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		tb.AppendRow([]string{"same"}, []float64{42, rng.Float64() * 10})
	}
	thr := []float64{0, 0, 0.1}
	_, got := roundTrip(t, tb, thr, quickOpts())
	if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicArchive(t *testing.T) {
	tb := latentTable(400, 12)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	opts := quickOpts()
	a, err := Compress(tb, thr, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(tb, thr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Archive, b.Archive) {
		t.Fatal("same seed produced different archives")
	}
}

func TestDecompressRejectsCorruption(t *testing.T) {
	tb := latentTable(300, 13)
	res, err := Compress(tb, []float64{0, 0, 0.1, 0.1, 0}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	buf := res.Archive
	cases := map[string][]byte{
		"empty":     {},
		"magic":     append([]byte("NOPE"), buf[4:]...),
		"version":   append(append([]byte{}, buf[:4]...), append([]byte{99}, buf[5:]...)...),
		"truncated": buf[:len(buf)/2],
	}
	flipped := append([]byte{}, buf...)
	flipped[len(flipped)/3] ^= 0x55
	cases["bitflip"] = flipped
	for name, c := range cases {
		if _, err := Decompress(c); err == nil {
			t.Errorf("%s: corrupt archive accepted", name)
		}
	}
}

func TestCompressionBeatsColumnarOnLatentData(t *testing.T) {
	// The headline claim: with strong many-column structure and a 10%
	// threshold, DeepSqueeze's output should be a small fraction of the
	// raw size.
	tb := latentTable(4000, 14)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	opts := quickOpts()
	opts.Train.Epochs = 20
	res, got := roundTrip(t, tb, thr, opts)
	if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
		t.Fatal(err)
	}
	raw := tb.CSVSize()
	ratio := res.Ratio(raw)
	if ratio > 0.25 {
		t.Fatalf("compression ratio %.3f on latent-structured data; expected < 0.25", ratio)
	}
}

func TestOptionsValidation(t *testing.T) {
	tb := latentTable(50, 15)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	bad := []Options{
		{}, // zero CodeSize
		func() Options { o := quickOpts(); o.NumExperts = 0; return o }(),
		func() Options { o := quickOpts(); o.CodeBits = 7; return o }(),
		func() Options { o := quickOpts(); o.TrainSampleRows = -1; return o }(),
	}
	for i, o := range bad {
		if _, err := Compress(tb, thr, o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestTune(t *testing.T) {
	tb := latentTable(900, 16)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	topts := TuneOptions{
		Samples: []int{200, 400},
		Codes:   []int{1, 2},
		Experts: []int{1, 2},
		Eps:     0.05,
		Budget:  4,
		Base:    quickOpts(),
	}
	res, err := Tune(tb, thr, topts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) == 0 {
		t.Fatal("no trials recorded")
	}
	found := false
	for _, c := range topts.Codes {
		if res.Best.CodeSize == c {
			found = true
		}
	}
	if !found {
		t.Fatalf("chosen code size %d not in candidates", res.Best.CodeSize)
	}
	// The tuned options must produce a working compressor.
	r, err := Compress(tb, thr, res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(r.Archive); err != nil {
		t.Fatal(err)
	}
}

func TestTuneFullDataPath(t *testing.T) {
	tb := latentTable(150, 17)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	topts := TuneOptions{
		Samples: []int{1000}, // larger than the table → full-data branch
		Codes:   []int{1, 2},
		Experts: []int{1},
		Eps:     0.05,
		Budget:  2,
		Base:    quickOpts(),
	}
	res, err := Tune(tb, thr, topts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.SampleUsed != tb.NumRows() || res.Best.TrainSampleRows != 0 {
		t.Fatalf("full-data branch: %+v", res)
	}
}

func TestRankHelpers(t *testing.T) {
	probs := []float64{0.1, 0.5, 0.3, 0.1}
	// Order: 1 (0.5), 2 (0.3), 0 (0.1, lower index), 3 (0.1).
	wantRank := map[int]int{1: 0, 2: 1, 0: 2, 3: 3}
	scratch := make([]bool, 4)
	for cls, rank := range wantRank {
		if got := rankOf(probs, cls); got != rank {
			t.Errorf("rankOf(%d) = %d, want %d", cls, got, rank)
		}
		if got := codeAtRank(probs, rank, scratch); got != cls {
			t.Errorf("codeAtRank(%d) = %d, want %d", rank, got, cls)
		}
	}
}

func TestQuantizeReconstructCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	c := matRand(rng, 50, 3)
	for _, bits := range []int{8, 16, 24, 32} {
		dims, rec := quantizeCodes(c, bits)
		rec2 := reconstructCodes(dims, bits)
		for i := range rec.Data {
			if rec.Data[i] != rec2.Data[i] {
				t.Fatalf("bits %d: reconstruction mismatch", bits)
			}
			step := 1 / (math.Pow(2, float64(bits)) - 1)
			if math.Abs(rec.Data[i]-c.Data[i]) > step/2+1e-12 {
				t.Fatalf("bits %d: quantization error %v > step/2", bits, math.Abs(rec.Data[i]-c.Data[i]))
			}
		}
	}
}

func matRand(rng *rand.Rand, rows, cols int) *mat.Matrix {
	m := mat.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}
