package core

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/preprocess"
)

// zoneContains reports whether a decoded value is admitted by a zone map,
// translating encoded-domain bounds through the header plan the same way the
// query planner does.
func zoneContains(z *ZoneMap, cp *preprocess.ColPlan, sv string, nv float64, isStr bool) (bool, error) {
	switch z.Kind {
	case ZoneNone:
		return true, nil
	case ZoneBitmap:
		c, ok := cp.Dict.Code(sv)
		if !ok {
			c = cp.Dict.Len() // overflow bit
		}
		return z.Bit(c), nil
	case ZoneIntRange:
		if isStr {
			c, ok := cp.Dict.Code(sv)
			return ok && int64(c) >= z.Min && int64(c) <= z.Max, nil
		}
		switch cp.Kind {
		case preprocess.KindNumQuant:
			b := int64(cp.Quant.Bucket(cp.Scaler.Scale(nv)))
			return b >= z.Min && b <= z.Max, nil
		case preprocess.KindNumDict:
			r, ok := cp.VDict.Rank(nv)
			return ok && int64(r) >= z.Min && int64(r) <= z.Max, nil
		}
		return false, fmt.Errorf("int zone on kind %v", cp.Kind)
	case ZoneFloatRange:
		return nv >= z.FMin && nv <= z.FMax, nil
	}
	return false, fmt.Errorf("zone kind %d", z.Kind)
}

// checkZoneSoundness decodes every group of the archive and asserts each
// decoded value is admitted by its group × column zone map — the property
// group pruning relies on.
func checkZoneSoundness(t *testing.T, archive []byte) {
	t.Helper()
	idx, err := ReadIndex(archive)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.HasZoneMaps {
		t.Fatal("archive has no zone maps")
	}
	full, err := Decompress(archive)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range idx.Groups {
		if g.Zones == nil {
			t.Fatalf("group %d has no zones", gi)
		}
		for col := range idx.Plan.Cols {
			z := &g.Zones[col]
			cp := &idx.Plan.Cols[col]
			isStr := idx.Plan.Schema.Columns[col].Type == dataset.Categorical
			for r := g.Start; r < g.Start+g.Count; r++ {
				var sv string
				var nv float64
				if isStr {
					sv = full.Str[col][r]
				} else {
					nv = full.Num[col][r]
				}
				ok, err := zoneContains(z, cp, sv, nv, isStr)
				if err != nil {
					t.Fatalf("group %d column %d: %v", gi, col, err)
				}
				if !ok {
					t.Fatalf("group %d column %d row %d: decoded value %q/%v outside zone %+v",
						gi, col, r, sv, nv, *z)
				}
			}
		}
	}
}

// TestZoneMapSoundness compresses a multi-group table with default options
// and checks every decoded value lands inside its group's zones.
func TestZoneMapSoundness(t *testing.T) {
	tb := latentTable(600, 41)
	res, err := Compress(tb, []float64{0, 0, 0.05, 0.05, 0}, groupOpts(100, 2))
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasZoneMaps {
		t.Fatal("default compression did not emit zone maps")
	}
	checkZoneSoundness(t, res.Archive)
}

// TestZoneMapSoundnessContinuous covers the no-quantization ablation, whose
// zones must absorb the lossy reconstruction error.
func TestZoneMapSoundnessContinuous(t *testing.T) {
	opts := groupOpts(100, 1)
	opts.NoQuantization = true
	res, err := Compress(latentTable(400, 42), []float64{0, 0, 0.05, 0.05, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkZoneSoundness(t, res.Archive)
}

// TestZoneMapsDisabled checks the opt-out: no flag, no stats chunk, no
// zones — and the archive still round-trips.
func TestZoneMapsDisabled(t *testing.T) {
	tb := latentTable(300, 43)
	opts := groupOpts(100, 1)
	opts.NoZoneMaps = true
	res, err := Compress(tb, []float64{0, 0, 0.05, 0.05, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if info.HasZoneMaps {
		t.Fatal("NoZoneMaps archive reports zone maps")
	}
	idx, err := ReadIndex(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if idx.HasZoneMaps || idx.Groups[0].Zones != nil {
		t.Fatal("NoZoneMaps archive yields zones")
	}
	if _, err := Decompress(res.Archive); err != nil {
		t.Fatal(err)
	}
}

// TestZoneMapsStreaming drives the streaming writer across re-fit groups —
// including categorical values the training group never saw — and checks the
// stats chunk stays sound and the archive readable by both decode paths.
func TestZoneMapsStreaming(t *testing.T) {
	schema := dataset.NewSchema(
		dataset.Column{Name: "tag", Type: dataset.Categorical},
		dataset.Column{Name: "val", Type: dataset.Numeric},
	)
	tb := dataset.NewTable(schema, 300)
	for i := 0; i < 300; i++ {
		tag := fmt.Sprintf("t%d", i%3)
		if i >= 200 {
			tag = fmt.Sprintf("new%d", i%2) // unseen by the training group
		}
		tb.AppendRow([]string{tag}, []float64{float64(i%50) + float64(i)/1000})
	}
	opts := quickOpts()
	opts.Train.Epochs = 2
	opts.RowGroupSize = 100
	var buf bytes.Buffer
	aw, err := NewArchiveWriter(&buf, schema, []float64{0, 0.05}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Write(tb); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	archive := buf.Bytes()
	checkZoneSoundness(t, archive)

	idx, err := ReadIndex(archive)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Groups) != 3 {
		t.Fatalf("%d groups, want 3", len(idx.Groups))
	}
	// The third group's tags are all outside the training dictionary: its
	// bitmap must be exactly the overflow bit.
	z := idx.Groups[2].Zones[0]
	if z.Kind != ZoneBitmap {
		t.Fatalf("tag zone kind %d, want bitmap", z.Kind)
	}
	if !z.Bit(z.NBits - 1) {
		t.Fatal("overflow bit unset for unseen tags")
	}
	for c := 0; c < z.NBits-1; c++ {
		if z.Bit(c) {
			t.Fatalf("dictionary bit %d set in an all-unseen group", c)
		}
	}

	// The streaming reader must also accept the stats chunk.
	ar, err := NewArchiveReader(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		gt, err := ar.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows += gt.NumRows()
	}
	if rows != 300 {
		t.Fatalf("streamed %d rows, want 300", rows)
	}
}

// TestZoneStatsPayloadRoundTrip round-trips a handcrafted stats payload
// through the serializer and the strict parser.
func TestZoneStatsPayloadRoundTrip(t *testing.T) {
	tb := latentTable(50, 44)
	plan, err := preprocess.Fit(tb, preprocess.DefaultOptions(), []float64{0, 0, 0.05, 0.05, 0})
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]int, tb.NumRows())
	for i := range perm {
		perm[i] = i
	}
	zones := [][]ZoneMap{
		computeGroupZones(tb, perm[:25], plan, plan),
		computeGroupZones(tb, perm[25:], plan, plan),
	}
	payload := appendZoneStatsPayload(nil, zones)
	got, err := parseZoneStats(payload, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	for g := range zones {
		for c := range zones[g] {
			w, h := zones[g][c], got[g][c]
			if w.Kind != h.Kind || w.Min != h.Min || w.Max != h.Max ||
				w.FMin != h.FMin || w.FMax != h.FMax || w.NBits != h.NBits ||
				!bytes.Equal(w.Bits, h.Bits) {
				t.Fatalf("group %d column %d: wrote %+v, parsed %+v", g, c, w, h)
			}
		}
	}
	// The strict parser must reject a wrong group count and mangled kinds.
	if _, err := parseZoneStats(payload, plan, 3); err == nil {
		t.Fatal("wrong group count accepted")
	}
	bad := append([]byte(nil), payload...)
	bad[2] = 200 // first entry's kind byte
	if _, err := parseZoneStats(bad, plan, 2); err == nil {
		t.Fatal("unknown zone kind accepted")
	}
}
