package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"deepsqueeze/internal/bayesopt"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/pipeline"
)

// TuneOptions configures the iterative Bayesian-optimization tuner of paper
// Fig. 5.
type TuneOptions struct {
	// Samples is the ascending list of training sample sizes to try.
	Samples []int
	// Codes is the candidate list of code sizes.
	Codes []int
	// Experts is the candidate list of expert counts.
	Experts []int
	// Eps is the generalization threshold: tuning stops growing the sample
	// once |size(x2) − size(x1)| / rawSize < Eps.
	Eps float64
	// Budget bounds the number of objective evaluations per sample size.
	Budget int
	// Base supplies everything else (seed, training options, preprocessing,
	// parallelism). CodeSize/NumExperts/TrainSampleRows are overwritten by
	// the tuner. Base.Parallelism sizes one worker pool shared by every
	// concurrent trial, so trials never oversubscribe the machine.
	Base Options
}

// DefaultTuneOptions mirrors the paper's setup: code sizes and expert
// counts spanning the values its datasets converged to (§7.4.3).
func DefaultTuneOptions() TuneOptions {
	return TuneOptions{
		Samples: []int{2000, 10000, 50000},
		Codes:   []int{1, 2, 4, 8},
		Experts: []int{1, 2, 4, 9},
		Eps:     0.01,
		Budget:  10,
		Base:    DefaultOptions(),
	}
}

// Trial records one objective evaluation, for the Fig. 9 convergence plots.
type Trial struct {
	CodeSize   int
	NumExperts int
	SampleRows int
	Size       int64   // compressed size of the sample
	Ratio      float64 // Size / raw CSV size of the sample
}

// TuneResult is the tuner's outcome.
type TuneResult struct {
	// Best holds the chosen hyperparameters, with TrainSampleRows set to
	// the sample size the tuner settled on (0 = full data).
	Best Options
	// Trials is the evaluation history across all sample sizes.
	Trials []Trial
	// SampleUsed is the final sample size (rows; equals the table size when
	// tuning fell through to full data).
	SampleUsed int
	// Converged reports whether the eps cross-validation test passed.
	Converged bool
	// Stages reports per-stage wall-clock time for the tuning pipeline (one
	// stage per sample size plus its cross-validation), in completion order.
	Stages []StageStats
}

// Tune implements the paper's tune() pseudocode (Fig. 5): for growing
// sample sizes, Bayesian-optimize (code size × experts) to minimize the
// compressed sample size, then cross-validate the winner on an independent
// sample; accept once the normalized size difference drops below eps.
//
// One substitution from the paper: m.compress(x2) is realized as a full
// train-and-compress run on x2 with the winning hyperparameters (our
// archives are self-contained, there is no "compress with existing model"
// entry point). The eps test still measures exactly what the paper wants —
// whether results at this sample size are stable across samples.
func Tune(t *dataset.Table, thresholds []float64, topts TuneOptions) (*TuneResult, error) {
	return TuneContext(context.Background(), t, thresholds, topts)
}

// TuneContext is Tune with cancellation and parallel trial evaluation.
// Trials proposed together by the Bayesian optimizer run concurrently over
// one pool sized by topts.Base.Parallelism (shared with the trials' own
// internal stage parallelism), so the tuner's outcome is deterministic for a
// fixed (seed, Parallelism) pair; individual Compress results remain
// parallelism-independent.
func TuneContext(ctx context.Context, t *dataset.Table, thresholds []float64, topts TuneOptions) (*TuneResult, error) {
	if len(topts.Codes) == 0 || len(topts.Experts) == 0 {
		return nil, fmt.Errorf("core: tune needs candidate codes and experts")
	}
	if len(topts.Samples) == 0 {
		topts.Samples = []int{t.NumRows()}
	}
	sort.Ints(topts.Samples)
	if topts.Budget <= 0 {
		topts.Budget = 10
	}
	rng := rand.New(rand.NewSource(topts.Base.Seed + 7919))
	run := pipeline.New(ctx, topts.Base.Parallelism)
	res := &TuneResult{}
	rawSize := t.CSVSize()

	var lastBest Options
	lastSample := t.NumRows()
	for _, s := range topts.Samples {
		if s >= t.NumRows() {
			var best Options
			err := run.Stage(fmt.Sprintf("tune-full-%d", t.NumRows()), func() error {
				var err error
				best, err = minimizeSample(run, t, thresholds, topts, rng, t.NumRows(), res)
				return err
			})
			if err != nil {
				return nil, err
			}
			best.TrainSampleRows = 0
			res.Best = best
			res.SampleUsed = t.NumRows()
			res.Converged = true
			res.Stages = run.Stats()
			return res, nil
		}
		var diff float64
		var best Options
		err := run.Stage(fmt.Sprintf("tune-sample-%d", s), func() error {
			x1 := sampleTable(t, rng, s)
			var err error
			best, err = minimizeSample(run, x1, thresholds, topts, rng, s, res)
			if err != nil {
				return err
			}
			// Cross-validate on an independent sample; both compressions are
			// independent, so they run as a concurrent pair over the pool.
			x2 := sampleTable(t, rng, s)
			pair := [2]*dataset.Table{x1, x2}
			var sizes [2]int64
			err = run.ForEach(2, func(i int) error {
				r, _, _, err := compress(run.Context(), run.Pool(), pair[i], thresholds, best)
				if err != nil {
					return err
				}
				sizes[i] = r.Breakdown.Total
				return nil
			})
			if err != nil {
				return err
			}
			diff = math.Abs(float64(sizes[1]-sizes[0])) / float64(rawSize)
			return nil
		})
		if err != nil {
			return nil, err
		}
		lastBest, lastSample = best, s
		if diff < topts.Eps {
			best.TrainSampleRows = s
			res.Best = best
			res.SampleUsed = s
			res.Converged = true
			res.Stages = run.Stats()
			return res, nil
		}
	}
	// No sample size converged: return the model tuned on the largest.
	lastBest.TrainSampleRows = lastSample
	res.Best = lastBest
	res.SampleUsed = lastSample
	res.Stages = run.Stats()
	return res, nil
}

// minimizeSample runs Bayesian optimization of (code size, experts) on the
// given table (a sample or the full data). Proposals come in batches of up
// to the run's parallelism; each batch evaluates concurrently over the
// shared pool and is observed in proposal order, keeping the optimizer's
// trajectory deterministic for a fixed (seed, Parallelism) pair.
func minimizeSample(run *pipeline.Run, sample *dataset.Table, thresholds []float64, topts TuneOptions,
	rng *rand.Rand, sampleRows int, res *TuneResult) (Options, error) {
	grid := make([][]float64, 0, len(topts.Codes)*len(topts.Experts))
	type cell struct{ code, experts int }
	cells := make([]cell, 0, cap(grid))
	maxCode := float64(topts.Codes[len(topts.Codes)-1])
	maxExp := float64(topts.Experts[len(topts.Experts)-1])
	for _, c := range topts.Codes {
		for _, e := range topts.Experts {
			grid = append(grid, []float64{
				math.Log2(float64(c)+1) / math.Log2(maxCode+1),
				math.Log2(float64(e)+1) / math.Log2(maxExp+1),
			})
			cells = append(cells, cell{c, e})
		}
	}
	bo, err := bayesopt.New(rng, grid)
	if err != nil {
		return Options{}, err
	}
	budget := topts.Budget
	if budget > len(grid) {
		budget = len(grid)
	}
	rawSize := sample.CSVSize()
	for done := 0; done < budget; {
		batch := bo.NextBatch(min(run.Parallelism(), budget-done))
		sizes := make([]int64, len(batch))
		err := run.ForEach(len(batch), func(i int) error {
			opts := topts.Base
			opts.CodeSize = cells[batch[i]].code
			opts.NumExperts = cells[batch[i]].experts
			r, _, _, err := compress(run.Context(), run.Pool(), sample, thresholds, opts)
			if err != nil {
				return err
			}
			sizes[i] = r.Breakdown.Total
			return nil
		})
		if err != nil {
			return Options{}, err
		}
		for i, idx := range batch {
			bo.Observe(idx, float64(sizes[i]))
			res.Trials = append(res.Trials, Trial{
				CodeSize:   cells[idx].code,
				NumExperts: cells[idx].experts,
				SampleRows: sampleRows,
				Size:       sizes[i],
				Ratio:      float64(sizes[i]) / float64(rawSize),
			})
			topts.Base.logf("tune trial %d: code=%d experts=%d → %d bytes",
				done+i, cells[idx].code, cells[idx].experts, sizes[i])
		}
		done += len(batch)
	}
	bestIdx, _ := bo.Best()
	out := topts.Base
	out.CodeSize = cells[bestIdx].code
	out.NumExperts = cells[bestIdx].experts
	return out, nil
}

// sampleTable draws a uniform random row sample of size s.
func sampleTable(t *dataset.Table, rng *rand.Rand, s int) *dataset.Table {
	idx := rng.Perm(t.NumRows())[:s]
	sort.Ints(idx)
	return t.Sample(idx)
}
