package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"deepsqueeze/internal/bayesopt"
	"deepsqueeze/internal/dataset"
)

// TuneOptions configures the iterative Bayesian-optimization tuner of paper
// Fig. 5.
type TuneOptions struct {
	// Samples is the ascending list of training sample sizes to try.
	Samples []int
	// Codes is the candidate list of code sizes.
	Codes []int
	// Experts is the candidate list of expert counts.
	Experts []int
	// Eps is the generalization threshold: tuning stops growing the sample
	// once |size(x2) − size(x1)| / rawSize < Eps.
	Eps float64
	// Budget bounds the number of objective evaluations per sample size.
	Budget int
	// Base supplies everything else (seed, training options, preprocessing).
	// CodeSize/NumExperts/TrainSampleRows are overwritten by the tuner.
	Base Options
}

// DefaultTuneOptions mirrors the paper's setup: code sizes and expert
// counts spanning the values its datasets converged to (§7.4.3).
func DefaultTuneOptions() TuneOptions {
	return TuneOptions{
		Samples: []int{2000, 10000, 50000},
		Codes:   []int{1, 2, 4, 8},
		Experts: []int{1, 2, 4, 9},
		Eps:     0.01,
		Budget:  10,
		Base:    DefaultOptions(),
	}
}

// Trial records one objective evaluation, for the Fig. 9 convergence plots.
type Trial struct {
	CodeSize   int
	NumExperts int
	SampleRows int
	Size       int64   // compressed size of the sample
	Ratio      float64 // Size / raw CSV size of the sample
}

// TuneResult is the tuner's outcome.
type TuneResult struct {
	// Best holds the chosen hyperparameters, with TrainSampleRows set to
	// the sample size the tuner settled on (0 = full data).
	Best Options
	// Trials is the evaluation history across all sample sizes.
	Trials []Trial
	// SampleUsed is the final sample size (rows; equals the table size when
	// tuning fell through to full data).
	SampleUsed int
	// Converged reports whether the eps cross-validation test passed.
	Converged bool
}

// Tune implements the paper's tune() pseudocode (Fig. 5): for growing
// sample sizes, Bayesian-optimize (code size × experts) to minimize the
// compressed sample size, then cross-validate the winner on an independent
// sample; accept once the normalized size difference drops below eps.
//
// One substitution from the paper: m.compress(x2) is realized as a full
// train-and-compress run on x2 with the winning hyperparameters (our
// archives are self-contained, there is no "compress with existing model"
// entry point). The eps test still measures exactly what the paper wants —
// whether results at this sample size are stable across samples.
func Tune(t *dataset.Table, thresholds []float64, topts TuneOptions) (*TuneResult, error) {
	if len(topts.Codes) == 0 || len(topts.Experts) == 0 {
		return nil, fmt.Errorf("core: tune needs candidate codes and experts")
	}
	if len(topts.Samples) == 0 {
		topts.Samples = []int{t.NumRows()}
	}
	sort.Ints(topts.Samples)
	if topts.Budget <= 0 {
		topts.Budget = 10
	}
	rng := rand.New(rand.NewSource(topts.Base.Seed + 7919))
	res := &TuneResult{}
	rawSize := t.CSVSize()

	var lastBest Options
	lastSample := t.NumRows()
	for _, s := range topts.Samples {
		if s >= t.NumRows() {
			best, err := minimizeSample(t, thresholds, topts, rng, t.NumRows(), res)
			if err != nil {
				return nil, err
			}
			best.TrainSampleRows = 0
			res.Best = best
			res.SampleUsed = t.NumRows()
			res.Converged = true
			return res, nil
		}
		x1 := sampleTable(t, rng, s)
		best, err := minimizeSample(x1, thresholds, topts, rng, s, res)
		if err != nil {
			return nil, err
		}
		y1, err := Compress(x1, thresholds, best)
		if err != nil {
			return nil, err
		}
		x2 := sampleTable(t, rng, s)
		y2, err := Compress(x2, thresholds, best)
		if err != nil {
			return nil, err
		}
		diff := math.Abs(float64(y2.Breakdown.Total-y1.Breakdown.Total)) / float64(rawSize)
		lastBest, lastSample = best, s
		if diff < topts.Eps {
			best.TrainSampleRows = s
			res.Best = best
			res.SampleUsed = s
			res.Converged = true
			return res, nil
		}
	}
	// No sample size converged: return the model tuned on the largest.
	lastBest.TrainSampleRows = lastSample
	res.Best = lastBest
	res.SampleUsed = lastSample
	return res, nil
}

// minimizeSample runs Bayesian optimization of (code size, experts) on the
// given table (a sample or the full data).
func minimizeSample(sample *dataset.Table, thresholds []float64, topts TuneOptions,
	rng *rand.Rand, sampleRows int, res *TuneResult) (Options, error) {
	grid := make([][]float64, 0, len(topts.Codes)*len(topts.Experts))
	type cell struct{ code, experts int }
	cells := make([]cell, 0, cap(grid))
	maxCode := float64(topts.Codes[len(topts.Codes)-1])
	maxExp := float64(topts.Experts[len(topts.Experts)-1])
	for _, c := range topts.Codes {
		for _, e := range topts.Experts {
			grid = append(grid, []float64{
				math.Log2(float64(c)+1) / math.Log2(maxCode+1),
				math.Log2(float64(e)+1) / math.Log2(maxExp+1),
			})
			cells = append(cells, cell{c, e})
		}
	}
	bo, err := bayesopt.New(rng, grid)
	if err != nil {
		return Options{}, err
	}
	budget := topts.Budget
	if budget > len(grid) {
		budget = len(grid)
	}
	rawSize := sample.CSVSize()
	for trial := 0; trial < budget; trial++ {
		idx := bo.Next()
		opts := topts.Base
		opts.CodeSize = cells[idx].code
		opts.NumExperts = cells[idx].experts
		r, err := Compress(sample, thresholds, opts)
		if err != nil {
			return Options{}, err
		}
		bo.Observe(idx, float64(r.Breakdown.Total))
		res.Trials = append(res.Trials, Trial{
			CodeSize:   cells[idx].code,
			NumExperts: cells[idx].experts,
			SampleRows: sampleRows,
			Size:       r.Breakdown.Total,
			Ratio:      float64(r.Breakdown.Total) / float64(rawSize),
		})
		opts.logf("tune trial %d: code=%d experts=%d → %d bytes",
			trial, cells[idx].code, cells[idx].experts, r.Breakdown.Total)
	}
	bestIdx, _ := bo.Best()
	out := topts.Base
	out.CodeSize = cells[bestIdx].code
	out.NumExperts = cells[bestIdx].experts
	return out, nil
}

// sampleTable draws a uniform random row sample of size s.
func sampleTable(t *dataset.Table, rng *rand.Rand, s int) *dataset.Table {
	idx := rng.Perm(t.NumRows())[:s]
	sort.Ints(idx)
	return t.Sample(idx)
}
