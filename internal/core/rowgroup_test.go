package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// groupOpts compresses with a small row-group size so modest test tables
// split into several groups.
func groupOpts(groupSize, experts int) Options {
	o := quickOpts()
	o.RowGroupSize = groupSize
	o.NumExperts = experts
	return o
}

func TestRowGroupRoundTripSizes(t *testing.T) {
	tb := latentTable(1000, 11)
	thr := []float64{0, 0, 0.05, 0.05, 0}
	tol := tolerances(tb, thr)
	for _, gs := range []int{0, 100, 333, 1000, 5000} {
		opts := quickOpts()
		opts.RowGroupSize = gs
		res, err := Compress(tb, thr, opts)
		if err != nil {
			t.Fatalf("group size %d: %v", gs, err)
		}
		got, err := Decompress(res.Archive)
		if err != nil {
			t.Fatalf("group size %d: %v", gs, err)
		}
		if err := tb.EqualWithin(got, tol); err != nil {
			t.Fatalf("group size %d: %v", gs, err)
		}
		info, err := Inspect(res.Archive)
		if err != nil {
			t.Fatalf("group size %d: %v", gs, err)
		}
		wantGroups := 1
		if gs > 0 && gs < 1000 {
			wantGroups = (1000 + gs - 1) / gs
		}
		if len(info.Groups) != wantGroups {
			t.Fatalf("group size %d: %d groups, want %d", gs, len(info.Groups), wantGroups)
		}
		next := 0
		for _, g := range info.Groups {
			if g.RowStart != next {
				t.Fatalf("group size %d: group starts at %d, want %d", gs, g.RowStart, next)
			}
			next += g.RowCount
		}
		if next != 1000 {
			t.Fatalf("group size %d: groups cover %d rows", gs, next)
		}
	}
}

func TestRowGroupMultiExpertRoundTrip(t *testing.T) {
	tb := latentTable(900, 12)
	thr := []float64{0, 0, 0.05, 0.05, 0}
	tol := tolerances(tb, thr)
	for _, keep := range []bool{true, false} {
		opts := groupOpts(200, 2)
		opts.KeepRowOrder = keep
		res, err := Compress(tb, thr, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decompress(res.Archive)
		if err != nil {
			t.Fatal(err)
		}
		if keep {
			if err := tb.EqualWithin(got, tol); err != nil {
				t.Fatalf("keepOrder: %v", err)
			}
		} else if got.NumRows() != tb.NumRows() {
			t.Fatalf("!keepOrder: %d rows, want %d", got.NumRows(), tb.NumRows())
		}
	}
}

// TestRowGroupDeterministicAcrossParallelism pins the ISSUE's determinism
// acceptance criterion: identical bytes at parallelism 1, 4, and NumCPU.
func TestRowGroupDeterministicAcrossParallelism(t *testing.T) {
	tb := latentTable(700, 13)
	thr := []float64{0, 0, 0.05, 0.05, 0}
	var ref []byte
	for _, p := range []int{1, 4, runtime.NumCPU()} {
		opts := groupOpts(150, 2)
		opts.Parallelism = p
		res, err := Compress(tb, thr, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Archive
		} else if !bytes.Equal(ref, res.Archive) {
			t.Fatalf("archive differs at parallelism %d", p)
		}
	}
}

// TestRowRangeSkipsGroups pins the tentpole's skip guarantee: a RowRange
// decode of a multi-group archive must skip every non-overlapping group's
// segment, observable as scan-stage skipped bytes covering those segments.
func TestRowRangeSkipsGroups(t *testing.T) {
	tb := latentTable(1000, 14)
	opts := groupOpts(100, 1)
	res, err := Compress(tb, []float64{0, 0, 0.05, 0.05, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Groups) != 10 {
		t.Fatalf("%d groups, want 10", len(info.Groups))
	}
	// Rows [450, 550) overlap exactly groups 4 and 5; the other eight
	// segments must be skipped whole.
	var wantSkipped int64
	for i, g := range info.Groups {
		if i != 4 && i != 5 {
			// The skip covers the segment chunk payload (the framed bytes),
			// not the kind byte or length prefix.
			wantSkipped += g.SegmentBytes
		}
	}
	dres, err := DecompressContext(context.Background(), res.Archive,
		DecompressOptions{RowRange: RowRange{Lo: 450, Hi: 550}})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Table.NumRows() != 100 {
		t.Fatalf("%d rows, want 100", dres.Table.NumRows())
	}
	full, err := Decompress(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	for col := range tb.Schema.Columns {
		if err := columnEqual(full, dres.Table, col, col, 450); err != nil {
			t.Fatal(err)
		}
	}
	var scanSkipped int64
	for _, st := range dres.Stages {
		if st.Name == "scan" {
			scanSkipped = st.Bytes
		}
	}
	// Each skipped segment contributes its framed payload; framing overhead
	// (kind byte + length prefix) stays outside the skip count, so the
	// skipped bytes land a hair under the summed segment extents but must
	// cover nearly all of them.
	if scanSkipped < wantSkipped-int64(len(info.Groups)*12) {
		t.Fatalf("scan skipped %d bytes, want ≈%d (8 whole segments)", scanSkipped, wantSkipped)
	}
	// A full decode must not skip anything.
	fres, err := DecompressContext(context.Background(), res.Archive, DecompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range fres.Stages {
		if st.Name == "scan" && st.Bytes != 0 {
			t.Fatalf("full decode scan skipped %d bytes", st.Bytes)
		}
	}
}

// TestRowRangeAcrossGroupsMatchesV1Semantics sweeps row ranges over group
// boundaries and compares with the full decode.
func TestRowRangeAcrossGroups(t *testing.T) {
	archive, _ := compressLatent(t, 640, 15, groupOpts(128, 2))
	full := decodeOpts(t, archive, DecompressOptions{})
	ranges := []RowRange{
		{0, 1}, {0, 128}, {127, 129}, {128, 256}, {100, 500}, {639, 640}, {0, 640},
	}
	for _, rr := range ranges {
		got := decodeOpts(t, archive, DecompressOptions{RowRange: rr})
		if got.NumRows() != rr.Hi-rr.Lo {
			t.Fatalf("range %+v: %d rows", rr, got.NumRows())
		}
		for col := range full.Schema.Columns {
			if err := columnEqual(full, got, col, col, rr.Lo); err != nil {
				t.Fatalf("range %+v: %v", rr, err)
			}
		}
	}
}

// TestRowGroupProjectionAcrossGroups combines column projection with
// multi-group archives.
func TestRowGroupProjectionAcrossGroups(t *testing.T) {
	archive, _ := compressLatent(t, 500, 16, groupOpts(120, 2))
	full := decodeOpts(t, archive, DecompressOptions{})
	got := decodeOpts(t, archive, DecompressOptions{
		Columns:  []string{"cat", "m2"},
		RowRange: RowRange{Lo: 60, Hi: 400},
	})
	if got.NumRows() != 340 || got.Schema.NumColumns() != 2 {
		t.Fatalf("got %d rows × %d cols", got.NumRows(), got.Schema.NumColumns())
	}
	for gi, name := range []string{"cat", "m2"} {
		fi := -1
		for i, c := range full.Schema.Columns {
			if c.Name == name {
				fi = i
			}
		}
		if err := columnEqual(full, got, fi, gi, 60); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInspectGroupSections checks the footer's per-group section sizes sum
// to the breakdown's totals.
func TestInspectGroupSections(t *testing.T) {
	tb := latentTable(600, 17)
	res, err := Compress(tb, []float64{0, 0, 0.05, 0.05, 0}, groupOpts(150, 2))
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.RowGroupSize != 150 || info.Rows != 600 {
		t.Fatalf("info = %+v", info)
	}
	var codes, mapping, failures int64
	for _, g := range info.Groups {
		codes += g.CodesBytes
		mapping += g.MappingBytes
		failures += g.FailureBytes
	}
	bd := res.Breakdown
	if codes != bd.Codes || mapping != bd.Mapping || failures != bd.Failures {
		t.Fatalf("group sections %d/%d/%d, breakdown %d/%d/%d",
			codes, mapping, failures, bd.Codes, bd.Mapping, bd.Failures)
	}
}

// TestGroupMaskSkipsGroups pins the query engine's pruning hook: a GroupMask
// decode must skip every masked-out group's segment (scan-stage skipped
// bytes), concatenate the surviving groups' rows in archive order, and charge
// nothing on a full mask.
func TestGroupMaskSkipsGroups(t *testing.T) {
	tb := latentTable(1000, 18)
	res, err := Compress(tb, []float64{0, 0, 0.05, 0.05, 0}, groupOpts(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Groups) != 10 {
		t.Fatalf("%d groups, want 10", len(info.Groups))
	}
	full, err := Decompress(res.Archive)
	if err != nil {
		t.Fatal(err)
	}

	// Keep only groups 4 and 5: identical to decoding rows [400, 600).
	mask := make([]bool, 10)
	mask[4], mask[5] = true, true
	var wantSkipped int64
	for i, g := range info.Groups {
		if !mask[i] {
			wantSkipped += g.SegmentBytes
		}
	}
	dres, err := DecompressContext(context.Background(), res.Archive,
		DecompressOptions{GroupMask: mask})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Table.NumRows() != 200 {
		t.Fatalf("%d rows, want 200", dres.Table.NumRows())
	}
	for col := range tb.Schema.Columns {
		if err := columnEqual(full, dres.Table, col, col, 400); err != nil {
			t.Fatal(err)
		}
	}
	var scanSkipped int64
	for _, st := range dres.Stages {
		if st.Name == "scan" {
			scanSkipped = st.Bytes
		}
	}
	if scanSkipped < wantSkipped-int64(len(info.Groups)*12) {
		t.Fatalf("scan skipped %d bytes, want ≈%d (8 pruned segments)", scanSkipped, wantSkipped)
	}

	// A non-contiguous mask concatenates the surviving groups' rows.
	mask = make([]bool, 10)
	mask[1], mask[4], mask[7] = true, true, true
	got := decodeOpts(t, res.Archive, DecompressOptions{GroupMask: mask})
	if got.NumRows() != 300 {
		t.Fatalf("%d rows, want 300", got.NumRows())
	}
	for col := range tb.Schema.Columns {
		for k, lo := range []int{100, 400, 700} {
			idx := make([]int, 100)
			for i := range idx {
				idx[i] = k*100 + i
			}
			window := got.Sample(idx)
			if err := columnEqual(full, window, col, col, lo); err != nil {
				t.Fatalf("group window starting at %d: %v", lo, err)
			}
		}
	}

	// GroupMask composes with RowRange: the group must be unmasked AND
	// overlap the range.
	mask = []bool{true, true, true, true, true, false, false, false, false, false}
	got = decodeOpts(t, res.Archive, DecompressOptions{
		GroupMask: mask, RowRange: RowRange{Lo: 450, Hi: 550},
	})
	if got.NumRows() != 50 {
		t.Fatalf("%d rows, want 50", got.NumRows())
	}
	for col := range tb.Schema.Columns {
		if err := columnEqual(full, got, col, col, 450); err != nil {
			t.Fatal(err)
		}
	}

	// An all-true mask decodes everything and skips nothing.
	all := make([]bool, 10)
	for i := range all {
		all[i] = true
	}
	fres, err := DecompressContext(context.Background(), res.Archive,
		DecompressOptions{GroupMask: all})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Table.NumRows() != 1000 {
		t.Fatalf("%d rows, want 1000", fres.Table.NumRows())
	}
	for _, st := range fres.Stages {
		if st.Name == "scan" && st.Bytes != 0 {
			t.Fatalf("all-true mask skipped %d bytes", st.Bytes)
		}
	}

	// A mask of the wrong length is a caller error, not corruption.
	if _, err := DecompressContext(context.Background(), res.Archive,
		DecompressOptions{GroupMask: make([]bool, 3)}); err == nil {
		t.Fatal("short mask accepted")
	}
}

// TestGroupMaskV1 covers the version-1 single-group semantics: the mask has
// exactly one entry; false selects no rows.
func TestGroupMaskV1(t *testing.T) {
	archive, err := os.ReadFile(filepath.Join("testdata", "categorical.dsqz"))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(archive)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeOpts(t, archive, DecompressOptions{GroupMask: []bool{true}})
	if got.NumRows() != full.NumRows() {
		t.Fatalf("%d rows, want %d", got.NumRows(), full.NumRows())
	}
	got = decodeOpts(t, archive, DecompressOptions{GroupMask: []bool{false}})
	if got.NumRows() != 0 {
		t.Fatalf("masked-out v1 decode returned %d rows", got.NumRows())
	}
	if _, err := DecompressContext(context.Background(), archive,
		DecompressOptions{GroupMask: []bool{true, false}}); err == nil {
		t.Fatal("two-entry mask accepted for a v1 archive")
	}
}
