package core

import (
	"context"
	"fmt"
	"os"
	"sync"

	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/preprocess"
)

// archiveMeta is the parsed-once, immutable view of an archive's metadata:
// envelope, header, layout, footer index, and the location of the decoder
// section. Everything in it is derived from the archive bytes alone — no
// per-request state — so one meta can back any number of concurrent
// decompressions and queries. Allocation is bounded by the archive length
// (never by the declared row count), so parsing an untrusted archive is safe
// before any MaxRows policy is applied.
type archiveMeta struct {
	raw  []byte // the whole archive, checksum included
	body []byte // CRC-stripped body (sectionReader view)

	version byte
	flags   byte

	rows         int
	plan         *preprocess.Plan
	layout       *layout
	codeSize     int
	codeBits     int
	numExperts   int
	rowGroupSize int
	hasModel     bool

	footer  *archiveFooter // version 2 only
	footOff int64          // footer kind-byte offset (version 2 only)

	// decoderChunk is the raw (still compressed) decoder-section payload —
	// or the 32-byte model hash for streaming batch archives; nil when the
	// archive has no model.
	decoderChunk []byte
	// bodyPos is the body offset of the first row-group section, i.e. just
	// past the decoder chunk: where a per-request scan resumes.
	bodyPos int
}

// parseArchiveMeta validates the envelope and checksum, decodes the header
// (and, for version 2, the footer index), derives the model layout, checks
// the header's model-shape fields for honesty, and locates the decoder
// section. It is the single metadata parse behind Open, ReadIndex, Inspect,
// and every byte-slice decompression entry point.
func parseArchiveMeta(archive []byte) (*archiveMeta, error) {
	r, version, flags, err := newSectionReader(archive)
	if err != nil {
		return nil, err
	}
	hdr, err := r.chunk()
	if err != nil {
		return nil, err
	}
	h, err := decodeHeader(hdr, version)
	if err != nil {
		return nil, err
	}
	m := &archiveMeta{
		raw:          archive,
		body:         r.buf,
		version:      version,
		flags:        flags,
		plan:         h.plan,
		codeSize:     h.codeSize,
		codeBits:     h.codeBits,
		numExperts:   h.numExperts,
		rowGroupSize: h.rowGroupSize,
	}
	if version == archiveVersionV1 {
		m.rows = h.rows
	} else {
		ft, footOff, err := parseFooter(r.buf, r.pos)
		if err != nil {
			return nil, err
		}
		m.footer, m.footOff = ft, footOff
		m.rows = ft.rows
	}
	if m.numExperts < 1 || m.numExperts > m.rows+1 {
		return nil, fmt.Errorf("%w: %d experts for %d rows", ErrCorrupt, m.numExperts, m.rows)
	}
	lo, err := deriveLayout(m.plan)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	m.layout = lo
	m.hasModel = flags&flagHasModel != 0
	if m.hasModel != (len(lo.specs) > 0 && m.rows > 0) {
		return nil, fmt.Errorf("%w: model flag disagrees with plan", ErrCorrupt)
	}
	if m.hasModel {
		// Each code dimension occupies at least one archive byte, so a code
		// size past the archive length cannot be honest; code bits outside
		// [1, 32] would overflow the reconstruction grid.
		if m.codeSize < 0 || m.codeSize > len(archive) {
			return nil, fmt.Errorf("%w: code size %d exceeds archive", ErrCorrupt, m.codeSize)
		}
		if m.codeBits < 1 || m.codeBits > 32 {
			return nil, fmt.Errorf("%w: code bits %d outside [1,32]", ErrCorrupt, m.codeBits)
		}
		// The decoder chunk sits directly after the header in both formats.
		// Only its frame is validated here; the weights inside are inflated
		// and parsed once, on the first request that needs the model.
		if m.decoderChunk, err = r.chunk(); err != nil {
			return nil, err
		}
	}
	m.bodyPos = r.pos
	return m, nil
}

// index builds the query planner's view from parsed metadata: the row-group
// index plus, when the archive carries them, per-column zone maps (validated
// to exactly fill the gap between the last segment and the footer).
func (m *archiveMeta) index() (*ArchiveIndex, error) {
	idx := &ArchiveIndex{
		Version:  int(m.version),
		Rows:     m.rows,
		Plan:     m.plan,
		External: m.flags&flagExternalModel != 0,
	}
	if m.version == archiveVersionV1 {
		idx.Groups = []IndexGroup{{Start: 0, Count: m.rows, SegmentBytes: int64(len(m.raw))}}
		return idx, nil
	}
	ft := m.footer
	idx.Groups = make([]IndexGroup, len(ft.groups))
	for i, g := range ft.groups {
		idx.Groups[i] = IndexGroup{Start: g.start, Count: g.count, SegmentBytes: g.segLen}
	}
	last := ft.groups[len(ft.groups)-1]
	statOff := last.off + last.segLen
	if m.flags&flagZoneMaps == 0 {
		if statOff != m.footOff {
			return nil, fmt.Errorf("%w: %d unclaimed bytes before footer", ErrCorrupt, m.footOff-statOff)
		}
		return idx, nil
	}
	// The stats chunk must fill the gap between the last segment and the
	// footer exactly.
	if statOff >= m.footOff {
		return nil, fmt.Errorf("%w: no room for stats chunk", ErrCorrupt)
	}
	sr := &sectionReader{buf: m.body[:m.footOff], pos: int(statOff)}
	kind, err := sr.byte()
	if err != nil {
		return nil, err
	}
	if kind != kindStats {
		return nil, fmt.Errorf("%w: chunk kind %d, want stats", ErrCorrupt, kind)
	}
	payload, err := sr.chunk()
	if err != nil {
		return nil, err
	}
	if err := sr.done(); err != nil {
		return nil, err
	}
	zones, err := parseZoneStats(payload, m.plan, len(ft.groups))
	if err != nil {
		return nil, err
	}
	idx.HasZoneMaps = true
	for i := range idx.Groups {
		idx.Groups[i].Zones = zones[i]
	}
	return idx, nil
}

// info builds the human-facing archive summary from parsed metadata.
func (m *archiveMeta) info() *ArchiveInfo {
	info := &ArchiveInfo{
		Version:           int(m.version),
		Rows:              m.rows,
		Schema:            m.plan.Schema,
		CodeSize:          m.codeSize,
		CodeBits:          m.codeBits,
		NumExperts:        m.numExperts,
		Streaming:         m.flags&flagExternalModel != 0,
		RowOrderPreserved: m.flags&flagRowOrder != 0,
		TotalBytes:        len(m.raw),
		RowGroupSize:      m.rowGroupSize,
		DecoderBytes:      int64(len(m.decoderChunk)),
		Float32Decode:     m.flags&flagFloat32 != 0,
	}
	if m.version != archiveVersionV1 {
		info.HasZoneMaps = m.flags&flagZoneMaps != 0
		info.Groups = make([]GroupInfo, len(m.footer.groups))
		for i, g := range m.footer.groups {
			info.Groups[i] = GroupInfo{
				RowStart:     g.start,
				RowCount:     g.count,
				SegmentBytes: g.segLen,
				CodesBytes:   g.codes,
				MappingBytes: g.mapping,
				FailureBytes: g.failures,
			}
		}
	}
	info.ColumnKind = make([]string, len(m.plan.Cols))
	info.KindCensus = make(map[string]int)
	for i := range m.plan.Cols {
		info.ColumnKind[i] = m.plan.Cols[i].Kind.String()
		info.KindCensus[info.ColumnKind[i]]++
	}
	return info
}

// Archive is an open-once/serve-many handle: the archive's header, footer
// index, zone maps, and decoder section are parsed at most once, and any
// number of concurrent decompressions and queries execute against the shared
// parsed state. The handle is immutable after Open and safe for concurrent
// use; the expensive pieces (decoder weights, zone maps) are materialized
// lazily on first use and then cached for the handle's lifetime, so a
// request pattern that never touches the model never pays for it.
type Archive struct {
	meta *archiveMeta

	idxOnce sync.Once
	idx     *ArchiveIndex
	idxErr  error

	decOnce sync.Once
	decs    []*nn.Decoder
	decErr  error

	dec32Once sync.Once
	decs32    []*nn.Decoder32
	dec32Err  error
}

// Open parses the archive's metadata (envelope, checksum, header, footer
// index, decoder-section frame) once and returns a handle for repeated
// decompression and querying. The handle keeps a reference to the archive
// bytes; the caller must not mutate them afterwards.
func Open(archive []byte) (*Archive, error) {
	m, err := parseArchiveMeta(archive)
	if err != nil {
		return nil, err
	}
	return &Archive{meta: m}, nil
}

// OpenFile reads the archive at path and opens it. ErrCorrupt-class failures
// are attributed to the path.
func OpenFile(path string) (*Archive, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := Open(buf)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// Rows returns the archived table's total row count.
func (a *Archive) Rows() int { return a.meta.rows }

// Schema returns the archived table's schema.
func (a *Archive) Schema() *dataset.Schema { return a.meta.plan.Schema }

// Size returns the archive's size in bytes.
func (a *Archive) Size() int { return len(a.meta.raw) }

// External reports whether this is a streaming batch archive whose model
// lives in a separate model archive (DecompressBatch territory: the handle
// cannot decode it alone).
func (a *Archive) External() bool { return a.meta.flags&flagExternalModel != 0 }

// Float32 reports whether the archive's plan mandates float32 decode
// (flagFloat32): its stored corrections assume float32 inference, so every
// reader — including this handle — replays the float32 kernel path.
func (a *Archive) Float32() bool { return a.meta.flags&flagFloat32 != 0 }

// Info returns the archive's metadata summary (what Inspect reports),
// built from the already-parsed header and footer.
func (a *Archive) Info() *ArchiveInfo { return a.meta.info() }

// Index returns the query planner's view of the archive — row groups and
// zone maps. The zone-map stats chunk is parsed on the first call and cached
// for the handle's lifetime; the returned index is shared and must not be
// mutated.
func (a *Archive) Index() (*ArchiveIndex, error) {
	a.idxOnce.Do(func() {
		a.idx, a.idxErr = a.meta.index()
	})
	return a.idx, a.idxErr
}

// decoders inflates and parses the archive's decoder section on first call
// and caches the parsed experts — the open-once amortization that makes a
// warm handle cheap to query. Decoders are stateless during inference, so
// the cached slice is shared across concurrent requests.
func (a *Archive) decoders() ([]*nn.Decoder, error) {
	a.decOnce.Do(func() {
		m := a.meta
		if !m.hasModel {
			return // no model columns: callers gate on needModel
		}
		if m.flags&flagExternalModel != 0 {
			a.decErr = fmt.Errorf("%w: streaming batch archive needs its model archive (use DecompressBatch)", ErrCorrupt)
			return
		}
		a.decs, a.decErr = parseCheckedDecoders(m.decoderChunk, m.numExperts, m.codeSize, len(m.layout.specs))
	})
	return a.decs, a.decErr
}

// decoders32 narrows the cached decoders into their float32 views on first
// call — the decode path for archives carrying flagFloat32. Like the float64
// cache, the views are stateless during inference and shared across requests.
func (a *Archive) decoders32() ([]*nn.Decoder32, error) {
	a.dec32Once.Do(func() {
		decs, err := a.decoders()
		if err != nil {
			a.dec32Err = err
			return
		}
		a.decs32 = nn.Decoders32(decs)
	})
	return a.decs32, a.dec32Err
}

// Decompress reconstructs the table (or the projection opts selects) against
// the open handle. See DecompressContext.
func (a *Archive) Decompress(opts DecompressOptions) (*DecompressResult, error) {
	return a.decompress(context.Background(), opts, nil)
}

// DecompressContext runs one decompression request against the open handle:
// the stages reuse the handle's parsed metadata and cached decoders, so a
// warm handle pays only for the rows and columns the request actually
// touches. Concurrent requests against one handle are safe and independent.
func (a *Archive) DecompressContext(ctx context.Context, opts DecompressOptions) (*DecompressResult, error) {
	return a.decompress(ctx, opts, nil)
}
