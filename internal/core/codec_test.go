package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"deepsqueeze/internal/codec"
	"deepsqueeze/internal/dataset"
)

// skewedCatTable builds the fixture the range codecs are for: a categorical
// column whose value distribution is heavily skewed (Zipf-ish), so the
// failure-rank streams concentrate near zero, plus numeric columns with
// latent structure for the autoencoder.
func skewedCatTable(rows int, seed int64) *dataset.Table {
	schema := dataset.NewSchema(
		dataset.Column{Name: "city", Type: dataset.Categorical},
		dataset.Column{Name: "tier", Type: dataset.Categorical},
		dataset.Column{Name: "m1", Type: dataset.Numeric},
		dataset.Column{Name: "m2", Type: dataset.Numeric},
	)
	t := dataset.NewTable(schema, rows)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		// Exponential skew over 64 city labels: label 0 dominates.
		c := int(rng.ExpFloat64() * 6)
		if c > 63 {
			c = 63
		}
		z := rng.Float64()
		tier := "low"
		if z > 0.8 {
			tier = "high"
		}
		t.AppendRow(
			[]string{fmt.Sprintf("city-%02d", c), tier},
			[]float64{z*50 + rng.NormFloat64(), math.Floor(z * 8)},
		)
	}
	return t
}

func TestOptionsCodecValidation(t *testing.T) {
	for _, name := range []string{"", "auto", "stored", "deflate", "range", "range-adaptive", "range-cpt"} {
		o := quickOpts()
		o.Codec = name
		if err := o.validate(); err != nil {
			t.Fatalf("Codec %q rejected: %v", name, err)
		}
	}
	o := quickOpts()
	o.Codec = "lzma"
	if err := o.validate(); err == nil {
		t.Fatal("Codec \"lzma\" accepted")
	}
}

// Every codec selection must produce a decodable archive that reconstructs
// the table within tolerance.
func TestRoundTripEveryCodec(t *testing.T) {
	tb := skewedCatTable(1200, 11)
	thr := []float64{0, 0, 0.05, 0}
	for _, name := range []string{"auto", "stored", "deflate", "range", "range-adaptive", "range-cpt"} {
		t.Run(name, func(t *testing.T) {
			opts := quickOpts()
			opts.Codec = name
			_, got := roundTrip(t, tb, thr, opts)
			if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Codec choice is a pure function of stream bytes, so the archive must be
// byte-identical at every parallelism level.
func TestCodecDeterministicAcrossParallelism(t *testing.T) {
	tb := skewedCatTable(1500, 12)
	thr := []float64{0, 0, 0.05, 0}
	var first []byte
	for _, p := range []int{1, 4, runtime.NumCPU()} {
		opts := quickOpts()
		opts.Parallelism = p
		res, err := Compress(tb, thr, opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if first == nil {
			first = res.Archive
			continue
		}
		if !bytes.Equal(res.Archive, first) {
			t.Fatalf("parallelism %d: archive differs from parallelism 1", p)
		}
	}
}

// With the range codecs enabled (the default) the skewed fixture must
// actually use them somewhere, and the auto archive must not exceed the
// DEFLATE-only one.
func TestAutoUsesRangeCodecsOnSkewedData(t *testing.T) {
	tb := skewedCatTable(2500, 13)
	thr := []float64{0, 0, 0.05, 0}
	auto, err := Compress(tb, thr, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	dopts := quickOpts()
	dopts.Codec = "deflate"
	deflate, err := Compress(tb, thr, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.Archive) > len(deflate.Archive) {
		t.Fatalf("auto archive %dB > deflate archive %dB", len(auto.Archive), len(deflate.Archive))
	}
	stats, err := InspectStreams(auto.Archive)
	if err != nil {
		t.Fatal(err)
	}
	rangeFrames := 0
	for _, st := range stats {
		rangeFrames += st.Codecs[codec.Name(codec.TagRangeAdaptive)]
		rangeFrames += st.Codecs[codec.Name(codec.TagRangeCPT)]
	}
	if rangeFrames == 0 {
		t.Fatal("no range-coded frames in the skewed fixture's archive")
	}
}

// StreamStats' accounting must be internally consistent: chunk counts match
// the codec histograms, frames never beat their stored form by less than
// zero, and the "stored" codec reports FrameBytes == RawBytes.
func TestStreamStatsConsistency(t *testing.T) {
	tb := skewedCatTable(1800, 14)
	thr := []float64{0, 0, 0.05, 0}
	opts := quickOpts()
	opts.NumExperts = 2
	res, err := Compress(tb, thr, opts)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := InspectStreams(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no streams reported")
	}
	var frameTotal int64
	seen := map[string]bool{}
	for _, st := range stats {
		seen[st.Stream] = true
		hist := 0
		for _, n := range st.Codecs {
			hist += n
		}
		if hist != st.Chunks {
			t.Fatalf("%s/%s: codec histogram %d != chunks %d", st.Column, st.Stream, hist, st.Chunks)
		}
		if st.FrameBytes <= 0 || st.RawBytes <= 0 {
			t.Fatalf("%s/%s: non-positive sizes %+v", st.Column, st.Stream, st)
		}
		frameTotal += st.FrameBytes
	}
	if !seen["codes"] || !seen["mapping"] {
		t.Fatalf("missing expected streams; saw %v", seen)
	}
	if frameTotal >= int64(len(res.Archive)) {
		t.Fatalf("stream frame bytes %d not below archive size %d", frameTotal, len(res.Archive))
	}
	// The handle-based walker must agree with the one-shot helper.
	a, err := Open(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	again, err := a.StreamStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(stats) {
		t.Fatalf("handle walker found %d streams, one-shot found %d", len(again), len(stats))
	}
	for i := range again {
		if again[i].FrameBytes != stats[i].FrameBytes || again[i].Chunks != stats[i].Chunks {
			t.Fatalf("stream %d: handle %+v != one-shot %+v", i, again[i], stats[i])
		}
	}
}

// StreamSummaries must mirror StreamStat values into the JSON form.
func TestStreamSummaries(t *testing.T) {
	stats := []StreamStat{
		{Column: "c", Stream: "failures", Chunks: 2, Codecs: map[string]int{"range-cpt": 2}, FrameBytes: 10, RawBytes: 40},
	}
	sums := StreamSummaries(stats)
	if len(sums) != 1 {
		t.Fatalf("got %d summaries", len(sums))
	}
	s := sums[0]
	if s.Column != "c" || s.Stream != "failures" || s.Chunks != 2 || s.FrameBytes != 10 || s.RawBytes != 40 || s.Codecs["range-cpt"] != 2 {
		t.Fatalf("summary %+v does not mirror stat", s)
	}
}
