package core

import (
	"bytes"
	"io"
	"testing"

	"deepsqueeze/internal/dataset"
)

// writeStream pushes tb through an ArchiveWriter in writeRows-sized calls.
func writeStream(t *testing.T, tb *dataset.Table, writeRows int, opts Options) ([]byte, WriterStats) {
	t.Helper()
	var buf bytes.Buffer
	aw, err := NewArchiveWriter(&buf, tb.Schema, []float64{0, 0, 0.05, 0.05, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < tb.NumRows(); lo += writeRows {
		hi := lo + writeRows
		if hi > tb.NumRows() {
			hi = tb.NumRows()
		}
		chunk := dataset.NewTable(tb.Schema, hi-lo)
		appendRows(chunk, tb, lo, hi)
		if err := aw.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), aw.Stats()
}

// readStream drains an ArchiveReader into one table.
func readStream(t *testing.T, archive []byte) *dataset.Table {
	t.Helper()
	ar, err := NewArchiveReader(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	out := dataset.NewTable(ar.Schema(), 0)
	for {
		g, err := ar.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		appendRows(out, g, 0, g.NumRows())
	}
	return out
}

func TestArchiveWriterReaderRoundTrip(t *testing.T) {
	tb := latentTable(1100, 21)
	thr := []float64{0, 0, 0.05, 0.05, 0}
	tol := tolerances(tb, thr)
	for _, experts := range []int{1, 2} {
		opts := quickOpts()
		opts.RowGroupSize = 250
		opts.NumExperts = experts
		archive, stats := writeStream(t, tb, 170, opts)
		if stats.Rows != 1100 || stats.Groups != 5 {
			t.Fatalf("experts %d: stats %+v", experts, stats)
		}
		// Structural bounded-memory guarantee: the buffer never holds more
		// than one row group plus one Write call's rows.
		if stats.MaxBufferedRows > 250+170 {
			t.Fatalf("experts %d: buffered %d rows", experts, stats.MaxBufferedRows)
		}
		// The streamed archive is a normal v2 archive for the in-memory path.
		got, err := Decompress(archive)
		if err != nil {
			t.Fatalf("experts %d: %v", experts, err)
		}
		if err := tb.EqualWithin(got, tol); err != nil {
			t.Fatalf("experts %d: in-memory decode: %v", experts, err)
		}
		// And the streaming reader reproduces the same rows group by group.
		sgot := readStream(t, archive)
		if err := tb.EqualWithin(sgot, tol); err != nil {
			t.Fatalf("experts %d: streaming decode: %v", experts, err)
		}
		info, err := Inspect(archive)
		if err != nil {
			t.Fatal(err)
		}
		if info.Rows != 1100 || len(info.Groups) != 5 {
			t.Fatalf("experts %d: inspect %+v", experts, info)
		}
	}
}

func TestArchiveWriterShortTable(t *testing.T) {
	// Fewer rows than one group: everything flushes at Close.
	tb := latentTable(60, 22)
	opts := quickOpts()
	opts.RowGroupSize = 4096
	archive, stats := writeStream(t, tb, 25, opts)
	if stats.Groups != 1 {
		t.Fatalf("stats %+v", stats)
	}
	got := readStream(t, archive)
	if err := tb.EqualWithin(got, tolerances(tb, []float64{0, 0, 0.05, 0.05, 0})); err != nil {
		t.Fatal(err)
	}
}

func TestArchiveWriterEmpty(t *testing.T) {
	schema := latentTable(1, 23).Schema
	var buf bytes.Buffer
	aw, err := NewArchiveWriter(&buf, schema, []float64{0, 0, 0, 0, 0}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Fatalf("%d rows", got.NumRows())
	}
	if sg := readStream(t, buf.Bytes()); sg.NumRows() != 0 {
		t.Fatalf("streaming: %d rows", sg.NumRows())
	}
}

func TestArchiveWriterRange(t *testing.T) {
	// Row-range decode of a streamed archive skips non-overlapping groups.
	tb := latentTable(800, 24)
	opts := quickOpts()
	opts.RowGroupSize = 100
	archive, _ := writeStream(t, tb, 800, opts)
	full := decodeOpts(t, archive, DecompressOptions{})
	got := decodeOpts(t, archive, DecompressOptions{RowRange: RowRange{Lo: 350, Hi: 420}})
	if got.NumRows() != 70 {
		t.Fatalf("%d rows", got.NumRows())
	}
	for col := range full.Schema.Columns {
		if err := columnEqual(full, got, col, col, 350); err != nil {
			t.Fatal(err)
		}
	}
}

func TestArchiveReaderV1Fallback(t *testing.T) {
	// A v1 golden fixture decodes through the streaming reader (in-memory
	// fallback, one table).
	tb := latentTable(300, 25)
	res, err := Compress(tb, []float64{0, 0, 0.05, 0.05, 0}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Synthesize a v1 archive check using the golden fixtures instead: the
	// current compressor only writes v2, so flip through the reader with the
	// v2 archive to ensure no fallback, then rely on golden_test for v1.
	ar, err := NewArchiveReader(bytes.NewReader(res.Archive))
	if err != nil {
		t.Fatal(err)
	}
	if ar.v1Table != nil {
		t.Fatal("v2 archive took the v1 fallback path")
	}
}

func TestArchiveReaderCorrupt(t *testing.T) {
	tb := latentTable(400, 26)
	opts := quickOpts()
	opts.RowGroupSize = 100
	archive, _ := writeStream(t, tb, 400, opts)
	// Flip one byte in the middle (inside some segment): the reader must
	// fail with ErrCorrupt at or before that group, never panic.
	for _, pos := range []int{len(archive) / 3, len(archive) / 2, len(archive) - 3} {
		bad := append([]byte(nil), archive...)
		bad[pos] ^= 0xFF
		ar, err := NewArchiveReader(bytes.NewReader(bad))
		for err == nil {
			_, err = ar.Next()
			if err == io.EOF {
				t.Fatalf("pos %d: corrupt archive read to EOF", pos)
			}
		}
	}
	// Truncation at every prefix length must error, never panic or succeed.
	for _, n := range []int{0, 5, 6, 20, len(archive) / 2, len(archive) - 1} {
		ar, err := NewArchiveReader(bytes.NewReader(archive[:n]))
		for err == nil {
			_, err = ar.Next()
			if err == io.EOF {
				t.Fatalf("len %d: truncated archive read to EOF", n)
			}
		}
	}
}
