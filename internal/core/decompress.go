package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"deepsqueeze/internal/colfile"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/preprocess"
)

// Decompress reconstructs the table from an archive produced by Compress.
// Categorical, binary, value-dictionary, and fallback columns round-trip
// exactly; quantized and continuous numeric columns land within their
// archived error thresholds. Row order is preserved unless the archive was
// written with KeepRowOrder disabled.
//
// Streaming batch archives (which reference an external model) must go
// through DecompressBatch instead.
func Decompress(archive []byte) (*dataset.Table, error) {
	return decompressArchive(archive, nil)
}

// providedModel carries externally-supplied decoders for streaming batch
// archives, plus the hash of the model archive's decoder section.
type providedModel struct {
	decoders []*nn.Decoder
	hash     [32]byte
}

func decompressArchive(archive []byte, ext *providedModel) (*dataset.Table, error) {
	r, flags, err := newSectionReader(archive)
	if err != nil {
		return nil, err
	}
	hdr, err := r.chunk()
	if err != nil {
		return nil, err
	}
	rows64, sz := binary.Uvarint(hdr)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing row count", ErrCorrupt)
	}
	rows := int(rows64)
	plan, used, err := preprocess.DecodePlan(hdr[sz:])
	if err != nil {
		return nil, err
	}
	pos := sz + used
	codeSize64, sz := binary.Uvarint(hdr[pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing code size", ErrCorrupt)
	}
	pos += sz
	codeBits64, sz := binary.Uvarint(hdr[pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing code bits", ErrCorrupt)
	}
	pos += sz
	experts64, sz := binary.Uvarint(hdr[pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing expert count", ErrCorrupt)
	}
	pos += sz
	if pos != len(hdr) {
		return nil, fmt.Errorf("%w: trailing header bytes", ErrCorrupt)
	}
	codeSize, codeBits, numExperts := int(codeSize64), int(codeBits64), int(experts64)
	if numExperts < 1 || numExperts > rows+1 {
		return nil, fmt.Errorf("%w: %d experts for %d rows", ErrCorrupt, numExperts, rows)
	}

	lo, err := deriveLayout(plan)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	hasModel := flags&flagHasModel != 0
	if hasModel != (len(lo.specs) > 0 && rows > 0) {
		return nil, fmt.Errorf("%w: model flag disagrees with plan", ErrCorrupt)
	}

	var decoders []*nn.Decoder
	var dims [][]int64
	if hasModel {
		dz, err := r.chunk()
		if err != nil {
			return nil, err
		}
		if flags&flagExternalModel != 0 {
			if ext == nil {
				return nil, fmt.Errorf("%w: streaming batch archive needs its model archive (use DecompressBatch)", ErrCorrupt)
			}
			if len(dz) != 32 || !bytes.Equal(dz, ext.hash[:]) {
				return nil, fmt.Errorf("%w: batch archive references a different model archive", ErrCorrupt)
			}
			decoders = ext.decoders
			if len(decoders) != numExperts {
				return nil, fmt.Errorf("%w: model archive has %d experts, batch wants %d", ErrCorrupt, len(decoders), numExperts)
			}
		} else {
			decoders, err = parseDecoderSection(dz, numExperts)
			if err != nil {
				return nil, err
			}
		}
		for e, dec := range decoders {
			if dec.CodeSize != codeSize || len(dec.Specs) != len(lo.specs) {
				return nil, fmt.Errorf("%w: decoder %d shape mismatch", ErrCorrupt, e)
			}
		}
		dims = make([][]int64, codeSize)
		for d := range dims {
			chunk, err := r.chunk()
			if err != nil {
				return nil, err
			}
			vals, err := colfile.UnpackInts(chunk)
			if err != nil {
				return nil, err
			}
			if len(vals) != rows {
				return nil, fmt.Errorf("%w: code dim %d has %d values, want %d", ErrCorrupt, d, len(vals), rows)
			}
			dims[d] = vals
		}
	}

	// Mapping → perm (stored position → original row) and per-original-row
	// expert assignment.
	perm := make([]int, rows)
	for i := range perm {
		perm[i] = i
	}
	assign := make([]int, rows)
	if numExperts > 1 {
		mb, err := r.chunk()
		if err != nil {
			return nil, err
		}
		if flags&flagGrouped != 0 {
			keepOrder := flags&flagRowOrder != 0
			mpos, s := 0, 0
			for e := 0; e < numExperts; e++ {
				cnt64, sz := binary.Uvarint(mb[mpos:])
				if sz <= 0 {
					return nil, fmt.Errorf("%w: truncated mapping", ErrCorrupt)
				}
				mpos += sz
				cnt := int(cnt64)
				if s+cnt > rows {
					return nil, fmt.Errorf("%w: mapping counts exceed rows", ErrCorrupt)
				}
				if keepOrder {
					l, sz := binary.Uvarint(mb[mpos:])
					if sz <= 0 || uint64(len(mb)-mpos-sz) < l {
						return nil, fmt.Errorf("%w: truncated mapping indexes", ErrCorrupt)
					}
					mpos += sz
					idx, err := colfile.UnpackInts(mb[mpos : mpos+int(l)])
					if err != nil {
						return nil, err
					}
					mpos += int(l)
					if len(idx) != cnt {
						return nil, fmt.Errorf("%w: mapping index count", ErrCorrupt)
					}
					for _, orig := range idx {
						if orig < 0 || orig >= int64(rows) {
							return nil, fmt.Errorf("%w: mapping index %d", ErrCorrupt, orig)
						}
						perm[s] = int(orig)
						assign[orig] = e
						s++
					}
				} else {
					for k := 0; k < cnt; k++ {
						perm[s] = s
						assign[s] = e
						s++
					}
				}
			}
			if s != rows || mpos != len(mb) {
				return nil, fmt.Errorf("%w: mapping does not cover all rows", ErrCorrupt)
			}
		} else {
			labels, err := colfile.UnpackInts(mb)
			if err != nil {
				return nil, err
			}
			if len(labels) != rows {
				return nil, fmt.Errorf("%w: %d labels for %d rows", ErrCorrupt, len(labels), rows)
			}
			for i, l := range labels {
				if l < 0 || int(l) >= numExperts {
					return nil, fmt.Errorf("%w: label %d", ErrCorrupt, l)
				}
				assign[i] = int(l)
			}
		}
	}
	if flags&flagRowOrder == 0 {
		// Row order was not preserved: the table is reconstructed in stored
		// order, which the perm above already reflects (identity).
	} else if err := validatePerm(perm); err != nil {
		return nil, err
	}

	// Failure streams per schema column.
	fInts := make(map[int][]int64)
	fExc := make(map[int][]int64)
	fMask := make(map[int][]int64)
	fVals := make(map[int][]float64)
	trivialCodes := make(map[int][]int64)
	fbStr := make(map[int][]string)
	fbNum := make(map[int][]float64)
	for col := range plan.Cols {
		cp := &plan.Cols[col]
		readInts := func() ([]int64, error) {
			c, err := r.chunk()
			if err != nil {
				return nil, err
			}
			return colfile.UnpackInts(c)
		}
		switch {
		case lo.specOfCol[col] >= 0 && cp.Kind == preprocess.KindNumContinuous:
			mask, err := readInts()
			if err != nil {
				return nil, err
			}
			c, err := r.chunk()
			if err != nil {
				return nil, err
			}
			vals, err := colfile.UnpackFloats(c)
			if err != nil {
				return nil, err
			}
			if len(mask) != rows {
				return nil, fmt.Errorf("%w: column %d mask length", ErrCorrupt, col)
			}
			fMask[col], fVals[col] = mask, vals
		case lo.specOfCol[col] >= 0:
			ints, err := readInts()
			if err != nil {
				return nil, err
			}
			if len(ints) != rows {
				return nil, fmt.Errorf("%w: column %d failure length", ErrCorrupt, col)
			}
			fInts[col] = ints
			if lo.specs[lo.specOfCol[col]].Kind == nn.OutCategorical {
				exc, err := readInts()
				if err != nil {
					return nil, err
				}
				fExc[col] = exc
			}
		case cp.Kind == preprocess.KindFallbackCat:
			c, err := r.chunk()
			if err != nil {
				return nil, err
			}
			vals, err := colfile.UnpackStrings(c)
			if err != nil {
				return nil, err
			}
			if len(vals) != rows {
				return nil, fmt.Errorf("%w: fallback column %d length", ErrCorrupt, col)
			}
			fbStr[col] = vals
		case cp.Kind == preprocess.KindFallbackNum:
			c, err := r.chunk()
			if err != nil {
				return nil, err
			}
			vals, err := colfile.UnpackFloats(c)
			if err != nil {
				return nil, err
			}
			if len(vals) != rows {
				return nil, fmt.Errorf("%w: fallback column %d length", ErrCorrupt, col)
			}
			fbNum[col] = vals
		default:
			ints, err := readInts()
			if err != nil {
				return nil, err
			}
			if len(ints) != rows {
				return nil, fmt.Errorf("%w: trivial column %d length", ErrCorrupt, col)
			}
			trivialCodes[col] = ints
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}

	// Pre-resolve exception and correction queues to stored positions.
	excAt, err := resolveQueues(lo, plan, fInts, fExc)
	if err != nil {
		return nil, err
	}
	valAt, err := resolveContQueues(fMask, fVals)
	if err != nil {
		return nil, err
	}

	// Replay predictions and apply corrections.
	colCodes := make(map[int][]int, len(lo.specCols)) // stored order
	contOut := make(map[int][]float64)
	for _, col := range lo.specCols {
		if plan.Cols[col].Kind == preprocess.KindNumContinuous {
			contOut[col] = make([]float64, rows)
		} else {
			colCodes[col] = make([]int, rows)
		}
	}
	var decodeErr error
	if hasModel {
		rec := reconstructCodes(dims, codeBits)
		scratch := make([]bool, maxCard(lo.specs)+1)
		forEachExpertBatch(decoders, assign, rec, perm, func(e int, chunk []int, p *nn.Predictions) {
			if decodeErr != nil {
				return
			}
			dec := decoders[e]
			for si, spec := range lo.specs {
				col := lo.specCols[si]
				cp := &plan.Cols[col]
				switch spec.Kind {
				case nn.OutNumeric:
					np := dec.NumPos(si)
					if cp.Kind == preprocess.KindNumContinuous {
						out := contOut[col]
						for i, s := range chunk {
							if fMask[col][s] != 0 {
								out[s] = valAt[col][s]
							} else {
								out[s] = cp.Scaler.Unscale(p.Num.At(i, np))
							}
						}
						continue
					}
					lv := levels(cp)
					out := colCodes[col]
					for i, s := range chunk {
						code := nearestLevel(cp, p.Num.At(i, np), lv) + int(fInts[col][s])
						if code < 0 || code >= lv {
							decodeErr = fmt.Errorf("%w: column %d code %d outside [0,%d)", ErrCorrupt, col, code, lv)
							return
						}
						out[s] = code
					}
				case nn.OutBinary:
					bp := dec.BinPos(si)
					out := colCodes[col]
					for i, s := range chunk {
						predBit := 0
						if p.Bin.At(i, bp) >= 0.5 {
							predBit = 1
						}
						f := fInts[col][s]
						if f != 0 && f != 1 {
							decodeErr = fmt.Errorf("%w: column %d binary failure %d", ErrCorrupt, col, f)
							return
						}
						out[s] = predBit ^ int(f)
					}
				case nn.OutCategorical:
					j := dec.CatPos(si)
					out := colCodes[col]
					probs := p.Cat[j]
					for i, s := range chunk {
						rank := int(fInts[col][s])
						switch {
						case rank == spec.Card: // escape
							out[s] = int(excAt[col][s])
						case rank >= 0 && rank < spec.Card:
							out[s] = codeAtRank(probs.Row(i), rank, scratch)
						default:
							decodeErr = fmt.Errorf("%w: column %d rank %d", ErrCorrupt, col, rank)
							return
						}
					}
				}
			}
		})
	}
	if decodeErr != nil {
		return nil, decodeErr
	}

	// Assemble the output table in original order.
	out := dataset.NewTable(plan.Schema, rows)
	unperm := make([]int, rows)
	for s, orig := range perm {
		unperm[orig] = s
	}
	for col := range plan.Cols {
		cp := &plan.Cols[col]
		switch {
		case lo.specOfCol[col] >= 0 && cp.Kind == preprocess.KindNumContinuous:
			vals := make([]float64, rows)
			src := contOut[col]
			for orig := 0; orig < rows; orig++ {
				vals[orig] = src[unperm[orig]]
			}
			out.Num[col] = vals
		case lo.specOfCol[col] >= 0:
			codes := make([]int, rows)
			src := colCodes[col]
			for orig := 0; orig < rows; orig++ {
				codes[orig] = src[unperm[orig]]
			}
			if err := plan.DecodeColumn(out, col, codes); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		case cp.Kind == preprocess.KindFallbackCat:
			vals := make([]string, rows)
			for orig := 0; orig < rows; orig++ {
				vals[orig] = fbStr[col][unperm[orig]]
			}
			out.Str[col] = vals
		case cp.Kind == preprocess.KindFallbackNum:
			vals := make([]float64, rows)
			for orig := 0; orig < rows; orig++ {
				vals[orig] = fbNum[col][unperm[orig]]
			}
			out.Num[col] = vals
		default: // trivial
			codes := make([]int, rows)
			src := trivialCodes[col]
			for orig := 0; orig < rows; orig++ {
				v := src[unperm[orig]]
				if v < 0 || v > math.MaxInt32 {
					return nil, fmt.Errorf("%w: trivial column %d code %d", ErrCorrupt, col, v)
				}
				codes[orig] = int(v)
			}
			if err := plan.DecodeColumn(out, col, codes); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		}
	}
	out.SetNumRows(rows)
	return out, nil
}

// validatePerm checks perm is a permutation of [0, len).
func validatePerm(perm []int) error {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return fmt.Errorf("%w: invalid row permutation", ErrCorrupt)
		}
		seen[p] = true
	}
	return nil
}

// resolveQueues maps each categorical escape to its stored position by
// scanning the failure streams in stored order.
func resolveQueues(lo *layout, plan *preprocess.Plan, fInts, fExc map[int][]int64) (map[int]map[int]int64, error) {
	out := make(map[int]map[int]int64)
	for si, spec := range lo.specs {
		if spec.Kind != nn.OutCategorical {
			continue
		}
		col := lo.specCols[si]
		queue := fExc[col]
		at := make(map[int]int64)
		qi := 0
		for s, f := range fInts[col] {
			if int(f) == spec.Card {
				if qi >= len(queue) {
					return nil, fmt.Errorf("%w: column %d exception queue exhausted", ErrCorrupt, col)
				}
				v := queue[qi]
				if v < 0 || int(v) >= plan.Cols[col].Dict.Len() {
					return nil, fmt.Errorf("%w: column %d exception code %d", ErrCorrupt, col, v)
				}
				at[s] = v
				qi++
			}
		}
		if qi != len(queue) {
			return nil, fmt.Errorf("%w: column %d has %d unused exceptions", ErrCorrupt, col, len(queue)-qi)
		}
		out[col] = at
	}
	return out, nil
}

// resolveContQueues does the same for continuous corrections.
func resolveContQueues(fMask map[int][]int64, fVals map[int][]float64) (map[int]map[int]float64, error) {
	out := make(map[int]map[int]float64)
	for col, mask := range fMask {
		queue := fVals[col]
		at := make(map[int]float64)
		qi := 0
		for s, m := range mask {
			if m != 0 {
				if qi >= len(queue) {
					return nil, fmt.Errorf("%w: column %d correction queue exhausted", ErrCorrupt, col)
				}
				at[s] = queue[qi]
				qi++
			}
		}
		if qi != len(queue) {
			return nil, fmt.Errorf("%w: column %d has %d unused corrections", ErrCorrupt, col, len(queue)-qi)
		}
		out[col] = at
	}
	return out, nil
}

func maxCard(specs []nn.ColSpec) int {
	m := 1
	for _, s := range specs {
		if s.Kind == nn.OutCategorical && s.Card > m {
			m = s.Card
		}
	}
	return m
}
