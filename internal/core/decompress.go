package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"deepsqueeze/internal/colfile"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/pipeline"
	"deepsqueeze/internal/preprocess"
)

// RowRange selects the half-open span [Lo, Hi) of rows in original row
// order. The zero value selects every row. For archives written with
// KeepRowOrder disabled, "original order" is the stored (expert-grouped)
// order the full decompression would produce.
type RowRange struct {
	Lo, Hi int
}

// isFull reports whether the range is the zero value (select everything).
func (rr RowRange) isFull() bool { return rr.Lo == 0 && rr.Hi == 0 }

// DecompressOptions configures DecompressContext. The zero value decompresses
// everything at NumCPU parallelism — equivalent to plain Decompress.
type DecompressOptions struct {
	// Parallelism bounds the worker pool; <= 0 selects runtime.NumCPU().
	// Output is byte-for-byte identical at every parallelism level.
	Parallelism int

	// Columns projects the output onto the named schema columns. nil selects
	// every column. The output table's schema lists the selected columns in
	// archive schema order (not request order). Unselected columns' failure
	// streams are skipped without decoding, and decoder heads that only feed
	// unselected columns are never evaluated.
	Columns []string

	// RowRange restricts the output to a span of rows in original order.
	// Failure streams still decode fully (escape queues resolve by scanning
	// from position zero), but decoder inference and assembly run only for
	// the selected rows.
	RowRange RowRange

	// MaxRows, when positive, rejects archives declaring more rows as
	// corrupt before any row-proportional allocation happens. Intended for
	// fuzzing and for callers handling untrusted archives.
	MaxRows int
}

// DecompressResult is a decompression outcome: the (possibly projected)
// table plus per-stage instrumentation.
type DecompressResult struct {
	Table *dataset.Table
	// Stages reports wall clock and bytes per pipeline stage in execution
	// order: parse, scan (bytes = archive bytes skipped by projection),
	// unpack (bytes = encoded bytes decoded), resolve, decode, assemble.
	Stages []StageStats
}

// Decompress reconstructs the table from an archive produced by Compress.
// Categorical, binary, value-dictionary, and fallback columns round-trip
// exactly; quantized and continuous numeric columns land within their
// archived error thresholds. Row order is preserved unless the archive was
// written with KeepRowOrder disabled.
//
// Streaming batch archives (which reference an external model) must go
// through DecompressBatch instead.
func Decompress(archive []byte) (*dataset.Table, error) {
	res, err := DecompressContext(context.Background(), archive, DecompressOptions{})
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// DecompressContext is Decompress with cancellation, bounded parallelism,
// and query-aware projection: opts.Columns and opts.RowRange restrict the
// work to what the caller will read. The stages run over a shared worker
// pool and check ctx between stages and between parallel work items; output
// is byte-for-byte identical at every parallelism level.
func DecompressContext(ctx context.Context, archive []byte, opts DecompressOptions) (*DecompressResult, error) {
	return decompressPipeline(ctx, archive, opts, nil)
}

// providedModel carries externally-supplied decoders for streaming batch
// archives, plus the hash of the model archive's decoder section.
type providedModel struct {
	decoders []*nn.Decoder
	hash     [32]byte
}

// corrupt classifies an error from a decoding sub-package as archive
// corruption, leaving already-classified and cancellation errors untouched.
func corrupt(err error) error {
	if err == nil || errors.Is(err, ErrCorrupt) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}

// decompressor carries the state threaded through the decompression stages.
// Parallel stages write into disjoint per-column or per-expert slots of the
// slices below, which keeps the result independent of scheduling.
type decompressor struct {
	run  *pipeline.Run
	opts DecompressOptions
	ext  *providedModel

	archive []byte
	r       *sectionReader
	flags   byte

	rows       int
	plan       *preprocess.Plan
	lo         *layout
	codeSize   int
	codeBits   int
	numExperts int
	hasModel   bool

	sel       []bool // schema column → selected
	selCols   []int  // selected schema columns, ascending
	wantSpec  []bool // spec position → selected
	needModel bool   // any selected column needs decoder inference
	rlo, rhi  int    // selected original-row span [rlo, rhi)

	// Raw chunk slices gathered by scan (views into archive, no copies).
	decoderChunk []byte
	dimChunks    [][]byte
	mappingChunk []byte
	needMapping  bool
	colChunks    [][2][]byte // per schema column; unselected stay nil

	// Unpacked streams, indexed by schema column (spec streams) or code
	// dimension; all in stored order.
	decoders []*nn.Decoder
	dims     [][]int64
	perm     []int // stored position → original row
	assign   []int // original row → expert
	fInts    [][]int64
	fExc     [][]int64
	fMask    [][]int64
	fVals    [][]float64
	fbStr    [][]string
	fbNum    [][]float64
	trivial  [][]int64

	// Resolved escape/correction queues, indexed by spec position.
	excAt  []map[int]int64
	valAt  []map[int]float64
	unperm []int // original row → stored position

	// Decoded model-column values in stored order, indexed by schema column.
	colCodes [][]int
	contOut  [][]float64
}

// decompressPipeline runs the staged decompression: parse → scan → unpack →
// resolve → decode → assemble. ext supplies decoders for streaming batch
// archives (flagExternalModel); nil otherwise.
func decompressPipeline(ctx context.Context, archive []byte, opts DecompressOptions, ext *providedModel) (*DecompressResult, error) {
	run := pipeline.New(ctx, opts.Parallelism)
	d := &decompressor{run: run, opts: opts, ext: ext, archive: archive}
	var out *dataset.Table
	stages := []struct {
		name string
		fn   func() (int64, error)
	}{
		{"parse", func() (int64, error) { return 0, d.parse() }},
		{"scan", d.scan},
		{"unpack", d.unpack},
		{"resolve", func() (int64, error) { return 0, d.resolve() }},
		{"decode", func() (int64, error) { return 0, d.decode() }},
		{"assemble", func() (int64, error) {
			t, err := d.assemble()
			out = t
			return 0, err
		}},
	}
	for _, st := range stages {
		if err := run.StageBytes(st.name, st.fn); err != nil {
			return nil, err
		}
	}
	return &DecompressResult{Table: out, Stages: run.Stats()}, nil
}

// parse validates the envelope, decodes the header chunk, derives the
// layout, and resolves the projection (columns, row range, model need).
func (d *decompressor) parse() error {
	r, flags, err := newSectionReader(d.archive)
	if err != nil {
		return err
	}
	d.r, d.flags = r, flags
	hdr, err := r.chunk()
	if err != nil {
		return err
	}
	rows64, sz := binary.Uvarint(hdr)
	if sz <= 0 {
		return fmt.Errorf("%w: missing row count", ErrCorrupt)
	}
	if rows64 > math.MaxInt32 {
		return fmt.Errorf("%w: %d rows exceeds the format limit", ErrCorrupt, rows64)
	}
	if d.opts.MaxRows > 0 && rows64 > uint64(d.opts.MaxRows) {
		return fmt.Errorf("%w: %d rows exceeds caller limit %d", ErrCorrupt, rows64, d.opts.MaxRows)
	}
	d.rows = int(rows64)
	plan, used, err := preprocess.DecodePlan(hdr[sz:])
	if err != nil {
		return corrupt(err)
	}
	d.plan = plan
	pos := sz + used
	codeSize64, sz := binary.Uvarint(hdr[pos:])
	if sz <= 0 {
		return fmt.Errorf("%w: missing code size", ErrCorrupt)
	}
	pos += sz
	codeBits64, sz := binary.Uvarint(hdr[pos:])
	if sz <= 0 {
		return fmt.Errorf("%w: missing code bits", ErrCorrupt)
	}
	pos += sz
	experts64, sz := binary.Uvarint(hdr[pos:])
	if sz <= 0 {
		return fmt.Errorf("%w: missing expert count", ErrCorrupt)
	}
	pos += sz
	if pos != len(hdr) {
		return fmt.Errorf("%w: trailing header bytes", ErrCorrupt)
	}
	d.codeSize, d.codeBits, d.numExperts = int(codeSize64), int(codeBits64), int(experts64)
	if d.numExperts < 1 || d.numExperts > d.rows+1 {
		return fmt.Errorf("%w: %d experts for %d rows", ErrCorrupt, d.numExperts, d.rows)
	}

	lo, err := deriveLayout(plan)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	d.lo = lo
	d.hasModel = d.flags&flagHasModel != 0
	if d.hasModel != (len(lo.specs) > 0 && d.rows > 0) {
		return fmt.Errorf("%w: model flag disagrees with plan", ErrCorrupt)
	}
	if d.hasModel {
		// Each code dimension occupies at least one archive byte, so a code
		// size past the archive length cannot be honest; code bits outside
		// [1, 32] would overflow the reconstruction grid.
		if codeSize64 > uint64(len(d.archive)) {
			return fmt.Errorf("%w: code size %d exceeds archive", ErrCorrupt, codeSize64)
		}
		if d.codeBits < 1 || d.codeBits > 32 {
			return fmt.Errorf("%w: code bits %d outside [1,32]", ErrCorrupt, d.codeBits)
		}
	}

	// Column projection.
	ncols := len(plan.Cols)
	d.sel = make([]bool, ncols)
	if d.opts.Columns == nil {
		for col := range d.sel {
			d.sel[col] = true
		}
	} else {
		byName := make(map[string]int, ncols)
		for col, c := range plan.Schema.Columns {
			byName[c.Name] = col
		}
		for _, name := range d.opts.Columns {
			col, ok := byName[name]
			if !ok {
				return fmt.Errorf("core: unknown column %q", name)
			}
			d.sel[col] = true
		}
	}
	for col, s := range d.sel {
		if s {
			d.selCols = append(d.selCols, col)
		}
	}
	if len(d.selCols) == 0 {
		return fmt.Errorf("core: no columns selected")
	}
	d.wantSpec = make([]bool, len(lo.specs))
	for si, col := range lo.specCols {
		d.wantSpec[si] = d.sel[col]
	}
	d.needModel = false
	if d.hasModel {
		for _, w := range d.wantSpec {
			if w {
				d.needModel = true
				break
			}
		}
	}
	// Mapping is needed for expert routing (decode) and, when rows were
	// stored expert-grouped with original order preserved, for assembly of
	// any column. A projection touching neither can skip it.
	d.needMapping = d.numExperts > 1 &&
		(d.needModel || (d.flags&flagGrouped != 0 && d.flags&flagRowOrder != 0))

	// Row range.
	d.rlo, d.rhi = 0, d.rows
	if !d.opts.RowRange.isFull() {
		rr := d.opts.RowRange
		if rr.Lo < 0 || rr.Hi < rr.Lo || rr.Hi > d.rows {
			return fmt.Errorf("core: row range [%d,%d) outside table of %d rows", rr.Lo, rr.Hi, d.rows)
		}
		d.rlo, d.rhi = rr.Lo, rr.Hi
	}
	return nil
}

// scan walks the archive's chunk skeleton sequentially, retaining slices
// for sections the projection needs and skipping the rest without touching
// their contents. Returns the number of payload bytes skipped.
func (d *decompressor) scan() (int64, error) {
	var skipped int64
	take := func(dst *[]byte, needed bool) error {
		if needed {
			c, err := d.r.chunk()
			if err != nil {
				return err
			}
			*dst = c
			return nil
		}
		n, err := d.r.skip()
		skipped += n
		return err
	}
	if d.hasModel {
		if err := take(&d.decoderChunk, d.needModel); err != nil {
			return skipped, err
		}
		d.dimChunks = make([][]byte, d.codeSize)
		for i := range d.dimChunks {
			if err := take(&d.dimChunks[i], d.needModel); err != nil {
				return skipped, err
			}
		}
	}
	if d.numExperts > 1 {
		if err := take(&d.mappingChunk, d.needMapping); err != nil {
			return skipped, err
		}
	}
	d.colChunks = make([][2][]byte, len(d.plan.Cols))
	for col := range d.plan.Cols {
		cp := &d.plan.Cols[col]
		// Chunk count per column mirrors the writer: continuous model
		// columns store mask+values, categorical model columns store
		// ranks+exceptions, everything else stores one chunk.
		two := d.lo.specOfCol[col] >= 0 &&
			(cp.Kind == preprocess.KindNumContinuous ||
				d.lo.specs[d.lo.specOfCol[col]].Kind == nn.OutCategorical)
		if err := take(&d.colChunks[col][0], d.sel[col]); err != nil {
			return skipped, err
		}
		if two {
			if err := take(&d.colChunks[col][1], d.sel[col]); err != nil {
				return skipped, err
			}
		}
	}
	return skipped, d.r.done()
}

// unpack decodes every retained section concurrently: decoder parse, code
// dimensions, the expert mapping, and the selected columns' failure
// streams. Each work item writes its own slot. Returns the number of
// encoded bytes decoded.
func (d *decompressor) unpack() (int64, error) {
	ncols := len(d.plan.Cols)
	d.fInts = make([][]int64, ncols)
	d.fExc = make([][]int64, ncols)
	d.fMask = make([][]int64, ncols)
	d.fVals = make([][]float64, ncols)
	d.fbStr = make([][]string, ncols)
	d.fbNum = make([][]float64, ncols)
	d.trivial = make([][]int64, ncols)
	d.perm = make([]int, d.rows)
	for i := range d.perm {
		d.perm[i] = i
	}
	d.assign = make([]int, d.rows)

	var bytes int64
	var items []func() error
	add := func(chunk []byte, fn func() error) {
		bytes += int64(len(chunk))
		items = append(items, fn)
	}
	if d.needModel {
		add(d.decoderChunk, d.unpackDecoders)
		d.dims = make([][]int64, d.codeSize)
		for i, chunk := range d.dimChunks {
			i, chunk := i, chunk
			add(chunk, func() error {
				vals, err := colfile.UnpackIntsMax(chunk, d.rows)
				if err != nil {
					return corrupt(err)
				}
				if len(vals) != d.rows {
					return fmt.Errorf("%w: code dim %d has %d values, want %d", ErrCorrupt, i, len(vals), d.rows)
				}
				d.dims[i] = vals
				return nil
			})
		}
	}
	if d.needMapping {
		add(d.mappingChunk, d.unpackMapping)
	}
	for _, col := range d.selCols {
		col := col
		cp := &d.plan.Cols[col]
		a, b := d.colChunks[col][0], d.colChunks[col][1]
		switch {
		case d.lo.specOfCol[col] >= 0 && cp.Kind == preprocess.KindNumContinuous:
			add(a, func() error {
				mask, err := colfile.UnpackIntsMax(a, d.rows)
				if err != nil {
					return corrupt(err)
				}
				if len(mask) != d.rows {
					return fmt.Errorf("%w: column %d mask length", ErrCorrupt, col)
				}
				d.fMask[col] = mask
				return nil
			})
			add(b, func() error {
				vals, err := colfile.UnpackFloatsMax(b, d.rows)
				if err != nil {
					return corrupt(err)
				}
				d.fVals[col] = vals
				return nil
			})
		case d.lo.specOfCol[col] >= 0:
			add(a, func() error {
				ints, err := colfile.UnpackIntsMax(a, d.rows)
				if err != nil {
					return corrupt(err)
				}
				if len(ints) != d.rows {
					return fmt.Errorf("%w: column %d failure length", ErrCorrupt, col)
				}
				d.fInts[col] = ints
				return nil
			})
			if d.lo.specs[d.lo.specOfCol[col]].Kind == nn.OutCategorical {
				add(b, func() error {
					exc, err := colfile.UnpackIntsMax(b, d.rows)
					if err != nil {
						return corrupt(err)
					}
					d.fExc[col] = exc
					return nil
				})
			}
		case cp.Kind == preprocess.KindFallbackCat:
			add(a, func() error {
				vals, err := colfile.UnpackStringsMax(a, d.rows)
				if err != nil {
					return corrupt(err)
				}
				if len(vals) != d.rows {
					return fmt.Errorf("%w: fallback column %d length", ErrCorrupt, col)
				}
				d.fbStr[col] = vals
				return nil
			})
		case cp.Kind == preprocess.KindFallbackNum:
			add(a, func() error {
				vals, err := colfile.UnpackFloatsMax(a, d.rows)
				if err != nil {
					return corrupt(err)
				}
				if len(vals) != d.rows {
					return fmt.Errorf("%w: fallback column %d length", ErrCorrupt, col)
				}
				d.fbNum[col] = vals
				return nil
			})
		default: // trivial
			add(a, func() error {
				ints, err := colfile.UnpackIntsMax(a, d.rows)
				if err != nil {
					return corrupt(err)
				}
				if len(ints) != d.rows {
					return fmt.Errorf("%w: trivial column %d length", ErrCorrupt, col)
				}
				d.trivial[col] = ints
				return nil
			})
		}
	}
	err := d.run.ForEach(len(items), func(i int) error { return items[i]() })
	return bytes, err
}

// unpackDecoders parses (or adopts) the decoder section and checks its
// shape against the header.
func (d *decompressor) unpackDecoders() error {
	if d.flags&flagExternalModel != 0 {
		if d.ext == nil {
			return fmt.Errorf("%w: streaming batch archive needs its model archive (use DecompressBatch)", ErrCorrupt)
		}
		if len(d.decoderChunk) != 32 || !bytes.Equal(d.decoderChunk, d.ext.hash[:]) {
			return fmt.Errorf("%w: batch archive references a different model archive", ErrCorrupt)
		}
		d.decoders = d.ext.decoders
		if len(d.decoders) != d.numExperts {
			return fmt.Errorf("%w: model archive has %d experts, batch wants %d", ErrCorrupt, len(d.decoders), d.numExperts)
		}
	} else {
		decoders, err := parseDecoderSection(d.decoderChunk, d.numExperts)
		if err != nil {
			return corrupt(err)
		}
		d.decoders = decoders
	}
	for e, dec := range d.decoders {
		if dec.CodeSize != d.codeSize || len(dec.Specs) != len(d.lo.specs) {
			return fmt.Errorf("%w: decoder %d shape mismatch", ErrCorrupt, e)
		}
	}
	return nil
}

// unpackMapping decodes the mapping chunk into perm (stored position →
// original row) and assign (original row → expert).
func (d *decompressor) unpackMapping() error {
	mb := d.mappingChunk
	if d.flags&flagGrouped != 0 {
		keepOrder := d.flags&flagRowOrder != 0
		mpos, s := 0, 0
		for e := 0; e < d.numExperts; e++ {
			cnt64, sz := binary.Uvarint(mb[mpos:])
			if sz <= 0 {
				return fmt.Errorf("%w: truncated mapping", ErrCorrupt)
			}
			mpos += sz
			if cnt64 > uint64(d.rows) {
				return fmt.Errorf("%w: mapping counts exceed rows", ErrCorrupt)
			}
			cnt := int(cnt64)
			if s+cnt > d.rows {
				return fmt.Errorf("%w: mapping counts exceed rows", ErrCorrupt)
			}
			if keepOrder {
				l, sz := binary.Uvarint(mb[mpos:])
				if sz <= 0 || uint64(len(mb)-mpos-sz) < l {
					return fmt.Errorf("%w: truncated mapping indexes", ErrCorrupt)
				}
				mpos += sz
				idx, err := colfile.UnpackIntsMax(mb[mpos:mpos+int(l)], cnt)
				if err != nil {
					return corrupt(err)
				}
				mpos += int(l)
				if len(idx) != cnt {
					return fmt.Errorf("%w: mapping index count", ErrCorrupt)
				}
				for _, orig := range idx {
					if orig < 0 || orig >= int64(d.rows) {
						return fmt.Errorf("%w: mapping index %d", ErrCorrupt, orig)
					}
					d.perm[s] = int(orig)
					d.assign[orig] = e
					s++
				}
			} else {
				for k := 0; k < cnt; k++ {
					d.perm[s] = s
					d.assign[s] = e
					s++
				}
			}
		}
		if s != d.rows || mpos != len(mb) {
			return fmt.Errorf("%w: mapping does not cover all rows", ErrCorrupt)
		}
	} else {
		labels, err := colfile.UnpackIntsMax(mb, d.rows)
		if err != nil {
			return corrupt(err)
		}
		if len(labels) != d.rows {
			return fmt.Errorf("%w: %d labels for %d rows", ErrCorrupt, len(labels), d.rows)
		}
		for i, l := range labels {
			if l < 0 || int(l) >= d.numExperts {
				return fmt.Errorf("%w: label %d", ErrCorrupt, l)
			}
			d.assign[i] = int(l)
		}
	}
	if d.flags&flagRowOrder == 0 {
		// Row order was not preserved: the table is reconstructed in stored
		// order, which perm already reflects (identity).
		return nil
	}
	return validatePerm(d.perm)
}

// resolve maps each selected column's sparse escape/correction queue to
// stored positions, one column per work item, inverts perm, and allocates
// the decode output slots.
func (d *decompressor) resolve() error {
	d.unperm = make([]int, d.rows)
	for s, orig := range d.perm {
		d.unperm[orig] = s
	}
	d.colCodes = make([][]int, len(d.plan.Cols))
	d.contOut = make([][]float64, len(d.plan.Cols))
	for si, col := range d.lo.specCols {
		if !d.wantSpec[si] {
			continue
		}
		if d.plan.Cols[col].Kind == preprocess.KindNumContinuous {
			d.contOut[col] = make([]float64, d.rows)
		} else {
			d.colCodes[col] = make([]int, d.rows)
		}
	}
	d.excAt = make([]map[int]int64, len(d.lo.specs))
	d.valAt = make([]map[int]float64, len(d.lo.specs))
	return d.run.ForEach(len(d.lo.specs), func(si int) error {
		if !d.wantSpec[si] {
			return nil
		}
		spec := d.lo.specs[si]
		col := d.lo.specCols[si]
		if d.plan.Cols[col].Kind == preprocess.KindNumContinuous {
			at := make(map[int]float64)
			queue := d.fVals[col]
			qi := 0
			for s, m := range d.fMask[col] {
				if m != 0 {
					if qi >= len(queue) {
						return fmt.Errorf("%w: column %d correction queue exhausted", ErrCorrupt, col)
					}
					at[s] = queue[qi]
					qi++
				}
			}
			if qi != len(queue) {
				return fmt.Errorf("%w: column %d has %d unused corrections", ErrCorrupt, col, len(queue)-qi)
			}
			d.valAt[si] = at
			return nil
		}
		if spec.Kind != nn.OutCategorical {
			return nil
		}
		at := make(map[int]int64)
		queue := d.fExc[col]
		qi := 0
		for s, f := range d.fInts[col] {
			if int(f) == spec.Card {
				if qi >= len(queue) {
					return fmt.Errorf("%w: column %d exception queue exhausted", ErrCorrupt, col)
				}
				v := queue[qi]
				if v < 0 || int(v) >= d.plan.Cols[col].Dict.Len() {
					return fmt.Errorf("%w: column %d exception code %d", ErrCorrupt, col, v)
				}
				at[s] = v
				qi++
			}
		}
		if qi != len(queue) {
			return fmt.Errorf("%w: column %d has %d unused exceptions", ErrCorrupt, col, len(queue)-qi)
		}
		d.excAt[si] = at
		return nil
	})
}

// decode replays decoder inference expert-by-expert over the pool, applying
// the failure streams to recover the selected model columns' codes in
// stored order. Only selected spec columns are inferred (PredictCols) and
// only stored positions inside the row range are fed through.
func (d *decompressor) decode() error {
	if !d.needModel {
		return nil
	}
	rec := reconstructCodes(d.dims, d.codeBits)
	posBy := expertPositionsRange(d.assign, d.perm, d.numExperts, d.rlo, d.rhi)
	return d.run.ForEach(d.numExperts, func(e int) error {
		scratch := make([]bool, maxCard(d.lo.specs)+1)
		var derr error
		expertBatches(d.decoders[e], rec, posBy[e], d.wantSpec, func(chunk []int, p *nn.Predictions) {
			if derr != nil {
				return
			}
			derr = d.applyChunk(d.decoders[e], chunk, p, scratch)
		})
		return derr
	})
}

// applyChunk merges one batch of predictions with the failure streams.
func (d *decompressor) applyChunk(dec *nn.Decoder, chunk []int, p *nn.Predictions, scratch []bool) error {
	for si, spec := range d.lo.specs {
		if !d.wantSpec[si] {
			continue
		}
		col := d.lo.specCols[si]
		cp := &d.plan.Cols[col]
		switch spec.Kind {
		case nn.OutNumeric:
			np := dec.NumPos(si)
			if cp.Kind == preprocess.KindNumContinuous {
				out := d.contOut[col]
				for i, s := range chunk {
					if d.fMask[col][s] != 0 {
						out[s] = d.valAt[si][s]
					} else {
						out[s] = cp.Scaler.Unscale(p.Num.At(i, np))
					}
				}
				continue
			}
			lv := levels(cp)
			out := d.colCodes[col]
			for i, s := range chunk {
				code := nearestLevel(cp, p.Num.At(i, np), lv) + int(d.fInts[col][s])
				if code < 0 || code >= lv {
					return fmt.Errorf("%w: column %d code %d outside [0,%d)", ErrCorrupt, col, code, lv)
				}
				out[s] = code
			}
		case nn.OutBinary:
			bp := dec.BinPos(si)
			out := d.colCodes[col]
			for i, s := range chunk {
				predBit := 0
				if p.Bin.At(i, bp) >= 0.5 {
					predBit = 1
				}
				f := d.fInts[col][s]
				if f != 0 && f != 1 {
					return fmt.Errorf("%w: column %d binary failure %d", ErrCorrupt, col, f)
				}
				out[s] = predBit ^ int(f)
			}
		case nn.OutCategorical:
			j := dec.CatPos(si)
			out := d.colCodes[col]
			probs := p.Cat[j]
			for i, s := range chunk {
				rank := int(d.fInts[col][s])
				switch {
				case rank == spec.Card: // escape
					out[s] = int(d.excAt[si][s])
				case rank >= 0 && rank < spec.Card:
					out[s] = codeAtRank(probs.Row(i), rank, scratch)
				default:
					return fmt.Errorf("%w: column %d rank %d", ErrCorrupt, col, rank)
				}
			}
		}
	}
	return nil
}

// assemble materializes the selected columns in original row order, one
// column per work item, and builds the (possibly projected) output table.
func (d *decompressor) assemble() (*dataset.Table, error) {
	n := d.rhi - d.rlo
	// Columns decode into a full-schema scratch table because
	// plan.DecodeColumn addresses columns by schema index; the projected
	// output then adopts the scratch slices without copying.
	scratch := dataset.NewTable(d.plan.Schema, 0)
	err := d.run.ForEach(len(d.selCols), func(k int) error {
		col := d.selCols[k]
		cp := &d.plan.Cols[col]
		switch {
		case d.lo.specOfCol[col] >= 0 && cp.Kind == preprocess.KindNumContinuous:
			vals := make([]float64, n)
			src := d.contOut[col]
			for i := range vals {
				vals[i] = src[d.unperm[d.rlo+i]]
			}
			scratch.Num[col] = vals
		case d.lo.specOfCol[col] >= 0:
			codes := make([]int, n)
			src := d.colCodes[col]
			for i := range codes {
				codes[i] = src[d.unperm[d.rlo+i]]
			}
			if err := decodeColumnChecked(d.plan, scratch, col, codes); err != nil {
				return err
			}
		case cp.Kind == preprocess.KindFallbackCat:
			vals := make([]string, n)
			for i := range vals {
				vals[i] = d.fbStr[col][d.unperm[d.rlo+i]]
			}
			scratch.Str[col] = vals
		case cp.Kind == preprocess.KindFallbackNum:
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = d.fbNum[col][d.unperm[d.rlo+i]]
			}
			scratch.Num[col] = vals
		default: // trivial
			codes := make([]int, n)
			src := d.trivial[col]
			for i := range codes {
				v := src[d.unperm[d.rlo+i]]
				if v < 0 || v > math.MaxInt32 {
					return fmt.Errorf("%w: trivial column %d code %d", ErrCorrupt, col, v)
				}
				codes[i] = int(v)
			}
			if err := decodeColumnChecked(d.plan, scratch, col, codes); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if d.opts.Columns == nil {
		scratch.SetNumRows(n)
		return scratch, nil
	}
	cols := make([]dataset.Column, len(d.selCols))
	for k, col := range d.selCols {
		cols[k] = d.plan.Schema.Columns[col]
	}
	out := dataset.NewTable(dataset.NewSchema(cols...), 0)
	for k, col := range d.selCols {
		if d.plan.Schema.Columns[col].Type == dataset.Categorical {
			out.Str[k] = scratch.Str[col]
		} else {
			out.Num[k] = scratch.Num[col]
		}
	}
	out.SetNumRows(n)
	return out, nil
}

// decodeColumnChecked wraps Plan.DecodeColumn with corruption classification.
func decodeColumnChecked(plan *preprocess.Plan, dst *dataset.Table, col int, codes []int) error {
	if err := plan.DecodeColumn(dst, col, codes); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

// validatePerm checks perm is a permutation of [0, len).
func validatePerm(perm []int) error {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return fmt.Errorf("%w: invalid row permutation", ErrCorrupt)
		}
		seen[p] = true
	}
	return nil
}

func maxCard(specs []nn.ColSpec) int {
	m := 1
	for _, s := range specs {
		if s.Kind == nn.OutCategorical && s.Card > m {
			m = s.Card
		}
	}
	return m
}
