package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"deepsqueeze/internal/colfile"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/mat"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/pipeline"
	"deepsqueeze/internal/preprocess"
)

// RowRange selects the half-open span [Lo, Hi) of rows in original row
// order. The zero value selects every row. For archives written with
// KeepRowOrder disabled, "original order" is the stored (expert-grouped)
// order the full decompression would produce.
type RowRange struct {
	Lo, Hi int
}

// isFull reports whether the range is the zero value (select everything).
func (rr RowRange) isFull() bool { return rr.Lo == 0 && rr.Hi == 0 }

// DecompressOptions configures DecompressContext. The zero value decompresses
// everything at NumCPU parallelism — equivalent to plain Decompress.
type DecompressOptions struct {
	// Parallelism bounds the worker pool; <= 0 selects runtime.NumCPU().
	// Output is byte-for-byte identical at every parallelism level.
	Parallelism int

	// Columns projects the output onto the named schema columns. nil selects
	// every column. The output table's schema lists the selected columns in
	// archive schema order (not request order). Unselected columns' failure
	// streams are skipped without decoding, and decoder heads that only feed
	// unselected columns are never evaluated.
	Columns []string

	// RowRange restricts the output to a span of rows in original order.
	// In a version-2 archive, row groups that do not overlap the span are
	// skipped entirely — their segments are never parsed or decoded.
	RowRange RowRange

	// GroupMask, when non-nil, restricts decoding to the row groups whose
	// entry is true — the query engine's pruning hook. It must carry one
	// entry per row group (a version-1 archive counts as one group).
	// Masked-out groups contribute no output rows and, in a version-2
	// archive, their segments are skipped without decoding; the output
	// concatenates the surviving groups' rows in archive order. Composes
	// with RowRange: a group decodes only if its mask entry is true AND it
	// overlaps the range.
	GroupMask []bool

	// MaxRows, when positive, rejects archives declaring more rows as
	// corrupt before any row-proportional allocation happens. Intended for
	// fuzzing and for callers handling untrusted archives.
	MaxRows int

	// Pool, when non-nil, runs the request's stages over the caller's shared
	// worker pool instead of a fresh one, and Parallelism is ignored — how a
	// server bounds total decode concurrency across concurrent requests.
	Pool *pipeline.Pool
}

// DecompressResult is a decompression outcome: the (possibly projected)
// table plus per-stage instrumentation.
type DecompressResult struct {
	Table *dataset.Table
	// Stages reports wall clock and bytes per pipeline stage in execution
	// order: parse, scan (bytes = archive bytes skipped by projection and
	// row-group skipping), unpack (bytes = encoded bytes decoded), resolve,
	// decode, assemble.
	Stages []StageStats
}

// Decompress reconstructs the table from an archive produced by Compress.
// Categorical, binary, value-dictionary, and fallback columns round-trip
// exactly; quantized and continuous numeric columns land within their
// archived error thresholds. Row order is preserved unless the archive was
// written with KeepRowOrder disabled.
//
// Streaming batch archives (which reference an external model) must go
// through DecompressBatch instead.
func Decompress(archive []byte) (*dataset.Table, error) {
	res, err := DecompressContext(context.Background(), archive, DecompressOptions{})
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// DecompressContext is Decompress with cancellation, bounded parallelism,
// and query-aware projection: opts.Columns and opts.RowRange restrict the
// work to what the caller will read. The stages run over a shared worker
// pool and check ctx between stages and between parallel work items; output
// is byte-for-byte identical at every parallelism level.
func DecompressContext(ctx context.Context, archive []byte, opts DecompressOptions) (*DecompressResult, error) {
	return decompressPipeline(ctx, archive, opts, nil)
}

// providedModel carries externally-supplied decoders for streaming batch
// archives, plus the hash of the model archive's decoder section.
type providedModel struct {
	decoders []*nn.Decoder
	hash     [32]byte
}

// corrupt classifies an error from a decoding sub-package as archive
// corruption, leaving already-classified and cancellation errors untouched.
func corrupt(err error) error {
	if err == nil || errors.Is(err, ErrCorrupt) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}

// groupDec is one row group's decoding state. A version-1 archive decodes as
// a single group covering every row; a version-2 archive has one groupDec
// per footer entry, and only groups overlapping the requested row range are
// parsed (active). Parallel stages write into disjoint per-group slots, so
// the result is independent of scheduling.
type groupDec struct {
	start, count int  // global row span [start, start+count)
	glo, ghi     int  // selected group-local row span [glo, ghi)
	outOff       int  // this group's first row in the assembled output
	active       bool // segment parsed (overlaps the request)
	meta         groupMeta

	// Raw chunk slices gathered by scan (views into the archive, no copies).
	planChunk    []byte
	dimChunks    [][]byte
	mappingChunk []byte
	colChunks    [][][]byte // per schema column, colChunkCount chunks each; unselected stay nil

	// Unpacked streams, indexed by schema column (spec streams) or code
	// dimension; all in the group's stored order.
	plan    *preprocess.Plan // group plan (header plan unless overridden)
	dims    [][]int64
	perm    []int // stored position → group-local original row
	assign  []int // group-local original row → expert
	fInts   [][]int64
	fRes    [][][]int64 // residual columns → per-digit failure ranks
	fExc    [][]int64
	fMask   [][]int64
	fVals   [][]float64
	fbStr   [][]string
	fbNum   [][]float64
	trivial [][]int64

	// Resolved escape/correction queues, indexed by spec position.
	excAt  []map[int]int64
	valAt  []map[int]float64
	unperm []int // group-local original row → stored position

	// Decoded model-column values in stored order, indexed by schema column.
	colCodes [][]int
	contOut  [][]float64

	// Decode-stage inputs, built once per group before the expert fan-out.
	rec   *mat.Matrix
	posBy [][]int
}

// decompressor carries one request's state shared across row groups. The
// immutable parsed metadata lives in meta (owned by an Archive handle when
// the request came through one); everything else here is per-request.
type decompressor struct {
	run  *pipeline.Run
	opts DecompressOptions
	ext  *providedModel

	h    *Archive     // owning handle; nil for the streaming reader
	meta *archiveMeta // parsed-once metadata (nil for the streaming reader)

	r       *sectionReader
	version byte
	flags   byte

	rows         int
	plan         *preprocess.Plan
	lo           *layout
	codeSize     int
	codeBits     int
	numExperts   int
	rowGroupSize int
	hasModel     bool

	sel         []bool // schema column → selected
	selCols     []int  // selected schema columns, ascending
	wantSpec    []bool // spec position → selected
	needModel   bool   // any selected column needs decoder inference
	needMapping bool
	rlo, rhi    int // selected original-row span [rlo, rhi)

	decoderChunk []byte
	decoders     []*nn.Decoder
	decs32       []*nn.Decoder32 // float32 views when flagFloat32, parallel to decoders

	footer *archiveFooter // version 2 only
	groups []*groupDec
	nOut   int // total output rows across surviving groups
}

// decompressPipeline opens the archive and runs one request against the
// fresh handle. ext supplies decoders for streaming batch archives
// (flagExternalModel); nil otherwise.
func decompressPipeline(ctx context.Context, archive []byte, opts DecompressOptions, ext *providedModel) (*DecompressResult, error) {
	a, err := Open(archive)
	if err != nil {
		return nil, err
	}
	return a.decompress(ctx, opts, ext)
}

// decompress runs the staged decompression — parse → scan → unpack →
// resolve → decode → assemble — as one request against the handle's parsed
// metadata. Requests are independent: all shared state on the handle is
// immutable or guarded by sync.Once, so concurrent calls are safe.
func (a *Archive) decompress(ctx context.Context, opts DecompressOptions, ext *providedModel) (*DecompressResult, error) {
	var run *pipeline.Run
	if opts.Pool != nil {
		run = pipeline.NewWithPool(ctx, opts.Pool)
	} else {
		run = pipeline.New(ctx, opts.Parallelism)
	}
	d := &decompressor{run: run, opts: opts, ext: ext, h: a, meta: a.meta}
	var out *dataset.Table
	stages := []struct {
		name string
		fn   func() (int64, error)
	}{
		{"parse", func() (int64, error) { return 0, d.parse() }},
		{"scan", d.scan},
		{"unpack", d.unpack},
		{"resolve", func() (int64, error) { return 0, d.resolve() }},
		{"decode", func() (int64, error) { return 0, d.decode() }},
		{"assemble", func() (int64, error) {
			t, err := d.assemble()
			out = t
			return 0, err
		}},
	}
	for _, st := range stages {
		if err := run.StageBytes(st.name, st.fn); err != nil {
			return nil, err
		}
	}
	return &DecompressResult{Table: out, Stages: run.Stats()}, nil
}

// parse adopts the handle's parsed-once metadata, applies the request's row
// policy (MaxRows), resolves the projection, and lays out the row groups.
// The envelope, header, footer, and layout were all validated by Open.
func (d *decompressor) parse() error {
	m := d.meta
	d.version, d.flags = m.version, m.flags
	d.rows = m.rows
	if d.opts.MaxRows > 0 && d.rows > d.opts.MaxRows {
		return fmt.Errorf("%w: %d rows exceeds caller limit %d", ErrCorrupt, d.rows, d.opts.MaxRows)
	}
	d.plan = m.plan
	d.lo = m.layout
	d.codeSize, d.codeBits, d.numExperts = m.codeSize, m.codeBits, m.numExperts
	d.rowGroupSize = m.rowGroupSize
	d.hasModel = m.hasModel
	d.footer = m.footer
	// Each request walks the body with its own reader, starting at the first
	// row-group section (the decoder chunk was already located by Open).
	d.r = &sectionReader{buf: m.body, pos: m.bodyPos}

	if err := d.initSelection(d.opts.Columns); err != nil {
		return err
	}

	// Row range.
	d.rlo, d.rhi = 0, d.rows
	if !d.opts.RowRange.isFull() {
		rr := d.opts.RowRange
		if rr.Lo < 0 || rr.Hi < rr.Lo || rr.Hi > d.rows {
			return fmt.Errorf("core: row range [%d,%d) outside table of %d rows", rr.Lo, rr.Hi, d.rows)
		}
		d.rlo, d.rhi = rr.Lo, rr.Hi
	}

	// Row groups: one implicit group for version 1; one per footer entry for
	// version 2, active only when it overlaps the request (a full-range
	// request keeps every group active, including empty ones).
	if d.version == archiveVersionV1 {
		g := &groupDec{start: 0, count: d.rows, glo: d.rlo, ghi: d.rhi, active: true}
		if d.opts.GroupMask != nil {
			if len(d.opts.GroupMask) != 1 {
				return fmt.Errorf("core: group mask has %d entries for 1 group", len(d.opts.GroupMask))
			}
			if !d.opts.GroupMask[0] {
				// A v1 body has no footer offsets to skip by, so the group
				// stays active (its chunks are still walked) but selects
				// no rows.
				g.ghi = g.glo
			}
		}
		d.groups = []*groupDec{g}
	} else {
		if d.opts.GroupMask != nil && len(d.opts.GroupMask) != len(d.footer.groups) {
			return fmt.Errorf("core: group mask has %d entries for %d groups",
				len(d.opts.GroupMask), len(d.footer.groups))
		}
		full := d.rlo == 0 && d.rhi == d.rows
		d.groups = make([]*groupDec, len(d.footer.groups))
		for i, m := range d.footer.groups {
			g := &groupDec{start: m.start, count: m.count, meta: m}
			g.glo = d.rlo - m.start
			if g.glo < 0 {
				g.glo = 0
			}
			g.ghi = d.rhi - m.start
			if g.ghi > m.count {
				g.ghi = m.count
			}
			if g.ghi < g.glo {
				g.ghi = g.glo
			}
			g.active = full || g.ghi > g.glo
			if d.opts.GroupMask != nil && !d.opts.GroupMask[i] {
				g.active = false
				g.ghi = g.glo
			}
			d.groups[i] = g
		}
	}
	// Output layout: surviving groups' selected rows concatenate in archive
	// order; each group remembers where its slice of the output starts.
	n := 0
	for _, g := range d.groups {
		g.outOff = n
		if g.active {
			n += g.ghi - g.glo
		}
	}
	d.nOut = n
	return nil
}

// initSelection resolves a column projection (nil selects everything) into
// the request's selection state: sel, selCols, wantSpec, needModel, and
// needMapping. It requires plan, lo, hasModel, numExperts, and flags to be
// set, and is shared by handle-based requests and the streaming reader.
func (d *decompressor) initSelection(columns []string) error {
	ncols := len(d.plan.Cols)
	d.sel = make([]bool, ncols)
	if columns == nil {
		for col := range d.sel {
			d.sel[col] = true
		}
	} else {
		byName := make(map[string]int, ncols)
		for col, c := range d.plan.Schema.Columns {
			byName[c.Name] = col
		}
		for _, name := range columns {
			col, ok := byName[name]
			if !ok {
				return fmt.Errorf("core: unknown column %q", name)
			}
			d.sel[col] = true
		}
	}
	for col, s := range d.sel {
		if s {
			d.selCols = append(d.selCols, col)
		}
	}
	if len(d.selCols) == 0 {
		return fmt.Errorf("core: no columns selected")
	}
	d.wantSpec = make([]bool, len(d.lo.specs))
	for si, col := range d.lo.specCols {
		d.wantSpec[si] = d.sel[col]
	}
	d.needModel = false
	if d.hasModel {
		for _, w := range d.wantSpec {
			if w {
				d.needModel = true
				break
			}
		}
	}
	// Mapping is needed for expert routing (decode) and, when rows were
	// stored expert-grouped with original order preserved, for assembly of
	// any column. A projection touching neither can skip it.
	d.needMapping = d.numExperts > 1 &&
		(d.needModel || (d.flags&flagGrouped != 0 && d.flags&flagRowOrder != 0))
	return nil
}

// scan walks the archive's chunk skeleton sequentially, retaining slices for
// sections the projection needs and skipping the rest — including the whole
// segment of any row group outside the requested range — without touching
// their contents. Returns the number of payload bytes skipped.
func (d *decompressor) scan() (int64, error) {
	var skipped int64
	if d.hasModel {
		// The decoder chunk was already located by Open: a request that
		// needs the model adopts it; one that doesn't counts its payload as
		// skipped, same as when the chunk was walked here.
		if d.needModel {
			d.decoderChunk = d.meta.decoderChunk
		} else {
			skipped += int64(len(d.meta.decoderChunk))
		}
	}
	if d.version == archiveVersionV1 {
		if err := d.scanGroupBody(d.r, d.groups[0], &skipped); err != nil {
			return skipped, err
		}
		return skipped, d.r.done()
	}
	for _, g := range d.groups {
		if int64(d.r.pos) != g.meta.off {
			return skipped, fmt.Errorf("%w: segment at offset %d, footer says %d", ErrCorrupt, d.r.pos, g.meta.off)
		}
		kind, err := d.r.byte()
		if err != nil {
			return skipped, err
		}
		if kind != kindSegment {
			return skipped, fmt.Errorf("%w: chunk kind %d, want segment", ErrCorrupt, kind)
		}
		if !g.active {
			n, err := d.r.skip()
			if err != nil {
				return skipped, err
			}
			skipped += n
		} else {
			framed, err := d.r.chunk()
			if err != nil {
				return skipped, err
			}
			if err := d.scanSegment(framed, g, &skipped); err != nil {
				return skipped, err
			}
		}
		if int64(d.r.pos)-g.meta.off != g.meta.segLen {
			return skipped, fmt.Errorf("%w: segment length disagrees with footer", ErrCorrupt)
		}
	}
	if d.flags&flagZoneMaps != 0 {
		// The zone-map stats chunk sits between the last segment and the
		// footer. It is query metadata, not row data: walk over it without
		// adding it to the skipped-bytes counter (a full decode still
		// reports 0 bytes skipped).
		kind, err := d.r.byte()
		if err != nil {
			return skipped, err
		}
		if kind != kindStats {
			return skipped, fmt.Errorf("%w: chunk kind %d, want stats", ErrCorrupt, kind)
		}
		if _, err := d.r.chunk(); err != nil {
			return skipped, err
		}
	}
	kind, err := d.r.byte()
	if err != nil {
		return skipped, err
	}
	if kind != kindFooter {
		return skipped, fmt.Errorf("%w: chunk kind %d, want footer", ErrCorrupt, kind)
	}
	if _, err := d.r.chunk(); err != nil { // payload already parsed by parse
		return skipped, err
	}
	if d.r.pos+8 != len(d.r.buf) {
		return skipped, fmt.Errorf("%w: misplaced footer trailer", ErrCorrupt)
	}
	d.r.pos += 8 // footer-offset trailer
	return skipped, d.r.done()
}

// scanSegment validates a segment's checksum and header and walks its nested
// chunk skeleton.
func (d *decompressor) scanSegment(framed []byte, g *groupDec, skipped *int64) error {
	body, err := segmentBody(framed)
	if err != nil {
		return err
	}
	nr := &sectionReader{buf: body}
	sh, err := nr.chunk()
	if err != nil {
		return err
	}
	shr := &sectionReader{buf: sh}
	start64, err := shr.uvarint()
	if err != nil {
		return err
	}
	count64, err := shr.uvarint()
	if err != nil {
		return err
	}
	hasPlan, err := shr.byte()
	if err != nil {
		return err
	}
	if err := shr.done(); err != nil {
		return err
	}
	if start64 != uint64(g.start) || count64 != uint64(g.count) {
		return fmt.Errorf("%w: segment span [%d,+%d) disagrees with footer", ErrCorrupt, start64, count64)
	}
	switch hasPlan {
	case 0:
	case 1:
		pc, err := nr.chunk()
		if err != nil {
			return err
		}
		g.planChunk = pc
	default:
		return fmt.Errorf("%w: segment plan marker %d", ErrCorrupt, hasPlan)
	}
	if err := d.scanGroupBody(nr, g, skipped); err != nil {
		return err
	}
	return nr.done()
}

// scanGroupBody walks one group's section chunks — code dimensions, expert
// mapping, per-column failure streams — taking the ones the projection needs
// and skipping the rest. The chunk-count structure follows the shared header
// plan; a corrupt group plan that would disagree surfaces as a chunk
// overrun or trailing-bytes error.
func (d *decompressor) scanGroupBody(r *sectionReader, g *groupDec, skipped *int64) error {
	take := func(dst *[]byte, needed bool) error {
		if needed {
			c, err := r.chunk()
			if err != nil {
				return err
			}
			*dst = c
			return nil
		}
		n, err := r.skip()
		*skipped += n
		return err
	}
	if d.hasModel {
		g.dimChunks = make([][]byte, d.codeSize)
		for i := range g.dimChunks {
			if err := take(&g.dimChunks[i], d.needModel); err != nil {
				return err
			}
		}
	}
	if d.numExperts > 1 {
		if err := take(&g.mappingChunk, d.needMapping); err != nil {
			return err
		}
	}
	g.colChunks = make([][][]byte, len(d.plan.Cols))
	for col := range d.plan.Cols {
		cnt := colChunkCount(d.plan, d.lo, col)
		g.colChunks[col] = make([][]byte, cnt)
		for i := 0; i < cnt; i++ {
			if err := take(&g.colChunks[col][i], d.sel[col]); err != nil {
				return err
			}
		}
	}
	return nil
}

// colChunkCount is the number of data chunks a column writes per segment —
// the contract buildSegment, scanGroupBody, and collectGroupStreams must
// all agree on: continuous model columns store mask+values, categorical
// model columns store ranks+exceptions, residual columns store one rank
// stream per digit, everything else stores one chunk.
func colChunkCount(plan *preprocess.Plan, lo *layout, col int) int {
	cp := &plan.Cols[col]
	switch {
	case cp.Kind == preprocess.KindCatResidual:
		return cp.ResDigits
	case lo.specOfCol[col] >= 0 &&
		(cp.Kind == preprocess.KindNumContinuous ||
			lo.specs[lo.specOfCol[col]].Kind == nn.OutCategorical):
		return 2
	default:
		return 1
	}
}

// unpack decodes every retained section concurrently across all active
// groups: decoder parse, group plan overrides, code dimensions, expert
// mappings, and the selected columns' failure streams. Each work item writes
// its own slot. Returns the number of encoded bytes decoded.
func (d *decompressor) unpack() (int64, error) {
	var bytes int64
	var items []func() error
	add := func(chunk []byte, fn func() error) {
		bytes += int64(len(chunk))
		items = append(items, fn)
	}
	if d.needModel {
		// Internal-model requests through a handle share its parsed-once
		// decoder cache; streaming batch archives (externally supplied
		// decoders) and the streaming reader parse per use. Either way the
		// chunk's bytes count as decoded work for this request.
		if d.h != nil && d.ext == nil {
			add(d.decoderChunk, func() error {
				decs, err := d.h.decoders()
				if err != nil {
					return err
				}
				d.decoders = decs
				if d.flags&flagFloat32 != 0 {
					d.decs32, err = d.h.decoders32()
				}
				return err
			})
		} else {
			add(d.decoderChunk, d.unpackDecoders)
		}
	}
	for _, g := range d.groups {
		if !g.active {
			continue
		}
		d.unpackGroupItems(g, add)
	}
	err := d.run.ForEach(len(items), func(i int) error { return items[i]() })
	return bytes, err
}

// unpackGroupItems initializes a group's decoded-stream slots and appends
// the group's unpack work items.
func (d *decompressor) unpackGroupItems(g *groupDec, add func(chunk []byte, fn func() error)) {
	ncols := len(d.plan.Cols)
	g.plan = d.plan
	g.fInts = make([][]int64, ncols)
	g.fRes = make([][][]int64, ncols)
	g.fExc = make([][]int64, ncols)
	g.fMask = make([][]int64, ncols)
	g.fVals = make([][]float64, ncols)
	g.fbStr = make([][]string, ncols)
	g.fbNum = make([][]float64, ncols)
	g.trivial = make([][]int64, ncols)
	g.perm = make([]int, g.count)
	for i := range g.perm {
		g.perm[i] = i
	}
	g.assign = make([]int, g.count)

	if g.planChunk != nil {
		add(g.planChunk, func() error { return d.unpackGroupPlan(g) })
	}
	if d.needModel {
		g.dims = make([][]int64, d.codeSize)
		for i, chunk := range g.dimChunks {
			i, chunk := i, chunk
			add(chunk, func() error {
				vals, err := colfile.UnpackIntsMax(chunk, g.count)
				if err != nil {
					return corrupt(err)
				}
				if len(vals) != g.count {
					return fmt.Errorf("%w: code dim %d has %d values, want %d", ErrCorrupt, i, len(vals), g.count)
				}
				g.dims[i] = vals
				return nil
			})
		}
	}
	if d.needMapping {
		add(g.mappingChunk, func() error { return d.unpackMapping(g) })
	}
	for _, col := range d.selCols {
		col := col
		cp := &d.plan.Cols[col]
		a := g.colChunks[col][0]
		var b []byte
		if len(g.colChunks[col]) > 1 {
			b = g.colChunks[col][1]
		}
		switch {
		case cp.Kind == preprocess.KindCatResidual:
			g.fRes[col] = make([][]int64, cp.ResDigits)
			for dg := 0; dg < cp.ResDigits; dg++ {
				dg := dg
				chunk := g.colChunks[col][dg]
				add(chunk, func() error {
					ranks, err := colfile.UnpackIntsMax(chunk, g.count)
					if err != nil {
						return corrupt(err)
					}
					if len(ranks) != g.count {
						return fmt.Errorf("%w: column %d digit %d failure length", ErrCorrupt, col, dg)
					}
					g.fRes[col][dg] = ranks
					return nil
				})
			}
		case d.lo.specOfCol[col] >= 0 && cp.Kind == preprocess.KindNumContinuous:
			add(a, func() error {
				mask, err := colfile.UnpackIntsMax(a, g.count)
				if err != nil {
					return corrupt(err)
				}
				if len(mask) != g.count {
					return fmt.Errorf("%w: column %d mask length", ErrCorrupt, col)
				}
				g.fMask[col] = mask
				return nil
			})
			add(b, func() error {
				vals, err := colfile.UnpackFloatsMax(b, g.count)
				if err != nil {
					return corrupt(err)
				}
				g.fVals[col] = vals
				return nil
			})
		case d.lo.specOfCol[col] >= 0:
			add(a, func() error {
				ints, err := colfile.UnpackIntsMax(a, g.count)
				if err != nil {
					return corrupt(err)
				}
				if len(ints) != g.count {
					return fmt.Errorf("%w: column %d failure length", ErrCorrupt, col)
				}
				g.fInts[col] = ints
				return nil
			})
			if d.lo.specs[d.lo.specOfCol[col]].Kind == nn.OutCategorical {
				add(b, func() error {
					exc, err := colfile.UnpackIntsMax(b, g.count)
					if err != nil {
						return corrupt(err)
					}
					g.fExc[col] = exc
					return nil
				})
			}
		case cp.Kind == preprocess.KindFallbackCat:
			add(a, func() error {
				vals, err := colfile.UnpackStringsMax(a, g.count)
				if err != nil {
					return corrupt(err)
				}
				if len(vals) != g.count {
					return fmt.Errorf("%w: fallback column %d length", ErrCorrupt, col)
				}
				g.fbStr[col] = vals
				return nil
			})
		case cp.Kind == preprocess.KindFallbackNum:
			add(a, func() error {
				vals, err := colfile.UnpackFloatsMax(a, g.count)
				if err != nil {
					return corrupt(err)
				}
				if len(vals) != g.count {
					return fmt.Errorf("%w: fallback column %d length", ErrCorrupt, col)
				}
				g.fbNum[col] = vals
				return nil
			})
		default: // trivial
			add(a, func() error {
				ints, err := colfile.UnpackIntsMax(a, g.count)
				if err != nil {
					return corrupt(err)
				}
				if len(ints) != g.count {
					return fmt.Errorf("%w: trivial column %d length", ErrCorrupt, col)
				}
				g.trivial[col] = ints
				return nil
			})
		}
	}
}

// colBranch classifies a column into the serialization branch the writer and
// reader switch on: continuous model, discrete model, categorical fallback,
// numeric fallback, trivial, or residual.
func colBranch(plan *preprocess.Plan, lo *layout, col int) int {
	cp := &plan.Cols[col]
	switch {
	case cp.Kind == preprocess.KindCatResidual:
		return 5
	case lo.specOfCol[col] >= 0 && cp.Kind == preprocess.KindNumContinuous:
		return 0
	case lo.specOfCol[col] >= 0:
		return 1
	case cp.Kind == preprocess.KindFallbackCat:
		return 2
	case cp.Kind == preprocess.KindFallbackNum:
		return 3
	default:
		return 4
	}
}

// unpackGroupPlan decodes and validates a group's plan override. The group
// plan may carry different per-group dictionaries, scalers, and quantizers
// (the streaming writer re-fits them per batch), but must agree with the
// header plan on everything structural: schema, model-column specs, and each
// column's serialization branch.
func (d *decompressor) unpackGroupPlan(g *groupDec) error {
	plan, used, err := preprocess.DecodePlan(g.planChunk)
	if err != nil {
		return corrupt(err)
	}
	if used != len(g.planChunk) {
		return fmt.Errorf("%w: trailing group plan bytes", ErrCorrupt)
	}
	if !plan.Schema.Equal(d.plan.Schema) {
		return fmt.Errorf("%w: group plan schema differs from header", ErrCorrupt)
	}
	glo, err := deriveLayout(plan)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(glo.specs) != len(d.lo.specs) {
		return fmt.Errorf("%w: group plan has %d model columns, header %d", ErrCorrupt, len(glo.specs), len(d.lo.specs))
	}
	for i := range glo.specs {
		if glo.specs[i] != d.lo.specs[i] {
			return fmt.Errorf("%w: group plan model column %d differs from header", ErrCorrupt, i)
		}
	}
	for col := range plan.Cols {
		if glo.specOfCol[col] != d.lo.specOfCol[col] ||
			colBranch(plan, glo, col) != colBranch(d.plan, d.lo, col) {
			return fmt.Errorf("%w: group plan column %d structure differs from header", ErrCorrupt, col)
		}
	}
	g.plan = plan
	return nil
}

// unpackDecoders parses (or adopts) the decoder section and checks its
// shape against the header.
func (d *decompressor) unpackDecoders() error {
	if d.flags&flagExternalModel != 0 {
		if d.ext == nil {
			return fmt.Errorf("%w: streaming batch archive needs its model archive (use DecompressBatch)", ErrCorrupt)
		}
		if len(d.decoderChunk) != 32 || !bytes.Equal(d.decoderChunk, d.ext.hash[:]) {
			return fmt.Errorf("%w: batch archive references a different model archive", ErrCorrupt)
		}
		d.decoders = d.ext.decoders
		if len(d.decoders) != d.numExperts {
			return fmt.Errorf("%w: model archive has %d experts, batch wants %d", ErrCorrupt, len(d.decoders), d.numExperts)
		}
		if err := checkDecoderShapes(d.decoders, d.codeSize, len(d.lo.specs)); err != nil {
			return err
		}
		return d.narrowDecoders()
	}
	decoders, err := parseCheckedDecoders(d.decoderChunk, d.numExperts, d.codeSize, len(d.lo.specs))
	if err != nil {
		return err
	}
	d.decoders = decoders
	return d.narrowDecoders()
}

// narrowDecoders builds the float32 decoder views an archive carrying
// flagFloat32 decodes through; a no-op otherwise.
func (d *decompressor) narrowDecoders() error {
	if d.flags&flagFloat32 != 0 {
		d.decs32 = nn.Decoders32(d.decoders)
	}
	return nil
}

// parseCheckedDecoders inflates a decoder section and validates every
// expert's shape against the header — the single parsing routine shared by
// the Archive handle's cache, byte-slice decompression, and the streaming
// reader (it used to be duplicated across decompress.go and streamio.go).
func parseCheckedDecoders(section []byte, numExperts, codeSize, numSpecs int) ([]*nn.Decoder, error) {
	decoders, err := parseDecoderSection(section, numExperts)
	if err != nil {
		return nil, corrupt(err)
	}
	if err := checkDecoderShapes(decoders, codeSize, numSpecs); err != nil {
		return nil, err
	}
	return decoders, nil
}

// checkDecoderShapes verifies each decoder agrees with the header on code
// size and output-spec count.
func checkDecoderShapes(decoders []*nn.Decoder, codeSize, numSpecs int) error {
	for e, dec := range decoders {
		if dec.CodeSize != codeSize || len(dec.Specs) != numSpecs {
			return fmt.Errorf("%w: decoder %d shape mismatch", ErrCorrupt, e)
		}
	}
	return nil
}

// unpackMapping decodes one group's mapping chunk into perm (stored position
// → group-local original row) and assign (group-local original row →
// expert).
func (d *decompressor) unpackMapping(g *groupDec) error {
	mb := g.mappingChunk
	if d.flags&flagGrouped != 0 {
		keepOrder := d.flags&flagRowOrder != 0
		mpos, s := 0, 0
		for e := 0; e < d.numExperts; e++ {
			cnt64, sz := binary.Uvarint(mb[mpos:])
			if sz <= 0 {
				return fmt.Errorf("%w: truncated mapping", ErrCorrupt)
			}
			mpos += sz
			if cnt64 > uint64(g.count) {
				return fmt.Errorf("%w: mapping counts exceed rows", ErrCorrupt)
			}
			cnt := int(cnt64)
			if s+cnt > g.count {
				return fmt.Errorf("%w: mapping counts exceed rows", ErrCorrupt)
			}
			if keepOrder {
				l, sz := binary.Uvarint(mb[mpos:])
				if sz <= 0 || uint64(len(mb)-mpos-sz) < l {
					return fmt.Errorf("%w: truncated mapping indexes", ErrCorrupt)
				}
				mpos += sz
				idx, err := colfile.UnpackIntsMax(mb[mpos:mpos+int(l)], cnt)
				if err != nil {
					return corrupt(err)
				}
				mpos += int(l)
				if len(idx) != cnt {
					return fmt.Errorf("%w: mapping index count", ErrCorrupt)
				}
				for _, orig := range idx {
					if orig < 0 || orig >= int64(g.count) {
						return fmt.Errorf("%w: mapping index %d", ErrCorrupt, orig)
					}
					g.perm[s] = int(orig)
					g.assign[orig] = e
					s++
				}
			} else {
				for k := 0; k < cnt; k++ {
					g.perm[s] = s
					g.assign[s] = e
					s++
				}
			}
		}
		if s != g.count || mpos != len(mb) {
			return fmt.Errorf("%w: mapping does not cover all rows", ErrCorrupt)
		}
	} else {
		labels, err := colfile.UnpackIntsMax(mb, g.count)
		if err != nil {
			return corrupt(err)
		}
		if len(labels) != g.count {
			return fmt.Errorf("%w: %d labels for %d rows", ErrCorrupt, len(labels), g.count)
		}
		for i, l := range labels {
			if l < 0 || int(l) >= d.numExperts {
				return fmt.Errorf("%w: label %d", ErrCorrupt, l)
			}
			g.assign[i] = int(l)
		}
	}
	if d.flags&flagRowOrder == 0 {
		// Row order was not preserved: the table is reconstructed in stored
		// order, which perm already reflects (identity).
		return nil
	}
	return validatePerm(g.perm)
}

// resolve maps each selected column's sparse escape/correction queue to
// stored positions (one work item per group × spec column), inverts each
// group's perm, and allocates the decode output slots.
func (d *decompressor) resolve() error {
	type work struct {
		g  *groupDec
		si int
	}
	var items []work
	for _, g := range d.groups {
		if !g.active {
			continue
		}
		d.resolveGroupInit(g)
		for si := range d.lo.specs {
			if d.wantSpec[si] {
				items = append(items, work{g, si})
			}
		}
	}
	return d.run.ForEach(len(items), func(i int) error {
		return d.resolveSpec(items[i].g, items[i].si)
	})
}

// resolveGroupInit inverts a group's perm and allocates its decode slots.
func (d *decompressor) resolveGroupInit(g *groupDec) {
	g.unperm = make([]int, g.count)
	for s, orig := range g.perm {
		g.unperm[orig] = s
	}
	g.colCodes = make([][]int, len(d.plan.Cols))
	g.contOut = make([][]float64, len(d.plan.Cols))
	for si, col := range d.lo.specCols {
		if !d.wantSpec[si] {
			continue
		}
		if d.plan.Cols[col].Kind == preprocess.KindNumContinuous {
			g.contOut[col] = make([]float64, g.count)
		} else if g.colCodes[col] == nil {
			// Residual columns repeat in specCols (one entry per digit);
			// the digits accumulate into one shared code slice.
			g.colCodes[col] = make([]int, g.count)
		}
	}
	g.excAt = make([]map[int]int64, len(d.lo.specs))
	g.valAt = make([]map[int]float64, len(d.lo.specs))
}

// resolveSpec builds one group × spec column's escape/correction queue map.
func (d *decompressor) resolveSpec(g *groupDec, si int) error {
	spec := d.lo.specs[si]
	col := d.lo.specCols[si]
	if d.plan.Cols[col].Kind == preprocess.KindNumContinuous {
		at := make(map[int]float64)
		queue := g.fVals[col]
		qi := 0
		for s, m := range g.fMask[col] {
			if m != 0 {
				if qi >= len(queue) {
					return fmt.Errorf("%w: column %d correction queue exhausted", ErrCorrupt, col)
				}
				at[s] = queue[qi]
				qi++
			}
		}
		if qi != len(queue) {
			return fmt.Errorf("%w: column %d has %d unused corrections", ErrCorrupt, col, len(queue)-qi)
		}
		g.valAt[si] = at
		return nil
	}
	if spec.Kind != nn.OutCategorical || d.plan.Cols[col].Kind == preprocess.KindCatResidual {
		// Residual digits never escape: there is no exception queue to
		// resolve, and rank validation happens when the digit is applied.
		return nil
	}
	at := make(map[int]int64)
	queue := g.fExc[col]
	qi := 0
	for s, f := range g.fInts[col] {
		if int(f) == spec.Card {
			if qi >= len(queue) {
				return fmt.Errorf("%w: column %d exception queue exhausted", ErrCorrupt, col)
			}
			v := queue[qi]
			if v < 0 || int(v) >= g.plan.Cols[col].Dict.Len() {
				return fmt.Errorf("%w: column %d exception code %d", ErrCorrupt, col, v)
			}
			at[s] = v
			qi++
		}
	}
	if qi != len(queue) {
		return fmt.Errorf("%w: column %d has %d unused exceptions", ErrCorrupt, col, len(queue)-qi)
	}
	g.excAt[si] = at
	return nil
}

// decode replays decoder inference over the pool — one work item per group ×
// expert — applying the failure streams to recover the selected model
// columns' codes in stored order. Only selected spec columns are inferred
// (PredictCols) and only stored positions inside the row range are fed
// through.
func (d *decompressor) decode() error {
	if !d.needModel {
		return nil
	}
	type work struct {
		g *groupDec
		e int
	}
	var items []work
	for _, g := range d.groups {
		if !g.active || g.ghi <= g.glo {
			continue
		}
		d.decodeGroupInit(g)
		for e := 0; e < d.numExperts; e++ {
			items = append(items, work{g, e})
		}
	}
	return d.run.ForEach(len(items), func(i int) error {
		return d.decodeExpert(items[i].g, items[i].e)
	})
}

// decodeGroupInit reconstructs a group's float codes and groups its stored
// positions by expert, restricted to the selected local row span.
func (d *decompressor) decodeGroupInit(g *groupDec) {
	g.rec = reconstructCodes(g.dims, d.codeBits)
	g.posBy = expertPositionsRange(g.assign, g.perm, d.numExperts, g.glo, g.ghi)
}

// decodeExpert runs one group × expert through the decoder, at the precision
// the archive header mandates (flagFloat32 → float32 inference).
func (d *decompressor) decodeExpert(g *groupDec, e int) error {
	scratch := make([]bool, maxCard(d.lo.specs)+1)
	var d32 *nn.Decoder32
	if d.decs32 != nil {
		d32 = d.decs32[e]
	}
	var derr error
	expertBatches(predictorFor(d.decoders[e], d32, d.wantSpec), g.rec, g.posBy[e], func(chunk []int, p *nn.Predictions) {
		if derr != nil {
			return
		}
		derr = d.applyChunk(g, d.decoders[e], chunk, p, scratch)
	})
	return derr
}

// applyChunk merges one batch of predictions with a group's failure streams.
// Dictionaries, scalers, and quantizers come from the group plan.
func (d *decompressor) applyChunk(g *groupDec, dec *nn.Decoder, chunk []int, p *nn.Predictions, scratch []bool) error {
	for si, spec := range d.lo.specs {
		if !d.wantSpec[si] {
			continue
		}
		col := d.lo.specCols[si]
		cp := &g.plan.Cols[col]
		switch spec.Kind {
		case nn.OutNumeric:
			np := dec.NumPos(si)
			if cp.Kind == preprocess.KindNumContinuous {
				out := g.contOut[col]
				for i, s := range chunk {
					if g.fMask[col][s] != 0 {
						out[s] = g.valAt[si][s]
					} else {
						out[s] = cp.Scaler.Unscale(p.Num.At(i, np))
					}
				}
				continue
			}
			lv := levels(cp)
			out := g.colCodes[col]
			for i, s := range chunk {
				code := nearestLevel(cp, p.Num.At(i, np), lv) + int(g.fInts[col][s])
				if code < 0 || code >= lv {
					return fmt.Errorf("%w: column %d code %d outside [0,%d)", ErrCorrupt, col, code, lv)
				}
				out[s] = code
			}
		case nn.OutBinary:
			bp := dec.BinPos(si)
			out := g.colCodes[col]
			for i, s := range chunk {
				predBit := 0
				if p.Bin.At(i, bp) >= 0.5 {
					predBit = 1
				}
				f := g.fInts[col][s]
				if f != 0 && f != 1 {
					return fmt.Errorf("%w: column %d binary failure %d", ErrCorrupt, col, f)
				}
				out[s] = predBit ^ int(f)
			}
		case nn.OutCategorical:
			j := dec.CatPos(si)
			out := g.colCodes[col]
			probs := p.Cat[j]
			if cp.Kind == preprocess.KindCatResidual {
				// One digit of the rank: patch this digit's failure rank
				// and accumulate its place value into the shared code.
				// Ranks are strict — digits have no escape, so anything
				// outside [0, Base) is corruption, and the recomposed rank
				// is bounds-checked against the dictionary on assembly.
				dg := d.lo.specDigit[si]
				ranks := g.fRes[col][dg]
				mult := 1
				for k := 0; k < dg; k++ {
					mult *= cp.ModelCard
				}
				for i, s := range chunk {
					rank := int(ranks[s])
					if rank < 0 || rank >= spec.Card {
						return fmt.Errorf("%w: column %d digit %d rank %d", ErrCorrupt, col, dg, rank)
					}
					out[s] += codeAtRank(probs.Row(i), rank, scratch) * mult
				}
				continue
			}
			for i, s := range chunk {
				rank := int(g.fInts[col][s])
				switch {
				case rank == spec.Card: // escape
					out[s] = int(g.excAt[si][s])
				case rank >= 0 && rank < spec.Card:
					out[s] = codeAtRank(probs.Row(i), rank, scratch)
				default:
					return fmt.Errorf("%w: column %d rank %d", ErrCorrupt, col, rank)
				}
			}
		}
	}
	return nil
}

// assemble materializes the selected columns in original row order — one
// work item per group × column, each writing a disjoint slice of the
// preallocated output — and builds the (possibly projected) output table.
func (d *decompressor) assemble() (*dataset.Table, error) {
	n := d.nOut
	ncols := len(d.plan.Cols)
	outStr := make([][]string, ncols)
	outNum := make([][]float64, ncols)
	for _, col := range d.selCols {
		if d.plan.Schema.Columns[col].Type == dataset.Categorical {
			outStr[col] = make([]string, n)
		} else {
			outNum[col] = make([]float64, n)
		}
	}
	type work struct {
		g   *groupDec
		col int
	}
	var items []work
	for _, g := range d.groups {
		if !g.active || g.ghi <= g.glo {
			continue
		}
		for _, col := range d.selCols {
			items = append(items, work{g, col})
		}
	}
	err := d.run.ForEach(len(items), func(k int) error {
		g, col := items[k].g, items[k].col
		return d.assembleColumn(g, col, outStr[col], outNum[col], g.outOff)
	})
	if err != nil {
		return nil, err
	}
	if d.opts.Columns == nil {
		out := dataset.NewTable(d.plan.Schema, 0)
		for _, col := range d.selCols {
			if d.plan.Schema.Columns[col].Type == dataset.Categorical {
				out.Str[col] = outStr[col]
			} else {
				out.Num[col] = outNum[col]
			}
		}
		out.SetNumRows(n)
		return out, nil
	}
	cols := make([]dataset.Column, len(d.selCols))
	for k, col := range d.selCols {
		cols[k] = d.plan.Schema.Columns[col]
	}
	out := dataset.NewTable(dataset.NewSchema(cols...), 0)
	for k, col := range d.selCols {
		if d.plan.Schema.Columns[col].Type == dataset.Categorical {
			out.Str[k] = outStr[col]
		} else {
			out.Num[k] = outNum[col]
		}
	}
	out.SetNumRows(n)
	return out, nil
}

// assembleColumn materializes one group × column into dstStr/dstNum starting
// at dstOff. Model and trivial columns decode through the group plan into a
// scratch table (plan.DecodeColumn addresses whole columns by schema index)
// and are copied into the shared output region, which no other work item
// touches.
func (d *decompressor) assembleColumn(g *groupDec, col int, dstStr []string, dstNum []float64, dstOff int) error {
	m := g.ghi - g.glo
	cp := &g.plan.Cols[col]
	categorical := d.plan.Schema.Columns[col].Type == dataset.Categorical
	decodeCopy := func(codes []int) error {
		scratch := dataset.NewTable(g.plan.Schema, 0)
		if err := decodeColumnChecked(g.plan, scratch, col, codes); err != nil {
			return err
		}
		if categorical {
			copy(dstStr[dstOff:dstOff+m], scratch.Str[col])
		} else {
			copy(dstNum[dstOff:dstOff+m], scratch.Num[col])
		}
		return nil
	}
	switch {
	case d.lo.specOfCol[col] >= 0 && cp.Kind == preprocess.KindNumContinuous:
		src := g.contOut[col]
		for i := 0; i < m; i++ {
			dstNum[dstOff+i] = src[g.unperm[g.glo+i]]
		}
	case d.lo.specOfCol[col] >= 0:
		codes := make([]int, m)
		src := g.colCodes[col]
		for i := range codes {
			codes[i] = src[g.unperm[g.glo+i]]
		}
		return decodeCopy(codes)
	case cp.Kind == preprocess.KindFallbackCat:
		src := g.fbStr[col]
		for i := 0; i < m; i++ {
			dstStr[dstOff+i] = src[g.unperm[g.glo+i]]
		}
	case cp.Kind == preprocess.KindFallbackNum:
		src := g.fbNum[col]
		for i := 0; i < m; i++ {
			dstNum[dstOff+i] = src[g.unperm[g.glo+i]]
		}
	default: // trivial
		codes := make([]int, m)
		src := g.trivial[col]
		for i := range codes {
			v := src[g.unperm[g.glo+i]]
			if v < 0 || v > math.MaxInt32 {
				return fmt.Errorf("%w: trivial column %d code %d", ErrCorrupt, col, v)
			}
			codes[i] = int(v)
		}
		return decodeCopy(codes)
	}
	return nil
}

// decodeColumnChecked wraps Plan.DecodeColumn with corruption classification.
func decodeColumnChecked(plan *preprocess.Plan, dst *dataset.Table, col int, codes []int) error {
	if err := plan.DecodeColumn(dst, col, codes); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

// validatePerm checks perm is a permutation of [0, len).
func validatePerm(perm []int) error {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return fmt.Errorf("%w: invalid row permutation", ErrCorrupt)
		}
		seen[p] = true
	}
	return nil
}

func maxCard(specs []nn.ColSpec) int {
	m := 1
	for _, s := range specs {
		if s.Kind == nn.OutCategorical && s.Card > m {
			m = s.Card
		}
	}
	return m
}
