package core

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/mat"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/pipeline"
	"deepsqueeze/internal/preprocess"
)

// maxStreamChunk bounds a single length-prefixed chunk an untrusted
// streaming archive may ask the reader to buffer (the chunk framing uses a
// uvarint, so a corrupt length could otherwise demand an absurd allocation
// before any content is validated).
const maxStreamChunk = 1 << 30

// WriterStats instruments an ArchiveWriter for bounded-memory verification.
type WriterStats struct {
	// Rows is the total rows written so far (including buffered ones).
	Rows int
	// Groups is the number of row-group segments flushed so far.
	Groups int
	// MaxBufferedRows is the high-water mark of rows held in the writer's
	// buffer. It never exceeds one row group plus one Write call's rows —
	// the structural guarantee that peak memory is O(row group), not
	// O(table).
	MaxBufferedRows int
	// BytesWritten is the archive bytes emitted so far.
	BytesWritten int64
}

// ArchiveWriter compresses a table of unbounded length into a version-2
// archive, streaming row-group segments to w as rows arrive. The model is
// trained once, on the first full row group (so the first segment is not
// emitted until RowGroupSize rows have been buffered or Close is called);
// every later group re-fits only the cheap preprocessing state — its plan
// rides along as a per-group override — and reuses the trained experts.
// Memory stays O(row group): see WriterStats.MaxBufferedRows.
//
// The resulting archive is a normal self-contained v2 archive: Decompress,
// DecompressContext, Inspect, and ArchiveReader all accept it.
type ArchiveWriter struct {
	w          io.Writer
	schema     *dataset.Schema
	thresholds []float64
	opts       Options
	pool       *pipeline.Pool
	run        *pipeline.Run

	buf       *dataset.Table
	groupSize int

	started    bool
	trainPlan  *preprocess.Plan
	experts    []*nn.Autoencoder
	decoders   []*nn.Decoder
	decs32     []*nn.Decoder32 // float32 views when the pilot set flagFloat32
	specs      []nn.ColSpec
	flags      byte
	codeBits   int
	codeSize   int
	numExperts int

	crc     hash.Hash32
	written int64
	rows    int
	metas   []groupMeta
	zones   [][]ZoneMap // per flushed group, when flagZoneMaps is set
	stats   WriterStats
	closed  bool
	err     error
}

// NewArchiveWriter returns a writer that streams a v2 archive for tables
// with the given schema to w. thresholds supplies per-column error bounds as
// in Compress. opts.RowGroupSize sets the rows per segment (0 = default).
func NewArchiveWriter(w io.Writer, schema *dataset.Schema, thresholds []float64, opts Options) (*ArchiveWriter, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts.Preproc = streamingResidualHeadroom(opts.Preproc)
	pool := pipeline.NewPool(opts.Parallelism)
	return &ArchiveWriter{
		w:          w,
		schema:     schema,
		thresholds: append([]float64(nil), thresholds...),
		opts:       opts,
		pool:       pool,
		run:        pipeline.NewWithPool(context.Background(), pool),
		buf:        dataset.NewTable(schema, 0),
		groupSize:  opts.rowGroupSize(),
		crc:        crc32.NewIEEE(),
	}, nil
}

// Write appends t's rows to the archive. t must have the writer's schema.
// Full row groups are compressed and flushed to the underlying writer as
// they fill; a partial group stays buffered until more rows arrive or Close.
func (aw *ArchiveWriter) Write(t *dataset.Table) error {
	if aw.err != nil {
		return aw.err
	}
	if aw.closed {
		return fmt.Errorf("core: write to closed ArchiveWriter")
	}
	if !t.Schema.Equal(aw.schema) {
		return fmt.Errorf("core: table schema differs from writer schema")
	}
	appendRows(aw.buf, t, 0, t.NumRows())
	aw.stats.Rows += t.NumRows()
	if n := aw.buf.NumRows(); n > aw.stats.MaxBufferedRows {
		aw.stats.MaxBufferedRows = n
	}
	for aw.buf.NumRows() >= aw.groupSize {
		chunk, rest := splitRows(aw.buf, aw.groupSize)
		if err := aw.flushGroup(chunk); err != nil {
			aw.err = err
			return err
		}
		aw.buf = rest
	}
	return nil
}

// Close flushes any buffered rows as a final (possibly short) row group,
// writes the footer index and checksum, and finalizes the archive. It does
// not close the underlying writer.
func (aw *ArchiveWriter) Close() error {
	if aw.err != nil {
		return aw.err
	}
	if aw.closed {
		return nil
	}
	aw.closed = true
	if aw.buf.NumRows() > 0 || !aw.started {
		if !aw.started && aw.buf.NumRows() == 0 {
			// Nothing was ever written: an empty in-memory compression
			// produces the canonical empty archive (one empty group).
			res, err := CompressContext(context.Background(), aw.buf, aw.thresholds, aw.opts)
			if err != nil {
				aw.err = err
				return err
			}
			if _, err := aw.w.Write(res.Archive); err != nil {
				aw.err = err
				return err
			}
			aw.stats.Groups = 1
			aw.stats.BytesWritten = int64(len(res.Archive))
			return nil
		}
		if err := aw.flushGroup(aw.buf); err != nil {
			aw.err = err
			return err
		}
		aw.buf = dataset.NewTable(aw.schema, 0)
	}
	if aw.flags&flagZoneMaps != 0 {
		var sb []byte
		sb = append(sb, kindStats)
		payload := appendZoneStatsPayload(nil, aw.zones)
		sb = binary.AppendUvarint(sb, uint64(len(payload)))
		sb = append(sb, payload...)
		if err := aw.writeRaw(sb); err != nil {
			aw.err = err
			return err
		}
	}
	footOff := aw.written
	var tail []byte
	tail = append(tail, kindFooter)
	payload := appendFooterPayload(nil, aw.rows, aw.metas)
	tail = binary.AppendUvarint(tail, uint64(len(payload)))
	tail = append(tail, payload...)
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], uint64(footOff))
	tail = append(tail, trailer[:]...)
	if err := aw.writeRaw(tail); err != nil {
		aw.err = err
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], aw.crc.Sum32())
	if _, err := aw.w.Write(sum[:]); err != nil {
		aw.err = err
		return err
	}
	aw.stats.BytesWritten = aw.written + 4
	return nil
}

// Stats returns the writer's instrumentation counters.
func (aw *ArchiveWriter) Stats() WriterStats {
	st := aw.stats
	st.Groups = len(aw.metas)
	if st.Groups == 0 && aw.stats.Groups > 0 {
		st.Groups = aw.stats.Groups
	}
	if st.BytesWritten == 0 {
		st.BytesWritten = aw.written
	}
	return st
}

// writeRaw emits bytes to the underlying writer, updating the running
// checksum and offset.
func (aw *ArchiveWriter) writeRaw(b []byte) error {
	if _, err := aw.w.Write(b); err != nil {
		return err
	}
	aw.crc.Write(b)
	aw.written += int64(len(b))
	return nil
}

// start trains the model on the first chunk and writes the archive prefix.
// It runs a full in-memory compression of the chunk to reuse the compressor's
// decisions verbatim — expert count, code bits, mapping form, flags — then
// discards that archive; the chunk is re-materialized as the first segment.
func (aw *ArchiveWriter) start(chunk *dataset.Table) (*modelData, error) {
	res, experts, md, err := compress(context.Background(), aw.pool, chunk, aw.thresholds, aw.opts)
	if err != nil {
		return nil, err
	}
	aw.started = true
	aw.trainPlan = md.plan
	aw.experts = experts
	aw.specs = append([]nn.ColSpec(nil), md.specs...)
	aw.flags = res.Archive[5]
	aw.codeBits = res.CodeBits
	aw.numExperts = len(experts)
	if aw.numExperts == 0 {
		aw.numExperts = 1
	}
	if len(experts) > 0 {
		aw.codeSize = experts[0].CodeSize
		aw.decoders = make([]*nn.Decoder, len(experts))
		for e, ae := range experts {
			aw.decoders[e] = &ae.Decoder
		}
		if aw.flags&flagFloat32 != 0 {
			// The pilot archive's flags carry over verbatim, so every later
			// group's corrections must come from the same float32 inference.
			aw.decs32 = nn.Decoders32(aw.decoders)
		}
	}

	var prefix []byte
	prefix = append(prefix, magic[:]...)
	prefix = append(prefix, archiveVersion, aw.flags)
	hdr := appendHeaderPayload(nil, aw.trainPlan, aw.codeSize, aw.codeBits, aw.numExperts, aw.groupSize)
	prefix = binary.AppendUvarint(prefix, uint64(len(hdr)))
	prefix = append(prefix, hdr...)
	if aw.flags&flagHasModel != 0 {
		payload, err := appendDecoderChunkPayload(&archiveState{decoders: aw.decoders})
		if err != nil {
			return nil, err
		}
		prefix = binary.AppendUvarint(prefix, uint64(len(payload)))
		prefix = append(prefix, payload...)
	}
	if err := aw.writeRaw(prefix); err != nil {
		return nil, err
	}
	return md, nil
}

// flushGroup materializes one chunk of rows as a row-group segment and
// streams it out. The first chunk triggers training and the archive prefix;
// later chunks re-fit their plan against the training plan (pinned kinds,
// unseen values become escapes) and carry it as a segment-local override.
func (aw *ArchiveWriter) flushGroup(chunk *dataset.Table) error {
	var md *modelData
	var planChunk []byte
	if !aw.started {
		var err error
		if md, err = aw.start(chunk); err != nil {
			return err
		}
	} else {
		plan, err := refitPlan(chunk, aw.trainPlan, aw.thresholds, aw.opts)
		if err != nil {
			return err
		}
		if md, err = buildModelData(chunk, plan); err != nil {
			return err
		}
		if err := checkRefitSpecs(md.specs, aw.specs); err != nil {
			return err
		}
		planChunk = plan.AppendBinary(nil)
	}

	n := md.rows
	hasModel := aw.flags&flagHasModel != 0
	assign := make([]int, n)
	if hasModel && aw.numExperts > 1 {
		assign = (&nn.MoE{Experts: aw.experts}).Assign(md.x, md.targets)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var dims [][]int64
	fs := &failureSet{
		ints:       make(map[int][]int64),
		resInts:    make(map[int][][]int64),
		exceptions: make(map[int][]int64),
		contMask:   make(map[int][]int64),
		contVals:   make(map[int][]float64),
	}
	if hasModel {
		codesF, err := encodeCodes(aw.run, aw.experts, assign, md.x)
		if err != nil {
			return err
		}
		if aw.flags&flagGrouped != 0 {
			perm = groupedPerm(assign)
		}
		var recM *mat.Matrix
		dims, recM = quantizeCodes(permuteRows(codesF, perm), aw.codeBits)
		origNum := make(map[int][]float64)
		for col := range md.contVals {
			origNum[col] = chunk.Num[col]
		}
		fs, err = computeFailures(aw.run, md, origNum, aw.decoders, aw.decs32, assign, recM, perm)
		if err != nil {
			return err
		}
	} else {
		for si, col := range md.specCols {
			cp := &md.plan.Cols[col]
			switch cp.Kind {
			case preprocess.KindNumContinuous:
				fs.contMask[col] = []int64{}
			case preprocess.KindCatResidual:
				if fs.resInts[col] == nil {
					fs.resInts[col] = make([][]int64, cp.ResDigits)
				}
				fs.resInts[col][md.specDigit[si]] = []int64{}
			default:
				fs.ints[col] = []int64{}
			}
		}
	}

	g := segmentData{
		span:      rowSpan{aw.rows, n},
		origBase:  0,
		planChunk: planChunk,
		dims:      dims,
		ints:      fs.ints,
		res:       fs.resInts,
		exc:       fs.exceptions,
		mask:      fs.contMask,
		vals:      fs.contVals,
		perm:      perm,
	}
	cfg := segConfig{
		hasModel:  hasModel,
		experts:   aw.numExperts,
		grouped:   aw.flags&flagGrouped != 0,
		keepOrder: aw.flags&flagRowOrder != 0,
		mask:      aw.opts.codecMask(),
	}
	framed, codes, mapping, failures, err := buildSegment(chunk, md, assign, cfg, g)
	if err != nil {
		return err
	}
	if aw.flags&flagZoneMaps != 0 {
		// The first group's md.plan is the training plan itself (sameEnc →
		// encoded-domain zones); re-fit groups get decoded-domain zones.
		aw.zones = append(aw.zones, computeGroupZones(chunk, perm, aw.trainPlan, md.plan))
	}
	off := aw.written
	var out []byte
	out = append(out, kindSegment)
	out = binary.AppendUvarint(out, uint64(len(framed)))
	out = append(out, framed...)
	if err := aw.writeRaw(out); err != nil {
		return err
	}
	aw.metas = append(aw.metas, groupMeta{
		start: aw.rows, count: n,
		off: off, segLen: aw.written - off,
		codes: codes, mapping: mapping, failures: failures,
	})
	aw.rows += n
	return nil
}

// appendRows copies rows [lo, hi) of src onto dst (same schema).
func appendRows(dst, src *dataset.Table, lo, hi int) {
	for i, c := range dst.Schema.Columns {
		if c.Type == dataset.Categorical {
			dst.Str[i] = append(dst.Str[i], src.Str[i][lo:hi]...)
		} else {
			dst.Num[i] = append(dst.Num[i], src.Num[i][lo:hi]...)
		}
	}
	dst.SetNumRows(dst.NumRows() + (hi - lo))
}

// splitRows cuts t into its first n rows and the remainder (both copies, so
// the head can be released once flushed).
func splitRows(t *dataset.Table, n int) (head, rest *dataset.Table) {
	head = dataset.NewTable(t.Schema, n)
	rest = dataset.NewTable(t.Schema, t.NumRows()-n)
	appendRows(head, t, 0, n)
	appendRows(rest, t, n, t.NumRows())
	return head, rest
}

// ArchiveReader decompresses a version-2 archive group by group from an
// io.Reader, holding at most one row group's streams in memory. Each call to
// Next returns the next row group's rows in original order; io.EOF signals
// the end, after the footer index and the archive checksum have been
// verified against everything read.
//
// Version-1 archives (no row groups) are accepted for compatibility by
// buffering the whole archive and decompressing in memory; the single table
// is returned by the first Next. Streaming batch archives (external model)
// are rejected — use DecompressBatch.
type ArchiveReader struct {
	br  *bufio.Reader
	crc hash.Hash32
	pos int64

	d        *decompressor
	rowsSeen int
	metas    []groupMeta
	sawStats bool
	finished bool

	v1Table *dataset.Table // version-1 fallback, served once
	schema  *dataset.Schema
}

// NewArchiveReader reads the archive prefix (envelope, header, decoders)
// from r and prepares group-by-group decompression.
func NewArchiveReader(r io.Reader) (*ArchiveReader, error) {
	ar := &ArchiveReader{br: bufio.NewReader(r), crc: crc32.NewIEEE()}
	head := make([]byte, 6)
	if _, err := io.ReadFull(ar.br, head); err != nil {
		return nil, fmt.Errorf("%w: truncated archive: %v", ErrCorrupt, err)
	}
	if string(head[:4]) != string(magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version, flags := head[4], head[5]
	if version == archiveVersionV1 {
		rest, err := io.ReadAll(ar.br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		t, err := Decompress(append(head, rest...))
		if err != nil {
			return nil, err
		}
		ar.v1Table = t
		ar.schema = t.Schema
		return ar, nil
	}
	if version != archiveVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	ar.crcWrite(head)

	hdr, err := ar.readChunk()
	if err != nil {
		return nil, err
	}
	h, err := decodeHeader(hdr, version)
	if err != nil {
		return nil, err
	}
	lo, err := deriveLayout(h.plan)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if h.numExperts < 1 || h.numExperts > 1<<20 {
		return nil, fmt.Errorf("%w: %d experts", ErrCorrupt, h.numExperts)
	}
	d := &decompressor{
		run:        pipeline.New(context.Background(), 0),
		version:    version,
		flags:      flags,
		plan:       h.plan,
		lo:         lo,
		codeSize:   h.codeSize,
		codeBits:   h.codeBits,
		numExperts: h.numExperts,
		hasModel:   flags&flagHasModel != 0,
	}
	// Full selection: the streaming reader always decodes every column.
	if err := d.initSelection(nil); err != nil {
		return nil, err
	}
	if d.hasModel {
		if d.codeSize < 0 || d.codeSize > maxStreamChunk {
			return nil, fmt.Errorf("%w: code size %d", ErrCorrupt, d.codeSize)
		}
		if d.codeBits < 1 || d.codeBits > 32 {
			return nil, fmt.Errorf("%w: code bits %d outside [1,32]", ErrCorrupt, d.codeBits)
		}
		if d.decoderChunk, err = ar.readChunk(); err != nil {
			return nil, err
		}
		if err := d.unpackDecoders(); err != nil {
			return nil, err
		}
	}
	ar.d = d
	ar.schema = h.plan.Schema
	return ar, nil
}

// Schema returns the archived table's schema.
func (ar *ArchiveReader) Schema() *dataset.Schema { return ar.schema }

// Next returns the next row group's rows, or io.EOF after the last group
// once the footer and archive checksum verify. Empty groups (an empty
// archive still has one) yield an empty table.
func (ar *ArchiveReader) Next() (*dataset.Table, error) {
	if ar.v1Table != nil {
		t := ar.v1Table
		ar.v1Table = nil
		ar.finished = true
		return t, nil
	}
	if ar.finished {
		return nil, io.EOF
	}
	for {
		kind, err := ar.readByte()
		if err != nil {
			return nil, err
		}
		switch kind {
		case kindSegment:
			if ar.sawStats {
				return nil, fmt.Errorf("%w: segment after stats chunk", ErrCorrupt)
			}
			off := ar.pos - 1
			framed, err := ar.readChunk()
			if err != nil {
				return nil, err
			}
			t, meta, err := ar.decodeSegment(framed)
			if err != nil {
				return nil, err
			}
			meta.off, meta.segLen = off, ar.pos-off
			ar.metas = append(ar.metas, meta)
			ar.rowsSeen += meta.count
			return t, nil
		case kindStats:
			if ar.d.flags&flagZoneMaps == 0 || ar.sawStats {
				return nil, fmt.Errorf("%w: unexpected stats chunk", ErrCorrupt)
			}
			// Zone maps are query metadata; the streaming reader decodes
			// every group anyway, so the payload is only consumed (the
			// archive CRC still covers it).
			if _, err := ar.readChunk(); err != nil {
				return nil, err
			}
			ar.sawStats = true
		case kindFooter:
			if ar.d.flags&flagZoneMaps != 0 && !ar.sawStats {
				return nil, fmt.Errorf("%w: missing stats chunk", ErrCorrupt)
			}
			if err := ar.finish(); err != nil {
				return nil, err
			}
			ar.finished = true
			return nil, io.EOF
		default:
			return nil, fmt.Errorf("%w: chunk kind %d", ErrCorrupt, kind)
		}
	}
}

// decodeSegment parses, validates, and fully decodes one row-group segment.
func (ar *ArchiveReader) decodeSegment(framed []byte) (*dataset.Table, groupMeta, error) {
	var meta groupMeta
	d := ar.d
	body, err := segmentBody(framed)
	if err != nil {
		return nil, meta, err
	}
	nr := &sectionReader{buf: body}
	sh, err := nr.chunk()
	if err != nil {
		return nil, meta, err
	}
	shr := &sectionReader{buf: sh}
	start64, err := shr.uvarint()
	if err != nil {
		return nil, meta, err
	}
	count64, err := shr.uvarint()
	if err != nil {
		return nil, meta, err
	}
	hasPlan, err := shr.byte()
	if err != nil {
		return nil, meta, err
	}
	if err := shr.done(); err != nil {
		return nil, meta, err
	}
	if start64 != uint64(ar.rowsSeen) || count64 > uint64(maxArchiveRows-ar.rowsSeen) {
		return nil, meta, fmt.Errorf("%w: segment span [%d,+%d), want start %d", ErrCorrupt, start64, count64, ar.rowsSeen)
	}
	g := &groupDec{start: int(start64), count: int(count64), glo: 0, ghi: int(count64), active: true}
	if g.count > 0 && d.hasModel != (len(d.lo.specs) > 0) {
		return nil, meta, fmt.Errorf("%w: model flag disagrees with plan", ErrCorrupt)
	}
	switch hasPlan {
	case 0:
	case 1:
		if g.planChunk, err = nr.chunk(); err != nil {
			return nil, meta, err
		}
	default:
		return nil, meta, fmt.Errorf("%w: segment plan marker %d", ErrCorrupt, hasPlan)
	}
	var skipped int64
	if err := d.scanGroupBody(nr, g, &skipped); err != nil {
		return nil, meta, err
	}
	if err := nr.done(); err != nil {
		return nil, meta, err
	}
	t, err := d.decodeGroupTable(g)
	if err != nil {
		return nil, meta, err
	}
	meta.start, meta.count = g.start, g.count
	return t, meta, nil
}

// finish consumes and verifies the footer chunk, trailer, and archive CRC.
func (ar *ArchiveReader) finish() error {
	footOff := ar.pos - 1
	payload, err := ar.readChunk()
	if err != nil {
		return err
	}
	if err := ar.checkFooter(payload); err != nil {
		return err
	}
	trailer := make([]byte, 8)
	if err := ar.readFull(trailer); err != nil {
		return err
	}
	if int64(binary.LittleEndian.Uint64(trailer)) != footOff {
		return fmt.Errorf("%w: footer trailer points at %d, footer is at %d", ErrCorrupt, binary.LittleEndian.Uint64(trailer), footOff)
	}
	sum := make([]byte, 4)
	if _, err := io.ReadFull(ar.br, sum); err != nil {
		return fmt.Errorf("%w: truncated checksum: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(sum) != ar.crc.Sum32() {
		return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if _, err := ar.br.ReadByte(); err != io.EOF {
		return fmt.Errorf("%w: trailing bytes after archive", ErrCorrupt)
	}
	return nil
}

// checkFooter verifies the footer payload against the segments actually read.
func (ar *ArchiveReader) checkFooter(payload []byte) error {
	fr := &sectionReader{buf: payload}
	rows64, err := fr.uvarint()
	if err != nil {
		return err
	}
	n64, err := fr.uvarint()
	if err != nil {
		return err
	}
	if rows64 != uint64(ar.rowsSeen) || n64 != uint64(len(ar.metas)) {
		return fmt.Errorf("%w: footer declares %d rows in %d groups, read %d rows in %d groups",
			ErrCorrupt, rows64, n64, ar.rowsSeen, len(ar.metas))
	}
	for i, m := range ar.metas {
		var vals [7]uint64
		for j := range vals {
			if vals[j], err = fr.uvarint(); err != nil {
				return err
			}
		}
		if vals[0] != uint64(m.start) || vals[1] != uint64(m.count) ||
			vals[2] != uint64(m.off) || vals[3] != uint64(m.segLen) {
			return fmt.Errorf("%w: footer group %d disagrees with segment read", ErrCorrupt, i)
		}
		if vals[4] > uint64(m.segLen) || vals[5] > uint64(m.segLen) || vals[6] > uint64(m.segLen) {
			return fmt.Errorf("%w: footer group %d section sizes exceed segment", ErrCorrupt, i)
		}
	}
	return fr.done()
}

// readByte consumes one byte, feeding the running checksum.
func (ar *ArchiveReader) readByte() (byte, error) {
	b, err := ar.br.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("%w: truncated archive: %v", ErrCorrupt, err)
	}
	ar.crc.Write([]byte{b})
	ar.pos++
	return b, nil
}

// readFull fills b from the stream, feeding the running checksum.
func (ar *ArchiveReader) readFull(b []byte) error {
	if _, err := io.ReadFull(ar.br, b); err != nil {
		return fmt.Errorf("%w: truncated archive: %v", ErrCorrupt, err)
	}
	ar.crcWrite(b)
	return nil
}

// readChunk reads one length-prefixed chunk, feeding the running checksum.
func (ar *ArchiveReader) readChunk() ([]byte, error) {
	l, err := binary.ReadUvarint(readerFunc(ar.readByte))
	if err != nil {
		return nil, fmt.Errorf("%w: truncated chunk length: %v", ErrCorrupt, err)
	}
	if l > maxStreamChunk {
		return nil, fmt.Errorf("%w: chunk of %d bytes", ErrCorrupt, l)
	}
	b := make([]byte, int(l))
	if err := ar.readFull(b); err != nil {
		return nil, err
	}
	return b, nil
}

func (ar *ArchiveReader) crcWrite(b []byte) {
	ar.crc.Write(b)
	ar.pos += int64(len(b))
}

// readerFunc adapts a ReadByte method to io.ByteReader.
type readerFunc func() (byte, error)

func (f readerFunc) ReadByte() (byte, error) { return f() }

// maxArchiveRows is the format's row-count ceiling (2^31-1), shared by the
// in-memory and streaming readers.
const maxArchiveRows = 1<<31 - 1

// decodeGroupTable runs one already-scanned group through unpack → resolve →
// decode → assemble and returns its rows as a table in original order. Used
// by ArchiveReader, which feeds groups one at a time.
func (d *decompressor) decodeGroupTable(g *groupDec) (*dataset.Table, error) {
	var items []func() error
	add := func(_ []byte, fn func() error) { items = append(items, fn) }
	d.unpackGroupItems(g, add)
	if err := d.run.ForEach(len(items), func(i int) error { return items[i]() }); err != nil {
		return nil, err
	}
	d.resolveGroupInit(g)
	var specIdx []int
	for si := range d.lo.specs {
		if d.wantSpec[si] {
			specIdx = append(specIdx, si)
		}
	}
	err := d.run.ForEach(len(specIdx), func(i int) error { return d.resolveSpec(g, specIdx[i]) })
	if err != nil {
		return nil, err
	}
	if d.needModel && g.count > 0 {
		d.decodeGroupInit(g)
		err := d.run.ForEach(d.numExperts, func(e int) error { return d.decodeExpert(g, e) })
		if err != nil {
			return nil, err
		}
	}
	ncols := len(d.plan.Cols)
	outStr := make([][]string, ncols)
	outNum := make([][]float64, ncols)
	for col := range d.plan.Cols {
		if d.plan.Schema.Columns[col].Type == dataset.Categorical {
			outStr[col] = make([]string, g.count)
		} else {
			outNum[col] = make([]float64, g.count)
		}
	}
	if g.count > 0 {
		err = d.run.ForEach(ncols, func(col int) error {
			return d.assembleColumn(g, col, outStr[col], outNum[col], 0)
		})
		if err != nil {
			return nil, err
		}
	}
	out := dataset.NewTable(d.plan.Schema, 0)
	for col := range d.plan.Cols {
		if d.plan.Schema.Columns[col].Type == dataset.Categorical {
			out.Str[col] = outStr[col]
		} else {
			out.Num[col] = outNum[col]
		}
	}
	out.SetNumRows(g.count)
	return out, nil
}
