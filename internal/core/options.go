// Package core implements the DeepSqueeze compression pipeline (paper §3):
// preprocessing, model construction (autoencoder / mixture of experts),
// materialization of the decoder, truncated codes, failures and expert
// mapping into a self-contained archive, and the inverse decompression
// pipeline. The hyperparameter tuner of paper §5.4 lives in tune.go.
package core

import (
	"fmt"

	"deepsqueeze/internal/codec"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/pipeline"
	"deepsqueeze/internal/preprocess"
)

// StageStats is one pipeline stage's wall-clock and byte instrumentation,
// reported in Result.Stages.
type StageStats = pipeline.StageStats

// PartitionMode selects how tuples are split across experts.
type PartitionMode int

const (
	// PartitionMoE uses the learned sparsely-gated mixture of experts
	// (paper §5.2, the default).
	PartitionMoE PartitionMode = iota
	// PartitionKMeans partitions with k-means and trains one autoencoder
	// per cluster — the Fig. 8 comparison baseline.
	PartitionKMeans
)

// Options configures a compression run. The zero value is not usable; start
// from DefaultOptions.
type Options struct {
	// CodeSize is the width of the representation layer (paper §5.1).
	CodeSize int
	// NumExperts is the mixture size (paper §5.2).
	NumExperts int
	// Partition selects MoE or k-means partitioning.
	Partition PartitionMode
	// CodeBits fixes the per-dimension code width in bits; 0 enables the
	// paper's iterative byte-step truncation search (§6.2).
	CodeBits int
	// TrainSampleRows trains on a uniform sample of this many rows
	// (0 = full data). Materialization always covers the full table.
	TrainSampleRows int
	// KeepRowOrder preserves the original tuple order on decompression.
	// When false and multiple experts are in play, tuples may be stored
	// grouped by expert without indexes (paper §6.4's relational-table
	// optimization).
	KeepRowOrder bool
	// SingleLayerLinear builds the Fig. 7 baseline model.
	SingleLayerLinear bool
	// NoQuantization disables numeric quantization (Fig. 7 ablation).
	NoQuantization bool
	// RowGroupSize is the number of rows per archive row group (format v2).
	// Each group is a self-contained segment — codes, failure streams, and
	// expert mapping for its row span — so RowRange decodes skip whole
	// groups and the streaming writer buffers at most one group. 0 selects
	// defaultRowGroupSize.
	RowGroupSize int
	// Float32Decode records flagFloat32 in the archive header: failure
	// streams are computed against float32 decoder inference, and every
	// reader replays the same float32 path. Decode precision is therefore a
	// per-archive contract — a given archive always decodes bit-identically
	// regardless of reader version or parallelism — and the lossy error
	// bound (Threshold×Range) holds at either precision because corrections
	// are stored wherever the chosen-precision prediction misses. Default
	// off: archives stay byte-identical to prior releases.
	Float32Decode bool
	// NoZoneMaps disables the per-row-group zone-map statistics chunk
	// (format v2). Zone maps are on by default: they cost a few bytes per
	// group × column and let Query prune row groups whose min/max bounds or
	// dictionary presence bits cannot match a predicate.
	NoZoneMaps bool
	// Codec selects the per-stream compression codecs the best-of selector
	// may try on integer streams (failure ranks, truncated codes, expert
	// mappings): "auto" (or empty, the default) tries stored, DEFLATE, and
	// both range codecs and keeps the smallest frame per stream; "deflate"
	// reproduces the pre-codec stored/DEFLATE behavior; "stored" disables
	// compression; "range" / "range-adaptive" / "range-cpt" force the learned
	// range codecs (streams always keep the stored fallback). Selection is a
	// pure function of each stream's bytes, so archives stay byte-identical
	// at every parallelism level.
	Codec string
	// Parallelism bounds the pipeline's worker pool: the number of
	// goroutines scheduling independent stage work (truncation-search
	// candidates, per-expert training and encoding, per-column packing,
	// tuning trials). 0 selects runtime.NumCPU(). Archives are byte-for-byte
	// identical at every parallelism level for a fixed seed.
	Parallelism int
	// Preproc tunes preprocessing decisions.
	Preproc preprocess.Options
	// Train tunes the training loop. Train.Workers defaults to Parallelism
	// and Train.Pool to the run's pool, so minibatches shard across the same
	// bounded worker supply as the rest of the pipeline; trained weights are
	// bit-identical at every worker count.
	Train nn.TrainOptions
	// Seed drives all randomness (init, shuffling, sampling).
	Seed int64
	// Verbose, when non-nil, receives progress lines.
	Verbose func(format string, args ...any)
}

// DefaultOptions returns the defaults the paper's experiments imply.
func DefaultOptions() Options {
	return Options{
		CodeSize:     2,
		NumExperts:   1,
		KeepRowOrder: true,
		Preproc:      preprocess.DefaultOptions(),
		Train:        nn.TrainOptions{},
		Seed:         1,
	}
}

func (o *Options) validate() error {
	if o.CodeSize < 1 {
		return fmt.Errorf("core: code size %d", o.CodeSize)
	}
	if o.NumExperts < 1 {
		return fmt.Errorf("core: %d experts", o.NumExperts)
	}
	switch o.CodeBits {
	case 0, 8, 16, 24, 32:
	default:
		return fmt.Errorf("core: code bits %d (want 0, 8, 16, 24, or 32)", o.CodeBits)
	}
	if o.TrainSampleRows < 0 {
		return fmt.Errorf("core: negative sample size")
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("core: negative parallelism")
	}
	if o.RowGroupSize < 0 {
		return fmt.Errorf("core: negative row group size")
	}
	if _, err := codec.ParseMask(o.Codec); err != nil {
		return fmt.Errorf("core: %v", err)
	}
	return nil
}

// codecMask resolves Options.Codec to the codec-selection mask. Invalid
// names were rejected by validate; an unvalidated bad value degrades to the
// Auto default rather than panicking.
func (o *Options) codecMask() codec.Mask {
	m, err := codec.ParseMask(o.Codec)
	if err != nil {
		return codec.Auto
	}
	return m
}

// defaultRowGroupSize is the row-group row count when Options.RowGroupSize
// is zero: large enough that per-group section overhead stays small, small
// enough that one group's streams fit comfortably in memory.
const defaultRowGroupSize = 4096

// rowGroupSize resolves the effective row-group size.
func (o *Options) rowGroupSize() int {
	if o.RowGroupSize > 0 {
		return o.RowGroupSize
	}
	return defaultRowGroupSize
}

func (o *Options) logf(format string, args ...any) {
	if o.Verbose != nil {
		o.Verbose(format, args...)
	}
}

// Breakdown reports the size in bytes of each archive component — the
// stacked bars of the paper's Fig. 6.
type Breakdown struct {
	Total    int64
	Header   int64 // magic, plan, dictionaries, scalers
	Decoder  int64 // serialized expert decoders (DEFLATE-framed)
	Codes    int64 // truncated integerized codes
	Failures int64 // per-column corrections + exceptions + fallback columns
	Mapping  int64 // expert mapping (labels or grouped indexes)
}

// Result is the output of a compression run.
type Result struct {
	Archive   []byte
	Breakdown Breakdown
	// CodeBits is the chosen per-dimension code width.
	CodeBits int
	// TrainHistory is the per-epoch training loss.
	TrainHistory []float64
	// ExpertUse counts tuples per expert.
	ExpertUse []int
	// Stages reports per-stage wall-clock time and output bytes for the
	// compression pipeline, in completion order.
	Stages []StageStats
}

// Ratio returns compressed size / raw size as a fraction.
func (r *Result) Ratio(rawSize int64) float64 {
	if rawSize == 0 {
		return 0
	}
	return float64(r.Breakdown.Total) / float64(rawSize)
}
