package core

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"deepsqueeze/internal/dataset"
)

var updateGolden = flag.Bool("update", false, "regenerate version-2 golden archive fixtures")

// goldenCase is one committed archive fixture: a deterministic table, the
// options it was compressed with, and the fixture's base name under
// testdata/. The committed .dsqz bytes are the format-stability contract:
// decoder changes must keep decoding them to the committed .csv exactly.
// Version-1 fixtures are frozen — the writer no longer emits v1, so they
// can never be regenerated; -update rewrites only the v2 fixtures.
type goldenCase struct {
	name    string
	version byte
	build   func() (*dataset.Table, []float64, Options)
}

func goldenCases() []goldenCase {
	cases := []goldenCase{
		{"categorical", 1, func() (*dataset.Table, []float64, Options) {
			// Pure categorical: model columns with escapes plus a
			// high-cardinality fallback column.
			schema := dataset.NewSchema(
				dataset.Column{Name: "city", Type: dataset.Categorical},
				dataset.Column{Name: "tier", Type: dataset.Categorical},
				dataset.Column{Name: "code", Type: dataset.Categorical},
			)
			tb := dataset.NewTable(schema, 150)
			rng := rand.New(rand.NewSource(101))
			cities := []string{"ankara", "bergen", "cusco", "dakar"}
			for i := 0; i < 150; i++ {
				city := cities[rng.Intn(len(cities))]
				tier := "std"
				if rng.Float64() < 0.05 {
					tier = fmt.Sprintf("rare%d", rng.Intn(9))
				}
				tb.AppendRow([]string{city, tier, fmt.Sprintf("K-%04d", i)}, nil)
			}
			return tb, []float64{0, 0, 0}, goldenOpts(1)
		}},
		{"numerical", 1, func() (*dataset.Table, []float64, Options) {
			// Numeric kinds side by side: quantized lossy, exact value
			// dictionary, and t=0 high-cardinality fallback.
			schema := dataset.NewSchema(
				dataset.Column{Name: "temp", Type: dataset.Numeric},
				dataset.Column{Name: "grade", Type: dataset.Numeric},
				dataset.Column{Name: "reading", Type: dataset.Numeric},
			)
			tb := dataset.NewTable(schema, 150)
			rng := rand.New(rand.NewSource(102))
			for i := 0; i < 150; i++ {
				z := rng.Float64()
				tb.AppendRow(nil, []float64{
					z*40 - 10 + rng.NormFloat64(),
					float64(int(z * 6)),
					rng.NormFloat64() * 1e4,
				})
			}
			opts := goldenOpts(1)
			opts.Preproc.MaxValueDictLen = 16
			return tb, []float64{0.1, 0, 0}, opts
		}},
		{"moe", 1, func() (*dataset.Table, []float64, Options) {
			// Mixed table through a two-expert mixture, exercising the
			// mapping chunk and expert-grouped assembly.
			return latentTable(180, 103), []float64{0, 0, 0.1, 0.1, 0}, goldenOpts(2)
		}},
	}
	// v2 fixtures: the same builders re-compressed under the row-group
	// format, plus a multi-group case pinning segment framing and the
	// footer index. These fixtures predate zone maps and are pinned with
	// NoZoneMaps so -update reproduces their committed bytes; they double
	// as coverage for flag-less v2 archives.
	for _, base := range cases[:3] {
		build := base.build
		cases = append(cases, goldenCase{base.name + "_v2", 2, func() (*dataset.Table, []float64, Options) {
			tb, thresholds, opts := build()
			opts.NoZoneMaps = true
			return tb, thresholds, opts
		}})
	}
	cases = append(cases, goldenCase{"multigroup_v2", 2, func() (*dataset.Table, []float64, Options) {
		opts := goldenOpts(2)
		opts.RowGroupSize = 100
		opts.NoZoneMaps = true
		return latentTable(300, 104), []float64{0, 0, 0.1, 0.1, 0}, opts
	}})
	// stats_v2 pins the zone-map stats chunk: multi-group with default
	// (enabled) zone maps, so the fixture's flag byte, kindStats framing,
	// and per-kind zone payloads are all under the golden contract.
	cases = append(cases, goldenCase{"stats_v2", 2, func() (*dataset.Table, []float64, Options) {
		opts := goldenOpts(2)
		opts.RowGroupSize = 100
		return latentTable(300, 105), []float64{0, 0, 0.1, 0.1, 0}, opts
	}})
	// f32_v2 pins the float32 decode plan: flagFloat32 in the header byte
	// and a failure stream computed against float32 inference. The committed
	// bytes freeze the float32 kernel semantics — any change to the f32
	// matmul accumulation order shows up here as a decode mismatch.
	cases = append(cases, goldenCase{"f32_v2", 2, func() (*dataset.Table, []float64, Options) {
		opts := goldenOpts(2)
		opts.RowGroupSize = 100
		opts.Float32Decode = true
		return latentTable(300, 106), []float64{0, 0, 0.1, 0.1, 0}, opts
	}})
	// entropy_v2 pins the stream-codec layer under default (auto) selection:
	// a heavily skewed categorical fixture whose failure streams the best-of
	// selector range-codes. The committed bytes freeze the range frame format
	// — header layout, CPT table serialization, model increment — so any
	// codec change that re-frames these streams shows up as a byte diff.
	cases = append(cases, goldenCase{"entropy_v2", 2, func() (*dataset.Table, []float64, Options) {
		opts := goldenOpts(1)
		opts.RowGroupSize = 150
		return skewedCatTable(300, 107), []float64{0, 0, 0.05, 0}, opts
	}})
	// resbit_v2 pins the residual-digit path: flagResidual in the header
	// byte, a KindCatResidual plan entry with its dictionary + digit count,
	// and per-digit failure streams in every group. The committed bytes
	// freeze the digit decomposition and the multi-chunk column layout.
	cases = append(cases, goldenCase{"resbit_v2", 2, func() (*dataset.Table, []float64, Options) {
		opts := goldenOpts(1)
		opts.RowGroupSize = 300
		opts.Preproc.ResidualCats = true
		return clickTable(900, 300, 108), []float64{0, 0, 0.05}, opts
	}})
	return cases
}

func goldenOpts(experts int) Options {
	o := DefaultOptions()
	o.CodeSize = 2
	o.NumExperts = experts
	o.Train.Epochs = 4
	o.Train.BatchSize = 64
	o.Seed = 7
	return o
}

// TestGoldenArchives is the format-stability gate: every committed .dsqz
// fixture must still parse under its recorded version and decode
// byte-for-byte to its committed .csv — v1 fixtures prove the v2 reader
// keeps decoding legacy archives identically. Run with -update to
// regenerate the v2 fixtures after a deliberate, versioned format change;
// v1 fixtures are frozen and never rewritten.
func TestGoldenArchives(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			arcPath := filepath.Join("testdata", gc.name+".dsqz")
			csvPath := filepath.Join("testdata", gc.name+".csv")
			if *updateGolden && gc.version >= 2 {
				tb, thresholds, opts := gc.build()
				res, err := Compress(tb, thresholds, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Decompress(res.Archive)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := got.WriteCSV(&buf); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(arcPath, res.Archive, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(csvPath, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes) and %s", arcPath, len(res.Archive), csvPath)
			}
			archive, err := os.ReadFile(arcPath)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			wantCSV, err := os.ReadFile(csvPath)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if len(archive) < 6 || string(archive[:4]) != "DSQZ" || archive[4] != gc.version {
				t.Fatalf("fixture is not a version-%d archive (header % x)", gc.version, archive[:6])
			}
			got, err := Decompress(archive)
			if err != nil {
				t.Fatalf("golden archive no longer decodes: %v", err)
			}
			var buf bytes.Buffer
			if err := got.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), wantCSV) {
				t.Fatalf("golden archive %s decoded differently than when committed", gc.name)
			}
			// The projected decode of the first column must agree with the
			// committed full decode, pinning projection semantics too.
			name := got.Schema.Columns[0].Name
			proj := decodeOpts(t, archive, DecompressOptions{Columns: []string{name}})
			if err := columnEqual(got, proj, 0, 0, 0); err != nil {
				t.Fatalf("projection drifted from golden decode: %v", err)
			}
			// Every fixture must stay indexable: ReadIndex is the query
			// planner's entry point and spans both format versions.
			idx, err := ReadIndex(archive)
			if err != nil {
				t.Fatalf("golden archive no longer indexes: %v", err)
			}
			if idx.Rows != got.NumRows() {
				t.Fatalf("index declares %d rows, table has %d", idx.Rows, got.NumRows())
			}
			if wantStats := gc.name == "stats_v2" || gc.name == "f32_v2" ||
				gc.name == "entropy_v2" || gc.name == "resbit_v2"; idx.HasZoneMaps != wantStats {
				t.Fatalf("HasZoneMaps = %v, want %v", idx.HasZoneMaps, wantStats)
			}
			if idx.HasZoneMaps {
				usable := 0
				for _, g := range idx.Groups {
					for _, z := range g.Zones {
						if z.Kind != ZoneNone {
							usable++
						}
					}
				}
				if usable == 0 {
					t.Fatal("stats fixture carries no usable zone maps")
				}
			}
			if gc.name == "entropy_v2" {
				// This fixture exists to pin the range frame format; if the
				// best-of selector stops choosing the range codecs here, the
				// golden silently stops covering them.
				stats, err := InspectStreams(archive)
				if err != nil {
					t.Fatal(err)
				}
				rangeFrames := 0
				for _, st := range stats {
					rangeFrames += st.Codecs["range-adaptive"] + st.Codecs["range-cpt"]
				}
				if rangeFrames == 0 {
					t.Fatal("entropy fixture carries no range-coded frames")
				}
			}
			if gc.name == "resbit_v2" {
				// This fixture exists to pin the residual-digit layout; if
				// the fit rule stops choosing residual here, the golden
				// silently stops covering the multi-chunk decode path.
				info, err := Inspect(archive)
				if err != nil {
					t.Fatal(err)
				}
				if info.KindCensus["residual"] == 0 {
					t.Fatal("resbit fixture carries no residual column")
				}
			}
			if gc.version >= 2 {
				// The footer index must cover the rows contiguously, and a
				// row-range decode must agree with the committed full decode.
				info, err := Inspect(archive)
				if err != nil {
					t.Fatal(err)
				}
				if info.HasZoneMaps != idx.HasZoneMaps {
					t.Fatalf("Inspect.HasZoneMaps = %v, index says %v", info.HasZoneMaps, idx.HasZoneMaps)
				}
				next := 0
				for _, g := range info.Groups {
					if g.RowStart != next {
						t.Fatalf("group starts at %d, want %d", g.RowStart, next)
					}
					next += g.RowCount
				}
				if next != got.NumRows() {
					t.Fatalf("groups cover %d rows, table has %d", next, got.NumRows())
				}
				lo, hi := got.NumRows()/3, 2*got.NumRows()/3
				rng := decodeOpts(t, archive, DecompressOptions{RowRange: RowRange{Lo: lo, Hi: hi}})
				for col := range got.Schema.Columns {
					if err := columnEqual(got, rng, col, col, lo); err != nil {
						t.Fatalf("row range drifted from golden decode: %v", err)
					}
				}
			}
		})
	}
}
