package core

import (
	"encoding/binary"
	"fmt"

	"deepsqueeze/internal/preprocess"
)

// archiveHeader is the decoded header chunk, shared by both format versions.
// Version 1 stores the row count in the header; version 2 moves it to the
// footer (a streaming writer does not know the total up front) and adds the
// nominal row-group size instead.
type archiveHeader struct {
	rows         int // version 1 only; -1 for version 2
	plan         *preprocess.Plan
	codeSize     int
	codeBits     int
	numExperts   int
	rowGroupSize int // version 2 only; 0 for version 1
}

// appendHeaderPayload serializes the version-2 header chunk payload.
func appendHeaderPayload(dst []byte, plan *preprocess.Plan, codeSize, codeBits, experts, rowGroupSize int) []byte {
	dst = plan.AppendBinary(dst)
	dst = binary.AppendUvarint(dst, uint64(codeSize))
	dst = binary.AppendUvarint(dst, uint64(codeBits))
	dst = binary.AppendUvarint(dst, uint64(experts))
	dst = binary.AppendUvarint(dst, uint64(rowGroupSize))
	return dst
}

// decodeHeader parses the header chunk payload for the given format version.
func decodeHeader(hdr []byte, version byte) (*archiveHeader, error) {
	h := &archiveHeader{rows: -1}
	pos := 0
	if version == archiveVersionV1 {
		rows64, sz := binary.Uvarint(hdr)
		if sz <= 0 {
			return nil, fmt.Errorf("%w: missing row count", ErrCorrupt)
		}
		if rows64 > uint64(1)<<31-1 {
			return nil, fmt.Errorf("%w: %d rows exceeds the format limit", ErrCorrupt, rows64)
		}
		h.rows = int(rows64)
		pos = sz
	}
	plan, used, err := preprocess.DecodePlan(hdr[pos:])
	if err != nil {
		return nil, corrupt(err)
	}
	h.plan = plan
	pos += used
	nvals := 3 // code size, code bits, experts
	if version != archiveVersionV1 {
		nvals = 4 // + row group size
	}
	vals := make([]uint64, nvals)
	for i := range vals {
		v, sz := binary.Uvarint(hdr[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		vals[i] = v
		pos += sz
	}
	if pos != len(hdr) {
		return nil, fmt.Errorf("%w: trailing header bytes", ErrCorrupt)
	}
	h.codeSize, h.codeBits, h.numExperts = int(vals[0]), int(vals[1]), int(vals[2])
	if version != archiveVersionV1 {
		h.rowGroupSize = int(vals[3])
	}
	return h, nil
}
