package core

import (
	"context"
	"math/rand"
	"testing"

	"deepsqueeze/internal/dataset"
)

// blocksTestArchive compresses a small multi-group table; float32 selects the
// Float32Decode plan flag so both decode-precision contracts are covered.
func blocksTestArchive(t *testing.T, float32Plan bool) ([]byte, *dataset.Table) {
	t.Helper()
	schema := dataset.NewSchema(
		dataset.Column{Name: "tag", Type: dataset.Categorical},
		dataset.Column{Name: "seq", Type: dataset.Numeric},
		dataset.Column{Name: "noise", Type: dataset.Numeric},
	)
	rows := 512
	tb := dataset.NewTable(schema, rows)
	rng := rand.New(rand.NewSource(7))
	tags := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < rows; i++ {
		tb.AppendRow([]string{tags[rng.Intn(len(tags))]},
			[]float64{float64(i), rng.Float64() * 100})
	}
	opts := DefaultOptions()
	opts.Seed = 7
	opts.CodeSize = 2
	opts.Train.Epochs = 2
	opts.TrainSampleRows = 256
	opts.RowGroupSize = 64
	opts.Float32Decode = float32Plan
	res, err := Compress(tb, []float64{0, 0.001, 0.01}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Archive, tb
}

// TestDecodeBlocksMatchesFullDecode checks every (group, column) block equals
// the corresponding span of a full decompression, for both precision plans
// and several group/column subsets.
func TestDecodeBlocksMatchesFullDecode(t *testing.T) {
	for _, f32 := range []bool{false, true} {
		archive, _ := blocksTestArchive(t, f32)
		a, err := Open(archive)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Decompress(archive)
		if err != nil {
			t.Fatal(err)
		}
		ngroups := a.NumGroups()
		if ngroups != 8 {
			t.Fatalf("f32=%v: %d groups, want 8", f32, ngroups)
		}
		starts := make([]int, ngroups+1)
		for g := 0; g < ngroups; g++ {
			starts[g+1] = starts[g] + a.GroupRows(g)
		}
		cases := []struct {
			groups, cols []int
		}{
			{[]int{0}, []int{0}},
			{[]int{0, 1, 2, 3, 4, 5, 6, 7}, []int{0, 1, 2}},
			{[]int{2, 5}, []int{1}},
			{[]int{7}, []int{0, 2}},
		}
		for _, tc := range cases {
			blocks, err := a.DecodeBlocks(context.Background(), tc.groups, tc.cols, nil)
			if err != nil {
				t.Fatalf("f32=%v DecodeBlocks(%v,%v): %v", f32, tc.groups, tc.cols, err)
			}
			for gi, g := range tc.groups {
				for ci, c := range tc.cols {
					b := blocks[gi][ci]
					if b.Len() != a.GroupRows(g) {
						t.Fatalf("f32=%v group %d col %d: %d rows, want %d", f32, g, c, b.Len(), a.GroupRows(g))
					}
					if b.Bytes() <= 0 {
						t.Fatalf("f32=%v group %d col %d: non-positive byte accounting", f32, g, c)
					}
					for i := 0; i < b.Len(); i++ {
						r := starts[g] + i
						if b.Str != nil {
							if b.Str[i] != full.Str[c][r] {
								t.Fatalf("f32=%v group %d col %d row %d: %q != %q", f32, g, c, i, b.Str[i], full.Str[c][r])
							}
						} else if b.Num[i] != full.Num[c][r] {
							t.Fatalf("f32=%v group %d col %d row %d: %v != %v", f32, g, c, i, b.Num[i], full.Num[c][r])
						}
					}
				}
			}
		}
	}
}

// TestDecodeBlocksValidation checks the ascending/bounds contract errors.
func TestDecodeBlocksValidation(t *testing.T) {
	archive, _ := blocksTestArchive(t, false)
	a, err := Open(archive)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, tc := range []struct {
		name         string
		groups, cols []int
	}{
		{"no groups", nil, []int{0}},
		{"no cols", []int{0}, nil},
		{"group out of range", []int{99}, []int{0}},
		{"groups descending", []int{3, 1}, []int{0}},
		{"col out of range", []int{0}, []int{9}},
		{"cols duplicate", []int{0}, []int{1, 1}},
	} {
		if _, err := a.DecodeBlocks(ctx, tc.groups, tc.cols, nil); err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
	}
}

// TestSortedUnique pins the helper's sort-and-dedup contract.
func TestSortedUnique(t *testing.T) {
	got := SortedUnique([]int{3, 1, 3, 0, 1})
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
