package core

import "testing"

func TestInspect(t *testing.T) {
	tb := latentTable(400, 31)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	opts := quickOpts()
	opts.NumExperts = 2
	res, err := Compress(tb, thr, opts)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 400 || info.NumExperts != 2 || info.CodeSize != opts.CodeSize {
		t.Fatalf("info = %+v", info)
	}
	if info.CodeBits != res.CodeBits {
		t.Fatalf("CodeBits %d != %d", info.CodeBits, res.CodeBits)
	}
	if !info.Schema.Equal(tb.Schema) {
		t.Fatal("schema mismatch")
	}
	if info.Streaming || !info.RowOrderPreserved {
		t.Fatalf("flags wrong: %+v", info)
	}
	if len(info.ColumnKind) != 5 || info.ColumnKind[1] != "binary" {
		t.Fatalf("column kinds = %v", info.ColumnKind)
	}
	if info.TotalBytes != len(res.Archive) {
		t.Fatal("size mismatch")
	}
	// Streaming batch archives report Streaming.
	s, _, err := NewStream(tb, thr, opts)
	if err != nil {
		t.Fatal(err)
	}
	batch := latentTable(100, 32)
	bres, err := s.CompressBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	binfo, err := Inspect(bres.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if !binfo.Streaming || binfo.Rows != 100 {
		t.Fatalf("batch info = %+v", binfo)
	}
	// Corruption is rejected.
	bad := append([]byte{}, res.Archive...)
	bad[10] ^= 0xFF
	if _, err := Inspect(bad); err == nil {
		t.Fatal("corrupt archive inspected without error")
	}
}
