package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// ErrCorrupt is returned when an archive fails validation.
var ErrCorrupt = errors.New("core: corrupt archive")

var magic = [4]byte{'D', 'S', 'Q', 'Z'}

// Archive format versions. Version 2 stores tuples in self-contained row-group
// segments with a trailing footer index; version 1 (single implicit group,
// global sections) is still fully readable for old archives and the golden
// fixtures.
const (
	archiveVersion   = 2
	archiveVersionV1 = 1
)

// Top-level chunk kinds in a version-2 body, written as a single byte before
// the chunk so a sequential reader can tell segments from the footer without
// knowing the group count up front.
const (
	kindSegment byte = 1
	kindFooter  byte = 2
	// kindStats frames the optional zone-map statistics chunk, written
	// between the last segment and the footer (flagZoneMaps gates it, so
	// readers of flag-less archives never see the kind).
	kindStats byte = 3
)

// Archive flags.
const (
	flagGrouped       byte = 1 << 0 // tuples stored grouped by expert
	flagHasModel      byte = 1 << 1 // decoders/codes sections present
	flagRowOrder      byte = 1 << 2 // original row order recoverable
	flagExternalModel byte = 1 << 3 // decoders live in a separate model archive
	flagZoneMaps      byte = 1 << 4 // per-group zone-map stats chunk present
	flagFloat32       byte = 1 << 5 // failure streams computed against float32 inference
	flagResidual      byte = 1 << 6 // plan routes high-cardinality categoricals as residual digits
)

// sectionWriter accumulates length-prefixed sections and tracks per-section
// sizes for the Fig. 6 breakdown.
type sectionWriter struct {
	buf bytes.Buffer
}

func (w *sectionWriter) raw(b []byte) { w.buf.Write(b) }

func (w *sectionWriter) chunk(b []byte) int64 {
	var lp []byte
	lp = binary.AppendUvarint(lp, uint64(len(b)))
	w.buf.Write(lp)
	w.buf.Write(b)
	return int64(len(lp) + len(b))
}

func (w *sectionWriter) uvarint(v uint64) int64 {
	var lp []byte
	lp = binary.AppendUvarint(lp, v)
	w.buf.Write(lp)
	return int64(len(lp))
}

func (w *sectionWriter) finish() []byte {
	sum := crc32.ChecksumIEEE(w.buf.Bytes())
	var f [4]byte
	binary.LittleEndian.PutUint32(f[:], sum)
	w.buf.Write(f[:])
	return w.buf.Bytes()
}

// sectionReader parses the same layout with bounds checking.
type sectionReader struct {
	buf []byte
	pos int
}

// newSectionReader validates magic, version, and checksum, returning a
// reader positioned after the version byte, plus the version and flag bytes.
// Versions 1 and 2 are accepted; the reader's buf excludes the CRC trailer.
func newSectionReader(buf []byte) (*sectionReader, byte, byte, error) {
	if len(buf) < 10 || !bytes.Equal(buf[:4], magic[:]) {
		return nil, 0, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if buf[4] != archiveVersionV1 && buf[4] != archiveVersion {
		return nil, 0, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, buf[4])
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, 0, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return &sectionReader{buf: body, pos: 6}, buf[4], buf[5], nil
}

func (r *sectionReader) uvarint() (uint64, error) {
	v, sz := binary.Uvarint(r.buf[r.pos:])
	if sz <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
	}
	r.pos += sz
	return v, nil
}

// byte consumes one raw byte (the kind tag before a v2 top-level chunk).
func (r *sectionReader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, fmt.Errorf("%w: truncated chunk kind", ErrCorrupt)
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *sectionReader) chunk() ([]byte, error) {
	l, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.buf)-r.pos) < l {
		return nil, fmt.Errorf("%w: chunk overruns archive", ErrCorrupt)
	}
	out := r.buf[r.pos : r.pos+int(l)]
	r.pos += int(l)
	return out, nil
}

// skip advances past the next chunk without retaining it, returning the
// chunk's payload length. Projection uses it to walk over sections whose
// contents the caller does not need.
func (r *sectionReader) skip() (int64, error) {
	l, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if uint64(len(r.buf)-r.pos) < l {
		return 0, fmt.Errorf("%w: chunk overruns archive", ErrCorrupt)
	}
	r.pos += int(l)
	return int64(l), nil
}

func (r *sectionReader) done() error {
	if r.pos != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.pos)
	}
	return nil
}

// rowSpan is one row group's half-open original-row interval
// [start, start+count).
type rowSpan struct {
	start, count int
}

// rowGroupSpans partitions [0, rows) into fixed-size spans of groupSize rows
// (the last span may be shorter). An empty table still gets one empty span so
// every archive has at least one segment.
func rowGroupSpans(rows, groupSize int) []rowSpan {
	if rows <= 0 {
		return []rowSpan{{0, 0}}
	}
	spans := make([]rowSpan, 0, (rows+groupSize-1)/groupSize)
	for start := 0; start < rows; start += groupSize {
		count := groupSize
		if start+count > rows {
			count = rows - start
		}
		spans = append(spans, rowSpan{start, count})
	}
	return spans
}

// groupMeta is one footer-index entry: a row group's span, its segment's
// location in the archive, and the per-section byte sizes inside the segment
// (for Inspect and the Fig. 6 breakdown).
type groupMeta struct {
	start, count int
	off, segLen  int64 // kind byte offset and framed length (kind + chunk)
	codes        int64
	mapping      int64
	failures     int64
}

// appendSegmentCRC frames a segment body with its own CRC32-IEEE trailer so a
// sequential streaming reader can validate each group before the archive's
// outer checksum arrives.
func appendSegmentCRC(body []byte) []byte {
	var f [4]byte
	binary.LittleEndian.PutUint32(f[:], crc32.ChecksumIEEE(body))
	return append(body, f[:]...)
}

// segmentBody validates a framed segment's trailing CRC and returns the body.
func segmentBody(seg []byte) ([]byte, error) {
	if len(seg) < 4 {
		return nil, fmt.Errorf("%w: segment too short", ErrCorrupt)
	}
	body, tail := seg[:len(seg)-4], seg[len(seg)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: segment checksum mismatch", ErrCorrupt)
	}
	return body, nil
}

// archiveFooter is the parsed v2 footer index.
type archiveFooter struct {
	rows   int
	groups []groupMeta
}

// appendFooterPayload serializes the footer chunk payload: total rows, group
// count, and one groupMeta per group.
func appendFooterPayload(dst []byte, rows int, groups []groupMeta) []byte {
	dst = binary.AppendUvarint(dst, uint64(rows))
	dst = binary.AppendUvarint(dst, uint64(len(groups)))
	for _, g := range groups {
		dst = binary.AppendUvarint(dst, uint64(g.start))
		dst = binary.AppendUvarint(dst, uint64(g.count))
		dst = binary.AppendUvarint(dst, uint64(g.off))
		dst = binary.AppendUvarint(dst, uint64(g.segLen))
		dst = binary.AppendUvarint(dst, uint64(g.codes))
		dst = binary.AppendUvarint(dst, uint64(g.mapping))
		dst = binary.AppendUvarint(dst, uint64(g.failures))
	}
	return dst
}

// parseFooter locates and validates the v2 footer in a CRC-stripped body:
// the trailing 8 bytes give the offset of the footer's kind byte; the footer
// chunk must end exactly where the trailer begins, group spans must partition
// [0, rows) in order, and segment extents must be ascending, non-overlapping,
// and inside (minOff, footOff]. Returns the footer and the kind-byte offset.
func parseFooter(body []byte, minOff int) (*archiveFooter, int64, error) {
	if len(body) < minOff+1+8 {
		return nil, 0, fmt.Errorf("%w: no room for footer", ErrCorrupt)
	}
	footOff64 := binary.LittleEndian.Uint64(body[len(body)-8:])
	if footOff64 < uint64(minOff) || footOff64 > uint64(len(body)-9) {
		return nil, 0, fmt.Errorf("%w: footer offset %d outside body", ErrCorrupt, footOff64)
	}
	footOff := int(footOff64)
	if body[footOff] != kindFooter {
		return nil, 0, fmt.Errorf("%w: footer kind byte %d", ErrCorrupt, body[footOff])
	}
	r := &sectionReader{buf: body[:len(body)-8], pos: footOff + 1}
	payload, err := r.chunk()
	if err != nil {
		return nil, 0, err
	}
	if r.pos != len(r.buf) {
		return nil, 0, fmt.Errorf("%w: %d bytes between footer and trailer", ErrCorrupt, len(r.buf)-r.pos)
	}
	fr := &sectionReader{buf: payload}
	rows64, err := fr.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if rows64 > math.MaxInt32 {
		return nil, 0, fmt.Errorf("%w: %d rows exceeds the format limit", ErrCorrupt, rows64)
	}
	n64, err := fr.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if n64 < 1 || n64 > uint64(len(payload)) {
		return nil, 0, fmt.Errorf("%w: %d row groups", ErrCorrupt, n64)
	}
	ft := &archiveFooter{rows: int(rows64), groups: make([]groupMeta, int(n64))}
	nextStart := 0
	prevEnd := int64(minOff)
	for i := range ft.groups {
		var vals [7]uint64
		for j := range vals {
			v, err := fr.uvarint()
			if err != nil {
				return nil, 0, err
			}
			vals[j] = v
		}
		g := &ft.groups[i]
		if vals[0] != uint64(nextStart) {
			return nil, 0, fmt.Errorf("%w: group %d starts at %d, want %d", ErrCorrupt, i, vals[0], nextStart)
		}
		if vals[1] > rows64-uint64(nextStart) {
			return nil, 0, fmt.Errorf("%w: group %d spans past %d rows", ErrCorrupt, i, rows64)
		}
		g.start, g.count = nextStart, int(vals[1])
		nextStart += g.count
		if vals[2] > uint64(footOff) || vals[3] > uint64(footOff) {
			return nil, 0, fmt.Errorf("%w: group %d segment outside body", ErrCorrupt, i)
		}
		g.off, g.segLen = int64(vals[2]), int64(vals[3])
		if g.off < prevEnd || g.segLen < 2 || g.off+g.segLen > int64(footOff) {
			return nil, 0, fmt.Errorf("%w: group %d segment extent [%d,%d)", ErrCorrupt, i, g.off, g.off+g.segLen)
		}
		prevEnd = g.off + g.segLen
		if vals[4] > uint64(g.segLen) || vals[5] > uint64(g.segLen) || vals[6] > uint64(g.segLen) {
			return nil, 0, fmt.Errorf("%w: group %d section sizes exceed segment", ErrCorrupt, i)
		}
		g.codes, g.mapping, g.failures = int64(vals[4]), int64(vals[5]), int64(vals[6])
	}
	if nextStart != ft.rows {
		return nil, 0, fmt.Errorf("%w: groups cover %d of %d rows", ErrCorrupt, nextStart, ft.rows)
	}
	if err := fr.done(); err != nil {
		return nil, 0, err
	}
	return ft, int64(footOff), nil
}
