package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrCorrupt is returned when an archive fails validation.
var ErrCorrupt = errors.New("core: corrupt archive")

var magic = [4]byte{'D', 'S', 'Q', 'Z'}

const archiveVersion = 1

// Archive flags.
const (
	flagGrouped       byte = 1 << 0 // tuples stored grouped by expert
	flagHasModel      byte = 1 << 1 // decoders/codes sections present
	flagRowOrder      byte = 1 << 2 // original row order recoverable
	flagExternalModel byte = 1 << 3 // decoders live in a separate model archive
)

// sectionWriter accumulates length-prefixed sections and tracks per-section
// sizes for the Fig. 6 breakdown.
type sectionWriter struct {
	buf bytes.Buffer
}

func (w *sectionWriter) raw(b []byte) { w.buf.Write(b) }

func (w *sectionWriter) chunk(b []byte) int64 {
	var lp []byte
	lp = binary.AppendUvarint(lp, uint64(len(b)))
	w.buf.Write(lp)
	w.buf.Write(b)
	return int64(len(lp) + len(b))
}

func (w *sectionWriter) uvarint(v uint64) int64 {
	var lp []byte
	lp = binary.AppendUvarint(lp, v)
	w.buf.Write(lp)
	return int64(len(lp))
}

func (w *sectionWriter) finish() []byte {
	sum := crc32.ChecksumIEEE(w.buf.Bytes())
	var f [4]byte
	binary.LittleEndian.PutUint32(f[:], sum)
	w.buf.Write(f[:])
	return w.buf.Bytes()
}

// sectionReader parses the same layout with bounds checking.
type sectionReader struct {
	buf []byte
	pos int
}

// newSectionReader validates magic, version, and checksum, returning a
// reader positioned after the version byte, plus the flag byte.
func newSectionReader(buf []byte) (*sectionReader, byte, error) {
	if len(buf) < 10 || !bytes.Equal(buf[:4], magic[:]) {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if buf[4] != archiveVersion {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, buf[4])
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return &sectionReader{buf: body, pos: 6}, buf[5], nil
}

func (r *sectionReader) uvarint() (uint64, error) {
	v, sz := binary.Uvarint(r.buf[r.pos:])
	if sz <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
	}
	r.pos += sz
	return v, nil
}

func (r *sectionReader) chunk() ([]byte, error) {
	l, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.buf)-r.pos) < l {
		return nil, fmt.Errorf("%w: chunk overruns archive", ErrCorrupt)
	}
	out := r.buf[r.pos : r.pos+int(l)]
	r.pos += int(l)
	return out, nil
}

// skip advances past the next chunk without retaining it, returning the
// chunk's payload length. Projection uses it to walk over sections whose
// contents the caller does not need.
func (r *sectionReader) skip() (int64, error) {
	l, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if uint64(len(r.buf)-r.pos) < l {
		return 0, fmt.Errorf("%w: chunk overruns archive", ErrCorrupt)
	}
	r.pos += int(l)
	return int64(l), nil
}

func (r *sectionReader) done() error {
	if r.pos != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.pos)
	}
	return nil
}
