package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"deepsqueeze/internal/dataset"
)

// genRandomTable derives a random schema, table, thresholds, and options
// from a seed — the shared generator for the quick properties below.
func genRandomTable(seed int64) (*dataset.Table, []float64, Options) {
	rng := rand.New(rand.NewSource(seed))
	nCols := 1 + rng.Intn(6)
	cols := make([]dataset.Column, nCols)
	for i := range cols {
		cols[i].Name = fmt.Sprintf("c%d", i)
		if rng.Intn(2) == 0 {
			cols[i].Type = dataset.Categorical
		} else {
			cols[i].Type = dataset.Numeric
		}
	}
	schema := dataset.NewSchema(cols...)
	rows := 20 + rng.Intn(200)
	tb := dataset.NewTable(schema, rows)
	thresholds := make([]float64, nCols)
	for i, c := range cols {
		if c.Type == dataset.Numeric && rng.Intn(2) == 0 {
			thresholds[i] = []float64{0.005, 0.05, 0.1, 0.25}[rng.Intn(4)]
		}
	}
	strs := make([]string, 0, nCols)
	nums := make([]float64, 0, nCols)
	for r := 0; r < rows; r++ {
		strs, nums = strs[:0], nums[:0]
		for _, c := range cols {
			if c.Type == dataset.Categorical {
				switch rng.Intn(3) {
				case 0: // low cardinality
					strs = append(strs, fmt.Sprintf("v%d", rng.Intn(3)))
				case 1: // skewed
					if rng.Float64() < 0.9 {
						strs = append(strs, "hot")
					} else {
						strs = append(strs, fmt.Sprintf("cold%d", rng.Intn(50)))
					}
				default: // near unique
					strs = append(strs, fmt.Sprintf("u%d-%d", r, rng.Intn(10)))
				}
			} else {
				switch rng.Intn(3) {
				case 0:
					nums = append(nums, float64(rng.Intn(5)))
				case 1:
					nums = append(nums, rng.NormFloat64()*1000)
				default:
					nums = append(nums, rng.Float64())
				}
			}
		}
		tb.AppendRow(strs, nums)
	}
	opts := DefaultOptions()
	opts.CodeSize = 1 + rng.Intn(3)
	opts.NumExperts = 1 + rng.Intn(3)
	opts.Train.Epochs = 3
	opts.Seed = seed
	return tb, thresholds, opts
}

// TestQuickRandomSchemaRoundTrip is the end-to-end property test: random
// schemas, random data, random thresholds — compression must round-trip
// with categorical exactness and numeric values inside their bounds.
func TestQuickRandomSchemaRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tb, thresholds, opts := genRandomTable(seed)
		cols := tb.Schema.Columns
		nCols := len(cols)
		res, err := Compress(tb, thresholds, opts)
		if err != nil {
			t.Logf("seed %d: compress: %v", seed, err)
			return false
		}
		got, err := Decompress(res.Archive)
		if err != nil {
			t.Logf("seed %d: decompress: %v", seed, err)
			return false
		}
		stats := tb.Stats()
		tol := make([]float64, nCols)
		for i := range tol {
			if cols[i].Type == dataset.Numeric {
				tol[i] = thresholds[i] * (stats[i].Max - stats[i].Min) * (1 + 1e-9)
			}
		}
		if err := tb.EqualWithin(got, tol); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickProjectionMatchesFull is the projection property: for random
// tables, DecompressContext with a random column subset must equal the
// column subset of the full decompression byte-for-byte, at parallelism 1,
// 4, and NumCPU.
func TestQuickProjectionMatchesFull(t *testing.T) {
	f := func(seed int64) bool {
		tb, thresholds, opts := genRandomTable(seed)
		res, err := Compress(tb, thresholds, opts)
		if err != nil {
			t.Logf("seed %d: compress: %v", seed, err)
			return false
		}
		full, err := Decompress(res.Archive)
		if err != nil {
			t.Logf("seed %d: decompress: %v", seed, err)
			return false
		}
		// Random non-empty column subset, in archive order.
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		var names []string
		var fullIdx []int
		for col, c := range tb.Schema.Columns {
			if rng.Intn(2) == 0 {
				names = append(names, c.Name)
				fullIdx = append(fullIdx, col)
			}
		}
		if names == nil {
			names = []string{tb.Schema.Columns[0].Name}
			fullIdx = []int{0}
		}
		for _, p := range []int{1, 4, runtime.NumCPU()} {
			pres, err := DecompressContext(context.Background(), res.Archive,
				DecompressOptions{Columns: names, Parallelism: p})
			if err != nil {
				t.Logf("seed %d p=%d: projection: %v", seed, p, err)
				return false
			}
			got := pres.Table
			if got.NumRows() != full.NumRows() || got.Schema.NumColumns() != len(names) {
				t.Logf("seed %d p=%d: got %d rows × %d cols", seed, p, got.NumRows(), got.Schema.NumColumns())
				return false
			}
			for gi, col := range fullIdx {
				for r := 0; r < full.NumRows(); r++ {
					if tb.Schema.Columns[col].Type == dataset.Categorical {
						if got.Str[gi][r] != full.Str[col][r] {
							t.Logf("seed %d p=%d: col %q row %d: %q != %q",
								seed, p, names[gi], r, got.Str[gi][r], full.Str[col][r])
							return false
						}
					} else if got.Num[gi][r] != full.Num[col][r] {
						// Byte-for-byte: projection must reproduce the exact
						// float the full decode produced, not merely one
						// within the error bound.
						t.Logf("seed %d p=%d: col %q row %d: %v != %v",
							seed, p, names[gi], r, got.Num[gi][r], full.Num[col][r])
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestArchiveBitFlipFuzz flips bytes all over a valid archive and requires
// that decompression either fails cleanly or (never) returns wrong data
// silently — the CRC must catch every flip.
func TestArchiveBitFlipFuzz(t *testing.T) {
	tb := latentTable(200, 21)
	res, err := Compress(tb, []float64{0, 0, 0.1, 0.1, 0}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 60; i++ {
		bad := append([]byte{}, res.Archive...)
		pos := rng.Intn(len(bad))
		bad[pos] ^= byte(1 + rng.Intn(255))
		if _, err := Decompress(bad); err == nil {
			t.Fatalf("flip at byte %d went undetected", pos)
		}
	}
}

// TestErrorBoundTightness documents that quantization uses its full error
// budget: with a 10% threshold the worst-case observed error should exceed
// 5% of the range (otherwise we are wasting buckets).
func TestErrorBoundTightness(t *testing.T) {
	tb := latentTable(2000, 23)
	thr := []float64{0, 0, 0.1, 0.1, 0}
	res, err := Compress(tb, thr, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	stats := tb.Stats()
	for _, c := range []int{2, 3} {
		rangeC := stats[c].Max - stats[c].Min
		var worst float64
		for r := 0; r < tb.NumRows(); r++ {
			if d := math.Abs(got.Num[c][r] - tb.Num[c][r]); d > worst {
				worst = d
			}
		}
		if worst > 0.1*rangeC*(1+1e-9) {
			t.Fatalf("column %d worst error %v exceeds bound %v", c, worst, 0.1*rangeC)
		}
		if worst < 0.05*rangeC {
			t.Errorf("column %d worst error %v uses less than half the 10%% budget — quantization too fine", c, worst)
		}
	}
}
