package core

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"deepsqueeze/internal/datagen"
)

// TestCalibrate4Census is a manual calibration harness: it sweeps training
// configurations on the census stand-in and logs ratios. Run with
// DS_CALIBRATE=1; skipped otherwise (it takes minutes on one core).
func TestCalibrate4Census(t *testing.T) {
	if os.Getenv("DS_CALIBRATE") == "" {
		t.Skip("set DS_CALIBRATE=1 to run the calibration sweep")
	}
	g, _ := datagen.ByName("census")
	tb := g.Gen(rand.New(rand.NewSource(1)), g.DefaultRows)
	raw := tb.CSVSize()
	thr := datagen.Thresholds(tb, 0)
	for _, cfg := range []struct {
		code, experts, epochs, sample int
		lr                            float64
	}{
		{4, 1, 20, 5000, 0},
		{4, 1, 40, 10000, 0},
		{4, 1, 40, 10000, 0.003},
	} {
		opts := DefaultOptions()
		opts.CodeSize = cfg.code
		opts.NumExperts = cfg.experts
		opts.TrainSampleRows = cfg.sample
		opts.Train.Epochs = cfg.epochs
		opts.Train.LR = cfg.lr
		var hist []float64
		start := time.Now()
		res, err := Compress(tb, thr, opts)
		if err != nil {
			t.Fatal(err)
		}
		hist = res.TrainHistory
		first, last := hist[0], hist[len(hist)-1]
		t.Logf("code=%d ep=%d samp=%d lr=%v: %.2f%% (fail %.2f) loss %.3f→%.3f (%d epochs) in %v",
			cfg.code, cfg.epochs, cfg.sample, cfg.lr,
			100*res.Ratio(raw), 100*float64(res.Breakdown.Failures)/float64(raw),
			first, last, len(hist), time.Since(start))
	}
}
