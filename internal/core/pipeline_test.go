package core

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"deepsqueeze/internal/dataset"
)

// TestParallelismDeterminism is the tentpole's central guarantee: for a
// fixed seed, archives are byte-for-byte identical at every parallelism
// level, across both partitioning modes and the truncation search.
func TestParallelismDeterminism(t *testing.T) {
	tb := latentTable(1200, 3)
	thr := []float64{0, 0, 0.05, 0.05, 0}
	for _, mode := range []PartitionMode{PartitionMoE, PartitionKMeans} {
		opts := quickOpts()
		opts.NumExperts = 3
		opts.Partition = mode
		opts.Parallelism = 1
		seq, err := Compress(tb, thr, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 4, 8} {
			opts.Parallelism = p
			par, err := Compress(tb, thr, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(seq.Archive, par.Archive) {
				t.Fatalf("mode %v: archive differs between parallelism 1 (%d bytes) and %d (%d bytes)",
					mode, len(seq.Archive), p, len(par.Archive))
			}
		}
		got, err := Decompress(seq.Archive)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

// TestTrainWorkersDeterminism isolates the data-parallel trainer from the
// pipeline's other parallelism: with the pool size held fixed, varying only
// Train.Workers must not change a single archive byte, because the minibatch
// shard partition and gradient-reduction order depend on batch shape alone.
func TestTrainWorkersDeterminism(t *testing.T) {
	tb := latentTable(900, 2)
	thr := []float64{0, 0, 0.05, 0.05, 0}
	opts := quickOpts()
	opts.NumExperts = 2
	opts.Parallelism = 2
	opts.Train.Workers = 1
	base, err := Compress(tb, thr, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, runtime.NumCPU()} {
		opts.Train.Workers = w
		got, err := Compress(tb, thr, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base.Archive, got.Archive) {
			t.Fatalf("archive differs between Train.Workers=1 (%d bytes) and %d (%d bytes)",
				len(base.Archive), w, len(got.Archive))
		}
	}
}

func TestCompressContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompressContext(ctx, latentTable(300, 1), []float64{0, 0, 0, 0, 0}, quickOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCompressContextDeadline checks prompt cancellation mid-compression
// with no goroutine leaks: training dominates the runtime, so a deadline
// that expires during it must surface quickly via the Stop hook.
func TestCompressContextDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	tb := latentTable(3000, 2)
	opts := quickOpts()
	opts.Train.Epochs = 200 // long enough that the deadline lands mid-training
	opts.Parallelism = 4
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := CompressContext(ctx, tb, []float64{0, 0, 0.05, 0.05, 0}, opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	// All pool helpers are joined before ForEach returns; give the runtime a
	// moment to reap exiting goroutines, then verify none leaked.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStageStatsPopulated(t *testing.T) {
	tb := latentTable(800, 1)
	opts := quickOpts()
	res, err := Compress(tb, []float64{0, 0, 0.05, 0.05, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]StageStats)
	for _, st := range res.Stages {
		names[st.Name] = st
	}
	for _, want := range []string{"preprocess", "train", "encode", "truncation-search", "assemble"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("stage %q missing from %v", want, res.Stages)
		}
	}
	if names["assemble"].Bytes != int64(len(res.Archive)) {
		t.Fatalf("assemble bytes %d != archive %d", names["assemble"].Bytes, len(res.Archive))
	}
	if names["truncation-search"].Bytes <= 0 {
		t.Fatal("truncation-search recorded no candidate size")
	}
}

// clusteredTable builds rows from two well-separated clusters. When
// interleave is true, cluster membership alternates row to row (expensive
// to delta-code grouped indexes, cheap as labels); when false, rows arrive
// sorted by cluster (grouped indexes nearly free).
func clusteredTable(rows int, interleave bool) *dataset.Table {
	schema := dataset.NewSchema(
		dataset.Column{Name: "x", Type: dataset.Numeric},
		dataset.Column{Name: "y", Type: dataset.Numeric},
	)
	t := dataset.NewTable(schema, rows)
	for i := 0; i < rows; i++ {
		var c int
		if interleave {
			c = i % 2
		} else if i >= rows/2 {
			c = 1
		}
		base := float64(c) * 1000
		t.AppendRow(nil, []float64{base + float64(i%13), base + float64(i%7)})
	}
	return t
}

// TestKeepRowOrderMappingBranches drives the grouped-vs-labels decision in
// materialize down both branches and round-trips each, checking the chosen
// encoding via the archive's flags byte.
func TestKeepRowOrderMappingBranches(t *testing.T) {
	cases := []struct {
		name       string
		interleave bool
	}{
		{"interleaved-prefers-labels", true},
		{"sorted-prefers-grouped", false},
	}
	branches := make(map[bool]bool) // grouped? → seen
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := clusteredTable(1600, tc.interleave)
			thr := []float64{0, 0}
			opts := quickOpts()
			opts.NumExperts = 2
			opts.Partition = PartitionKMeans
			opts.KeepRowOrder = true
			res, err := Compress(tb, thr, opts)
			if err != nil {
				t.Fatal(err)
			}
			_, _, flags, err := newSectionReader(res.Archive)
			if err != nil {
				t.Fatal(err)
			}
			grouped := flags&flagGrouped != 0
			branches[grouped] = true
			if flags&flagRowOrder == 0 {
				t.Fatal("KeepRowOrder archive lost row order")
			}
			got, err := Decompress(res.Archive)
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.EqualWithin(got, tolerances(tb, thr)); err != nil {
				t.Fatal(err)
			}
		})
	}
	if !branches[true] || !branches[false] {
		t.Fatalf("mapping decision did not exercise both branches: %v", branches)
	}
}

// TestTuneContextDeterminism: the tuner is deterministic for a fixed
// (seed, Parallelism) pair, and honors cancellation.
func TestTuneContextDeterminism(t *testing.T) {
	tb := latentTable(900, 5)
	thr := []float64{0, 0, 0.05, 0.05, 0}
	topts := DefaultTuneOptions()
	topts.Base = quickOpts()
	topts.Base.Parallelism = 2
	topts.Samples = []int{400}
	topts.Codes = []int{1, 2}
	topts.Experts = []int{1, 2}
	topts.Budget = 3
	run := func() *TuneResult {
		res, err := TuneContext(context.Background(), tb, thr, topts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Best.CodeSize != b.Best.CodeSize || a.Best.NumExperts != b.Best.NumExperts {
		t.Fatalf("tuner not deterministic: %+v vs %+v", a.Best, b.Best)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	if len(a.Stages) == 0 || !strings.HasPrefix(a.Stages[0].Name, "tune-") {
		t.Fatalf("tune stages = %+v", a.Stages)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TuneContext(ctx, tb, thr, topts); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled tune err = %v", err)
	}
}

func TestStreamBatchContext(t *testing.T) {
	tb := latentTable(1000, 7)
	thr := []float64{0, 0, 0.05, 0.05, 0}
	opts := quickOpts()
	opts.Parallelism = 2
	s, _, err := NewStream(tb, thr, opts)
	if err != nil {
		t.Fatal(err)
	}
	batch := latentTable(400, 11)
	res, err := s.CompressBatchContext(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) == 0 {
		t.Fatal("batch result has no stage stats")
	}
	got, err := DecompressBatch(s.ModelArchive(), res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.EqualWithin(got, tolerances(batch, thr)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.CompressBatchContext(ctx, batch); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch err = %v", err)
	}
}
