package core

import (
	"encoding/binary"

	"deepsqueeze/internal/codec"
	"deepsqueeze/internal/colfile"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/pipeline"
	"deepsqueeze/internal/preprocess"
)

// archiveState bundles everything the archive writer materializes.
type archiveState struct {
	decoders []*nn.Decoder
	codeDims [][]int64 // per dimension, stored order
	codeBits int
	codeSize int
	fs       *failureSet
	perm     []int // stored position → original row
	assign   []int // original row → expert
	grouped  bool
	experts  int
	spans    []rowSpan // row-group partition of [0, rows)
	// ext, when non-nil, marks a streaming batch archive: the decoders are
	// not embedded, only the SHA-256 of the model archive's decoder section.
	ext *externalModelRef
}

// externalModelRef identifies the model archive a batch archive depends on.
type externalModelRef struct {
	Hash [32]byte
}

// segConfig is the per-archive context a segment writer needs.
type segConfig struct {
	hasModel  bool
	experts   int
	grouped   bool       // grouped mapping form (vs per-tuple labels)
	keepOrder bool       // original order recoverable (flagRowOrder)
	mask      codec.Mask // codecs the int-stream best-of selector may try
}

// segmentData is everything one row-group segment serializes, already cut to
// the group's rows: dense streams and perm are the group's stored-order
// slice, sparse queues hold only the group's escapes/corrections. origBase
// is subtracted from perm values to form group-local indexes (span.start
// when slicing a global materialization, 0 when the streams are group-local
// as in the streaming writer).
type segmentData struct {
	span      rowSpan
	origBase  int
	planChunk []byte // group plan override payload; nil = header plan applies
	dims      [][]int64
	ints      map[int][]int64
	res       map[int][][]int64
	exc       map[int][]int64
	mask      map[int][]int64
	vals      map[int][]float64
	perm      []int
}

// sliceGroups cuts the global stored-order streams at span boundaries. The
// sparse exception / continuous-correction queues are split by one serial
// prefix pass over the dense streams (an escape consumes one exception, a
// set mask bit consumes one correction).
func sliceGroups(md *modelData, fs *failureSet, dims [][]int64, perm []int, spans []rowSpan) []segmentData {
	excOff := make(map[int]int)
	valOff := make(map[int]int)
	groups := make([]segmentData, len(spans))
	for gi, sp := range spans {
		lo, hi := sp.start, sp.start+sp.count
		g := &groups[gi]
		g.span, g.origBase = sp, sp.start
		g.perm = perm[lo:hi]
		g.dims = make([][]int64, len(dims))
		for d, col := range dims {
			g.dims[d] = col[lo:hi]
		}
		g.ints = make(map[int][]int64)
		g.res = make(map[int][][]int64)
		g.exc = make(map[int][]int64)
		g.mask = make(map[int][]int64)
		g.vals = make(map[int][]float64)
		for col, digits := range fs.resInts {
			segs := make([][]int64, len(digits))
			for d, stream := range digits {
				segs[d] = stream[lo:hi]
			}
			g.res[col] = segs
		}
		for col, ints := range fs.ints {
			seg := ints[lo:hi]
			g.ints[col] = seg
			if _, ok := fs.exceptions[col]; !ok {
				continue
			}
			card := int64(md.specs[md.specOfCol[col]].Card)
			cnt := 0
			for _, v := range seg {
				if v == card {
					cnt++
				}
			}
			off := excOff[col]
			g.exc[col] = fs.exceptions[col][off : off+cnt]
			excOff[col] = off + cnt
		}
		for col, mask := range fs.contMask {
			seg := mask[lo:hi]
			g.mask[col] = seg
			cnt := 0
			for _, m := range seg {
				if m != 0 {
					cnt++
				}
			}
			off := valOff[col]
			g.vals[col] = fs.contVals[col][off : off+cnt]
			valOff[col] = off + cnt
		}
	}
	return groups
}

// buildMappingChunk serializes one group's expert mapping in the v1 chunk
// shape: the grouped form stores per-expert counts (plus packed group-local
// original indexes when row order is kept); the labels form stores one
// expert label per tuple. perm is the group's stored-order slice; origBase
// is subtracted to make indexes group-local.
func buildMappingChunk(assign, perm []int, origBase, experts int, grouped, keepOrder bool, mask codec.Mask) []byte {
	if !grouped {
		labels := make([]int64, len(perm))
		for i, orig := range perm {
			labels[i] = int64(assign[orig])
		}
		return colfile.PackIntsMask(labels, mask)
	}
	byExpert := make([][]int64, experts)
	for _, orig := range perm {
		e := assign[orig]
		byExpert[e] = append(byExpert[e], int64(orig-origBase))
	}
	var mb []byte
	for _, idx := range byExpert {
		mb = binary.AppendUvarint(mb, uint64(len(idx)))
		if keepOrder {
			packed := colfile.PackIntsMask(idx, mask)
			mb = binary.AppendUvarint(mb, uint64(len(packed)))
			mb = append(mb, packed...)
		}
	}
	return mb
}

// buildSegment serializes one row group into a CRC-framed segment body:
// a segment header chunk (row span + plan-override marker), the optional
// group plan, the group's code dimensions, expert mapping, and per-column
// failure chunks (same per-column chunk rules as format v1). t, md, and
// assign are addressed through g.perm, so they may be the global table or a
// group-local one. Returns the framed bytes plus the codes/mapping/failures
// section sizes for the footer index.
func buildSegment(t *dataset.Table, md *modelData, assign []int, cfg segConfig, g segmentData) ([]byte, int64, int64, int64, error) {
	w := &sectionWriter{}
	var sh []byte
	sh = binary.AppendUvarint(sh, uint64(g.span.start))
	sh = binary.AppendUvarint(sh, uint64(g.span.count))
	if g.planChunk != nil {
		sh = append(sh, 1)
	} else {
		sh = append(sh, 0)
	}
	w.chunk(sh)
	if g.planChunk != nil {
		w.chunk(g.planChunk)
	}
	var codes, mapping, failures int64
	if cfg.hasModel {
		for _, dim := range g.dims {
			codes += w.chunk(colfile.PackIntsMask(dim, cfg.mask))
		}
	}
	if cfg.experts > 1 {
		mapping += w.chunk(buildMappingChunk(assign, g.perm, g.origBase, cfg.experts, cfg.grouped, cfg.keepOrder, cfg.mask))
	}
	for col := range md.plan.Cols {
		cp := &md.plan.Cols[col]
		switch {
		case md.specOfCol[col] >= 0 && cp.Kind == preprocess.KindNumContinuous:
			failures += w.chunk(colfile.PackIntsMask(g.mask[col], cfg.mask))
			failures += w.chunk(colfile.PackFloats(g.vals[col]))
		case cp.Kind == preprocess.KindCatResidual:
			// One failure-rank chunk per digit, no exception chunks:
			// digits never escape.
			for _, stream := range g.res[col] {
				failures += w.chunk(colfile.PackIntsMask(stream, cfg.mask))
			}
		case md.specOfCol[col] >= 0:
			failures += w.chunk(colfile.PackIntsMask(g.ints[col], cfg.mask))
			if md.specs[md.specOfCol[col]].Kind == nn.OutCategorical {
				failures += w.chunk(colfile.PackIntsMask(g.exc[col], cfg.mask))
			}
		case cp.Kind == preprocess.KindFallbackCat:
			vals := make([]string, g.span.count)
			for s, orig := range g.perm {
				vals[s] = t.Str[col][orig]
			}
			failures += w.chunk(colfile.PackStrings(vals))
		case cp.Kind == preprocess.KindFallbackNum:
			vals := make([]float64, g.span.count)
			for s, orig := range g.perm {
				vals[s] = t.Num[col][orig]
			}
			failures += w.chunk(colfile.PackFloats(vals))
		default: // trivial: store the (tiny) code stream directly
			cc := md.codes[col]
			vals := make([]int64, g.span.count)
			for s, orig := range g.perm {
				vals[s] = int64(cc[orig])
			}
			failures += w.chunk(colfile.PackIntsMask(vals, cfg.mask))
		}
	}
	return w.finish(), codes, mapping, failures, nil
}

// archiveFlags derives the flag byte for an archive's state.
func archiveFlags(st *archiveState, keepRowOrder bool) byte {
	flags := byte(0)
	if st.grouped {
		flags |= flagGrouped
	}
	if len(st.decoders) > 0 {
		flags |= flagHasModel
	}
	if keepRowOrder || st.experts <= 1 || !st.grouped {
		flags |= flagRowOrder
	}
	if st.ext != nil {
		flags |= flagExternalModel
	}
	return flags
}

// appendDecoderChunkPayload serializes the decoder section payload: the
// external-model hash for streaming batch archives, the DEFLATE-framed
// length-prefixed decoders otherwise.
func appendDecoderChunkPayload(st *archiveState) ([]byte, error) {
	if st.ext != nil {
		return st.ext.Hash[:], nil
	}
	var db []byte
	for _, d := range st.decoders {
		body := d.AppendBinary(nil)
		db = binary.AppendUvarint(db, uint64(len(body)))
		db = append(db, body...)
	}
	return compressDecoderSection(db), nil
}

// assembleArchive writes a version-2 archive — prefix, row-group segments,
// footer index — and returns it with the per-section size breakdown.
// Segments build concurrently over the run's pool into index-addressed
// slots and are concatenated serially, so the bytes are identical at every
// parallelism level.
func assembleArchive(run *pipeline.Run, t *dataset.Table, md *modelData, opts Options, st archiveState) ([]byte, Breakdown, error) {
	var bd Breakdown
	w := &sectionWriter{}
	hasModel := len(st.decoders) > 0
	flags := archiveFlags(&st, opts.KeepRowOrder)
	zoneOn := !opts.NoZoneMaps
	if zoneOn {
		flags |= flagZoneMaps
	}
	if opts.Float32Decode && hasModel {
		// Decode precision is a per-archive contract: the flag tells every
		// reader that the stored corrections assume float32 inference.
		flags |= flagFloat32
	}
	if planHasResidual(md.plan) {
		// Advisory: residual columns also mark the plan itself (a new
		// ColKind old readers reject), but the header flag lets Inspect and
		// operators see the layout without parsing the plan.
		flags |= flagResidual
	}
	w.raw(magic[:])
	w.raw([]byte{archiveVersion, flags})
	w.chunk(appendHeaderPayload(nil, md.plan, st.codeSize, st.codeBits, st.experts, opts.rowGroupSize()))

	if hasModel {
		payload, err := appendDecoderChunkPayload(&st)
		if err != nil {
			return nil, bd, err
		}
		bd.Decoder += w.chunk(payload)
	}

	spans := st.spans
	if len(spans) == 0 {
		spans = rowGroupSpans(md.rows, opts.rowGroupSize())
	}
	groups := sliceGroups(md, st.fs, st.codeDims, st.perm, spans)
	cfg := segConfig{
		hasModel:  hasModel,
		experts:   st.experts,
		grouped:   st.grouped,
		keepOrder: flags&flagRowOrder != 0,
		mask:      opts.codecMask(),
	}
	type builtSeg struct {
		framed                   []byte
		codes, mapping, failures int64
	}
	segs := make([]builtSeg, len(groups))
	zones := make([][]ZoneMap, len(groups))
	err := run.ForEach(len(groups), func(g int) error {
		framed, codes, mapping, failures, err := buildSegment(t, md, st.assign, cfg, groups[g])
		segs[g] = builtSeg{framed, codes, mapping, failures}
		if zoneOn {
			zones[g] = computeGroupZones(t, groups[g].perm, md.plan, md.plan)
		}
		return err
	})
	if err != nil {
		return nil, bd, err
	}

	metas := make([]groupMeta, len(groups))
	for g := range groups {
		off := int64(w.buf.Len())
		w.raw([]byte{kindSegment})
		w.chunk(segs[g].framed)
		metas[g] = groupMeta{
			start: groups[g].span.start, count: groups[g].span.count,
			off: off, segLen: int64(w.buf.Len()) - off,
			codes: segs[g].codes, mapping: segs[g].mapping, failures: segs[g].failures,
		}
		bd.Codes += segs[g].codes
		bd.Mapping += segs[g].mapping
		bd.Failures += segs[g].failures
	}

	if zoneOn {
		w.raw([]byte{kindStats})
		w.chunk(appendZoneStatsPayload(nil, zones))
	}

	footOff := int64(w.buf.Len())
	w.raw([]byte{kindFooter})
	w.chunk(appendFooterPayload(nil, md.rows, metas))
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], uint64(footOff))
	w.raw(trailer[:])

	out := w.finish()
	bd.Total = int64(len(out))
	// Everything that is not decoders, codes, failures, or mapping — the
	// envelope, plan, segment/footer framing, and checksums — counts as
	// header, keeping the Fig. 6 components summing exactly to Total.
	bd.Header = bd.Total - bd.Decoder - bd.Codes - bd.Failures - bd.Mapping
	return out, bd, nil
}
