package core

import (
	"encoding/binary"

	"deepsqueeze/internal/colfile"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/preprocess"
)

// archiveState bundles everything the archive writer materializes.
type archiveState struct {
	decoders []*nn.Decoder
	codeDims [][]int64 // per dimension, stored order
	codeBits int
	codeSize int
	fs       *failureSet
	perm     []int // stored position → original row
	assign   []int // original row → expert
	grouped  bool
	experts  int
	// ext, when non-nil, marks a streaming batch archive: the decoders are
	// not embedded, only the SHA-256 of the model archive's decoder section.
	ext *externalModelRef
}

// externalModelRef identifies the model archive a batch archive depends on.
type externalModelRef struct {
	Hash [32]byte
}

// assembleArchive writes the archive and returns it with the per-section
// size breakdown.
func assembleArchive(t *dataset.Table, md *modelData, opts Options, st archiveState) ([]byte, Breakdown, error) {
	var bd Breakdown
	w := &sectionWriter{}
	hasModel := len(st.decoders) > 0
	flags := byte(0)
	if st.grouped {
		flags |= flagGrouped
	}
	if hasModel {
		flags |= flagHasModel
	}
	if opts.KeepRowOrder || st.experts <= 1 || !st.grouped {
		flags |= flagRowOrder
	}
	if st.ext != nil {
		flags |= flagExternalModel
	}
	w.raw(magic[:])
	w.raw([]byte{archiveVersion, flags})
	bd.Header += 6

	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(md.rows))
	hdr = md.plan.AppendBinary(hdr)
	hdr = binary.AppendUvarint(hdr, uint64(st.codeSize))
	hdr = binary.AppendUvarint(hdr, uint64(st.codeBits))
	hdr = binary.AppendUvarint(hdr, uint64(st.experts))
	bd.Header += w.chunk(hdr)

	if hasModel {
		if st.ext != nil {
			bd.Decoder += w.chunk(st.ext.Hash[:])
		} else {
			var db []byte
			for _, d := range st.decoders {
				body := d.AppendBinary(nil)
				db = binary.AppendUvarint(db, uint64(len(body)))
				db = append(db, body...)
			}
			zdb, err := deflateBytes(db)
			if err != nil {
				return nil, bd, err
			}
			bd.Decoder += w.chunk(zdb)
		}
		for _, dim := range st.codeDims {
			bd.Codes += w.chunk(colfile.PackInts(dim))
		}
	}

	if st.experts > 1 {
		var mb []byte
		if st.grouped {
			byExpert := make([][]int64, st.experts)
			for _, orig := range st.perm {
				e := st.assign[orig]
				byExpert[e] = append(byExpert[e], int64(orig))
			}
			keepOrder := flags&flagRowOrder != 0
			for _, idx := range byExpert {
				mb = binary.AppendUvarint(mb, uint64(len(idx)))
				if keepOrder {
					packed := colfile.PackInts(idx)
					mb = binary.AppendUvarint(mb, uint64(len(packed)))
					mb = append(mb, packed...)
				}
			}
		} else {
			labels := make([]int64, len(st.assign))
			for i, e := range st.assign {
				labels[i] = int64(e)
			}
			mb = colfile.PackInts(labels)
		}
		bd.Mapping += w.chunk(mb)
	}

	// Failure streams, one group of chunks per schema column in order.
	for col := range md.plan.Cols {
		cp := &md.plan.Cols[col]
		switch {
		case md.specOfCol[col] >= 0 && cp.Kind == preprocess.KindNumContinuous:
			bd.Failures += w.chunk(colfile.PackInts(st.fs.contMask[col]))
			bd.Failures += w.chunk(colfile.PackFloats(st.fs.contVals[col]))
		case md.specOfCol[col] >= 0:
			bd.Failures += w.chunk(colfile.PackInts(st.fs.ints[col]))
			if md.specs[md.specOfCol[col]].Kind == nn.OutCategorical {
				bd.Failures += w.chunk(colfile.PackInts(st.fs.exceptions[col]))
			}
		case cp.Kind == preprocess.KindFallbackCat:
			vals := make([]string, md.rows)
			for s, orig := range st.perm {
				vals[s] = t.Str[col][orig]
			}
			bd.Failures += w.chunk(colfile.PackStrings(vals))
		case cp.Kind == preprocess.KindFallbackNum:
			vals := make([]float64, md.rows)
			for s, orig := range st.perm {
				vals[s] = t.Num[col][orig]
			}
			bd.Failures += w.chunk(colfile.PackFloats(vals))
		default: // trivial: store the (tiny) code stream directly
			cc := md.codes[col]
			vals := make([]int64, md.rows)
			for s, orig := range st.perm {
				vals[s] = int64(cc[orig])
			}
			bd.Failures += w.chunk(colfile.PackInts(vals))
		}
	}

	out := w.finish()
	bd.Header += 4 // checksum
	bd.Total = int64(len(out))
	return out, bd, nil
}
