package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/pipeline"
	"deepsqueeze/internal/preprocess"
)

// Stream implements the paper's streaming-archival scenario (§3): the model
// is trained once on an initial batch, its decoders live in a single *model
// archive* (the initial batch's own archive), and subsequent message
// batches compress into small *batch archives* that reference the model by
// the SHA-256 of its decoder section instead of embedding it. Per batch,
// only the cheap preprocessing state (dictionaries, scalers, quantizers) is
// re-fitted; the trained experts are reused, so batch cost is encoding +
// materialization with no training. Distribution drift surfaces as growing
// failure streams — the signal to retrain, as the paper suggests.
type Stream struct {
	opts       Options
	thresholds []float64
	trainPlan  *preprocess.Plan
	experts    []*nn.Autoencoder
	specs      []nn.ColSpec
	model      []byte
	hash       [32]byte
}

// NewStream trains on the initial batch and returns the stream compressor
// together with the initial batch's compression result. The result's
// archive is the model archive: keep it, every batch needs it to decompress.
func NewStream(train *dataset.Table, thresholds []float64, opts Options) (*Stream, *Result, error) {
	opts.Preproc = streamingResidualHeadroom(opts.Preproc)
	res, experts, md, err := compress(context.Background(), nil, train, thresholds, opts)
	if err != nil {
		return nil, nil, err
	}
	if len(experts) == 0 {
		return nil, nil, fmt.Errorf("core: streaming needs at least one model column and a non-empty training batch")
	}
	hash, err := decoderSectionHash(res.Archive)
	if err != nil {
		return nil, nil, err
	}
	s := &Stream{
		opts:       opts,
		thresholds: append([]float64(nil), thresholds...),
		trainPlan:  md.plan,
		experts:    experts,
		specs:      append([]nn.ColSpec(nil), md.specs...),
		model:      res.Archive,
		hash:       hash,
	}
	return s, res, nil
}

// ModelArchive returns the self-contained model archive (the compressed
// initial batch). DecompressBatch needs it for every batch archive.
func (s *Stream) ModelArchive() []byte { return s.model }

// CompressBatch compresses one message batch against the trained model.
// The batch must have the training schema. Batch archives are decompressed
// with DecompressBatch(model, batch).
func (s *Stream) CompressBatch(batch *dataset.Table) (*Result, error) {
	return s.CompressBatchContext(context.Background(), batch)
}

// CompressBatchContext is CompressBatch with cancellation: the batch
// pipeline (preprocess → assign → materialize) checks ctx between stages and
// between parallel work items and returns ctx.Err() promptly once the
// context is done.
func (s *Stream) CompressBatchContext(ctx context.Context, batch *dataset.Table) (*Result, error) {
	if !batch.Schema.Equal(s.trainPlan.Schema) {
		return nil, fmt.Errorf("core: batch schema differs from training schema")
	}
	run := pipeline.New(ctx, s.opts.Parallelism)
	var md *modelData
	err := run.Stage("preprocess", func() error {
		plan, err := s.fitBatchPlan(batch)
		if err != nil {
			return err
		}
		md, err = buildModelData(batch, plan)
		if err != nil {
			return err
		}
		return checkRefitSpecs(md.specs, s.specs)
	})
	if err != nil {
		return nil, err
	}
	assign := make([]int, md.rows)
	if len(s.experts) > 1 {
		err := run.Stage("assign", func() error {
			assign = (&nn.MoE{Experts: s.experts}).Assign(md.x, md.targets)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	res, err := materialize(run, batch, md, s.opts, s.experts, assign, &externalModelRef{Hash: s.hash})
	if err != nil {
		return nil, err
	}
	res.Stages = run.Stats()
	return res, nil
}

// fitBatchPlan re-fits per-batch preprocessing state against the stream's
// training plan.
func (s *Stream) fitBatchPlan(batch *dataset.Table) (*preprocess.Plan, error) {
	return refitPlan(batch, s.trainPlan, s.thresholds, s.opts)
}

// streamingResidualHeadroom applies the streaming default for residual
// layout slack: the plan is fitted on a pilot batch that undercounts the
// alphabet later batches may carry, and residual digits have no escape
// path, so the digit layout is sized for twice the pilot's distinct count.
// An explicit caller-set headroom (any non-zero value) is kept as-is.
func streamingResidualHeadroom(p preprocess.Options) preprocess.Options {
	if p.ResidualCats && p.ResidualHeadroom == 0 {
		p.ResidualHeadroom = 2
	}
	return p
}

// refitPlan re-fits per-batch preprocessing state while pinning the
// decisions the trained model depends on: every column keeps its training
// kind, and categorical model alphabets keep their training size. Values
// unseen during training become ordinary escape failures. Both the streaming
// batch compressor and the bounded-memory ArchiveWriter refit their
// non-initial chunks this way.
func refitPlan(batch *dataset.Table, trainPlan *preprocess.Plan, thresholds []float64, opts Options) (*preprocess.Plan, error) {
	popts := opts.Preproc
	popts.NoQuantization = popts.NoQuantization || opts.NoQuantization
	fresh, err := preprocess.Fit(batch, popts, thresholds)
	if err != nil {
		return nil, err
	}
	for col := range fresh.Cols {
		tc := &trainPlan.Cols[col]
		bc := &fresh.Cols[col]
		switch tc.Kind {
		case preprocess.KindCatModel:
			// Force the column back to the categorical-model path with the
			// trained alphabet size, regardless of the batch's own
			// statistics (a batch may look high-cardinality or binary).
			if bc.Dict == nil {
				bc.Dict = preprocess.BuildDictionary(batch.Str[col])
			}
			bc.Kind = preprocess.KindCatModel
			bc.ModelCard = tc.ModelCard
		case preprocess.KindCatResidual:
			// Pin the trained digit layout. Residual digits have no escape
			// path — every batch rank must fit inside Base^Digits — so a
			// batch whose alphabet outgrows the trained capacity is a hard
			// retrain signal rather than a failure-stream entry.
			if bc.Dict == nil {
				bc.Dict = preprocess.BuildDictionary(batch.Str[col])
			}
			bc.Kind = preprocess.KindCatResidual
			bc.ModelCard = tc.ModelCard
			bc.ResDigits = tc.ResDigits
			if l := bc.ResLayout(); bc.Dict.Len() > l.Max() {
				return nil, fmt.Errorf("core: column %q has %d distinct values, exceeding the trained residual capacity %d (retrain needed)",
					batch.Schema.Columns[col].Name, bc.Dict.Len(), l.Max())
			}
		case preprocess.KindBinary:
			if bc.Dict == nil {
				bc.Dict = preprocess.BuildDictionary(batch.Str[col])
			}
			if bc.Dict.Len() > 2 {
				return nil, fmt.Errorf("core: column %q was binary at training time but batch has %d distinct values (retrain needed)",
					batch.Schema.Columns[col].Name, bc.Dict.Len())
			}
			bc.Kind = preprocess.KindBinary
			bc.ModelCard = 2
		case preprocess.KindNumQuant, preprocess.KindNumContinuous:
			if bc.Kind != tc.Kind {
				return nil, fmt.Errorf("core: column %q changed numeric handling (retrain needed)", batch.Schema.Columns[col].Name)
			}
		case preprocess.KindNumDict:
			if bc.Kind == preprocess.KindFallbackNum {
				return nil, fmt.Errorf("core: column %q exceeded the value-dictionary limit in this batch (retrain needed)",
					batch.Schema.Columns[col].Name)
			}
		case preprocess.KindFallbackCat, preprocess.KindFallbackNum:
			bc.Kind = tc.Kind
			bc.ModelCard = 0
		}
		// The spec list must keep its training shape: columns trivial at
		// training time stay trivial, and columns modeled at training time
		// stay modeled even when a batch happens to be constant.
		if isTrivial(tc) {
			bc.ModelCard = tc.ModelCard
		} else if isTrivial(bc) {
			bc.ModelCard = 2
		}
	}
	return fresh, nil
}

// checkRefitSpecs verifies a refit plan kept the trained model's column
// specs — the invariant that lets the trained experts decode the new rows.
func checkRefitSpecs(got, want []nn.ColSpec) error {
	if len(got) != len(want) {
		return fmt.Errorf("core: batch produced %d model columns, training had %d (retrain needed)", len(got), len(want))
	}
	for i, sp := range got {
		if sp != want[i] {
			return fmt.Errorf("core: batch model column %d spec %+v differs from training %+v (retrain needed)", i, sp, want[i])
		}
	}
	return nil
}

// DecompressBatch reconstructs a batch compressed by Stream.CompressBatch,
// given the stream's model archive.
func DecompressBatch(modelArchive, batchArchive []byte) (*dataset.Table, error) {
	res, err := DecompressBatchContext(context.Background(), modelArchive, batchArchive, DecompressOptions{})
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// DecompressBatchContext is DecompressBatch with cancellation and
// query-aware projection — the batch archive runs through the same staged
// pipeline as DecompressContext, with the model archive supplying the
// decoders.
func DecompressBatchContext(ctx context.Context, modelArchive, batchArchive []byte, opts DecompressOptions) (*DecompressResult, error) {
	decoders, hash, err := extractDecoders(modelArchive)
	if err != nil {
		return nil, fmt.Errorf("model archive: %w", err)
	}
	return decompressPipeline(ctx, batchArchive, opts, &providedModel{decoders: decoders, hash: hash})
}

// parseDecoderSection splits a (inflated-on-demand) decoder section into
// its per-expert decoders.
func parseDecoderSection(section []byte, numExperts int) ([]*nn.Decoder, error) {
	db, err := inflateDecoderSection(section)
	if err != nil {
		return nil, err
	}
	decoders := make([]*nn.Decoder, numExperts)
	dpos := 0
	for e := range decoders {
		l, sz := binary.Uvarint(db[dpos:])
		if sz <= 0 || uint64(len(db)-dpos-sz) < l {
			return nil, fmt.Errorf("%w: truncated decoder %d", ErrCorrupt, e)
		}
		dpos += sz
		dec, used, err := nn.DecodeDecoder(db[dpos : dpos+int(l)])
		if err != nil {
			return nil, err
		}
		if used != int(l) {
			return nil, fmt.Errorf("%w: decoder %d has %d stray bytes", ErrCorrupt, e, int(l)-used)
		}
		decoders[e] = dec
		dpos += int(l)
	}
	if dpos != len(db) {
		return nil, fmt.Errorf("%w: trailing decoder bytes", ErrCorrupt)
	}
	return decoders, nil
}

// extractDecoders pulls the decoder section out of a self-contained model
// archive and returns the decoders plus the section hash batch archives
// reference.
func extractDecoders(archive []byte) ([]*nn.Decoder, [32]byte, error) {
	var zero [32]byte
	r, version, flags, err := newSectionReader(archive)
	if err != nil {
		return nil, zero, err
	}
	if flags&flagHasModel == 0 {
		return nil, zero, fmt.Errorf("%w: model archive has no model section", ErrCorrupt)
	}
	if flags&flagExternalModel != 0 {
		return nil, zero, fmt.Errorf("%w: a batch archive cannot serve as a model archive", ErrCorrupt)
	}
	hdr, err := r.chunk()
	if err != nil {
		return nil, zero, err
	}
	h, err := decodeHeader(hdr, version)
	if err != nil {
		return nil, zero, err
	}
	section, err := r.chunk()
	if err != nil {
		return nil, zero, err
	}
	decoders, err := parseDecoderSection(section, h.numExperts)
	if err != nil {
		return nil, zero, err
	}
	return decoders, decoderSectionHashBytes(section), nil
}

// decoderSectionHash locates the decoder section of a model archive and
// hashes it.
func decoderSectionHash(archive []byte) ([32]byte, error) {
	var zero [32]byte
	r, _, flags, err := newSectionReader(archive)
	if err != nil {
		return zero, err
	}
	if flags&flagHasModel == 0 {
		return zero, fmt.Errorf("%w: archive has no model section", ErrCorrupt)
	}
	if _, err := r.chunk(); err != nil { // header
		return zero, err
	}
	section, err := r.chunk()
	if err != nil {
		return zero, err
	}
	return decoderSectionHashBytes(section), nil
}

func decoderSectionHashBytes(section []byte) [32]byte {
	return sha256.Sum256(section)
}
