package core

import (
	"bytes"
	"compress/gzip"
	"errors"
	"testing"
)

func TestSectionWriterReaderRoundTrip(t *testing.T) {
	w := &sectionWriter{}
	w.raw(magic[:])
	w.raw([]byte{archiveVersion, flagHasModel})
	w.chunk([]byte("first"))
	w.uvarint(300)
	w.chunk(nil)
	w.chunk(bytes.Repeat([]byte{7}, 1000))
	buf := w.finish()

	r, _, flags, err := newSectionReader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if flags != flagHasModel {
		t.Fatalf("flags = %b", flags)
	}
	c1, err := r.chunk()
	if err != nil || string(c1) != "first" {
		t.Fatalf("chunk 1 = %q, %v", c1, err)
	}
	v, err := r.uvarint()
	if err != nil || v != 300 {
		t.Fatalf("uvarint = %d, %v", v, err)
	}
	c2, err := r.chunk()
	if err != nil || len(c2) != 0 {
		t.Fatalf("chunk 2 = %v, %v", c2, err)
	}
	c3, err := r.chunk()
	if err != nil || len(c3) != 1000 {
		t.Fatalf("chunk 3 len = %d, %v", len(c3), err)
	}
	if err := r.done(); err != nil {
		t.Fatal(err)
	}
}

func TestSectionReaderRejects(t *testing.T) {
	w := &sectionWriter{}
	w.raw(magic[:])
	w.raw([]byte{archiveVersion, 0})
	w.chunk([]byte("payload"))
	good := w.finish()

	cases := map[string][]byte{
		"too short": good[:5],
		"bad magic": append([]byte("WXYZ"), good[4:]...),
		"bad version": func() []byte {
			b := append([]byte{}, good...)
			b[4] = 99
			return b
		}(),
		"bad crc": func() []byte {
			b := append([]byte{}, good...)
			b[len(b)-1] ^= 0xFF
			return b
		}(),
		"flipped payload": func() []byte {
			b := append([]byte{}, good...)
			b[8] ^= 0xFF
			return b
		}(),
	}
	for name, c := range cases {
		if _, _, _, err := newSectionReader(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Trailing data must fail done().
	r, _, _, err := newSectionReader(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.done(); err == nil {
		t.Error("done() with unread chunk accepted")
	}
}

func TestSectionReaderChunkOverrun(t *testing.T) {
	w := &sectionWriter{}
	w.raw(magic[:])
	w.raw([]byte{archiveVersion, 0})
	w.uvarint(1 << 40) // declared chunk far larger than archive
	buf := w.finish()
	r, _, _, err := newSectionReader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.chunk(); err == nil {
		t.Fatal("oversized chunk accepted")
	}
}

func TestValidatePerm(t *testing.T) {
	if err := validatePerm([]int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int{{0, 0}, {0, 2}, {-1, 0}} {
		if err := validatePerm(bad); err == nil {
			t.Errorf("perm %v accepted", bad)
		}
	}
}

func TestGroupedPermStable(t *testing.T) {
	assign := []int{1, 0, 1, 0, 2}
	perm := groupedPerm(assign)
	want := []int{1, 3, 0, 2, 4}
	for i, p := range perm {
		if p != want[i] {
			t.Fatalf("groupedPerm = %v, want %v", perm, want)
		}
	}
}

func TestDecoderSectionRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("model weights "), 500)
	z := compressDecoderSection(data)
	if len(z) >= len(data) {
		t.Fatalf("DEFLATE did not shrink repetitive data: %d vs %d", len(z), len(data))
	}
	back, err := inflateDecoderSection(z)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("round trip mismatch")
	}
	// The codec is raw flate, not gzip: a frame with an unknown tag byte must
	// be rejected as corrupt, and the error must say so.
	if _, err := inflateDecoderSection([]byte("not a codec frame")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage classified as %v, want ErrCorrupt", err)
	}
	// A stored frame round-trips even when DEFLATE cannot shrink the payload.
	incompressible := []byte{0x01, 0x9f, 0x3a, 0xc4}
	back, err = inflateDecoderSection(compressDecoderSection(incompressible))
	if err != nil || !bytes.Equal(back, incompressible) {
		t.Fatalf("stored-frame round trip = %v, %v", back, err)
	}
}

func TestDecoderSectionReadsLegacyGzip(t *testing.T) {
	// Archives written before the codec layer gzipped the decoder section;
	// the reader must still sniff and inflate that form.
	data := bytes.Repeat([]byte("legacy decoder bytes "), 100)
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := inflateDecoderSection(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("legacy gzip round trip mismatch")
	}
	// Truncated gzip must classify as corrupt, not panic or succeed.
	if _, err := inflateDecoderSection(buf.Bytes()[:buf.Len()/2]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated gzip classified as %v, want ErrCorrupt", err)
	}
}
