package kmeans

import (
	"math/rand"
	"testing"

	"deepsqueeze/internal/mat"
)

func blobs(rng *rand.Rand, centers [][]float64, per int, spread float64) *mat.Matrix {
	d := len(centers[0])
	x := mat.New(len(centers)*per, d)
	for i := 0; i < x.Rows; i++ {
		c := centers[i/per]
		row := x.Row(i)
		for j := 0; j < d; j++ {
			row[j] = c[j] + rng.NormFloat64()*spread
		}
	}
	return x
}

func TestSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := blobs(rng, [][]float64{{0, 0}, {10, 10}, {-10, 10}}, 100, 0.5)
	res, err := Run(rng, x, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Every ground-truth blob must map to a single cluster.
	for b := 0; b < 3; b++ {
		want := res.Assign[b*100]
		for i := 0; i < 100; i++ {
			if res.Assign[b*100+i] != want {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
	if res.Inertia > 3*100*3*0.5*0.5*4 {
		t.Fatalf("inertia too high: %v", res.Inertia)
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := blobs(rng, [][]float64{{0, 0}, {5, 5}, {-5, 5}, {5, -5}}, 50, 1)
	prev := -1.0
	for _, k := range []int{1, 2, 4, 8} {
		res, err := Run(rand.New(rand.NewSource(3)), x, k, 50)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Inertia > prev*1.01 {
			t.Fatalf("inertia rose from %v to %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func TestKOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := blobs(rng, [][]float64{{1, 2}}, 30, 1)
	res, err := Run(rng, x, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("k=1 produced non-zero assignment")
		}
	}
	// Centroid ≈ mean.
	if c := res.Centroids.Row(0); c[0] < 0 || c[0] > 2 || c[1] < 1 || c[1] > 3 {
		t.Fatalf("centroid %v far from mean (1,2)", c)
	}
}

func TestKLargerThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := mat.FromSlice(2, 1, []float64{0, 1})
	res, err := Run(rng, x, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.Rows != 2 {
		t.Fatalf("k should clamp to n: %d", res.Centroids.Rows)
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := Run(rng, mat.New(0, 2), 2, 10); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Run(rng, mat.New(2, 2), 0, 10); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := mat.New(20, 2)
	x.Fill(3)
	res, err := Run(rng, x, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("identical points inertia %v", res.Inertia)
	}
}
