// Package kmeans implements k-means++ initialization and Lloyd's algorithm.
// It exists to reproduce the paper's Fig. 8 comparison, which pits a
// traditional distance-based clustering partition against DeepSqueeze's
// learned mixture-of-experts partition.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"deepsqueeze/internal/mat"
)

// Result holds the fitted clustering.
type Result struct {
	Centroids *mat.Matrix // k × dims
	Assign    []int       // row → cluster
	Inertia   float64     // sum of squared distances to assigned centroids
	Iters     int
}

// Run clusters the rows of x into k clusters. maxIters bounds Lloyd
// iterations (20 is plenty for the small k used here).
func Run(rng *rand.Rand, x *mat.Matrix, k, maxIters int) (*Result, error) {
	n := x.Rows
	if k < 1 {
		return nil, fmt.Errorf("kmeans: k=%d", k)
	}
	if n == 0 {
		return nil, fmt.Errorf("kmeans: empty input")
	}
	if k > n {
		k = n
	}
	if maxIters < 1 {
		maxIters = 20
	}
	cent := initPlusPlus(rng, x, k)
	assign := make([]int, n)
	counts := make([]int, k)
	var inertia float64
	iters := 0
	for ; iters < maxIters; iters++ {
		// Assignment step.
		changed := false
		inertia = 0
		for r := 0; r < n; r++ {
			row := x.Row(r)
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				dist := sqDist(row, cent.Row(c))
				if dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[r] != best {
				assign[r] = best
				changed = true
			}
			inertia += bestD
		}
		if !changed && iters > 0 {
			break
		}
		// Update step.
		cent.Zero()
		for i := range counts {
			counts[i] = 0
		}
		for r := 0; r < n; r++ {
			c := assign[r]
			counts[c]++
			crow := cent.Row(c)
			for j, v := range x.Row(r) {
				crow[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(cent.Row(c), x.Row(rng.Intn(n)))
				continue
			}
			crow := cent.Row(c)
			inv := 1 / float64(counts[c])
			for j := range crow {
				crow[j] *= inv
			}
		}
	}
	return &Result{Centroids: cent, Assign: assign, Inertia: inertia, Iters: iters}, nil
}

// initPlusPlus seeds centroids with the k-means++ strategy.
func initPlusPlus(rng *rand.Rand, x *mat.Matrix, k int) *mat.Matrix {
	n := x.Rows
	cent := mat.New(k, x.Cols)
	copy(cent.Row(0), x.Row(rng.Intn(n)))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sqDist(x.Row(i), cent.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range dist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			var acc float64
			for i, d := range dist {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		copy(cent.Row(c), x.Row(pick))
		for i := range dist {
			if d := sqDist(x.Row(i), cent.Row(c)); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return cent
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
