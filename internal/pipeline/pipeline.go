// Package pipeline provides the staged-execution substrate the DeepSqueeze
// compression pipeline runs on: a bounded worker pool shared by every stage
// of a run (and across nested runs, e.g. the tuner's concurrent trials),
// context cancellation threaded end-to-end, and per-stage wall-clock and
// byte instrumentation.
//
// Concurrency model. A Pool holds parallelism−1 helper tokens. ForEach
// distributes items over the pool with a caller-runs discipline: the calling
// goroutine always works, and extra goroutines are spawned only when a token
// is free. Acquisition is non-blocking, so nested ForEach calls (a stage
// fanning out inside another stage, or the tuner running trials whose
// compressions fan out internally) degrade to sequential execution in the
// caller instead of deadlocking, and total concurrency stays bounded by the
// pool size.
//
// Determinism. ForEach writes results into per-index slots and reports the
// lowest-index error, so any computation whose items only write to disjoint
// outputs produces identical results at every parallelism level.
package pipeline

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// StageStats records one named pipeline stage's instrumentation.
type StageStats struct {
	// Name identifies the stage ("train", "truncation-search", ...).
	Name string
	// Wall is the stage's wall-clock duration.
	Wall time.Duration
	// Bytes is the stage's output size, when the stage produces bytes
	// (0 otherwise).
	Bytes int64
}

// Pool is a bounded supply of helper workers shared by one or more Runs.
type Pool struct {
	size int
	sem  chan struct{} // capacity size−1: the caller goroutine is worker zero
}

// NewPool returns a pool of the given parallelism; size <= 0 selects
// runtime.NumCPU().
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.NumCPU()
	}
	return &Pool{size: size, sem: make(chan struct{}, size-1)}
}

// Size returns the pool's parallelism.
func (p *Pool) Size() int { return p.size }

// Do runs fn(0..n-1) over the pool and blocks until every item finished.
// At most max goroutines execute concurrently, the caller included (max <= 0
// or max > Size() selects the pool size). Unlike Run.ForEach it carries no
// context or error plumbing, which keeps it cheap enough to call once per
// training minibatch. Helper goroutines are added only while pool tokens are
// free, so nested calls (a data-parallel trainer inside a ForEach item)
// degrade to caller-runs sequential execution instead of oversubscribing.
// Items are claimed from an atomic counter; callers needing deterministic
// results must write item outputs to disjoint, index-addressed slots.
func (p *Pool) Do(n, max int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if max <= 0 || max > p.size {
		max = p.size
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
spawn:
	for extra := 0; extra < max-1 && extra < n-1; extra++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.sem }()
				work()
			}()
		default:
			break spawn // pool saturated: the caller handles the rest
		}
	}
	work()
	wg.Wait()
}

// Run is one pipeline execution: a context, a worker pool, and the stage
// stats accumulated so far. A Run is safe for concurrent use.
type Run struct {
	ctx  context.Context
	pool *Pool

	mu    sync.Mutex
	stats []StageStats
}

// New returns a run with a fresh pool of the given parallelism
// (<= 0 selects runtime.NumCPU()).
func New(ctx context.Context, parallelism int) *Run {
	return NewWithPool(ctx, NewPool(parallelism))
}

// NewWithPool returns a run sharing an existing pool — how nested runs (the
// tuner's per-trial compressions) avoid oversubscribing the machine.
func NewWithPool(ctx context.Context, pool *Pool) *Run {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Run{ctx: ctx, pool: pool}
}

// Context returns the run's context.
func (r *Run) Context() context.Context { return r.ctx }

// Pool returns the run's worker pool, for sharing with nested runs.
func (r *Run) Pool() *Pool { return r.pool }

// Parallelism returns the pool size.
func (r *Run) Parallelism() int { return r.pool.size }

// Err returns the context's error, if the run has been cancelled.
func (r *Run) Err() error { return r.ctx.Err() }

// Stage executes fn as a named, timed stage. It returns immediately with the
// context's error when the run is already cancelled, and surfaces
// cancellation that happened while fn ran even when fn itself returned nil
// (stages may stop early and return partial state on cancellation).
func (r *Run) Stage(name string, fn func() error) error {
	return r.StageBytes(name, func() (int64, error) { return 0, fn() })
}

// StageBytes is Stage for stages that produce output bytes, recorded in the
// stage's stats.
func (r *Run) StageBytes(name string, fn func() (int64, error)) error {
	if err := r.Err(); err != nil {
		return err
	}
	start := time.Now()
	n, err := fn()
	r.mu.Lock()
	r.stats = append(r.stats, StageStats{Name: name, Wall: time.Since(start), Bytes: n})
	r.mu.Unlock()
	if err != nil {
		return err
	}
	return r.Err()
}

// Stats returns a copy of the stage stats recorded so far, in completion
// order.
func (r *Run) Stats() []StageStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]StageStats(nil), r.stats...)
}

// ForEach runs fn(0..n-1) over the shared pool and blocks until every item
// finished or the run was cancelled. The calling goroutine participates;
// helper goroutines are added only while pool tokens are free, and every
// helper is joined before ForEach returns, so cancellation leaks no
// goroutines. On failure the error of the lowest-index failing item is
// returned (item outputs must go to disjoint, index-addressed slots for
// parallelism-independent results).
func (r *Run) ForEach(n int, fn func(i int) error) error {
	if err := r.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n || failed.Load() {
				return
			}
			if err := r.ctx.Err(); err != nil {
				errs[i] = err
				failed.Store(true)
				return
			}
			if err := fn(i); err != nil {
				errs[i] = err
				failed.Store(true)
				return
			}
		}
	}
	var wg sync.WaitGroup
spawn:
	for extra := 0; extra < n-1; extra++ {
		select {
		case r.pool.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-r.pool.sem }()
				work()
			}()
		default:
			break spawn // pool saturated: the caller handles the rest
		}
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return r.Err()
}

// ForEachWorker is ForEach with a worker identity: fn receives, besides the
// item index, the id of the worker executing it — 0 for the calling
// goroutine, 1..Parallelism()-1 for helpers. Worker ids let items share
// preallocated worker-local scratch (one slot per id, no locking and no
// sync.Pool churn) on allocation-free hot paths; which items land on which
// worker is scheduling-dependent, so scratch must never leak into item
// outputs. Outputs must go to disjoint, index-addressed slots, same as
// ForEach.
func (r *Run) ForEachWorker(n int, fn func(worker, i int) error) error {
	if err := r.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	work := func(worker int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n || failed.Load() {
				return
			}
			if err := r.ctx.Err(); err != nil {
				errs[i] = err
				failed.Store(true)
				return
			}
			if err := fn(worker, i); err != nil {
				errs[i] = err
				failed.Store(true)
				return
			}
		}
	}
	var wg sync.WaitGroup
spawn:
	for extra := 0; extra < n-1 && extra < r.pool.size-1; extra++ {
		select {
		case r.pool.sem <- struct{}{}:
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				defer func() { <-r.pool.sem }()
				work(worker)
			}(extra + 1)
		default:
			break spawn // pool saturated: the caller handles the rest
		}
	}
	work(0)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return r.Err()
}

// ForEachChunk splits [0, n) into fixed-size chunks and runs fn(lo, hi) for
// each over the pool. The chunk boundaries depend only on n and chunk — not
// on the pool size — so writes into disjoint [lo, hi) output ranges stay
// deterministic at every parallelism level.
func (r *Run) ForEachChunk(n, chunk int, fn func(lo, hi int) error) error {
	if chunk <= 0 {
		chunk = 1
	}
	chunks := (n + chunk - 1) / chunk
	return r.ForEach(chunks, func(c int) error {
		lo := c * chunk
		hi := min(lo+chunk, n)
		return fn(lo, hi)
	})
}
