package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		r := New(context.Background(), par)
		const n = 1000
		hits := make([]atomic.Int32, n)
		if err := r.ForEach(n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("par %d: index %d ran %d times", par, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	r := New(context.Background(), 4)
	boom := func(i int) error { return fmt.Errorf("item %d", i) }
	err := r.ForEach(16, func(i int) error {
		if i == 3 || i == 7 {
			return boom(i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// With early bail-out either failing index may be the only one recorded,
	// but whichever errors were recorded, the reported one has the lowest
	// index among them — re-running single-threaded must give item 3.
	r1 := New(context.Background(), 1)
	err = r1.ForEach(16, func(i int) error {
		if i == 3 || i == 7 {
			return boom(i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 3" {
		t.Fatalf("sequential error = %v, want item 3", err)
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := New(ctx, 4)
	var done atomic.Int32
	cancel()
	err := r.ForEach(100, func(i int) error {
		done.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if done.Load() != 0 {
		t.Fatalf("%d items ran after cancellation", done.Load())
	}
}

func TestNestedForEachDoesNotDeadlock(t *testing.T) {
	r := New(context.Background(), 2)
	donec := make(chan error, 1)
	go func() {
		donec <- r.ForEach(8, func(i int) error {
			// Inner fan-out competes for the same tokens; must degrade to
			// caller-runs, never block.
			return r.ForEach(8, func(j int) error { return nil })
		})
	}()
	select {
	case err := <-donec:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("nested ForEach deadlocked")
	}
}

func TestStageStats(t *testing.T) {
	r := New(context.Background(), 1)
	if err := r.Stage("alpha", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.StageBytes("beta", func() (int64, error) { return 42, nil }); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if len(st) != 2 || st[0].Name != "alpha" || st[1].Name != "beta" {
		t.Fatalf("stats = %+v", st)
	}
	if st[1].Bytes != 42 {
		t.Fatalf("beta bytes = %d", st[1].Bytes)
	}
}

func TestStageSurfacesCancellationAfterFn(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := New(ctx, 1)
	err := r.Stage("quiet", func() error {
		cancel() // stage observes cancellation and returns nil anyway
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachChunkBoundaries(t *testing.T) {
	r := New(context.Background(), 4)
	const n = 1003
	seen := make([]atomic.Int32, n)
	if err := r.ForEachChunk(n, 128, func(lo, hi int) error {
		if lo < 0 || hi > n || lo >= hi {
			return fmt.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			seen[i].Add(1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, seen[i].Load())
		}
	}
}

func TestSharedPoolBoundsConcurrency(t *testing.T) {
	pool := NewPool(3)
	r1 := NewWithPool(context.Background(), pool)
	r2 := NewWithPool(context.Background(), pool)
	var cur, peak atomic.Int32
	body := func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	}
	done := make(chan error, 2)
	go func() { done <- r1.ForEach(50, body) }()
	go func() { done <- r2.ForEach(50, body) }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Two caller goroutines plus pool-1 helper tokens.
	if got := peak.Load(); got > int32(2+pool.Size()-1) {
		t.Fatalf("peak concurrency %d exceeds bound %d", got, 2+pool.Size()-1)
	}
}

// TestForEachWorkerIDs checks every item runs exactly once, worker ids stay
// inside [0, Parallelism()), and no two items observe the same worker id
// concurrently (the property worker-local scratch depends on).
func TestForEachWorkerIDs(t *testing.T) {
	r := New(context.Background(), 4)
	const n = 200
	var seen [n]atomic.Int32
	busy := make([]atomic.Int32, r.Parallelism())
	err := r.ForEachWorker(n, func(worker, i int) error {
		if worker < 0 || worker >= r.Parallelism() {
			return fmt.Errorf("worker id %d outside [0,%d)", worker, r.Parallelism())
		}
		if busy[worker].Add(1) != 1 {
			return fmt.Errorf("worker id %d shared concurrently", worker)
		}
		seen[i].Add(1)
		time.Sleep(50 * time.Microsecond)
		busy[worker].Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, seen[i].Load())
		}
	}
}

// TestForEachWorkerError checks the lowest-index error wins and cancellation
// propagates, matching ForEach semantics.
func TestForEachWorkerError(t *testing.T) {
	r := New(context.Background(), 2)
	sentinel := errors.New("boom")
	err := r.ForEachWorker(10, func(worker, i int) error {
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := NewWithPool(ctx, NewPool(2)).ForEachWorker(4, func(worker, i int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v", err)
	}
}
