package preprocess

import (
	"encoding/binary"
	"fmt"
	"math"

	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/resbit"
)

// ColKind classifies how a column travels through the pipeline.
type ColKind byte

const (
	// KindCatModel is a categorical column predicted through the shared
	// softmax output layer.
	KindCatModel ColKind = iota
	// KindBinary is a two-valued categorical column predicted by a single
	// sigmoid node, with XOR-materialized failures.
	KindBinary
	// KindNumQuant is a numeric column quantized under an error threshold
	// and regressed with MSE.
	KindNumQuant
	// KindNumDict is a lossless numeric column with few distinct values,
	// regressed against the value's rank in a sorted dictionary.
	KindNumDict
	// KindFallbackCat is a high-cardinality categorical column excluded
	// from the model and stored directly (paper §4.1).
	KindFallbackCat
	// KindFallbackNum is a lossless numeric column with too many distinct
	// values to dictionary-encode; stored directly.
	KindFallbackNum
	// KindNumContinuous is the paper's §4.2 alternative to quantization
	// (the Fig. 7 "no quantization" ablation): the model regresses the
	// scaled value directly, predictions within the threshold are accepted
	// as-is, and mispredictions are materialized at full precision.
	KindNumContinuous
	// KindCatResidual is a high-cardinality categorical column kept inside
	// the model as ResDigits stacked base-ModelCard residual digits
	// (ResBit): the dictionary rank factors into small digits, each with
	// its own softmax head and its own rank-of-prediction failure stream.
	// Digits recompose exactly, so round-trips stay lossless and the
	// recomposed rank keeps ordinary dictionary (and zone-map) semantics.
	KindCatResidual
)

// String names the kind.
func (k ColKind) String() string {
	switch k {
	case KindCatModel:
		return "categorical"
	case KindBinary:
		return "binary"
	case KindNumQuant:
		return "quantized"
	case KindNumDict:
		return "numdict"
	case KindFallbackCat:
		return "fallback-categorical"
	case KindFallbackNum:
		return "fallback-numeric"
	case KindNumContinuous:
		return "continuous"
	case KindCatResidual:
		return "residual"
	default:
		return fmt.Sprintf("colkind(%d)", byte(k))
	}
}

// InModel reports whether the column participates in the autoencoder.
func (k ColKind) InModel() bool { return k != KindFallbackCat && k != KindFallbackNum }

// Options controls preprocessing decisions.
type Options struct {
	// MaxModelCardinality caps the categorical alphabet the model predicts;
	// rarer values become escape failures. The shared output layer is sized
	// by the largest per-column alphabet, so this bounds model size.
	MaxModelCardinality int
	// SkewCoverage is the fraction of a column's occurrences the model
	// alphabet must cover before rarer values are dropped from training.
	SkewCoverage float64
	// FallbackMaxDistinct excludes categorical columns with more distinct
	// values than this from the model entirely.
	FallbackMaxDistinct int
	// FallbackDistinctRatio excludes categorical columns whose distinct
	// count exceeds this fraction of the row count (near-unique keys).
	FallbackDistinctRatio float64
	// MaxValueDictLen bounds the distinct count for lossless numeric
	// dictionary handling; above it the column falls back to direct storage.
	MaxValueDictLen int
	// NoQuantization disables error-threshold quantization: lossy numeric
	// columns become KindNumContinuous (the paper's Fig. 7 ablation).
	NoQuantization bool
	// ResidualCats routes categorical columns whose alphabet exceeds
	// MaxModelCardinality through residual digits (KindCatResidual)
	// instead of into the colfile fallback. Near-unique columns (see
	// FallbackDistinctRatio) still fall back: a column with no value reuse
	// has no structure for the model to learn.
	ResidualCats bool
	// ResidualHeadroom inflates the cardinality used to choose a residual
	// digit layout, as a multiplier on the observed distinct count.
	// Residual digits have no escape path, so a plan fitted on a pilot
	// sample — the streaming writer trains on its first chunk — needs the
	// layout to cover alphabets later batches may grow. Values <= 1 size
	// the layout exactly (the in-memory compressor sees the whole table
	// and needs no slack); NewStream and NewArchiveWriter default it to 2.
	ResidualHeadroom float64
}

// DefaultOptions mirrors the behaviour described in the paper.
func DefaultOptions() Options {
	return Options{
		MaxModelCardinality:   256,
		SkewCoverage:          0.95,
		FallbackMaxDistinct:   65536,
		FallbackDistinctRatio: 0.5,
		MaxValueDictLen:       4096,
	}
}

// ColPlan is the per-column preprocessing decision plus fitted parameters.
type ColPlan struct {
	Kind      ColKind
	Threshold float64 // numeric error threshold (fraction of range), 0 = lossless

	Dict   *Dictionary  // categorical kinds
	VDict  *ValueDict   // KindNumDict
	Scaler MinMaxScaler // KindNumQuant
	Quant  Quantizer    // KindNumQuant

	// ModelCard is the size of the alphabet the model predicts for this
	// column: dictionary prefix size for categoricals, bucket count for
	// quantized numerics, value-dict size for KindNumDict, 2 for binary,
	// and the per-digit base for KindCatResidual.
	ModelCard int

	// ResDigits is the residual digit count for KindCatResidual (0
	// otherwise): the column occupies ResDigits consecutive model heads,
	// each over a base-ModelCard alphabet.
	ResDigits int
}

// ResLayout returns the residual digit layout of a KindCatResidual column.
func (cp *ColPlan) ResLayout() resbit.Layout {
	return resbit.Layout{Base: cp.ModelCard, Digits: cp.ResDigits}
}

// Plan is a fitted preprocessor for one table schema.
type Plan struct {
	Schema *dataset.Schema
	Cols   []ColPlan
}

// Fit analyses the table and chooses a per-column plan. thresholds gives the
// relative error threshold for each schema column (ignored for categorical
// columns; 0 means lossless).
func Fit(t *dataset.Table, opts Options, thresholds []float64) (*Plan, error) {
	if len(thresholds) != 0 && len(thresholds) != t.Schema.NumColumns() {
		return nil, fmt.Errorf("preprocess: %d thresholds for %d columns", len(thresholds), t.Schema.NumColumns())
	}
	p := &Plan{Schema: t.Schema, Cols: make([]ColPlan, t.Schema.NumColumns())}
	for i, c := range t.Schema.Columns {
		thr := 0.0
		if len(thresholds) > 0 {
			thr = thresholds[i]
		}
		if thr < 0 || thr > 0.5 {
			return nil, fmt.Errorf("preprocess: column %q threshold %v outside [0, 0.5]", c.Name, thr)
		}
		var cp ColPlan
		var err error
		if c.Type == dataset.Categorical {
			cp, err = fitCategorical(t.Str[i], opts)
		} else {
			cp, err = fitNumeric(t.Num[i], opts, thr)
		}
		if err != nil {
			return nil, fmt.Errorf("preprocess: column %q: %w", c.Name, err)
		}
		p.Cols[i] = cp
	}
	return p, nil
}

func fitCategorical(col []string, opts Options) (ColPlan, error) {
	dict := BuildDictionary(col)
	d := dict.Len()
	nearUnique := len(col) > 0 && float64(d) > opts.FallbackDistinctRatio*float64(len(col))
	if opts.ResidualCats && !nearUnique && d > opts.MaxModelCardinality {
		// Residual digits: the whole alphabet enters the model as stacked
		// small heads, rescuing both the escape-heavy range above
		// MaxModelCardinality and the outright fallback range above
		// FallbackMaxDistinct. Near-unique columns stay fallback — with no
		// value reuse there is nothing for the model to learn.
		target := d
		if opts.ResidualHeadroom > 1 {
			target = int(math.Ceil(float64(d) * opts.ResidualHeadroom))
		}
		l := resbit.For(target)
		return ColPlan{Kind: KindCatResidual, Dict: dict, ModelCard: l.Base, ResDigits: l.Digits}, nil
	}
	if d > opts.FallbackMaxDistinct || nearUnique {
		return ColPlan{Kind: KindFallbackCat, Dict: dict}, nil
	}
	if d == 2 {
		return ColPlan{Kind: KindBinary, Dict: dict, ModelCard: 2}, nil
	}
	card := d
	if card > opts.MaxModelCardinality {
		card = opts.MaxModelCardinality
	}
	// Skew handling: shrink the alphabet to the smallest frequency-sorted
	// prefix covering SkewCoverage of occurrences (codes are
	// frequency-ordered, so a prefix is exactly the most frequent values).
	if opts.SkewCoverage > 0 && opts.SkewCoverage < 1 && len(col) > 0 {
		counts := make([]int, d)
		for _, v := range col {
			c, _ := dict.Code(v)
			counts[c]++
		}
		covered, need := 0, int(math.Ceil(opts.SkewCoverage*float64(len(col))))
		for k := 0; k < card; k++ {
			covered += counts[k]
			if covered >= need {
				card = k + 1
				break
			}
		}
	}
	if card < 1 {
		card = 1
	}
	return ColPlan{Kind: KindCatModel, Dict: dict, ModelCard: card}, nil
}

func fitNumeric(col []float64, opts Options, thr float64) (ColPlan, error) {
	for _, v := range col {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ColPlan{}, fmt.Errorf("non-finite value %v", v)
		}
	}
	if thr > 0 {
		scaler := FitMinMax(col)
		if opts.NoQuantization {
			return ColPlan{Kind: KindNumContinuous, Threshold: thr, Scaler: scaler}, nil
		}
		q, err := NewQuantizer(thr)
		if err != nil {
			return ColPlan{}, err
		}
		return ColPlan{Kind: KindNumQuant, Threshold: thr, Scaler: scaler, Quant: q, ModelCard: q.NumBucket}, nil
	}
	vd := BuildValueDict(col)
	if vd.Len() <= opts.MaxValueDictLen {
		return ColPlan{Kind: KindNumDict, VDict: vd, ModelCard: vd.Len()}, nil
	}
	return ColPlan{Kind: KindFallbackNum}, nil
}

// NumModelColumns counts columns that participate in the model.
func (p *Plan) NumModelColumns() int {
	n := 0
	for _, c := range p.Cols {
		if c.Kind.InModel() {
			n++
		}
	}
	return n
}

// ModelColumnIndexes returns schema indexes of model columns in order.
func (p *Plan) ModelColumnIndexes() []int {
	var out []int
	for i, c := range p.Cols {
		if c.Kind.InModel() {
			out = append(out, i)
		}
	}
	return out
}

// Encode maps a model column's raw values to its integer code stream:
// dictionary codes, bucket indexes, or value ranks.
func (p *Plan) Encode(t *dataset.Table, col int) ([]int, error) {
	cp := &p.Cols[col]
	switch cp.Kind {
	case KindCatModel, KindBinary, KindFallbackCat, KindCatResidual:
		return cp.Dict.Encode(t.Str[col])
	case KindNumQuant:
		out := make([]int, t.NumRows())
		for r, v := range t.Num[col] {
			out[r] = cp.Quant.Bucket(cp.Scaler.Scale(v))
		}
		return out, nil
	case KindNumDict:
		out := make([]int, t.NumRows())
		for r, v := range t.Num[col] {
			rank, ok := cp.VDict.Rank(v)
			if !ok {
				return nil, fmt.Errorf("preprocess: value %v not in value dictionary of column %d", v, col)
			}
			out[r] = rank
		}
		return out, nil
	default:
		return nil, fmt.Errorf("preprocess: column %d kind %v has no integer encoding", col, cp.Kind)
	}
}

// DecodeColumn reconstructs a column's values from its integer codes into
// the destination table column.
func (p *Plan) DecodeColumn(dst *dataset.Table, col int, codes []int) error {
	cp := &p.Cols[col]
	switch cp.Kind {
	case KindCatModel, KindBinary, KindFallbackCat, KindCatResidual:
		vals, err := cp.Dict.Decode(codes)
		if err != nil {
			return err
		}
		dst.Str[col] = vals
	case KindNumQuant:
		vals := make([]float64, len(codes))
		for i, c := range codes {
			if c < 0 || c >= cp.Quant.NumBucket {
				return fmt.Errorf("preprocess: bucket %d outside [0,%d)", c, cp.Quant.NumBucket)
			}
			vals[i] = cp.Scaler.Unscale(cp.Quant.Midpoint(c))
		}
		dst.Num[col] = vals
	case KindNumDict:
		vals := make([]float64, len(codes))
		for i, c := range codes {
			if c < 0 || c >= cp.VDict.Len() {
				return fmt.Errorf("preprocess: rank %d outside [0,%d)", c, cp.VDict.Len())
			}
			vals[i] = cp.VDict.Value(c)
		}
		dst.Num[col] = vals
	default:
		return fmt.Errorf("preprocess: column %d kind %v has no integer decoding", col, cp.Kind)
	}
	return nil
}

// InputValue maps a column's integer code to the [0,1] value fed to the
// model's input node for that column (paper §5.3: one input node per column
// regardless of type).
func (p *Plan) InputValue(col, code int) float64 {
	cp := &p.Cols[col]
	switch cp.Kind {
	case KindCatModel:
		c := code
		if c >= cp.ModelCard {
			c = cp.ModelCard - 1 // rare value: clamp for the input side
		}
		if cp.ModelCard <= 1 {
			return 0
		}
		return float64(c) / float64(cp.ModelCard-1)
	case KindBinary:
		return float64(code)
	case KindNumQuant:
		return cp.Quant.Midpoint(code)
	case KindNumDict:
		if cp.VDict.Len() <= 1 {
			return 0
		}
		return float64(code) / float64(cp.VDict.Len()-1)
	default:
		panic(fmt.Sprintf("preprocess: InputValue on %v column", cp.Kind))
	}
}

// ScaleColumn returns a numeric column min-max scaled to [0,1], for
// KindNumContinuous columns (which have no integer encoding).
func (p *Plan) ScaleColumn(t *dataset.Table, col int) []float64 {
	cp := &p.Cols[col]
	out := make([]float64, t.NumRows())
	for r, v := range t.Num[col] {
		out[r] = cp.Scaler.Scale(v)
	}
	return out
}

// Tolerances returns the per-schema-column absolute error tolerances implied
// by the plan: threshold × range for lossy columns, 0 elsewhere. Used to
// audit the error-bound guarantee after decompression.
func (p *Plan) Tolerances() []float64 {
	out := make([]float64, len(p.Cols))
	for i, c := range p.Cols {
		if c.Kind == KindNumQuant || c.Kind == KindNumContinuous {
			out[i] = c.Threshold * c.Scaler.Range()
		}
	}
	return out
}

// AppendBinary serializes the plan (schema + per-column parameters).
func (p *Plan) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.Cols)))
	for i, c := range p.Schema.Columns {
		dst = binary.AppendUvarint(dst, uint64(len(c.Name)))
		dst = append(dst, c.Name...)
		dst = append(dst, byte(c.Type))
		cp := &p.Cols[i]
		dst = append(dst, byte(cp.Kind))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cp.Threshold))
		dst = binary.AppendUvarint(dst, uint64(cp.ModelCard))
		switch cp.Kind {
		case KindCatModel, KindBinary:
			dst = cp.Dict.AppendBinary(dst)
		case KindCatResidual:
			// Residual dictionaries hold the column's full distinct set, so
			// they travel DEFLATE-packed rather than raw like model alphabets.
			dst = cp.Dict.appendPacked(dst)
			dst = binary.AppendUvarint(dst, uint64(cp.ResDigits))
		case KindFallbackCat:
			// Fallback columns store raw values in the data section; the
			// dictionary is a fitting artifact and is not archived.
		case KindNumQuant, KindNumContinuous:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cp.Scaler.Min))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cp.Scaler.Max))
		case KindNumDict:
			dst = cp.VDict.AppendBinary(dst)
		}
	}
	return dst
}

// DecodePlan parses a plan serialized by AppendBinary, returning the plan
// and the number of bytes consumed.
func DecodePlan(buf []byte) (*Plan, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("%w: missing column count", ErrCorrupt)
	}
	pos := sz
	if n > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("%w: column count %d exceeds buffer", ErrCorrupt, n)
	}
	p := &Plan{Schema: &dataset.Schema{Columns: make([]dataset.Column, n)}, Cols: make([]ColPlan, n)}
	for i := range p.Cols {
		l, sz := binary.Uvarint(buf[pos:])
		if sz <= 0 || uint64(len(buf)-pos-sz) < l {
			return nil, 0, fmt.Errorf("%w: truncated column name", ErrCorrupt)
		}
		pos += sz
		p.Schema.Columns[i].Name = string(buf[pos : pos+int(l)])
		pos += int(l)
		if len(buf)-pos < 2 {
			return nil, 0, fmt.Errorf("%w: truncated column header", ErrCorrupt)
		}
		p.Schema.Columns[i].Type = dataset.ColumnType(buf[pos])
		cp := &p.Cols[i]
		cp.Kind = ColKind(buf[pos+1])
		pos += 2
		if len(buf)-pos < 8 {
			return nil, 0, fmt.Errorf("%w: truncated threshold", ErrCorrupt)
		}
		cp.Threshold = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
		card, sz := binary.Uvarint(buf[pos:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("%w: truncated model cardinality", ErrCorrupt)
		}
		cp.ModelCard = int(card)
		pos += sz
		switch cp.Kind {
		case KindCatModel, KindBinary:
			d, used, err := DecodeDictionary(buf[pos:])
			if err != nil {
				return nil, 0, err
			}
			cp.Dict = d
			pos += used
		case KindCatResidual:
			d, used, err := decodePackedDictionary(buf[pos:])
			if err != nil {
				return nil, 0, err
			}
			cp.Dict = d
			pos += used
			rd, sz := binary.Uvarint(buf[pos:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("%w: truncated residual digit count", ErrCorrupt)
			}
			cp.ResDigits = int(rd)
			pos += sz
			// An invalid layout would feed garbage head widths into the
			// model wiring; a layout too small for the dictionary could
			// never have been written by the encoder.
			if l := cp.ResLayout(); !l.Valid() || l.Max() < cp.Dict.Len() {
				return nil, 0, fmt.Errorf("%w: residual layout base=%d digits=%d cannot cover %d values",
					ErrCorrupt, cp.ModelCard, cp.ResDigits, cp.Dict.Len())
			}
		case KindFallbackCat:
			// no archived parameters
		case KindNumQuant, KindNumContinuous:
			if len(buf)-pos < 16 {
				return nil, 0, fmt.Errorf("%w: truncated scaler", ErrCorrupt)
			}
			cp.Scaler.Min = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
			cp.Scaler.Max = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos+8:]))
			pos += 16
			if cp.Kind == KindNumQuant {
				q, err := NewQuantizer(cp.Threshold)
				if err != nil {
					return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
				cp.Quant = q
			}
		case KindNumDict:
			vd, used, err := DecodeValueDict(buf[pos:])
			if err != nil {
				return nil, 0, err
			}
			cp.VDict = vd
			pos += used
		case KindFallbackNum:
			// no parameters
		default:
			return nil, 0, fmt.Errorf("%w: unknown column kind %d", ErrCorrupt, cp.Kind)
		}
	}
	return p, pos, nil
}
