package preprocess

import (
	"math/rand"
	"testing"

	"deepsqueeze/internal/dataset"
)

func TestNoQuantizationProducesContinuous(t *testing.T) {
	schema := dataset.NewSchema(
		dataset.Column{Name: "n", Type: dataset.Numeric},
	)
	tb := dataset.NewTable(schema, 10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		tb.AppendRow(nil, []float64{rng.Float64() * 100})
	}
	opts := DefaultOptions()
	opts.NoQuantization = true
	plan, err := Fit(tb, opts, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	cp := plan.Cols[0]
	if cp.Kind != KindNumContinuous {
		t.Fatalf("kind = %v", cp.Kind)
	}
	if !cp.Kind.InModel() {
		t.Fatal("continuous column must be a model column")
	}
	// ScaleColumn must map into [0,1].
	for _, v := range plan.ScaleColumn(tb, 0) {
		if v < 0 || v > 1 {
			t.Fatalf("scaled value %v outside [0,1]", v)
		}
	}
	// Tolerance is threshold × range.
	tol := plan.Tolerances()
	want := 0.1 * cp.Scaler.Range()
	if tol[0] != want {
		t.Fatalf("tolerance = %v, want %v", tol[0], want)
	}
	// Continuous columns have no integer encoding.
	if _, err := plan.Encode(tb, 0); err == nil {
		t.Fatal("Encode on continuous column should fail")
	}
	// Serialization round trip preserves kind and scaler.
	buf := plan.AppendBinary(nil)
	got, used, err := DecodePlan(buf)
	if err != nil || used != len(buf) {
		t.Fatalf("DecodePlan: %v", err)
	}
	gc := got.Cols[0]
	if gc.Kind != KindNumContinuous || gc.Scaler != cp.Scaler || gc.Threshold != cp.Threshold {
		t.Fatalf("round trip: %+v vs %+v", gc, cp)
	}
	// Lossless columns are unaffected by NoQuantization.
	plan0, err := Fit(tb, opts, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if plan0.Cols[0].Kind == KindNumContinuous {
		t.Fatal("threshold 0 must not produce a continuous column")
	}
}

func TestFallbackDictNotSerialized(t *testing.T) {
	schema := dataset.NewSchema(dataset.Column{Name: "id", Type: dataset.Categorical})
	tb := dataset.NewTable(schema, 100)
	for i := 0; i < 100; i++ {
		tb.AppendRow([]string{string(rune('a'+i%26)) + string(rune('0'+i/26))}, nil)
	}
	opts := DefaultOptions()
	opts.FallbackDistinctRatio = 0.1 // force fallback
	plan, err := Fit(tb, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cols[0].Kind != KindFallbackCat {
		t.Fatalf("kind = %v", plan.Cols[0].Kind)
	}
	buf := plan.AppendBinary(nil)
	// A serialized fallback column must not carry its dictionary: the plan
	// bytes should stay tiny even though the column has many values.
	if len(buf) > 96 {
		t.Fatalf("fallback plan serialized to %d bytes; dictionary leaked", len(buf))
	}
	got, _, err := DecodePlan(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cols[0].Kind != KindFallbackCat || got.Cols[0].Dict != nil {
		t.Fatalf("decoded fallback column: %+v", got.Cols[0])
	}
}

func TestColKindStrings(t *testing.T) {
	for k, want := range map[ColKind]string{
		KindCatModel:      "categorical",
		KindBinary:        "binary",
		KindNumQuant:      "quantized",
		KindNumDict:       "numdict",
		KindFallbackCat:   "fallback-categorical",
		KindFallbackNum:   "fallback-numeric",
		KindNumContinuous: "continuous",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if KindFallbackCat.InModel() || KindFallbackNum.InModel() {
		t.Error("fallback kinds must not be model columns")
	}
	if !KindNumContinuous.InModel() || !KindCatModel.InModel() {
		t.Error("model kinds misclassified")
	}
}
