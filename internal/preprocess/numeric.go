package preprocess

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// MinMaxScaler normalizes a numeric column to [0,1] (paper §4.2). A
// degenerate column (max == min) scales every value to 0.
type MinMaxScaler struct {
	Min, Max float64
}

// FitMinMax computes the scaler for a column.
func FitMinMax(column []float64) MinMaxScaler {
	if len(column) == 0 {
		return MinMaxScaler{}
	}
	s := MinMaxScaler{Min: column[0], Max: column[0]}
	for _, v := range column[1:] {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	return s
}

// Range returns max-min.
func (s MinMaxScaler) Range() float64 { return s.Max - s.Min }

// Scale maps v into [0,1].
func (s MinMaxScaler) Scale(v float64) float64 {
	if s.Max == s.Min {
		return 0
	}
	return (v - s.Min) / (s.Max - s.Min)
}

// Unscale inverts Scale.
func (s MinMaxScaler) Unscale(u float64) float64 {
	return s.Min + u*(s.Max-s.Min)
}

// Quantizer buckets a [0,1]-scaled value so that reconstructing the bucket
// midpoint stays within the user's error threshold: with threshold t
// (a fraction of the column range), bucket width is 2t and the midpoint of
// any bucket is at most t away from every value in it (paper §4.2).
type Quantizer struct {
	Threshold float64 // relative error threshold t, 0 < t
	NumBucket int
}

// NewQuantizer builds a quantizer for threshold t in (0, 0.5].
func NewQuantizer(t float64) (Quantizer, error) {
	if t <= 0 || t > 0.5 {
		return Quantizer{}, fmt.Errorf("preprocess: quantizer threshold %v outside (0, 0.5]", t)
	}
	n := int(math.Ceil(1 / (2 * t)))
	return Quantizer{Threshold: t, NumBucket: n}, nil
}

// Bucket maps a scaled value u ∈ [0,1] to its bucket index.
func (q Quantizer) Bucket(u float64) int {
	idx := int(u / (2 * q.Threshold))
	if idx >= q.NumBucket {
		idx = q.NumBucket - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

// Midpoint returns the scaled-space midpoint of bucket idx, clamped to 1 so
// a final narrow bucket never reconstructs outside the data range by more
// than the threshold.
func (q Quantizer) Midpoint(idx int) float64 {
	m := (float64(idx) + 0.5) * 2 * q.Threshold
	if m > 1 {
		m = 1
	}
	return m
}

// ValueDict supports lossless handling of numeric columns with few distinct
// values (including prequantized data like the paper's Census variant and
// integer sensor readings at a 0% threshold). Distinct values are sorted
// ascending so the model's regression output maps to a *rank*, preserving
// the closeness property the delta-coded failures rely on.
type ValueDict struct {
	Values []float64 // sorted ascending, distinct
	index  map[float64]int
}

// BuildValueDict constructs a ValueDict from a column.
func BuildValueDict(column []float64) *ValueDict {
	seen := make(map[float64]struct{})
	for _, v := range column {
		seen[v] = struct{}{}
	}
	values := make([]float64, 0, len(seen))
	for v := range seen {
		values = append(values, v)
	}
	sort.Float64s(values)
	return newValueDict(values)
}

func newValueDict(values []float64) *ValueDict {
	idx := make(map[float64]int, len(values))
	for i, v := range values {
		idx[v] = i
	}
	return &ValueDict{Values: values, index: idx}
}

// Len returns the number of distinct values.
func (d *ValueDict) Len() int { return len(d.Values) }

// Rank returns the rank of v; the boolean reports membership.
func (d *ValueDict) Rank(v float64) (int, bool) {
	r, ok := d.index[v]
	return r, ok
}

// Value returns the value at rank r.
func (d *ValueDict) Value(r int) float64 { return d.Values[r] }

// AppendBinary serializes the ValueDict.
func (d *ValueDict) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(d.Values)))
	for _, v := range d.Values {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeValueDict parses a ValueDict and returns bytes consumed.
func DecodeValueDict(buf []byte) (*ValueDict, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("%w: missing value dict count", ErrCorrupt)
	}
	pos := sz
	if uint64(len(buf)-pos) < n*8 {
		return nil, 0, fmt.Errorf("%w: value dict overruns buffer", ErrCorrupt)
	}
	values := make([]float64, n)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
	}
	for i := 1; i < len(values); i++ {
		if !(values[i] > values[i-1]) {
			return nil, 0, fmt.Errorf("%w: value dict not strictly sorted", ErrCorrupt)
		}
	}
	return newValueDict(values), pos, nil
}
