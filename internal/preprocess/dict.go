// Package preprocess implements the first stage of DeepSqueeze's pipeline
// (paper §4): dictionary encoding for categorical columns, min-max scaling
// and error-bounded quantization for numerical columns, skew-aware model
// alphabets, and high-cardinality fallback detection. Every transformation
// is invertible (exactly for categorical data, within the error bound for
// quantized numerics) and serializable into the archive header.
package preprocess

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// ErrCorrupt is returned when serialized preprocessing metadata fails
// validation.
var ErrCorrupt = errors.New("preprocess: corrupt metadata")

// Dictionary maps distinct categorical values to dense integer codes.
// Codes are assigned by descending frequency (ties broken lexicographically)
// so that code magnitude correlates with rarity — the skew-handling and
// rank-coding stages both rely on "small code = frequent value".
type Dictionary struct {
	values []string
	codes  map[string]int
}

// BuildDictionary constructs a dictionary from a column of values.
func BuildDictionary(column []string) *Dictionary {
	freq := make(map[string]int)
	for _, v := range column {
		freq[v]++
	}
	values := make([]string, 0, len(freq))
	for v := range freq {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool {
		if freq[values[i]] != freq[values[j]] {
			return freq[values[i]] > freq[values[j]]
		}
		return values[i] < values[j]
	})
	return newDictionary(values)
}

func newDictionary(values []string) *Dictionary {
	codes := make(map[string]int, len(values))
	for i, v := range values {
		codes[v] = i
	}
	return &Dictionary{values: values, codes: codes}
}

// Len returns the number of distinct values.
func (d *Dictionary) Len() int { return len(d.values) }

// Code returns the code for v; the boolean reports membership.
func (d *Dictionary) Code(v string) (int, bool) {
	c, ok := d.codes[v]
	return c, ok
}

// Value returns the value for code c.
func (d *Dictionary) Value(c int) string { return d.values[c] }

// Encode maps a column to codes. Every value must be in the dictionary.
func (d *Dictionary) Encode(column []string) ([]int, error) {
	out := make([]int, len(column))
	for i, v := range column {
		c, ok := d.codes[v]
		if !ok {
			return nil, fmt.Errorf("preprocess: value %q not in dictionary", v)
		}
		out[i] = c
	}
	return out, nil
}

// Decode maps codes back to values.
func (d *Dictionary) Decode(codes []int) ([]string, error) {
	out := make([]string, len(codes))
	for i, c := range codes {
		if c < 0 || c >= len(d.values) {
			return nil, fmt.Errorf("preprocess: code %d outside dictionary of %d", c, len(d.values))
		}
		out[i] = d.values[c]
	}
	return out, nil
}

// AppendBinary serializes the dictionary: count varint, then
// length-prefixed strings in code order.
func (d *Dictionary) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(d.values)))
	for _, v := range d.values {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// appendPacked serializes the dictionary with its body DEFLATE-compressed:
// raw-size varint, frame-size varint, then the compressed AppendBinary form.
// Residual-digit plans use this shape — their dictionaries carry every
// distinct value of a high-cardinality column, orders of magnitude larger
// than a model alphabet, and the frequency-sorted value strings share long
// prefixes that DEFLATE folds away.
func (d *Dictionary) appendPacked(dst []byte) []byte {
	raw := d.AppendBinary(nil)
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		panic(err) // only reachable with an invalid level constant
	}
	zw.Write(raw)
	zw.Close()
	dst = binary.AppendUvarint(dst, uint64(len(raw)))
	dst = binary.AppendUvarint(dst, uint64(buf.Len()))
	return append(dst, buf.Bytes()...)
}

// decodePackedDictionary parses a dictionary serialized by appendPacked and
// returns it with the number of bytes consumed.
func decodePackedDictionary(buf []byte) (*Dictionary, int, error) {
	rawLen, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("%w: missing packed dictionary size", ErrCorrupt)
	}
	pos := sz
	frameLen, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("%w: missing packed dictionary frame size", ErrCorrupt)
	}
	pos += sz
	if frameLen > uint64(len(buf)-pos) {
		return nil, 0, fmt.Errorf("%w: packed dictionary overruns buffer", ErrCorrupt)
	}
	// DEFLATE expands at most ~1032:1, so a raw size past that bound cannot
	// be honest — reject it before it becomes an allocation amplifier.
	if rawLen > (frameLen+64)*1100 {
		return nil, 0, fmt.Errorf("%w: packed dictionary claims %d raw bytes from a %d-byte frame", ErrCorrupt, rawLen, frameLen)
	}
	zr := flate.NewReader(bytes.NewReader(buf[pos : pos+int(frameLen)]))
	raw := make([]byte, rawLen)
	if _, err := io.ReadFull(zr, raw); err != nil {
		return nil, 0, fmt.Errorf("%w: packed dictionary: %v", ErrCorrupt, err)
	}
	var one [1]byte
	if n, _ := zr.Read(one[:]); n != 0 {
		return nil, 0, fmt.Errorf("%w: packed dictionary longer than declared", ErrCorrupt)
	}
	d, used, err := DecodeDictionary(raw)
	if err != nil {
		return nil, 0, err
	}
	if used != len(raw) {
		return nil, 0, fmt.Errorf("%w: trailing packed dictionary bytes", ErrCorrupt)
	}
	return d, pos + int(frameLen), nil
}

// DecodeDictionary parses a dictionary serialized by AppendBinary and
// returns it with the number of bytes consumed.
func DecodeDictionary(buf []byte) (*Dictionary, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("%w: missing dictionary count", ErrCorrupt)
	}
	pos := sz
	if n > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("%w: dictionary count %d exceeds buffer", ErrCorrupt, n)
	}
	values := make([]string, n)
	for i := range values {
		l, sz := binary.Uvarint(buf[pos:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("%w: truncated dictionary entry", ErrCorrupt)
		}
		pos += sz
		if uint64(len(buf)-pos) < l {
			return nil, 0, fmt.Errorf("%w: dictionary entry overruns buffer", ErrCorrupt)
		}
		values[i] = string(buf[pos : pos+int(l)])
		pos += int(l)
	}
	return newDictionary(values), pos, nil
}
