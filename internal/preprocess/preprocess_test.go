package preprocess

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"deepsqueeze/internal/dataset"
)

func TestDictionaryFrequencyOrder(t *testing.T) {
	col := []string{"b", "a", "b", "c", "b", "a"}
	d := BuildDictionary(col)
	// b (3) → 0, a (2) → 1, c (1) → 2
	for v, want := range map[string]int{"b": 0, "a": 1, "c": 2} {
		if got, ok := d.Code(v); !ok || got != want {
			t.Errorf("Code(%q) = %d,%v want %d", v, got, ok, want)
		}
	}
	if d.Value(0) != "b" {
		t.Errorf("Value(0) = %q", d.Value(0))
	}
}

func TestDictionaryTieBreakLexicographic(t *testing.T) {
	d := BuildDictionary([]string{"z", "a", "m"})
	if d.Value(0) != "a" || d.Value(1) != "m" || d.Value(2) != "z" {
		t.Fatalf("ties not lexicographic: %v %v %v", d.Value(0), d.Value(1), d.Value(2))
	}
}

func TestDictionaryEncodeDecode(t *testing.T) {
	col := []string{"x", "y", "x", "z"}
	d := BuildDictionary(col)
	codes, err := d.Encode(col)
	if err != nil {
		t.Fatal(err)
	}
	back, err := d.Decode(codes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, col) {
		t.Fatalf("round trip %v != %v", back, col)
	}
	if _, err := d.Encode([]string{"missing"}); err == nil {
		t.Fatal("unknown value accepted")
	}
	if _, err := d.Decode([]int{99}); err == nil {
		t.Fatal("out-of-range code accepted")
	}
}

func TestDictionarySerialization(t *testing.T) {
	d := BuildDictionary([]string{"aa", "", "aa", "b\x00c"})
	buf := d.AppendBinary(nil)
	got, used, err := DecodeDictionary(buf)
	if err != nil || used != len(buf) {
		t.Fatalf("decode: %v, used %d/%d", err, used, len(buf))
	}
	if got.Len() != d.Len() {
		t.Fatalf("len %d != %d", got.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if got.Value(i) != d.Value(i) {
			t.Fatalf("value %d: %q != %q", i, got.Value(i), d.Value(i))
		}
	}
	if _, _, err := DecodeDictionary(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated dictionary accepted")
	}
}

func TestMinMaxScaler(t *testing.T) {
	s := FitMinMax([]float64{-10, 0, 30})
	if s.Min != -10 || s.Max != 30 {
		t.Fatalf("fit = %+v", s)
	}
	if got := s.Scale(-10); got != 0 {
		t.Fatalf("Scale(min) = %v", got)
	}
	if got := s.Scale(30); got != 1 {
		t.Fatalf("Scale(max) = %v", got)
	}
	if got := s.Unscale(s.Scale(17.5)); math.Abs(got-17.5) > 1e-12 {
		t.Fatalf("Unscale∘Scale = %v", got)
	}
	deg := FitMinMax([]float64{5, 5})
	if deg.Scale(5) != 0 || deg.Unscale(0) != 5 {
		t.Fatal("degenerate scaler wrong")
	}
}

func TestQuantizerPaperExample(t *testing.T) {
	// Paper §4.2: range [0,100], threshold 10% → midpoints {10,30,50,70,90}.
	s := MinMaxScaler{Min: 0, Max: 100}
	q, err := NewQuantizer(0.10)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumBucket != 5 {
		t.Fatalf("NumBucket = %d, want 5", q.NumBucket)
	}
	wantMid := []float64{10, 30, 50, 70, 90}
	for i, want := range wantMid {
		if got := s.Unscale(q.Midpoint(i)); math.Abs(got-want) > 1e-9 {
			t.Errorf("midpoint %d = %v, want %v", i, got, want)
		}
	}
	for v, want := range map[float64]int{0: 0, 19.9: 0, 20: 1, 55: 2, 99: 4, 100: 4} {
		if got := q.Bucket(s.Scale(v)); got != want {
			t.Errorf("Bucket(%v) = %d, want %d", v, got, want)
		}
	}
}

// Property: the quantizer's reconstruction error never exceeds
// threshold × range (the paper's hard guarantee).
func TestQuantizerErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		thr := 0.001 + rng.Float64()*0.499
		q, err := NewQuantizer(thr)
		if err != nil {
			return false
		}
		lo := rng.NormFloat64() * 100
		hi := lo + rng.Float64()*1000 + 1e-6
		s := MinMaxScaler{Min: lo, Max: hi}
		for i := 0; i < 200; i++ {
			v := lo + rng.Float64()*(hi-lo)
			rec := s.Unscale(q.Midpoint(q.Bucket(s.Scale(v))))
			if math.Abs(rec-v) > thr*(hi-lo)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizerRejectsBadThreshold(t *testing.T) {
	for _, thr := range []float64{0, -0.1, 0.6} {
		if _, err := NewQuantizer(thr); err == nil {
			t.Errorf("threshold %v accepted", thr)
		}
	}
}

func TestValueDict(t *testing.T) {
	vd := BuildValueDict([]float64{3, 1, 3, 2, 1})
	if vd.Len() != 3 || vd.Value(0) != 1 || vd.Value(2) != 3 {
		t.Fatalf("value dict wrong: %+v", vd.Values)
	}
	if r, ok := vd.Rank(2); !ok || r != 1 {
		t.Fatalf("Rank(2) = %d,%v", r, ok)
	}
	if _, ok := vd.Rank(5); ok {
		t.Fatal("missing value found")
	}
	buf := vd.AppendBinary(nil)
	got, used, err := DecodeValueDict(buf)
	if err != nil || used != len(buf) || !reflect.DeepEqual(got.Values, vd.Values) {
		t.Fatalf("serialization: %v %d %v", err, used, got)
	}
	// Unsorted dict must be rejected.
	bad := newValueDict([]float64{2, 1})
	if _, _, err := DecodeValueDict(bad.AppendBinary(nil)); err == nil {
		t.Fatal("unsorted value dict accepted")
	}
}

func mixedTable(rows int) *dataset.Table {
	schema := dataset.NewSchema(
		dataset.Column{Name: "cat", Type: dataset.Categorical},
		dataset.Column{Name: "bin", Type: dataset.Categorical},
		dataset.Column{Name: "key", Type: dataset.Categorical},
		dataset.Column{Name: "reading", Type: dataset.Numeric},
		dataset.Column{Name: "grade", Type: dataset.Numeric},
	)
	tb := dataset.NewTable(schema, rows)
	rng := rand.New(rand.NewSource(7))
	cats := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < rows; i++ {
		tb.AppendRow(
			[]string{
				cats[rng.Intn(len(cats))],
				fmt.Sprintf("%d", rng.Intn(2)),
				fmt.Sprintf("key-%d", i), // unique → fallback
			},
			[]float64{
				rng.Float64() * 50,
				float64(rng.Intn(5)), // few distinct → value dict at t=0
			},
		)
	}
	return tb
}

func TestFitKinds(t *testing.T) {
	tb := mixedTable(500)
	plan, err := Fit(tb, DefaultOptions(), []float64{0, 0, 0, 0.05, 0})
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []ColKind{KindCatModel, KindBinary, KindFallbackCat, KindNumQuant, KindNumDict}
	for i, want := range wantKinds {
		if plan.Cols[i].Kind != want {
			t.Errorf("column %d kind = %v, want %v", i, plan.Cols[i].Kind, want)
		}
	}
	if plan.NumModelColumns() != 4 {
		t.Errorf("NumModelColumns = %d", plan.NumModelColumns())
	}
	if got := plan.ModelColumnIndexes(); !reflect.DeepEqual(got, []int{0, 1, 3, 4}) {
		t.Errorf("ModelColumnIndexes = %v", got)
	}
	if plan.Cols[3].ModelCard != plan.Cols[3].Quant.NumBucket {
		t.Errorf("quantized ModelCard = %d, buckets %d", plan.Cols[3].ModelCard, plan.Cols[3].Quant.NumBucket)
	}
}

func TestFitSkewCoverage(t *testing.T) {
	// 96% of values are "hot"; coverage 0.95 should shrink the alphabet to 1.
	col := make([]string, 1000)
	for i := range col {
		if i < 960 {
			col[i] = "hot"
		} else {
			col[i] = fmt.Sprintf("cold-%d", i%20)
		}
	}
	opts := DefaultOptions()
	cp, err := fitCategorical(col, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Kind != KindCatModel || cp.ModelCard != 1 {
		t.Fatalf("kind %v card %d, want catmodel card 1", cp.Kind, cp.ModelCard)
	}
}

func TestFitValidation(t *testing.T) {
	tb := mixedTable(10)
	if _, err := Fit(tb, DefaultOptions(), []float64{0, 0}); err == nil {
		t.Fatal("wrong threshold count accepted")
	}
	if _, err := Fit(tb, DefaultOptions(), []float64{0, 0, 0, 0.9, 0}); err == nil {
		t.Fatal("threshold > 0.5 accepted")
	}
	bad := dataset.NewTable(dataset.NewSchema(dataset.Column{Name: "n", Type: dataset.Numeric}), 1)
	bad.AppendRow(nil, []float64{math.NaN()})
	if _, err := Fit(bad, DefaultOptions(), nil); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestEncodeDecodeColumnRoundTrip(t *testing.T) {
	tb := mixedTable(300)
	plan, err := Fit(tb, DefaultOptions(), []float64{0, 0, 0, 0.05, 0})
	if err != nil {
		t.Fatal(err)
	}
	out := dataset.NewTable(tb.Schema, tb.NumRows())
	tol := plan.Tolerances()
	for _, col := range []int{0, 1, 2, 3, 4} {
		codes, err := plan.Encode(tb, col)
		if err != nil {
			t.Fatalf("encode col %d: %v", col, err)
		}
		if err := plan.DecodeColumn(out, col, codes); err != nil {
			t.Fatalf("decode col %d: %v", col, err)
		}
	}
	out.SetNumRows(tb.NumRows())
	if err := tb.EqualWithin(out, tol); err != nil {
		t.Fatal(err)
	}
}

func TestInputValueRange(t *testing.T) {
	tb := mixedTable(300)
	plan, err := Fit(tb, DefaultOptions(), []float64{0, 0, 0, 0.05, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range plan.ModelColumnIndexes() {
		codes, err := plan.Encode(tb, col)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range codes {
			v := plan.InputValue(col, c)
			if v < 0 || v > 1 {
				t.Fatalf("InputValue(col %d, code %d) = %v outside [0,1]", col, c, v)
			}
		}
	}
}

func TestPlanSerializationRoundTrip(t *testing.T) {
	tb := mixedTable(200)
	plan, err := Fit(tb, DefaultOptions(), []float64{0, 0, 0, 0.1, 0})
	if err != nil {
		t.Fatal(err)
	}
	buf := plan.AppendBinary(nil)
	got, used, err := DecodePlan(buf)
	if err != nil || used != len(buf) {
		t.Fatalf("DecodePlan: %v, used %d/%d", err, used, len(buf))
	}
	if !got.Schema.Equal(plan.Schema) {
		t.Fatal("schema mismatch after round trip")
	}
	for i := range plan.Cols {
		a, b := &plan.Cols[i], &got.Cols[i]
		if a.Kind != b.Kind || a.ModelCard != b.ModelCard || a.Threshold != b.Threshold {
			t.Fatalf("column %d: %+v vs %+v", i, a, b)
		}
	}
	// Re-encoding the decoded plan must be byte-identical (canonical form).
	if !reflect.DeepEqual(got.AppendBinary(nil), buf) {
		t.Fatal("re-serialization differs")
	}
	if _, _, err := DecodePlan(buf[:len(buf)/2]); err == nil {
		t.Fatal("truncated plan accepted")
	}
}

func TestTolerances(t *testing.T) {
	tb := mixedTable(100)
	plan, err := Fit(tb, DefaultOptions(), []float64{0, 0, 0, 0.1, 0})
	if err != nil {
		t.Fatal(err)
	}
	tol := plan.Tolerances()
	want := 0.1 * plan.Cols[3].Scaler.Range()
	if math.Abs(tol[3]-want) > 1e-12 {
		t.Fatalf("tolerance[3] = %v, want %v", tol[3], want)
	}
	for _, i := range []int{0, 1, 2, 4} {
		if tol[i] != 0 {
			t.Fatalf("tolerance[%d] = %v, want 0", i, tol[i])
		}
	}
}
