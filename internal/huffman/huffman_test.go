package huffman

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, values []int64) []byte {
	t.Helper()
	buf := Encode(values)
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v (values %v)", err, values)
	}
	if len(values) == 0 {
		if len(got) != 0 {
			t.Fatalf("empty input decoded to %v", got)
		}
		return buf
	}
	if !reflect.DeepEqual(got, values) {
		t.Fatalf("round trip mismatch: got %v want %v", got, values)
	}
	return buf
}

func TestRoundTripBasic(t *testing.T) {
	cases := [][]int64{
		{},
		{5},
		{5, 5, 5, 5, 5},
		{0, 1, 0, 1, 1, 0},
		{-3, 7, -3, -3, 1000000, 7},
		{1, 2, 3, 4, 5, 6, 7, 8},
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestSkewedDistributionCompresses(t *testing.T) {
	// 95% zeros: entropy ≈ 0.29 bits/symbol. Huffman floor is 1 bit/symbol.
	rng := rand.New(rand.NewSource(1))
	values := make([]int64, 10000)
	for i := range values {
		if rng.Float64() < 0.05 {
			values[i] = int64(1 + rng.Intn(4))
		}
	}
	buf := roundTrip(t, values)
	// 1 bit/symbol + small header ≈ 1250+ε bytes; plain bytes would be 10000.
	if len(buf) > 1700 {
		t.Fatalf("skewed stream encoded to %d bytes; want ≈1300", len(buf))
	}
}

func TestFrequentSymbolsGetShorterCodes(t *testing.T) {
	freq := map[int64]uint64{0: 1000, 1: 100, 2: 10, 3: 1}
	lengths := codeLengths(freq)
	if lengths[0] > lengths[1] || lengths[1] > lengths[2] || lengths[2] > lengths[3] {
		t.Fatalf("code lengths not monotone in frequency: %v", lengths)
	}
}

func TestKraftInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		freq := make(map[int64]uint64)
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			freq[int64(rng.Intn(100))] = uint64(1 + rng.Intn(1000))
		}
		lengths := codeLengths(freq)
		sum := 0.0
		for _, l := range lengths {
			sum += 1.0 / float64(uint64(1)<<l)
		}
		// Kraft equality holds for complete Huffman codes (within float error);
		// the single-symbol special case uses length 1, giving sum 0.5.
		return sum <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalDeterminism(t *testing.T) {
	values := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	a := Encode(values)
	b := Encode(values)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300)
		values := make([]int64, n)
		alpha := 1 + rng.Intn(50)
		for i := range values {
			values[i] = int64(rng.Intn(alpha)) - int64(alpha/2)
		}
		got, err := Decode(Encode(values))
		if err != nil {
			return false
		}
		if n == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	good := Encode([]int64{1, 1, 2, 3, 3, 3})
	cases := [][]byte{
		nil,
		{},
		good[:2],
		good[:len(good)-1],
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
	// Non-canonical symbol table must be rejected.
	bad := append([]byte{}, good...)
	// Find the symbol section: count varint (1 byte for 6), alpha varint
	// (1 byte for 3), then 3 zigzag symbols. Swap first two symbols.
	bad[2], bad[3] = bad[3], bad[2]
	if _, err := Decode(bad); err == nil {
		t.Error("non-canonical table accepted")
	}
}

func BenchmarkEncodeSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	values := make([]int64, 1<<14)
	for i := range values {
		if rng.Float64() < 0.1 {
			values[i] = int64(rng.Intn(8))
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(values)
	}
}
