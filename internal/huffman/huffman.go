// Package huffman implements a canonical Huffman coder over small integer
// alphabets. DeepSqueeze uses it for the rank-coded categorical failure
// streams, where rank 0 ("the model's top prediction was right") dominates
// and earns a 1-bit code.
//
// The encoded form is self-describing: a header carries the alphabet and
// per-symbol code lengths, from which the decoder rebuilds the identical
// canonical code. Codes are assigned in (length, symbol) order, so
// construction is deterministic.
package huffman

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"deepsqueeze/internal/bitio"
)

// zigzag and unzigzag mirror colenc's mapping; duplicated here (they are
// two-liners) to keep huffman importable by colenc without a cycle.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// ErrCorrupt is returned when an encoded buffer fails validation.
var ErrCorrupt = errors.New("huffman: corrupt buffer")

// maxCodeLen caps code lengths; with package-limited alphabet sizes
// (≤ 1<<20 symbols) depths stay far below this in practice.
const maxCodeLen = 58

type node struct {
	freq        uint64
	symbol      int64 // valid for leaves
	left, right *node
	order       int // insertion order, for deterministic tie-breaks
}

// codeLengths computes Huffman code lengths for each distinct symbol.
func codeLengths(freq map[int64]uint64) map[int64]uint {
	if len(freq) == 0 {
		return map[int64]uint{}
	}
	if len(freq) == 1 {
		for s := range freq {
			return map[int64]uint{s: 1}
		}
	}
	nodes := make([]*node, 0, len(freq))
	for s, f := range freq {
		nodes = append(nodes, &node{freq: f, symbol: s})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].freq != nodes[j].freq {
			return nodes[i].freq < nodes[j].freq
		}
		return nodes[i].symbol < nodes[j].symbol
	})
	for i, n := range nodes {
		n.order = i
	}
	// Simple two-queue merge: sorted leaves plus a FIFO of internal nodes
	// yields O(n log n) overall (dominated by the sort).
	leaves, internal := nodes, []*node{}
	next := len(nodes)
	pop := func() *node {
		switch {
		case len(leaves) == 0:
			n := internal[0]
			internal = internal[1:]
			return n
		case len(internal) == 0:
			n := leaves[0]
			leaves = leaves[1:]
			return n
		case leaves[0].freq < internal[0].freq ||
			(leaves[0].freq == internal[0].freq && leaves[0].order < internal[0].order):
			n := leaves[0]
			leaves = leaves[1:]
			return n
		default:
			n := internal[0]
			internal = internal[1:]
			return n
		}
	}
	for len(leaves)+len(internal) > 1 {
		a, b := pop(), pop()
		internal = append(internal, &node{freq: a.freq + b.freq, left: a, right: b, order: next})
		next++
	}
	root := pop()
	lengths := make(map[int64]uint, len(freq))
	var walk func(n *node, depth uint)
	walk = func(n *node, depth uint) {
		if n.left == nil {
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

type symCode struct {
	symbol int64
	length uint
	code   uint64
}

// canonicalCodes assigns canonical codes given per-symbol lengths,
// in (length, symbol) order.
func canonicalCodes(lengths map[int64]uint) []symCode {
	codes := make([]symCode, 0, len(lengths))
	for s, l := range lengths {
		codes = append(codes, symCode{symbol: s, length: l})
	}
	sort.Slice(codes, func(i, j int) bool {
		if codes[i].length != codes[j].length {
			return codes[i].length < codes[j].length
		}
		return codes[i].symbol < codes[j].symbol
	})
	var code uint64
	var prevLen uint
	for i := range codes {
		code <<= codes[i].length - prevLen
		codes[i].code = code
		prevLen = codes[i].length
		code++
	}
	return codes
}

// Encode Huffman-codes values. Layout:
// count varint | alphabet size varint | symbols (delta-coded varints) |
// lengths (bytes) | packed bitstream.
func Encode(values []int64) []byte {
	freq := make(map[int64]uint64)
	for _, v := range values {
		freq[v]++
	}
	lengths := codeLengths(freq)
	codes := canonicalCodes(lengths)
	bySym := make(map[int64]symCode, len(codes))
	out := binary.AppendUvarint(nil, uint64(len(values)))
	out = binary.AppendUvarint(out, uint64(len(codes)))
	// Symbols in canonical order, delta-within-length keeps them small;
	// here we simply zigzag-varint them in canonical order.
	for _, c := range codes {
		out = binary.AppendUvarint(out, zigzag(c.symbol))
		bySym[c.symbol] = c
	}
	for _, c := range codes {
		out = append(out, byte(c.length))
	}
	w := bitio.NewWriter()
	for _, v := range values {
		c := bySym[v]
		w.WriteBits(c.code, c.length)
	}
	return append(out, w.Bytes()...)
}

// Decode inverts Encode.
func Decode(buf []byte) ([]int64, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing count", ErrCorrupt)
	}
	buf = buf[sz:]
	alpha, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing alphabet size", ErrCorrupt)
	}
	buf = buf[sz:]
	if n > 0 && alpha == 0 {
		return nil, fmt.Errorf("%w: empty alphabet with %d values", ErrCorrupt, n)
	}
	if alpha > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: alphabet %d exceeds buffer", ErrCorrupt, alpha)
	}
	symbols := make([]int64, alpha)
	for i := range symbols {
		z, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, fmt.Errorf("%w: truncated symbol table", ErrCorrupt)
		}
		symbols[i] = unzigzag(z)
		buf = buf[sz:]
	}
	if uint64(len(buf)) < alpha {
		return nil, fmt.Errorf("%w: truncated length table", ErrCorrupt)
	}
	codes := make([]symCode, alpha)
	for i := range codes {
		l := uint(buf[i])
		if l == 0 || l > maxCodeLen {
			return nil, fmt.Errorf("%w: code length %d", ErrCorrupt, l)
		}
		codes[i] = symCode{symbol: symbols[i], length: l}
	}
	buf = buf[alpha:]
	// Every code is at least one bit, so the bitstream length bounds the
	// value count; checking here keeps a corrupt count from driving the
	// output allocation below.
	if n > uint64(len(buf))*8 {
		return nil, fmt.Errorf("%w: count %d exceeds bitstream", ErrCorrupt, n)
	}
	// Rebuild canonical codes. The header stores entries already in
	// canonical (length, symbol) order; verify rather than trust.
	for i := 1; i < len(codes); i++ {
		a, b := codes[i-1], codes[i]
		if a.length > b.length || (a.length == b.length && a.symbol >= b.symbol) {
			return nil, fmt.Errorf("%w: symbol table not canonical", ErrCorrupt)
		}
	}
	var code uint64
	var prevLen uint
	for i := range codes {
		code <<= codes[i].length - prevLen
		codes[i].code = code
		prevLen = codes[i].length
		code++
	}
	// Decode with a (length → first code, offset) table.
	type lenGroup struct {
		first uint64 // canonical first code of this length
		start int    // index into codes of the first symbol of this length
		count int
	}
	groups := make(map[uint]lenGroup)
	for i, c := range codes {
		g, ok := groups[c.length]
		if !ok {
			g = lenGroup{first: c.code, start: i}
		}
		g.count++
		groups[c.length] = g
	}
	r := bitio.NewReader(buf)
	out := make([]int64, n)
	for i := range out {
		var acc uint64
		var l uint
		for {
			bit, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("%w: truncated bitstream", ErrCorrupt)
			}
			acc = acc<<1 | uint64(bit)
			l++
			if g, ok := groups[l]; ok && acc >= g.first && acc < g.first+uint64(g.count) {
				out[i] = codes[g.start+int(acc-g.first)].symbol
				break
			}
			if l > maxCodeLen {
				return nil, fmt.Errorf("%w: no code within %d bits", ErrCorrupt, maxCodeLen)
			}
		}
	}
	if r.Remaining() >= 8 {
		return nil, fmt.Errorf("%w: %d trailing bits", ErrCorrupt, r.Remaining())
	}
	return out, nil
}
