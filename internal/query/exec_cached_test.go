package query

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"deepsqueeze/internal/core"
)

// directSource is the trivial BlockSource: every request decodes fresh
// blocks from the archive. It isolates the cached execution path from any
// cache policy, so equivalence failures here implicate runCached itself.
type directSource struct {
	a *core.Archive
}

func (s *directSource) Blocks(ctx context.Context, groups []int, cols []int) ([][]*core.ColumnBlock, error) {
	return s.a.DecodeBlocks(ctx, groups, cols, nil)
}

// TestCachedEquivalence is the cached path's core contract: for randomized
// predicates × projections × aggregates × limits, executing over column
// blocks returns byte-for-byte (and for aggregates, bit-for-bit) the same
// result as the uncached decode path, at every parallelism level.
func TestCachedEquivalence(t *testing.T) {
	archive := compressQueryTable(t, 1000, 71, 100)
	a, err := core.Open(archive)
	if err != nil {
		t.Fatal(err)
	}
	src := &directSource{a: a}
	rng := rand.New(rand.NewSource(72))
	parallelisms := []int{1, 4, runtime.NumCPU()}
	projections := [][]string{nil, {"seq"}, {"noise", "tag"}, {"grade", "seq", "grade"}}
	aggSets := [][]AggOp{
		nil,
		{{Kind: AggCount}},
		{{Kind: AggSum, Col: "noise"}, {Kind: AggMin, Col: "seq"}, {Kind: AggMax, Col: "noise"}},
	}
	for trial := 0; trial < 30; trial++ {
		var p Pred
		if trial > 0 { // trial 0 exercises the no-filter path
			p = randPred(rng, 2)
		}
		sel := projections[trial%len(projections)]
		aggs := aggSets[trial%len(aggSets)]
		limit := 0
		if aggs == nil && trial%3 == 0 {
			limit = rng.Intn(200)
		}
		base := Options{Where: p, Select: sel, Aggs: aggs, Limit: limit}
		want, err := RunArchive(context.Background(), a, base)
		if err != nil {
			t.Fatalf("trial %d uncached: %v", trial, err)
		}
		for _, par := range parallelisms {
			opts := base
			opts.Parallelism = par
			opts.Blocks = src
			got, err := RunArchive(context.Background(), a, opts)
			if err != nil {
				t.Fatalf("trial %d p=%d cached: %v", trial, par, err)
			}
			if got.Matched != want.Matched {
				t.Fatalf("trial %d p=%d: cached matched %d, uncached %d", trial, par, got.Matched, want.Matched)
			}
			if (got.Table == nil) != (want.Table == nil) {
				t.Fatalf("trial %d p=%d: table presence differs", trial, par)
			}
			if want.Table != nil {
				gotCSV, wantCSV := tableCSV(t, got.Table), tableCSV(t, want.Table)
				if !bytes.Equal(gotCSV, wantCSV) {
					t.Fatalf("trial %d p=%d: cached rows differ from uncached (pred %v, select %v, limit %d)",
						trial, par, p, sel, limit)
				}
			}
			if len(got.Aggregates) != len(want.Aggregates) {
				t.Fatalf("trial %d p=%d: %d aggregates, want %d", trial, par, len(got.Aggregates), len(want.Aggregates))
			}
			for i := range want.Aggregates {
				g, w := got.Aggregates[i].Value, want.Aggregates[i].Value
				if math.Float64bits(g) != math.Float64bits(w) {
					t.Fatalf("trial %d p=%d agg %d (%s %s): cached %v != uncached %v (not bit-identical)",
						trial, par, i, want.Aggregates[i].Op.Kind, want.Aggregates[i].Op.Col, g, w)
				}
			}
			if got.GroupsPruned != want.GroupsPruned {
				t.Fatalf("trial %d p=%d: pruning differs (%d vs %d)", trial, par, got.GroupsPruned, want.GroupsPruned)
			}
		}
	}
}

// TestCachedKernelChunking forces multi-chunk kernel evaluation: one row
// group of 5000 rows spans three kernelChunk windows (the last partial), and
// deep predicate trees exercise the tmp stack across chunks.
func TestCachedKernelChunking(t *testing.T) {
	archive := compressQueryTable(t, 5000, 73, 5000)
	a, err := core.Open(archive)
	if err != nil {
		t.Fatal(err)
	}
	src := &directSource{a: a}
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 10; trial++ {
		p := randPred(rng, 4) // deep trees: nested And/Or/Not need stacked tmps
		base := Options{Where: p}
		want, err := RunArchive(context.Background(), a, base)
		if err != nil {
			t.Fatal(err)
		}
		opts := base
		opts.Blocks = src
		got, err := RunArchive(context.Background(), a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Matched != want.Matched {
			t.Fatalf("trial %d (%v): cached matched %d, uncached %d", trial, p, got.Matched, want.Matched)
		}
		if !bytes.Equal(tableCSV(t, got.Table), tableCSV(t, want.Table)) {
			t.Fatalf("trial %d (%v): cached rows differ", trial, p)
		}
	}
}
