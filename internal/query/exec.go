package query

import (
	"context"
	"fmt"
	"math"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/pipeline"
)

// AggKind selects an aggregate function.
type AggKind int

const (
	AggCount AggKind = iota
	AggMin
	AggMax
	AggSum
)

func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggSum:
		return "sum"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// AggOp is one requested aggregate: count (Col empty) or min/max/sum over a
// numeric column.
type AggOp struct {
	Kind AggKind
	Col  string
}

// Aggregate is one computed aggregate value. Min and max over zero matching
// rows are NaN; sum is 0; count is the match count.
type Aggregate struct {
	Op    AggOp
	Value float64
}

// Options configures a query.
type Options struct {
	// Where filters rows; nil selects every row. Predicates evaluate against
	// decoded values, so the result is identical to decompressing everything
	// and filtering — zone maps only decide which row groups are decoded.
	Where Pred

	// Select projects row output onto the named columns; nil selects every
	// column. The output schema lists columns in archive schema order, same
	// as DecompressOptions.Columns. Ignored when Aggs is non-empty.
	Select []string

	// Aggs switches the query to aggregate mode: no row output, only the
	// requested aggregates over the matching rows.
	Aggs []AggOp

	// Parallelism bounds the worker pool; <= 0 selects runtime.NumCPU().
	// Results are byte-for-byte identical at every parallelism level.
	Parallelism int

	// Limit, when positive, caps the number of matching rows returned in row
	// mode (the first Limit matches in row order). Matched still reports the
	// full count. Ignored in aggregate mode.
	Limit int

	// Pool, when non-nil, runs the query's decode and filter stages over the
	// caller's shared worker pool instead of a fresh one, and Parallelism is
	// ignored — how a server bounds total work across concurrent queries.
	Pool *pipeline.Pool

	// Blocks, when non-nil, switches execution to the cached-block path:
	// filters, aggregates, and packing run directly over decoded column
	// blocks obtained from the source (the serve layer's decoded-block
	// cache), skipping the parse→scan→unpack→decode pipeline entirely for
	// groups the source already holds. Results are byte-identical to the
	// uncached path; only the Stages/BytesSkipped instrumentation differs.
	Blocks BlockSource
}

// BlockSource supplies decoded column blocks for (row group, column) pairs —
// implemented by the serve layer's byte-budgeted block cache. Blocks returns
// one block per requested pair, indexed [len(groups)][len(cols)]; both lists
// are strictly ascending (groups are archive group indexes, cols schema
// column indexes). Every returned block must be immutable and byte-identical
// to the corresponding span of a full decompression of its archive.
type BlockSource interface {
	Blocks(ctx context.Context, groups []int, cols []int) ([][]*core.ColumnBlock, error)
}

// Result is a query outcome.
type Result struct {
	// Table holds the matching rows projected onto the selected columns; nil
	// in aggregate mode.
	Table *dataset.Table
	// Matched counts the rows satisfying Where across the whole archive.
	Matched int
	// Aggregates holds one entry per requested AggOp, in request order.
	Aggregates []Aggregate

	// GroupsTotal and GroupsPruned report zone-map pruning: pruned groups'
	// segments were skipped without decoding.
	GroupsTotal  int
	GroupsPruned int
	// BytesSkipped is the archive bytes never decoded — pruned row groups
	// plus unselected columns' streams (the decompressor's scan-stage byte
	// counter).
	BytesSkipped int64
	// Stages reports per-stage instrumentation: the decompressor's stages
	// followed by the filter stage.
	Stages []core.StageStats
}

// Run executes a query against an archive. See RunContext.
func Run(archive []byte, opts Options) (*Result, error) {
	return RunContext(context.Background(), archive, opts)
}

// RunContext evaluates Where against the archive, using per-row-group zone
// maps to skip groups that cannot contain a match, and returns the matching
// rows (projected onto Select) or the requested aggregates. Pruning is
// purely an optimization: predicates are re-evaluated on decoded values, so
// the rows returned are exactly those a full decompress-then-filter would
// produce, byte for byte, at every parallelism level.
//
// Callers issuing repeated queries should core.Open the archive once and use
// RunArchive, which reuses the handle's parsed index and decoders.
func RunContext(ctx context.Context, archive []byte, opts Options) (*Result, error) {
	a, err := core.Open(archive)
	if err != nil {
		return nil, err
	}
	return RunArchive(ctx, a, opts)
}

// RunArchive is RunContext against an open handle: planning reads the
// handle's cached row-group index and zone maps, and decoding reuses its
// cached decoders, so a warm handle pays per query only for the groups and
// columns the query touches. Concurrent calls against one handle are safe.
func RunArchive(ctx context.Context, a *core.Archive, opts Options) (*Result, error) {
	idx, err := a.Index()
	if err != nil {
		return nil, err
	}
	if idx.External {
		return nil, fmt.Errorf("query: archive references an external model; re-assemble it before querying")
	}
	res := &Result{GroupsTotal: len(idx.Groups)}

	var b *bound
	if opts.Where != nil {
		if b, err = bind(opts.Where, idx.Plan); err != nil {
			return nil, err
		}
	}
	colIdx := func(name string) (int, error) {
		for i, c := range idx.Plan.Schema.Columns {
			if c.Name == name {
				return i, nil
			}
		}
		return 0, fmt.Errorf("query: unknown column %q", name)
	}
	aggMode := len(opts.Aggs) > 0
	aggCols := make([]int, len(opts.Aggs))
	for i, a := range opts.Aggs {
		switch a.Kind {
		case AggCount:
			if a.Col != "" {
				return nil, fmt.Errorf("query: count takes no column (got %q)", a.Col)
			}
			aggCols[i] = -1
		case AggMin, AggMax, AggSum:
			j, err := colIdx(a.Col)
			if err != nil {
				return nil, err
			}
			if idx.Plan.Schema.Columns[j].Type != dataset.Numeric {
				return nil, fmt.Errorf("query: %s needs a numeric column, %q is categorical", a.Kind, a.Col)
			}
			aggCols[i] = j
		default:
			return nil, fmt.Errorf("query: unknown aggregate kind %d", int(a.Kind))
		}
	}
	selIdx := make([]int, len(opts.Select))
	for i, name := range opts.Select {
		if selIdx[i], err = colIdx(name); err != nil {
			return nil, err
		}
	}

	// Prune row groups whose zones cannot contain a match. Archives without
	// zone maps (v1, or written with NoZoneMaps) keep every group.
	mask := make([]bool, len(idx.Groups))
	for i, g := range idx.Groups {
		mask[i] = b == nil || g.Zones == nil || b.mayMatch(g.Zones)
		if !mask[i] {
			res.GroupsPruned++
		}
	}

	// Fast path: an unfiltered pure count needs no decoding at all.
	if b == nil && aggMode && pureCount(opts.Aggs) {
		res.Matched = idx.Rows
		for i := range opts.Aggs {
			res.Aggregates = append(res.Aggregates, Aggregate{Op: opts.Aggs[i], Value: float64(idx.Rows)})
		}
		return res, nil
	}

	// Decode the union of the columns the query touches: selected (or all,
	// in unprojected row mode), aggregated, and filtered-on. needIdx is the
	// same union as ascending schema indexes (every column, in unprojected
	// row mode) — the cached-block path fetches exactly these.
	var decodeCols []string
	var needIdx []int
	if !aggMode && len(opts.Select) == 0 {
		decodeCols = nil // row mode over every column
		needIdx = make([]int, len(idx.Plan.Schema.Columns))
		for j := range needIdx {
			needIdx[j] = j
		}
	} else {
		need := map[int]bool{}
		for _, j := range selIdx {
			need[j] = true
		}
		for _, j := range aggCols {
			if j >= 0 {
				need[j] = true
			}
		}
		if b != nil {
			for _, j := range b.cols {
				need[j] = true
			}
		}
		for j, c := range idx.Plan.Schema.Columns {
			if need[j] {
				decodeCols = append(decodeCols, c.Name)
				needIdx = append(needIdx, j)
			}
		}
	}

	if opts.Blocks != nil {
		return runCached(ctx, a, opts, res, cachedPlan{
			idx: idx, b: b, mask: mask,
			aggMode: aggMode, aggCols: aggCols, selIdx: selIdx, needIdx: needIdx,
		})
	}

	dres, err := a.DecompressContext(ctx, core.DecompressOptions{
		Parallelism: opts.Parallelism,
		Columns:     decodeCols,
		GroupMask:   mask,
		Pool:        opts.Pool,
	})
	if err != nil {
		return nil, err
	}
	res.Stages = dres.Stages
	for _, st := range dres.Stages {
		if st.Name == "scan" {
			res.BytesSkipped = st.Bytes
		}
	}

	// Scatter the decoded (projected) columns back to full-schema indexes so
	// the bound predicate can address them.
	dt := dres.Table
	nrows := dt.NumRows()
	ncols := len(idx.Plan.Schema.Columns)
	str := make([][]string, ncols)
	num := make([][]float64, ncols)
	for dj, c := range dt.Schema.Columns {
		fj, err := colIdx(c.Name)
		if err != nil {
			return nil, err
		}
		if c.Type == dataset.Categorical {
			str[fj] = dt.Str[dj]
		} else {
			num[fj] = dt.Num[dj]
		}
	}

	// Filter: each chunk writes a disjoint span of keep, so the outcome is
	// independent of parallelism.
	var run *pipeline.Run
	if opts.Pool != nil {
		run = pipeline.NewWithPool(ctx, opts.Pool)
	} else {
		run = pipeline.New(ctx, opts.Parallelism)
	}
	keep := make([]bool, nrows)
	err = run.Stage("filter", func() error {
		if b == nil {
			for r := range keep {
				keep[r] = true
			}
			return nil
		}
		return run.ForEachChunk(nrows, 4096, func(lo, hi int) error {
			for r := lo; r < hi; r++ {
				keep[r] = b.eval(r, str, num)
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	res.Stages = append(res.Stages, run.Stats()...)
	for _, k := range keep {
		if k {
			res.Matched++
		}
	}

	if aggMode {
		res.Aggregates = computeAggs(opts.Aggs, aggCols, keep, num, res.Matched)
		return res, nil
	}

	// Row mode: project onto the selected columns and gather matching rows.
	rows := make([]int, 0, res.Matched)
	for r, k := range keep {
		if k {
			rows = append(rows, r)
			if opts.Limit > 0 && len(rows) == opts.Limit {
				break
			}
		}
	}
	outIdx := selIdx
	if len(opts.Select) == 0 {
		outIdx = make([]int, ncols)
		for j := range outIdx {
			outIdx[j] = j
		}
	} else {
		// Output schema follows archive order, matching DecompressOptions.
		outIdx = append([]int(nil), selIdx...)
		sortInts(outIdx)
		outIdx = dedupInts(outIdx)
	}
	outCols := make([]dataset.Column, len(outIdx))
	for i, fj := range outIdx {
		outCols[i] = idx.Plan.Schema.Columns[fj]
	}
	out := dataset.NewTable(dataset.NewSchema(outCols...), len(rows))
	err = run.Stage("pack", func() error {
		return run.ForEach(len(outIdx), func(i int) error {
			fj := outIdx[i]
			if outCols[i].Type == dataset.Categorical {
				src := str[fj]
				dst := out.Str[i][:0]
				for _, r := range rows {
					dst = append(dst, src[r])
				}
				out.Str[i] = dst
			} else {
				src := num[fj]
				dst := out.Num[i][:0]
				for _, r := range rows {
					dst = append(dst, src[r])
				}
				out.Num[i] = dst
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	out.SetNumRows(len(rows))
	res.Table = out
	res.Stages = appendStage(res.Stages, run.Stats(), "pack")
	return res, nil
}

// pureCount reports whether every requested aggregate is a bare count.
func pureCount(aggs []AggOp) bool {
	for _, a := range aggs {
		if a.Kind != AggCount {
			return false
		}
	}
	return true
}

// computeAggs evaluates the aggregates serially in row order, so sums are
// bit-identical at every parallelism level.
func computeAggs(aggs []AggOp, aggCols []int, keep []bool, num [][]float64, matched int) []Aggregate {
	out := make([]Aggregate, len(aggs))
	for i, a := range aggs {
		out[i].Op = a
		switch a.Kind {
		case AggCount:
			out[i].Value = float64(matched)
		case AggMin, AggMax:
			v := math.NaN()
			col := num[aggCols[i]]
			for r, k := range keep {
				if !k {
					continue
				}
				x := col[r]
				if math.IsNaN(v) ||
					(a.Kind == AggMin && x < v) ||
					(a.Kind == AggMax && x > v) {
					v = x
				}
			}
			out[i].Value = v
		case AggSum:
			var s float64
			col := num[aggCols[i]]
			for r, k := range keep {
				if k {
					s += col[r]
				}
			}
			out[i].Value = s
		}
	}
	return out
}

// appendStage appends only the named stage from a run's stats (the run's
// earlier stages were already recorded).
func appendStage(dst, stats []core.StageStats, name string) []core.StageStats {
	for _, st := range stats {
		if st.Name == name {
			dst = append(dst, st)
		}
	}
	return dst
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
