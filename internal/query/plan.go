package query

import (
	"fmt"
	"math"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/preprocess"
)

// bnode is a bound predicate node: column names resolved to schema indexes,
// literals type-checked against the column, and (for leaves) the column's
// stored plan attached for encoded-domain zone translation.
type bnode struct {
	kind byte // nAnd, nOr, nNot, nCmp, nIn
	kids []bnode

	// Leaf fields.
	col   int
	isStr bool
	cp    *preprocess.ColPlan
	op    CmpOp
	sval  string
	fval  float64
	sset  map[string]struct{} // nIn, categorical
	fvals []float64           // nIn, numeric, ascending
}

const (
	nAnd byte = iota
	nOr
	nNot
	nCmp
	nIn
)

// bound is a predicate compiled against one archive's plan.
type bound struct {
	root bnode
	cols []int // distinct referenced schema column indexes, ascending
}

// bind resolves and type-checks a predicate against the archive's stored
// plan. Range operators on categorical columns are rejected: the on-disk
// dictionary is frequency-ordered, so no lexicographic order survives
// encoding, and silently comparing strings would not match user intuition
// about pruning.
func bind(p Pred, plan *preprocess.Plan) (*bound, error) {
	b := &bound{}
	seen := map[int]bool{}
	var walk func(p Pred) (bnode, error)
	leafCol := func(name string) (int, *preprocess.ColPlan, bool, error) {
		for i, c := range plan.Schema.Columns {
			if c.Name == name {
				if !seen[i] {
					seen[i] = true
					b.cols = append(b.cols, i)
				}
				return i, &plan.Cols[i], c.Type == dataset.Categorical, nil
			}
		}
		return 0, nil, false, fmt.Errorf("query: unknown column %q", name)
	}
	checkLit := func(col string, v lit, isStr bool) error {
		if v.bad != "" {
			return fmt.Errorf("query: unsupported literal type %s for column %q", v.bad, col)
		}
		if v.isStr != isStr {
			if isStr {
				return fmt.Errorf("query: column %q is categorical; compare it to a quoted string", col)
			}
			return fmt.Errorf("query: column %q is numeric; compare it to a number", col)
		}
		return nil
	}
	walk = func(p Pred) (bnode, error) {
		switch q := p.(type) {
		case cmpPred:
			idx, cp, isStr, err := leafCol(q.col)
			if err != nil {
				return bnode{}, err
			}
			if err := checkLit(q.col, q.val, isStr); err != nil {
				return bnode{}, err
			}
			if isStr && q.op != OpEq {
				return bnode{}, fmt.Errorf("query: operator %s not supported on categorical column %q (use =, !=, or IN)", q.op, q.col)
			}
			return bnode{kind: nCmp, col: idx, isStr: isStr, cp: cp, op: q.op, sval: q.val.s, fval: q.val.f}, nil
		case inPred:
			if len(q.vals) == 0 {
				return bnode{}, fmt.Errorf("query: empty IN list for column %q", q.col)
			}
			idx, cp, isStr, err := leafCol(q.col)
			if err != nil {
				return bnode{}, err
			}
			n := bnode{kind: nIn, col: idx, isStr: isStr, cp: cp}
			for _, v := range q.vals {
				if err := checkLit(q.col, v, isStr); err != nil {
					return bnode{}, err
				}
			}
			if isStr {
				n.sset = make(map[string]struct{}, len(q.vals))
				for _, v := range q.vals {
					n.sset[v.s] = struct{}{}
				}
			} else {
				n.fvals = sortedFloats(q.vals)
			}
			return n, nil
		case andPred:
			n := bnode{kind: nAnd, kids: make([]bnode, len(q.kids))}
			for i, k := range q.kids {
				kid, err := walk(k)
				if err != nil {
					return bnode{}, err
				}
				n.kids[i] = kid
			}
			return n, nil
		case orPred:
			n := bnode{kind: nOr, kids: make([]bnode, len(q.kids))}
			for i, k := range q.kids {
				kid, err := walk(k)
				if err != nil {
					return bnode{}, err
				}
				n.kids[i] = kid
			}
			return n, nil
		case notPred:
			kid, err := walk(q.kid)
			if err != nil {
				return bnode{}, err
			}
			return bnode{kind: nNot, kids: []bnode{kid}}, nil
		}
		return bnode{}, fmt.Errorf("query: unknown predicate type %T", p)
	}
	root, err := walk(p)
	if err != nil {
		return nil, err
	}
	b.root = root
	return b, nil
}

// eval evaluates the bound predicate on one decoded row. str and num are
// indexed by schema column (only the referenced columns need be non-nil).
func (b *bound) eval(r int, str [][]string, num [][]float64) bool {
	return b.root.eval(r, str, num)
}

func (n *bnode) eval(r int, str [][]string, num [][]float64) bool {
	switch n.kind {
	case nAnd:
		for i := range n.kids {
			if !n.kids[i].eval(r, str, num) {
				return false
			}
		}
		return true
	case nOr:
		for i := range n.kids {
			if n.kids[i].eval(r, str, num) {
				return true
			}
		}
		return false
	case nNot:
		return !n.kids[0].eval(r, str, num)
	case nCmp:
		if n.isStr {
			return str[n.col][r] == n.sval // bind guarantees op == OpEq
		}
		v := num[n.col][r]
		switch n.op {
		case OpEq:
			return v == n.fval
		case OpLt:
			return v < n.fval
		case OpLe:
			return v <= n.fval
		case OpGt:
			return v > n.fval
		case OpGe:
			return v >= n.fval
		}
	case nIn:
		if n.isStr {
			_, ok := n.sset[str[n.col][r]]
			return ok
		}
		v := num[n.col][r]
		for _, f := range n.fvals {
			if v == f {
				return true
			}
		}
	}
	return false
}

// mayMatch reports whether a row group with the given per-column zones could
// contain a matching row. It must never return false for a group that holds
// a match (soundness); returning true for a group that doesn't is merely a
// missed pruning opportunity. neg tracks negation context: under NOT, De
// Morgan swaps the And/Or combination and leaves flip to their complements.
func (b *bound) mayMatch(zones []core.ZoneMap) bool {
	return b.root.mayMatch(zones, false)
}

func (n *bnode) mayMatch(zones []core.ZoneMap, neg bool) bool {
	switch n.kind {
	case nAnd:
		if neg { // NOT(a AND b) = NOT a OR NOT b
			for i := range n.kids {
				if n.kids[i].mayMatch(zones, true) {
					return true
				}
			}
			return false // includes NOT(empty AND): constant false, no row matches
		}
		for i := range n.kids {
			if !n.kids[i].mayMatch(zones, false) {
				return false
			}
		}
		return true
	case nOr:
		if neg { // NOT(a OR b) = NOT a AND NOT b
			for i := range n.kids {
				if !n.kids[i].mayMatch(zones, true) {
					return false
				}
			}
			return true
		}
		for i := range n.kids {
			if n.kids[i].mayMatch(zones, false) {
				return true
			}
		}
		return false
	case nNot:
		return n.kids[0].mayMatch(zones, !neg)
	case nCmp, nIn:
		return n.leafMayMatch(&zones[n.col], neg)
	}
	return true
}

// leafMayMatch is the per-leaf zone test. For numeric columns the zone is
// translated to a closed interval [lo, hi] of decoded values; for
// categorical columns the bitmap (or dictionary-code range) answers
// membership directly.
func (n *bnode) leafMayMatch(z *core.ZoneMap, neg bool) bool {
	if z.Kind == core.ZoneNone {
		return true
	}
	if n.isStr {
		return n.catMayMatch(z, neg)
	}
	lo, hi, ok := zoneInterval(z, n.cp)
	if !ok {
		return true
	}
	if n.kind == nIn {
		if !neg {
			for _, f := range n.fvals {
				if f >= lo && f <= hi {
					return true
				}
			}
			return false
		}
		// NOT IN can only be pruned when the zone pins every row to a single
		// value that the list contains.
		if lo == hi {
			for _, f := range n.fvals {
				if f == lo {
					return false
				}
			}
		}
		return true
	}
	v := n.fval
	op := n.op
	if neg {
		// Complement: NOT(x = v) prunes only a single-valued zone equal to v;
		// the range operators flip.
		switch op {
		case OpEq:
			return !(lo == v && hi == v)
		case OpLt:
			op = OpGe
		case OpLe:
			op = OpGt
		case OpGt:
			op = OpLe
		case OpGe:
			op = OpLt
		}
	}
	switch op {
	case OpEq:
		return v >= lo && v <= hi
	case OpLt: // some row < v
		return lo < v
	case OpLe:
		return lo <= v
	case OpGt: // some row > v
		return hi > v
	case OpGe:
		return hi >= v
	}
	return true
}

// catMayMatch answers membership questions against a categorical zone. The
// bitmap carries one bit per dictionary code plus an overflow bit for values
// outside the training dictionary (escape rows decode to their raw text, so
// an out-of-dictionary literal can still match a row under the overflow
// bit). The int-range form is only written when every group value is in the
// dictionary.
func (n *bnode) catMayMatch(z *core.ZoneMap, neg bool) bool {
	dict := n.cp.Dict
	if dict == nil {
		return true
	}
	// hasValue: could some row equal s? onlyValue: is every row pinned to s?
	hasValue := func(s string) bool {
		c, ok := dict.Code(s)
		switch z.Kind {
		case core.ZoneBitmap:
			if !ok {
				c = dict.Len() // overflow bit
			}
			return z.Bit(c)
		case core.ZoneIntRange:
			return ok && int64(c) >= z.Min && int64(c) <= z.Max
		}
		return true
	}
	onlyValue := func(s string) bool {
		c, ok := dict.Code(s)
		if !ok {
			// Out-of-dictionary rows are only distinguishable via the
			// overflow bit, which lumps all unseen values together: never
			// provable that every row equals this exact string.
			return false
		}
		switch z.Kind {
		case core.ZoneBitmap:
			if !z.Bit(c) || z.Bit(dict.Len()) {
				return false
			}
			for i := 0; i < dict.Len(); i++ {
				if i != c && z.Bit(i) {
					return false
				}
			}
			return true
		case core.ZoneIntRange:
			return z.Min == z.Max && int64(c) == z.Min
		}
		return false
	}
	if n.kind == nCmp { // OpEq only (bind rejects ranges on categoricals)
		if !neg {
			return hasValue(n.sval)
		}
		return !onlyValue(n.sval)
	}
	// nIn
	if !neg {
		for s := range n.sset {
			if hasValue(s) {
				return true
			}
		}
		return false
	}
	// NOT IN prunes only when every possible group value is in the list:
	// overflow unset and every set dictionary bit's value listed.
	if z.Kind != core.ZoneBitmap || z.Bit(dict.Len()) {
		return true
	}
	for i := 0; i < dict.Len(); i++ {
		if !z.Bit(i) {
			continue
		}
		if _, listed := n.sset[dict.Value(i)]; !listed {
			return true
		}
	}
	return false
}

// zoneInterval translates a numeric zone into the closed interval [lo, hi]
// that bounds the column's decoded values in the group. Encoded-domain
// bounds go through the stored plan: quantized buckets decode to
// Unscale(Midpoint(b)) and value-dictionary ranks to their dictionary entry,
// both monotone in the code, so the endpoint decodes bound the whole group.
func zoneInterval(z *core.ZoneMap, cp *preprocess.ColPlan) (lo, hi float64, ok bool) {
	switch z.Kind {
	case core.ZoneFloatRange:
		return z.FMin, z.FMax, true
	case core.ZoneIntRange:
		switch cp.Kind {
		case preprocess.KindNumQuant:
			lo = cp.Scaler.Unscale(cp.Quant.Midpoint(int(z.Min)))
			hi = cp.Scaler.Unscale(cp.Quant.Midpoint(int(z.Max)))
			if lo > hi { // a degenerate scaler can collapse the order
				lo, hi = hi, lo
			}
			return lo, hi, true
		case preprocess.KindNumDict:
			return cp.VDict.Value(int(z.Min)), cp.VDict.Value(int(z.Max)), true
		}
	}
	return math.Inf(-1), math.Inf(1), false
}
