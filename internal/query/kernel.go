package query

import (
	"sync"

	"deepsqueeze/internal/core"
)

// kernelChunk is the row span one kernel invocation covers. Chunks keep the
// predicate tree's temporaries inside a few KB of worker-local scratch (hot
// in cache) regardless of group size.
const kernelChunk = 2048

// boolBuf is a pooled keep bitmap. Queries borrow one per surviving group
// and return it after packing, so the steady-state hot path recycles bitmaps
// instead of allocating O(rows) per query.
type boolBuf struct {
	b []bool
}

var boolBufPool = sync.Pool{New: func() any { return &boolBuf{} }}

// getBoolBuf returns a pooled buffer resliced to n rows. Contents are
// unspecified; every kernel writes each slot before it is read.
func getBoolBuf(n int) *boolBuf {
	kb := boolBufPool.Get().(*boolBuf)
	if cap(kb.b) < n {
		kb.b = make([]bool, n)
	}
	kb.b = kb.b[:n]
	return kb
}

func putBoolBuf(kb *boolBuf) {
	if kb != nil {
		boolBufPool.Put(kb)
	}
}

// kernelScratch is one worker's filter workspace: the current group's blocks
// scattered to full-schema column indexes (so bound leaves address columns
// directly), plus a stack of chunk-sized temporaries for the predicate
// tree's inner nodes. Workers own a scratch exclusively for the duration of
// a filter stage; nothing in it may leak into query output.
type kernelScratch struct {
	str [][]string
	num [][]float64

	tmps []*[kernelChunk]bool // free temporaries, reused across chunks
}

var scratchPool = sync.Pool{New: func() any { return &kernelScratch{} }}

// getScratch returns a pooled scratch sized for a schema of ncols columns.
func getScratch(ncols int) *kernelScratch {
	sc := scratchPool.Get().(*kernelScratch)
	if cap(sc.str) < ncols {
		sc.str = make([][]string, ncols)
		sc.num = make([][]float64, ncols)
	}
	sc.str = sc.str[:ncols]
	sc.num = sc.num[:ncols]
	return sc
}

func putScratch(sc *kernelScratch) {
	for i := range sc.str {
		sc.str[i] = nil
		sc.num[i] = nil
	}
	scratchPool.Put(sc)
}

// scatter points the scratch's schema-indexed column views at one group's
// blocks. cols[i] is the schema index of blocks[i].
func (sc *kernelScratch) scatter(blocks []*core.ColumnBlock, cols []int) {
	for i, blk := range blocks {
		sc.str[cols[i]] = blk.Str
		sc.num[cols[i]] = blk.Num
	}
}

// getTmp pops (or allocates) a chunk temporary.
func (sc *kernelScratch) getTmp() *[kernelChunk]bool {
	if n := len(sc.tmps); n > 0 {
		t := sc.tmps[n-1]
		sc.tmps = sc.tmps[:n-1]
		return t
	}
	return new([kernelChunk]bool)
}

func (sc *kernelScratch) putTmp(t *[kernelChunk]bool) {
	sc.tmps = append(sc.tmps, t)
}

// evalBlock evaluates the bound predicate over rows [0, rows) of the group
// currently scattered into sc, writing the keep bitmap into out (len rows).
// Evaluation is chunked and branch-lean: leaves compile to compare-and-set
// loops over contiguous column spans, and inner nodes combine child bitmaps
// with data-independent boolean loops, so the kernel's control flow never
// depends on the data (no per-row branch mispredicts on random predicates).
func (b *bound) evalBlock(sc *kernelScratch, rows int, out []bool) {
	for lo := 0; lo < rows; lo += kernelChunk {
		hi := lo + kernelChunk
		if hi > rows {
			hi = rows
		}
		b.root.evalChunk(sc, lo, out[lo:hi])
	}
}

// evalChunk evaluates node n over rows [lo, lo+len(dst)) of the scattered
// group, writing one bool per row into dst.
func (n *bnode) evalChunk(sc *kernelScratch, lo int, dst []bool) {
	switch n.kind {
	case nAnd:
		if len(n.kids) == 0 {
			for i := range dst {
				dst[i] = true
			}
			return
		}
		n.kids[0].evalChunk(sc, lo, dst)
		if len(n.kids) == 1 {
			return
		}
		t := sc.getTmp()
		for k := 1; k < len(n.kids); k++ {
			tmp := t[:len(dst)]
			n.kids[k].evalChunk(sc, lo, tmp)
			for i := range dst {
				dst[i] = dst[i] && tmp[i]
			}
		}
		sc.putTmp(t)
	case nOr:
		if len(n.kids) == 0 {
			for i := range dst {
				dst[i] = false
			}
			return
		}
		n.kids[0].evalChunk(sc, lo, dst)
		if len(n.kids) == 1 {
			return
		}
		t := sc.getTmp()
		for k := 1; k < len(n.kids); k++ {
			tmp := t[:len(dst)]
			n.kids[k].evalChunk(sc, lo, tmp)
			for i := range dst {
				dst[i] = dst[i] || tmp[i]
			}
		}
		sc.putTmp(t)
	case nNot:
		n.kids[0].evalChunk(sc, lo, dst)
		for i := range dst {
			dst[i] = !dst[i]
		}
	case nCmp:
		if n.isStr {
			col := sc.str[n.col][lo : lo+len(dst)]
			v := n.sval
			for i, s := range col {
				dst[i] = s == v // bind guarantees op == OpEq
			}
			return
		}
		col := sc.num[n.col][lo : lo+len(dst)]
		v := n.fval
		switch n.op {
		case OpEq:
			for i, x := range col {
				dst[i] = x == v
			}
		case OpLt:
			for i, x := range col {
				dst[i] = x < v
			}
		case OpLe:
			for i, x := range col {
				dst[i] = x <= v
			}
		case OpGt:
			for i, x := range col {
				dst[i] = x > v
			}
		case OpGe:
			for i, x := range col {
				dst[i] = x >= v
			}
		}
	case nIn:
		if n.isStr {
			col := sc.str[n.col][lo : lo+len(dst)]
			for i, s := range col {
				_, ok := n.sset[s]
				dst[i] = ok
			}
			return
		}
		col := sc.num[n.col][lo : lo+len(dst)]
		if len(n.fvals) == 1 {
			v := n.fvals[0]
			for i, x := range col {
				dst[i] = x == v
			}
			return
		}
		for i, x := range col {
			m := false
			for _, f := range n.fvals {
				m = m || x == f
			}
			dst[i] = m
		}
	}
}
