package query

import (
	"context"
	"fmt"
	"math"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/pipeline"
)

// cachedPlan bundles the planner outputs the cached-block executor needs.
type cachedPlan struct {
	idx     *core.ArchiveIndex
	b       *bound
	mask    []bool // per-group survive-pruning mask
	aggMode bool
	aggCols []int
	selIdx  []int
	needIdx []int // schema columns the query touches, ascending
}

// runCached executes a planned query directly over decoded column blocks: a
// full cache hit never touches the archive bytes (no parse, scan, unpack, or
// decoder inference), a partial hit decodes only the missing (group, column)
// pairs inside the BlockSource. The filter runs as branch-lean chunked
// kernels over per-group blocks with worker-local pooled scratch, aggregates
// fold serially in global row order, and packing writes each output column
// into preallocated, offset-addressed slices — so a steady-state query's
// allocations are O(result) plus O(surviving groups) bookkeeping, never
// O(rows decoded). Results are byte-identical to the uncached path at every
// parallelism level; BytesSkipped reports only the pruned groups' segment
// bytes (cached groups are never read, so there is no scan counter to
// report).
func runCached(ctx context.Context, a *core.Archive, opts Options, res *Result, p cachedPlan) (*Result, error) {
	var run *pipeline.Run
	if opts.Pool != nil {
		run = pipeline.NewWithPool(ctx, opts.Pool)
	} else {
		run = pipeline.New(ctx, opts.Parallelism)
	}
	for i, g := range p.idx.Groups {
		if !p.mask[i] {
			res.BytesSkipped += g.SegmentBytes
		}
	}

	// Surviving, non-empty groups: the unit of block fetch and filtering.
	gids := make([]int, 0, len(p.idx.Groups))
	for i, m := range p.mask {
		if m && p.idx.Groups[i].Count > 0 {
			gids = append(gids, i)
		}
	}

	var blocks [][]*core.ColumnBlock
	err := run.StageBytes("blocks", func() (int64, error) {
		if len(gids) == 0 {
			return 0, nil
		}
		var err error
		blocks, err = opts.Blocks.Blocks(ctx, gids, p.needIdx)
		if err != nil {
			return 0, err
		}
		var total int64
		for gi, g := range gids {
			if len(blocks[gi]) != len(p.needIdx) {
				return 0, fmt.Errorf("query: block source returned %d columns for group %d, want %d",
					len(blocks[gi]), g, len(p.needIdx))
			}
			for ci, blk := range blocks[gi] {
				if blk == nil || blk.Len() != p.idx.Groups[g].Count {
					return total, fmt.Errorf("query: block source returned a bad block for group %d column %d", g, p.needIdx[ci])
				}
				total += blk.Bytes()
			}
		}
		return total, nil
	})
	if err != nil {
		return nil, err
	}

	// Filter: one keep bitmap per group, written by branch-lean chunked
	// kernels over worker-local scratch. Each group's bitmap and count land
	// in index-addressed slots, so the outcome is parallelism-independent.
	counts := make([]int, len(gids))
	keeps := make([][]bool, len(gids)) // nil entries mean "every row matches"
	var bufs []*boolBuf
	defer func() {
		for _, kb := range bufs {
			putBoolBuf(kb)
		}
	}()
	if p.b == nil {
		for gi, g := range gids {
			counts[gi] = p.idx.Groups[g].Count
		}
	} else {
		bufs = make([]*boolBuf, len(gids))
		scratches := make([]*kernelScratch, run.Parallelism())
		err = run.Stage("filter", func() error {
			return run.ForEachWorker(len(gids), func(w, gi int) error {
				sc := scratches[w]
				if sc == nil {
					sc = getScratch(len(p.idx.Plan.Schema.Columns))
					scratches[w] = sc
				}
				rows := p.idx.Groups[gids[gi]].Count
				kb := getBoolBuf(rows)
				bufs[gi] = kb
				keeps[gi] = kb.b
				sc.scatter(blocks[gi], p.needIdx)
				p.b.evalBlock(sc, rows, kb.b)
				n := 0
				for _, k := range kb.b {
					if k {
						n++
					}
				}
				counts[gi] = n
				return nil
			})
		})
		for _, sc := range scratches {
			if sc != nil {
				putScratch(sc)
			}
		}
		if err != nil {
			return nil, err
		}
	}
	for _, n := range counts {
		res.Matched += n
	}

	if p.aggMode {
		res.Aggregates = computeAggsBlocks(opts.Aggs, p.aggCols, p.needIdx, blocks, keeps, res.Matched)
		res.Stages = append(res.Stages, run.Stats()...)
		return res, nil
	}

	// Row mode: per-group take counts honor Limit in global row order, and
	// their prefix sums give every group a disjoint output span.
	nOut := res.Matched
	if opts.Limit > 0 && opts.Limit < nOut {
		nOut = opts.Limit
	}
	take := make([]int, len(gids))
	offs := make([]int, len(gids))
	rem := nOut
	for gi, n := range counts {
		if n > rem {
			n = rem
		}
		take[gi] = n
		offs[gi] = nOut - rem
		rem -= n
	}

	// Output schema follows archive order, matching the uncached path.
	outIdx := p.selIdx
	if len(opts.Select) == 0 {
		outIdx = make([]int, len(p.idx.Plan.Schema.Columns))
		for j := range outIdx {
			outIdx[j] = j
		}
	} else {
		outIdx = append([]int(nil), p.selIdx...)
		sortInts(outIdx)
		outIdx = dedupInts(outIdx)
	}
	// Position of each output column inside the fetched block columns.
	blockPos := make([]int, len(outIdx))
	for i, c := range outIdx {
		blockPos[i] = -1
		for pos, nc := range p.needIdx {
			if nc == c {
				blockPos[i] = pos
				break
			}
		}
		if blockPos[i] < 0 {
			return nil, fmt.Errorf("query: output column %d missing from fetched blocks", c)
		}
	}
	outCols := make([]dataset.Column, len(outIdx))
	for i, fj := range outIdx {
		outCols[i] = p.idx.Plan.Schema.Columns[fj]
	}
	out := dataset.NewTable(dataset.NewSchema(outCols...), 0)
	err = run.Stage("pack", func() error {
		return run.ForEach(len(outIdx), func(i int) error {
			if outCols[i].Type == dataset.Categorical {
				dst := make([]string, nOut)
				for gi := range gids {
					packStrings(dst[offs[gi]:offs[gi]+take[gi]], blocks[gi][blockPos[i]].Str, keeps[gi])
				}
				out.Str[i] = dst
			} else {
				dst := make([]float64, nOut)
				for gi := range gids {
					packFloats(dst[offs[gi]:offs[gi]+take[gi]], blocks[gi][blockPos[i]].Num, keeps[gi])
				}
				out.Num[i] = dst
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	out.SetNumRows(nOut)
	res.Table = out
	res.Stages = append(res.Stages, run.Stats()...)
	return res, nil
}

// packStrings gathers the first len(dst) kept rows of src into dst; a nil
// keep gathers the leading rows.
func packStrings(dst, src []string, keep []bool) {
	if len(dst) == 0 {
		return
	}
	if keep == nil {
		copy(dst, src)
		return
	}
	n := 0
	for r, k := range keep {
		if k {
			dst[n] = src[r]
			n++
			if n == len(dst) {
				return
			}
		}
	}
}

// packFloats is packStrings for numeric columns.
func packFloats(dst, src []float64, keep []bool) {
	if len(dst) == 0 {
		return
	}
	if keep == nil {
		copy(dst, src)
		return
	}
	n := 0
	for r, k := range keep {
		if k {
			dst[n] = src[r]
			n++
			if n == len(dst) {
				return
			}
		}
	}
}

// computeAggsBlocks evaluates the aggregates serially over groups in archive
// order and rows in group order — the same global row order (and therefore
// the same float operation order, bit for bit) as computeAggs over the
// concatenated uncached decode.
func computeAggsBlocks(aggs []AggOp, aggCols []int, needIdx []int, blocks [][]*core.ColumnBlock, keeps [][]bool, matched int) []Aggregate {
	colOf := func(c int) int {
		for pos, nc := range needIdx {
			if nc == c {
				return pos
			}
		}
		return -1
	}
	out := make([]Aggregate, len(aggs))
	for i, a := range aggs {
		out[i].Op = a
		switch a.Kind {
		case AggCount:
			out[i].Value = float64(matched)
		case AggMin, AggMax:
			v := math.NaN()
			pos := colOf(aggCols[i])
			for gi := range blocks {
				col := blocks[gi][pos].Num
				keep := keepAt(keeps, gi)
				for r, x := range col {
					if keep != nil && !keep[r] {
						continue
					}
					if math.IsNaN(v) ||
						(a.Kind == AggMin && x < v) ||
						(a.Kind == AggMax && x > v) {
						v = x
					}
				}
			}
			out[i].Value = v
		case AggSum:
			var s float64
			pos := colOf(aggCols[i])
			for gi := range blocks {
				col := blocks[gi][pos].Num
				keep := keepAt(keeps, gi)
				for r, x := range col {
					if keep == nil || keep[r] {
						s += x
					}
				}
			}
			out[i].Value = s
		}
	}
	return out
}

// keepAt returns group gi's keep bitmap, nil when every row matches.
func keepAt(keeps [][]bool, gi int) []bool {
	if keeps == nil {
		return nil
	}
	return keeps[gi]
}
