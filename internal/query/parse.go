package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse builds a predicate from a SQL-flavoured filter expression:
//
//	seq >= 100 AND tag = 'hot'
//	NOT (grade IN (0, 1) OR m1 < -5)
//	city != 'cusco'
//
// Operators: = == != <> < <= > >= IN, combined with AND / OR / NOT and
// parentheses (keywords are case-insensitive). Strings are single-quoted
// with ” escaping a quote; numbers use Go float syntax. != and <> desugar
// to NOT(col = v), and `col NOT IN (...)` to NOT(col IN (...)).
func Parse(s string) (Pred, error) {
	p := &parser{src: s}
	p.next()
	pred, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %q after expression", p.tok.text)
	}
	return pred, nil
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp     // = == != <> < <= > >=
	tokLParen // (
	tokRParen // )
	tokComma
)

type token struct {
	kind tokKind
	text string // ident name, operator text, or raw number
	sval string // decoded string literal
	fval float64
	pos  int
}

type parser struct {
	src string
	pos int
	tok token
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

// next scans the following token into p.tok. A lexical error (stray byte,
// unterminated string) yields an EOF-kind token carrying the offending text
// and poisons the scanner, so the grammar reports it as "unexpected ..." at
// the right offset without separate error plumbing.
func (p *parser) next() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
	start := p.pos
	p.tok = token{kind: tokEOF, pos: start}
	if p.pos >= len(p.src) {
		return
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok = token{kind: tokLParen, text: "(", pos: start}
	case c == ')':
		p.pos++
		p.tok = token{kind: tokRParen, text: ")", pos: start}
	case c == ',':
		p.pos++
		p.tok = token{kind: tokComma, text: ",", pos: start}
	case c == '\'':
		p.pos++
		var sb strings.Builder
		for {
			if p.pos >= len(p.src) {
				p.tok = token{kind: tokEOF, text: "unterminated string", pos: start}
				p.pos = len(p.src) + 1 // poison: callers see EOF and report
				return
			}
			ch := p.src[p.pos]
			p.pos++
			if ch == '\'' {
				if p.pos < len(p.src) && p.src[p.pos] == '\'' {
					sb.WriteByte('\'') // '' escapes a quote
					p.pos++
					continue
				}
				break
			}
			sb.WriteByte(ch)
		}
		p.tok = token{kind: tokString, sval: sb.String(), pos: start}
	case strings.ContainsRune("=!<>", rune(c)):
		end := p.pos + 1
		if end < len(p.src) && strings.ContainsRune("=>", rune(p.src[end])) {
			end++
		}
		p.tok = token{kind: tokOp, text: p.src[p.pos:end], pos: start}
		p.pos = end
	case c == '-' || c == '.' || (c >= '0' && c <= '9'):
		end := p.pos + 1
		for end < len(p.src) {
			ch := p.src[end]
			if (ch >= '0' && ch <= '9') || ch == '.' || ch == 'e' || ch == 'E' {
				end++
				continue
			}
			if (ch == '+' || ch == '-') && (p.src[end-1] == 'e' || p.src[end-1] == 'E') {
				end++
				continue
			}
			break
		}
		p.tok = token{kind: tokNumber, text: p.src[p.pos:end], pos: start}
		p.pos = end
	case c == '_' || unicode.IsLetter(rune(c)):
		end := p.pos + 1
		for end < len(p.src) {
			ch := rune(p.src[end])
			if ch == '_' || ch == '.' || unicode.IsLetter(ch) || unicode.IsDigit(ch) {
				end++
				continue
			}
			break
		}
		p.tok = token{kind: tokIdent, text: p.src[p.pos:end], pos: start}
		p.pos = end
	default:
		p.tok = token{kind: tokEOF, text: string(c), pos: start}
		p.pos = len(p.src) + 1 // poison so the caller reports "unexpected"
	}
}

// keyword reports whether the current token is the given keyword,
// case-insensitively.
func (p *parser) keyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) orExpr() (Pred, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	kids := []Pred{left}
	for p.keyword("or") {
		p.next()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return Or(kids...), nil
}

func (p *parser) andExpr() (Pred, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	kids := []Pred{left}
	for p.keyword("and") {
		p.next()
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return And(kids...), nil
}

func (p *parser) notExpr() (Pred, error) {
	if p.keyword("not") {
		p.next()
		kid, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Not(kid), nil
	}
	return p.primary()
}

func (p *parser) primary() (Pred, error) {
	switch p.tok.kind {
	case tokLParen:
		p.next()
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected ')', got %q", p.tok.text)
		}
		p.next()
		return inner, nil
	case tokIdent:
		if p.keyword("and") || p.keyword("or") || p.keyword("not") || p.keyword("in") {
			return nil, p.errf("expected column name, got keyword %q", p.tok.text)
		}
		col := p.tok.text
		p.next()
		negate := false
		if p.keyword("not") {
			p.next()
			if !p.keyword("in") {
				return nil, p.errf("expected IN after NOT, got %q", p.tok.text)
			}
			negate = true
		}
		if p.keyword("in") {
			p.next()
			inner, err := p.inList(col)
			if err != nil {
				return nil, err
			}
			if negate {
				return Not(inner), nil
			}
			return inner, nil
		}
		if p.tok.kind != tokOp {
			return nil, p.errf("expected comparison operator after %q, got %q", col, p.tok.text)
		}
		opText := p.tok.text
		p.next()
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		switch opText {
		case "=", "==":
			return cmpPred{col: col, op: OpEq, val: val}, nil
		case "!=", "<>":
			return Not(cmpPred{col: col, op: OpEq, val: val}), nil
		case "<":
			return cmpPred{col: col, op: OpLt, val: val}, nil
		case "<=":
			return cmpPred{col: col, op: OpLe, val: val}, nil
		case ">":
			return cmpPred{col: col, op: OpGt, val: val}, nil
		case ">=":
			return cmpPred{col: col, op: OpGe, val: val}, nil
		}
		return nil, p.errf("unknown operator %q", opText)
	}
	return nil, p.errf("expected predicate, got %q", p.tok.text)
}

func (p *parser) inList(col string) (Pred, error) {
	if p.tok.kind != tokLParen {
		return nil, p.errf("expected '(' after IN, got %q", p.tok.text)
	}
	p.next()
	var vals []lit
	for {
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.tok.kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.tok.kind != tokRParen {
		return nil, p.errf("expected ')' closing IN list, got %q", p.tok.text)
	}
	p.next()
	return inPred{col: col, vals: vals}, nil
}

func (p *parser) literal() (lit, error) {
	switch p.tok.kind {
	case tokString:
		v := lit{s: p.tok.sval, isStr: true}
		p.next()
		return v, nil
	case tokNumber:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return lit{}, p.errf("bad number %q", p.tok.text)
		}
		p.next()
		return lit{f: f}, nil
	}
	return lit{}, p.errf("expected literal, got %q", p.tok.text)
}

// ParseAggs parses a comma-separated aggregate list — "count", "min:col",
// "max:col", "sum:col" — into AggOps, the same surface `dsqz query -agg`
// and the daemon's query endpoint accept.
func ParseAggs(s string) ([]AggOp, error) {
	var out []AggOp
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		kind, col, has := strings.Cut(part, ":")
		switch strings.ToLower(kind) {
		case "count":
			if has {
				return nil, fmt.Errorf("query: bad aggregate %q (count takes no column)", part)
			}
			out = append(out, AggOp{Kind: AggCount})
		case "min", "max", "sum":
			if !has || col == "" {
				return nil, fmt.Errorf("query: bad aggregate %q (want %s:column)", part, kind)
			}
			k := AggMin
			switch strings.ToLower(kind) {
			case "max":
				k = AggMax
			case "sum":
				k = AggSum
			}
			out = append(out, AggOp{Kind: k, Col: col})
		default:
			return nil, fmt.Errorf("query: bad aggregate %q (want count, min:col, max:col, or sum:col)", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("query: empty aggregate list")
	}
	return out, nil
}
