// Package query evaluates filter + projection + aggregation queries directly
// against DeepSqueeze archives. The planner reads only the archive's header,
// footer index, and per-row-group zone maps (core.ReadIndex), translates the
// predicate's literals into the encoded domain recorded in the stored plan,
// and prunes row groups whose zones cannot contain a match — pruned groups'
// segments are skipped without decoding a byte. Surviving groups decode
// through the regular parallel pipeline and the predicate is re-evaluated
// exactly on the decoded values, so a query returns byte-for-byte the rows a
// full decompress-then-filter would.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CmpOp is a comparison operator in a leaf predicate. There is no OpNe:
// inequality is expressed as Not(Eq(...)), which keeps zone-map pruning a
// pure interval/bitmap test with a negation flag.
type CmpOp int

const (
	OpEq CmpOp = iota
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", int(op))
}

// Pred is a predicate over a table's columns. Build one with the Eq/Lt/Le/
// Gt/Ge/In/And/Or/Not constructors or parse one from text with Parse. The
// interface is sealed: evaluation requires binding against an archive's
// stored plan, which Run does internally.
type Pred interface {
	fmt.Stringer
	pred() // sealed
}

// lit is a predicate literal: a quoted string or a number. Constructors
// accept `any` and normalize here; an unsupported Go type is carried as an
// invalid literal and rejected with a clear error at bind time rather than
// panicking at construction.
type lit struct {
	s     string
	f     float64
	isStr bool
	bad   string // non-empty: the unsupported Go type's name
}

func toLit(v any) lit {
	switch x := v.(type) {
	case string:
		return lit{s: x, isStr: true}
	case float64:
		return lit{f: x}
	case float32:
		return lit{f: float64(x)}
	case int:
		return lit{f: float64(x)}
	case int64:
		return lit{f: float64(x)}
	case uint:
		return lit{f: float64(x)}
	case bool:
		return lit{bad: "bool"}
	default:
		return lit{bad: fmt.Sprintf("%T", v)}
	}
}

func (l lit) String() string {
	if l.isStr {
		return "'" + strings.ReplaceAll(l.s, "'", "''") + "'"
	}
	return strconv.FormatFloat(l.f, 'g', -1, 64)
}

type cmpPred struct {
	col string
	op  CmpOp
	val lit
}

type inPred struct {
	col  string
	vals []lit
}

type andPred struct{ kids []Pred }
type orPred struct{ kids []Pred }
type notPred struct{ kid Pred }

func (cmpPred) pred() {}
func (inPred) pred()  {}
func (andPred) pred() {}
func (orPred) pred()  {}
func (notPred) pred() {}

func (p cmpPred) String() string { return fmt.Sprintf("%s %s %s", p.col, p.op, p.val) }

func (p inPred) String() string {
	parts := make([]string, len(p.vals))
	for i, v := range p.vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s IN (%s)", p.col, strings.Join(parts, ", "))
}

func joinKids(kids []Pred, op string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, " "+op+" ") + ")"
}

func (p andPred) String() string { return joinKids(p.kids, "AND") }
func (p orPred) String() string  { return joinKids(p.kids, "OR") }
func (p notPred) String() string { return "NOT " + p.kid.String() }

// Eq matches rows whose column equals v (a string for categorical columns,
// a number for numeric ones).
func Eq(col string, v any) Pred { return cmpPred{col: col, op: OpEq, val: toLit(v)} }

// Lt matches rows whose numeric column is strictly less than v.
func Lt(col string, v any) Pred { return cmpPred{col: col, op: OpLt, val: toLit(v)} }

// Le matches rows whose numeric column is at most v.
func Le(col string, v any) Pred { return cmpPred{col: col, op: OpLe, val: toLit(v)} }

// Gt matches rows whose numeric column is strictly greater than v.
func Gt(col string, v any) Pred { return cmpPred{col: col, op: OpGt, val: toLit(v)} }

// Ge matches rows whose numeric column is at least v.
func Ge(col string, v any) Pred { return cmpPred{col: col, op: OpGe, val: toLit(v)} }

// In matches rows whose column equals any of the listed values.
func In(col string, vals ...any) Pred {
	p := inPred{col: col, vals: make([]lit, len(vals))}
	for i, v := range vals {
		p.vals[i] = toLit(v)
	}
	return p
}

// And matches rows satisfying every child predicate (vacuously true when
// empty).
func And(kids ...Pred) Pred { return andPred{kids: kids} }

// Or matches rows satisfying at least one child predicate (vacuously false
// when empty).
func Or(kids ...Pred) Pred { return orPred{kids: kids} }

// Not inverts a predicate.
func Not(kid Pred) Pred { return notPred{kid: kid} }

// sortedFloats returns the numeric literals of an IN list in ascending
// order, for interval pruning.
func sortedFloats(vals []lit) []float64 {
	out := make([]float64, 0, len(vals))
	for _, v := range vals {
		out = append(out, v.f)
	}
	sort.Float64s(out)
	return out
}
