package query

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
)

// queryTable builds a deterministic mixed table tuned for pruning tests:
// seq is monotone (adjacent row groups get disjoint zones), noise is
// uniform, grade has five distinct values (value dictionary), tag cycles a
// small alphabet (categorical bitmap zones).
func queryTable(rows int, seed int64) *dataset.Table {
	schema := dataset.NewSchema(
		dataset.Column{Name: "tag", Type: dataset.Categorical},
		dataset.Column{Name: "seq", Type: dataset.Numeric},
		dataset.Column{Name: "noise", Type: dataset.Numeric},
		dataset.Column{Name: "grade", Type: dataset.Numeric},
	)
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"alpha", "beta", "gamma", "delta"}
	tb := dataset.NewTable(schema, rows)
	for i := 0; i < rows; i++ {
		tb.AppendRow(
			[]string{tags[rng.Intn(len(tags))]},
			[]float64{float64(i), rng.Float64()*200 - 100, float64(i % 5)},
		)
	}
	return tb
}

func compressQueryTable(t *testing.T, rows int, seed int64, groupSize int) []byte {
	t.Helper()
	opts := core.DefaultOptions()
	opts.CodeSize = 2
	opts.Train.Epochs = 3
	opts.Train.BatchSize = 128
	opts.Seed = seed
	opts.RowGroupSize = groupSize
	res, err := core.Compress(queryTable(rows, seed), []float64{0, 0.01, 0.01, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Archive
}

// naiveEval is an independent reference evaluator over the fully decoded
// table — deliberately written against the raw AST, not the bound plan, so
// a planner bug cannot hide on both sides of the equivalence check.
func naiveEval(t *testing.T, p Pred, tb *dataset.Table, r int) bool {
	t.Helper()
	col := func(name string) int {
		for i, c := range tb.Schema.Columns {
			if c.Name == name {
				return i
			}
		}
		t.Fatalf("naive: unknown column %q", name)
		return -1
	}
	switch q := p.(type) {
	case cmpPred:
		c := col(q.col)
		if tb.Schema.Columns[c].Type == dataset.Categorical {
			return tb.Str[c][r] == q.val.s
		}
		v := tb.Num[c][r]
		switch q.op {
		case OpEq:
			return v == q.val.f
		case OpLt:
			return v < q.val.f
		case OpLe:
			return v <= q.val.f
		case OpGt:
			return v > q.val.f
		case OpGe:
			return v >= q.val.f
		}
	case inPred:
		c := col(q.col)
		for _, val := range q.vals {
			if tb.Schema.Columns[c].Type == dataset.Categorical {
				if tb.Str[c][r] == val.s {
					return true
				}
			} else if tb.Num[c][r] == val.f {
				return true
			}
		}
		return false
	case andPred:
		for _, k := range q.kids {
			if !naiveEval(t, k, tb, r) {
				return false
			}
		}
		return true
	case orPred:
		for _, k := range q.kids {
			if naiveEval(t, k, tb, r) {
				return true
			}
		}
		return false
	case notPred:
		return !naiveEval(t, q.kid, tb, r)
	}
	t.Fatalf("naive: unhandled predicate %T", p)
	return false
}

func naiveMatches(t *testing.T, p Pred, tb *dataset.Table) []int {
	t.Helper()
	var rows []int
	for r := 0; r < tb.NumRows(); r++ {
		if p == nil || naiveEval(t, p, tb, r) {
			rows = append(rows, r)
		}
	}
	return rows
}

func tableCSV(t *testing.T, tb *dataset.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// randPred generates a random valid predicate over queryTable's schema.
func randPred(rng *rand.Rand, depth int) Pred {
	if depth > 0 && rng.Float64() < 0.6 {
		switch rng.Intn(3) {
		case 0:
			return And(randPred(rng, depth-1), randPred(rng, depth-1))
		case 1:
			return Or(randPred(rng, depth-1), randPred(rng, depth-1))
		default:
			return Not(randPred(rng, depth-1))
		}
	}
	tags := []string{"alpha", "beta", "gamma", "delta", "unknown"}
	switch rng.Intn(6) {
	case 0:
		lo := rng.Float64() * 1200
		return Ge("seq", lo)
	case 1:
		return Lt("seq", rng.Float64()*1200)
	case 2:
		return Gt("noise", rng.Float64()*200-100)
	case 3:
		return Eq("grade", float64(rng.Intn(6)))
	case 4:
		return Eq("tag", tags[rng.Intn(len(tags))])
	default:
		return In("grade", float64(rng.Intn(5)), float64(rng.Intn(5)))
	}
}

// TestQueryEquivalence is the engine's core contract: for randomized
// predicates, Query returns byte-for-byte the rows a full decompress-then-
// filter produces, at parallelism 1, 4, and NumCPU.
func TestQueryEquivalence(t *testing.T) {
	archive := compressQueryTable(t, 1000, 61, 100)
	full, err := core.Decompress(archive)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	parallelisms := []int{1, 4, runtime.NumCPU()}
	prunedTotal := 0
	for trial := 0; trial < 20; trial++ {
		p := randPred(rng, 2)
		want := naiveMatches(t, p, full)
		wantCSV := tableCSV(t, full.Sample(want))
		for _, par := range parallelisms {
			res, err := Run(archive, Options{Where: p, Parallelism: par})
			if err != nil {
				t.Fatalf("trial %d (%s) p=%d: %v", trial, p, par, err)
			}
			if res.Matched != len(want) {
				t.Fatalf("trial %d (%s) p=%d: matched %d rows, naive says %d",
					trial, p, par, res.Matched, len(want))
			}
			if got := tableCSV(t, res.Table); !bytes.Equal(got, wantCSV) {
				t.Fatalf("trial %d (%s) p=%d: result differs from decompress-then-filter",
					trial, p, par)
			}
			prunedTotal += res.GroupsPruned
		}
	}
	if prunedTotal == 0 {
		t.Fatal("no trial pruned any group — zone maps are not engaging")
	}
}

// TestQueryPruning checks that a tight range over the monotone column prunes
// most groups, skips their bytes, and still returns exact results.
func TestQueryPruning(t *testing.T) {
	archive := compressQueryTable(t, 1000, 63, 100)
	full, err := core.Decompress(archive)
	if err != nil {
		t.Fatal(err)
	}
	p := And(Ge("seq", 420), Lt("seq", 480))
	res, err := Run(archive, Options{Where: p})
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupsTotal != 10 {
		t.Fatalf("GroupsTotal = %d, want 10", res.GroupsTotal)
	}
	if res.GroupsPruned < 7 {
		t.Fatalf("pruned %d of %d groups, want most of them", res.GroupsPruned, res.GroupsTotal)
	}
	if res.BytesSkipped == 0 {
		t.Fatal("no bytes skipped despite pruned groups")
	}
	want := naiveMatches(t, p, full)
	if res.Matched != len(want) || !bytes.Equal(tableCSV(t, res.Table), tableCSV(t, full.Sample(want))) {
		t.Fatal("pruned query differs from decompress-then-filter")
	}

	// A predicate outside the column's range prunes everything.
	none, err := Run(archive, Options{Where: Gt("seq", 1e9)})
	if err != nil {
		t.Fatal(err)
	}
	if none.Matched != 0 || none.Table.NumRows() != 0 {
		t.Fatalf("impossible predicate matched %d rows", none.Matched)
	}
	if none.GroupsPruned != none.GroupsTotal {
		t.Fatalf("impossible predicate pruned %d of %d groups", none.GroupsPruned, none.GroupsTotal)
	}
}

// TestQueryProjection pins row-mode projection: output schema follows
// archive column order regardless of request order, and values match the
// projected full decode.
func TestQueryProjection(t *testing.T) {
	archive := compressQueryTable(t, 400, 64, 100)
	full, err := core.Decompress(archive)
	if err != nil {
		t.Fatal(err)
	}
	p := Lt("seq", 150)
	res, err := Run(archive, Options{Where: p, Select: []string{"grade", "tag"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Table.Schema.Columns); got != 2 {
		t.Fatalf("%d output columns, want 2", got)
	}
	if res.Table.Schema.Columns[0].Name != "tag" || res.Table.Schema.Columns[1].Name != "grade" {
		t.Fatalf("output columns %v, want archive order [tag grade]", res.Table.Schema.Columns)
	}
	want := naiveMatches(t, p, full)
	sampled := full.Sample(want)
	for r := 0; r < res.Table.NumRows(); r++ {
		if res.Table.Str[0][r] != sampled.Str[0][r] || res.Table.Num[1][r] != sampled.Num[3][r] {
			t.Fatalf("row %d differs from projected full decode", r)
		}
	}
	if res.Table.NumRows() != len(want) {
		t.Fatalf("projected %d rows, want %d", res.Table.NumRows(), len(want))
	}
}

// TestQueryAggregates checks aggregate mode against naive computation,
// including the zero-match conventions (NaN min/max, zero sum and count).
func TestQueryAggregates(t *testing.T) {
	archive := compressQueryTable(t, 500, 65, 100)
	full, err := core.Decompress(archive)
	if err != nil {
		t.Fatal(err)
	}
	p := Ge("seq", 200)
	aggs := []AggOp{
		{Kind: AggCount},
		{Kind: AggMin, Col: "noise"},
		{Kind: AggMax, Col: "noise"},
		{Kind: AggSum, Col: "grade"},
	}
	res, err := Run(archive, Options{Where: p, Aggs: aggs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table != nil {
		t.Fatal("aggregate mode returned a row table")
	}
	want := naiveMatches(t, p, full)
	mn, mx, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, r := range want {
		mn = math.Min(mn, full.Num[2][r])
		mx = math.Max(mx, full.Num[2][r])
		sum += full.Num[3][r]
	}
	got := res.Aggregates
	if len(got) != 4 {
		t.Fatalf("%d aggregates, want 4", len(got))
	}
	if got[0].Value != float64(len(want)) || got[1].Value != mn || got[2].Value != mx || got[3].Value != sum {
		t.Fatalf("aggregates %v, want count=%d min=%g max=%g sum=%g", got, len(want), mn, mx, sum)
	}

	// Zero matching rows: min/max NaN, sum 0, count 0.
	zero, err := Run(archive, Options{Where: Gt("seq", 1e9), Aggs: aggs})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Aggregates[0].Value != 0 || !math.IsNaN(zero.Aggregates[1].Value) ||
		!math.IsNaN(zero.Aggregates[2].Value) || zero.Aggregates[3].Value != 0 {
		t.Fatalf("zero-match aggregates %v", zero.Aggregates)
	}

	// The unfiltered pure count avoids decoding entirely.
	cnt, err := Run(archive, Options{Aggs: []AggOp{{Kind: AggCount}}})
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Matched != 500 || cnt.Aggregates[0].Value != 500 {
		t.Fatalf("pure count = %v (matched %d), want 500", cnt.Aggregates, cnt.Matched)
	}
	if len(cnt.Stages) != 0 {
		t.Fatalf("pure count ran %d stages, want none", len(cnt.Stages))
	}

	// Aggregate validation errors.
	if _, err := Run(archive, Options{Aggs: []AggOp{{Kind: AggMin, Col: "tag"}}}); err == nil {
		t.Fatal("min over a categorical column accepted")
	}
	if _, err := Run(archive, Options{Aggs: []AggOp{{Kind: AggCount, Col: "seq"}}}); err == nil {
		t.Fatal("count with a column accepted")
	}
	if _, err := Run(archive, Options{Aggs: []AggOp{{Kind: AggSum, Col: "nope"}}}); err == nil {
		t.Fatal("sum over an unknown column accepted")
	}
}

// TestQueryLimit caps row output while still reporting the full match count.
func TestQueryLimit(t *testing.T) {
	archive := compressQueryTable(t, 400, 66, 100)
	res, err := Run(archive, Options{Where: Ge("seq", 100), Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 7 {
		t.Fatalf("limit returned %d rows, want 7", res.Table.NumRows())
	}
	if res.Matched <= 7 {
		t.Fatalf("Matched = %d, want the uncapped count", res.Matched)
	}
}

// TestQueryV1 runs the engine over a frozen version-1 golden archive: no
// zone maps, no pruning — but exact results.
func TestQueryV1(t *testing.T) {
	archive, err := os.ReadFile(filepath.Join("..", "core", "testdata", "categorical.dsqz"))
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Decompress(archive)
	if err != nil {
		t.Fatal(err)
	}
	p := Or(Eq("city", "cusco"), Eq("tier", "std"))
	res, err := Run(archive, Options{Where: p})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveMatches(t, p, full)
	if res.Matched != len(want) {
		t.Fatalf("matched %d, naive says %d", res.Matched, len(want))
	}
	if res.GroupsPruned != 0 || res.GroupsTotal != 1 {
		t.Fatalf("v1 pruning stats %d/%d, want 0/1", res.GroupsPruned, res.GroupsTotal)
	}
	if !bytes.Equal(tableCSV(t, res.Table), tableCSV(t, full.Sample(want))) {
		t.Fatal("v1 query differs from decompress-then-filter")
	}
}

// TestQueryStreamingUnseen queries a streaming-written archive whose later
// groups contain categorical values absent from the training dictionary: the
// overflow bit must keep those groups alive for out-of-dictionary literals.
func TestQueryStreamingUnseen(t *testing.T) {
	schema := dataset.NewSchema(
		dataset.Column{Name: "tag", Type: dataset.Categorical},
		dataset.Column{Name: "val", Type: dataset.Numeric},
	)
	tb := dataset.NewTable(schema, 300)
	for i := 0; i < 300; i++ {
		tag := fmt.Sprintf("t%d", i%3)
		if i >= 200 {
			tag = fmt.Sprintf("new%d", i%2)
		}
		tb.AppendRow([]string{tag}, []float64{float64(i)})
	}
	opts := core.DefaultOptions()
	opts.CodeSize = 2
	opts.Train.Epochs = 2
	opts.Train.BatchSize = 64
	opts.Seed = 9
	opts.RowGroupSize = 100
	var buf bytes.Buffer
	aw, err := core.NewArchiveWriter(&buf, schema, []float64{0, 0.01}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Write(tb); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	archive := buf.Bytes()
	full, err := core.Decompress(archive)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Pred{
		Eq("tag", "new1"),          // only in the last group (overflow bit)
		Eq("tag", "t2"),            // only in the first two groups
		Not(In("tag", "t0", "t1")), // negation across bitmap zones
		Eq("tag", "never-existed"), // matches nothing anywhere
	} {
		want := naiveMatches(t, p, full)
		res, err := Run(archive, Options{Where: p})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Matched != len(want) {
			t.Fatalf("%s: matched %d, naive says %d", p, res.Matched, len(want))
		}
		if !bytes.Equal(tableCSV(t, res.Table), tableCSV(t, full.Sample(want))) {
			t.Fatalf("%s: differs from decompress-then-filter", p)
		}
	}
	// Dictionary-only literals must prune the all-unseen third group.
	res, err := Run(archive, Options{Where: Eq("tag", "t0")})
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupsPruned == 0 {
		t.Fatal("dictionary literal pruned nothing despite an all-unseen group")
	}
}

// TestBindErrors covers planner rejection paths.
func TestBindErrors(t *testing.T) {
	archive := compressQueryTable(t, 200, 67, 0)
	cases := []struct {
		name string
		p    Pred
	}{
		{"unknown column", Eq("bogus", 1.0)},
		{"range on categorical", Lt("tag", "m")},
		{"string literal on numeric", Eq("seq", "ten")},
		{"numeric literal on categorical", Eq("tag", 3)},
		{"empty IN", In("seq")},
		{"unsupported literal type", Eq("seq", true)},
	}
	for _, tc := range cases {
		if _, err := Run(archive, Options{Where: tc.p}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := Run(archive, Options{Select: []string{"bogus"}}); err == nil {
		t.Error("unknown select column accepted")
	}
}

// TestParse covers the predicate grammar.
func TestParse(t *testing.T) {
	good := []struct {
		in   string
		want string // String() of the parsed tree
	}{
		{"seq >= 100", "seq >= 100"},
		{"seq = 1 AND tag = 'hot'", "(seq = 1 AND tag = 'hot')"},
		{"a=1 or b=2 and c=3", "(a = 1 OR (b = 2 AND c = 3))"},
		{"not (a = 1)", "NOT a = 1"},
		{"tag != 'x'", "NOT tag = 'x'"},
		{"tag <> 'it''s'", "NOT tag = 'it''s'"},
		{"grade IN (1, 2, 3)", "grade IN (1, 2, 3)"},
		{"tag NOT IN ('a','b')", "NOT tag IN ('a', 'b')"},
		{"x < -1.5e2", "x < -150"},
		{"(a = 1)", "a = 1"},
	}
	for _, tc := range good {
		p, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if p.String() != tc.want {
			t.Errorf("Parse(%q) = %s, want %s", tc.in, p, tc.want)
		}
	}
	bad := []string{
		"", "seq >", "seq > > 1", "AND seq = 1", "seq = 1 AND", "(seq = 1",
		"seq IN ()", "seq IN (1,)", "tag = 'unterminated", "seq ~ 1",
		"seq = 1 extra", "NOT", "x NOT 5", "1 = seq",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): accepted", in)
		}
	}
	// Parsed predicates run end-to-end.
	archive := compressQueryTable(t, 300, 68, 100)
	full, err := core.Decompress(archive)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse("seq >= 50 AND seq < 120 AND tag != 'alpha'")
	if err != nil {
		t.Fatal(err)
	}
	want := naiveMatches(t, p, full)
	res, err := Run(archive, Options{Where: p})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != len(want) {
		t.Fatalf("parsed predicate matched %d, naive says %d", res.Matched, len(want))
	}
}

// TestRunArchiveEquivalence checks the handle-based entry point returns
// byte-identical results to the one-shot byte API for randomized predicates,
// projections, aggregates, and limits — including repeated queries against
// the same cached handle.
func TestRunArchiveEquivalence(t *testing.T) {
	archive := compressQueryTable(t, 1000, 71, 100)
	a, err := core.Open(archive)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 15; trial++ {
		opts := Options{Where: randPred(rng, 2)}
		switch trial % 3 {
		case 1:
			opts.Select = []string{"seq", "tag"}
		case 2:
			opts.Aggs = []AggOp{{Kind: AggCount}, {Kind: AggMin, Col: "seq"}}
			opts.Limit = 50
		}
		want, err := Run(archive, opts)
		if err != nil {
			t.Fatalf("trial %d: byte API: %v", trial, err)
		}
		got, err := RunArchive(context.Background(), a, opts)
		if err != nil {
			t.Fatalf("trial %d: handle: %v", trial, err)
		}
		if got.Matched != want.Matched || got.GroupsPruned != want.GroupsPruned {
			t.Fatalf("trial %d: matched/pruned %d/%d, want %d/%d",
				trial, got.Matched, got.GroupsPruned, want.Matched, want.GroupsPruned)
		}
		if (got.Table == nil) != (want.Table == nil) {
			t.Fatalf("trial %d: table presence differs", trial)
		}
		if got.Table != nil && !bytes.Equal(tableCSV(t, got.Table), tableCSV(t, want.Table)) {
			t.Fatalf("trial %d: handle result differs from byte API", trial)
		}
		if len(got.Aggregates) != len(want.Aggregates) {
			t.Fatalf("trial %d: %d aggregates, want %d", trial, len(got.Aggregates), len(want.Aggregates))
		}
		for i := range got.Aggregates {
			g, w := got.Aggregates[i], want.Aggregates[i]
			same := g.Value == w.Value || (math.IsNaN(g.Value) && math.IsNaN(w.Value))
			if g.Op != w.Op || !same {
				t.Fatalf("trial %d agg %d: %+v != %+v", trial, i, g, w)
			}
		}
	}
}
