package query

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"deepsqueeze/internal/core"
)

// compressQueryTableF32 is compressQueryTable under the float32 decode plan.
func compressQueryTableF32(t *testing.T, rows int, seed int64, groupSize int) []byte {
	t.Helper()
	opts := core.DefaultOptions()
	opts.CodeSize = 2
	opts.Train.Epochs = 3
	opts.Train.BatchSize = 128
	opts.Seed = seed
	opts.RowGroupSize = groupSize
	opts.Float32Decode = true
	res, err := core.Compress(queryTable(rows, seed), []float64{0, 0.01, 0.01, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Archive
}

// TestQueryFloat32Equivalence extends the engine's core contract to float32
// archives: queries decode through the f32 kernel path (the archive flag
// mandates it) yet must return byte-for-byte the rows a full decompress-
// then-filter produces, at parallelism 1, 4, and NumCPU.
func TestQueryFloat32Equivalence(t *testing.T) {
	archive := compressQueryTableF32(t, 800, 67, 100)
	info, err := core.Inspect(archive)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Float32Decode {
		t.Fatal("test archive lost the float32 plan flag")
	}
	full, err := core.Decompress(archive)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(68))
	for trial := 0; trial < 10; trial++ {
		p := randPred(rng, 2)
		want := naiveMatches(t, p, full)
		wantCSV := tableCSV(t, full.Sample(want))
		for _, par := range []int{1, 4, runtime.NumCPU()} {
			res, err := Run(archive, Options{Where: p, Parallelism: par})
			if err != nil {
				t.Fatalf("trial %d (%s) p=%d: %v", trial, p, par, err)
			}
			if res.Matched != len(want) {
				t.Fatalf("trial %d (%s) p=%d: matched %d rows, naive says %d",
					trial, p, par, res.Matched, len(want))
			}
			if got := tableCSV(t, res.Table); !bytes.Equal(got, wantCSV) {
				t.Fatalf("trial %d (%s) p=%d: result differs from decompress-then-filter",
					trial, p, par)
			}
		}
	}
}
