package serve

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/query"
)

var (
	altOnce  sync.Once
	altBytes []byte // same schema as testArchive, different content
	altErr   error
)

// altArchive compresses a second table with testArchive's schema but
// different values — the "file swapped on disk" content for invalidation
// tests.
func altArchive(t *testing.T) []byte {
	t.Helper()
	altOnce.Do(func() {
		schema := dataset.NewSchema(
			dataset.Column{Name: "tag", Type: dataset.Categorical},
			dataset.Column{Name: "seq", Type: dataset.Numeric},
			dataset.Column{Name: "noise", Type: dataset.Numeric},
		)
		rows := 1024
		tb := dataset.NewTable(schema, rows)
		rng := rand.New(rand.NewSource(17))
		tags := []string{"c", "d", "e"}
		for i := 0; i < rows; i++ {
			tb.AppendRow([]string{tags[rng.Intn(len(tags))]},
				[]float64{float64(i), rng.Float64() * 100})
		}
		opts := core.DefaultOptions()
		opts.Seed = 17
		opts.CodeSize = 2
		opts.Train.Epochs = 2
		opts.TrainSampleRows = 512
		opts.RowGroupSize = 64
		res, err := core.Compress(tb, []float64{0, 0.001, 0.01}, opts)
		if err != nil {
			altErr = err
			return
		}
		altBytes = res.Archive
	})
	if altErr != nil {
		t.Fatal(altErr)
	}
	return altBytes
}

// resultSig reduces a query result to a comparable signature: matched count,
// row CSV, and bit-exact aggregate values.
func resultSig(t *testing.T, res *query.Result) string {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "matched=%d\n", res.Matched)
	for _, a := range res.Aggregates {
		fmt.Fprintf(&buf, "agg %s %s = %x\n", a.Op.Kind, a.Op.Col, a.Value)
	}
	if res.Table != nil {
		if err := res.Table.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// expectSig runs a query against raw archive bytes (the uncached reference
// path) and returns its signature.
func expectSig(t *testing.T, archive []byte, opts query.Options) string {
	t.Helper()
	res, err := query.Run(archive, opts)
	if err != nil {
		t.Fatal(err)
	}
	return resultSig(t, res)
}

// mixedQueries is the workload the cache tests share: row mode and aggregate
// mode, broad and narrow selectivity, projections and limits — enough shape
// variety that partial hits (same group, different column sets) occur.
func mixedQueries() []query.Options {
	return []query.Options{
		{Where: query.Ge("seq", 900)},
		{Where: query.Lt("seq", 100), Select: []string{"seq"}},
		{Where: query.Gt("noise", 50), Aggs: []query.AggOp{{Kind: query.AggCount}, {Kind: query.AggSum, Col: "noise"}}},
		{Where: query.Eq("tag", "a"), Select: []string{"tag", "noise"}, Limit: 37},
		{Where: query.And(query.Ge("seq", 200), query.Lt("seq", 400)), Aggs: []query.AggOp{{Kind: query.AggMin, Col: "noise"}, {Kind: query.AggMax, Col: "seq"}}},
		{},
	}
}

// TestBlockCacheServesIdenticalResults checks the tentpole contract end to
// end: with the cache on, every query (cold, warm, partially warm) returns
// byte-identical results to the uncached reference, and the second pass over
// the same workload is served from cache (hits grow, misses don't).
func TestBlockCacheServesIdenticalResults(t *testing.T) {
	archive := testArchive(t)
	path := writeArchive(t, t.TempDir(), "t.dsqz")
	srv := New(Config{BlockCacheBytes: 8 << 20})
	ctx := context.Background()

	queries := mixedQueries()
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = expectSig(t, archive, q)
	}
	var coldMisses int64
	for pass := 0; pass < 2; pass++ {
		for i, q := range queries {
			res, err := srv.Query(ctx, path, q)
			if err != nil {
				t.Fatalf("pass %d query %d: %v", pass, i, err)
			}
			if got := resultSig(t, res); got != want[i] {
				t.Fatalf("pass %d query %d: cached result differs from uncached reference\ngot:\n%s\nwant:\n%s", pass, i, got, want[i])
			}
		}
		st := srv.Stats()
		if pass == 0 {
			if st.BlockMisses == 0 {
				t.Fatal("cold pass produced no block misses")
			}
			if st.BlockBytes <= 0 || st.BlockBytes > srv.cfg.BlockCacheBytes {
				t.Fatalf("block bytes %d outside (0, %d]", st.BlockBytes, srv.cfg.BlockCacheBytes)
			}
			coldMisses = st.BlockMisses
		} else {
			if st.BlockMisses != coldMisses {
				t.Fatalf("warm pass decoded %d new blocks, want 0", st.BlockMisses-coldMisses)
			}
			if st.BlockHits == 0 {
				t.Fatal("warm pass produced no block hits")
			}
		}
	}
}

// TestBlockCacheBudgetEviction runs the workload under a budget far smaller
// than its working set: the resident bytes must never exceed the budget,
// evictions must occur, and every result must still be exact.
func TestBlockCacheBudgetEviction(t *testing.T) {
	archive := testArchive(t)
	path := writeArchive(t, t.TempDir(), "t.dsqz")
	const budget = 4 << 10
	srv := New(Config{BlockCacheBytes: budget})
	ctx := context.Background()

	queries := mixedQueries()
	for pass := 0; pass < 3; pass++ {
		for i, q := range queries {
			res, err := srv.Query(ctx, path, q)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := resultSig(t, res), expectSig(t, archive, q); got != want {
				t.Fatalf("pass %d query %d: result differs under tiny budget", pass, i)
			}
			if st := srv.Stats(); st.BlockBytes > budget {
				t.Fatalf("resident %d bytes exceeds budget %d", st.BlockBytes, budget)
			}
		}
	}
	st := srv.Stats()
	if st.BlockEvictions == 0 {
		t.Fatal("tiny budget evicted nothing")
	}
	// Internal consistency: the byte gauge equals the sum of residents.
	srv.blocks.mu.Lock()
	var sum int64
	for el := srv.blocks.lru.Front(); el != nil; el = el.Next() {
		sum += el.Value.(*blockEnt).blk.Bytes()
	}
	if sum != srv.blocks.bytes {
		t.Fatalf("byte gauge %d != resident sum %d", srv.blocks.bytes, sum)
	}
	srv.blocks.mu.Unlock()
}

// TestBlockCacheSingleflight floods a cold cache with identical concurrent
// queries: however they interleave, each needed block is decoded exactly
// once (misses == distinct blocks), the rest served as hits.
func TestBlockCacheSingleflight(t *testing.T) {
	path := writeArchive(t, t.TempDir(), "t.dsqz")
	srv := New(Config{MaxConcurrent: 8, BlockCacheBytes: 8 << 20})
	ctx := context.Background()
	// No pruning, row mode over all 3 columns: 16 groups × 3 cols = 48 blocks.
	opts := query.Options{Where: query.Ge("seq", 0)}

	const clients = 8
	var start, done sync.WaitGroup
	start.Add(1)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			_, errs[i] = srv.Query(ctx, path, opts)
		}(i)
	}
	start.Done()
	done.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if st.BlockMisses != 48 {
		t.Fatalf("decoded %d blocks for %d identical queries, want 48 (singleflight not deduplicating)", st.BlockMisses, clients)
	}
	if want := int64(clients*48) - 48; st.BlockHits != want {
		t.Fatalf("hits = %d, want %d", st.BlockHits, want)
	}
	srv.blocks.mu.Lock()
	inflight := len(srv.blocks.flights)
	srv.blocks.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("%d flights left registered after queries finished", inflight)
	}
}

// TestBlockCacheMixedWorkloadInvalidation is the randomized correctness
// test: concurrent clients issue overlapping queries against two plan-flag
// variants (a float64-plan and a float32-plan archive) while one file is
// swapped on disk mid-flight. Every response must be byte-identical to the
// uncached reference for the file content it could have seen (old or new for
// the swapped file), resident bytes must respect the budget throughout, and
// the workload must leak neither goroutines nor flights.
func TestBlockCacheMixedWorkloadInvalidation(t *testing.T) {
	dir := t.TempDir()
	oldBytes, newBytes := testArchive(t), altArchive(t)
	mutable := writeArchive(t, dir, "m.dsqz")
	f32path := f32Archive(t, dir)
	f32bytes, err := os.ReadFile(f32path)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 64 << 10
	srv := New(Config{MaxConcurrent: 4, BlockCacheBytes: budget})
	ctx := context.Background()

	mq := mixedQueries()
	f32q := []query.Options{
		{Where: query.Ge("seq", 200)},
		{Where: query.Lt("seq", 128), Aggs: []query.AggOp{{Kind: query.AggSum, Col: "seq"}}},
	}
	wantOld := make([]string, len(mq))
	wantNew := make([]string, len(mq))
	for i, q := range mq {
		wantOld[i] = expectSig(t, oldBytes, q)
		wantNew[i] = expectSig(t, newBytes, q)
	}
	wantF32 := make([]string, len(f32q))
	for i, q := range f32q {
		wantF32[i] = expectSig(t, f32bytes, q)
	}

	before := runtime.NumGoroutine()
	var swapped atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, 64)
	const clients, iters = 6, 30
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for it := 0; it < iters; it++ {
				if c == 0 && it == iters/2 {
					// Swap the mutable file's content mid-workload. Write to
					// a temp file and rename so concurrent opens never see a
					// half-written archive; bump the mtime so the staleness
					// check can't miss the swap on coarse filesystem clocks.
					tmp := mutable + ".tmp"
					if err := os.WriteFile(tmp, newBytes, 0o644); err != nil {
						fail <- err.Error()
						return
					}
					if err := os.Chtimes(tmp, time.Now().Add(time.Hour), time.Now().Add(time.Hour)); err != nil {
						fail <- err.Error()
						return
					}
					if err := os.Rename(tmp, mutable); err != nil {
						fail <- err.Error()
						return
					}
					swapped.Store(true)
				}
				if rng.Intn(3) == 0 {
					qi := rng.Intn(len(f32q))
					res, err := srv.Query(ctx, f32path, f32q[qi])
					if err != nil {
						fail <- fmt.Sprintf("f32 query %d: %v", qi, err)
						return
					}
					if got := resultSig(t, res); got != wantF32[qi] {
						fail <- fmt.Sprintf("f32 query %d: result differs from reference", qi)
						return
					}
				} else {
					qi := rng.Intn(len(mq))
					couldBeNew := swapped.Load()
					res, err := srv.Query(ctx, mutable, mq[qi])
					if err != nil {
						fail <- fmt.Sprintf("query %d: %v", qi, err)
						return
					}
					got := resultSig(t, res)
					if got != wantOld[qi] && got != wantNew[qi] {
						fail <- fmt.Sprintf("query %d: result matches neither old nor new content", qi)
						return
					}
					if couldBeNew && got == wantOld[qi] && wantOld[qi] != wantNew[qi] {
						// The swap happened strictly before this query was
						// issued; serving old content now would mean a stale
						// block survived invalidation.
						fail <- fmt.Sprintf("query %d: stale result served after file swap", qi)
						return
					}
				}
				if st := srv.Stats(); st.BlockBytes > budget {
					fail <- fmt.Sprintf("resident %d bytes exceeds budget %d", st.BlockBytes, budget)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}

	// Post-swap queries must see the new content exclusively.
	for i, q := range mq {
		res, err := srv.Query(ctx, mutable, q)
		if err != nil {
			t.Fatal(err)
		}
		if got := resultSig(t, res); got != wantNew[i] {
			t.Fatalf("post-swap query %d: result differs from new content", i)
		}
	}

	// No leaked flights, consistent accounting, budget respected.
	srv.blocks.mu.Lock()
	if n := len(srv.blocks.flights); n != 0 {
		t.Fatalf("%d flights leaked", n)
	}
	var sum int64
	for el := srv.blocks.lru.Front(); el != nil; el = el.Next() {
		sum += el.Value.(*blockEnt).blk.Bytes()
	}
	if sum != srv.blocks.bytes || sum > budget {
		t.Fatalf("byte gauge %d, resident sum %d, budget %d", srv.blocks.bytes, sum, budget)
	}
	srv.blocks.mu.Unlock()

	// No leaked goroutines: the pool joins its helpers per stage, so the
	// count must settle back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines grew from %d to %d after workload", before, n)
	}
}
