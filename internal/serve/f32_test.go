package serve

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/query"
)

// f32Archive builds a small archive whose plan mandates float32 decode.
func f32Archive(t *testing.T, dir string) string {
	t.Helper()
	schema := dataset.NewSchema(
		dataset.Column{Name: "tag", Type: dataset.Categorical},
		dataset.Column{Name: "seq", Type: dataset.Numeric},
	)
	tb := dataset.NewTable(schema, 256)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 256; i++ {
		tb.AppendRow([]string{[]string{"a", "b"}[rng.Intn(2)]}, []float64{float64(i)})
	}
	opts := core.DefaultOptions()
	opts.Seed = 13
	opts.CodeSize = 2
	opts.Train.Epochs = 2
	opts.Float32Decode = true
	res, err := core.Compress(tb, []float64{0, 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "f32.dsqz")
	if err := os.WriteFile(path, res.Archive, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeNoFloat32Policy checks the operator policy switch: with NoFloat32
// set the server refuses float32-plan archives (and counts the refusal),
// while the default serves them like any other.
func TestServeNoFloat32Policy(t *testing.T) {
	dir := t.TempDir()
	path := f32Archive(t, dir)
	opts := query.Options{Where: query.Ge("seq", 200)}

	open := New(Config{})
	res, err := open.Query(context.Background(), path, opts)
	if err != nil {
		t.Fatalf("default policy must serve float32 archives: %v", err)
	}
	if res.Matched != 56 {
		t.Fatalf("matched %d rows, want 56", res.Matched)
	}

	closed := New(Config{NoFloat32: true})
	if _, err := closed.Query(context.Background(), path, opts); err == nil {
		t.Fatal("NoFloat32 server accepted a float32-plan archive")
	} else if !strings.Contains(err.Error(), "float32") {
		t.Fatalf("refusal must name the policy, got: %v", err)
	}
	st := closed.Stats()
	if st.Errors != 1 || st.Queries != 1 {
		t.Fatalf("refusal not counted: %+v", st)
	}
}
