// Package serve is the open-once/serve-many layer between archive handles
// and a query daemon: a catalog of open core.Archive handles keyed by path
// (LRU-bounded, invalidated when the file changes), admission control that
// bounds the number of queries decoding at once over one shared worker pool
// (queueing a bounded backlog and shedding beyond it), and per-archive,
// per-stage statistics aggregated from every request's stage instrumentation.
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/pipeline"
	"deepsqueeze/internal/query"
)

// ErrOverloaded is returned (distinctly from query errors) when admission
// control sheds a request because the concurrency bound and the wait queue
// are both full. Clients should back off and retry.
var ErrOverloaded = errors.New("serve: server overloaded")

// Config bounds a Server. The zero value selects sensible defaults.
type Config struct {
	// MaxOpenArchives caps the handle cache; the least recently used handle
	// is dropped beyond it. <= 0 selects 16.
	MaxOpenArchives int

	// MaxConcurrent bounds the queries decoding at once. <= 0 selects
	// runtime.NumCPU().
	MaxConcurrent int

	// MaxQueue bounds the requests allowed to wait for a decode slot;
	// arrivals beyond it are shed with ErrOverloaded. 0 selects
	// 4×MaxConcurrent; negative disables waiting entirely (immediate shed
	// when every slot is busy).
	MaxQueue int

	// Parallelism sizes the shared worker pool all admitted queries decode
	// over. <= 0 selects runtime.NumCPU().
	Parallelism int

	// NoFloat32 refuses archives whose plan mandates float32 decode
	// (an operator policy switch: such archives decode through the float32
	// kernel path, which a fleet may want to gate on explicitly). Default
	// off: float32-plan archives are served like any other.
	NoFloat32 bool

	// BlockCacheBytes, when positive, enables the decoded-block cache: a
	// byte-budgeted LRU of immutable per-(row group, column) decoded blocks
	// shared across queries and archives. Repeat queries over warm groups
	// skip the parse→scan→unpack→decode pipeline entirely and run filters
	// directly over cached blocks. 0 (the default) disables caching; every
	// query decodes from the archive bytes.
	BlockCacheBytes int64
}

// entry is one cached archive handle plus the file identity it was read
// from, for staleness checks. id is the handle's epoch: minted fresh at every
// (re)open, never reused, and retired from the block cache when the handle
// is dropped — the invalidation edge that keeps cached blocks from outliving
// the bytes they decoded.
type entry struct {
	path string
	a    *core.Archive
	id   uint64
	mod  time.Time
	size int64
}

// StageTotals aggregates one pipeline stage across requests.
type StageTotals struct {
	Name  string        `json:"name"`
	Calls int64         `json:"calls"`
	Wall  time.Duration `json:"wall_ns"`
	Bytes int64         `json:"bytes"`
}

// ArchiveStats aggregates the requests served for one archive path.
type ArchiveStats struct {
	Path    string        `json:"path"`
	Queries int64         `json:"queries"`
	Errors  int64         `json:"errors"`
	Rows    int64         `json:"rows_matched"`
	Stages  []StageTotals `json:"stages"`
}

// Stats is a point-in-time snapshot of a Server's counters.
type Stats struct {
	Queries       int64 `json:"queries"`
	Errors        int64 `json:"errors"`
	Shed          int64 `json:"shed"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	Evictions     int64 `json:"evictions"`
	OpenArchives  int   `json:"open_archives"`
	MaxConcurrent int   `json:"max_concurrent"`

	// Block-cache counters, present only when BlockCacheBytes > 0. Hits and
	// misses count individual (row group, column) blocks; bytes is the
	// resident footprint (always ≤ the configured budget); evictions counts
	// budget-driven drops plus epoch-invalidation purges.
	BlockCacheBudget int64 `json:"block_cache_budget,omitempty"`
	BlockHits        int64 `json:"block_hits,omitempty"`
	BlockMisses      int64 `json:"block_misses,omitempty"`
	BlockBytes       int64 `json:"block_bytes,omitempty"`
	BlockEvictions   int64 `json:"block_evictions,omitempty"`

	Archives []ArchiveStats `json:"archives"`
}

// archiveStats is the mutable aggregate behind ArchiveStats; it outlives
// handle eviction (stats describe the path, not the cached handle).
type archiveStats struct {
	queries int64
	errors  int64
	rows    int64
	stages  map[string]*StageTotals
}

// Server is a concurrency-safe archive catalog with admission control: the
// serving half of the open-once/serve-many split. One Server owns one worker
// pool; every admitted query's decode, filter, and pack stages run over it,
// so total CPU stays bounded no matter how many clients connect.
type Server struct {
	cfg      Config
	maxQueue int
	pool     *pipeline.Pool
	sem      chan struct{} // decode slots, capacity cfg.MaxConcurrent
	blocks   *blockCache   // nil when BlockCacheBytes == 0

	queued atomic.Int64 // requests waiting for a slot
	shed   atomic.Int64
	nextID atomic.Uint64 // handle epoch mint

	mu        sync.Mutex
	entries   map[string]*list.Element // path → element holding *entry
	lru       *list.List               // front = most recently used
	stats     map[string]*archiveStats // path → aggregates (survive eviction)
	hits      int64
	misses    int64
	evictions int64
}

// New returns a Server with the given bounds.
func New(cfg Config) *Server {
	if cfg.MaxOpenArchives <= 0 {
		cfg.MaxOpenArchives = 16
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.NumCPU()
	}
	maxQueue := cfg.MaxQueue
	switch {
	case maxQueue == 0:
		maxQueue = 4 * cfg.MaxConcurrent
	case maxQueue < 0:
		maxQueue = 0
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	s := &Server{
		cfg:      cfg,
		maxQueue: maxQueue,
		pool:     pipeline.NewPool(cfg.Parallelism),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		stats:    make(map[string]*archiveStats),
	}
	if cfg.BlockCacheBytes > 0 {
		s.blocks = newBlockCache(cfg.BlockCacheBytes)
	}
	return s
}

// acquire claims a decode slot, waiting in the bounded queue when every slot
// is busy. It sheds with ErrOverloaded once the queue is full, and returns
// the context's error if the caller gives up while waiting.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.queued.Add(1) > int64(s.maxQueue) {
		s.queued.Add(-1)
		s.shed.Add(1)
		return ErrOverloaded
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// archive returns the open handle for path and its epoch id, reusing the
// cached one when the file is unchanged (same mtime and size) and opening —
// outside the lock — otherwise. The cache holds at most MaxOpenArchives
// handles, evicting the least recently used. Every handle drop (staleness or
// eviction) retires its epoch from the block cache, so decoded blocks never
// outlive the handle that produced them.
func (s *Server) archive(path string) (*core.Archive, uint64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	if el, ok := s.entries[path]; ok {
		e := el.Value.(*entry)
		if e.mod.Equal(fi.ModTime()) && e.size == fi.Size() {
			s.lru.MoveToFront(el)
			s.hits++
			s.mu.Unlock()
			return e.a, e.id, nil
		}
		// The file changed under us: drop the stale handle and reopen.
		s.lru.Remove(el)
		delete(s.entries, path)
		s.retireBlocks(e.id)
	}
	s.misses++
	s.mu.Unlock()

	a, err := core.OpenFile(path)
	if err != nil {
		return nil, 0, err
	}
	id := s.nextID.Add(1)
	if s.blocks != nil {
		s.blocks.register(id)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[path]; ok {
		// A concurrent miss opened the same path first; keep its handle so
		// every request shares one decoder cache (and one block epoch).
		s.lru.MoveToFront(el)
		s.retireBlocks(id) // the epoch we minted never serves
		e := el.Value.(*entry)
		return e.a, e.id, nil
	}
	el := s.lru.PushFront(&entry{path: path, a: a, id: id, mod: fi.ModTime(), size: fi.Size()})
	s.entries[path] = el
	for s.lru.Len() > s.cfg.MaxOpenArchives {
		old := s.lru.Back()
		s.lru.Remove(old)
		oe := old.Value.(*entry)
		delete(s.entries, oe.path)
		s.retireBlocks(oe.id)
		s.evictions++
	}
	return a, id, nil
}

// retireBlocks invalidates a handle epoch in the block cache, if enabled.
// Safe to call with s.mu held: the block cache has its own lock and never
// calls back into the server.
func (s *Server) retireBlocks(id uint64) {
	if s.blocks != nil {
		s.blocks.retire(id)
	}
}

// Query admits, plans, and executes one query against the archive at path.
// The request decodes over the server's shared pool; ctx cancels both the
// wait for admission and the query itself. ErrCorrupt-class failures are
// wrapped with the archive path so multi-archive logs stay attributable.
func (s *Server) Query(ctx context.Context, path string, opts query.Options) (*query.Result, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	a, id, err := s.archive(path)
	if err != nil {
		s.recordError(path)
		return nil, err
	}
	if s.cfg.NoFloat32 && a.Float32() {
		s.recordError(path)
		return nil, fmt.Errorf("%s: archive mandates float32 decode, refused by server policy", path)
	}
	opts.Pool = s.pool
	if s.blocks != nil {
		opts.Blocks = &blockFetcher{c: s.blocks, a: a, id: id, pool: s.pool}
	}
	res, err := query.RunArchive(ctx, a, opts)
	s.record(path, res, err)
	if err != nil {
		return nil, pathErr(path, err)
	}
	return res, nil
}

// Summary returns the archive's metadata summary (the /archives payload),
// via the same cached handle queries use. It does not count against the
// admission bound: metadata comes from the parsed header plus one segment
// walk for the per-stream codec accounting, not a decode.
func (s *Server) Summary(path string) (*core.ArchiveSummary, error) {
	a, _, err := s.archive(path)
	if err != nil {
		return nil, err
	}
	sum := a.Info().Summary()
	sum.Path = path
	streams, err := a.StreamStats()
	if err != nil {
		s.recordError(path)
		return nil, pathErr(path, err)
	}
	sum.Streams = core.StreamSummaries(streams)
	return sum, nil
}

// Cached returns the cached archive paths, most recently used first.
func (s *Server) Cached() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).path)
	}
	return out
}

// record folds one finished query into the per-archive aggregates.
func (s *Server) record(path string, res *query.Result, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.statsFor(path)
	st.queries++
	if err != nil {
		st.errors++
		return
	}
	st.rows += int64(res.Matched)
	for _, stage := range res.Stages {
		tot, ok := st.stages[stage.Name]
		if !ok {
			tot = &StageTotals{Name: stage.Name}
			st.stages[stage.Name] = tot
		}
		tot.Calls++
		tot.Wall += stage.Wall
		tot.Bytes += stage.Bytes
	}
}

// recordError counts a query that failed before executing (open failures).
func (s *Server) recordError(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.statsFor(path)
	st.queries++
	st.errors++
}

// statsFor returns the aggregate slot for path, creating it on first use.
// Caller holds mu.
func (s *Server) statsFor(path string) *archiveStats {
	st, ok := s.stats[path]
	if !ok {
		st = &archiveStats{stages: make(map[string]*StageTotals)}
		s.stats[path] = st
	}
	return st
}

// Stats snapshots the server's counters and per-archive aggregates.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		Shed:          s.shed.Load(),
		CacheHits:     s.hits,
		CacheMisses:   s.misses,
		Evictions:     s.evictions,
		OpenArchives:  s.lru.Len(),
		MaxConcurrent: s.cfg.MaxConcurrent,
	}
	if s.blocks != nil {
		out.BlockCacheBudget = s.cfg.BlockCacheBytes
		out.BlockHits, out.BlockMisses, out.BlockBytes, out.BlockEvictions = s.blocks.snapshot()
	}
	paths := make([]string, 0, len(s.stats))
	for p := range s.stats {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		st := s.stats[p]
		out.Queries += st.queries
		out.Errors += st.errors
		as := ArchiveStats{Path: p, Queries: st.queries, Errors: st.errors, Rows: st.rows}
		names := make([]string, 0, len(st.stages))
		for n := range st.stages {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			as.Stages = append(as.Stages, *st.stages[n])
		}
		out.Archives = append(out.Archives, as)
	}
	return out
}

// pathErr attributes corruption-class failures to the archive path. Planner
// errors (unknown column, bad aggregate) already name what's wrong and pass
// through untouched, as do cancellations.
func pathErr(path string, err error) error {
	if errors.Is(err, core.ErrCorrupt) {
		return fmt.Errorf("%s: %w", path, err)
	}
	return err
}
