package serve

import (
	"context"
	"testing"

	"deepsqueeze/internal/query"
)

// TestWarmCachedQueryAllocs is the allocation-regression gate for the cached
// hot path: once every block a query touches is resident, executing it must
// allocate only O(result) — planning bookkeeping, pooled-scratch reslices,
// and the aggregate result itself — never O(rows decoded). The ceiling is
// deliberately tight; if this test starts failing after a change to the
// query or serve layer, the change added per-row or per-block allocations to
// the warm path and should be reworked, not the ceiling raised.
func TestWarmCachedQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; gate runs uninstrumented (see scripts/check.sh)")
	}
	path := writeArchive(t, t.TempDir(), "t.dsqz")
	// One decode slot and one worker keep the measurement single-threaded:
	// with pool size 1 no helper goroutines spawn, so AllocsPerRun sees every
	// allocation the query makes.
	srv := New(Config{MaxConcurrent: 1, Parallelism: 1, BlockCacheBytes: 8 << 20})
	ctx := context.Background()
	opts := query.Options{
		Where: query.Gt("noise", 50),
		Aggs:  []query.AggOp{{Kind: query.AggCount}, {Kind: query.AggSum, Col: "noise"}},
	}
	// Warm: the first run decodes and caches every block the query touches.
	if _, err := srv.Query(ctx, path, opts); err != nil {
		t.Fatal(err)
	}

	avg := testing.AllocsPerRun(200, func() {
		if _, err := srv.Query(ctx, path, opts); err != nil {
			t.Fatal(err)
		}
	})
	// Measured 46 allocs/run when introduced (plan + bound tree + fetch
	// bookkeeping + stage stats); the ceiling leaves headroom for GC clearing
	// a sync.Pool mid-run, not for new per-row work.
	const ceiling = 96
	if avg > ceiling {
		t.Fatalf("warm cached aggregate query allocates %.1f allocs/run, ceiling %d", avg, ceiling)
	}
}
