package serve

import (
	"context"
	"errors"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/query"
)

var (
	archOnce  sync.Once
	archBytes []byte // 1024 rows, 16 groups, monotone seq column
	archErr   error
)

// testArchive compresses the shared test table once per test binary.
func testArchive(t *testing.T) []byte {
	t.Helper()
	archOnce.Do(func() {
		schema := dataset.NewSchema(
			dataset.Column{Name: "tag", Type: dataset.Categorical},
			dataset.Column{Name: "seq", Type: dataset.Numeric},
			dataset.Column{Name: "noise", Type: dataset.Numeric},
		)
		rows := 1024
		tb := dataset.NewTable(schema, rows)
		rng := rand.New(rand.NewSource(11))
		tags := []string{"a", "b", "c", "d"}
		for i := 0; i < rows; i++ {
			tb.AppendRow([]string{tags[rng.Intn(len(tags))]},
				[]float64{float64(i), rng.Float64() * 100})
		}
		opts := core.DefaultOptions()
		opts.Seed = 11
		opts.CodeSize = 2
		opts.Train.Epochs = 2
		opts.TrainSampleRows = 512
		opts.RowGroupSize = 64
		res, err := core.Compress(tb, []float64{0, 0.001, 0.01}, opts)
		if err != nil {
			archErr = err
			return
		}
		archBytes = res.Archive
	})
	if archErr != nil {
		t.Fatal(archErr)
	}
	return archBytes
}

// writeArchive puts the shared test archive at dir/name.
func writeArchive(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, testArchive(t), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeConcurrentClients runs mixed-selectivity queries from many
// goroutines against one Server under -race: results must match the direct
// byte-API baseline and the handle cache must serve all but the first open.
func TestServeConcurrentClients(t *testing.T) {
	archive := testArchive(t)
	path := writeArchive(t, t.TempDir(), "t.dsqz")
	srv := New(Config{MaxConcurrent: 4})

	cuts := []float64{8, 64, 512, 1024}
	want := make([]int, len(cuts))
	for i, cut := range cuts {
		res, err := query.Run(archive, query.Options{Where: query.Lt("seq", cut)})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Matched
	}

	const workers = 8
	const iters = 5
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c := (w + i) % len(cuts)
				res, err := srv.Query(context.Background(), path,
					query.Options{Where: query.Lt("seq", cuts[c])})
				if err != nil {
					errs[w] = err
					return
				}
				if res.Matched != want[c] {
					errs[w] = errors.New("matched count differs from baseline")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	st := srv.Stats()
	if st.Queries != workers*iters {
		t.Fatalf("stats queries = %d, want %d", st.Queries, workers*iters)
	}
	if st.Errors != 0 || st.Shed != 0 {
		t.Fatalf("errors=%d shed=%d, want 0/0", st.Errors, st.Shed)
	}
	if st.CacheMisses < 1 || st.CacheHits+st.CacheMisses != workers*iters {
		t.Fatalf("hits=%d misses=%d over %d lookups", st.CacheHits, st.CacheMisses, workers*iters)
	}
	if len(st.Archives) != 1 || st.Archives[0].Queries != workers*iters {
		t.Fatalf("archive stats = %+v", st.Archives)
	}
	if len(st.Archives[0].Stages) == 0 {
		t.Fatal("no per-stage totals recorded")
	}
}

// TestServeCancellationFreesSlot checks a request cancelled while waiting
// for admission returns the context error, leaves no queued count or
// goroutine behind, and that the slot it never got is still usable.
func TestServeCancellationFreesSlot(t *testing.T) {
	path := writeArchive(t, t.TempDir(), "t.dsqz")
	srv := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	before := runtime.NumGoroutine()

	srv.sem <- struct{}{} // occupy the only decode slot
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.Query(ctx, path, query.Options{})
		done <- err
	}()
	// Wait until the request is queued behind the held slot, then give up.
	for i := 0; srv.queued.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if q := srv.queued.Load(); q != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", q)
	}

	// Release the held slot: the next query must be admitted and succeed.
	<-srv.sem
	if _, err := srv.Query(context.Background(), path, query.Options{}); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeShed checks admission control sheds with ErrOverloaded — not a
// generic error — once the slots and the wait queue are both full.
func TestServeShed(t *testing.T) {
	path := writeArchive(t, t.TempDir(), "t.dsqz")
	srv := New(Config{MaxConcurrent: 1, MaxQueue: -1}) // no waiting allowed

	srv.sem <- struct{}{} // occupy the only decode slot
	_, err := srv.Query(context.Background(), path, query.Options{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
	<-srv.sem
	if _, err := srv.Query(context.Background(), path, query.Options{}); err != nil {
		t.Fatalf("query after drain: %v", err)
	}
}

// TestServeLRUAndInvalidation checks the handle cache evicts least recently
// used beyond MaxOpenArchives and reopens a path whose file changed.
func TestServeLRUAndInvalidation(t *testing.T) {
	dir := t.TempDir()
	a := writeArchive(t, dir, "a.dsqz")
	b := writeArchive(t, dir, "b.dsqz")
	c := writeArchive(t, dir, "c.dsqz")
	srv := New(Config{MaxOpenArchives: 2})
	ctx := context.Background()

	for _, p := range []string{a, b} {
		if _, err := srv.Query(ctx, p, query.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Cached(); len(got) != 2 || got[0] != b || got[1] != a {
		t.Fatalf("cached = %v, want [%s %s]", got, b, a)
	}
	if _, err := srv.Query(ctx, c, query.Options{}); err != nil {
		t.Fatal(err)
	}
	got := srv.Cached()
	if len(got) != 2 || got[0] != c || got[1] != b {
		t.Fatalf("cached after eviction = %v, want [%s %s]", got, c, b)
	}
	if st := srv.Stats(); st.Evictions != 1 || st.OpenArchives != 2 {
		t.Fatalf("evictions=%d open=%d, want 1/2", st.Evictions, st.OpenArchives)
	}

	// Bump b's mtime: the stat-based staleness check must drop the cached
	// handle and reopen the file.
	if err := os.Chtimes(b, time.Now().Add(time.Hour), time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	missesBefore := srv.Stats().CacheMisses
	if _, err := srv.Query(ctx, b, query.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.CacheMisses != missesBefore+1 {
		t.Fatalf("misses = %d, want %d (stale handle not invalidated)", st.CacheMisses, missesBefore+1)
	}
}

// TestServeErrorPaths checks open failures are attributed: missing files
// surface fs.ErrNotExist, corrupt archives ErrCorrupt with the path.
func TestServeErrorPaths(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{})
	ctx := context.Background()

	missing := filepath.Join(dir, "missing.dsqz")
	if _, err := srv.Query(ctx, missing, query.Options{}); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing: err = %v, want fs.ErrNotExist", err)
	}

	bad := filepath.Join(dir, "bad.dsqz")
	if err := os.WriteFile(bad, testArchive(t)[:64], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Query(ctx, bad, query.Options{})
	if !errors.Is(err, core.ErrCorrupt) || !strings.Contains(err.Error(), "bad.dsqz") {
		t.Fatalf("corrupt: err = %v, want ErrCorrupt naming the path", err)
	}

	st := srv.Stats()
	if st.Errors != 2 {
		t.Fatalf("errors = %d, want 2", st.Errors)
	}
}
