//go:build !race

package serve

// raceEnabled reports whether the race detector instruments this build.
// The allocation-regression gate skips under it: instrumentation adds its
// own allocations, so AllocsPerRun ceilings are only meaningful uninstrumented.
const raceEnabled = false
