package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/pipeline"
)

// blockKey identifies one cached decoded block. id is the owning handle's
// epoch (a fresh id is minted every time a path is (re)opened, so a file
// swapped on disk can never serve stale blocks); flags is the archive's plan
// flag byte (row order, grouping, Float32Decode — the knobs that change how
// identical bytes decode); group and col address the block.
type blockKey struct {
	id    uint64
	flags byte
	group int
	col   int
}

// blockEnt is one cache resident: a key and its immutable block.
type blockEnt struct {
	key blockKey
	blk *core.ColumnBlock
}

// flightKey identifies an in-progress decode: one flight per (handle epoch,
// row group), so concurrent misses on the same group decode once and share.
type flightKey struct {
	id    uint64
	group int
}

type flight struct {
	done chan struct{} // closed when the owning decode finished (or failed)
}

// blockCache is a byte-budgeted LRU of decoded column blocks shared by every
// query a Server admits. Lookups and inserts take one mutex (the hot path
// holds it only for map/list operations — decodes always run outside the
// lock); concurrent misses on one row group are deduplicated by singleflight
// so a thundering herd decodes each group once. Invalidation is by handle
// epoch: retiring an id purges its residents and blocks further inserts, so
// an in-flight decode against a just-replaced file cannot repollute the
// cache.
type blockCache struct {
	budget int64

	mu        sync.Mutex
	entries   map[blockKey]*list.Element // key → element holding *blockEnt
	lru       *list.List                 // front = most recently used
	live      map[uint64]struct{}        // registered, non-retired handle epochs
	flights   map[flightKey]*flight
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
}

func newBlockCache(budget int64) *blockCache {
	return &blockCache{
		budget:  budget,
		entries: make(map[blockKey]*list.Element),
		lru:     list.New(),
		live:    make(map[uint64]struct{}),
		flights: make(map[flightKey]*flight),
	}
}

// register marks a handle epoch live: its blocks may enter the cache.
func (c *blockCache) register(id uint64) {
	c.mu.Lock()
	c.live[id] = struct{}{}
	c.mu.Unlock()
}

// retire invalidates a handle epoch: its residents are purged immediately
// and later insert attempts (decodes already in flight) are discarded. Purges
// count as evictions.
func (c *blockCache) retire(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.live, id)
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*blockEnt).key.id == id {
			c.removeLocked(el)
			c.evictions++
		}
	}
}

// removeLocked drops one resident. Caller holds mu.
func (c *blockCache) removeLocked(el *list.Element) {
	e := el.Value.(*blockEnt)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.blk.Bytes()
}

// snapshot returns (hits, misses, bytes, evictions).
func (c *blockCache) snapshot() (int64, int64, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.bytes, c.evictions
}

// fetch returns blocks for every (group, column) pair, serving hits from the
// cache and decoding misses grouped into as few DecodeBlocks calls as
// possible. groups and cols are strictly ascending (the query planner's
// contract). The returned blocks are immutable and may outlive cache
// residency — eviction only drops the cache's reference.
//
// Concurrency: round 0 claims a singleflight per missing (id, group) or
// joins an existing one; after waiting, round 1 looks up again and decodes
// anything still missing directly (the flight owner may have failed, or a
// tiny budget may have evicted the block already), so the loop terminates in
// at most two rounds and can never livelock however small the budget is.
func (c *blockCache) fetch(ctx context.Context, a *core.Archive, id uint64, pool *pipeline.Pool, groups, cols []int) ([][]*core.ColumnBlock, error) {
	flags := a.DecodeFlags()
	out := make([][]*core.ColumnBlock, len(groups))
	for gi := range out {
		out[gi] = make([]*core.ColumnBlock, len(cols))
	}
	for round := 0; ; round++ {
		c.mu.Lock()
		var claimed []int         // gi positions this call will decode
		missOf := map[int][]int{} // gi → missing ci positions, ascending
		var waits []chan struct{}
		done := true
		for gi, g := range groups {
			var miss []int
			for ci, col := range cols {
				if out[gi][ci] != nil {
					continue
				}
				k := blockKey{id: id, flags: flags, group: g, col: col}
				if el, ok := c.entries[k]; ok {
					c.lru.MoveToFront(el)
					out[gi][ci] = el.Value.(*blockEnt).blk
					c.hits++
					continue
				}
				miss = append(miss, ci)
			}
			if len(miss) == 0 {
				continue
			}
			done = false
			fk := flightKey{id: id, group: g}
			if round == 0 {
				if f, ok := c.flights[fk]; ok {
					waits = append(waits, f.done)
					continue
				}
				c.flights[fk] = &flight{done: make(chan struct{})}
			}
			claimed = append(claimed, gi)
			missOf[gi] = miss
			c.misses += int64(len(miss))
		}
		c.mu.Unlock()
		if done {
			return out, nil
		}
		if len(claimed) > 0 {
			err := c.decodeInto(ctx, a, id, flags, pool, groups, cols, claimed, missOf, out, round == 0)
			if err != nil {
				return nil, err
			}
		}
		for _, w := range waits {
			select {
			case <-w:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
}

// decodeInto decodes the claimed groups' missing columns, fills out directly
// from the decode results, and offers the new blocks to the cache (discarded
// when the epoch was retired meanwhile; evicting down to budget afterwards).
// Claimed groups sharing one missing-column set batch into a single
// DecodeBlocks call. When hadFlights, every claimed group's flight is closed
// on all paths — including decode errors — so joined waiters never hang.
func (c *blockCache) decodeInto(ctx context.Context, a *core.Archive, id uint64, flags byte, pool *pipeline.Pool, groups, cols []int, claimed []int, missOf map[int][]int, out [][]*core.ColumnBlock, hadFlights bool) error {
	if hadFlights {
		defer func() {
			c.mu.Lock()
			for _, gi := range claimed {
				fk := flightKey{id: id, group: groups[gi]}
				if f, ok := c.flights[fk]; ok {
					delete(c.flights, fk)
					close(f.done)
				}
			}
			c.mu.Unlock()
		}()
	}
	// Batch claimed groups by missing-column signature: gi positions are
	// ascending, so each batch's group list is ascending too.
	batches := map[string][]int{}
	var order []string
	for _, gi := range claimed {
		sig := fmt.Sprint(missOf[gi])
		if _, ok := batches[sig]; !ok {
			order = append(order, sig)
		}
		batches[sig] = append(batches[sig], gi)
	}
	for _, sig := range order {
		gis := batches[sig]
		miss := missOf[gis[0]]
		decGroups := make([]int, len(gis))
		for i, gi := range gis {
			decGroups[i] = groups[gi]
		}
		decCols := make([]int, len(miss))
		for i, ci := range miss {
			decCols[i] = cols[ci]
		}
		blocks, err := a.DecodeBlocks(ctx, decGroups, decCols, pool)
		if err != nil {
			return err
		}
		c.mu.Lock()
		for i, gi := range gis {
			for j, ci := range miss {
				blk := blocks[i][j]
				out[gi][ci] = blk
				c.insertLocked(blockKey{id: id, flags: flags, group: groups[gi], col: cols[ci]}, blk)
			}
		}
		c.mu.Unlock()
	}
	return nil
}

// insertLocked offers one block to the cache and evicts down to budget.
// Retired epochs and duplicate keys (a direct round-1 decode racing the
// flight owner) are discarded. Caller holds mu.
func (c *blockCache) insertLocked(k blockKey, blk *core.ColumnBlock) {
	if _, live := c.live[k.id]; !live {
		return
	}
	if _, ok := c.entries[k]; ok {
		return
	}
	el := c.lru.PushFront(&blockEnt{key: k, blk: blk})
	c.entries[k] = el
	c.bytes += blk.Bytes()
	for c.bytes > c.budget && c.lru.Len() > 0 {
		c.removeLocked(c.lru.Back())
		c.evictions++
	}
}

// blockFetcher adapts one admitted query's (handle, epoch) pair to
// query.BlockSource, routing fetches through the server's shared cache and
// worker pool.
type blockFetcher struct {
	c    *blockCache
	a    *core.Archive
	id   uint64
	pool *pipeline.Pool
}

func (f *blockFetcher) Blocks(ctx context.Context, groups, cols []int) ([][]*core.ColumnBlock, error) {
	return f.c.fetch(ctx, f.a, f.id, f.pool, groups, cols)
}
