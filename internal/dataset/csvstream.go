package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVScanner reads a headered CSV file in bounded row chunks, so tables
// larger than memory can flow through the streaming compressor. The header
// is read and validated against the schema up front; each ReadChunk then
// returns at most maxRows rows.
type CSVScanner struct {
	cr     *csv.Reader
	schema *Schema
	rowNum int
	done   bool
}

// NewCSVScanner reads and validates the header row. The schema supplies
// column types; the header must match the schema's column names in order.
func NewCSVScanner(r io.Reader, schema *Schema) (*CSVScanner, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) != len(schema.Columns) {
		return nil, fmt.Errorf("dataset: header has %d columns, schema %d", len(header), len(schema.Columns))
	}
	for i, c := range schema.Columns {
		if header[i] != c.Name {
			return nil, fmt.Errorf("dataset: header column %d is %q, schema says %q", i, header[i], c.Name)
		}
	}
	return &CSVScanner{cr: cr, schema: schema}, nil
}

// ReadChunk returns the next chunk of up to maxRows rows. At the end of the
// file it returns io.EOF (with no table); a final short chunk is returned
// with a nil error first.
func (s *CSVScanner) ReadChunk(maxRows int) (*Table, error) {
	if s.done {
		return nil, io.EOF
	}
	if maxRows < 1 {
		return nil, fmt.Errorf("dataset: chunk of %d rows", maxRows)
	}
	t := NewTable(s.schema, maxRows)
	for t.NumRows() < maxRows {
		rec, err := s.cr.Read()
		if err == io.EOF {
			s.done = true
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read row %d: %w", s.rowNum, err)
		}
		for i, c := range s.schema.Columns {
			if c.Type == Categorical {
				t.Str[i] = append(t.Str[i], rec[i])
			} else {
				v, err := strconv.ParseFloat(rec[i], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: row %d column %q: %w", s.rowNum, c.Name, err)
				}
				t.Num[i] = append(t.Num[i], v)
			}
		}
		t.SetNumRows(t.NumRows() + 1)
		s.rowNum++
	}
	if t.NumRows() == 0 {
		return nil, io.EOF
	}
	return t, nil
}

// CSVWriter writes tables incrementally as one CSV stream: the header goes
// out before the first rows, and every WriteTable appends rows in the same
// format as Table.WriteCSV (numeric values use 'g' precision -1).
type CSVWriter struct {
	cw          *csv.Writer
	schema      *Schema
	wroteHeader bool
}

// NewCSVWriter returns a writer producing one headered CSV stream for
// tables with the given schema.
func NewCSVWriter(w io.Writer, schema *Schema) *CSVWriter {
	return &CSVWriter{cw: csv.NewWriter(w), schema: schema}
}

// WriteTable appends t's rows. t must have the writer's schema.
func (w *CSVWriter) WriteTable(t *Table) error {
	if !t.Schema.Equal(w.schema) {
		return fmt.Errorf("dataset: table schema differs from writer schema")
	}
	if !w.wroteHeader {
		header := make([]string, len(w.schema.Columns))
		for i, c := range w.schema.Columns {
			header[i] = c.Name
		}
		if err := w.cw.Write(header); err != nil {
			return fmt.Errorf("dataset: write header: %w", err)
		}
		w.wroteHeader = true
	}
	row := make([]string, len(w.schema.Columns))
	for r := 0; r < t.NumRows(); r++ {
		for i, c := range w.schema.Columns {
			if c.Type == Categorical {
				row[i] = t.Str[i][r]
			} else {
				row[i] = strconv.FormatFloat(t.Num[i][r], 'g', -1, 64)
			}
		}
		if err := w.cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", r, err)
		}
	}
	return nil
}

// Flush writes the header if no rows were ever written, flushes buffered
// rows to the underlying writer, and reports any write error.
func (w *CSVWriter) Flush() error {
	if !w.wroteHeader {
		header := make([]string, len(w.schema.Columns))
		for i, c := range w.schema.Columns {
			header[i] = c.Name
		}
		if err := w.cw.Write(header); err != nil {
			return fmt.Errorf("dataset: write header: %w", err)
		}
		w.wroteHeader = true
	}
	w.cw.Flush()
	return w.cw.Error()
}
