package dataset

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func twoColSchema() *Schema {
	return NewSchema(
		Column{Name: "color", Type: Categorical},
		Column{Name: "value", Type: Numeric},
	)
}

func TestAppendAndAccess(t *testing.T) {
	tb := NewTable(twoColSchema(), 4)
	tb.AppendRow([]string{"red"}, []float64{1.5})
	tb.AppendRow([]string{"blue"}, []float64{-2})
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if tb.Str[0][1] != "blue" || tb.Num[1][0] != 1.5 {
		t.Fatal("column values misplaced")
	}
}

func TestAppendRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRow with extra values should panic")
		}
	}()
	NewTable(twoColSchema(), 1).AppendRow([]string{"a", "b"}, []float64{1})
}

func TestSchemaIndexes(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Type: Numeric},
		Column{Name: "b", Type: Categorical},
		Column{Name: "c", Type: Numeric},
	)
	if got := s.CategoricalIndexes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("CategoricalIndexes = %v", got)
	}
	if got := s.NumericIndexes(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("NumericIndexes = %v", got)
	}
	if !s.Equal(s) {
		t.Fatal("schema not equal to itself")
	}
	if s.Equal(twoColSchema()) {
		t.Fatal("distinct schemas reported equal")
	}
}

func TestSample(t *testing.T) {
	tb := NewTable(twoColSchema(), 4)
	for i := 0; i < 5; i++ {
		tb.AppendRow([]string{string(rune('a' + i))}, []float64{float64(i)})
	}
	s := tb.Sample([]int{4, 0, 2})
	if s.NumRows() != 3 || s.Str[0][0] != "e" || s.Num[1][2] != 2 {
		t.Fatalf("Sample wrong: %+v", s)
	}
}

func TestStats(t *testing.T) {
	tb := NewTable(twoColSchema(), 4)
	tb.AppendRow([]string{"x"}, []float64{5})
	tb.AppendRow([]string{"y"}, []float64{-1})
	tb.AppendRow([]string{"x"}, []float64{3})
	st := tb.Stats()
	if st[0].Distinct != 2 {
		t.Fatalf("Distinct = %d", st[0].Distinct)
	}
	if st[1].Min != -1 || st[1].Max != 5 {
		t.Fatalf("Min/Max = %v/%v", st[1].Min, st[1].Max)
	}
}

func TestEqualWithin(t *testing.T) {
	a := NewTable(twoColSchema(), 2)
	a.AppendRow([]string{"x"}, []float64{1.0})
	b := NewTable(twoColSchema(), 2)
	b.AppendRow([]string{"x"}, []float64{1.05})
	if err := a.EqualWithin(b, []float64{0, 0.1}); err != nil {
		t.Fatalf("within tolerance: %v", err)
	}
	if err := a.EqualWithin(b, []float64{0, 0.01}); err == nil {
		t.Fatal("outside tolerance accepted")
	}
	c := NewTable(twoColSchema(), 2)
	c.AppendRow([]string{"y"}, []float64{1.0})
	if err := a.EqualWithin(c, nil); err == nil {
		t.Fatal("categorical mismatch accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := NewTable(twoColSchema(), 4)
	tb.AppendRow([]string{"plain"}, []float64{1.25})
	tb.AppendRow([]string{"with,comma"}, []float64{-0.001})
	tb.AppendRow([]string{`with"quote`}, []float64{1e300})
	tb.AppendRow([]string{""}, []float64{0})
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, tb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.EqualWithin(got, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVValidation(t *testing.T) {
	s := twoColSchema()
	cases := []string{
		"",                         // no header
		"wrong,value\na,1\n",       // header name mismatch
		"color\na\n",               // column count mismatch
		"color,value\na,notanum\n", // bad float
		"color,value\na,1\nb\n",    // ragged row
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), s); err == nil {
			t.Errorf("case %d: invalid CSV accepted", i)
		}
	}
}

func TestCSVSizeMatchesBuffer(t *testing.T) {
	tb := NewTable(twoColSchema(), 2)
	tb.AppendRow([]string{"abc"}, []float64{3.14159})
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := tb.CSVSize(); got != int64(buf.Len()) {
		t.Fatalf("CSVSize = %d, buffer = %d", got, buf.Len())
	}
}

func TestSetNumRows(t *testing.T) {
	tb := NewTable(twoColSchema(), 0)
	tb.Str[0] = []string{"a", "b"}
	tb.Num[1] = []float64{1, 2}
	tb.SetNumRows(2)
	if tb.NumRows() != 2 {
		t.Fatal("SetNumRows failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched SetNumRows should panic")
		}
	}()
	tb.SetNumRows(3)
}

// Property: CSV round trip preserves any table of random printable strings
// and floats exactly.
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable(twoColSchema(), 8)
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			s := strconv.FormatInt(rng.Int63(), 36)
			tb.AppendRow([]string{s}, []float64{rng.NormFloat64() * 1e6})
		}
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, tb.Schema)
		if err != nil {
			return false
		}
		return tb.EqualWithin(got, nil) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
