package dataset

import (
	"bytes"
	"io"
	"testing"
)

func streamSchema() *Schema {
	return NewSchema(
		Column{Name: "city", Type: Categorical},
		Column{Name: "temp", Type: Numeric},
	)
}

func streamTable(rows int) *Table {
	t := NewTable(streamSchema(), rows)
	cities := []string{"bo", "ny", "sf"}
	for i := 0; i < rows; i++ {
		t.AppendRow([]string{cities[i%3]}, []float64{float64(i) * 1.5})
	}
	return t
}

func TestCSVScannerChunks(t *testing.T) {
	tb := streamTable(25)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := NewCSVScanner(bytes.NewReader(buf.Bytes()), tb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	var sizes []int
	for {
		chunk, err := sc.ReadChunk(10)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, chunk.NumRows())
		for i := 0; i < chunk.NumRows(); i++ {
			if chunk.Str[0][i] != tb.Str[0][total+i] || chunk.Num[1][i] != tb.Num[1][total+i] {
				t.Fatalf("row %d mismatch", total+i)
			}
		}
		total += chunk.NumRows()
	}
	if total != 25 {
		t.Fatalf("read %d rows", total)
	}
	if len(sizes) != 3 || sizes[0] != 10 || sizes[1] != 10 || sizes[2] != 5 {
		t.Fatalf("chunk sizes %v", sizes)
	}
	if _, err := sc.ReadChunk(10); err != io.EOF {
		t.Fatalf("after EOF: %v", err)
	}
}

func TestCSVScannerHeaderMismatch(t *testing.T) {
	if _, err := NewCSVScanner(bytes.NewReader([]byte("wrong,temp\n")), streamSchema()); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestCSVWriterMatchesWriteCSV(t *testing.T) {
	tb := streamTable(17)
	var whole bytes.Buffer
	if err := tb.WriteCSV(&whole); err != nil {
		t.Fatal(err)
	}
	// Incremental writes in uneven pieces must produce identical bytes.
	var inc bytes.Buffer
	cw := NewCSVWriter(&inc, tb.Schema)
	for _, span := range [][2]int{{0, 5}, {5, 6}, {6, 17}} {
		part := NewTable(tb.Schema, span[1]-span[0])
		for i := span[0]; i < span[1]; i++ {
			part.AppendRow([]string{tb.Str[0][i]}, []float64{tb.Num[1][i]})
		}
		if err := cw.WriteTable(part); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole.Bytes(), inc.Bytes()) {
		t.Fatalf("incremental CSV differs from WriteCSV:\n%q\nvs\n%q", inc.Bytes(), whole.Bytes())
	}
}

func TestCSVWriterEmptyFlush(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCSVWriter(&buf, streamSchema())
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "city,temp\n" {
		t.Fatalf("empty flush wrote %q", buf.String())
	}
}
