// Package dataset defines the tabular data model DeepSqueeze compresses:
// a schema of typed columns and a columnar in-memory table holding
// categorical values as strings and numerical values as float64.
package dataset

import (
	"fmt"
	"math"
)

// ColumnType distinguishes the two column kinds the paper handles.
type ColumnType int

const (
	// Categorical columns hold distinct unordered values (strings).
	Categorical ColumnType = iota
	// Numeric columns hold integers or floating-point values.
	Numeric
)

// String returns "categorical" or "numeric".
func (t ColumnType) String() string {
	switch t {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("columntype(%d)", int(t))
	}
}

// Column describes one column of a table.
type Column struct {
	Name string
	Type ColumnType
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from column descriptors.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// NumColumns returns the column count.
func (s *Schema) NumColumns() int { return len(s.Columns) }

// CategoricalIndexes returns the indexes of categorical columns in order.
func (s *Schema) CategoricalIndexes() []int {
	var out []int
	for i, c := range s.Columns {
		if c.Type == Categorical {
			out = append(out, i)
		}
	}
	return out
}

// NumericIndexes returns the indexes of numeric columns in order.
func (s *Schema) NumericIndexes() []int {
	var out []int
	for i, c := range s.Columns {
		if c.Type == Numeric {
			out = append(out, i)
		}
	}
	return out
}

// Equal reports whether two schemas have identical columns.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i, c := range s.Columns {
		if o.Columns[i] != c {
			return false
		}
	}
	return true
}

// Table is a columnar table. For column i exactly one of Str[i] (categorical)
// or Num[i] (numeric) is non-nil, and all non-nil slices share one length.
type Table struct {
	Schema *Schema
	Str    [][]string
	Num    [][]float64
	rows   int
}

// NewTable returns an empty table with storage allocated for capacity rows.
func NewTable(schema *Schema, capacity int) *Table {
	t := &Table{
		Schema: schema,
		Str:    make([][]string, len(schema.Columns)),
		Num:    make([][]float64, len(schema.Columns)),
	}
	for i, c := range schema.Columns {
		if c.Type == Categorical {
			t.Str[i] = make([]string, 0, capacity)
		} else {
			t.Num[i] = make([]float64, 0, capacity)
		}
	}
	return t
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.rows }

// SetNumRows adjusts the bookkeeping row count after bulk-assigning column
// slices directly. Every non-nil column slice must have length n.
func (t *Table) SetNumRows(n int) {
	for i := range t.Schema.Columns {
		if t.Str[i] != nil && len(t.Str[i]) != n {
			panic(fmt.Sprintf("dataset: column %d has %d values, want %d", i, len(t.Str[i]), n))
		}
		if t.Num[i] != nil && len(t.Num[i]) != n {
			panic(fmt.Sprintf("dataset: column %d has %d values, want %d", i, len(t.Num[i]), n))
		}
	}
	t.rows = n
}

// AppendRow appends one row. strVals and numVals are consumed positionally
// in schema order for their respective column kinds.
func (t *Table) AppendRow(strVals []string, numVals []float64) {
	si, ni := 0, 0
	for i, c := range t.Schema.Columns {
		if c.Type == Categorical {
			t.Str[i] = append(t.Str[i], strVals[si])
			si++
		} else {
			t.Num[i] = append(t.Num[i], numVals[ni])
			ni++
		}
	}
	if si != len(strVals) || ni != len(numVals) {
		panic(fmt.Sprintf("dataset: AppendRow got %d str / %d num values, schema wants %d / %d",
			len(strVals), len(numVals), si, ni))
	}
	t.rows++
}

// Sample returns a new table holding the rows at the given indexes.
func (t *Table) Sample(indexes []int) *Table {
	out := NewTable(t.Schema, len(indexes))
	for i, c := range t.Schema.Columns {
		if c.Type == Categorical {
			col := t.Str[i]
			dst := out.Str[i]
			for _, idx := range indexes {
				dst = append(dst, col[idx])
			}
			out.Str[i] = dst
		} else {
			col := t.Num[i]
			dst := out.Num[i]
			for _, idx := range indexes {
				dst = append(dst, col[idx])
			}
			out.Num[i] = dst
		}
	}
	out.rows = len(indexes)
	return out
}

// ColumnStats summarizes one column for preprocessing decisions.
type ColumnStats struct {
	Distinct int     // categorical: number of distinct values
	Min, Max float64 // numeric: value range
}

// Stats computes per-column statistics.
func (t *Table) Stats() []ColumnStats {
	out := make([]ColumnStats, len(t.Schema.Columns))
	for i, c := range t.Schema.Columns {
		if c.Type == Categorical {
			seen := make(map[string]struct{})
			for _, v := range t.Str[i] {
				seen[v] = struct{}{}
			}
			out[i].Distinct = len(seen)
		} else {
			min, max := math.Inf(1), math.Inf(-1)
			for _, v := range t.Num[i] {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			if t.rows == 0 {
				min, max = 0, 0
			}
			out[i].Min, out[i].Max = min, max
		}
	}
	return out
}

// EqualWithin reports whether two tables are equal, allowing each numeric
// column i an absolute tolerance tol[i] (indexed by schema position; ignored
// for categorical columns). Categorical values must match exactly.
func (t *Table) EqualWithin(o *Table, tol []float64) error {
	if !t.Schema.Equal(o.Schema) {
		return fmt.Errorf("dataset: schema mismatch")
	}
	if t.rows != o.rows {
		return fmt.Errorf("dataset: row count %d vs %d", t.rows, o.rows)
	}
	for i, c := range t.Schema.Columns {
		if c.Type == Categorical {
			for r, v := range t.Str[i] {
				if o.Str[i][r] != v {
					return fmt.Errorf("dataset: column %q row %d: %q vs %q", c.Name, r, v, o.Str[i][r])
				}
			}
			continue
		}
		limit := 0.0
		if tol != nil {
			limit = tol[i]
		}
		for r, v := range t.Num[i] {
			if d := math.Abs(o.Num[i][r] - v); d > limit+1e-12 {
				return fmt.Errorf("dataset: column %q row %d: |%v-%v| = %v > %v",
					c.Name, r, v, o.Num[i][r], d, limit)
			}
		}
	}
	return nil
}
