package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the table as CSV with a header row. Numeric values use the
// shortest representation that round-trips ('g', precision -1).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Schema.Columns))
	for i, c := range t.Schema.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, len(t.Schema.Columns))
	for r := 0; r < t.rows; r++ {
		for i, c := range t.Schema.Columns {
			if c.Type == Categorical {
				row[i] = t.Str[i][r]
			} else {
				row[i] = strconv.FormatFloat(t.Num[i][r], 'g', -1, 64)
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table in the format produced by WriteCSV. The schema
// supplies column types; the CSV header must match the schema's column names
// in order.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) != len(schema.Columns) {
		return nil, fmt.Errorf("dataset: header has %d columns, schema %d", len(header), len(schema.Columns))
	}
	for i, c := range schema.Columns {
		if header[i] != c.Name {
			return nil, fmt.Errorf("dataset: header column %d is %q, schema says %q", i, header[i], c.Name)
		}
	}
	t := NewTable(schema, 1024)
	for rowNum := 0; ; rowNum++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read row %d: %w", rowNum, err)
		}
		for i, c := range schema.Columns {
			if c.Type == Categorical {
				t.Str[i] = append(t.Str[i], rec[i])
			} else {
				v, err := strconv.ParseFloat(rec[i], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: row %d column %q: %w", rowNum, c.Name, err)
				}
				t.Num[i] = append(t.Num[i], v)
			}
		}
		t.rows++
	}
	return t, nil
}

// CSVSize returns the size in bytes of the table's CSV serialization. This
// is the "raw size" denominator of the paper's compression ratios.
func (t *Table) CSVSize() int64 {
	var cw countingWriter
	if err := t.WriteCSV(&cw); err != nil {
		// Writing to an in-memory counter cannot fail.
		panic(err)
	}
	return cw.n
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
