package bench

import (
	"fmt"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/datagen"
)

// Fig7 regenerates the optimization comparison (paper Fig. 7): a
// single-layer linear baseline, no quantization, a single expert, and the
// full DeepSqueeze configuration, at a 10% error threshold.
func Fig7(cfg Config, datasets ...string) (*Report, error) {
	if len(datasets) == 0 {
		datasets = datasetOrder
	}
	tc := newTableCache(cfg)
	rep := &Report{
		ID:      "fig7",
		Title:   "Impact of optimizations (compression ratio %, 10% error threshold)",
		Columns: []string{"dataset", "single_layer_linear_%", "no_quantization_%", "single_expert_%", "deepsqueeze_%"},
	}
	for _, name := range datasets {
		t, _, err := tc.get(name)
		if err != nil {
			return nil, err
		}
		raw := t.CSVSize()
		thr := 0.1
		if name == "census" {
			thr = 0
		}
		thresholds := datagen.Thresholds(t, thr)
		full := dsOptions(name, cfg)
		variants := []struct {
			name string
			mod  func(core.Options) core.Options
		}{
			{"single_layer_linear", func(o core.Options) core.Options { o.SingleLayerLinear = true; return o }},
			{"no_quantization", func(o core.Options) core.Options { o.NoQuantization = true; return o }},
			{"single_expert", func(o core.Options) core.Options { o.NumExperts = 1; return o }},
			{"deepsqueeze", func(o core.Options) core.Options { return o }},
		}
		row := []string{name}
		for _, v := range variants {
			res, err := core.Compress(t, thresholds, v.mod(full))
			if err != nil {
				return nil, err
			}
			row = append(row, pct(res.Breakdown.Total, raw))
			cfg.logf("fig7 %s %s: %s%%", name, v.name, pct(res.Breakdown.Total, raw))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Fig8 regenerates the partitioning comparison (paper Fig. 8): k-means
// versus the mixture of experts on Monitor for 1–10 partitions at each
// error threshold.
func Fig8(cfg Config) (*Report, error) {
	tc := newTableCache(cfg)
	t, _, err := tc.get("monitor")
	if err != nil {
		return nil, err
	}
	raw := t.CSVSize()
	rep := &Report{
		ID:      "fig8",
		Title:   "k-means vs mixture of experts on Monitor (compression ratio %)",
		Columns: []string{"error_%", "partitions", "kmeans_%", "experts_%"},
	}
	thresholds := errorThresholds("monitor", cfg.Quick)
	counts := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if cfg.Quick {
		counts = []int{1, 2, 4}
	}
	for _, thr := range thresholds {
		th := datagen.Thresholds(t, thr)
		for _, k := range counts {
			base := dsOptions("monitor", cfg)
			base.NumExperts = k
			base.Partition = core.PartitionKMeans
			km, err := core.Compress(t, th, base)
			if err != nil {
				return nil, err
			}
			base.Partition = core.PartitionMoE
			moe, err := core.Compress(t, th, base)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%g", thr*100),
				fmt.Sprintf("%d", k),
				pct(km.Breakdown.Total, raw),
				pct(moe.Breakdown.Total, raw),
			})
			cfg.logf("fig8 thr=%g k=%d: kmeans %s%% moe %s%%", thr*100, k,
				pct(km.Breakdown.Total, raw), pct(moe.Breakdown.Total, raw))
		}
	}
	return rep, nil
}

// Fig9 regenerates the hyperparameter-tuning convergence plots (paper
// Fig. 9): best-so-far compression ratio per Bayesian-optimization trial on
// every dataset.
func Fig9(cfg Config, datasets ...string) (*Report, error) {
	if len(datasets) == 0 {
		datasets = datasetOrder
	}
	tc := newTableCache(cfg)
	rep := &Report{
		ID:      "fig9",
		Title:   "Hyperparameter tuning convergence (best-so-far ratio % per trial)",
		Columns: []string{"dataset", "trial", "code_size", "experts", "trial_ratio_%", "best_so_far_%"},
	}
	for _, name := range datasets {
		t, _, err := tc.get(name)
		if err != nil {
			return nil, err
		}
		thr := 0.1
		if name == "census" {
			thr = 0
		}
		topts := core.DefaultTuneOptions()
		topts.Base = dsOptions(name, cfg)
		topts.Samples = []int{t.NumRows()} // tune on the full (scaled) data
		topts.Codes = []int{1, 2, 4, 8}
		topts.Experts = []int{1, 2, 4, 9}
		topts.Budget = 12
		if cfg.Quick {
			topts.Codes = []int{1, 2}
			topts.Experts = []int{1, 2}
			topts.Budget = 3
		}
		res, err := core.Tune(t, datagen.Thresholds(t, thr), topts)
		if err != nil {
			return nil, err
		}
		best := 1.0
		for i, trial := range res.Trials {
			if trial.Ratio < best {
				best = trial.Ratio
			}
			rep.Rows = append(rep.Rows, []string{
				name,
				fmt.Sprintf("%d", i),
				fmt.Sprintf("%d", trial.CodeSize),
				fmt.Sprintf("%d", trial.NumExperts),
				fmt.Sprintf("%.2f", trial.Ratio*100),
				fmt.Sprintf("%.2f", best*100),
			})
		}
		cfg.logf("fig9 %s: %d trials, best %.2f%%, chose code=%d experts=%d",
			name, len(res.Trials), best*100, res.Best.CodeSize, res.Best.NumExperts)
	}
	return rep, nil
}

// Fig10 regenerates the sample-size sensitivity study (paper Fig. 10):
// compression ratio on Monitor at a 10% threshold while training on
// growing fractions of the data.
func Fig10(cfg Config) (*Report, error) {
	tc := newTableCache(cfg)
	t, _, err := tc.get("monitor")
	if err != nil {
		return nil, err
	}
	raw := t.CSVSize()
	rep := &Report{
		ID:      "fig10",
		Title:   "Sensitivity to training sample size on Monitor (10% threshold)",
		Columns: []string{"sample_%", "sample_rows", "ratio_%"},
	}
	fractions := []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
	if cfg.Quick {
		fractions = []float64{0.05, 0.5, 1.0}
	}
	th := datagen.Thresholds(t, 0.1)
	for _, f := range fractions {
		opts := dsOptions("monitor", cfg)
		opts.TrainSampleRows = int(f * float64(t.NumRows()))
		if opts.TrainSampleRows < 10 {
			opts.TrainSampleRows = 10
		}
		if f >= 1 {
			opts.TrainSampleRows = 0
		}
		res, err := core.Compress(t, th, opts)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%g", f*100),
			fmt.Sprintf("%d", opts.TrainSampleRows),
			pct(res.Breakdown.Total, raw),
		})
		cfg.logf("fig10 sample=%g%%: %s%%", f*100, pct(res.Breakdown.Total, raw))
	}
	return rep, nil
}

// AblationCodeTruncation measures the paper §6.2 truncation optimization:
// fixed 32-bit codes versus the iterative byte-step search.
func AblationCodeTruncation(cfg Config, datasets ...string) (*Report, error) {
	if len(datasets) == 0 {
		datasets = []string{"corel", "monitor"}
	}
	tc := newTableCache(cfg)
	rep := &Report{
		ID:      "ablation-truncation",
		Title:   "Code truncation: fixed 32-bit codes vs iterative search (ratio %)",
		Columns: []string{"dataset", "fixed32_%", "searched_%", "chosen_bits"},
	}
	for _, name := range datasets {
		t, _, err := tc.get(name)
		if err != nil {
			return nil, err
		}
		raw := t.CSVSize()
		thr := datagen.Thresholds(t, 0.1)
		opts := dsOptions(name, cfg)
		opts.CodeBits = 32
		fixed, err := core.Compress(t, thr, opts)
		if err != nil {
			return nil, err
		}
		opts.CodeBits = 0
		searched, err := core.Compress(t, thr, opts)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{name,
			pct(fixed.Breakdown.Total, raw),
			pct(searched.Breakdown.Total, raw),
			fmt.Sprintf("%d", searched.CodeBits)})
	}
	return rep, nil
}

// AblationExpertMapping compares the two expert-mapping materializations of
// paper §6.4: row-order-preserving (indexes or labels, chosen
// automatically) versus order-free grouped storage.
func AblationExpertMapping(cfg Config) (*Report, error) {
	tc := newTableCache(cfg)
	t, _, err := tc.get("monitor")
	if err != nil {
		return nil, err
	}
	raw := t.CSVSize()
	rep := &Report{
		ID:      "ablation-mapping",
		Title:   "Expert mapping on Monitor: order-preserving vs order-free (ratio %)",
		Columns: []string{"experts", "keep_order_%", "order_free_%"},
	}
	th := datagen.Thresholds(t, 0.1)
	for _, k := range []int{2, 4, 8} {
		opts := dsOptions("monitor", cfg)
		opts.NumExperts = k
		opts.KeepRowOrder = true
		kept, err := core.Compress(t, th, opts)
		if err != nil {
			return nil, err
		}
		opts.KeepRowOrder = false
		free, err := core.Compress(t, th, opts)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", k),
			pct(kept.Breakdown.Total, raw),
			pct(free.Breakdown.Total, raw),
		})
	}
	return rep, nil
}
