package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/query"
)

// queryRun is one selectivity point in BENCH_query.json.
type queryRun struct {
	Selectivity  float64 `json:"selectivity"`
	MatchedRows  int     `json:"matched_rows"`
	GroupsPruned int     `json:"groups_pruned"`
	GroupsTotal  int     `json:"groups_total"`
	BytesSkipped int64   `json:"bytes_skipped"`
	QuerySecs    float64 `json:"query_secs"`
	RowsPerSec   float64 `json:"scanned_rows_per_sec"`
	Speedup      float64 `json:"speedup_vs_full_decompress"`
}

// queryBenchFile is the top-level BENCH_query.json document.
type queryBenchFile struct {
	Rows         int        `json:"rows"`
	Groups       int        `json:"groups"`
	ArchiveBytes int        `json:"archive_bytes"`
	FullSecs     float64    `json:"full_decompress_secs"`
	NumCPU       int        `json:"num_cpu"`
	Gomaxprocs   int        `json:"gomaxprocs"`
	Results      []queryRun `json:"results"`
}

// queryBenchTable builds the sweep table: a monotone sequence column (so
// adjacent row groups carry disjoint zone intervals and a range predicate's
// selectivity maps directly to the fraction of groups decoded), a uniform
// noise column, and a small categorical tag alphabet.
func queryBenchTable(rows int, seed int64) *dataset.Table {
	schema := dataset.NewSchema(
		dataset.Column{Name: "tag", Type: dataset.Categorical},
		dataset.Column{Name: "seq", Type: dataset.Numeric},
		dataset.Column{Name: "noise", Type: dataset.Numeric},
	)
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	t := dataset.NewTable(schema, rows)
	for i := 0; i < rows; i++ {
		t.AppendRow(
			[]string{tags[rng.Intn(len(tags))]},
			[]float64{float64(i), rng.Float64() * 1000},
		)
	}
	return t
}

// QuerySelectivity benchmarks the predicate-pushdown scan engine: one
// archive with 96 row groups, scanned at a sweep of predicate selectivities
// over the monotone seq column. At selectivity s the zone maps prune
// ~(1-s) of the groups, so wall-clock and decoded bytes fall with s while a
// full decompress pays the whole archive every time. Every query result is
// verified row-for-row against decompress-then-filter before timings are
// written to BENCH_query.json in the working directory.
func QuerySelectivity(cfg Config) (*Report, error) {
	const groups = 96
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	rows := int(49152 * scale)
	if cfg.Quick {
		rows = 96 * 64
	}
	if rows < groups {
		rows = groups
	}
	t := queryBenchTable(rows, cfg.Seed)

	opts := core.DefaultOptions()
	opts.Seed = cfg.Seed
	opts.CodeSize = 2
	opts.Train.Epochs = 8
	opts.TrainSampleRows = 4000
	opts.Parallelism = runtime.NumCPU()
	opts.RowGroupSize = (rows + groups - 1) / groups
	if cfg.Quick {
		opts.Train.Epochs = 2
		opts.TrainSampleRows = 1000
	}
	// seq gets a tight threshold so its quantization buckets stay much
	// narrower than the lowest-selectivity cut (0.5% of the row range).
	th := []float64{0, 0.001, 0.01}
	res, err := core.Compress(t, th, opts)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	full, err := core.Decompress(res.Archive)
	if err != nil {
		return nil, err
	}
	fullSecs := time.Since(start).Seconds()

	rep := &Report{
		ID:      "query",
		Title:   "Predicate-pushdown scan vs. selectivity (zone-map pruning)",
		Columns: []string{"selectivity", "matched", "pruned", "skipped_bytes", "query_s", "rows/s", "speedup"},
	}
	file := queryBenchFile{
		Rows:         rows,
		Groups:       groups,
		ArchiveBytes: len(res.Archive),
		FullSecs:     fullSecs,
		NumCPU:       runtime.NumCPU(),
		Gomaxprocs:   runtime.GOMAXPROCS(0),
	}

	for _, sel := range []float64{0.005, 0.02, 0.1, 0.5, 1.0} {
		cut := float64(rows) * sel
		p := query.Lt("seq", cut)

		start := time.Now()
		qres, err := query.Run(res.Archive, query.Options{
			Where: p, Parallelism: opts.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		qSecs := time.Since(start).Seconds()

		// Verify against decompress-then-filter: the decoded seq column is
		// the ground truth the query must reproduce exactly.
		wantRows := 0
		got := 0
		for r := 0; r < rows; r++ {
			if full.Num[1][r] >= cut {
				continue
			}
			for col, c := range t.Schema.Columns {
				if c.Type == dataset.Categorical {
					if qres.Table.Str[col][got] != full.Str[col][r] {
						return nil, fmt.Errorf("bench: query differs from full decode at row %d col %d", r, col)
					}
				} else if qres.Table.Num[col][got] != full.Num[col][r] {
					return nil, fmt.Errorf("bench: query differs from full decode at row %d col %d", r, col)
				}
			}
			wantRows++
			got++
		}
		if qres.Matched != wantRows {
			return nil, fmt.Errorf("bench: query matched %d rows, filter says %d", qres.Matched, wantRows)
		}

		speedup := fullSecs / qSecs
		file.Results = append(file.Results, queryRun{
			Selectivity:  sel,
			MatchedRows:  qres.Matched,
			GroupsPruned: qres.GroupsPruned,
			GroupsTotal:  qres.GroupsTotal,
			BytesSkipped: qres.BytesSkipped,
			QuerySecs:    qSecs,
			RowsPerSec:   float64(rows) / qSecs,
			Speedup:      speedup,
		})
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.3f", sel),
			fmt.Sprintf("%d", qres.Matched),
			fmt.Sprintf("%d/%d", qres.GroupsPruned, qres.GroupsTotal),
			fmt.Sprintf("%d", qres.BytesSkipped),
			fmt.Sprintf("%.4f", qSecs),
			fmt.Sprintf("%.0f", float64(rows)/qSecs),
			fmt.Sprintf("%.2fx", speedup),
		})
		cfg.logf("query sel=%.3f: matched %d, pruned %d/%d groups, skipped %d bytes, %.4fs (%.2fx vs full)",
			sel, qres.Matched, qres.GroupsPruned, qres.GroupsTotal, qres.BytesSkipped, qSecs, speedup)
	}

	rep.Notes = append(rep.Notes,
		"every query verified row-for-row against decompress-then-filter",
		"skipped bytes are pruned row-group segments plus unread streams",
		"timings written to BENCH_query.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile("BENCH_query.json", append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}
