package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/query"
	"deepsqueeze/internal/serve"
)

// serveCold is the open-per-query baseline at one selectivity.
type serveCold struct {
	Selectivity float64 `json:"selectivity"`
	Matched     int     `json:"matched"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	QPS         float64 `json:"qps"`
}

// serveWarm is one warm-handle measurement: a client count × selectivity
// cell of the sweep.
type serveWarm struct {
	Selectivity float64 `json:"selectivity"`
	Clients     int     `json:"clients"`
	Matched     int     `json:"matched"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	QPS         float64 `json:"qps"`
	SpeedupCold float64 `json:"speedup_vs_cold_p50"`
}

// serveCached is one block-cache measurement: a cache budget × selectivity ×
// client-count cell. Every cell's responses were verified byte-identical to
// the decompress-then-filter reference before timing was recorded.
type serveCached struct {
	BudgetBytes  int64   `json:"budget_bytes"`
	Selectivity  float64 `json:"selectivity"`
	Clients      int     `json:"clients"`
	Matched      int     `json:"matched"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	QPS          float64 `json:"qps"`
	SpeedupCold  float64 `json:"speedup_vs_cold_p50"`
	HitRate      float64 `json:"block_hit_rate"`
	CacheBytes   int64   `json:"cache_bytes"`
	CacheLimitOK bool    `json:"cache_bytes_within_budget"`
}

// serveBenchFile is the top-level BENCH_serve.json document.
type serveBenchFile struct {
	Rows         int           `json:"rows"`
	Groups       int           `json:"groups"`
	ArchiveBytes int           `json:"archive_bytes"`
	NumCPU       int           `json:"num_cpu"`
	Gomaxprocs   int           `json:"gomaxprocs"`
	Cold         []serveCold   `json:"cold"`
	Warm         []serveWarm   `json:"warm"`
	Cached       []serveCached `json:"cached"`
	// SpeedupWarmVsCold is the headline open-once amortization: cold p50 /
	// warm single-client p50 at the lowest (0.5%) selectivity, where the
	// per-query decode is cheapest and the per-open parse dominates.
	SpeedupWarmVsCold float64 `json:"speedup_warm_vs_cold_at_0.5pct"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	// SpeedupCachedVsCold is the headline block-cache win: cold p50 / cached
	// single-client p50 at 0.5% selectivity under the largest budget, where
	// a warm cache answers from memory without touching the archive bytes.
	SpeedupCachedVsCold float64 `json:"speedup_cached_vs_cold_p50_at_0.5pct"`
	// CachedQPSGainAt50pct is cached single-client QPS / cold QPS at 50%
	// selectivity — the broad-scan case where decode work, not open
	// amortization, dominates.
	CachedQPSGainAt50pct float64 `json:"cached_qps_gain_at_50pct"`
}

// percentile returns the q-quantile (0..1) of sorted latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// ServeBench benchmarks the open-once/serve-many split on the query bench's
// table, cut into fine-grained serving-style row groups. The swept request is
// the shape a query server receives over and over: a projected scan of the
// predicate column (`where seq < cut select seq`), where zone maps prune all
// but the surviving groups and the projection decodes only the exactly-stored
// seq column — so the per-request work is small and the per-open parse
// (file read, header, footer, zone-map index) is the cost that matters. Each
// cell runs (a) cold — every query rereads the file and reopens a fresh
// handle — and (b) warm through a serve.Server whose handle cache amortizes
// the open across requests, at several concurrent-client counts. Results
// (p50/p99 latency, QPS, handle-cache hit rate) go to BENCH_serve.json in
// the working directory.
func ServeBench(cfg Config) (*Report, error) {
	const groupRows = 256
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	rows := int(98304 * scale)
	if cfg.Quick {
		rows = 24 * groupRows
	}
	if rows < groupRows {
		rows = groupRows
	}
	groups := (rows + groupRows - 1) / groupRows
	t := queryBenchTable(rows, cfg.Seed)

	opts := core.DefaultOptions()
	opts.Seed = cfg.Seed
	opts.CodeSize = 2
	opts.Train.Epochs = 8
	opts.TrainSampleRows = 4000
	opts.Parallelism = runtime.NumCPU()
	opts.RowGroupSize = groupRows
	if cfg.Quick {
		opts.Train.Epochs = 2
		opts.TrainSampleRows = 1000
	}
	// seq — the predicate column — gets threshold 0 (stored exactly, no
	// model), so the projected scan never touches the decoder; noise still
	// goes through the autoencoder so the archive carries a real model.
	th := []float64{0, 0, 0.01}
	res, err := core.Compress(t, th, opts)
	if err != nil {
		return nil, err
	}

	// The serving path reads from a file: that is what "cold" has to pay for
	// on every query and what the warm handle cache amortizes.
	dir, err := os.MkdirTemp("", "dsqz-serve-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "serve.dsqz")
	if err := os.WriteFile(path, res.Archive, 0o644); err != nil {
		return nil, err
	}

	iters := 64
	warmupIters := 8
	clientCounts := []int{1, 4, 8}
	if cfg.Quick {
		iters = 6
		warmupIters = 2
		clientCounts = []int{1, 4}
	}
	sels := []float64{0.005, 0.02, 0.1, 0.5}
	ctx := context.Background()

	// Decompress-then-filter reference: the projected scan's exact expected
	// bytes per selectivity, used to verify every measured sweep cell.
	full, err := core.Decompress(res.Archive)
	if err != nil {
		return nil, err
	}
	seqIdx := -1
	for i, c := range full.Schema.Columns {
		if c.Name == "seq" {
			seqIdx = i
		}
	}
	if seqIdx < 0 {
		return nil, fmt.Errorf("bench: seq column missing from decode")
	}
	refCSV := make(map[float64][]byte, len(sels))
	for _, sel := range sels {
		cut := float64(rows) * sel
		sub := dataset.NewTable(dataset.NewSchema(dataset.Column{Name: "seq", Type: dataset.Numeric}), 0)
		for r := 0; r < full.NumRows(); r++ {
			if full.Num[seqIdx][r] < cut {
				sub.AppendRow(nil, []float64{full.Num[seqIdx][r]})
			}
		}
		var buf bytes.Buffer
		if err := sub.WriteCSV(&buf); err != nil {
			return nil, err
		}
		refCSV[sel] = buf.Bytes()
	}
	verify := func(sel float64, qres *query.Result) error {
		var buf bytes.Buffer
		if err := qres.Table.WriteCSV(&buf); err != nil {
			return err
		}
		if !bytes.Equal(buf.Bytes(), refCSV[sel]) {
			return fmt.Errorf("bench: sel=%.3f result differs from decompress-then-filter reference", sel)
		}
		return nil
	}

	rep := &Report{
		ID:      "serve",
		Title:   "Open-once serving: warm-handle latency vs cold open-per-query",
		Columns: []string{"selectivity", "clients", "matched", "p50_ms", "p99_ms", "qps", "vs_cold"},
	}
	file := serveBenchFile{
		Rows:         rows,
		Groups:       groups,
		ArchiveBytes: len(res.Archive),
		NumCPU:       runtime.NumCPU(),
		Gomaxprocs:   runtime.GOMAXPROCS(0),
	}

	// Queue depth must cover the largest client count: this bench measures
	// warm-handle latency, not shedding behavior (serve's tests cover that).
	maxClients := clientCounts[len(clientCounts)-1]
	srv := serve.New(serve.Config{MaxQueue: maxClients})
	coldP50 := make(map[float64]time.Duration)
	coldQPS := make(map[float64]float64)
	for _, sel := range sels {
		cut := float64(rows) * sel
		qopts := query.Options{Where: query.Lt("seq", cut), Select: []string{"seq"}}

		// Cold baseline: open-and-query per request, single client.
		var lat []time.Duration
		matched := -1
		start := time.Now()
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			a, err := core.OpenFile(path)
			if err != nil {
				return nil, err
			}
			qres, err := query.RunArchive(ctx, a, qopts)
			if err != nil {
				return nil, err
			}
			lat = append(lat, time.Since(t0))
			if matched >= 0 && qres.Matched != matched {
				return nil, fmt.Errorf("bench: cold matched %d then %d", matched, qres.Matched)
			}
			matched = qres.Matched
			if i == 0 {
				if err := verify(sel, qres); err != nil {
					return nil, err
				}
			}
		}
		coldWall := time.Since(start)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p50, p99 := percentile(lat, 0.5), percentile(lat, 0.99)
		coldP50[sel] = p50
		coldQPS[sel] = float64(iters) / coldWall.Seconds()
		file.Cold = append(file.Cold, serveCold{
			Selectivity: sel,
			Matched:     matched,
			P50Ms:       ms(p50),
			P99Ms:       ms(p99),
			QPS:         float64(iters) / coldWall.Seconds(),
		})
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.3f", sel), "cold", fmt.Sprintf("%d", matched),
			fmt.Sprintf("%.3f", ms(p50)), fmt.Sprintf("%.3f", ms(p99)),
			fmt.Sprintf("%.1f", float64(iters)/coldWall.Seconds()), "1.00x",
		})
		cfg.logf("serve sel=%.3f cold: p50 %.3fms p99 %.3fms", sel, ms(p50), ms(p99))

		// Warm sweep: concurrent clients against the server's cached handle.
		for _, clients := range clientCounts {
			total := iters * clients
			lats := make([]time.Duration, total)
			matches := make([]int, clients)
			errs := make([]error, clients)
			// Warmup: untimed iterations populate the handle cache, the
			// lazily-parsed decoders, and the runtime's own steady state
			// before any percentile sample is taken — a single warmup query
			// leaves first-iteration parse costs inside the p99.
			for i := 0; i < warmupIters; i++ {
				qres, err := srv.Query(ctx, path, qopts)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					if err := verify(sel, qres); err != nil {
						return nil, err
					}
				}
			}
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						t0 := time.Now()
						qres, err := srv.Query(ctx, path, qopts)
						if err != nil {
							errs[c] = err
							return
						}
						lats[c*iters+i] = time.Since(t0)
						matches[c] = qres.Matched
					}
				}(c)
			}
			wg.Wait()
			wall := time.Since(start)
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			for _, m := range matches {
				if m != matched {
					return nil, fmt.Errorf("bench: warm matched %d, cold %d", m, matched)
				}
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			p50, p99 := percentile(lats, 0.5), percentile(lats, 0.99)
			qps := float64(total) / wall.Seconds()
			speedup := float64(coldP50[sel]) / float64(p50)
			file.Warm = append(file.Warm, serveWarm{
				Selectivity: sel,
				Clients:     clients,
				Matched:     matched,
				P50Ms:       ms(p50),
				P99Ms:       ms(p99),
				QPS:         qps,
				SpeedupCold: speedup,
			})
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%.3f", sel), fmt.Sprintf("%d", clients), fmt.Sprintf("%d", matched),
				fmt.Sprintf("%.3f", ms(p50)), fmt.Sprintf("%.3f", ms(p99)),
				fmt.Sprintf("%.1f", qps), fmt.Sprintf("%.2fx", speedup),
			})
			cfg.logf("serve sel=%.3f clients=%d: p50 %.3fms p99 %.3fms %.1f qps (%.2fx vs cold p50)",
				sel, clients, ms(p50), ms(p99), qps, speedup)
			if clients == 1 && sel == sels[0] {
				file.SpeedupWarmVsCold = speedup
			}
		}
	}

	// Block-cache sweep: the same selectivity × client grid against servers
	// with the decoded-block cache enabled at each budget. Warm repeats of the
	// same query hit resident blocks and skip the parse → scan → unpack →
	// decode pipeline entirely; the small budget shows behavior under
	// eviction pressure. Every cell verifies a response byte-identical to the
	// decompress-then-filter reference and checks resident bytes ≤ budget.
	budgets := []int64{8 << 20, 256 << 10}
	if cfg.Quick {
		budgets = budgets[:1]
	}
	for _, budget := range budgets {
		csrv := serve.New(serve.Config{MaxQueue: maxClients, BlockCacheBytes: budget})
		for _, sel := range sels {
			cut := float64(rows) * sel
			qopts := query.Options{Where: query.Lt("seq", cut), Select: []string{"seq"}}
			for _, clients := range clientCounts {
				matched := -1
				for i := 0; i < warmupIters; i++ {
					qres, err := csrv.Query(ctx, path, qopts)
					if err != nil {
						return nil, err
					}
					matched = qres.Matched
					if i == 0 {
						if err := verify(sel, qres); err != nil {
							return nil, err
						}
					}
				}
				st0 := csrv.Stats()
				total := iters * clients
				lats := make([]time.Duration, total)
				errs := make([]error, clients)
				start := time.Now()
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						for i := 0; i < iters; i++ {
							t0 := time.Now()
							qres, err := csrv.Query(ctx, path, qopts)
							if err != nil {
								errs[c] = err
								return
							}
							lats[c*iters+i] = time.Since(t0)
							if qres.Matched != matched {
								errs[c] = fmt.Errorf("bench: cached matched %d, want %d", qres.Matched, matched)
								return
							}
						}
					}(c)
				}
				wg.Wait()
				wall := time.Since(start)
				for _, err := range errs {
					if err != nil {
						return nil, err
					}
				}
				// Post-timing verification: the measured configuration still
				// produces bytes identical to decompress-then-filter.
				qres, err := csrv.Query(ctx, path, qopts)
				if err != nil {
					return nil, err
				}
				if err := verify(sel, qres); err != nil {
					return nil, err
				}
				st1 := csrv.Stats()
				if st1.BlockBytes > budget {
					return nil, fmt.Errorf("bench: block cache holds %d bytes, budget %d", st1.BlockBytes, budget)
				}
				hitRate := 0.0
				if d := (st1.BlockHits - st0.BlockHits) + (st1.BlockMisses - st0.BlockMisses); d > 0 {
					hitRate = float64(st1.BlockHits-st0.BlockHits) / float64(d)
				}
				sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
				p50, p99 := percentile(lats, 0.5), percentile(lats, 0.99)
				qps := float64(total) / wall.Seconds()
				speedup := float64(coldP50[sel]) / float64(p50)
				file.Cached = append(file.Cached, serveCached{
					BudgetBytes:  budget,
					Selectivity:  sel,
					Clients:      clients,
					Matched:      matched,
					P50Ms:        ms(p50),
					P99Ms:        ms(p99),
					QPS:          qps,
					SpeedupCold:  speedup,
					HitRate:      hitRate,
					CacheBytes:   st1.BlockBytes,
					CacheLimitOK: true,
				})
				rep.Rows = append(rep.Rows, []string{
					fmt.Sprintf("%.3f", sel), fmt.Sprintf("%d (cache %dK)", clients, budget>>10),
					fmt.Sprintf("%d", matched),
					fmt.Sprintf("%.3f", ms(p50)), fmt.Sprintf("%.3f", ms(p99)),
					fmt.Sprintf("%.1f", qps), fmt.Sprintf("%.2fx", speedup),
				})
				cfg.logf("serve sel=%.3f clients=%d cache=%dK: p50 %.3fms p99 %.3fms %.1f qps (%.2fx vs cold p50, hit rate %.3f)",
					sel, clients, budget>>10, ms(p50), ms(p99), qps, speedup, hitRate)
				if budget == budgets[0] && clients == 1 {
					if sel == sels[0] {
						file.SpeedupCachedVsCold = speedup
					}
					if sel == 0.5 {
						file.CachedQPSGainAt50pct = qps / coldQPS[sel]
					}
				}
			}
		}
	}

	st := srv.Stats()
	if st.CacheHits+st.CacheMisses > 0 {
		file.CacheHitRate = float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
	}
	rep.Notes = append(rep.Notes,
		"cold = file read + core.OpenFile + query per request; warm = serve.Server with cached handle",
		fmt.Sprintf("handle-cache hit rate %.3f over %d lookups", file.CacheHitRate, st.CacheHits+st.CacheMisses),
		fmt.Sprintf("warm single-client p50 beats cold by %.2fx at 0.5%% selectivity", file.SpeedupWarmVsCold),
		fmt.Sprintf("block cache: warm p50 beats cold by %.2fx at 0.5%% selectivity, %.2fx qps at 50%%",
			file.SpeedupCachedVsCold, file.CachedQPSGainAt50pct),
		"every measured cell verified byte-identical to decompress-then-filter",
		"timings written to BENCH_serve.json")

	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile("BENCH_serve.json", append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}
