package bench

import (
	"fmt"
	"time"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/datagen"
	"deepsqueeze/internal/squish"
)

var datasetOrder = []string{"corel", "forest", "census", "monitor", "criteo"}

// Table1 regenerates the dataset summary (paper Table 1), reporting both
// the paper's original scale and the synthetic stand-in actually generated.
func Table1(cfg Config) (*Report, error) {
	tc := newTableCache(cfg)
	rep := &Report{
		ID:      "table1",
		Title:   "Summary of evaluation datasets",
		Columns: []string{"dataset", "paper_raw", "paper_tuples", "gen_raw_MB", "gen_tuples", "categorical", "numerical"},
		Notes: []string{
			"paper_* columns restate the published Table 1; gen_* columns describe the synthetic stand-ins (see DESIGN.md §2)",
		},
	}
	for _, name := range datasetOrder {
		t, g, err := tc.get(name)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			name,
			fmt.Sprintf("%.0fMB", g.PaperRawMB),
			fmt.Sprintf("%d", g.PaperRows),
			fmt.Sprintf("%.1f", float64(t.CSVSize())/(1<<20)),
			fmt.Sprintf("%d", t.NumRows()),
			fmt.Sprintf("%d", g.CatCols),
			fmt.Sprintf("%d", g.NumCols),
		})
	}
	return rep, nil
}

// Fig6a regenerates the lossless-baseline comparison (paper Fig. 6a): gzip
// and Parquet compression ratios on every dataset.
func Fig6a(cfg Config) (*Report, error) {
	tc := newTableCache(cfg)
	rep := &Report{
		ID:      "fig6a",
		Title:   "gzip & Parquet compression ratios (%, smaller is better)",
		Columns: []string{"dataset", "gzip_%", "parquet_%"},
	}
	for _, name := range datasetOrder {
		t, _, err := tc.get(name)
		if err != nil {
			return nil, err
		}
		raw := t.CSVSize()
		gz, _, _, err := gzipSize(t)
		if err != nil {
			return nil, err
		}
		pq, _, _, err := parquetSize(t)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{name, pct(gz, raw), pct(pq, raw)})
		cfg.logf("fig6a %s: gzip %s%% parquet %s%%", name, pct(gz, raw), pct(pq, raw))
	}
	return rep, nil
}

// Fig6 regenerates the main compression-ratio comparison (paper Figs.
// 6b–6f): DeepSqueeze (with failure/code/decoder breakdown) versus Squish
// at each error threshold, per dataset.
func Fig6(cfg Config, datasets ...string) (*Report, error) {
	if len(datasets) == 0 {
		datasets = datasetOrder
	}
	tc := newTableCache(cfg)
	rep := &Report{
		ID:      "fig6",
		Title:   "DeepSqueeze vs Squish compression ratios (%, smaller is better)",
		Columns: []string{"dataset", "error_%", "squish_%", "ds_total_%", "ds_failures_%", "ds_codes_%", "ds_decoder_%"},
		Notes: []string{
			"ds_failures includes expert mappings and fallback columns, matching the paper's stacked bars",
		},
	}
	for _, name := range datasets {
		t, _, err := tc.get(name)
		if err != nil {
			return nil, err
		}
		raw := t.CSVSize()
		for _, thr := range errorThresholds(name, cfg.Quick) {
			thresholds := datagen.Thresholds(t, thr)
			sq, err := squish.Compress(t, thresholds, squish.DefaultOptions())
			if err != nil {
				return nil, err
			}
			opts := dsOptions(name, cfg)
			res, err := core.Compress(t, thresholds, opts)
			if err != nil {
				return nil, err
			}
			bd := res.Breakdown
			rep.Rows = append(rep.Rows, []string{
				name,
				fmt.Sprintf("%g", thr*100),
				pct(int64(len(sq)), raw),
				pct(bd.Total, raw),
				pct(bd.Failures+bd.Mapping, raw),
				pct(bd.Codes, raw),
				pct(bd.Decoder+bd.Header, raw),
			})
			cfg.logf("fig6 %s@%g%%: squish %s%% ds %s%%", name, thr*100,
				pct(int64(len(sq)), raw), pct(bd.Total, raw))
		}
	}
	return rep, nil
}

// Table2 regenerates the runtime comparison (paper Table 2): tuning,
// compression, and decompression times for every approach at a 10% error
// threshold (0% for Census).
func Table2(cfg Config, datasets ...string) (*Report, error) {
	if len(datasets) == 0 {
		datasets = datasetOrder
	}
	tc := newTableCache(cfg)
	rep := &Report{
		ID:    "table2",
		Title: "Runtimes in seconds: hyperparameter tuning (HT), compression (C), decompression (D)",
		Columns: []string{"dataset",
			"gzip_C", "gzip_D", "parquet_C", "parquet_D",
			"squish_C", "squish_D", "ds_HT", "ds_C", "ds_D"},
		Notes: []string{
			"our Squish baseline has no tuning phase (its structure learning is folded into C)",
		},
	}
	secs := func(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }
	for _, name := range datasets {
		t, _, err := tc.get(name)
		if err != nil {
			return nil, err
		}
		thr := 0.1
		if name == "census" {
			thr = 0
		}
		thresholds := datagen.Thresholds(t, thr)

		_, gzC, gzD, err := gzipSize(t)
		if err != nil {
			return nil, err
		}
		_, pqC, pqD, err := parquetSize(t)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		sq, err := squish.Compress(t, thresholds, squish.DefaultOptions())
		if err != nil {
			return nil, err
		}
		sqC := time.Since(start)
		start = time.Now()
		if _, err := squish.Decompress(sq); err != nil {
			return nil, err
		}
		sqD := time.Since(start)

		opts := dsOptions(name, cfg)
		topts := core.DefaultTuneOptions()
		topts.Base = opts
		topts.Samples = []int{2000}
		topts.Codes = []int{opts.CodeSize}
		topts.Experts = []int{1, opts.NumExperts}
		topts.Budget = 2
		if cfg.Quick {
			topts.Budget = 1
			topts.Experts = []int{1}
		}
		start = time.Now()
		if _, err := core.Tune(t, thresholds, topts); err != nil {
			return nil, err
		}
		dsHT := time.Since(start)
		start = time.Now()
		res, err := core.Compress(t, thresholds, opts)
		if err != nil {
			return nil, err
		}
		dsC := time.Since(start)
		start = time.Now()
		if _, err := core.Decompress(res.Archive); err != nil {
			return nil, err
		}
		dsD := time.Since(start)

		rep.Rows = append(rep.Rows, []string{name,
			secs(gzC), secs(gzD), secs(pqC), secs(pqD),
			secs(sqC), secs(sqD), secs(dsHT), secs(dsC), secs(dsD)})
		cfg.logf("table2 %s done", name)
	}
	return rep, nil
}
