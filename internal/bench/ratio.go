package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/datagen"
	"deepsqueeze/internal/dataset"
)

// ratioRun is one dataset's record in BENCH_ratio.json: the DEFLATE-only
// baseline against the best-of codec selection, with the failure/code
// streams — the range codecs' territory — broken out.
type ratioRun struct {
	Dataset        string  `json:"dataset"`
	Rows           int     `json:"rows"`
	BaselineBytes  int     `json:"baseline_archive_bytes"`
	AutoBytes      int     `json:"auto_archive_bytes"`
	BaselineStream int64   `json:"baseline_failure_code_bytes"`
	AutoStream     int64   `json:"auto_failure_code_bytes"`
	StreamShrink   float64 `json:"failure_code_shrink_pct"`
	ArchiveShrink  float64 `json:"archive_shrink_pct"`
	RangeFrames    int     `json:"range_frames"`
}

// resbitRun pins the residual-digit acceptance bound in BENCH_ratio.json:
// the clickstream fixture compressed with its high-cardinality id columns as
// in-model residual digits versus the colfile-fallback configuration.
type resbitRun struct {
	Dataset        string  `json:"dataset"`
	Rows           int     `json:"rows"`
	ResidualCols   int     `json:"residual_columns"`
	FallbackBytes  int     `json:"fallback_archive_bytes"`
	ResidualBytes  int     `json:"residual_archive_bytes"`
	ArchiveShrink  float64 `json:"archive_shrink_pct"`
	FallbackStream int64   `json:"fallback_failure_bytes"`
	ResidualStream int64   `json:"residual_failure_bytes"`
}

// ratioBenchFile is the top-level BENCH_ratio.json document.
type ratioBenchFile struct {
	Baseline   string     `json:"baseline"`
	NumCPU     int        `json:"num_cpu"`
	Gomaxprocs int        `json:"gomaxprocs"`
	Results    []ratioRun `json:"results"`
	Resbit     *resbitRun `json:"resbit,omitempty"`
}

// skewCatTable is the bench's skewed categorical fixture: every column is a
// near-deterministic function of a shared latent with a 2% noise floor, so a
// trained model ranks the true label first ~98% of the time and the failure
// streams live below one bit per row — under Huffman's integer-bit floor
// (colenc's stored form) and in exactly the regime range coding was added
// for.
func skewCatTable(rows int, seed int64) *dataset.Table {
	cols := make([]dataset.Column, 10)
	for i := range cols {
		cols[i] = dataset.Column{Name: fmt.Sprintf("attr%02d", i), Type: dataset.Categorical}
	}
	schema := dataset.NewSchema(cols...)
	t := dataset.NewTable(schema, rows)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		z := rng.Float64()
		vals := make([]string, len(cols))
		for c := range vals {
			v := int(z*4) + c%3
			if rng.Float64() < 0.02 {
				v = rng.Intn(24)
			}
			vals[c] = fmt.Sprintf("v%02d", v)
		}
		t.AppendRow(vals, nil)
	}
	return t
}

// CodecRatio measures what the learned range codecs buy over the historical
// stored/DEFLATE pair: each dataset is compressed twice — Codec "deflate"
// (the pre-codec behavior) and default best-of selection — and the
// failure/code stream bytes are compared. The skewed categorical fixture is
// the acceptance gate: the run fails unless range coding shrinks its
// failure/code bytes by at least 10%. Every auto archive is additionally
// round-tripped at parallelism 1, 4, and NumCPU to prove codec choice is
// deterministic. Results go to BENCH_ratio.json.
func CodecRatio(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "ratio",
		Title:   "Stream-codec ratio: best-of range coding vs DEFLATE-only",
		Columns: []string{"dataset", "rows", "base_bytes", "auto_bytes", "base_fc", "auto_fc", "fc_shrink", "range_frames"},
	}
	file := ratioBenchFile{Baseline: "deflate", NumCPU: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0)}

	type ratioCase struct {
		name  string
		table *dataset.Table
		opts  core.Options
		gate  bool // enforce the >= 10% failure/code shrink acceptance bound
	}
	var cases []ratioCase

	skewRows := 20_000
	if cfg.Scale > 0 && cfg.Scale != 1 {
		skewRows = int(float64(skewRows) * cfg.Scale)
		if skewRows < 2000 {
			skewRows = 2000
		}
	}
	skewOpts := core.DefaultOptions()
	skewOpts.Seed = cfg.Seed
	// The fixture needs a model good enough to push failure ranks into the
	// sub-bit regime; a few epochs over a small sample suffice even in quick
	// runs because the columns are near-deterministic in the latent.
	skewOpts.Train.Epochs = 8
	skewOpts.TrainSampleRows = 4000
	cases = append(cases, ratioCase{"skewcat", skewCatTable(skewRows, cfg.Seed+300), skewOpts, true})

	if !cfg.Quick {
		tc := newTableCache(cfg)
		t, _, err := tc.get("census")
		if err != nil {
			return nil, err
		}
		cases = append(cases, ratioCase{"census", t, dsOptions("census", cfg), false})
	}

	for _, c := range cases {
		th := datagen.Thresholds(c.table, 0)
		base := c.opts
		base.Codec = "deflate"
		bres, err := core.Compress(c.table, th, base)
		if err != nil {
			return nil, err
		}
		ares, err := core.Compress(c.table, th, c.opts)
		if err != nil {
			return nil, err
		}

		// Codec choice must be a pure function of stream bytes: the same
		// table compresses to identical archives at every parallelism level.
		for _, p := range []int{1, 4, runtime.NumCPU()} {
			po := c.opts
			po.Parallelism = p
			pres, err := core.Compress(c.table, th, po)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(pres.Archive, ares.Archive) {
				return nil, fmt.Errorf("bench: %s archive differs at parallelism %d", c.name, p)
			}
		}

		stats, err := core.InspectStreams(ares.Archive)
		if err != nil {
			return nil, err
		}
		rangeFrames := 0
		for _, st := range stats {
			rangeFrames += st.Codecs["range-adaptive"] + st.Codecs["range-cpt"]
		}

		baseFC := bres.Breakdown.Failures + bres.Breakdown.Codes
		autoFC := ares.Breakdown.Failures + ares.Breakdown.Codes
		fcShrink := 100 * (1 - float64(autoFC)/float64(baseFC))
		archShrink := 100 * (1 - float64(len(ares.Archive))/float64(len(bres.Archive)))
		if c.gate && fcShrink < 10 {
			return nil, fmt.Errorf("bench: range coding shrank %s failure/code bytes by only %.1f%%, want >= 10%%", c.name, fcShrink)
		}
		if len(ares.Archive) > len(bres.Archive) {
			return nil, fmt.Errorf("bench: %s auto archive %dB exceeds deflate baseline %dB", c.name, len(ares.Archive), len(bres.Archive))
		}

		file.Results = append(file.Results, ratioRun{
			Dataset:        c.name,
			Rows:           c.table.NumRows(),
			BaselineBytes:  len(bres.Archive),
			AutoBytes:      len(ares.Archive),
			BaselineStream: baseFC,
			AutoStream:     autoFC,
			StreamShrink:   fcShrink,
			ArchiveShrink:  archShrink,
			RangeFrames:    rangeFrames,
		})
		rep.Rows = append(rep.Rows, []string{
			c.name,
			fmt.Sprintf("%d", c.table.NumRows()),
			fmt.Sprintf("%d", len(bres.Archive)),
			fmt.Sprintf("%d", len(ares.Archive)),
			fmt.Sprintf("%d", baseFC),
			fmt.Sprintf("%d", autoFC),
			fmt.Sprintf("%.1f%%", fcShrink),
			fmt.Sprintf("%d", rangeFrames),
		})
		cfg.logf("ratio %s: failure/code %d -> %d bytes (%.1f%%), archive %d -> %d",
			c.name, baseFC, autoFC, fcShrink, len(bres.Archive), len(ares.Archive))
	}

	resbit, err := resbitRatio(cfg, rep)
	if err != nil {
		return nil, err
	}
	file.Resbit = resbit

	rep.Notes = append(rep.Notes,
		"baseline is Codec=deflate, the pre-codec stored/DEFLATE behavior",
		"skewcat gates the >= 10% failure/code shrink acceptance bound",
		"auto archives verified byte-identical at parallelism 1, 4, and NumCPU",
		"clickstream-resbit compares -resbit against the colfile-fallback configuration; its fc columns are whole-archive bytes and it gates the >= 10% archive shrink bound",
		"results written to BENCH_ratio.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile("BENCH_ratio.json", append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// resbitRatio measures what the residual-digit path buys on the clickstream
// fixture: the same table is compressed with ResidualCats on (the id columns
// become stacked in-model digits) and with the colfile-fallback configuration
// (FallbackMaxDistinct clamped to the model cardinality, so every
// high-cardinality column stores its raw strings directly). The residual
// archive must be at least 10% smaller and byte-identical at parallelism 1,
// 4, and NumCPU. A row is appended to the ratio report; the pinned numbers go
// to BENCH_ratio.json's "resbit" entry.
func resbitRatio(cfg Config, rep *Report) (*resbitRun, error) {
	rows := 30_000
	if cfg.Scale > 0 && cfg.Scale != 1 {
		rows = int(float64(rows) * cfg.Scale)
		// Below ~16k rows the Zipf id columns drift toward the near-unique
		// ratio and the fit rule (correctly) refuses the residual path, so
		// the fixture stops measuring what this gate is for.
		if rows < 16_000 {
			rows = 16_000
		}
	}
	table := datagen.Clickstream(rand.New(rand.NewSource(cfg.Seed+301)), rows)
	// The paper's evaluation error bound for numerics; the id columns under
	// test are categorical and always round-trip exactly.
	th := datagen.Thresholds(table, 0.005)

	opts := core.DefaultOptions()
	opts.Seed = cfg.Seed
	opts.Train.Epochs = 8
	opts.TrainSampleRows = 4000

	fb := opts
	fb.Preproc.FallbackMaxDistinct = fb.Preproc.MaxModelCardinality
	fres, err := core.Compress(table, th, fb)
	if err != nil {
		return nil, err
	}

	res := opts
	res.Preproc.ResidualCats = true
	rres, err := core.Compress(table, th, res)
	if err != nil {
		return nil, err
	}
	for _, p := range []int{1, 4, runtime.NumCPU()} {
		po := res
		po.Parallelism = p
		pres, err := core.Compress(table, th, po)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(pres.Archive, rres.Archive) {
			return nil, fmt.Errorf("bench: resbit archive differs at parallelism %d", p)
		}
	}

	// The gate only counts if the smaller archive still round-trips:
	// categoricals — including the residual id columns — exactly, numerics
	// within their declared absolute bound.
	got, err := core.Decompress(rres.Archive)
	if err != nil {
		return nil, err
	}
	tol := make([]float64, len(th))
	for i, st := range table.Stats() {
		tol[i] = th[i] * (st.Max - st.Min)
	}
	if err := table.EqualWithin(got, tol); err != nil {
		return nil, fmt.Errorf("bench: resbit archive is not lossless: %w", err)
	}

	info, err := core.Inspect(rres.Archive)
	if err != nil {
		return nil, err
	}
	nres := info.KindCensus["residual"]
	if nres == 0 {
		return nil, fmt.Errorf("bench: clickstream fixture produced no residual columns")
	}
	shrink := 100 * (1 - float64(len(rres.Archive))/float64(len(fres.Archive)))
	if shrink < 10 {
		return nil, fmt.Errorf("bench: residual archive only %.1f%% smaller than the colfile fallback, want >= 10%%", shrink)
	}

	rep.Rows = append(rep.Rows, []string{
		"clickstream-resbit",
		fmt.Sprintf("%d", rows),
		fmt.Sprintf("%d", len(fres.Archive)),
		fmt.Sprintf("%d", len(rres.Archive)),
		fmt.Sprintf("%d", fres.Breakdown.Failures),
		fmt.Sprintf("%d", rres.Breakdown.Failures),
		fmt.Sprintf("%.1f%%", shrink),
		"-",
	})
	cfg.logf("resbit clickstream: archive %d -> %d bytes (%.1f%%), %d residual column(s)",
		len(fres.Archive), len(rres.Archive), shrink, nres)
	return &resbitRun{
		Dataset:        "clickstream",
		Rows:           rows,
		ResidualCols:   nres,
		FallbackBytes:  len(fres.Archive),
		ResidualBytes:  len(rres.Archive),
		ArchiveShrink:  shrink,
		FallbackStream: fres.Breakdown.Failures,
		ResidualStream: rres.Breakdown.Failures,
	}, nil
}
