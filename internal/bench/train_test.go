package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestTrainSpeedup(t *testing.T) {
	dir := t.TempDir()
	orig, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(orig) })
	rep, err := TrainSpeedup(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("nil report")
	}
	if len(rep.Rows) < 2 {
		t.Fatalf("want >= 2 worker levels, got %d rows", len(rep.Rows))
	}
	buf, err := os.ReadFile(filepath.Join(dir, "BENCH_train.json"))
	if err != nil {
		t.Fatalf("BENCH_train.json not written: %v", err)
	}
	var file trainBenchFile
	if err := json.Unmarshal(buf, &file); err != nil {
		t.Fatalf("BENCH_train.json malformed: %v", err)
	}
	if !file.WeightsIdentical {
		t.Fatal("weights not identical across worker counts")
	}
	if !file.ArchivesIdentical {
		t.Fatal("archives not identical across Train.Workers")
	}
	if len(file.Results) < 2 || file.Results[0].Workers != 1 {
		t.Fatalf("results = %+v", file.Results)
	}
	if file.Results[0].RowsPerSec <= 0 {
		t.Fatal("zero training throughput recorded")
	}
}
