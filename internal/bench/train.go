package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/datagen"
	"deepsqueeze/internal/mat"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/pipeline"
)

// trainResult is the JSON record one worker level contributes to
// BENCH_train.json. AllocsPerBatch is the raw steady-state malloc count per
// minibatch; it splits into the trainer's own allocations (the serial
// measurement — the forward/backward/reduce path, documented ≤ 3 in
// DESIGN.md §12) and scheduler overhead, the helper-goroutine spawns
// pipeline.Pool.Do performs on every call at Workers > 1. Earlier revisions
// published only the raw number, which read as a trainer leak at Workers=4
// (7 vs the documented 3); the split keeps the two accountable separately
// and the bench errors out if the trainer's own share drifts above 3.
type trainResult struct {
	Workers                 int     `json:"workers"`
	RowsPerSec              float64 `json:"rows_per_sec"`
	Speedup                 float64 `json:"speedup_vs_w1"`
	AllocsPerBatch          float64 `json:"allocs_per_batch"`
	TrainerAllocsPerBatch   float64 `json:"trainer_allocs_per_batch"`
	SchedulerAllocsPerBatch float64 `json:"scheduler_allocs_per_batch"`
}

// trainBenchFile is the top-level BENCH_train.json document.
type trainBenchFile struct {
	Rows              int           `json:"rows"`
	BatchSize         int           `json:"batch_size"`
	Epochs            int           `json:"epochs"`
	NumCPU            int           `json:"num_cpu"`
	Gomaxprocs        int           `json:"gomaxprocs"`
	WeightsIdentical  bool          `json:"weights_identical"`
	ArchivesIdentical bool          `json:"archives_identical"`
	Results           []trainResult `json:"results"`
}

// trainBenchSpecs is the mixed-type column layout the throughput measurement
// trains on: wide enough that the shared categorical stack (the dominant
// kernel load) is exercised alongside the numeric/binary head.
func trainBenchSpecs() []nn.ColSpec {
	return []nn.ColSpec{
		{Kind: nn.OutNumeric}, {Kind: nn.OutNumeric}, {Kind: nn.OutNumeric}, {Kind: nn.OutNumeric},
		{Kind: nn.OutBinary},
		{Kind: nn.OutCategorical, Card: 8},
		{Kind: nn.OutCategorical, Card: 16},
		{Kind: nn.OutCategorical, Card: 5},
	}
}

// trainBenchData synthesizes a correlated training set for the specs above.
func trainBenchData(rng *rand.Rand, specs []nn.ColSpec, rows int) (*mat.Matrix, *nn.Targets) {
	x := mat.New(rows, len(specs))
	tg := &nn.Targets{Num: mat.New(rows, 4), Bin: mat.New(rows, 1), Cat: make([][]int, 3)}
	for j := range tg.Cat {
		tg.Cat[j] = make([]int, rows)
	}
	for r := 0; r < rows; r++ {
		z := rng.Float64()
		ni, bi, ci := 0, 0, 0
		for c, s := range specs {
			switch s.Kind {
			case nn.OutNumeric:
				v := math.Mod(z*float64(c+1)+0.1*rng.Float64(), 1)
				x.Set(r, c, v)
				tg.Num.Set(r, ni, v)
				ni++
			case nn.OutBinary:
				v := 0.0
				if z > 0.5 {
					v = 1
				}
				x.Set(r, c, v)
				tg.Bin.Set(r, bi, v)
				bi++
			case nn.OutCategorical:
				cls := int(z * float64(s.Card-1))
				x.Set(r, c, float64(cls)/float64(s.Card-1))
				tg.Cat[ci][r] = cls
				ci++
			}
		}
	}
	return x, tg
}

// TrainSpeedup measures data-parallel training throughput (rows/sec) and
// steady-state allocations per minibatch at Workers=1 vs 4 vs NumCPU,
// verifying the trained weights are bit-identical at every level, then
// cross-checks that compress archives do not change with Train.Workers. The
// trajectory is written to BENCH_train.json in the working directory.
func TrainSpeedup(cfg Config) (*Report, error) {
	const batch = 256
	rows := int(16384 * cfg.Scale)
	if cfg.Quick && rows > 4096 {
		rows = 4096
	}
	if rows < 1024 {
		rows = 1024
	}
	rows -= rows % batch
	epochs := 3
	specs := trainBenchSpecs()
	x, tg := trainBenchData(rand.New(rand.NewSource(41)), specs, rows)

	levels := []int{1, 4}
	if n := runtime.NumCPU(); n > 4 {
		levels = append(levels, n)
	}
	rep := &Report{
		ID:      "train",
		Title:   "Data-parallel training: rows/sec and allocs/batch vs. workers",
		Columns: []string{"workers", "rows_per_sec", "speedup", "allocs_per_batch", "trainer_allocs", "scheduler_allocs"},
	}
	file := trainBenchFile{Rows: rows, BatchSize: batch, Epochs: epochs,
		NumCPU: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0), WeightsIdentical: true}

	var baseline, trainerAllocs float64
	var baseWeights []float64
	for _, w := range levels {
		ae, err := nn.NewAutoencoder(rand.New(rand.NewSource(42)), specs, nn.Config{CodeSize: 4})
		if err != nil {
			return nil, err
		}
		opt := nn.NewAdam(0.01)
		pool := pipeline.NewPool(w)
		// Pre-slice the minibatch views so the timed loop's allocations are
		// the trainer's alone.
		nb := rows / batch
		bx := make([]mat.Matrix, nb)
		bnum := make([]mat.Matrix, nb)
		bbin := make([]mat.Matrix, nb)
		btg := make([]nn.Targets, nb)
		for k := 0; k < nb; k++ {
			lo := k * batch
			bx[k] = x.SliceRows(lo, lo+batch)
			bnum[k] = tg.Num.SliceRows(lo, lo+batch)
			bbin[k] = tg.Bin.SliceRows(lo, lo+batch)
			cat := make([][]int, len(tg.Cat))
			for j, col := range tg.Cat {
				cat[j] = col[lo : lo+batch]
			}
			btg[k] = nn.Targets{Num: &bnum[k], Bin: &bbin[k], Cat: cat}
		}
		epoch := func() {
			for k := 0; k < nb; k++ {
				ae.TrainBatchWorkers(&bx[k], &btg[k], opt, w, pool)
			}
		}
		epoch() // warmup: arenas and replicas reach steady state
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for e := 0; e < epochs; e++ {
			epoch()
		}
		secs := time.Since(start).Seconds()
		runtime.ReadMemStats(&m1)
		allocs := float64(m1.Mallocs-m0.Mallocs) / float64(epochs*nb)
		rowsPerSec := float64(epochs*rows) / secs

		weights := flattenWeights(ae)
		if baseWeights == nil {
			baseWeights = weights
			baseline = rowsPerSec
			// Workers=1 never calls Pool.Do, so the serial measurement IS
			// the trainer's own steady state — the number DESIGN.md §12
			// documents as ≤ 3. Assert it at bench time so accounting drift
			// (a new allocation sneaking into the batch loop) fails loudly
			// instead of silently inflating the published figure.
			trainerAllocs = allocs
			if trainerAllocs > 3 {
				return nil, fmt.Errorf("bench: trainer steady state allocates %.1f/batch, documented bound is 3", trainerAllocs)
			}
		} else if !weightsEqual(baseWeights, weights) {
			file.WeightsIdentical = false
		}
		sched := allocs - trainerAllocs
		if sched < 0 {
			sched = 0
		}
		// Scheduler overhead is per-call goroutine spawning in Pool.Do:
		// bounded by a few allocations per helper, and there are at most
		// min(workers, shards)-1 helpers. Well past that means something
		// other than the scheduler is allocating per batch.
		if helpers := float64(w - 1); w > 1 && sched > 4*helpers+4 {
			return nil, fmt.Errorf("bench: w=%d scheduler overhead %.1f allocs/batch exceeds spawn budget", w, sched)
		}
		speedup := rowsPerSec / baseline
		file.Results = append(file.Results, trainResult{
			Workers: w, RowsPerSec: rowsPerSec, Speedup: speedup,
			AllocsPerBatch: allocs, TrainerAllocsPerBatch: trainerAllocs, SchedulerAllocsPerBatch: sched,
		})
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.0f", rowsPerSec),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.1f", allocs),
			fmt.Sprintf("%.1f", trainerAllocs),
			fmt.Sprintf("%.1f", sched),
		})
		cfg.logf("train w=%d: %.0f rows/s, %.1f allocs/batch (%.1f trainer + %.1f scheduler)",
			w, rowsPerSec, allocs, trainerAllocs, sched)
	}
	if !file.WeightsIdentical {
		return nil, fmt.Errorf("bench: trained weights differ across worker counts")
	}

	// Cross-check end to end: compress archives must not change with
	// Train.Workers either.
	identical, err := trainArchiveIdentity(cfg)
	if err != nil {
		return nil, err
	}
	file.ArchivesIdentical = identical
	if !identical {
		return nil, fmt.Errorf("bench: archives differ across Train.Workers")
	}

	rep.Notes = append(rep.Notes,
		"trained weights bit-identical across worker counts",
		"compress archives bit-identical across Train.Workers",
		"trajectory written to BENCH_train.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile("BENCH_train.json", append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// trainArchiveIdentity compresses Monitor with Train.Workers at 1, 4, and
// NumCPU (pool size held fixed) and reports whether all archives match.
func trainArchiveIdentity(cfg Config) (bool, error) {
	tc := newTableCache(cfg)
	t, _, err := tc.get("monitor")
	if err != nil {
		return false, err
	}
	th := datagen.Thresholds(t, 0.1)
	var first []byte
	for _, w := range []int{1, 4, runtime.NumCPU()} {
		opts := dsOptions("monitor", cfg)
		opts.Train.Workers = w
		res, err := core.Compress(t, th, opts)
		if err != nil {
			return false, err
		}
		if first == nil {
			first = res.Archive
		} else if !bytes.Equal(first, res.Archive) {
			return false, nil
		}
	}
	return true, nil
}

// flattenWeights returns every parameter of the model in layer order.
func flattenWeights(ae *nn.Autoencoder) []float64 {
	var out []float64
	for _, l := range ae.AllLayers() {
		out = append(out, l.W.Data...)
		out = append(out, l.B...)
	}
	return out
}

// weightsEqual is a bit-exact float slice comparison.
func weightsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
