package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/datagen"
)

// pipelineResult is the JSON record one parallelism level contributes to
// BENCH_pipeline.json.
type pipelineResult struct {
	Parallelism  int     `json:"parallelism"`
	CompressSecs float64 `json:"compress_secs"`
	SearchSecs   float64 `json:"truncation_search_secs"`
	ArchiveBytes int64   `json:"archive_bytes"`
	Speedup      float64 `json:"speedup_vs_p1"`
}

// pipelineBenchFile is the top-level BENCH_pipeline.json document.
type pipelineBenchFile struct {
	Dataset    string           `json:"dataset"`
	Rows       int              `json:"rows"`
	NumCPU     int              `json:"num_cpu"`
	Gomaxprocs int              `json:"gomaxprocs"`
	Identical  bool             `json:"archives_identical"`
	Results    []pipelineResult `json:"results"`
}

// PipelineSpeedup micro-benchmarks the staged pipeline at Parallelism=1
// versus runtime.NumCPU() on Monitor, isolating the truncation-search stage
// (the pipeline's widest fan-out: four independent quantize→failures→size
// passes). It verifies the two archives are byte-identical — parallelism
// must never change output — and writes the speedup trajectory to
// BENCH_pipeline.json in the working directory.
func PipelineSpeedup(cfg Config) (*Report, error) {
	tc := newTableCache(cfg)
	t, _, err := tc.get("monitor")
	if err != nil {
		return nil, err
	}
	th := datagen.Thresholds(t, 0.1)
	levels := []int{1, runtime.NumCPU()}
	if levels[1] == 1 {
		// Single-core machine: still exercise the pool machinery with
		// explicit oversubscription so the two code paths diverge.
		levels[1] = 4
	}
	rep := &Report{
		ID:      "pipeline",
		Title:   "Staged pipeline speedup: Parallelism=1 vs NumCPU on Monitor",
		Columns: []string{"parallelism", "compress_s", "truncation_search_s", "archive_bytes", "speedup"},
	}
	file := pipelineBenchFile{Dataset: "monitor", Rows: t.NumRows(), NumCPU: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0)}
	var baseline float64
	var firstArchive []byte
	for _, p := range levels {
		opts := dsOptions("monitor", cfg)
		opts.Parallelism = p
		start := time.Now()
		res, err := core.Compress(t, th, opts)
		if err != nil {
			return nil, err
		}
		total := time.Since(start).Seconds()
		var search float64
		for _, st := range res.Stages {
			if st.Name == "truncation-search" {
				search = st.Wall.Seconds()
			}
		}
		if firstArchive == nil {
			firstArchive = res.Archive
			baseline = total
		} else if !bytes.Equal(firstArchive, res.Archive) {
			return nil, fmt.Errorf("bench: archives differ between parallelism 1 and %d", p)
		}
		file.Identical = true
		speedup := baseline / total
		file.Results = append(file.Results, pipelineResult{
			Parallelism:  p,
			CompressSecs: total,
			SearchSecs:   search,
			ArchiveBytes: res.Breakdown.Total,
			Speedup:      speedup,
		})
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.3f", total),
			fmt.Sprintf("%.3f", search),
			fmt.Sprintf("%d", res.Breakdown.Total),
			fmt.Sprintf("%.2fx", speedup),
		})
		cfg.logf("pipeline p=%d: %.3fs total, %.3fs truncation search", p, total, search)
	}
	rep.Notes = append(rep.Notes,
		"archives byte-identical across parallelism levels",
		"speedup trajectory written to BENCH_pipeline.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile("BENCH_pipeline.json", append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}
