package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestDecompressSpeedup(t *testing.T) {
	dir := t.TempDir()
	orig, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(orig) })
	rep, err := DecompressSpeedup(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("nil report")
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("want 2 full + 1 projection rows, got %d", len(rep.Rows))
	}
	buf, err := os.ReadFile(filepath.Join(dir, "BENCH_decompress.json"))
	if err != nil {
		t.Fatalf("BENCH_decompress.json not written: %v", err)
	}
	var file decompressBenchFile
	if err := json.Unmarshal(buf, &file); err != nil {
		t.Fatalf("BENCH_decompress.json malformed: %v", err)
	}
	if !file.Identical {
		t.Fatal("decoded tables not identical across parallelism levels")
	}
	if len(file.Results) != 3 || file.Results[0].Parallelism != 1 || file.Results[0].Mode != "full" {
		t.Fatalf("results = %+v", file.Results)
	}
	if proj := file.Results[2]; proj.Mode != "projection" || proj.Columns != 1 {
		t.Fatalf("projection record = %+v", proj)
	}
}
