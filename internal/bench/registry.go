package bench

import (
	"fmt"
	"sort"
)

// Experiment is a named, runnable paper experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Report, error)
}

// Experiments returns the registry of all reproducible tables and figures,
// in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Dataset summary", Table1},
		{"fig6a", "gzip & Parquet baselines", Fig6a},
		{"fig6", "DeepSqueeze vs Squish compression ratios", func(c Config) (*Report, error) { return Fig6(c) }},
		{"table2", "Runtime comparison", func(c Config) (*Report, error) { return Table2(c) }},
		{"fig7", "Optimization ablations", func(c Config) (*Report, error) { return Fig7(c) }},
		{"fig8", "k-means vs mixture of experts", Fig8},
		{"fig9", "Hyperparameter tuning convergence", func(c Config) (*Report, error) { return Fig9(c) }},
		{"fig10", "Training sample-size sensitivity", Fig10},
		{"ablation-truncation", "Code truncation search", func(c Config) (*Report, error) { return AblationCodeTruncation(c) }},
		{"ablation-mapping", "Expert mapping strategies", func(c Config) (*Report, error) { return AblationExpertMapping(c) }},
		{"pipeline", "Staged pipeline parallel speedup", PipelineSpeedup},
		{"decompress", "Parallel projection-aware decompression speedup", DecompressSpeedup},
		{"rowgroup", "RowRange decode latency vs. row-group count", RowGroupScan},
		{"train", "Data-parallel training throughput vs. workers", TrainSpeedup},
		{"query", "Predicate-pushdown scan vs. selectivity", QuerySelectivity},
		{"serve", "Open-once serving: warm handles vs cold open-per-query", ServeBench},
		{"f32", "Float32 kernel family: decode and training throughput vs float64", Float32Decode},
		{"ratio", "Stream-codec ratio: best-of range coding vs DEFLATE-only", CodecRatio},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}
