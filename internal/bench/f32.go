package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/nn"
	"deepsqueeze/internal/query"
)

// f32Plan is one precision plan's measurements in BENCH_f32.json.
type f32Plan struct {
	Plan         string  `json:"plan"` // "float64" or "float32"
	ArchiveBytes int     `json:"archive_bytes"`
	QuerySecs    float64 `json:"query_decode_secs"`
	QueryRowsSec float64 `json:"query_decode_rows_per_sec"`
	DecompSecs   float64 `json:"full_decompress_secs"`
	TrainRowsSec float64 `json:"train_rows_per_sec"`
}

// f32BenchFile is the top-level BENCH_f32.json document.
type f32BenchFile struct {
	Rows           int     `json:"rows"`
	Groups         int     `json:"groups"`
	NumCPU         int     `json:"num_cpu"`
	Gomaxprocs     int     `json:"gomaxprocs"`
	Float64        f32Plan `json:"float64"`
	Float32        f32Plan `json:"float32"`
	QuerySpeedup   float64 `json:"query_decode_speedup"`
	DecompSpeedup  float64 `json:"full_decompress_speedup"`
	TrainSpeedup   float64 `json:"train_speedup"`
	RowsCrossCheck int     `json:"rows_cross_checked"`
}

// f32BenchTable builds a decode-heavy table: several categorical columns so
// the shared stack (the dominant inference matmul load) carries most of the
// decode cost, plus numeric columns under a lossy threshold.
func f32BenchTable(rows int, seed int64) (*dataset.Table, []float64) {
	schema := dataset.NewSchema(
		dataset.Column{Name: "seq", Type: dataset.Numeric},
		dataset.Column{Name: "load", Type: dataset.Numeric},
		dataset.Column{Name: "tag", Type: dataset.Categorical},
		dataset.Column{Name: "site", Type: dataset.Categorical},
		dataset.Column{Name: "tier", Type: dataset.Categorical},
		dataset.Column{Name: "shard", Type: dataset.Categorical},
	)
	rng := rand.New(rand.NewSource(seed))
	t := dataset.NewTable(schema, rows)
	for i := 0; i < rows; i++ {
		z := rng.Float64()
		t.AppendRow(
			[]string{
				fmt.Sprintf("t%d", int(z*7.99)),
				fmt.Sprintf("s%02d", rng.Intn(24)),
				fmt.Sprintf("g%d", int(z*11.99)),
				fmt.Sprintf("h%d", rng.Intn(16)),
			},
			[]float64{float64(i), z*500 + rng.NormFloat64()*10},
		)
	}
	return t, []float64{0.001, 0.05, 0, 0, 0, 0}
}

// Float32Decode benchmarks the float32 kernel family on the query-decode
// path: the same table compressed under the float64 and float32 plans, both
// scanned end to end through the query engine (match-all predicate, so every
// row group decodes), plus full-decompress and training-throughput
// comparisons. Before timings are written to BENCH_f32.json the two decoded
// tables are cross-checked row for row: categorical and exact columns must
// match exactly, lossy numeric columns within the archives' shared
// Threshold×Range bound — the machine-checked equivalence backing the
// speedup claim.
func Float32Decode(cfg Config) (*Report, error) {
	const groups = 48
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	rows := int(49152 * scale)
	if cfg.Quick {
		rows = 6144
	}
	if rows < groups {
		rows = groups
	}
	t, th := f32BenchTable(rows, cfg.Seed)

	opts := core.DefaultOptions()
	opts.Seed = cfg.Seed
	opts.CodeSize = 3
	opts.Train.Epochs = 6
	opts.TrainSampleRows = 4000
	opts.Parallelism = runtime.NumCPU()
	opts.RowGroupSize = (rows + groups - 1) / groups
	if cfg.Quick {
		opts.Train.Epochs = 2
		opts.TrainSampleRows = 1000
	}

	plans := [2]f32Plan{{Plan: "float64"}, {Plan: "float32"}}
	tables := [2]*dataset.Table{}
	for i, f32 := range [2]bool{false, true} {
		o := opts
		o.Float32Decode = f32
		res, err := core.Compress(t, th, o)
		if err != nil {
			return nil, err
		}
		if info, err := core.Inspect(res.Archive); err != nil || info.Float32Decode != f32 {
			return nil, fmt.Errorf("bench: plan flag mismatch (want f32=%v, err=%v)", f32, err)
		}
		plans[i].ArchiveBytes = len(res.Archive)

		// Query-decode path: a match-all range predicate drives every row
		// group through the query engine's decode executor. Best of three
		// runs, so one scheduling hiccup cannot decide the headline number.
		matchAll := query.Ge("seq", -1)
		var qres *query.Result
		plans[i].QuerySecs = math.Inf(1)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			qres, err = query.Run(res.Archive, query.Options{Where: matchAll, Parallelism: opts.Parallelism})
			if err != nil {
				return nil, err
			}
			if s := time.Since(start).Seconds(); s < plans[i].QuerySecs {
				plans[i].QuerySecs = s
			}
		}
		if qres.Matched != rows {
			return nil, fmt.Errorf("bench: match-all query matched %d of %d rows", qres.Matched, rows)
		}
		plans[i].QueryRowsSec = float64(rows) / plans[i].QuerySecs
		tables[i] = qres.Table

		plans[i].DecompSecs = math.Inf(1)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			if _, err := core.Decompress(res.Archive); err != nil {
				return nil, err
			}
			if s := time.Since(start).Seconds(); s < plans[i].DecompSecs {
				plans[i].DecompSecs = s
			}
		}

		// Training throughput under the same width: one MoE epoch over a
		// synthetic batch, float64 masters either way (TrainOptions.Float32
		// only narrows the matmuls).
		trainRows := 8192
		if cfg.Quick {
			trainRows = 2048
		}
		specs := trainBenchSpecs()
		x, tg := trainBenchData(rand.New(rand.NewSource(cfg.Seed+7)), specs, trainRows)
		moe, err := nn.NewMoE(rand.New(rand.NewSource(cfg.Seed+8)), specs, nn.Config{CodeSize: 4}, 1)
		if err != nil {
			return nil, err
		}
		topt := nn.TrainOptions{Epochs: 2, BatchSize: 256, Float32: f32}
		start := time.Now()
		moe.Train(rand.New(rand.NewSource(cfg.Seed+9)), x, tg, topt)
		plans[i].TrainRowsSec = float64(topt.Epochs*trainRows) / time.Since(start).Seconds()

		cfg.logf("f32 plan=%s: query %.4fs (%.0f rows/s), decompress %.4fs, train %.0f rows/s",
			plans[i].Plan, plans[i].QuerySecs, plans[i].QueryRowsSec, plans[i].DecompSecs, plans[i].TrainRowsSec)
	}

	// Machine-checked equivalence: both plans reconstruct the same original
	// within the same bounds, so they must agree exactly on exact columns and
	// within twice the per-column Threshold×Range on lossy ones.
	stats := t.Stats()
	checked := 0
	for col, c := range t.Schema.Columns {
		tol := 2 * th[col] * (stats[col].Max - stats[col].Min) * (1 + 1e-9)
		for r := 0; r < rows; r++ {
			if c.Type == dataset.Categorical {
				if tables[0].Str[col][r] != tables[1].Str[col][r] {
					return nil, fmt.Errorf("bench: f32/f64 decode differ at row %d col %q: %q vs %q",
						r, c.Name, tables[0].Str[col][r], tables[1].Str[col][r])
				}
			} else if d := math.Abs(tables[0].Num[col][r] - tables[1].Num[col][r]); d > tol {
				return nil, fmt.Errorf("bench: f32/f64 decode differ at row %d col %q: |%v - %v| > %v",
					r, c.Name, tables[0].Num[col][r], tables[1].Num[col][r], tol)
			}
			checked++
		}
	}

	file := f32BenchFile{
		Rows:           rows,
		Groups:         groups,
		NumCPU:         runtime.NumCPU(),
		Gomaxprocs:     runtime.GOMAXPROCS(0),
		Float64:        plans[0],
		Float32:        plans[1],
		QuerySpeedup:   plans[1].QueryRowsSec / plans[0].QueryRowsSec,
		DecompSpeedup:  plans[0].DecompSecs / plans[1].DecompSecs,
		TrainSpeedup:   plans[1].TrainRowsSec / plans[0].TrainRowsSec,
		RowsCrossCheck: checked,
	}
	rep := &Report{
		ID:      "f32",
		Title:   "Float32 kernel family: query-decode, decompress, and training throughput",
		Columns: []string{"plan", "archive_bytes", "query_s", "query_rows/s", "decompress_s", "train_rows/s"},
	}
	for _, p := range plans {
		rep.Rows = append(rep.Rows, []string{
			p.Plan,
			fmt.Sprintf("%d", p.ArchiveBytes),
			fmt.Sprintf("%.4f", p.QuerySecs),
			fmt.Sprintf("%.0f", p.QueryRowsSec),
			fmt.Sprintf("%.4f", p.DecompSecs),
			fmt.Sprintf("%.0f", p.TrainRowsSec),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("query-decode speedup %.2fx, full-decompress %.2fx, training %.2fx",
			file.QuerySpeedup, file.DecompSpeedup, file.TrainSpeedup),
		fmt.Sprintf("%d cells cross-checked between the two plans' decodes", checked),
		"timings written to BENCH_f32.json")
	cfg.logf("f32: query-decode speedup %.2fx (cross-checked %d cells)", file.QuerySpeedup, checked)

	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile("BENCH_f32.json", append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}
