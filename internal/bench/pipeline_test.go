package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestPipelineSpeedup(t *testing.T) {
	dir := t.TempDir()
	orig, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(orig) })
	rep, err := PipelineSpeedup(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("nil report")
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("want 2 parallelism levels, got %d rows", len(rep.Rows))
	}
	buf, err := os.ReadFile(filepath.Join(dir, "BENCH_pipeline.json"))
	if err != nil {
		t.Fatalf("BENCH_pipeline.json not written: %v", err)
	}
	var file pipelineBenchFile
	if err := json.Unmarshal(buf, &file); err != nil {
		t.Fatalf("BENCH_pipeline.json malformed: %v", err)
	}
	if !file.Identical {
		t.Fatal("archives not identical across parallelism levels")
	}
	if len(file.Results) != 2 || file.Results[0].Parallelism != 1 {
		t.Fatalf("results = %+v", file.Results)
	}
	if file.Results[0].ArchiveBytes <= 0 {
		t.Fatal("zero archive size recorded")
	}
}
