package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/datagen"
	"deepsqueeze/internal/dataset"
)

// rowgroupRun is the JSON record one row-group configuration contributes
// to BENCH_rowgroup.json.
type rowgroupRun struct {
	Groups       int     `json:"groups"`
	RowGroupSize int     `json:"row_group_size"`
	ArchiveBytes int     `json:"archive_bytes"`
	FullSecs     float64 `json:"full_decode_secs"`
	RangeSecs    float64 `json:"range_decode_secs"`
	SkippedBytes int64   `json:"range_scan_skipped_bytes"`
	Speedup      float64 `json:"range_speedup_vs_full"`
}

// rowgroupBenchFile is the top-level BENCH_rowgroup.json document.
type rowgroupBenchFile struct {
	Dataset    string        `json:"dataset"`
	Rows       int           `json:"rows"`
	RangeRows  int           `json:"range_rows"`
	NumCPU     int           `json:"num_cpu"`
	Gomaxprocs int           `json:"gomaxprocs"`
	Results    []rowgroupRun `json:"results"`
}

// RowGroupScan benchmarks the v2 row-group index: the same table is
// compressed at several row-group sizes, and a fixed narrow RowRange is
// decoded from each archive. With one group the range decode must scan the
// whole codes/failure payload; with many groups the footer index lets the
// reader skip every non-overlapping segment, so range latency drops as the
// group count rises while the archive grows only by per-group framing.
// Range decodes are verified against the full decode before timings are
// written to BENCH_rowgroup.json in the working directory.
func RowGroupScan(cfg Config) (*Report, error) {
	tc := newTableCache(cfg)
	t, _, err := tc.get("census")
	if err != nil {
		return nil, err
	}
	th := datagen.Thresholds(t, 0)
	opts := dsOptions("census", cfg)
	if cfg.Quick {
		// Range-scan behavior is the subject, not model quality.
		opts.Train.Epochs = 2
		opts.TrainSampleRows = 1000
	}
	opts.Parallelism = runtime.NumCPU()

	rows := t.NumRows()
	// A narrow fixed window in the middle of the table; every configuration
	// decodes the same rows.
	span := rows / 32
	if span < 1 {
		span = 1
	}
	rr := core.RowRange{Lo: rows / 2, Hi: rows/2 + span}

	rep := &Report{
		ID:      "rowgroup",
		Title:   "RowRange decode latency vs. row-group count (v2 footer index)",
		Columns: []string{"groups", "rowgroup", "archive_bytes", "full_s", "range_s", "skipped_bytes", "speedup"},
	}
	file := rowgroupBenchFile{
		Dataset:    "census",
		Rows:       rows,
		RangeRows:  span,
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
	}

	for _, groups := range []int{1, 4, 16, 64} {
		gsize := (rows + groups - 1) / groups
		o := opts
		o.RowGroupSize = gsize
		res, err := core.Compress(t, th, o)
		if err != nil {
			return nil, err
		}
		info, err := core.Inspect(res.Archive)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		full, err := core.DecompressContext(context.Background(), res.Archive,
			core.DecompressOptions{Parallelism: opts.Parallelism})
		if err != nil {
			return nil, err
		}
		fullSecs := time.Since(start).Seconds()

		start = time.Now()
		rres, err := core.DecompressContext(context.Background(), res.Archive,
			core.DecompressOptions{Parallelism: opts.Parallelism, RowRange: rr})
		if err != nil {
			return nil, err
		}
		rangeSecs := time.Since(start).Seconds()

		if rres.Table.NumRows() != span {
			return nil, fmt.Errorf("bench: range decode returned %d rows, want %d", rres.Table.NumRows(), span)
		}
		for col, c := range t.Schema.Columns {
			for r := 0; r < span; r++ {
				if c.Type == dataset.Categorical {
					if rres.Table.Str[col][r] != full.Table.Str[col][rr.Lo+r] {
						return nil, fmt.Errorf("bench: range decode differs from full at row %d col %d", rr.Lo+r, col)
					}
				} else if rres.Table.Num[col][r] != full.Table.Num[col][rr.Lo+r] {
					return nil, fmt.Errorf("bench: range decode differs from full at row %d col %d", rr.Lo+r, col)
				}
			}
		}

		skipped := stageBytes(rres.Stages, "scan")
		speedup := fullSecs / rangeSecs
		file.Results = append(file.Results, rowgroupRun{
			Groups:       len(info.Groups),
			RowGroupSize: gsize,
			ArchiveBytes: len(res.Archive),
			FullSecs:     fullSecs,
			RangeSecs:    rangeSecs,
			SkippedBytes: skipped,
			Speedup:      speedup,
		})
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", len(info.Groups)),
			fmt.Sprintf("%d", gsize),
			fmt.Sprintf("%d", len(res.Archive)),
			fmt.Sprintf("%.3f", fullSecs),
			fmt.Sprintf("%.3f", rangeSecs),
			fmt.Sprintf("%d", skipped),
			fmt.Sprintf("%.2fx", speedup),
		})
		cfg.logf("rowgroup groups=%d: full %.3fs range %.3fs skipped %d bytes",
			len(info.Groups), fullSecs, rangeSecs, skipped)
	}

	rep.Notes = append(rep.Notes,
		"range decodes verified against the full decode",
		"skipped bytes are segments the scan stage never materialized",
		"timings written to BENCH_rowgroup.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile("BENCH_rowgroup.json", append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// stageBytes returns the named stage's byte counter — for the scan stage
// on a range decode, that is the bytes of segments skipped via the footer
// index.
func stageBytes(stages []core.StageStats, name string) int64 {
	for _, st := range stages {
		if st.Name == name {
			return st.Bytes
		}
	}
	return 0
}
