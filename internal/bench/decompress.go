package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/datagen"
	"deepsqueeze/internal/dataset"
)

// decompressRun is the JSON record one decompression configuration
// contributes to BENCH_decompress.json.
type decompressRun struct {
	Mode        string  `json:"mode"` // "full" or "projection"
	Parallelism int     `json:"parallelism"`
	Columns     int     `json:"columns"`
	Secs        float64 `json:"secs"`
	DecodeSecs  float64 `json:"decode_stage_secs"`
	Speedup     float64 `json:"speedup_vs_full_p1"`
}

// decompressBenchFile is the top-level BENCH_decompress.json document.
type decompressBenchFile struct {
	Dataset    string          `json:"dataset"`
	Rows       int             `json:"rows"`
	Cols       int             `json:"cols"`
	NumCPU     int             `json:"num_cpu"`
	Gomaxprocs int             `json:"gomaxprocs"`
	Identical  bool            `json:"tables_identical"`
	Results    []decompressRun `json:"results"`
}

// DecompressSpeedup micro-benchmarks the staged decompression pipeline on
// Census (68 categorical columns — the per-column shared-stack inference is
// the dominant, projection-skippable cost): full decode at Parallelism=1
// versus NumCPU, plus a single-column projection. It verifies the decoded
// tables are identical across parallelism levels and that the projection
// matches the corresponding column of the full decode, then writes the
// timings to BENCH_decompress.json in the working directory.
func DecompressSpeedup(cfg Config) (*Report, error) {
	tc := newTableCache(cfg)
	t, _, err := tc.get("census")
	if err != nil {
		return nil, err
	}
	th := datagen.Thresholds(t, 0) // census is evaluated lossless
	opts := dsOptions("census", cfg)
	if cfg.Quick {
		// Decompression timing is the subject; a barely-trained model decodes
		// through the same code paths, so don't pay for convergence here.
		opts.Train.Epochs = 2
		opts.TrainSampleRows = 1000
	}
	res, err := core.Compress(t, th, opts)
	if err != nil {
		return nil, err
	}
	levels := []int{1, runtime.NumCPU()}
	if levels[1] == 1 {
		// Single-core machine: still exercise the pool machinery with
		// explicit oversubscription so the two code paths diverge.
		levels[1] = 4
	}
	rep := &Report{
		ID:      "decompress",
		Title:   "Decompression speedup: parallelism and column projection on Census",
		Columns: []string{"mode", "parallelism", "columns", "secs", "decode_stage_s", "speedup"},
	}
	file := decompressBenchFile{
		Dataset:    "census",
		Rows:       t.NumRows(),
		Cols:       t.Schema.NumColumns(),
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
	}
	record := func(mode string, p, cols int, secs, decodeSecs, baseline float64) {
		speedup := baseline / secs
		file.Results = append(file.Results, decompressRun{
			Mode: mode, Parallelism: p, Columns: cols,
			Secs: secs, DecodeSecs: decodeSecs, Speedup: speedup,
		})
		rep.Rows = append(rep.Rows, []string{
			mode,
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", cols),
			fmt.Sprintf("%.3f", secs),
			fmt.Sprintf("%.3f", decodeSecs),
			fmt.Sprintf("%.2fx", speedup),
		})
	}

	var baseline float64
	var firstCSV []byte
	for _, p := range levels {
		start := time.Now()
		dres, err := core.DecompressContext(context.Background(), res.Archive,
			core.DecompressOptions{Parallelism: p})
		if err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()
		csv, err := tableCSV(dres.Table)
		if err != nil {
			return nil, err
		}
		if firstCSV == nil {
			firstCSV = csv
			baseline = secs
		} else if !bytes.Equal(firstCSV, csv) {
			return nil, fmt.Errorf("bench: decoded tables differ between parallelism %d and %d", levels[0], p)
		}
		file.Identical = true
		record("full", p, t.Schema.NumColumns(), secs, stageSecs(dres.Stages, "decode"), baseline)
		cfg.logf("decompress full p=%d: %.3fs", p, secs)
	}

	// One-column projection at full parallelism: decoder inference runs only
	// the projected column's head, and the other columns' failure streams
	// are skipped outright.
	proj := []string{t.Schema.Columns[0].Name}
	start := time.Now()
	pres, err := core.DecompressContext(context.Background(), res.Archive,
		core.DecompressOptions{Parallelism: levels[1], Columns: proj})
	if err != nil {
		return nil, err
	}
	secs := time.Since(start).Seconds()
	full, err := core.Decompress(res.Archive)
	if err != nil {
		return nil, err
	}
	for r := 0; r < full.NumRows(); r++ {
		if pres.Table.Str[0][r] != full.Str[0][r] {
			return nil, fmt.Errorf("bench: projection differs from full decode at row %d", r)
		}
	}
	record("projection", levels[1], 1, secs, stageSecs(pres.Stages, "decode"), baseline)
	cfg.logf("decompress 1-col projection p=%d: %.3fs", levels[1], secs)

	rep.Notes = append(rep.Notes,
		"decoded tables byte-identical across parallelism levels",
		"projection verified against the full decode",
		"timings written to BENCH_decompress.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile("BENCH_decompress.json", append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// tableCSV renders a table to CSV bytes for byte-identity comparison.
func tableCSV(t *dataset.Table) ([]byte, error) {
	var buf bytes.Buffer
	if err := t.WriteCSV(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// stageSecs returns the wall-clock seconds of the named pipeline stage.
func stageSecs(stages []core.StageStats, name string) float64 {
	for _, st := range stages {
		if st.Name == name {
			return st.Wall.Seconds()
		}
	}
	return 0
}
