// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§7) on the synthetic stand-in datasets.
// Each experiment returns a Report that renders as an aligned text table and
// can be exported as CSV, so runs are easy to diff against EXPERIMENTS.md.
package bench

import (
	"bytes"
	"compress/gzip"
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"deepsqueeze/internal/colfile"
	"deepsqueeze/internal/core"
	"deepsqueeze/internal/datagen"
	"deepsqueeze/internal/dataset"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies each generator's default row count (1.0 reproduces
	// the documented configuration; use ~0.1 for smoke tests).
	Scale float64
	// Seed drives data generation and model training.
	Seed int64
	// Quick trims training epochs and sweep points for fast smoke runs.
	Quick bool
	// Verbose, when non-nil, receives progress lines.
	Verbose func(format string, args ...any)
}

// DefaultConfig returns the documented full-scale configuration.
func DefaultConfig() Config { return Config{Scale: 1, Seed: 1} }

func (c *Config) logf(format string, args ...any) {
	if c.Verbose != nil {
		c.Verbose(format, args...)
	}
}

func (c *Config) rows(g datagen.Generator) int {
	scale := c.Scale
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(g.DefaultRows) * scale)
	if n < 500 {
		n = 500
	}
	return n
}

// errorThresholds returns the evaluation thresholds for a dataset: the
// paper's 0.5/1/5/10% sweep, except Census which is purely categorical and
// evaluated lossless (paper Fig. 6d).
func errorThresholds(name string, quick bool) []float64 {
	if name == "census" {
		return []float64{0}
	}
	if quick {
		return []float64{0.1}
	}
	return []float64{0.005, 0.01, 0.05, 0.1}
}

// dsOptions returns the per-dataset DeepSqueeze configuration. Code sizes
// and expert counts are the values the paper reports its tuner converged to
// (§7.4.3); training-sample sizes follow §7.3.
func dsOptions(name string, cfg Config) core.Options {
	opts := core.DefaultOptions()
	opts.Seed = cfg.Seed
	switch name {
	case "corel":
		opts.CodeSize, opts.NumExperts = 1, 1
	case "forest":
		opts.CodeSize, opts.NumExperts = 2, 1
	case "census":
		opts.CodeSize, opts.NumExperts = 2, 2
	case "monitor":
		opts.CodeSize, opts.NumExperts = 4, 2
	case "criteo":
		// The paper's tuner converged to 9 experts on the 946M-row Criteo;
		// on the scaled-down stand-in 4 experts give the same shape at a
		// fraction of the (single-core) training cost.
		opts.CodeSize, opts.NumExperts = 4, 4
	default:
		opts.CodeSize, opts.NumExperts = 2, 1
	}
	opts.TrainSampleRows = 5000
	opts.Train.Epochs = 15
	if name == "census" || name == "criteo" {
		// Heavily categorical datasets converge slower through the shared
		// output stack; the paper trains to convergence.
		opts.Train.Epochs = 30
	}
	if cfg.Quick {
		opts.Train.Epochs = 10
		opts.TrainSampleRows = 2000
		if opts.NumExperts > 2 {
			opts.NumExperts = 2
		}
	}
	return opts
}

// tableCache memoizes generated datasets within one harness run.
type tableCache struct {
	cfg    Config
	tables map[string]*dataset.Table
}

func newTableCache(cfg Config) *tableCache {
	return &tableCache{cfg: cfg, tables: make(map[string]*dataset.Table)}
}

func (tc *tableCache) get(name string) (*dataset.Table, datagen.Generator, error) {
	g, ok := datagen.ByName(name)
	if !ok {
		return nil, g, fmt.Errorf("bench: unknown dataset %q", name)
	}
	if t, ok := tc.tables[name]; ok {
		return t, g, nil
	}
	rows := tc.cfg.rows(g)
	tc.cfg.logf("generating %s (%d rows)", name, rows)
	t := g.Gen(rand.New(rand.NewSource(tc.cfg.Seed)), rows)
	tc.tables[name] = t
	return t, g, nil
}

// Report is a rendered experiment result.
type Report struct {
	ID      string // e.g. "fig6b"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV exports the report rows as CSV.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// pct formats a ratio as a percentage string.
func pct(num, den int64) string {
	if den == 0 {
		return "0.00"
	}
	return fmt.Sprintf("%.2f", 100*float64(num)/float64(den))
}

// gzipSize returns the gzip-compressed size of the table's CSV form, plus
// the compression and decompression durations — the paper's gzip baseline.
func gzipSize(t *dataset.Table) (int64, time.Duration, time.Duration, error) {
	var buf bytes.Buffer
	start := time.Now()
	zw := gzip.NewWriter(&buf)
	if err := t.WriteCSV(zw); err != nil {
		return 0, 0, 0, err
	}
	if err := zw.Close(); err != nil {
		return 0, 0, 0, err
	}
	cDur := time.Since(start)
	start = time.Now()
	zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return 0, 0, 0, err
	}
	dDur := time.Since(start)
	return int64(buf.Len()), cDur, dDur, nil
}

// parquetSize measures the parquet-lite baseline with timings.
func parquetSize(t *dataset.Table) (int64, time.Duration, time.Duration, error) {
	var buf bytes.Buffer
	start := time.Now()
	n, err := colfile.Write(&buf, t)
	if err != nil {
		return 0, 0, 0, err
	}
	cDur := time.Since(start)
	start = time.Now()
	if _, err := colfile.Read(bytes.NewReader(buf.Bytes())); err != nil {
		return 0, 0, 0, err
	}
	dDur := time.Since(start)
	return n, cDur, dDur, nil
}
