package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func tinyConfig() Config {
	return Config{Scale: 0.03, Seed: 1, Quick: true}
}

func TestReportRenderAndCSV(t *testing.T) {
	rep := &Report{
		ID:      "demo",
		Title:   "demo report",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"x", "1"}, {"longer", "2"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo report", "longer", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\nx,1\nlonger,2\n" {
		t.Fatalf("CSV = %q", got)
	}
}

func TestRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 10 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	for _, e := range exps {
		if _, err := Lookup(e.ID); err != nil {
			t.Errorf("Lookup(%q): %v", e.ID, err)
		}
	}
	if _, err := Lookup("nonsense"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTable1(t *testing.T) {
	rep, err := Table1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("%d datasets", len(rep.Rows))
	}
	// Paper column counts must be restated verbatim.
	want := map[string][2]string{
		"corel":   {"0", "32"},
		"forest":  {"45", "10"},
		"census":  {"68", "0"},
		"monitor": {"0", "17"},
		"criteo":  {"27", "13"},
	}
	for _, row := range rep.Rows {
		w := want[row[0]]
		if row[5] != w[0] || row[6] != w[1] {
			t.Errorf("%s columns = %s/%s, want %s/%s", row[0], row[5], row[6], w[0], w[1])
		}
	}
}

func TestFig6aShape(t *testing.T) {
	rep, err := Fig6a(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("%d rows", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		gz, err1 := strconv.ParseFloat(row[1], 64)
		pq, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("non-numeric ratios in %v", row)
		}
		if gz <= 0 || gz >= 100 || pq <= 0 || pq >= 100 {
			t.Fatalf("ratio out of range in %v", row)
		}
	}
}

func TestFig6SingleDataset(t *testing.T) {
	rep, err := Fig6(tinyConfig(), "corel")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rep.Rows {
		ds, err := strconv.ParseFloat(row[3], 64)
		if err != nil || ds <= 0 || ds >= 100 {
			t.Fatalf("bad ds ratio %v", row)
		}
		// Breakdown parts must not exceed the total.
		var parts float64
		for _, c := range []int{4, 5, 6} {
			v, err := strconv.ParseFloat(row[c], 64)
			if err != nil {
				t.Fatal(err)
			}
			parts += v
		}
		if parts > ds+0.05 {
			t.Fatalf("breakdown %v exceeds total %v", parts, ds)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rep, err := Fig10(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 { // quick mode: 3 fractions
		t.Fatalf("%d rows", len(rep.Rows))
	}
}

func TestErrorThresholds(t *testing.T) {
	if got := errorThresholds("census", false); len(got) != 1 || got[0] != 0 {
		t.Fatalf("census thresholds = %v", got)
	}
	if got := errorThresholds("corel", false); len(got) != 4 {
		t.Fatalf("corel thresholds = %v", got)
	}
	if got := errorThresholds("corel", true); len(got) != 1 {
		t.Fatalf("quick thresholds = %v", got)
	}
}

func TestDSOptionsPerDataset(t *testing.T) {
	cfg := Config{Scale: 1, Seed: 1}
	crit := dsOptions("criteo", cfg)
	if crit.CodeSize != 4 || crit.NumExperts != 4 {
		t.Fatalf("criteo options = code %d experts %d", crit.CodeSize, crit.NumExperts)
	}
	cor := dsOptions("corel", cfg)
	if cor.CodeSize != 1 || cor.NumExperts != 1 {
		t.Fatalf("corel options = %+v", cor)
	}
	quick := dsOptions("criteo", Config{Scale: 1, Seed: 1, Quick: true})
	if quick.NumExperts > 2 {
		t.Fatalf("quick mode kept %d experts", quick.NumExperts)
	}
}

func TestUnknownDataset(t *testing.T) {
	tc := newTableCache(tinyConfig())
	if _, _, err := tc.get("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
