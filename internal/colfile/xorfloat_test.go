package colfile

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func xorRoundTrip(t *testing.T, values []float64) []byte {
	t.Helper()
	buf := packFloatsXOR(values)
	got, err := unpackFloatsXOR(buf[1:], -1)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(values) == 0 {
		if len(got) != 0 {
			t.Fatal("empty round trip")
		}
		return buf
	}
	if !reflect.DeepEqual(got, values) {
		t.Fatalf("round trip mismatch: %v vs %v", got[:min(4, len(got))], values[:min(4, len(values))])
	}
	return buf
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestXorFloatRoundTripBasic(t *testing.T) {
	cases := [][]float64{
		{},
		{0},
		{1.5},
		{1.5, 1.5, 1.5, 1.5},
		{1, 2, 4, 8, 16},
		{math.Inf(1), math.Inf(-1), 0, -0.0},
		{math.MaxFloat64, math.SmallestNonzeroFloat64},
	}
	for _, c := range cases {
		xorRoundTrip(t, c)
	}
	// NaN payloads must round-trip bit-exactly.
	nan := math.Float64frombits(0x7FF8000000000DEA)
	buf := packFloatsXOR([]float64{1, nan, 2})
	got, err := unpackFloatsXOR(buf[1:], -1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got[1]) != math.Float64bits(nan) {
		t.Fatal("NaN payload lost")
	}
}

func TestXorFloatCompressesSensorStream(t *testing.T) {
	// Slowly varying sensor readings: XOR compression should beat 8
	// bytes/value by a wide margin.
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 10000)
	cur := 20.0
	for i := range values {
		// Quantized sensor steps keep many mantissa bits stable.
		cur += math.Round(rng.NormFloat64()*4) / 16
		values[i] = cur
	}
	buf := xorRoundTrip(t, values)
	if len(buf) > 8*len(values)/2 {
		t.Fatalf("sensor stream: %d bytes for %d values", len(buf), len(values))
	}
	// Constant streams collapse to ~1 bit/value.
	constant := make([]float64, 10000)
	for i := range constant {
		constant[i] = 42.5
	}
	if buf := xorRoundTrip(t, constant); len(buf) > len(constant)/8+32 {
		t.Fatalf("constant stream: %d bytes", len(buf))
	}
}

func TestXorFloatViaPackFloats(t *testing.T) {
	// PackFloats must pick the XOR layout for repetitive float streams and
	// round-trip exactly.
	values := make([]float64, 5000)
	cur := 100.0
	for i := range values {
		cur += 0.25
		values[i] = cur
	}
	packed := PackFloats(values)
	got, err := UnpackFloats(packed)
	if err != nil || !reflect.DeepEqual(got, values) {
		t.Fatalf("PackFloats round trip: %v", err)
	}
	if len(packed) > 8*len(values)/3 {
		t.Fatalf("ramp stream packed to %d bytes", len(packed))
	}
}

func TestXorFloatCorrupt(t *testing.T) {
	good := packFloatsXOR([]float64{1, 2, 3, 4, 5})[1:]
	for _, cut := range []int{0, 4, 8, len(good) - 1} {
		if _, err := unpackFloatsXOR(good[:cut], -1); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestQuickXorFloatRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		values := make([]float64, n)
		switch rng.Intn(3) {
		case 0:
			cur := rng.NormFloat64()
			for i := range values {
				cur += rng.NormFloat64() * 0.01
				values[i] = cur
			}
		case 1:
			for i := range values {
				values[i] = math.Float64frombits(rng.Uint64())
			}
			for i := range values { // avoid NaN != NaN comparison noise
				if math.IsNaN(values[i]) {
					values[i] = 0
				}
			}
		default:
			for i := range values {
				values[i] = float64(rng.Intn(4))
			}
		}
		buf := packFloatsXOR(values)
		got, err := unpackFloatsXOR(buf[1:], -1)
		if err != nil {
			return false
		}
		if n == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
